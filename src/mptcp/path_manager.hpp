// Path management: the policy layer that decides which paths a multipath
// connection uses, mirroring the component the MPTCP Linux kernel work
// treats as a peer of the coupled congestion controller (and htsim's
// SubflowControl scan loop).
//
// A PathManager owns a connection's subflow-*set* decisions while the
// connection owns the subflows themselves:
//
//   * which candidate paths to open when the connection starts
//     (`fullmesh` opens all of them, `ndiffports(n)` opens n subflows
//     cycling over the registered paths, `threshold` starts with one);
//   * when to add one mid-transfer (the `threshold` strategy opens the
//     next unused candidate each time another `add_threshold_bytes` of
//     data is delivered — the byte-counter trigger htsim uses);
//   * when to declare a subflow dead (RTOs keep firing with no forward
//     progress) and drop it, and when to re-probe it after a backoff.
//
// The manager is a periodic EventSource: every `scan_period` it inspects
// the per-subflow timeout/ack counters the subflows already maintain. It
// keeps no per-packet state and does nothing on the data path, so its cost
// is O(subflows) per scan regardless of rate. Scanning stops once the
// connection's transfer completes, letting the event list drain (a
// prerequisite for churn-scale flow reclamation).
#pragma once

#include <cstdint>
#include <vector>

#include "core/event_list.hpp"
#include "core/time.hpp"
#include "net/packet.hpp"

namespace mpsim::mptcp {

class MptcpConnection;

enum class PathStrategy : std::uint8_t {
  kFullMesh,    // open every registered candidate path at start
  kNDiffPorts,  // open exactly n subflows, cycling over the candidates
  kThreshold,   // start with one; add per delivered-bytes threshold
};

struct PathManagerConfig {
  PathStrategy strategy = PathStrategy::kThreshold;
  // kNDiffPorts: subflows to open (candidates are reused modulo their
  // count, like ndiffports' multiple 5-tuples over one physical path).
  std::size_t ndiffports = 2;
  // kThreshold: delivered bytes per additional subflow; 0 disables adds.
  std::uint64_t add_threshold_bytes = 1u << 20;
  // Hard cap on the connection's subflow count, all strategies.
  std::size_t max_subflows = 8;
  // Scan cadence for the byte-counter and dead-path checks.
  SimTime scan_period = from_ms(100);
  // How long a dropped subflow stays down before being re-probed.
  SimTime reprobe_backoff = from_sec(1);
  // Consecutive RTOs with no new packets acked before a subflow is
  // declared dead (only ever dropped while an active sibling remains).
  std::uint32_t dead_after_rtos = 3;
};

class PathManager final : public EventSource {
 public:
  // `conn` must outlive the manager; in practice the connection owns it
  // (MptcpConnection::attach_path_manager).
  PathManager(EventList& events, MptcpConnection& conn,
              const PathManagerConfig& cfg);
  ~PathManager() override;

  // Register a path the manager may open a subflow on. `fwd`/`rev` are
  // the network elements between the endpoints, exactly as passed to
  // MptcpConnection::add_subflow. Candidates are opened in registration
  // order; subflows the caller opened directly are left alone (they are
  // still watched for death/re-probe).
  void add_candidate(std::vector<net::PacketSink*> fwd,
                     std::vector<net::PacketSink*> rev);

  // Begin managing at `at`: the strategy's initial subflows are opened at
  // that time, then scans run every scan_period. Called automatically by
  // MptcpConnection::start for an attached manager.
  void start(SimTime at);

  // EventSource: the periodic scan.
  void on_event() override;

  const PathManagerConfig& config() const { return cfg_; }
  std::size_t num_candidates() const { return candidates_.size(); }

  // --- stats ---
  std::uint64_t subflows_opened() const { return opened_; }
  std::uint64_t subflows_dropped() const { return dropped_; }
  std::uint64_t reprobes() const { return reprobes_; }

 private:
  struct Candidate {
    std::vector<net::PacketSink*> fwd;
    std::vector<net::PacketSink*> rev;
  };
  // Dead-path detection state, one per connection subflow (positional).
  struct Watch {
    std::uint64_t last_timeouts = 0;
    std::uint64_t last_acked = 0;
    std::uint32_t stalled_rtos = 0;  // RTOs since the last acked advance
    SimTime dropped_at = kNever;     // set while the manager holds it down
  };

  void open_initial();
  void open_next_candidate();
  void scan();

  EventList& events_;
  MptcpConnection& conn_;
  PathManagerConfig cfg_;
  std::vector<Candidate> candidates_;
  std::size_t next_candidate_ = 0;
  std::vector<Watch> watch_;
  bool started_ = false;
  bool opened_initial_ = false;
  std::uint64_t last_add_bytes_ = 0;
  std::uint64_t opened_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t reprobes_ = 0;
};

}  // namespace mpsim::mptcp
