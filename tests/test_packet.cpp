#include "net/packet.hpp"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "core/event_list.hpp"

namespace mpsim::net {
namespace {

// Sink that records arrivals and forwards (or terminates).
class RecordingSink : public PacketSink {
 public:
  explicit RecordingSink(std::string name, bool terminal = false)
      : name_(std::move(name)), terminal_(terminal) {}
  void receive(Packet& pkt) override {
    ++arrivals;
    if (terminal_) {
      pkt.release();
    } else {
      pkt.advance();
    }
  }
  const std::string& sink_name() const override { return name_; }
  int arrivals = 0;

 private:
  std::string name_;
  bool terminal_;
};

TEST(Packet, AllocReturnsCleanPacket) {
  EventList events;
  Packet& p = Packet::alloc(events);
  p.flow_id = 99;
  p.data_seq = 1234;
  p.is_retransmit = true;
  p.release();
  Packet& q = Packet::alloc(events);  // pool recycles; must be reset
  EXPECT_EQ(q.flow_id, 0u);
  EXPECT_EQ(q.data_seq, 0u);
  EXPECT_FALSE(q.is_retransmit);
  EXPECT_EQ(q.size_bytes, kDataPacketBytes);
  q.release();
}

TEST(Packet, PoolTracksOutstanding) {
  EventList events;
  const std::size_t base = Packet::pool_outstanding(events);
  Packet& a = Packet::alloc(events);
  Packet& b = Packet::alloc(events);
  EXPECT_EQ(Packet::pool_outstanding(events), base + 2);
  a.release();
  b.release();
  EXPECT_EQ(Packet::pool_outstanding(events), base);
}

TEST(Packet, SendOnTraversesAllHops) {
  EventList events;
  RecordingSink s1("s1"), s2("s2"), s3("s3", /*terminal=*/true);
  Route route({&s1, &s2, &s3});
  Packet& p = Packet::alloc(events);
  p.send_on(route);
  EXPECT_EQ(s1.arrivals, 1);
  EXPECT_EQ(s2.arrivals, 1);
  EXPECT_EQ(s3.arrivals, 1);
}

TEST(Packet, RouteAccessorDuringTraversal) {
  EventList events;
  RecordingSink terminal("t", true);
  Route route({&terminal});
  Packet& p = Packet::alloc(events);
  p.send_on(route);
  // Packet is released by the terminal; the route object is untouched.
  EXPECT_EQ(route.size(), 1u);
}

TEST(Route, ReverseLinkage) {
  RecordingSink a("a", true), b("b", true);
  Route fwd({&a});
  Route rev({&b});
  fwd.set_reverse(&rev);
  rev.set_reverse(&fwd);
  EXPECT_EQ(fwd.reverse(), &rev);
  EXPECT_EQ(rev.reverse(), &fwd);
}

TEST(Route, PushBackBuildsInOrder) {
  RecordingSink a("a"), b("b");
  Route r;
  r.push_back(&a);
  r.push_back(&b);
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(r.at(0), &a);
  EXPECT_EQ(r.at(1), &b);
}

TEST(Packet, SizesMatchConventions) {
  EXPECT_EQ(kDataPacketBytes, 1500u);
  EXPECT_EQ(kAckPacketBytes, 40u);
}

TEST(Packet, ManyAllocReleaseCyclesStayBalanced) {
  EventList events;
  const std::size_t base = Packet::pool_outstanding(events);
  std::vector<Packet*> live;
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 100; ++i) live.push_back(&Packet::alloc(events));
    for (Packet* p : live) p->release();
    live.clear();
  }
  EXPECT_EQ(Packet::pool_outstanding(events), base);
}

// Each EventList owns its own pool: allocations against one simulation
// context never show up in another's accounting, and a packet releases
// back to the pool it came from even if another pool allocated since.
TEST(PacketPool, InstancesAreIndependent) {
  EventList a;
  EventList b;
  Packet& pa = Packet::alloc(a);
  EXPECT_EQ(Packet::pool_outstanding(a), 1u);
  EXPECT_EQ(Packet::pool_outstanding(b), 0u);
  Packet& pb1 = Packet::alloc(b);
  Packet& pb2 = Packet::alloc(b);
  EXPECT_EQ(Packet::pool_outstanding(a), 1u);
  EXPECT_EQ(Packet::pool_outstanding(b), 2u);
  pa.release();  // releases into a's pool, not b's
  EXPECT_EQ(Packet::pool_outstanding(a), 0u);
  EXPECT_EQ(Packet::pool_outstanding(b), 2u);
  pb1.release();
  pb2.release();
  EXPECT_EQ(Packet::pool_outstanding(b), 0u);
}

TEST(PacketPool, PeakOutstandingHighWaterMark) {
  EventList events;
  PacketPool& pool = PacketPool::of(events);
  std::vector<Packet*> live;
  for (int i = 0; i < 7; ++i) live.push_back(&pool.alloc());
  for (Packet* p : live) p->release();
  live.clear();
  EXPECT_EQ(pool.outstanding(), 0u);
  EXPECT_EQ(pool.peak_outstanding(), 7u);
  // A smaller burst does not move the high-water mark.
  for (int i = 0; i < 3; ++i) live.push_back(&pool.alloc());
  for (Packet* p : live) p->release();
  EXPECT_EQ(pool.peak_outstanding(), 7u);
}

// Satellite (d): two simulations allocating concurrently on separate
// threads. Pools are per-EventList, so there is no shared mutable state;
// each thread's accounting must balance independently.
TEST(PacketPool, ConcurrentSimulationsDoNotInterfere) {
  auto churn = [](std::size_t* peak_out) {
    EventList events;
    std::vector<Packet*> live;
    for (int round = 0; round < 200; ++round) {
      for (int i = 0; i < 64; ++i) live.push_back(&Packet::alloc(events));
      ASSERT_EQ(Packet::pool_outstanding(events), 64u);
      for (Packet* p : live) p->release();
      live.clear();
      ASSERT_EQ(Packet::pool_outstanding(events), 0u);
    }
    *peak_out = PacketPool::of(events).peak_outstanding();
  };
  std::size_t peak1 = 0;
  std::size_t peak2 = 0;
  std::thread t1(churn, &peak1);
  std::thread t2(churn, &peak2);
  t1.join();
  t2.join();
  EXPECT_EQ(peak1, 64u);
  EXPECT_EQ(peak2, 64u);
}

}  // namespace
}  // namespace mpsim::net
