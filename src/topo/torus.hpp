// Fig. 7's torus: five bottleneck links (A..E) in a ring, five two-path
// flows, flow i striping over links i and (i+1) mod 5, so each link serves
// two multipath flows. All RTTs 100 ms, buffers one bandwidth-delay
// product. Shrinking link C's capacity should push its two flows onto B
// and D, whose flows shift to A and E — with perfect balancing, loss rates
// equalise across all links (Fig. 8 plots p_A / p_C).
#pragma once

#include <array>

#include "topo/network.hpp"

namespace mpsim::topo {

class Torus {
 public:
  static constexpr int kLinks = 5;

  // `rates_pps` per-link capacity in data packets per second (the paper's
  // unit); RTT fixed at 100 ms; buffers one BDP.
  Torus(Network& net, const std::array<double, kLinks>& rates_pps);

  // Flow f in [0,5): path 0 over link f, path 1 over link (f+1)%5.
  Path fwd(int flow, int path) const;
  Path rev(int flow, int path) const;

  net::Queue& queue(int link) { return *links_[link].queue; }
  const net::Queue& queue(int link) const { return *links_[link].queue; }

  static constexpr SimTime kRtt = from_ms(100);

 private:
  int link_of(int flow, int path) const { return (flow + path) % kLinks; }
  Link links_[kLinks];
  net::Pipe* ack_[kLinks];
};

}  // namespace mpsim::topo
