#include "scenario/spec.hpp"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "net/packet.hpp"

namespace mpsim::scenario {

namespace {

bool is_key_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_';
}

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

// Strip a trailing `# comment` that is not inside a quoted string.
std::string strip_comment(const std::string& line) {
  bool in_string = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    if (line[i] == '"') in_string = !in_string;
    if (line[i] == '#' && !in_string) return line.substr(0, i);
  }
  return line;
}

bool parse_number_strict(const std::string& text, double& out) {
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size() || errno == ERANGE ||
      !std::isfinite(v)) {
    return false;
  }
  out = v;
  return true;
}

// Split "14.4Mbps" into the numeric prefix and the unit suffix.
bool split_quantity(const std::string& text, double& magnitude,
                    std::string& unit) {
  const std::string t = trim(text);
  std::size_t i = 0;
  while (i < t.size() &&
         (std::isdigit(static_cast<unsigned char>(t[i])) || t[i] == '.' ||
          t[i] == '-' || t[i] == '+' || t[i] == 'e' || t[i] == 'E')) {
    // Exponent sign handling: 'e'/'E' may be followed by +/-; the loop
    // already accepts those. "1e3Mbps" therefore splits correctly.
    ++i;
  }
  // Units that start with 'e' cannot occur ("1e" would swallow it), and no
  // current unit does.
  if (i == 0) return false;
  if (!parse_number_strict(t.substr(0, i), magnitude)) return false;
  unit = t.substr(i);
  return true;
}

Value parse_scalar(const std::string& raw, const std::string& file,
                   int line) {
  const std::string t = trim(raw);
  if (t.empty()) throw SpecError(file, line, "empty value");
  if (t.front() == '"') {
    if (t.size() < 2 || t.back() != '"') {
      throw SpecError(file, line, "unterminated string: " + t);
    }
    const std::string body = t.substr(1, t.size() - 2);
    if (body.find('"') != std::string::npos) {
      throw SpecError(file, line,
                      "stray '\"' inside string (escapes are not "
                      "supported): " + t);
    }
    return Value::string(body, line);
  }
  if (t == "true" || t == "false") {
    Value v;
    v.kind = Value::Kind::kBool;
    v.boolean = (t == "true");
    v.line = line;
    return v;
  }
  double num = 0.0;
  if (parse_number_strict(t, num)) return Value::number(num, line);
  throw SpecError(file, line,
                  "'" + t + "' is not a number, bool, or quoted string "
                  "(bare words must be quoted)");
}

// Split a `[a, b, c]` body on commas outside quotes.
std::vector<std::string> split_array_body(const std::string& body,
                                          const std::string& file,
                                          int line) {
  std::vector<std::string> parts;
  std::string cur;
  bool in_string = false;
  for (char c : body) {
    if (c == '"') in_string = !in_string;
    if (c == ',' && !in_string) {
      parts.push_back(cur);
      cur.clear();
    } else if ((c == '[' || c == ']') && !in_string) {
      throw SpecError(file, line, "nested arrays are not supported");
    } else {
      cur += c;
    }
  }
  if (in_string) throw SpecError(file, line, "unterminated string in array");
  parts.push_back(cur);
  return parts;
}

Value parse_value(const std::string& raw, const std::string& file,
                  int line) {
  const std::string t = trim(raw);
  if (t.empty()) throw SpecError(file, line, "missing value after '='");
  if (t.front() != '[') return parse_scalar(t, file, line);
  if (t.back() != ']') {
    throw SpecError(file, line, "array does not end with ']': " + t);
  }
  Value v;
  v.kind = Value::Kind::kArray;
  v.line = line;
  const std::string body = trim(t.substr(1, t.size() - 2));
  if (body.empty()) return v;  // [] — legal; consumers reject where needed
  for (const std::string& part : split_array_body(body, file, line)) {
    v.items.push_back(parse_scalar(part, file, line));
    if (v.items.size() > 1 &&
        v.items.back().kind != v.items.front().kind) {
      throw SpecError(file, line,
                      "array mixes " +
                          std::string(v.items.front().kind_name()) +
                          " and " +
                          std::string(v.items.back().kind_name()) +
                          " elements");
    }
  }
  return v;
}

}  // namespace

Value Value::string(std::string s, int line) {
  Value v;
  v.kind = Kind::kString;
  v.str = std::move(s);
  v.line = line;
  return v;
}

Value Value::number(double n, int line) {
  Value v;
  v.kind = Kind::kNumber;
  v.num = n;
  v.line = line;
  return v;
}

const char* Value::kind_name() const {
  switch (kind) {
    case Kind::kString: return "string";
    case Kind::kNumber: return "number";
    case Kind::kBool: return "bool";
    case Kind::kArray: return "array";
  }
  return "?";
}

// --- unit parsing ----------------------------------------------------------

SimTime parse_time(const std::string& text, const std::string& file,
                   int line) {
  double mag = 0.0;
  std::string unit;
  if (!split_quantity(text, mag, unit)) {
    throw SpecError(file, line,
                    "'" + text + "' is not a time (expected e.g. \"20ms\", "
                    "\"1.5s\", \"9min\")");
  }
  if (unit == "ns") return from_ns(static_cast<std::int64_t>(mag));
  if (unit == "us") return from_us(mag);
  if (unit == "ms") return from_ms(mag);
  if (unit == "s") return from_sec(mag);
  if (unit == "min") return from_sec(mag * 60.0);
  throw SpecError(file, line,
                  "'" + text + "' has unknown time unit '" + unit +
                  "' (use ns/us/ms/s/min)");
}

double parse_rate_bps(const std::string& text, const std::string& file,
                      int line) {
  double mag = 0.0;
  std::string unit;
  if (!split_quantity(text, mag, unit) || mag < 0.0) {
    throw SpecError(file, line,
                    "'" + text + "' is not a rate (expected e.g. "
                    "\"14.4Mbps\", \"1000pps\")");
  }
  if (unit == "bps") return mag;
  if (unit == "kbps") return mag * 1e3;
  if (unit == "Mbps") return mag * 1e6;
  if (unit == "Gbps") return mag * 1e9;
  if (unit == "pps") return mag * net::kDataPacketBytes * 8.0;
  throw SpecError(file, line,
                  "'" + text + "' has unknown rate unit '" + unit +
                  "' (use bps/kbps/Mbps/Gbps/pps)");
}

std::uint64_t parse_bytes(const std::string& text, const std::string& file,
                          int line) {
  double mag = 0.0;
  std::string unit;
  if (!split_quantity(text, mag, unit) || mag < 0.0) {
    throw SpecError(file, line,
                    "'" + text + "' is not a size (expected e.g. \"25pkt\", "
                    "\"64kB\")");
  }
  double bytes = 0.0;
  if (unit == "B") {
    bytes = mag;
  } else if (unit == "kB") {
    bytes = mag * 1e3;
  } else if (unit == "MB") {
    bytes = mag * 1e6;
  } else if (unit == "pkt") {
    bytes = mag * net::kDataPacketBytes;
  } else {
    throw SpecError(file, line,
                    "'" + text + "' has unknown size unit '" + unit +
                    "' (use B/kB/MB/pkt)");
  }
  return static_cast<std::uint64_t>(bytes);
}

// --- Section ---------------------------------------------------------------

bool Section::has(const std::string& key) const {
  for (const auto& [k, v] : entries_) {
    if (k == key) return true;
  }
  return false;
}

const Value* Section::find(const std::string& key) const {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].first == key) {
      used_[i] = true;
      return &entries_[i].second;
    }
  }
  return nullptr;
}

const Value& Section::require(const std::string& key) const {
  const Value* v = find(key);
  if (v == nullptr) {
    throw SpecError(file_, line_,
                    "[" + name_ + "] is missing required key '" + key + "'");
  }
  return *v;
}

void Section::type_error(const std::string& key, const Value& v,
                         const char* expected) const {
  throw SpecError(file_, v.line,
                  "[" + name_ + "] " + key + ": expected " + expected +
                  ", got " + v.kind_name());
}

double Section::get_number(const std::string& key) const {
  const Value& v = require(key);
  if (v.kind != Value::Kind::kNumber) type_error(key, v, "a number");
  return v.num;
}

double Section::get_number(const std::string& key, double fallback) const {
  return has(key) ? get_number(key) : fallback;
}

std::int64_t Section::get_int(const std::string& key) const {
  const Value& v = require(key);
  if (v.kind != Value::Kind::kNumber || v.num != std::floor(v.num)) {
    type_error(key, v, "an integer");
  }
  return static_cast<std::int64_t>(v.num);
}

std::int64_t Section::get_int(const std::string& key,
                              std::int64_t fallback) const {
  return has(key) ? get_int(key) : fallback;
}

std::string Section::get_string(const std::string& key) const {
  const Value& v = require(key);
  if (v.kind != Value::Kind::kString) type_error(key, v, "a string");
  return v.str;
}

std::string Section::get_string(const std::string& key,
                                const std::string& fallback) const {
  return has(key) ? get_string(key) : fallback;
}

bool Section::get_bool(const std::string& key, bool fallback) const {
  if (!has(key)) return fallback;
  const Value& v = require(key);
  if (v.kind != Value::Kind::kBool) type_error(key, v, "true or false");
  return v.boolean;
}

SimTime Section::get_time(const std::string& key) const {
  const Value& v = require(key);
  if (v.kind != Value::Kind::kString) {
    type_error(key, v, "a time string like \"20ms\"");
  }
  return parse_time(v.str, file_, v.line);
}

SimTime Section::get_time(const std::string& key, SimTime fallback) const {
  return has(key) ? get_time(key) : fallback;
}

double Section::get_rate_bps(const std::string& key) const {
  const Value& v = require(key);
  if (v.kind != Value::Kind::kString) {
    type_error(key, v, "a rate string like \"10Mbps\"");
  }
  return parse_rate_bps(v.str, file_, v.line);
}

double Section::get_rate_bps(const std::string& key, double fallback) const {
  return has(key) ? get_rate_bps(key) : fallback;
}

std::uint64_t Section::get_bytes(const std::string& key,
                                 std::uint64_t fallback) const {
  if (!has(key)) return fallback;
  const Value& v = require(key);
  if (v.kind != Value::Kind::kString) {
    type_error(key, v, "a size string like \"25pkt\"");
  }
  return parse_bytes(v.str, file_, v.line);
}

std::vector<double> Section::get_number_array(const std::string& key) const {
  const Value& v = require(key);
  std::vector<double> out;
  if (v.kind == Value::Kind::kNumber) {
    out.push_back(v.num);
    return out;
  }
  if (v.kind != Value::Kind::kArray) type_error(key, v, "an array of numbers");
  for (const Value& item : v.items) {
    if (item.kind != Value::Kind::kNumber) {
      type_error(key, item, "an array of numbers");
    }
    out.push_back(item.num);
  }
  return out;
}

std::vector<std::string> Section::get_string_array(
    const std::string& key) const {
  const Value& v = require(key);
  std::vector<std::string> out;
  if (v.kind == Value::Kind::kString) {
    out.push_back(v.str);
    return out;
  }
  if (v.kind != Value::Kind::kArray) type_error(key, v, "an array of strings");
  for (const Value& item : v.items) {
    if (item.kind != Value::Kind::kString) {
      type_error(key, item, "an array of strings");
    }
    out.push_back(item.str);
  }
  return out;
}

std::vector<SimTime> Section::get_time_array(const std::string& key) const {
  std::vector<SimTime> out;
  const Value& v = require(key);
  for (const std::string& s : get_string_array(key)) {
    out.push_back(parse_time(s, file_, v.line));
  }
  return out;
}

void Section::reject(const std::string& key, const std::string& why) const {
  const Value* v = find(key);
  throw SpecError(file_, v != nullptr ? v->line : line_,
                  "[" + name_ + "] " + key + ": " + why);
}

void Section::fail(const std::string& message) const {
  throw SpecError(file_, line_, "[" + name_ + "] " + message);
}

void Section::fail_at(int line, const std::string& message) const {
  throw SpecError(file_, line, "[" + name_ + "] " + message);
}

void Section::append(const std::string& key, Value v) {
  if (has(key)) {
    throw SpecError(file_, v.line,
                    "duplicate key '" + key + "' in [" + name_ + "]");
  }
  entries_.emplace_back(key, std::move(v));
  used_.push_back(false);
}

bool Section::override_value(const std::string& key, Value v) {
  for (auto& [k, existing] : entries_) {
    if (k == key) {
      existing = std::move(v);
      return true;
    }
  }
  return false;
}

void Section::mark_all_unused() const {
  for (std::size_t i = 0; i < used_.size(); ++i) used_[i] = false;
}

std::vector<std::pair<std::string, int>> Section::unused_keys() const {
  std::vector<std::pair<std::string, int>> out;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (!used_[i]) out.emplace_back(entries_[i].first, entries_[i].second.line);
  }
  return out;
}

// --- Spec ------------------------------------------------------------------

Spec Spec::parse_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw SpecError(path, 0, "cannot open spec file");
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_string(buf.str(), path);
}

Spec Spec::parse_string(const std::string& text, const std::string& file) {
  Spec spec;
  spec.file_ = file;
  std::istringstream in(text);
  std::string raw;
  int lineno = 0;
  Section* current = nullptr;
  while (std::getline(in, raw)) {
    ++lineno;
    const std::string line = trim(strip_comment(raw));
    if (line.empty()) continue;
    if (line.front() == '[') {
      if (line.back() != ']') {
        throw SpecError(file, lineno, "section header missing ']': " + line);
      }
      const std::string name = trim(line.substr(1, line.size() - 2));
      if (name.empty()) throw SpecError(file, lineno, "empty section name");
      for (char c : name) {
        if (!is_key_char(c)) {
          throw SpecError(file, lineno,
                          "section name '" + name +
                          "' must be lowercase [a-z0-9_]");
        }
      }
      if (spec.find_section(name) != nullptr) {
        throw SpecError(file, lineno, "duplicate section [" + name + "]");
      }
      spec.sections_.emplace_back(name, lineno, file);
      current = &spec.sections_.back();
      continue;
    }
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      throw SpecError(file, lineno,
                      "expected '[section]' or 'key = value': " + line);
    }
    const std::string key = trim(line.substr(0, eq));
    if (key.empty()) throw SpecError(file, lineno, "missing key before '='");
    for (char c : key) {
      // Sweep axes use dotted keys ("topology.cap_c") in [sweep] only;
      // the dot is allowed here and validated by the engine.
      if (!is_key_char(c) && c != '.') {
        throw SpecError(file, lineno,
                        "key '" + key + "' must be lowercase [a-z0-9_.]");
      }
    }
    if (current == nullptr) {
      throw SpecError(file, lineno,
                      "'" + key + "' appears before any [section]");
    }
    current->append(key, parse_value(line.substr(eq + 1), file, lineno));
  }
  return spec;
}

Section* Spec::find_section(const std::string& name) {
  for (Section& s : sections_) {
    if (s.name() == name) return &s;
  }
  return nullptr;
}

const Section* Spec::find_section(const std::string& name) const {
  for (const Section& s : sections_) {
    if (s.name() == name) return &s;
  }
  return nullptr;
}

Section& Spec::require_section(const std::string& name) {
  Section* s = find_section(name);
  if (s == nullptr) {
    throw SpecError(file_, 1, "spec is missing required section [" + name +
                    "]");
  }
  return *s;
}

const Section& Spec::require_section(const std::string& name) const {
  const Section* s = find_section(name);
  if (s == nullptr) {
    throw SpecError(file_, 1, "spec is missing required section [" + name +
                    "]");
  }
  return *s;
}

void Spec::check_all_used() const {
  for (const Section& s : sections_) {
    for (const auto& [key, line] : s.unused_keys()) {
      throw SpecError(file_, line,
                      "unknown key '" + key + "' in [" + s.name() + "]");
    }
  }
}

void Spec::mark_all_unused() const {
  for (const Section& s : sections_) s.mark_all_unused();
}

}  // namespace mpsim::scenario
