#include "cc/mptcp_lia.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "core/check.hpp"

namespace mpsim::cc {

namespace {
// Shared scratch state would make the algorithm non-const/non-reentrant;
// the vectors here are tiny (n <= 16 paths in practice) so per-call stack
// allocation is cheap relative to the packet-processing around it.
std::vector<double> snapshot_windows(const ConnectionView& c) {
  std::vector<double> w(c.num_subflows());
  for (std::size_t r = 0; r < w.size(); ++r) {
    w[r] = c.cwnd_pkts(r);
    MPSIM_CHECK(w[r] > 0.0,
                "congestion window must stay positive (>= min_cwnd)");
  }
  return w;
}

std::vector<double> snapshot_rtts(const ConnectionView& c) {
  std::vector<double> rtt(c.num_subflows());
  for (std::size_t r = 0; r < rtt.size(); ++r) {
    rtt[r] = c.srtt_sec(r);
    MPSIM_CHECK(rtt[r] > 0.0, "smoothed RTT must be positive");
  }
  return rtt;
}
}  // namespace

double MptcpLia::increase_linear(const std::vector<double>& windows,
                                 const std::vector<double>& rtts,
                                 std::size_t r) {
  const std::size_t n = windows.size();
  MPSIM_CHECK(rtts.size() == n && r < n, "window/RTT vectors out of step");

  // Order subflows by w/RTT^2 ascending. Note (sqrt(w)/RTT)^2 = w/RTT^2, so
  // this is the appendix's sqrt(w_s)/RTT_s ordering.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return windows[a] / (rtts[a] * rtts[a]) < windows[b] / (rtts[b] * rtts[b]);
  });

  // Position of r in the ordering.
  std::size_t pos = 0;
  while (order[pos] != r) ++pos;

  // min over u >= pos of (w_u/RTT_u^2) / (prefix-sum_{t<=u} w_t/RTT_t)^2.
  double best = std::numeric_limits<double>::infinity();
  double prefix = 0.0;
  for (std::size_t u = 0; u < n; ++u) {
    const std::size_t s = order[u];
    prefix += windows[s] / rtts[s];
    if (u < pos) continue;
    const double numer = windows[s] / (rtts[s] * rtts[s]);
    best = std::min(best, numer / (prefix * prefix));
  }
  return best;
}

double MptcpLia::increase_bruteforce(const std::vector<double>& windows,
                                     const std::vector<double>& rtts,
                                     std::size_t r) {
  const std::size_t n = windows.size();
  MPSIM_CHECK(n <= 20, "brute force is exponential; test use only");
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t mask = 1; mask < (1u << n); ++mask) {
    if (!(mask & (1u << r))) continue;
    double numer = 0.0;
    double denom = 0.0;
    for (std::size_t s = 0; s < n; ++s) {
      if (!(mask & (1u << s))) continue;
      numer = std::max(numer, windows[s] / (rtts[s] * rtts[s]));
      denom += windows[s] / rtts[s];
    }
    best = std::min(best, numer / (denom * denom));
  }
  return best;
}

double MptcpLia::increase_per_ack(const ConnectionView& c,
                                  std::size_t r) const {
  const double inc =
      increase_linear(snapshot_windows(c), snapshot_rtts(c), r);
  // Eq. (1): the minimum over subsets containing r is bounded by the
  // singleton-equivalent term, i.e. never more aggressive than 1/w_r.
  MPSIM_CHECK(inc > 0.0 && inc <= 1.0 / c.cwnd_pkts(r) + 1e-12,
              "LIA increase outside (0, 1/w_r] (eq. 1 bound)");
  return inc;
}

double MptcpLia::window_after_loss(const ConnectionView& c,
                                   std::size_t r) const {
  return c.cwnd_pkts(r) / 2.0;
}

const MptcpLia& mptcp_lia() {
  static const MptcpLia instance;
  return instance;
}

}  // namespace mpsim::cc
