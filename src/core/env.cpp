#include "core/env.hpp"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace mpsim::env {

namespace {

std::string trimmed(const std::string& text) {
  std::size_t b = 0;
  std::size_t e = text.size();
  while (b < e && std::isspace(static_cast<unsigned char>(text[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1]))) --e;
  return text.substr(b, e - b);
}

[[noreturn]] void die(const char* name, const char* value,
                      const std::string& expected) {
  std::fprintf(stderr, "mpsim: %s='%s' is invalid: expected %s\n", name,
               value, expected.c_str());
  std::exit(2);
}

}  // namespace

bool parse_double(const std::string& text, double& out) {
  const std::string t = trimmed(text);
  if (t.empty() || t.find('x') != std::string::npos ||
      t.find('X') != std::string::npos) {
    return false;  // reject hex: "0x2" parses as 0 under some strtods
  }
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(t.c_str(), &end);
  if (end != t.c_str() + t.size() || errno == ERANGE || !std::isfinite(v)) {
    return false;
  }
  out = v;
  return true;
}

bool parse_int(const std::string& text, std::int64_t& out) {
  const std::string t = trimmed(text);
  if (t.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(t.c_str(), &end, 10);
  if (end != t.c_str() + t.size() || errno == ERANGE) return false;
  out = v;
  return true;
}

double env_double(const char* name, double fallback, double min_exclusive) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return fallback;
  double v = 0.0;
  if (!parse_double(raw, v) || v <= min_exclusive) {
    char expected[64];
    std::snprintf(expected, sizeof expected, "a number > %g", min_exclusive);
    die(name, raw, expected);
  }
  return v;
}

std::int64_t env_int(const char* name, std::int64_t fallback,
                     std::int64_t min, std::int64_t max) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return fallback;
  std::int64_t v = 0;
  if (!parse_int(raw, v) || v < min || v > max) {
    char expected[80];
    std::snprintf(expected, sizeof expected,
                  "an integer in [%lld, %lld]", static_cast<long long>(min),
                  static_cast<long long>(max));
    die(name, raw, expected);
  }
  return v;
}

std::string env_choice(const char* name, const std::string& fallback,
                       const std::vector<std::string>& allowed) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return fallback;
  for (const std::string& a : allowed) {
    if (a == raw) return a;
  }
  std::string expected = "one of {";
  for (std::size_t i = 0; i < allowed.size(); ++i) {
    if (i > 0) expected += ", ";
    expected += allowed[i].empty() ? std::string("\"\"") : allowed[i];
  }
  expected += "}";
  die(name, raw, expected);
}

}  // namespace mpsim::env
