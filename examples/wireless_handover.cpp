// Example: seamless WiFi <-> 3G handover (§5 scenario, Fig. 17).
//
// A mobile client downloads over WiFi and 3G simultaneously. Mid-transfer
// the WiFi link dies (walked out of coverage) and later returns. The
// MPTCP connection never breaks: stranded packets are reinjected on the
// 3G subflow after the retransmission timeout, the data stream keeps
// advancing, and when WiFi returns the connection re-expands onto it —
// no application-visible reconnect, which is precisely what today's
// "switch interfaces by killing connections" heuristics cannot do.
//
// Run: ./wireless_handover
// With MPSIM_TRACE=csv the run also writes trace_wireless_handover.csv —
// every cwnd sample, rate change, reinjection and drop of the handover,
// ready for plotting (see README "Flight recorder").
#include <cstdio>

#include "cc/mptcp_lia.hpp"
#include "example_trace.hpp"
#include "mptcp/connection.hpp"
#include "net/variable_rate_queue.hpp"
#include "stats/monitors.hpp"
#include "topo/network.hpp"

int main() {
  using namespace mpsim;
  EventList events;
  examples::ExampleTrace et(events, "wireless_handover");
  topo::Network net(events);

  // WiFi: 14.4 Mb/s, 20 ms RTT, shallow buffer.
  auto& wifi_q = net.add_variable_queue("wifi", 14.4e6,
                                        25 * net::kDataPacketBytes);
  auto& wifi_pipe = net.add_pipe("wifi/p", from_ms(10));
  auto& wifi_ack = net.add_pipe("wifi/a", from_ms(10));
  // 3G: 2.1 Mb/s, 100 ms base RTT, deep buffer (overbuffered, as measured
  // in the paper).
  auto& g3_q = net.add_variable_queue("3g", 2.1e6, 200 * net::kDataPacketBytes);
  auto& g3_pipe = net.add_pipe("3g/p", from_ms(50));
  auto& g3_ack = net.add_pipe("3g/a", from_ms(50));

  mptcp::MptcpConnection conn(events, "mobile", cc::mptcp_lia());
  conn.add_subflow({&wifi_q, &wifi_pipe}, {&wifi_ack});
  conn.add_subflow({&g3_q, &g3_pipe}, {&g3_ack});
  conn.start(0);

  // Walk out of WiFi coverage at t=20 s, back at t=40 s.
  net::RateSchedule wifi_coverage(events, wifi_q,
                                  {{from_sec(20), 0.0},
                                   {from_sec(40), 14.4e6}});

  std::printf("time   WiFi-subflow   3G-subflow   total (Mb/s)\n");
  for (int t = 5; t <= 60; t += 5) {
    const std::uint64_t wprev = conn.subflow(0).packets_acked();
    const std::uint64_t gprev = conn.subflow(1).packets_acked();
    events.run_until(from_sec(t));
    const double wifi = stats::pkts_to_mbps(
        conn.subflow(0).packets_acked() - wprev, from_sec(5));
    const double g3 = stats::pkts_to_mbps(
        conn.subflow(1).packets_acked() - gprev, from_sec(5));
    const char* note = (t > 20 && t <= 40) ? "   <- WiFi outage" : "";
    std::printf("%3d s   %10.2f   %10.2f   %6.2f%s\n", t, wifi, g3,
                wifi + g3, note);
  }

  std::printf("\nconnection survived the outage: %llu packets delivered "
              "in order, %llu reinjected duplicates, %llu WiFi timeouts\n",
              static_cast<unsigned long long>(conn.receiver().delivered()),
              static_cast<unsigned long long>(conn.receiver().duplicates()),
              static_cast<unsigned long long>(conn.subflow(0).timeouts()));

  et.write();
  return 0;
}
