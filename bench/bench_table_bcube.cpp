// §4 BCube table — per-host throughput (Mb/s) for TP1/TP2/TP3.
//
// BCube(5,2): 125 hosts with 3 interfaces each, hosts relay traffic.
// Paper's numbers:
//
//               TP1    TP2    TP3
//   SINGLE-PATH  64.5   297    78
//   EWTCP        84     229    139
//   MPTCP        86.5   272    135
//
// TP2 destinations are each host's 12 one-digit neighbours (replica
// placement close in the topology); single-path does well there because
// all its flows are one-hop and never relay, while multipath's extra
// paths must relay through intermediate hosts' NICs. TP3 shows multipath
// exploiting all three interfaces of a host (139 vs 78).
#include "cc/ewtcp.hpp"
#include "cc/mptcp_lia.hpp"
#include "datacenter.hpp"

namespace mpsim {
namespace {

std::vector<traffic::FlowPair> bcube_tp2(const topo::BCube& bc) {
  std::vector<traffic::FlowPair> tm;
  for (int h = 0; h < bc.num_hosts(); ++h) {
    for (int l = 0; l < bc.levels(); ++l) {
      for (int d : bc.neighbors(h, l)) tm.push_back({h, d});
    }
  }
  return tm;
}

double run(int tp, const cc::CongestionControl* algo) {
  EventList events;
  topo::Network net(events);
  topo::BCube bc(net, 5, 2);
  Rng tm_rng(515 + static_cast<std::uint64_t>(tp));
  std::vector<traffic::FlowPair> tm;
  switch (tp) {
    case 1: tm = traffic::permutation_tm(bc.num_hosts(), tm_rng); break;
    case 2: tm = bcube_tp2(bc); break;
    default: tm = traffic::sparse_tm(bc.num_hosts(), 0.3, tm_rng); break;
  }
  bench::DcConfig cfg;
  cfg.algo = algo;
  cfg.npaths = 3;  // paper: 3 edge-disjoint BCube paths
  cfg.warmup_sec = 1.0 * bench::time_scale();
  cfg.measure_sec = 3.0 * bench::time_scale();
  auto result = bench::run_dc(
      events,
      [&](int s, int d, int n, Rng& rng) {
        return bench::bcube_paths(bc, s, d, n, rng);
      },
      bc.num_hosts(), tm, cfg);
  // Per-host for TP2 (12 flows per host summed), per-flow for TP1/TP3
  // (only participating hosts count).
  return tp == 2 ? result.per_host_mbps : result.per_flow_mean;
}

}  // namespace
}  // namespace mpsim

int main() {
  using namespace mpsim;
  bench::banner(
      "§4 BCube table: per-host throughput, BCube(5,2) (125 hosts x 3 NICs)",
      "paper: SINGLE 64.5/297/78, EWTCP 84/229/139, MPTCP 86.5/272/135");

  stats::Table table({"algorithm", "TP1", "TP2", "TP3", "paper"});
  struct Row {
    const char* name;
    const cc::CongestionControl* algo;
    const char* paper;
  };
  const Row rows[] = {
      {"SINGLE-PATH", nullptr, "64.5 / 297 / 78"},
      {"EWTCP", &cc::ewtcp(), "84 / 229 / 139"},
      {"MPTCP", &cc::mptcp_lia(), "86.5 / 272 / 135"},
  };
  for (const Row& row : rows) {
    table.add_row({row.name, stats::fmt_double(run(1, row.algo), 1),
                   stats::fmt_double(run(2, row.algo), 1),
                   stats::fmt_double(run(3, row.algo), 1), row.paper});
  }
  table.print();
  std::printf(
      "\nexpected shape: multipath > single on TP1/TP3 (multiple NICs); "
      "single-path wins TP2 (one-hop replicas, no relaying); "
      "MPTCP > EWTCP on TP2 (shifts off congested relay paths)\n");
  return 0;
}
