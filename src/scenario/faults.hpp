// The [faults] section of a scenario spec: a declarative fault schedule
// compiled into a fault::FaultPlan against the run's target registry.
//
//   [faults]
//   script = ["9min down wifi/q",          # time action [args...] target
//             "10.5min up 5Mbps wifi/q",
//             "2s rate 1Mbps 3g/q",
//             "3s ramp 8Mbps 2s 4 link1/q",
//             "4s loss 0.05 wifi/loss",
//             "5s loss_burst 0.3 500ms wifi/loss",
//             "6s drain link2/q",
//             "7s corrupt 3 link2/q",
//             "8s reset 0 mp"]
//   flap = ["link1/q start=1s period=2s down=250ms count=4"]
//   random_outage = ["wifi/q mean_up=5s mean_down=1s until=30s seed=1"]
//   recovery_poll = "1ms"                  # TTR probe interval (optional)
//
// All times run through BuildEnv::scaled so --scale compresses fault
// timelines exactly like warmup/measure. Every malformed entry is a
// SpecError pointing at the offending array item's file:line.
#pragma once

#include "fault/fault.hpp"
#include "scenario/registry.hpp"
#include "scenario/spec.hpp"

namespace mpsim::scenario {

struct ParsedFaults {
  fault::FaultPlan plan;
  SimTime recovery_poll = from_ms(1);
};

// Compile `sec` (a [faults] section) against the registered targets.
// Consumes the section's keys; throws SpecError on any malformed entry.
ParsedFaults parse_fault_plan(const Section& sec,
                              const fault::TargetRegistry& targets,
                              const BuildEnv& env);

}  // namespace mpsim::scenario
