#include "trace/trace.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "core/check.hpp"
#include "core/env.hpp"

namespace mpsim::trace {

TraceRecorder::TraceRecorder(Config cfg) {
  MPSIM_CHECK(cfg.capacity > 0, "trace ring capacity must be positive");
  ring_.resize(cfg.capacity);
}

TraceRecorder& TraceRecorder::install(EventList& events, Config cfg) {
  MPSIM_CHECK(find(events) == nullptr,
              "TraceRecorder::install: recorder already attached");
  // kTraceRecorderSlot holds a TraceRecorder or nothing, so the downcast is
  // safe by construction (same contract as PacketPool's slot).
  auto& rec = static_cast<TraceRecorder&>(events.attach_service(
      EventList::kTraceRecorderSlot, std::make_unique<TraceRecorder>(cfg)));
  rec.events_ = &events;
  return rec;
}

TraceRecorder* TraceRecorder::find(const EventList& events) {
  return static_cast<TraceRecorder*>(
      events.service(EventList::kTraceRecorderSlot));
}

std::uint16_t TraceRecorder::register_object(std::string name) {
  MPSIM_CHECK(names_.size() < 0xffff, "trace object id space exhausted");
  // Registration: once per traced object at topology-construction time
  // (reachable from receive() only via lazy first-touch registration).
  // mpsim-analyze: allow(hot-alloc)
  names_.push_back(std::move(name));
  return static_cast<std::uint16_t>(names_.size() - 1);
}

const std::string& TraceRecorder::object_name(std::uint16_t id) const {
  // Records carry obj=0 by default; a stream mixing registered and
  // anonymous objects still flushes cleanly.
  static const std::string kUnknown = "?";
  return id < names_.size() ? names_[id] : kUnknown;
}

void TraceRecorder::flush(TraceSink& sink) const {
  sink.begin();
  std::size_t i = (write_ + ring_.size() - size_) % ring_.size();
  for (std::size_t n = 0; n < size_; ++n) {
    const Record& r = ring_[i];
    sink.record(r, object_name(r.obj));
    if (++i == ring_.size()) i = 0;
  }
  sink.finish();
}

void TraceRecorder::flush_merged(
    const std::vector<const TraceRecorder*>& recorders, TraceSink& sink) {
  struct Tagged {
    const Record* r;
    const TraceRecorder* rec;
  };
  std::vector<Tagged> all;
  std::size_t total = 0;
  for (const TraceRecorder* rec : recorders) total += rec->size();
  all.reserve(total);
  for (const TraceRecorder* rec : recorders) {
    std::size_t i =
        (rec->write_ + rec->ring_.size() - rec->size_) % rec->ring_.size();
    for (std::size_t n = 0; n < rec->size_; ++n) {
      all.push_back(Tagged{&rec->ring_[i], rec});
      if (++i == rec->ring_.size()) i = 0;
    }
  }
  std::stable_sort(all.begin(), all.end(), [](const Tagged& a,
                                              const Tagged& b) {
    if (a.r->t != b.r->t) return a.r->t < b.r->t;
    if (a.r->okey != b.r->okey) return a.r->okey < b.r->okey;
    return a.r->oseq < b.r->oseq;
  });
  sink.begin();
  for (const Tagged& t : all) {
    sink.record(*t.r, t.rec->object_name(t.r->obj));
  }
  sink.finish();
}

SinkKind sink_from_env() {
  const std::string s = env::env_choice(
      "MPSIM_TRACE", "off", {"csv", "jsonl", "null", "off", "1", "on"});
  if (s == "csv" || s == "1" || s == "on") return SinkKind::kCsv;
  if (s == "jsonl") return SinkKind::kJsonl;
  if (s == "null") return SinkKind::kNull;
  return SinkKind::kNone;
}

TraceRecorder::Config config_from_env() {
  TraceRecorder::Config cfg;
  const std::int64_t n = env::env_int("MPSIM_TRACE_CAPACITY", 0, 0,
                                      std::int64_t{1} << 32);
  if (n > 0) cfg.capacity = static_cast<std::size_t>(n);
  return cfg;
}

}  // namespace mpsim::trace
