#include "mptcp/connection.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "cc/uncoupled.hpp"
#include "core/check.hpp"
#include "mptcp/path_manager.hpp"

namespace mpsim::mptcp {

MptcpConnection::MptcpConnection(EventList& events, std::string name,
                                 const cc::CongestionControl& cc,
                                 ConnectionConfig cfg)
    : EventSource(events, std::move(name)),
      events_(events),
      cc_(cc),
      cfg_(cfg),
      flow_id_(events.alloc_flow_id()),
      scheduler_(make_data_scheduler(cfg.scheduler, cfg.app_limit_pkts,
                                     cfg.recv_buffer_pkts)),
      receiver_(events, EventSource::name() + "/rx", flow_id_,
                cfg.recv_buffer_pkts) {
  scheduler_->set_view(this);
  trace_ = trace::TraceRecorder::find(events);
  if (trace_ != nullptr) {
    trace_id_ = trace_->register_object(EventSource::name());
    // Reinjection decisions happen inside the scheduler (which owns the
    // dedup); give it its own object id so those records are attributable.
    scheduler_->set_trace(
        &events_, trace_,
        trace_->register_object(EventSource::name() + "/sched"), flow_id_);
  }
  receiver_.set_wire_counter(&wire_refs_);
}

MptcpConnection::~MptcpConnection() {
  // Remove the pending start/pump wake-up, if any. The receiver and the
  // subflows cancel their own events (and release their arena rows) in
  // their destructors, which member destruction order runs next.
  events_.cancel(*this);
}

tcp::Subflow& MptcpConnection::add_subflow(
    const std::vector<net::PacketSink*>& fwd_path,
    const std::vector<net::PacketSink*>& rev_path) {
  // Subflow opens happen at path-management granularity — a handful per
  // connection lifetime, never per packet — so constructing the subflow
  // and its routes may allocate even when reached from a PathManager scan.
  const auto id = static_cast<std::uint32_t>(subflows_.size());
  // mpsim-analyze: allow(hot-alloc)
  auto sub = std::make_unique<tcp::Subflow>(
      // mpsim-analyze: allow(hot-alloc)
      events_, EventSource::name() + "/sf" + std::to_string(id), *this,
      flow_id_, id, cfg_.subflow);
  // A rate-based controller needs every subflow in rate mode from its
  // first transmission: estimator board armed, pacer live, window
  // model-driven.
  if (cc_.rate_based()) sub->enable_rate_mode();

  // mpsim-analyze: allow(hot-alloc)
  auto fwd = std::make_unique<net::Route>();
  for (auto* hop : fwd_path) fwd->push_back(hop);
  fwd->push_back(&receiver_);

  // mpsim-analyze: allow(hot-alloc)
  auto rev = std::make_unique<net::Route>();
  for (auto* hop : rev_path) rev->push_back(hop);
  rev->push_back(sub.get());

  fwd->set_reverse(rev.get());
  rev->set_reverse(fwd.get());

  sub->set_route(*fwd);
  sub->set_wire_counter(&wire_refs_);
  receiver_.add_subflow(*rev);

  // mpsim-analyze: allow(hot-alloc)
  routes_.push_back(std::move(fwd));
  // mpsim-analyze: allow(hot-alloc)
  routes_.push_back(std::move(rev));
  // mpsim-analyze: allow(hot-alloc)
  subflows_.push_back(std::move(sub));
  // mpsim-analyze: allow(hot-alloc)
  hot_.push_back(&subflows_.back()->hot());
  // mpsim-analyze: allow(hot-alloc)
  rate_hot_.push_back(subflows_.back()->rate_mode()
                          ? &subflows_.back()->rate_hot()
                          : nullptr);

  // Record subflow-set changes of a *live* connection only: build-time
  // path registration is structural configuration, not a lifecycle event
  // (and predates any interesting timeline anyway).
  if (started_) {
    MPSIM_TRACE(trace_,
                trace::subflow_add(events_.now(), trace_id_, flow_id_, id,
                                   num_active_subflows(), subflows_.size()));
  }

  // Subflows may join an already-running connection (§6: "additional
  // subflows can be initiated"; e.g. a newly acquired basestation). Kick
  // the pump so the newcomer starts pulling data immediately.
  if (started_ && events_.now() >= start_time_) {
    events_.schedule_at(*this, events_.now());
  }
  return *subflows_.back();
}

PathManager& MptcpConnection::attach_path_manager(
    const PathManagerConfig& pm_cfg) {
  MPSIM_CHECK(path_manager_ == nullptr,
              "connection already has a path manager");
  path_manager_ =
      std::make_unique<PathManager>(events_, *this, pm_cfg);
  if (started_) {
    path_manager_->start(std::max(events_.now(), start_time_));
  }
  return *path_manager_;
}

void MptcpConnection::start(SimTime at) {
  started_ = true;
  start_time_ = at;
  events_.schedule_at(*this, at);
  if (path_manager_ != nullptr) path_manager_->start(at);
}

void MptcpConnection::on_event() {
  if (last_data_advance_ == 0) last_data_advance_ = events_.now();
  pump_all();
}

void MptcpConnection::pump_all() {
  if (pumping_) return;  // try_send below re-enters via on_subflow_progress
  pumping_ = true;
  for (auto& sub : subflows_) sub->try_send();
  pumping_ = false;
}

bool MptcpConnection::next_data(std::uint32_t subflow_id,
                                std::uint64_t& data_seq) {
  return scheduler_->next_data(subflow_id, data_seq);
}

double MptcpConnection::ca_increase(std::uint32_t subflow_id) {
  return cc_.increase_per_ack(*this, subflow_id);
}

double MptcpConnection::window_after_loss(std::uint32_t subflow_id) {
  return cc_.window_after_loss(*this, subflow_id);
}

void MptcpConnection::on_data_ack(std::uint64_t data_cum_ack,
                                  std::uint64_t rcv_window) {
  // A data-level cumulative ACK can never pass the highest data sequence
  // the scheduler has handed out (the receiver acks only what was sent).
  MPSIM_CHECK(data_cum_ack <= scheduler_->next_new(),
              "data-level ACK beyond the highest data seq ever sent");
  scheduler_->on_data_ack(data_cum_ack, rcv_window);
  if (scheduler_->data_cum_ack() > last_data_cum_) {
    last_data_cum_ = scheduler_->data_cum_ack();
    last_data_advance_ = events_.now();
    MPSIM_TRACE(trace_,
                trace::data_ack(events_.now(), trace_id_, flow_id_,
                                last_data_cum_, scheduler_->right_edge()));
  }
  if (scheduler_->complete() && !completion_fired_) {
    completion_fired_ = true;
    completed_at_ = events_.now();
    if (on_complete) on_complete();
  }
}

void MptcpConnection::reset_subflow(std::size_t r) {
  MPSIM_CHECK(r < subflows_.size(), "reset_subflow index out of range");
  subflows_[r]->force_timeout();
}

void MptcpConnection::drop_subflow(std::size_t r, bool rto_dead) {
  MPSIM_CHECK(r < subflows_.size(), "drop_subflow index out of range");
  tcp::Subflow& sf = *subflows_[r];
  if (!sf.active()) return;
  // Strand nothing: everything still unacknowledged on the dying subflow
  // becomes a reinjection candidate for the survivors (already-acked seqs
  // are filtered by the scheduler). If no sibling is currently active the
  // seqs wait in the queue for the next reactivation.
  const std::vector<std::uint64_t> outstanding = sf.outstanding_data();
  sf.deactivate();
  scheduler_->reinject(outstanding);
  // Entries targeting data the receiver already has must not linger in the
  // dedup set now that no ACK from this subflow will retire them promptly.
  scheduler_->purge_acked();
  MPSIM_TRACE(trace_,
              trace::subflow_drop(events_.now(), trace_id_, flow_id_,
                                  static_cast<std::uint32_t>(r),
                                  rto_dead ? trace::kDropRtoDead
                                           : trace::kDropAdmin,
                                  outstanding.size()));
  pump_all();
}

void MptcpConnection::reactivate_subflow(std::size_t r) {
  MPSIM_CHECK(r < subflows_.size(), "reactivate_subflow index out of range");
  tcp::Subflow& sf = *subflows_[r];
  if (sf.active()) return;
  sf.reactivate();
  MPSIM_TRACE(trace_, trace::subflow_add(events_.now(), trace_id_, flow_id_,
                                         static_cast<std::uint32_t>(r),
                                         num_active_subflows(),
                                         subflows_.size()));
  pump_all();
}

void MptcpConnection::on_subflow_rto(
    std::uint32_t subflow_id,
    const std::vector<std::uint64_t>& outstanding) {
  // Only reinject if an *active* sibling exists to carry the data; the
  // timed-out subflow itself still go-back-N retransmits on its own
  // schedule.
  if (num_active_subflows() > 1) scheduler_->reinject(outstanding);
  // A reset is also the moment stale pending entries (queued for data the
  // receiver meanwhile acknowledged) are guaranteed purgeable.
  scheduler_->purge_acked();
  (void)subflow_id;
  pump_all();
}

void MptcpConnection::on_ack_sample(std::uint32_t subflow_id,
                                    const cc::DeliveryRateSample& sample) {
  cc_.on_ack_sample(*this, subflow_id, sample);
  RateHot* rh = rate_hot_[subflow_id];
  MPSIM_CHECK(rh != nullptr && rh->pacing_rate > 0.0,
              "a rate-based controller must publish a positive pacing rate "
              "on every delivery sample");
  tcp::Subflow& sf = *subflows_[subflow_id];
  sf.set_cwnd(cc_.target_cwnd_pkts(*this, subflow_id));
  MPSIM_TRACE(trace_,
              trace::rate_sample(events_.now(), trace_id_, flow_id_,
                                 subflow_id, sample.delivery_rate,
                                 rh->pacing_rate, sample.delivered_pkts,
                                 sample.app_limited));
}

void MptcpConnection::on_subflow_progress(std::uint32_t /*subflow_id*/) {
  // An ACK freed window or advanced the flow-control edge; siblings may now
  // be able to transmit (window-based striping).
  maybe_reinject_head_of_line();
  pump_all();
}

void MptcpConnection::maybe_reinject_head_of_line() {
  if (subflows_.size() < 2 || cfg_.hol_reinject_timeout <= 0) return;
  const SimTime now = events_.now();
  // A stall shorter than a couple of round trips on the slowest path is
  // normal reordering delay, not head-of-line blocking; only react beyond
  // that (otherwise long-RTT paths trigger wasteful duplicates).
  SimTime threshold = cfg_.hol_reinject_timeout;
  for (const auto& sub : subflows_) {
    threshold = std::max(threshold, 2 * sub->rtt().srtt());
  }
  if (now - last_data_advance_ < threshold) return;
  if (now - last_hol_reinject_ < threshold) return;

  // The stream is blocked on data seq == data_cum_ack, which lives in some
  // subflow's outstanding window (possibly deep in a long recovery there).
  // Reinject the oldest outstanding data so siblings can fill the holes.
  std::vector<std::uint64_t> outstanding;
  for (const auto& sub : subflows_) {
    for (std::uint64_t seq : sub->outstanding_data()) {
      // Head-of-line rescue: rate-limited to one sweep per stall threshold
      // (an RTT-scale interval), so scratch allocation here is off the
      // per-packet path by construction.
      // mpsim-analyze: allow(hot-alloc)
      if (seq >= scheduler_->data_cum_ack()) outstanding.push_back(seq);
    }
  }
  if (outstanding.empty()) return;
  std::sort(outstanding.begin(), outstanding.end());
  if (outstanding.size() > cfg_.hol_reinject_batch) {
    // mpsim-analyze: allow(hot-alloc)
    outstanding.resize(cfg_.hol_reinject_batch);
  }
  scheduler_->reinject(outstanding);
  last_hol_reinject_ = now;
  ++hol_reinjections_;
}

double MptcpConnection::srtt_sec(std::size_t r) const {
  const SubflowHot& h = *hot_[r];
  return to_sec(h.rtt_valid != 0 ? h.srtt
                                 : from_sec(cfg_.fallback_rtt_sec));
}

double MptcpConnection::delivered_mbps(SimTime elapsed) const {
  if (elapsed <= 0) return 0.0;
  const double bits = static_cast<double>(receiver_.delivered()) *
                      net::kDataPacketBytes * 8.0;
  return bits / to_sec(elapsed) / 1e6;
}

std::unique_ptr<MptcpConnection> make_single_path_tcp(
    EventList& events, std::string name,
    const std::vector<net::PacketSink*>& fwd_path,
    const std::vector<net::PacketSink*>& rev_path, ConnectionConfig cfg) {
  auto conn = std::make_unique<MptcpConnection>(events, std::move(name),
                                                cc::uncoupled(), cfg);
  conn->add_subflow(fwd_path, rev_path);
  return conn;
}

}  // namespace mpsim::mptcp
