#include "mptcp/scheduler.hpp"

#include <algorithm>

#include "core/check.hpp"

namespace mpsim::mptcp {

bool DataScheduler::next_data(std::uint64_t& data_seq) {
  // Drain reinjections first: these unblock the receiver's head-of-line.
  while (!reinject_q_.empty()) {
    const std::uint64_t seq = reinject_q_.front();
    reinject_q_.pop_front();
    reinject_pending_.erase(seq);
    if (seq < data_cum_ack_) continue;  // acked meanwhile; obsolete
    data_seq = seq;
    return true;
  }
  if (app_limited() && next_new_ >= app_limit_) return false;
  if (next_new_ >= right_edge_) return false;  // receiver-buffer limited
  data_seq = next_new_++;
  return true;
}

void DataScheduler::on_data_ack(std::uint64_t data_cum_ack,
                                std::uint64_t rcv_window) {
  const std::uint64_t before = data_cum_ack_;
  data_cum_ack_ = std::max(data_cum_ack_, data_cum_ack);
  right_edge_ = std::max(right_edge_, data_cum_ack + rcv_window);
  // (data_cum_ack <= highest-assigned is checked by MptcpConnection, which
  // owns both ends; the scheduler alone may be driven abstractly in tests.)
  MPSIM_CHECK(data_cum_ack_ <= right_edge_,
              "flow-control right edge fell behind the cumulative ACK");
  // Eager cleanup: queued reinjections the ACK just retired would otherwise
  // wait for a next_data() pull that may never come (all target subflows
  // dead, or the connection complete), pinning reinject_pending_ entries.
  if (data_cum_ack_ != before && !reinject_q_.empty()) purge_acked();
}

std::uint64_t DataScheduler::purge_acked() {
  std::uint64_t purged = 0;
  std::size_t kept = 0;
  for (std::size_t i = 0; i < reinject_q_.size(); ++i) {
    const std::uint64_t seq = reinject_q_[i];
    if (seq < data_cum_ack_) {
      reinject_pending_.erase(seq);
      ++purged;
      continue;
    }
    reinject_q_[kept++] = seq;
  }
  // Shrinking resize: never allocates, only trims the compacted tail.
  // mpsim-analyze: allow(hot-alloc)
  reinject_q_.resize(kept);
  purged_total_ += purged;
  return purged;
}

void DataScheduler::reinject(const std::vector<std::uint64_t>& data_seqs) {
  std::uint64_t accepted = 0;
  std::uint64_t first = 0;
  for (std::uint64_t seq : data_seqs) {
    if (seq < data_cum_ack_) continue;
    // Reinjection is the exceptional path (HoL stall or subflow death),
    // rate-limited by the caller; bounded by hol_reinject_batch per sweep.
    // mpsim-analyze: allow(hot-alloc)
    if (!reinject_pending_.insert(seq).second) continue;  // already queued
    // mpsim-analyze: allow(hot-alloc)
    reinject_q_.push_back(seq);
    if (accepted == 0) first = seq;
    ++accepted;
  }
  reinjected_total_ += accepted;
  if (accepted > 0) {
    MPSIM_TRACE(trace_, trace::reinject(trace_events_->now(), trace_id_,
                                        trace_flow_, accepted, first));
  }
}

}  // namespace mpsim::mptcp
