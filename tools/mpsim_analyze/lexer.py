"""C++ tokenizer for mpsim_analyze.

A deliberately small lexer: enough C++ to build a symbol table and a call
graph over this repository's sources, with zero third-party dependencies.
It understands line/block comments, string/char literals (including raw
strings), preprocessor lines, identifiers, numbers and multi-character
punctuators. It does not preprocess: macros are tokenized as identifiers,
which is what the call-site extractor wants (an `MPSIM_TRACE(rec, b(...))`
site still exposes the builder call `b(...)` to the parser).

Comments are not emitted as tokens, but `// mpsim-analyze: allow(...)` and
`// mpsim-lint: allow(...)` markers are collected per line so rule passes
can honor suppressions.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

IDENT_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
IDENT_CONT = IDENT_START | set("0123456789")

# Longest-match punctuators the parser cares about distinguishing.
PUNCT3 = ("<<=", ">>=", "...", "->*")
PUNCT2 = ("::", "->", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
          "++", "--", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=")

ALLOW_RE = re.compile(r"//\s*mpsim-(analyze|lint):\s*allow\(([\w\-,\s]+)\)")


@dataclass(frozen=True)
class Token:
    kind: str  # 'ident' | 'number' | 'string' | 'char' | 'punct'
    text: str
    line: int


@dataclass
class LexedFile:
    path: str
    tokens: list  # list[Token]
    lines: list   # raw source lines (1-based access via lines[i-1])
    # line -> {(tool, rule), ...} for every allow marker on that line
    allows: dict


def _collect_allows(lines: list) -> dict:
    allows: dict = {}
    for i, raw in enumerate(lines, start=1):
        for m in ALLOW_RE.finditer(raw):
            tool = m.group(1)
            for rule in m.group(2).split(","):
                allows.setdefault(i, set()).add((tool, rule.strip()))
    return allows


def lex(path: str, text: str) -> LexedFile:
    tokens: list = []
    lines = text.splitlines()
    n = len(text)
    i = 0
    line = 1

    def peek(k: int = 0) -> str:
        j = i + k
        return text[j] if j < n else ""

    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            i += 1
            continue
        if c in " \t\r\f\v":
            i += 1
            continue
        # Comments.
        if c == "/" and peek(1) == "/":
            j = text.find("\n", i)
            i = n if j == -1 else j
            continue
        if c == "/" and peek(1) == "*":
            j = text.find("*/", i + 2)
            if j == -1:
                j = n
            line += text.count("\n", i, j)
            i = j + 2 if j < n else n
            continue
        # Preprocessor: consume the directive line (and continuations).
        if c == "#" and (not tokens or tokens[-1].line != line):
            while i < n:
                j = text.find("\n", i)
                if j == -1:
                    i = n
                    break
                if text[j - 1] == "\\":
                    line += 1
                    i = j + 1
                    continue
                i = j  # leave the newline for the main loop
                break
            continue
        # Raw strings: R"delim( ... )delim".
        if c == "R" and peek(1) == '"':
            m = re.match(r'R"([^()\\ ]{0,16})\(', text[i:])
            if m:
                close = ")" + m.group(1) + '"'
                j = text.find(close, i + m.end())
                if j == -1:
                    j = n
                else:
                    j += len(close)
                tokens.append(Token("string", '""', line))
                line += text.count("\n", i, j)
                i = j
                continue
        if c == '"' or (c == "'" and not _is_digit_separator(tokens)):
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                if text[j] == "\\":
                    j += 1
                j += 1
            tokens.append(Token("string" if quote == '"' else "char",
                                '""' if quote == '"' else "' '", line))
            line += text.count("\n", i, j)
            i = j + 1
            continue
        if c in IDENT_START:
            j = i + 1
            while j < n and text[j] in IDENT_CONT:
                j += 1
            tokens.append(Token("ident", text[i:j], line))
            i = j
            continue
        if c.isdigit() or (c == "." and peek(1).isdigit()):
            j = i + 1
            while j < n and (text[j] in IDENT_CONT or text[j] in ".'"
                             or (text[j] in "+-" and text[j - 1] in "eEpP")):
                j += 1
            tokens.append(Token("number", text[i:j], line))
            i = j
            continue
        three, two = text[i:i + 3], text[i:i + 2]
        if three in PUNCT3:
            tokens.append(Token("punct", three, line))
            i += 3
        elif two in PUNCT2:
            tokens.append(Token("punct", two, line))
            i += 2
        else:
            tokens.append(Token("punct", c, line))
            i += 1

    return LexedFile(path=path, tokens=tokens, lines=lines,
                     allows=_collect_allows(lines))


def _is_digit_separator(tokens: list) -> bool:
    """True when a ' directly follows a number token (1'000'000)."""
    return bool(tokens) and tokens[-1].kind == "number"
