// Mid-connection subflow establishment (§6: "After this, additional
// subflows can be initiated"): a running connection acquires a new path —
// the mobile "new basestation" case — and the coupled controller folds it
// into the stripe.
#include <gtest/gtest.h>

#include "cc/ewtcp.hpp"
#include "cc/mptcp_lia.hpp"
#include "mptcp/connection.hpp"
#include "sim_fixtures.hpp"
#include "stats/monitors.hpp"
#include "topo/network.hpp"
#include "topo/two_link.hpp"

namespace mpsim {
namespace {

using mptcp::MptcpConnection;
using test::SingleLink;

TEST(SubflowJoin, LateSubflowCarriesTrafficImmediately) {
  EventList events;
  topo::Network net(events);
  topo::LinkSpec spec;
  spec.rate_bps = 10e6;
  spec.one_way_delay = from_ms(10);
  spec.buf_bytes = topo::bdp_bytes(10e6, from_ms(20));
  topo::TwoLink links(net, spec, spec);
  MptcpConnection mp(events, "mp", cc::mptcp_lia());
  mp.add_subflow(links.fwd(0), links.rev(0));
  mp.start(0);
  events.run_until(from_sec(10));
  const auto single_path = mp.delivered_pkts();
  ASSERT_EQ(mp.num_subflows(), 1u);

  // New path appears mid-flight.
  mp.add_subflow(links.fwd(1), links.rev(1));
  EXPECT_EQ(mp.num_subflows(), 2u);
  events.run_until(from_sec(12));
  EXPECT_GT(mp.subflow(1).packets_acked(), 100u)
      << "the joiner must start moving data within seconds";
  events.run_until(from_sec(25));
  // Aggregate rate roughly doubles once both links are in use.
  const double before_mbps = stats::pkts_to_mbps(single_path, from_sec(10));
  const double after_mbps = stats::pkts_to_mbps(
      mp.delivered_pkts() - single_path, from_sec(15));
  EXPECT_GT(after_mbps, 1.6 * before_mbps);
  EXPECT_EQ(mp.receiver().window_violations(), 0u);
}

TEST(SubflowJoin, JoinerOnSharedBottleneckStaysFair) {
  // The new subflow shares the existing bottleneck: total take must stay
  // about one TCP's worth (the whole point of coupling), not grow.
  EventList events;
  topo::Network net(events);
  SingleLink link(net, 12e6, from_ms(10), topo::bdp_bytes(12e6, from_ms(20)));
  MptcpConnection mp(events, "mp", cc::mptcp_lia());
  mp.add_subflow(link.fwd(), link.rev());
  auto tcp = test::single_tcp(events, "tcp", link);
  mp.start(0);
  tcp->start(from_ms(53));
  events.run_until(from_sec(20));
  mp.add_subflow(link.fwd(), link.rev());  // join on the SAME bottleneck
  events.run_until(from_sec(30));          // let it converge
  const auto mp0 = mp.delivered_pkts();
  const auto tcp0 = tcp->delivered_pkts();
  events.run_until(from_sec(100));
  const double mp_share = static_cast<double>(mp.delivered_pkts() - mp0);
  const double tcp_share = static_cast<double>(tcp->delivered_pkts() - tcp0);
  EXPECT_NEAR(mp_share / (mp_share + tcp_share), 0.5, 0.12)
      << "coupling must absorb the joiner at a shared bottleneck";
}

TEST(SubflowJoin, EwtcpWeightAdaptsToSubflowCount) {
  // EWTCP's auto weight is 1/n; after a join it must re-weight.
  EventList events;
  topo::Network net(events);
  SingleLink link(net, 10e6, from_ms(10), topo::bdp_bytes(10e6, from_ms(20)));
  MptcpConnection mp(events, "mp", cc::ewtcp());
  mp.add_subflow(link.fwd(), link.rev());
  EXPECT_DOUBLE_EQ(cc::ewtcp().weight_for(mp), 1.0);
  mp.add_subflow(link.fwd(), link.rev());
  EXPECT_DOUBLE_EQ(cc::ewtcp().weight_for(mp), 0.5);
  mp.add_subflow(link.fwd(), link.rev());
  EXPECT_DOUBLE_EQ(cc::ewtcp().weight_for(mp), 1.0 / 3.0);
}

TEST(SubflowJoin, JoinBeforeStartIsEquivalentToConstruction) {
  EventList events;
  topo::Network net(events);
  topo::LinkSpec spec;
  spec.rate_bps = 10e6;
  spec.one_way_delay = from_ms(10);
  spec.buf_bytes = topo::bdp_bytes(10e6, from_ms(20));
  topo::TwoLink links(net, spec, spec);
  MptcpConnection mp(events, "mp", cc::mptcp_lia());
  mp.add_subflow(links.fwd(0), links.rev(0));
  mp.add_subflow(links.fwd(1), links.rev(1));  // both before start
  mp.start(from_sec(1));
  events.run_until(from_sec(11));
  EXPECT_GT(stats::pkts_to_mbps(mp.delivered_pkts(), from_sec(10)), 14.0);
}

}  // namespace
}  // namespace mpsim
