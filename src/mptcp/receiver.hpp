// The receiving end of a multipath connection, implementing the §6 design
// decisions the paper settled on after its deadlock analysis:
//
//   * separate sequence spaces: subflow sequence numbers for loss detection
//     (per-subflow cumulative ACK), data sequence numbers for stream
//     reassembly;
//   * a single shared receive buffer pool for all subflows (per-subflow
//     pools can deadlock when one subflow stalls);
//   * an explicit data-level cumulative ACK on every ACK (inferring it from
//     subflow ACKs mis-tracks the window's trailing edge when ACKs reorder
//     across paths);
//   * the receive window advertised relative to the data sequence space.
//
// An ACK is generated for every arriving data packet (including duplicates
// — the sender's fast-retransmit needs the dupacks).
//
// The application read rate is configurable: infinitely fast by default
// (occupancy is then only reorder buffering), or a finite rate so tests can
// reproduce the flow-control corner cases of §6.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/event_list.hpp"
#include "mptcp/flat_seq_set.hpp"
#include "net/packet.hpp"
#include "trace/trace.hpp"

namespace mpsim::mptcp {

class MptcpReceiver : public net::PacketSink, public EventSource {
 public:
  MptcpReceiver(EventList& events, std::string name, std::uint32_t flow_id,
                std::uint64_t buffer_pkts);

  // Teardown cancels any pending delayed-ACK / app-drain wake-up so a
  // reclaimed connection leaves no dangling event behind.
  ~MptcpReceiver() override { events_.cancel(*this); }

  // Register the ACK return route for the next subflow (call order defines
  // subflow ids, matching the sender side).
  void add_subflow(const net::Route& ack_route);

  // Wire-reference ledger shared with the sender side (see
  // net::Packet::wire_refs): every ACK this receiver emits increments it.
  void set_wire_counter(std::uint64_t* c) { wire_counter_ = c; }

  // PacketSink: data packets from any subflow.
  void receive(net::Packet& pkt) override;
  const std::string& sink_name() const override { return EventSource::name(); }

  // EventSource: periodic application reads when the read rate is finite.
  void on_event() override;

  // 0 = infinite (default): the app consumes data the instant it is in
  // order. Finite rates make in-order data occupy the shared buffer until
  // read, shrinking the advertised window.
  void set_app_read_rate(double pkts_per_sec);

  // Delayed ACKs (RFC 1122-style): acknowledge every second in-order
  // segment, or after `delay` if only one is pending. Out-of-order
  // arrivals are always acked immediately (the sender needs the dupacks).
  // Off by default — the paper-era simulators ack per packet.
  void set_delayed_ack(bool enabled, SimTime delay = from_ms(40));

  // --- observability ---
  std::uint64_t data_cum_ack() const { return rcv_nxt_data_; }
  // In-order data packets that have reached the application.
  std::uint64_t delivered() const { return app_read_seq_; }
  std::uint64_t buffer_capacity() const { return capacity_; }
  std::uint64_t buffer_occupancy() const {
    return (rcv_nxt_data_ - app_read_seq_) + ooo_data_.size();
  }
  std::uint64_t advertised_window() const {
    return capacity_ - buffer_occupancy();
  }
  // Packets that arrived with no buffer space (must stay 0 if the sender
  // honours flow control; asserted by tests).
  std::uint64_t window_violations() const { return window_violations_; }
  std::uint64_t packets_received() const { return packets_received_; }
  std::uint64_t duplicates() const { return duplicate_data_; }
  std::uint64_t acks_sent() const { return acks_sent_; }
  std::uint64_t window_updates_sent() const { return window_updates_sent_; }

 private:
  void send_ack(const net::Packet& data_pkt);
  void emit_ack(std::uint32_t subflow_id, SimTime ts_echo, bool is_retx,
                bool window_update);
  void drain_to_app();
  void flush_delayed_acks();
  void maybe_send_window_update();

  EventList& events_;
  std::uint32_t flow_id_;
  std::uint64_t capacity_;
  std::uint64_t* wire_counter_ = nullptr;

  // Data-level reassembly.
  std::uint64_t rcv_nxt_data_ = 0;  // next expected data seq
  std::uint64_t app_read_seq_ = 0;  // next data seq the app will read
  // Received beyond rcv_nxt_data_. Flat and reserved to capacity_ (its
  // live size is bounded by buffer occupancy): no per-packet node
  // allocation on the reorder path.
  FlatSeqSet ooo_data_;

  // Application read model.
  double app_read_rate_ = 0.0;  // pkts/s; 0 = infinite
  double read_credit_ = 0.0;
  SimTime last_drain_ = 0;
  SimTime next_drain_at_ = kNever;
  static constexpr SimTime kDrainInterval = from_ms(1);

  // Delayed-ACK state.
  bool delayed_ack_ = false;
  SimTime delack_delay_ = from_ms(40);
  SimTime delack_deadline_ = kNever;

  // Zero-window tracking for gratuitous window updates.
  bool advertised_zero_ = false;

  // Per-subflow reassembly for the subflow-level cumulative ACK.
  struct SubflowRx {
    const net::Route* ack_route = nullptr;
    std::uint64_t rcv_nxt = 0;
    FlatSeqSet ooo;  // reserved to capacity_ by add_subflow()
    // Delayed-ACK bookkeeping.
    int pending_acks = 0;
    SimTime pending_ts_echo = 0;
    bool pending_is_retx = false;
  };
  std::vector<SubflowRx> subflows_;

  std::uint64_t packets_received_ = 0;
  std::uint64_t duplicate_data_ = 0;
  std::uint64_t window_violations_ = 0;
  std::uint64_t acks_sent_ = 0;
  std::uint64_t window_updates_sent_ = 0;

  // Flight recorder, cached at construction (nullptr = tracing off).
  trace::TraceRecorder* trace_ = nullptr;
  std::uint16_t trace_id_ = 0;
};

}  // namespace mpsim::mptcp
