// Fluid-model unit tests, including the paper's own worked numbers.
#include <gtest/gtest.h>

#include <cmath>

#include "model/equilibrium.hpp"
#include "model/fairness.hpp"
#include "model/tcp_model.hpp"

namespace mpsim::model {
namespace {

TEST(TcpModel, WindowBalanceEquation) {
  // Eq. (2) with one path: (1-p)/w * w/RTT = p * w/RTT * w/2.
  const double p = 0.01;
  const double w = tcp_window(p);
  EXPECT_NEAR((1.0 - p) / w, p * w / 2.0, 1e-12);
}

TEST(TcpModel, SmallLossApproximation) {
  EXPECT_NEAR(tcp_window(1e-4), std::sqrt(2.0 / 1e-4), 0.01);
}

TEST(TcpModel, Section23WifiRate) {
  // "A single-path wifi flow would get 707 pkt/s" (p=4%, RTT 10 ms).
  EXPECT_NEAR(tcp_rate(0.04, 0.010), 707.0, 1.0);
}

TEST(TcpModel, Section23ThreeGRate) {
  // "a single-path 3G flow would get 141 pkt/s" (p=1%, RTT 100 ms).
  EXPECT_NEAR(tcp_rate(0.01, 0.100), 141.0, 1.0);
}

TEST(TcpModel, Section23EwtcpRate) {
  // EWTCP at weight 1/2 on both paths: (707+141)/2 = 424 pkt/s.
  const double rate = ewtcp_window(0.04, 0.5) / 0.010 +
                      ewtcp_window(0.01, 0.5) / 0.100;
  // The text uses the sqrt(2/p) shorthand; allow the (1-p) correction.
  EXPECT_NEAR(rate, 424.0, 10.0);
}

TEST(TcpModel, Section23CoupledRate) {
  // COUPLED puts everything on the less-congested 3G path: 141 pkt/s.
  CoupledEquilibrium eq = coupled_equilibrium({0.04, 0.01});
  EXPECT_DOUBLE_EQ(eq.windows[0], 0.0);
  EXPECT_NEAR(eq.windows[1] / 0.100, 141.0, 1.0);
}

TEST(TcpModel, CoupledTotalIndependentOfPathCount) {
  // §2.2: w_total = sqrt(2/p) regardless of the number of paths.
  const double p = 0.02;
  for (std::size_t n = 1; n <= 5; ++n) {
    CoupledEquilibrium eq = coupled_equilibrium(std::vector<double>(n, p));
    EXPECT_NEAR(eq.total_window, tcp_window(p), 1e-12);
  }
}

TEST(TcpModel, CoupledSplitsTiesEvenly) {
  CoupledEquilibrium eq = coupled_equilibrium({0.01, 0.01, 0.05});
  EXPECT_DOUBLE_EQ(eq.windows[0], eq.windows[1]);
  EXPECT_DOUBLE_EQ(eq.windows[2], 0.0);
}

TEST(TcpModel, SemicoupledPaperWeightExample) {
  // §2.4: paths at 1%, 1%, 5% loss -> 45%/45%/10% of the total window.
  const auto w = semicoupled_windows({0.01, 0.01, 0.05}, 1.0);
  const double total = w[0] + w[1] + w[2];
  EXPECT_NEAR(w[0] / total, 0.4545, 0.001);
  EXPECT_NEAR(w[1] / total, 0.4545, 0.001);
  EXPECT_NEAR(w[2] / total, 0.0909, 0.001);
}

TEST(Equilibrium, SinglePathMatchesTcp) {
  auto eq = mptcp_equilibrium({0.01}, {0.1});
  ASSERT_TRUE(eq.converged);
  EXPECT_NEAR(eq.windows[0], tcp_window(0.01), 0.01);
}

TEST(Equilibrium, EqualPathsSplitEvenlyAndSumToTcp) {
  // Two identical paths: the equilibrium total equals one TCP's window.
  auto eq = mptcp_equilibrium({0.01, 0.01}, {0.1, 0.1});
  ASSERT_TRUE(eq.converged);
  EXPECT_NEAR(eq.windows[0], eq.windows[1], 1e-6);
  EXPECT_NEAR(eq.windows[0] + eq.windows[1], tcp_window(0.01), 0.05);
}

TEST(Equilibrium, AppendixIdentityTotalRateEqualsBestTcp) {
  // The appendix proves sum_r w_r/RTT_r = wTCP_n / RTT_n for the maximal
  // path: incentive goal (3) holds with equality.
  const std::vector<double> loss = {0.02, 0.005, 0.01};
  const std::vector<double> rtt = {0.05, 0.2, 0.1};
  auto eq = mptcp_equilibrium(loss, rtt);
  ASSERT_TRUE(eq.converged);
  double best_tcp = 0.0;
  for (std::size_t r = 0; r < loss.size(); ++r) {
    best_tcp = std::max(best_tcp,
                        std::sqrt(2.0 * (1 - loss[r]) / loss[r]) / rtt[r]);
  }
  EXPECT_NEAR(total_rate(eq.windows, rtt), best_tcp, 0.02 * best_tcp);
}

TEST(Equilibrium, PrefersLessCongestedPath) {
  auto eq = mptcp_equilibrium({0.05, 0.005}, {0.1, 0.1});
  ASSERT_TRUE(eq.converged);
  EXPECT_GT(eq.windows[1], eq.windows[0] * 2.0);
}

TEST(Fairness, Section25FixedPointSatisfiesBothGoals) {
  const std::vector<double> loss = {0.04, 0.01};
  const std::vector<double> rtt = {0.010, 0.100};
  auto eq = mptcp_equilibrium(loss, rtt);
  ASSERT_TRUE(eq.converged);
  auto rep = check_fairness(eq.windows, loss, rtt, 0.05);
  EXPECT_TRUE(rep.incentive_ok) << "slack=" << rep.incentive_slack;
  EXPECT_TRUE(rep.do_no_harm_ok) << "slack=" << rep.worst_harm_slack;
}

TEST(Fairness, DetectsGreedyViolation) {
  // Running full TCP on both paths of a shared bottleneck violates (4).
  const std::vector<double> loss = {0.01, 0.01};
  const std::vector<double> rtt = {0.1, 0.1};
  const std::vector<double> greedy = {tcp_window(0.01), tcp_window(0.01)};
  auto rep = check_fairness(greedy, loss, rtt);
  EXPECT_FALSE(rep.do_no_harm_ok);
  EXPECT_TRUE(rep.incentive_ok);
}

TEST(Fairness, DetectsTimidViolation) {
  // Tiny windows satisfy (4) but fail the incentive goal (3).
  const std::vector<double> loss = {0.01, 0.01};
  const std::vector<double> rtt = {0.1, 0.1};
  const std::vector<double> timid = {0.5, 0.5};
  auto rep = check_fairness(timid, loss, rtt);
  EXPECT_TRUE(rep.do_no_harm_ok);
  EXPECT_FALSE(rep.incentive_ok);
}

TEST(Fairness, SinglePathTcpIsExactlyFair) {
  const std::vector<double> loss = {0.02};
  const std::vector<double> rtt = {0.05};
  const std::vector<double> w = {std::sqrt(2.0 / 0.02)};
  auto rep = check_fairness(w, loss, rtt, 1e-9);
  EXPECT_TRUE(rep.incentive_ok);
  EXPECT_TRUE(rep.do_no_harm_ok);
}

}  // namespace
}  // namespace mpsim::model
