#include "cc/ewtcp.hpp"

namespace mpsim::cc {

double Ewtcp::weight_for(const ConnectionView& c) const {
  if (weight_ > 0.0) return weight_;
  // Default 1/n over the paths actually in use: a dropped (inactive)
  // subflow must not depress the weight of the survivors.
  return 1.0 / static_cast<double>(active_subflow_count(c));
}

double Ewtcp::increase_per_ack(const ConnectionView& c, std::size_t r) const {
  const double phi = weight_for(c);
  return phi * phi / c.cwnd_pkts(r);
}

double Ewtcp::window_after_loss(const ConnectionView& c, std::size_t r) const {
  return c.cwnd_pkts(r) / 2.0;
}

const Ewtcp& ewtcp() {
  static const Ewtcp instance;
  return instance;
}

}  // namespace mpsim::cc
