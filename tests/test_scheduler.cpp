#include "mptcp/scheduler.hpp"

#include <gtest/gtest.h>

namespace mpsim::mptcp {
namespace {

TEST(DataScheduler, HandsOutSequentialData) {
  DataScheduler s(0, 1000);
  std::uint64_t d = 99;
  for (std::uint64_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(s.next_data(d));
    EXPECT_EQ(d, i);
  }
  EXPECT_EQ(s.next_new(), 5u);
}

TEST(DataScheduler, RespectsFlowControlWindow) {
  DataScheduler s(0, 3);
  std::uint64_t d;
  EXPECT_TRUE(s.next_data(d));
  EXPECT_TRUE(s.next_data(d));
  EXPECT_TRUE(s.next_data(d));
  EXPECT_FALSE(s.next_data(d)) << "right edge reached";
  s.on_data_ack(1, 3);  // cum=1, window 3 -> edge 4
  EXPECT_TRUE(s.next_data(d));
  EXPECT_EQ(d, 3u);
  EXPECT_FALSE(s.next_data(d));
}

TEST(DataScheduler, RightEdgeNeverRetreats) {
  DataScheduler s(0, 10);
  s.on_data_ack(5, 10);  // edge 15
  s.on_data_ack(3, 2);   // stale reordered ACK: edge would be 5; ignore
  EXPECT_EQ(s.right_edge(), 15u);
  EXPECT_EQ(s.data_cum_ack(), 5u);
}

TEST(DataScheduler, CumAckMonotone) {
  DataScheduler s(0, 10);
  s.on_data_ack(7, 10);
  s.on_data_ack(4, 10);
  EXPECT_EQ(s.data_cum_ack(), 7u);
}

TEST(DataScheduler, AppLimitStopsNewData) {
  DataScheduler s(3, 1000);
  std::uint64_t d;
  EXPECT_TRUE(s.next_data(d));
  EXPECT_TRUE(s.next_data(d));
  EXPECT_TRUE(s.next_data(d));
  EXPECT_FALSE(s.next_data(d));
  EXPECT_TRUE(s.app_limited());
  EXPECT_FALSE(s.complete());
  s.on_data_ack(3, 1000);
  EXPECT_TRUE(s.complete());
}

TEST(DataScheduler, UnlimitedStreamNeverCompletes) {
  DataScheduler s(0, 1u << 20);
  s.on_data_ack(1u << 19, 1u << 20);
  EXPECT_FALSE(s.complete());
}

TEST(DataScheduler, ReinjectionsHavePriority) {
  DataScheduler s(0, 1000);
  std::uint64_t d;
  for (int i = 0; i < 10; ++i) s.next_data(d);
  s.reinject({4, 7});
  ASSERT_TRUE(s.next_data(d));
  EXPECT_EQ(d, 4u);
  ASSERT_TRUE(s.next_data(d));
  EXPECT_EQ(d, 7u);
  ASSERT_TRUE(s.next_data(d));
  EXPECT_EQ(d, 10u) << "fresh data resumes after reinjections";
}

TEST(DataScheduler, ReinjectionDeduplicates) {
  DataScheduler s(0, 1000);
  std::uint64_t d;
  for (int i = 0; i < 5; ++i) s.next_data(d);
  s.reinject({2, 3});
  s.reinject({3, 2, 2});
  EXPECT_EQ(s.reinject_backlog(), 2u);
}

TEST(DataScheduler, AckedReinjectionsAreSkipped) {
  DataScheduler s(0, 1000);
  std::uint64_t d;
  for (int i = 0; i < 5; ++i) s.next_data(d);
  s.reinject({1, 2});
  s.on_data_ack(3, 1000);  // both already acked
  ASSERT_TRUE(s.next_data(d));
  EXPECT_EQ(d, 5u) << "stale reinjections discarded";
}

TEST(DataScheduler, AlreadyAckedNotQueued) {
  DataScheduler s(0, 1000);
  std::uint64_t d;
  for (int i = 0; i < 5; ++i) s.next_data(d);
  s.on_data_ack(4, 1000);
  s.reinject({1, 2, 4});
  EXPECT_EQ(s.reinject_backlog(), 1u);  // only seq 4 survives
}

TEST(DataScheduler, ReinjectionBypassesFlowControl) {
  // A reinjection is a retransmission of data already inside the window.
  DataScheduler s(0, 3);
  std::uint64_t d;
  while (s.next_data(d)) {
  }
  s.reinject({0});
  EXPECT_TRUE(s.next_data(d));
  EXPECT_EQ(d, 0u);
}

}  // namespace
}  // namespace mpsim::mptcp
