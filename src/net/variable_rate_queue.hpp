// A drop-tail queue whose service rate can change at runtime, including to
// zero (an outage). This is the substitute for the paper's wireless testbed
// links (§5): WiFi fading, 3G speed bursts, and the mobile walk of Fig. 17
// are all expressed as scripted rate changes on one of these queues.
//
// Rate changes take effect immediately: the packet currently in service has
// its remaining transmission time rescaled to the new rate. During an outage
// the head packet is frozen and resumes when the rate becomes nonzero.
#pragma once

#include <string>
#include <vector>

#include "net/queue.hpp"

namespace mpsim::net {

class VariableRateQueue : public Queue {
 public:
  VariableRateQueue(EventList& events, std::string name, double rate_bps,
                    std::uint64_t max_bytes);

  // Change the link speed now. `rate_bps == 0` suspends service (outage).
  void set_rate(double rate_bps);

  void receive(Packet& pkt) override;
  void on_event() override;

  bool in_outage() const { return rate_bps_ == 0.0; }

 private:
  // Fraction of the in-service packet already transmitted when the last
  // rate change happened, plus when that was.
  double fraction_done_ = 0.0;
  SimTime fraction_as_of_ = 0;

  void reschedule_head();
};

// Applies a scripted sequence of rate changes to a VariableRateQueue.
// Entries must be sorted by time. Used to model mobility traces.
class RateSchedule : public EventSource {
 public:
  struct Change {
    SimTime at;
    double rate_bps;
  };

  RateSchedule(EventList& events, VariableRateQueue& target,
               std::vector<Change> changes);

  void on_event() override;

 private:
  EventList& events_;
  VariableRateQueue& target_;
  std::vector<Change> changes_;
  std::size_t next_ = 0;
};

}  // namespace mpsim::net
