// Declarative experiment specs: a dependency-free parser for a flat TOML
// subset, plus strict typed accessors with units.
//
// Grammar (one construct per line):
//
//   # comment                      (also allowed after a value)
//   [section]                      lowercase [a-z0-9_]+, unique per file
//   key = value                    key [a-z0-9_]+, unique per section
//
//   value := "string" | number | true | false | [ scalar, scalar, ... ]
//
// Arrays are flat (no nesting) and may mix nothing: all elements must be
// the same scalar kind. Bare words are not values — strings are always
// quoted, so a typo like `algorithm = mptcp` fails loudly instead of
// parsing as something surprising.
//
// Quantities carry units inside strings and are parsed by the typed
// getters: times ("20ms", "1.5s", "9min"), rates ("14.4Mbps", "1000pps"),
// sizes ("25pkt", "64kB"). A malformed or unit-less quantity is an error
// with a file:line diagnostic — a spec never silently falls back to a
// default when a value was provided.
//
// Every accessor marks its key as consumed; Spec::check_all_used() turns
// unconsumed keys into unknown-key errors, so misspelled keys cannot be
// silently ignored either.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/time.hpp"

namespace mpsim::scenario {

// All spec failures — syntax, types, units, unknown keys — carry the file
// and line they point at.
class SpecError : public std::runtime_error {
 public:
  SpecError(const std::string& file, int line, const std::string& message)
      : std::runtime_error(file + ":" + std::to_string(line) + ": " +
                           message),
        file_(file),
        line_(line) {}

  const std::string& file() const { return file_; }
  int line() const { return line_; }

 private:
  std::string file_;
  int line_;
};

struct Value {
  enum class Kind : std::uint8_t { kString, kNumber, kBool, kArray };

  Kind kind = Kind::kNumber;
  std::string str;            // kString
  double num = 0.0;           // kNumber
  bool boolean = false;       // kBool
  std::vector<Value> items;   // kArray (scalars only)
  int line = 0;

  static Value string(std::string s, int line);
  static Value number(double v, int line);

  const char* kind_name() const;
};

// Unit parsing, exposed for tests. Each throws SpecError on malformed
// input, reporting `file`:`line`.
SimTime parse_time(const std::string& text, const std::string& file,
                   int line);
double parse_rate_bps(const std::string& text, const std::string& file,
                      int line);
std::uint64_t parse_bytes(const std::string& text, const std::string& file,
                          int line);

class Section {
 public:
  Section(std::string name, int line, std::string file)
      : name_(std::move(name)), line_(line), file_(std::move(file)) {}

  const std::string& name() const { return name_; }
  int line() const { return line_; }
  const std::string& file() const { return file_; }

  bool has(const std::string& key) const;

  // --- typed accessors -----------------------------------------------
  // Two forms each: with a fallback (missing key => fallback) and without
  // (missing key => SpecError). A key that exists with the wrong type or a
  // malformed unit is always an error.
  double get_number(const std::string& key) const;
  double get_number(const std::string& key, double fallback) const;
  std::int64_t get_int(const std::string& key) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  std::string get_string(const std::string& key) const;
  std::string get_string(const std::string& key,
                         const std::string& fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;
  SimTime get_time(const std::string& key) const;
  SimTime get_time(const std::string& key, SimTime fallback) const;
  double get_rate_bps(const std::string& key) const;
  double get_rate_bps(const std::string& key, double fallback) const;
  std::uint64_t get_bytes(const std::string& key,
                          std::uint64_t fallback) const;

  // Arrays. A scalar is accepted as a one-element array, so a sweep axis
  // can substitute a single value for a list-valued key.
  std::vector<double> get_number_array(const std::string& key) const;
  std::vector<std::string> get_string_array(const std::string& key) const;
  std::vector<SimTime> get_time_array(const std::string& key) const;
  bool has_array(const std::string& key) const { return has(key); }

  // Raw lookup; marks the key consumed. nullptr when absent.
  const Value* find(const std::string& key) const;

  // Throw for a key that exists but should not (e.g. mutually exclusive
  // parameter forms).
  [[noreturn]] void reject(const std::string& key,
                           const std::string& why) const;
  [[noreturn]] void fail(const std::string& message) const;  // at section line
  [[noreturn]] void fail_at(int line, const std::string& message) const;

  // Parser/sweep-expansion interface.
  void append(const std::string& key, Value v);  // throws on duplicate key
  bool override_value(const std::string& key, Value v);  // false if absent
  void mark_all_unused() const;
  std::vector<std::pair<std::string, int>> unused_keys() const;
  const std::vector<std::pair<std::string, Value>>& entries() const {
    return entries_;
  }

 private:
  const Value& require(const std::string& key) const;
  [[noreturn]] void type_error(const std::string& key, const Value& v,
                               const char* expected) const;

  std::string name_;
  int line_;
  std::string file_;
  std::vector<std::pair<std::string, Value>> entries_;
  mutable std::vector<bool> used_;
};

class Spec {
 public:
  // Parse from disk / from memory (`file` labels diagnostics).
  static Spec parse_file(const std::string& path);
  static Spec parse_string(const std::string& text, const std::string& file);

  const std::string& file() const { return file_; }

  Section* find_section(const std::string& name);
  const Section* find_section(const std::string& name) const;
  Section& require_section(const std::string& name);
  const Section& require_section(const std::string& name) const;
  const std::vector<Section>& sections() const { return sections_; }

  // After a full build: every key of every section must have been read.
  void check_all_used() const;
  void mark_all_unused() const;

 private:
  std::string file_;
  std::vector<Section> sections_;
};

}  // namespace mpsim::scenario
