// Randomised property suite for the §2.5 fairness goals: for arbitrary
// loss/RTT environments, the numeric MPTCP equilibrium must satisfy both
// the incentive constraint (3) and the do-no-harm constraints (4) — this is
// the appendix theorem, exercised over hundreds of environments.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/rng.hpp"
#include "model/equilibrium.hpp"
#include "model/fairness.hpp"

namespace mpsim::model {
namespace {

struct Env {
  std::vector<double> loss;
  std::vector<double> rtt;
  std::string label;
};

class FairnessProperty : public ::testing::TestWithParam<Env> {};

TEST_P(FairnessProperty, EquilibriumSatisfiesBothGoals) {
  const Env& env = GetParam();
  auto eq = mptcp_equilibrium(env.loss, env.rtt);
  ASSERT_TRUE(eq.converged) << env.label;
  // 5% tolerance: the fluid equalities are exact only as p -> 0.
  auto rep = check_fairness(eq.windows, env.loss, env.rtt, 0.05);
  EXPECT_TRUE(rep.incentive_ok)
      << env.label << " slack=" << rep.incentive_slack;
  EXPECT_TRUE(rep.do_no_harm_ok)
      << env.label << " slack=" << rep.worst_harm_slack;
}

TEST_P(FairnessProperty, WindowsNonNegativeAndFinite) {
  const Env& env = GetParam();
  auto eq = mptcp_equilibrium(env.loss, env.rtt);
  for (double w : eq.windows) {
    EXPECT_GE(w, 0.0);
    EXPECT_LT(w, 1e6);
  }
}

TEST_P(FairnessProperty, AppendixOrderingClaim) {
  // The appendix's closing step: for all r, wTCP_r/RTT_r <= wTCP_n/RTT_n
  // where n is the last path in the sqrt(w)/RTT ordering — i.e. at
  // equilibrium the best hypothetical single-path rate belongs to the
  // path the ordering ranks last. Verified on the numeric equilibrium.
  const Env& env = GetParam();
  auto eq = mptcp_equilibrium(env.loss, env.rtt);
  ASSERT_TRUE(eq.converged) << env.label;
  std::size_t last = 0;
  double best_key = -1.0;
  for (std::size_t r = 0; r < env.loss.size(); ++r) {
    const double key =
        std::sqrt(eq.windows[r] + 1e-12) / env.rtt[r];
    if (key > best_key) {
      best_key = key;
      last = r;
    }
  }
  const double last_tcp_rate =
      std::sqrt(2.0 / env.loss[last]) / env.rtt[last];
  for (std::size_t r = 0; r < env.loss.size(); ++r) {
    const double tcp_rate = std::sqrt(2.0 / env.loss[r]) / env.rtt[r];
    EXPECT_LE(tcp_rate, last_tcp_rate * 1.02)
        << env.label << " r=" << r;
  }
}

TEST_P(FairnessProperty, IncentiveEqualityHoldsOnTheBestPath) {
  // Constraint (3) holds with equality at the fluid equilibrium (the
  // appendix proves sum_r w_r/RTT_r == wTCP_n/RTT_n): the flow gets
  // exactly, not merely at least, the best single path's rate.
  const Env& env = GetParam();
  auto eq = mptcp_equilibrium(env.loss, env.rtt);
  ASSERT_TRUE(eq.converged) << env.label;
  double best_tcp = 0.0;
  for (std::size_t r = 0; r < env.loss.size(); ++r) {
    best_tcp = std::max(best_tcp,
                        std::sqrt(2.0 / env.loss[r]) / env.rtt[r]);
  }
  EXPECT_NEAR(total_rate(eq.windows, env.rtt), best_tcp, 0.06 * best_tcp)
      << env.label;
}

TEST_P(FairnessProperty, NoPathBeatsItsOwnTcpWindow) {
  // Eq. (6): each path's window is at most what a single-path TCP at that
  // path's loss rate would get.
  const Env& env = GetParam();
  auto eq = mptcp_equilibrium(env.loss, env.rtt);
  for (std::size_t r = 0; r < env.loss.size(); ++r) {
    const double wtcp = std::sqrt(2.0 / env.loss[r]);
    EXPECT_LE(eq.windows[r], wtcp * 1.02) << env.label << " r=" << r;
  }
}

std::vector<Env> make_envs() {
  std::vector<Env> envs;
  // The paper's own scenario first.
  envs.push_back({{0.04, 0.01}, {0.010, 0.100}, "wifi3g"});
  Rng rng(20260706);
  for (int n = 2; n <= 6; ++n) {
    for (int i = 0; i < 12; ++i) {
      Env e;
      for (int r = 0; r < n; ++r) {
        // Loss in [0.1%, 5%], RTT in [5 ms, 800 ms].
        e.loss.push_back(0.001 + rng.next_double() * 0.049);
        e.rtt.push_back(0.005 + rng.next_double() * 0.795);
      }
      e.label = "n" + std::to_string(n) + "_i" + std::to_string(i);
      envs.push_back(std::move(e));
    }
  }
  return envs;
}

INSTANTIATE_TEST_SUITE_P(RandomEnvironments, FairnessProperty,
                         ::testing::ValuesIn(make_envs()),
                         [](const ::testing::TestParamInfo<Env>& info) {
                           return info.param.label;
                         });

}  // namespace
}  // namespace mpsim::model
