// REGULAR TCP run independently on every subflow (§2.1's strawman): AIMD
// with increase 1/w_r and decrease w_r/2. With one subflow this *is*
// NewReno, so it doubles as the simulator's single-path TCP. With n
// subflows through a shared bottleneck it unfairly takes n times a regular
// TCP's bandwidth — the problem the coupled algorithms fix.
#pragma once

#include "cc/congestion_control.hpp"

namespace mpsim::cc {

class Uncoupled : public CongestionControl {
 public:
  double increase_per_ack(const ConnectionView& c, std::size_t r) const override;
  double window_after_loss(const ConnectionView& c, std::size_t r) const override;
  std::string name() const override { return "UNCOUPLED"; }
};

// Shared immutable instance (algorithms are stateless).
const Uncoupled& uncoupled();

}  // namespace mpsim::cc
