// Measurement instruments: periodic samplers that turn monotone counters
// (packets delivered, queue drops, ...) into time series and interval rates.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "core/event_list.hpp"
#include "net/packet.hpp"

namespace mpsim::stats {

// Invokes a callback every `interval` of simulated time.
class PeriodicSampler : public EventSource {
 public:
  PeriodicSampler(EventList& events, std::string name, SimTime interval,
                  std::function<void(SimTime)> fn);
  // Cancels any pending wake-up: a sampler may be destroyed while armed
  // without leaving a dangling EventSource* in the event list.
  ~PeriodicSampler() override;

  void start(SimTime at);
  // Eagerly removes the pending wake-up, so a stopped sampler cannot keep a
  // run-until-empty simulation alive. Safe to call from inside the sampling
  // callback (the tick in progress will not reschedule) and when idle.
  void stop();
  bool running() const { return running_; }
  void on_event() override;

 private:
  EventList& events_;
  SimTime interval_;
  std::function<void(SimTime)> fn_;
  bool running_ = false;
};

// Samples a monotone counter periodically; records per-interval deltas.
// Rates can be asked for in any unit via the scale factor.
class CounterSeries {
 public:
  // `counter` returns a monotone value (e.g. packets delivered so far).
  CounterSeries(EventList& events, std::string name, SimTime interval,
                std::function<std::uint64_t()> counter);

  void start(SimTime at);
  void stop() { sampler_.stop(); }

  struct Point {
    SimTime t;            // end of interval
    std::uint64_t delta;  // counter increase over the interval
  };
  const std::vector<Point>& points() const { return points_; }
  SimTime interval() const { return interval_; }

  // Mean rate over the recorded points, in counts/second. Computed from the
  // first/last sample timestamps (not interval * count), so it stays correct
  // across stop()/start() gaps and cannot overflow SimTime for long runs.
  double mean_rate() const;

  // Convenience for data-packet counters: Mb/s assuming kDataPacketBytes.
  double mean_mbps() const {
    return mean_rate() * net::kDataPacketBytes * 8.0 / 1e6;
  }

 private:
  SimTime interval_;
  std::function<std::uint64_t()> counter_;
  std::uint64_t last_ = 0;
  bool primed_ = false;
  std::vector<Point> points_;
  PeriodicSampler sampler_;
};

// Mb/s represented by `pkts` data packets over `elapsed`.
double pkts_to_mbps(std::uint64_t pkts, SimTime elapsed);

}  // namespace mpsim::stats
