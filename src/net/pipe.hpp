// Propagation-delay element: delivers every packet `delay` after arrival,
// preserving order. Pipes never drop.
#pragma once

#include <string>

#include "core/event_list.hpp"
#include "net/packet.hpp"

namespace mpsim::net {

class Pipe : public PacketSink, public EventSource {
 public:
  Pipe(EventList& events, std::string name, SimTime delay);

  void receive(Packet& pkt) override;
  void on_event() override;
  const std::string& sink_name() const override { return EventSource::name(); }

  SimTime delay() const { return delay_; }

 private:
  EventList& events_;
  SimTime delay_;
  PacketFifo in_flight_;  // FIFO by arrival; link_due is the delivery time
};

}  // namespace mpsim::net
