// The synthetic WiFi + 3G client moved to src/topo/wireless.hpp so the
// scenario engine shares the exact construction; this alias keeps the
// historical bench spelling.
#pragma once

#include "topo/wireless.hpp"

namespace mpsim::bench {

using WirelessClient = topo::WirelessClient;

}  // namespace mpsim::bench
