// Output formats for the flight recorder.
//
// A sink turns the recorder's chronological record stream into text. Sinks
// format into an in-memory buffer — flushing happens once, at run end, so a
// sink never does I/O (or anything else nondeterministic) while the
// simulation is running — and the buffer is then either inspected (tests)
// or written to a file (runner, bench harness). Two formats plus a null
// sink:
//
//   CsvSink    header + one comma-separated row per record; the schema
//              tools/check_trace_schema.py validates in CI.
//   JsonlSink  one JSON object per line, keys matching the CSV columns.
//   NullSink   discards everything (measures recorder-side overhead).
//
// Formatting is locale-independent printf with fixed precision, so equal
// record streams produce byte-identical text on every platform/thread
// count — the property the determinism tests assert.
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "trace/record.hpp"

namespace mpsim::trace {

class TraceSink {
 public:
  virtual ~TraceSink() = default;

  virtual void begin() {}
  virtual void record(const Record& r, std::string_view obj_name) = 0;
  virtual void finish() {}

  // Everything formatted so far (empty for the null sink).
  const std::string& text() const { return out_; }

 protected:
  std::string out_;
};

class NullSink final : public TraceSink {
 public:
  void record(const Record&, std::string_view) override {}
};

class CsvSink final : public TraceSink {
 public:
  // The column set; header() == kHeader + '\n' starts every CSV trace.
  static constexpr const char* kHeader =
      "t_ns,type,obj,flow,sub,phase,a,b,x,y";

  void begin() override;
  void record(const Record& r, std::string_view obj_name) override;
};

class JsonlSink final : public TraceSink {
 public:
  void record(const Record& r, std::string_view obj_name) override;
};

enum class SinkKind : std::uint8_t { kNone = 0, kCsv, kJsonl, kNull };

std::unique_ptr<TraceSink> make_sink(SinkKind kind);  // not kNone
const char* sink_extension(SinkKind kind);            // ".csv" / ".jsonl"

// Write `body` to `path` (truncating); false + stderr warning on failure.
bool write_text_file(const std::string& path, const std::string& body);

}  // namespace mpsim::trace
