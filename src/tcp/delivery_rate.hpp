// Per-subflow delivery-rate sampling, BBR-style: every packet launch
// snapshots the delivery process (cumulative delivered count and the time
// of the most recent delivery); every cumulative-ACK advance retires those
// records and measures, over the newest retired packet P,
//
//   delivery_rate = (delivered_now - P.delivered_at_send)
//                       / (now - P.delivered_time_at_send)
//
// — the average rate of the delivery process across P's lifetime. Using
// the delivery-clock interval (not P's own round trip) is what keeps the
// estimate honest when a cumulative ACK fills a retransmitted hole: the
// packets that were parked behind the hole are credited all at once, but
// the interval then spans the stall that parked them, so the sample can
// never exceed what the path actually carried (cf. the BBR delivery-rate
// draft's ack_elapsed). Samples from retransmitted packets are suppressed
// (Karn's ambiguity), and samples taken while the sender had window space
// but no data are flagged app-limited so a rate-based controller's max
// filter is not dragged down by the application.
//
// The board is a deque parallel to the subflow's scoreboard, keyed by
// subflow sequence number; it grows with the window and reuses the same
// amortized-allocation argument.
#pragma once

#include <cstdint>
#include <deque>

#include "cc/congestion_control.hpp"
#include "core/time.hpp"

namespace mpsim::tcp {

class DeliveryRateEstimator {
 public:
  // Record the launch of subflow seq `seq` at `now`. Fresh sends append to
  // the board (seq must be exactly the next unrecorded one); go-back-N and
  // fast-retransmit resends overwrite their slot and mark it ambiguous.
  void on_send(std::uint64_t seq, SimTime now, bool is_retransmit);

  // The sender ran out of application data with window space left:
  // delivery measured until the current outstanding packets drain tells us
  // about the app, not the path. `inflight_pkts` bounds the tainted span.
  void on_app_limited(std::uint64_t inflight_pkts) {
    app_limited_until_ = delivered_ + inflight_pkts;
  }

  // The cumulative ACK advanced to `cum`: retire every record below it,
  // credit the delivered counter, and produce a rate sample in `out`.
  // Returns false (leaving `out` untouched) when no unambiguous sample
  // exists — the newest retired packet was a retransmit, or its measured
  // interval is empty.
  bool on_ack(std::uint64_t cum, SimTime now, cc::DeliveryRateSample& out);

  // Monotone count of packets delivered (cumulatively acked) on this
  // subflow since the estimator was created.
  std::uint64_t delivered_pkts() const { return delivered_; }
  std::uint64_t delivered_bytes() const;
  bool app_limited() const { return delivered_ < app_limited_until_; }

 private:
  struct Entry {
    std::uint64_t delivered_at_send = 0;
    SimTime sent_at = 0;
    SimTime delivered_time_at_send = 0;  // delivery clock when launched
    bool app_limited = false;
    bool retransmitted = false;
  };

  std::deque<Entry> board_;    // board_[i] describes seq base_ + i
  std::uint64_t base_ = 0;
  std::uint64_t delivered_ = 0;
  SimTime delivered_time_ = 0;  // when delivered_ last advanced (or the
                                // pipe restarted from idle)
  std::uint64_t app_limited_until_ = 0;
  std::uint64_t next_round_delivered_ = 0;
};

}  // namespace mpsim::tcp
