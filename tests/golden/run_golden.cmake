# Runs a spec with a pinned scheduler backend and compares its CSV trace
# byte-for-byte against the committed golden file. Every backend must
# reproduce the same bytes — the golden is the cross-backend oracle.
#
#   cmake -DMPSIM=<cli> -DSPEC=<spec.toml> -DGOLDEN=<golden.csv>
#         -DOUT=<scratch dir> -DRUN_NAME=<run> [-DSCHEDULER=<backend>]
#         -P run_golden.cmake
foreach(var MPSIM SPEC GOLDEN OUT RUN_NAME)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "run_golden.cmake: -D${var}= is required")
  endif()
endforeach()
if(NOT DEFINED SCHEDULER)
  set(SCHEDULER wheel)
endif()

file(MAKE_DIRECTORY ${OUT})
execute_process(
  COMMAND ${CMAKE_COMMAND} -E env MPSIM_SCHEDULER=${SCHEDULER}
          ${MPSIM} run --trace=csv --trace-dir=${OUT} ${SPEC}
  WORKING_DIRECTORY ${OUT}
  RESULT_VARIABLE run_rc
  OUTPUT_QUIET)
if(NOT run_rc EQUAL 0)
  message(FATAL_ERROR "mpsim run failed (${run_rc}) for ${SPEC}")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          ${OUT}/trace_${RUN_NAME}.csv ${GOLDEN}
  RESULT_VARIABLE cmp_rc)
if(NOT cmp_rc EQUAL 0)
  message(FATAL_ERROR
          "trace drifted from golden: diff ${OUT}/trace_${RUN_NAME}.csv "
          "${GOLDEN} (regenerate only if the change is intended; see the "
          "comment in ${SPEC})")
endif()
