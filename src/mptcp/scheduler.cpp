#include "mptcp/scheduler.hpp"

#include <algorithm>
#include <limits>

#include "core/check.hpp"

namespace mpsim::mptcp {

const char* to_string(DataSchedulerKind kind) {
  switch (kind) {
    case DataSchedulerKind::kStripe: return "stripe";
    case DataSchedulerKind::kMinRttFirst: return "min_rtt_first";
    case DataSchedulerKind::kRedundant: return "redundant";
    case DataSchedulerKind::kBlest: return "blest";
  }
  MPSIM_CHECK(false, "unknown DataSchedulerKind");
  return "?";
}

bool DataScheduler::next_reinject(std::uint64_t& data_seq) {
  while (!reinject_q_.empty()) {
    const std::uint64_t seq = reinject_q_.front();
    reinject_q_.pop_front();
    reinject_pending_.erase(seq);
    if (seq < data_cum_ack_) continue;  // acked meanwhile; obsolete
    data_seq = seq;
    return true;
  }
  return false;
}

bool DataScheduler::next_fresh(std::uint64_t& data_seq) {
  if (app_limited() && next_new_ >= app_limit_) return false;
  if (next_new_ >= right_edge_) return false;  // receiver-buffer limited
  data_seq = next_new_++;
  return true;
}

std::uint64_t DataScheduler::fresh_window_pkts() const {
  std::uint64_t limit = right_edge_;
  if (app_limited()) limit = std::min(limit, app_limit_);
  return limit > next_new_ ? limit - next_new_ : 0;
}

bool DataScheduler::next_data(std::uint32_t /*subflow_id*/,
                              std::uint64_t& data_seq) {
  // Stripe: reinjections first (these unblock the receiver's
  // head-of-line), then fresh data to whoever asked first.
  return next_reinject(data_seq) || next_fresh(data_seq);
}

void DataScheduler::on_data_ack(std::uint64_t data_cum_ack,
                                std::uint64_t rcv_window) {
  const std::uint64_t before = data_cum_ack_;
  data_cum_ack_ = std::max(data_cum_ack_, data_cum_ack);
  right_edge_ = std::max(right_edge_, data_cum_ack + rcv_window);
  // (data_cum_ack <= highest-assigned is checked by MptcpConnection, which
  // owns both ends; the scheduler alone may be driven abstractly in tests.)
  MPSIM_CHECK(data_cum_ack_ <= right_edge_,
              "flow-control right edge fell behind the cumulative ACK");
  // Eager cleanup: queued reinjections the ACK just retired would otherwise
  // wait for a next_data() pull that may never come (all target subflows
  // dead, or the connection complete), pinning reinject_pending_ entries.
  if (data_cum_ack_ != before && !reinject_q_.empty()) purge_acked();
}

std::uint64_t DataScheduler::purge_acked() {
  std::uint64_t purged = 0;
  std::size_t kept = 0;
  for (std::size_t i = 0; i < reinject_q_.size(); ++i) {
    const std::uint64_t seq = reinject_q_[i];
    if (seq < data_cum_ack_) {
      reinject_pending_.erase(seq);
      ++purged;
      continue;
    }
    reinject_q_[kept++] = seq;
  }
  // Shrinking resize: never allocates, only trims the compacted tail.
  // mpsim-analyze: allow(hot-alloc)
  reinject_q_.resize(kept);
  purged_total_ += purged;
  return purged;
}

void DataScheduler::reinject(const std::vector<std::uint64_t>& data_seqs) {
  std::uint64_t accepted = 0;
  std::uint64_t first = 0;
  for (std::uint64_t seq : data_seqs) {
    if (seq < data_cum_ack_) continue;
    // Reinjection is the exceptional path (HoL stall or subflow death),
    // rate-limited by the caller; bounded by hol_reinject_batch per sweep.
    // mpsim-analyze: allow(hot-alloc)
    if (!reinject_pending_.insert(seq).second) continue;  // already queued
    // mpsim-analyze: allow(hot-alloc)
    reinject_q_.push_back(seq);
    if (accepted == 0) first = seq;
    ++accepted;
  }
  reinjected_total_ += accepted;
  if (accepted > 0) {
    MPSIM_TRACE(trace_, trace::reinject(trace_events_->now(), trace_id_,
                                        trace_flow_, accepted, first));
  }
}

bool MinRttFirstScheduler::next_data(std::uint32_t subflow_id,
                                     std::uint64_t& data_seq) {
  if (next_reinject(data_seq)) return true;
  if (view_ != nullptr) {
    // Defer fresh data on this subflow while a strictly faster active
    // sibling (ties broken toward the lower id, so equal-srtt races are
    // deterministic) still has free congestion window: the faster path
    // gets first claim on the stream.
    const double own_srtt = view_->srtt_sec(subflow_id);
    for (std::size_t s = 0; s < view_->num_subflows(); ++s) {
      if (s == subflow_id || !view_->subflow_active(s)) continue;
      if (view_->cwnd_pkts(s) - view_->inflight_pkts(s) < 1.0) continue;
      const double srtt = view_->srtt_sec(s);
      if (srtt < own_srtt || (srtt == own_srtt && s < subflow_id)) {
        return false;
      }
    }
  }
  return next_fresh(data_seq);
}

bool RedundantScheduler::next_data(std::uint32_t subflow_id,
                                   std::uint64_t& data_seq) {
  if (next_reinject(data_seq)) return true;
  if (cursor_.size() <= subflow_id) {
    // Grows once per subflow over the connection's life.
    // mpsim-analyze: allow(hot-alloc)
    cursor_.resize(subflow_id + 1, 0);
  }
  std::uint64_t& cur = cursor_[subflow_id];
  // Skip data the receiver already has: duplicating delivered packets
  // serves nobody.
  cur = std::max(cur, data_cum_ack_);
  if (app_limited() && cur >= app_limit_) return false;
  if (cur >= right_edge_) return false;
  data_seq = cur++;
  // The shared fresh edge is the farthest any subflow has reached, so the
  // connection-level "cum ack never passes what was assigned" invariant
  // keeps holding.
  next_new_ = std::max(next_new_, cur);
  return true;
}

bool BlestScheduler::next_data(std::uint32_t subflow_id,
                               std::uint64_t& data_seq) {
  if (next_reinject(data_seq)) return true;
  if (view_ != nullptr) {
    // BLEST (Ferlin et al.): sending on a slow path blocks the receive
    // window for one slow-path RTT. If the fastest sibling's projected
    // capacity over that RTT covers everything the window still admits,
    // the slow transmission can only cause HoL blocking — wait instead.
    // Fastest strictly-faster active sibling; equal-srtt ties go to the
    // lowest id (strict `<` below), keeping the choice deterministic.
    const double own_srtt = view_->srtt_sec(subflow_id);
    std::size_t fast = std::numeric_limits<std::size_t>::max();
    double fast_srtt = 0.0;
    for (std::size_t s = 0; s < view_->num_subflows(); ++s) {
      if (s == subflow_id || !view_->subflow_active(s)) continue;
      const double srtt = view_->srtt_sec(s);
      if (srtt >= own_srtt) continue;
      if (fast == std::numeric_limits<std::size_t>::max() ||
          srtt < fast_srtt) {
        fast = s;
        fast_srtt = srtt;
      }
    }
    if (fast != std::numeric_limits<std::size_t>::max() &&
        fast_srtt > 0.0) {
      const double projected =
          view_->cwnd_pkts(fast) * (own_srtt / fast_srtt);
      if (projected >= static_cast<double>(fresh_window_pkts())) {
        return false;
      }
    }
  }
  return next_fresh(data_seq);
}

std::unique_ptr<DataScheduler> make_data_scheduler(
    DataSchedulerKind kind, std::uint64_t app_limit_pkts,
    std::uint64_t initial_window) {
  switch (kind) {
    case DataSchedulerKind::kStripe:
      return std::make_unique<DataScheduler>(app_limit_pkts, initial_window);
    case DataSchedulerKind::kMinRttFirst:
      return std::make_unique<MinRttFirstScheduler>(app_limit_pkts,
                                                    initial_window);
    case DataSchedulerKind::kRedundant:
      return std::make_unique<RedundantScheduler>(app_limit_pkts,
                                                  initial_window);
    case DataSchedulerKind::kBlest:
      return std::make_unique<BlestScheduler>(app_limit_pkts, initial_window);
  }
  MPSIM_CHECK(false, "unknown DataSchedulerKind");
  return nullptr;
}

}  // namespace mpsim::mptcp
