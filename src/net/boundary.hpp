// Shard-boundary packet handoff.
//
// A BoundarySink sits between a queue and the pipe that models the link's
// propagation, as an extra route hop. It is a PacketSink but deliberately
// NOT an EventSource: it never schedules, so its presence cannot perturb
// the canonical (order id, seq) event keys — which is what lets topology
// builders insert a boundary into *every* link and keep construction (and
// therefore every id and every trace byte) identical at any shard count.
//
// Same-shard boundaries pass straight through: receive() forwards to the
// pipe inline, exactly as if the queue fed the pipe directly. Cross-shard
// boundaries *ship*: the packet's POD fields and route position are copied
// into a mailbox entry stamped with the send time, the source-shard packet
// is released to its own pool, and — after the next window barrier — the
// destination shard drains the mailbox on its own thread, re-allocates
// each packet from its own pool and hands it to the pipe as if it had
// entered the wire at the stamped time. The mailbox is a plain vector:
// its single producer only appends during execute phases and its single
// consumer only reads during drain phases, which the ShardGroup barrier
// orders (see core/shard.hpp).
//
// The wire-reference ledger (Packet::wire_refs) stays home-shard-only: a
// shipped packet's pointer is dropped rather than carried, because every
// later release could happen on a foreign thread (a drop at a foreign
// queue) and the counter is not atomic. Multi-shard runs restrict traffic
// to static flow sets (scenario::Engine enforces it), where nothing reads
// the counter, so the ledger simply over-counts by the shipped packets.
#pragma once

#include <string>
#include <vector>

#include "core/shard.hpp"
#include "core/time.hpp"
#include "net/packet.hpp"
#include "net/pipe.hpp"

namespace mpsim::net {

// POD snapshot of a packet crossing a shard boundary. send_time == kNever
// marks an unstamped entry; the drain MPSIM_CHECKs against it (and the
// mutation suite verifies the check fires).
struct ShippedPacket {
  SimTime send_time = kNever;
  const Route* route = nullptr;
  std::uint32_t next_hop = 0;
  PacketType type = PacketType::kData;
  std::uint32_t flow_id = 0;
  std::uint32_t subflow_id = 0;
  std::uint64_t subflow_seq = 0;
  std::uint64_t data_seq = 0;
  std::uint64_t subflow_cum_ack = 0;
  std::uint64_t data_cum_ack = 0;
  std::uint64_t rcv_window = 0;
  bool is_window_update = false;
  std::uint32_t size_bytes = kDataPacketBytes;
  SimTime ts_echo = 0;
  bool is_retransmit = false;
};

class BoundarySink final : public PacketSink {
 public:
  // Same-shard boundary: inline pass-through into `pipe`.
  BoundarySink(std::string name, EventList& src_events, Pipe& pipe);
  // Cross-shard boundary: mailbox handoff from src_events' shard to the
  // shard owning `pipe` (and `dst_events`). Registers this mailbox's drain
  // and the pipe's delay (the edge lookahead) with the group.
  BoundarySink(std::string name, EventList& src_events, Pipe& pipe,
               ShardGroup& group, int dst_shard);

  void receive(Packet& pkt) override;
  const std::string& sink_name() const override { return name_; }

  bool cross_shard() const { return cross_; }

  // Ingest everything shipped since the last drain (destination-shard
  // thread only; the window barrier separates it from the producer).
  void drain();

  // Mutation-test hook: enqueue an entry with no (time, seq) stamp, which
  // the next drain must reject.
  void push_unstamped_for_test() { mailbox_.emplace_back(); }

 private:
  std::string name_;
  EventList& src_events_;
  Pipe& pipe_;
  EventList* dst_events_ = nullptr;  // non-null iff cross-shard
  bool cross_ = false;
  std::vector<ShippedPacket> mailbox_;
};

}  // namespace mpsim::net
