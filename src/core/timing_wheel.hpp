// Hierarchical timing wheel (calendar queue) — the EventList's fast
// scheduler backend.
//
// Three levels of 2048 slots each cover a ~8.6 s (2^33 ns) horizon above
// the wheel's current position; events beyond the horizon wait in a small
// overflow heap and are pulled in when the wheel advances into their epoch.
// schedule() and pop() are amortized O(1): an event is appended to exactly
// one slot per level it cascades through (at most kLevels times over its
// lifetime), and finding the next occupied slot is a bitmap scan.
//
// Determinism contract (identical to the binary-heap backend): events
// dispatch in (time, seq) order, where seq is the EventList's canonical
// (source order id, per-source counter) key. Cascading — and the canonical
// keys themselves, which are not globally monotone across sources — can
// land entries in a level-0 slot out of seq order, so a slot is sorted by
// seq lazily when dispatch first reaches it and re-sorted if a smaller key
// arrives afterwards.
#pragma once

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <queue>
#include <vector>

#include "core/check.hpp"
#include "core/time.hpp"

namespace mpsim {

class EventSource;

class TimingWheel {
 public:
  struct Entry {
    SimTime time;
    std::uint64_t seq;  // FIFO tie-break for equal timestamps
    EventSource* src;
  };

  TimingWheel() = default;
  // Start the wheel at an arbitrary tick instead of 0. Used when the
  // adaptive EventList migrates a heap onto a fresh wheel mid-run: anchoring
  // cur_ at the simulation clock keeps near-term entries on level 0 instead
  // of scattering them across cascade levels relative to tick 0.
  explicit TimingWheel(std::uint64_t start_tick) : cur_(start_tick) {}

  TimingWheel(const TimingWheel&) = delete;
  TimingWheel& operator=(const TimingWheel&) = delete;

  // Insert an event. `t` must be >= the time of the last popped entry.
  // seq is normally the EventList's globally increasing schedule counter;
  // out-of-order seqs (heap->wheel migration) are also accepted — a slot
  // that receives them is lazily re-sorted before dispatch.
  void schedule(SimTime t, std::uint64_t seq, EventSource* src);

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  // Earliest pending event time, or kNever if empty. Does not move the
  // wheel (no cascades), so a caller may peek, decide the event lies
  // beyond its run horizon, and still schedule earlier events afterwards.
  SimTime next_time() const;

  // Remove and return the earliest entry (FIFO among equal timestamps).
  // Pre: !empty().
  Entry pop();

  // Pop the earliest entry into `out` iff its time is <= limit; returns
  // false (and pops nothing) otherwise. One scan instead of a
  // next_time()/pop() pair — the run_until() hot path. The wheel never
  // advances past `limit`, so callers may keep scheduling any t >= limit
  // afterwards.
  bool pop_if_before(SimTime limit, Entry& out);

  // Remove every pending entry whose source is `src`; returns how many were
  // dropped. O(total entries) — a full sweep over every slot and the
  // overflow heap — so strictly a teardown/cold-path operation.
  std::size_t cancel(const EventSource* src);

  // Append every pending entry to `out` (arbitrary order; entries keep
  // their (time, seq) keys) and leave the wheel empty. O(slots + entries) —
  // the wheel->heap migration path of the adaptive EventList, which
  // re-establishes dispatch order by re-heapifying.
  void drain(std::vector<Entry>& out);

 private:
  // 2^11-slot levels keep sub-2-us timers (pipe hops, queue drains) on
  // level 0 — inserted and popped with zero cascades — while three levels
  // still cover a 2^33 ns (~8.6 s) horizon.
  static constexpr int kSlotBits = 11;
  static constexpr int kSlots = 1 << kSlotBits;  // 2048
  static constexpr int kLevels = 3;
  static constexpr int kHorizonBits = kSlotBits * kLevels;
  static constexpr int kBitmapWords = kSlots / 64;

  struct Slot {
    std::vector<Entry> entries;
    std::uint32_t head = 0;  // dispatched prefix (level 0 only)
    bool sorted = false;     // entries[head..] ascending by seq
  };

  struct Level {
    std::array<Slot, kSlots> slots;
    std::array<std::uint64_t, kBitmapWords> bitmap{};
    // Bit w set iff bitmap[w] != 0 — makes find_slot O(1) instead of a
    // linear scan over the bitmap words.
    std::uint32_t summary = 0;
  };
  static_assert(kBitmapWords <= 32, "summary bitmap is a uint32");

  // Place an entry into the wheel or the overflow heap. Maintains
  // wheel_size_ but not size_ (so cascades can reuse it).
  void insert(const Entry& e);
  // Move every entry of levels_[lv].slots[idx] down into lower levels.
  void cascade(int lv, int idx);
  // First occupied slot index >= from at `lv`, or -1.
  int find_slot(const Level& lv, int from) const;

  void mark(Level& lv, int idx) {
    lv.bitmap[static_cast<std::size_t>(idx >> 6)] |= 1ull << (idx & 63);
    lv.summary |= 1u << (idx >> 6);
  }
  void unmark(Level& lv, int idx) {
    std::uint64_t& word = lv.bitmap[static_cast<std::size_t>(idx >> 6)];
    word &= ~(1ull << (idx & 63));
    if (word == 0) lv.summary &= ~(1u << (idx >> 6));
  }

  struct EntryGreater {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::array<Level, kLevels> levels_;
  std::vector<Entry> scratch_;  // cascade() staging; reused, never nested
  std::priority_queue<Entry, std::vector<Entry>, EntryGreater> overflow_;
  std::uint64_t cur_ = 0;        // tick of the last popped entry
  std::size_t wheel_size_ = 0;   // entries resident in the wheel levels
  std::size_t size_ = 0;         // wheel + overflow
  // Cached overflow_.empty(): the drained-wheel branch of pop_if_before and
  // next_time() consult it instead of probing the heap adaptor each time.
  bool overflow_empty_ = true;
};

// Inline: schedule() runs once per event and insert() once more per cascade
// level — together the hottest wheel operations, so they live in the header
// (the pop side stays out of line; its slot-scan loop dwarfs call overhead).
inline void TimingWheel::insert(const Entry& e) {
  const auto t = static_cast<std::uint64_t>(e.time);
  // The entry belongs on the lowest level whose epoch (the bits above the
  // level's slot index) matches cur_'s — equivalently, the level containing
  // the highest bit where t and cur_ differ.
  const std::uint64_t diff = t ^ cur_;
  const int hb = diff == 0 ? 0 : 63 - std::countl_zero(diff);
  const int lv = hb / kSlotBits;
  if (lv >= kLevels) {
    overflow_.push(e);  // beyond the wheel horizon
    overflow_empty_ = false;
    return;
  }
  const int idx = static_cast<int>((t >> (kSlotBits * lv)) & (kSlots - 1));
  Slot& s = levels_[static_cast<std::size_t>(lv)]
                .slots[static_cast<std::size_t>(idx)];
  // Sorted iff appending preserves ascending seq. Direct schedules usually
  // do (seq is globally increasing); cascaded or migrated entries may not.
  s.sorted = s.entries.empty() || (s.sorted && e.seq > s.entries.back().seq);
  // First touch of a slot: reserve past the 1->2->4 doubling so steady-state
  // laps of the wheel append without reallocating.
  // mpsim-analyze: allow(hot-alloc)
  if (s.entries.capacity() == 0) s.entries.reserve(8);
  // Amortized: slot capacity persists across wheel laps, so growth stops
  // once the busiest slot has been seen at its peak occupancy.
  // mpsim-analyze: allow(hot-alloc)
  s.entries.push_back(e);
  mark(levels_[static_cast<std::size_t>(lv)], idx);
  ++wheel_size_;
}

inline void TimingWheel::schedule(SimTime t, std::uint64_t seq,
                                  EventSource* src) {
  MPSIM_CHECK(static_cast<std::uint64_t>(t) >= cur_ || size_ == 0,
              "wheel entries must not precede the current tick");
  insert(Entry{t, seq, src});
  ++size_;
}

}  // namespace mpsim
