#include <gtest/gtest.h>

#include <memory>

#include "core/check.hpp"
#include "core/event_list.hpp"
#include "stats/monitors.hpp"
#include "stats/summary.hpp"
#include "stats/table.hpp"

namespace mpsim::stats {
namespace {

TEST(Summary, JainPerfectFairness) {
  EXPECT_DOUBLE_EQ(jain_index({5, 5, 5, 5}), 1.0);
}

TEST(Summary, JainWorstCase) {
  // One flow hogging everything: index = 1/n.
  EXPECT_NEAR(jain_index({10, 0, 0, 0}), 0.25, 1e-12);
}

TEST(Summary, JainPaperTorusValue) {
  // Sanity on the formula with a mildly uneven allocation:
  // (2.8)^2 / (3 * 2.64) = 0.98990.
  EXPECT_NEAR(jain_index({1.0, 1.0, 0.8}), 0.98990, 0.0001);
}

TEST(Summary, JainEdgeCases) {
  EXPECT_DOUBLE_EQ(jain_index({}), 1.0);
  EXPECT_DOUBLE_EQ(jain_index({0, 0}), 1.0);
}

TEST(Summary, BasicAggregates) {
  const std::vector<double> xs = {4, 1, 3, 2};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_DOUBLE_EQ(minimum(xs), 1.0);
  EXPECT_DOUBLE_EQ(maximum(xs), 4.0);
  EXPECT_NEAR(stddev(xs), 1.2909944, 1e-6);
}

TEST(Summary, PercentileNearestRank) {
  std::vector<double> xs;
  for (int i = 1; i <= 100; ++i) xs.push_back(i);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 100.0);
  EXPECT_NEAR(percentile(xs, 0.5), 50.0, 1.0);
}

TEST(Summary, RankSortedAscending) {
  auto r = rank_sorted({3, 1, 2});
  EXPECT_EQ(r, (std::vector<double>{1, 2, 3}));
}

TEST(Monitors, CounterSeriesComputesDeltas) {
  EventList events;
  std::uint64_t counter = 0;
  CounterSeries series(events, "s", from_ms(100), [&] { return counter; });
  series.start(0);
  // Counter grows by 10 per 100 ms via a driver event.
  struct Driver : EventSource {
    Driver(EventList& e, std::uint64_t& c) : EventSource(e, "d"), ev(e), c(c) {}
    void on_event() override {
      c += 10;
      if (++n < 20) ev.schedule_in(*this, from_ms(100));
    }
    EventList& ev;
    std::uint64_t& c;
    int n = 0;
  } driver(events, counter);
  events.schedule_at(driver, from_ms(50));
  events.run_until(from_sec(2));
  ASSERT_GE(series.points().size(), 15u);
  for (const auto& p : series.points()) EXPECT_EQ(p.delta, 10u);
  EXPECT_NEAR(series.mean_rate(), 100.0, 1.0);  // 10 per 0.1 s
}

TEST(Monitors, PktsToMbps) {
  // 1000 pkts x 1500 B x 8 over 1 s = 12 Mb/s.
  EXPECT_DOUBLE_EQ(pkts_to_mbps(1000, from_sec(1)), 12.0);
  EXPECT_DOUBLE_EQ(pkts_to_mbps(0, from_sec(1)), 0.0);
  EXPECT_DOUBLE_EQ(pkts_to_mbps(1000, 0), 0.0);
}

TEST(Monitors, PeriodicSamplerStops) {
  EventList events;
  int calls = 0;
  PeriodicSampler s(events, "s", from_ms(10), [&](SimTime) { ++calls; });
  s.start(0);
  events.run_until(from_ms(55));
  s.stop();
  events.run_until(from_ms(200));
  EXPECT_EQ(calls, 6);  // t = 0,10,...,50
}

// Regression: destroying a sampler (or calling stop()) while its next
// wake-up is still queued used to leave a dangling EventSource* in the
// event list — dispatched later as use-after-free — and kept run_all()
// ticking on a sampler that does nothing. stop() now cancels eagerly.
TEST(Monitors, SamplerDestructionCancelsPendingWakeup) {
  ScopedThrowingChecks guard;
  EventList events;
  int calls = 0;
  {
    PeriodicSampler s(events, "s", from_ms(10), [&](SimTime) { ++calls; });
    s.start(0);
    events.run_until(from_ms(25));  // last tick at 20 ms rescheduled to 30 ms
    EXPECT_EQ(events.pending(), 1u);
  }  // destroyed with the 30 ms wake-up still queued
  EXPECT_EQ(events.pending(), 0u);
  events.run_all();  // would dispatch the dangling pointer pre-fix
  EXPECT_EQ(calls, 3);  // t = 0, 10, 20
}

TEST(Monitors, SamplerStopRemovesPendingWakeup) {
  EventList events;
  int calls = 0;
  PeriodicSampler s(events, "s", from_ms(10), [&](SimTime) { ++calls; });
  s.start(0);
  events.run_until(from_ms(25));
  s.stop();
  // A stopped sampler must not keep a run-until-empty simulation alive.
  EXPECT_EQ(events.pending(), 0u);
  events.run_all();
  EXPECT_EQ(calls, 3);
}

// Regression: stop() from inside the sampling callback used to be undone by
// the unconditional reschedule that followed the callback.
TEST(Monitors, SamplerStopFromCallbackDoesNotReschedule) {
  EventList events;
  int calls = 0;
  std::unique_ptr<PeriodicSampler> s;
  s = std::make_unique<PeriodicSampler>(events, "s", from_ms(10),
                                        [&](SimTime) {
                                          if (++calls == 3) s->stop();
                                        });
  s->start(0);
  events.run_until(from_ms(25));  // ticks at 0, 10, 20; stop() on the third
  EXPECT_EQ(calls, 3);
  // The tick whose callback called stop() must not have re-armed the
  // sampler (pre-fix: the post-callback reschedule ran unconditionally,
  // leaving a ghost wake-up).
  EXPECT_EQ(events.pending(), 0u);
  EXPECT_FALSE(s->running());
  events.run_all();
  EXPECT_EQ(calls, 3);
}

// Regression: mean_rate() used interval * point-count for elapsed time,
// which is wrong across a stop()/start() gap (the first post-restart delta
// spans the gap but the formula only credits one interval for it).
TEST(Monitors, CounterSeriesMeanRateAcrossStopRestart) {
  EventList events;
  std::uint64_t counter = 0;
  CounterSeries series(events, "s", from_ms(100), [&] { return counter; });
  // Counter grows by 10 every 100 ms for the whole run, sampled or not.
  struct Driver : EventSource {
    Driver(EventList& e, std::uint64_t& c) : EventSource(e, "d"), ev(e), c(c) {}
    void on_event() override {
      c += 10;
      if (++n < 60) ev.schedule_in(*this, from_ms(100));
    }
    EventList& ev;
    std::uint64_t& c;
    int n = 0;
  } driver(events, counter);
  events.schedule_at(driver, from_ms(50));

  series.start(0);
  events.run_until(from_ms(550));
  series.stop();              // sampled [0, 500 ms]
  events.run_until(from_sec(5));
  series.start(from_sec(5));  // 4.5 s gap, then sample [5 s, 5.5 s]
  events.run_until(from_ms(5550));
  series.stop();

  // True rate is 100/s throughout. The pre-fix formula divides by
  // (#points * 100 ms) ~ 1.1 s while the deltas span 5.5 s, reporting
  // ~500/s.
  EXPECT_NEAR(series.mean_rate(), 100.0, 5.0);
}

TEST(Table, AlignedOutputContainsCells) {
  Table t({"algo", "tp1", "tp2"});
  t.add_row("MPTCP", {95.0, 97.0});
  t.add_row({"SINGLE", "51", "94"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("MPTCP"), std::string::npos);
  EXPECT_NE(s.find("95.0"), std::string::npos);
  EXPECT_NE(s.find("SINGLE"), std::string::npos);
  EXPECT_NE(s.find("tp2"), std::string::npos);
  EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(Table, FmtDoublePrecision) {
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_double(2.0, 0), "2");
}

}  // namespace
}  // namespace mpsim::stats
