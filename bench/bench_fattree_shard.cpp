// Sharded-FatTree throughput tracker: the k = 8 permutation workload of
// Fig. 13 executed at 1, 2 and 4 shards (--shard-threads equivalent,
// conservative parallel DES). The simulation is byte-identical at every
// shard count — test_parallel_des pins that — so the *only* thing this
// bench measures is the cost/benefit of the window protocol: events/sec
// per shard count, and the shard speedup relative to the sequential run.
//
// BENCH_fattree_shard.json is gated by tools/bench_diff.py against
// bench/baselines/: events_per_sec per run (so a regression in either the
// sequential path or the sharded path trips on its own row) and
// peak_pool_packets (per-shard pool peaks are summed; the total is
// deterministic). Speedup > 1 needs >= 4 physical cores — on fewer cores
// the barrier overhead makes shards a net cost, which the per-row gate
// still tracks fairly since baseline and current run on the same class of
// machine.
#include <memory>
#include <string>
#include <vector>

#include "cc/mptcp_lia.hpp"
#include "harness.hpp"
#include "topo/fat_tree.hpp"
#include "traffic/traffic_matrix.hpp"

namespace mpsim {
namespace {

// The Fig. 13 construction, placed shard-aware: every connection lives on
// its source host's shard and ACK/delivery hops stay shard-local, so the
// only cross-shard traffic is the aggregation<->core mailbox handoff.
void dc_job(runner::RunContext& ctx) {
  topo::Network net(ctx.events(), &ctx.shards());
  topo::FatTree ft(net, 8);
  Rng tm_rng(4243);
  const auto tm = traffic::permutation_tm(ft.num_hosts(), tm_rng);
  Rng path_rng(1);
  mptcp::ConnectionConfig ccfg;
  ccfg.subflow.min_rto = from_ms(10);  // DC RTO floor (see datacenter.hpp)
  ccfg.recv_buffer_pkts = 4096;

  std::vector<std::unique_ptr<mptcp::MptcpConnection>> flows;
  int idx = 0;
  for (const auto& pair : tm) {
    auto conn = std::make_unique<mptcp::MptcpConnection>(
        ft.host_events(pair.src), "f" + std::to_string(idx),
        cc::mptcp_lia(), ccfg);
    auto paths = topo::sample_path_pairs(ft, pair.src, pair.dst, 8,
                                         path_rng);
    for (auto& pr : paths) {
      conn->add_subflow(std::move(pr.first), std::move(pr.second));
    }
    conn->start(bench::scaled(0.0005 * static_cast<double>(idx % 997)));
    flows.push_back(std::move(conn));
    ++idx;
  }

  const SimTime t0 = bench::scaled(1.0);
  const SimTime t1 = t0 + bench::scaled(3.0);
  ctx.run_until(t0);
  std::vector<std::uint64_t> at_mark;
  at_mark.reserve(flows.size());
  for (const auto& f : flows) at_mark.push_back(f->delivered_pkts());
  ctx.run_until(t1);

  std::uint64_t delivered = 0;
  for (std::size_t i = 0; i < flows.size(); ++i) {
    delivered += flows[i]->delivered_pkts() - at_mark[i];
  }
  ctx.record("flows", static_cast<double>(flows.size()));
  ctx.record("delivered_pkts", static_cast<double>(delivered));
  ctx.record("total_mbps", stats::pkts_to_mbps(delivered, t1 - t0));
}

}  // namespace
}  // namespace mpsim

int main() {
  using namespace mpsim;
  bench::banner(
      "sharded FatTree k=8 permutation: events/sec at 1, 2, 4 shards",
      "conservative parallel DES; results byte-identical per "
      "test_parallel_des, so only the window-protocol cost moves");

  std::vector<runner::RunResult> results;
  for (int shards : {1, 2, 4}) {
    runner::RunnerConfig rcfg;
    rcfg.threads = 1;  // measure the shard workers, not job concurrency
    rcfg.shard_threads = shards;
    runner::ExperimentRunner exp(rcfg);
    exp.add("shards" + std::to_string(shards),
            [shards](runner::RunContext& ctx) {
              ctx.annotate("shard_threads", std::to_string(shards));
              ctx.annotate("topology", "fat_tree_k8");
              ctx.annotate("traffic", "permutation_tp1");
              dc_job(ctx);
            });
    auto batch = exp.run_all();
    results.insert(results.end(),
                   std::make_move_iterator(batch.begin()),
                   std::make_move_iterator(batch.end()));
  }

  stats::Table t({"shards", "total_mbps", "events/sec", "speedup"});
  const double base_eps = results[0].metrics.events_per_sec;
  for (const auto& r : results) {
    t.add_row(r.name.substr(6),
              {r.value("total_mbps"), r.metrics.events_per_sec,
               base_eps > 0.0 ? r.metrics.events_per_sec / base_eps : 0.0},
              2);
  }
  t.print();
  std::printf("\n(byte-identity across shard counts is pinned by "
              "test_parallel_des; delivered_pkts must match row-to-row)\n");

  bench::Json root = bench::Json::object();
  root.set("bench", "fattree_shard");
  root.set("runs", bench::json_from_results(results));
  bench::write_bench_json("fattree_shard", root);
  return 0;
}
