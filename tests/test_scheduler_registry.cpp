// The data-scheduler registry: policy-level unit tests over a fake view,
// and simulation-level behaviour (stripe equivalence with the pre-registry
// scheduler, redundant duplicate suppression at the receiver).
#include "mptcp/scheduler.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "cc/mptcp_lia.hpp"
#include "cc/uncoupled.hpp"
#include "mptcp/connection.hpp"
#include "sim_fixtures.hpp"
#include "topo/network.hpp"
#include "topo/two_link.hpp"

namespace mpsim::mptcp {
namespace {

// A fixed table of per-subflow (srtt, cwnd, inflight) the policies rank.
class TableView : public SchedulerView {
 public:
  struct Row {
    double srtt;
    double cwnd;
    double inflight;
    bool active = true;
  };
  explicit TableView(std::vector<Row> rows) : rows_(std::move(rows)) {}

  std::size_t num_subflows() const override { return rows_.size(); }
  bool subflow_active(std::size_t r) const override { return rows_[r].active; }
  double srtt_sec(std::size_t r) const override { return rows_[r].srtt; }
  double cwnd_pkts(std::size_t r) const override { return rows_[r].cwnd; }
  double inflight_pkts(std::size_t r) const override {
    return rows_[r].inflight;
  }

  std::vector<Row> rows_;
};

TEST(SchedulerRegistry, FactoryProducesEveryKind) {
  for (auto kind :
       {DataSchedulerKind::kStripe, DataSchedulerKind::kMinRttFirst,
        DataSchedulerKind::kRedundant, DataSchedulerKind::kBlest}) {
    auto s = make_data_scheduler(kind, 0, 100);
    ASSERT_NE(s, nullptr);
    EXPECT_STREQ(s->kind_name(), to_string(kind));
  }
}

TEST(SchedulerRegistry, RankingPoliciesDegradeToStripeWithoutView) {
  // No view installed: the ranking policies must hand out the same
  // sequential stream the stripe scheduler does, from any subflow id.
  // (Redundant is deliberately absent — its duplication needs no view.)
  for (auto kind :
       {DataSchedulerKind::kMinRttFirst, DataSchedulerKind::kBlest}) {
    auto s = make_data_scheduler(kind, 0, 1000);
    std::uint64_t d = 99;
    for (std::uint64_t i = 0; i < 5; ++i) {
      ASSERT_TRUE(s->next_data(static_cast<std::uint32_t>(i % 2), d))
          << to_string(kind);
      EXPECT_EQ(d, i) << to_string(kind);
    }
  }
}

// ---------- min_rtt_first ----------

TEST(MinRttFirst, SlowSubflowDefersWhileFastHasWindow) {
  MinRttFirstScheduler s(0, 1000);
  TableView v({{0.010, 10.0, 0.0}, {0.050, 10.0, 0.0}});
  s.set_view(&v);
  std::uint64_t d;
  EXPECT_FALSE(s.next_data(1, d)) << "fast sibling still has free window";
  EXPECT_TRUE(s.next_data(0, d));
  EXPECT_EQ(d, 0u);
  // Fast path fills up: the slow one may now take fresh data.
  v.rows_[0].inflight = 10.0;
  EXPECT_TRUE(s.next_data(1, d));
  EXPECT_EQ(d, 1u);
}

TEST(MinRttFirst, EqualSrttTieBreaksTowardLowerId) {
  MinRttFirstScheduler s(0, 1000);
  TableView v({{0.020, 10.0, 0.0}, {0.020, 10.0, 0.0}});
  s.set_view(&v);
  std::uint64_t d;
  // Identical paths: subflow 1 defers to subflow 0, never the reverse, so
  // equal-srtt races resolve the same way on every run.
  EXPECT_FALSE(s.next_data(1, d));
  EXPECT_TRUE(s.next_data(0, d));
  EXPECT_FALSE(s.next_data(1, d));
  EXPECT_TRUE(s.next_data(0, d));
  // ...until the preferred path's window is gone.
  v.rows_[0].inflight = 10.0;
  EXPECT_TRUE(s.next_data(1, d));
}

TEST(MinRttFirst, ReinjectionsBypassTheRanking) {
  MinRttFirstScheduler s(0, 1000);
  TableView v({{0.010, 10.0, 0.0}, {0.050, 10.0, 0.0}});
  s.set_view(&v);
  std::uint64_t d;
  ASSERT_TRUE(s.next_data(0, d));
  s.reinject({0});
  // The slow subflow is refused fresh data but must carry reinjections —
  // that is the whole point of reinjecting off a stalled path.
  EXPECT_TRUE(s.next_data(1, d));
  EXPECT_EQ(d, 0u);
}

TEST(MinRttFirst, InactiveAndWindowFullSiblingsDoNotBlock) {
  MinRttFirstScheduler s(0, 1000);
  TableView v({{0.010, 10.0, 10.0}, {0.050, 10.0, 0.0}, {0.005, 8.0, 0.0}});
  v.rows_[2].active = false;
  s.set_view(&v);
  std::uint64_t d;
  // Subflow 0 is faster but window-full; subflow 2 is faster but inactive.
  EXPECT_TRUE(s.next_data(1, d));
}

// ---------- redundant ----------

TEST(Redundant, EachSubflowWalksTheSameStream) {
  RedundantScheduler s(0, 1000);
  std::uint64_t d;
  ASSERT_TRUE(s.next_data(0, d));
  EXPECT_EQ(d, 0u);
  ASSERT_TRUE(s.next_data(1, d));
  EXPECT_EQ(d, 0u) << "subflow 1 duplicates the stream from the start";
  ASSERT_TRUE(s.next_data(0, d));
  EXPECT_EQ(d, 1u);
  ASSERT_TRUE(s.next_data(1, d));
  EXPECT_EQ(d, 1u);
  EXPECT_EQ(s.next_new(), 2u);
}

TEST(Redundant, CursorsSkipDeliveredData) {
  RedundantScheduler s(0, 1000);
  std::uint64_t d;
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(s.next_data(0, d));
  s.on_data_ack(3, 1000);
  // Subflow 1 joins late: no point duplicating data the receiver holds.
  ASSERT_TRUE(s.next_data(1, d));
  EXPECT_EQ(d, 3u);
}

TEST(Redundant, RespectsAppLimitPerCursor) {
  RedundantScheduler s(2, 1000);
  std::uint64_t d;
  ASSERT_TRUE(s.next_data(0, d));
  ASSERT_TRUE(s.next_data(0, d));
  EXPECT_FALSE(s.next_data(0, d));
  ASSERT_TRUE(s.next_data(1, d));
  EXPECT_EQ(d, 0u);
  ASSERT_TRUE(s.next_data(1, d));
  EXPECT_FALSE(s.next_data(1, d));
}

// ---------- blest ----------

TEST(Blest, SlowPathRefusedWhenFastPathCoversTheWindow) {
  BlestScheduler s(0, /*initial_window=*/20);
  // Fast path: 16-packet window at 10 ms. Slow path: 100 ms srtt, so the
  // fast path projects 16 * 10 = 160 >= 20 remaining — refuse.
  TableView v({{0.010, 16.0, 0.0}, {0.100, 16.0, 0.0}});
  s.set_view(&v);
  std::uint64_t d;
  EXPECT_FALSE(s.next_data(1, d));
  EXPECT_TRUE(s.next_data(0, d));
}

TEST(Blest, SlowPathAdmittedWhenWindowOutgrowsTheFastPath) {
  BlestScheduler s(0, /*initial_window=*/1000);
  // Projected fast capacity 16 * (0.03/0.01) = 48 < 1000 remaining: the
  // slow path genuinely adds throughput, so it sends.
  TableView v({{0.010, 16.0, 0.0}, {0.030, 16.0, 0.0}});
  s.set_view(&v);
  std::uint64_t d;
  EXPECT_TRUE(s.next_data(1, d));
}

TEST(Blest, FastestPathIsNeverBlocked) {
  BlestScheduler s(0, 10);
  TableView v({{0.010, 100.0, 0.0}, {0.100, 100.0, 0.0}});
  s.set_view(&v);
  std::uint64_t d;
  // Subflow 0 has no strictly faster sibling: always admitted.
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(s.next_data(0, d));
}

// ---------- simulation-level behaviour ----------

TEST(SchedulerSim, StripeFactoryMatchesDefaultConnection) {
  // A connection built with an explicit kStripe config must transmit the
  // byte-identical schedule of one built with the default config.
  auto run = [](bool explicit_stripe) {
    EventList events;
    topo::Network net(events);
    topo::LinkSpec spec;
    spec.rate_bps = 10e6;
    spec.one_way_delay = from_ms(10);
    spec.buf_bytes = topo::bdp_bytes(10e6, from_ms(20));
    topo::TwoLink links(net, spec, spec);
    mptcp::ConnectionConfig cfg;
    if (explicit_stripe) cfg.scheduler = DataSchedulerKind::kStripe;
    MptcpConnection conn(events, "mp", cc::mptcp_lia(), cfg);
    conn.add_subflow(links.fwd(0), links.rev(0));
    conn.add_subflow(links.fwd(1), links.rev(1));
    conn.start(0);
    events.run_until(from_sec(5));
    return std::tuple<std::uint64_t, std::uint64_t, std::uint64_t>(
        conn.delivered_pkts(), conn.subflow(0).packets_acked(),
        conn.subflow(1).packets_acked());
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(SchedulerSim, RedundantDuplicatesAreSuppressedAtTheReceiver) {
  EventList events;
  topo::Network net(events);
  topo::LinkSpec spec;
  spec.rate_bps = 10e6;
  spec.one_way_delay = from_ms(10);
  spec.buf_bytes = topo::bdp_bytes(10e6, from_ms(20));
  topo::TwoLink links(net, spec, spec);
  mptcp::ConnectionConfig cfg;
  cfg.scheduler = DataSchedulerKind::kRedundant;
  MptcpConnection conn(events, "mp", cc::mptcp_lia(), cfg);
  conn.add_subflow(links.fwd(0), links.rev(0));
  conn.add_subflow(links.fwd(1), links.rev(1));
  conn.start(0);
  events.run_until(from_sec(5));
  // Both paths carry the stream; the receiver delivers each packet once
  // and counts the copies it threw away.
  EXPECT_GT(conn.delivered_pkts(), 1000u);
  EXPECT_GT(conn.receiver().duplicates(), 1000u);
  EXPECT_EQ(conn.receiver().window_violations(), 0u);
  EXPECT_STREQ(conn.scheduler().kind_name(),
               to_string(DataSchedulerKind::kRedundant));
}

TEST(SchedulerSim, MinRttFirstShiftsShareTowardTheFasterPath) {
  // Same asymmetric two-link topology under stripe and min_rtt_first,
  // with a tight receive buffer so fresh data is scarce (under a bulk
  // stream and an open window every subflow is saturated and placement
  // policy cannot matter). The ranking policy must strictly raise the
  // fast (10 ms) path's share of the stream relative to plain striping.
  auto fast_share = [](DataSchedulerKind kind) {
    EventList events;
    topo::Network net(events);
    topo::LinkSpec fast;
    fast.rate_bps = 10e6;
    fast.one_way_delay = from_ms(5);
    fast.buf_bytes = topo::bdp_bytes(10e6, from_ms(10));
    topo::LinkSpec slow = fast;
    slow.one_way_delay = from_ms(50);
    slow.buf_bytes = topo::bdp_bytes(10e6, from_ms(100));
    topo::TwoLink links(net, fast, slow);
    mptcp::ConnectionConfig cfg;
    cfg.scheduler = kind;
    cfg.recv_buffer_pkts = 32;
    MptcpConnection conn(events, "mp", cc::uncoupled(), cfg);
    conn.add_subflow(links.fwd(0), links.rev(0));
    conn.add_subflow(links.fwd(1), links.rev(1));
    conn.start(0);
    events.run_until(from_sec(10));
    EXPECT_GT(conn.delivered_pkts(), 1000u);
    EXPECT_EQ(conn.receiver().window_violations(), 0u);
    const double f = static_cast<double>(conn.subflow(0).packets_acked());
    const double s = static_cast<double>(conn.subflow(1).packets_acked());
    return f / (f + s);
  };
  const double stripe = fast_share(DataSchedulerKind::kStripe);
  const double ranked = fast_share(DataSchedulerKind::kMinRttFirst);
  EXPECT_GT(ranked, stripe);
  EXPECT_GT(ranked, 0.5) << "the fast path must carry the majority";
}

}  // namespace
}  // namespace mpsim::mptcp
