#include "net/boundary.hpp"

#include "core/check.hpp"

namespace mpsim::net {

BoundarySink::BoundarySink(std::string name, EventList& src_events, Pipe& pipe)
    : name_(std::move(name)), src_events_(src_events), pipe_(pipe) {}

BoundarySink::BoundarySink(std::string name, EventList& src_events, Pipe& pipe,
                           ShardGroup& group, int dst_shard)
    : name_(std::move(name)),
      src_events_(src_events),
      pipe_(pipe),
      dst_events_(&pipe.events()),
      cross_(true) {
  group.note_lookahead(pipe.delay());
  group.register_drain(dst_shard, [this] { drain(); });
}

void BoundarySink::receive(Packet& pkt) {
  if (!cross_) {
    // Same shard: the boundary is transparent — the packet enters the wire
    // now, exactly as if the queue fed the pipe directly.
    pipe_.receive_shipped(pkt, src_events_.now());
    return;
  }
  ShippedPacket s;
  s.send_time = src_events_.now();
  s.route = pkt.route();
  s.next_hop = pkt.next_hop();
  s.type = pkt.type;
  s.flow_id = pkt.flow_id;
  s.subflow_id = pkt.subflow_id;
  s.subflow_seq = pkt.subflow_seq;
  s.data_seq = pkt.data_seq;
  s.subflow_cum_ack = pkt.subflow_cum_ack;
  s.data_cum_ack = pkt.data_cum_ack;
  s.rcv_window = pkt.rcv_window;
  s.is_window_update = pkt.is_window_update;
  s.size_bytes = pkt.size_bytes;
  s.ts_echo = pkt.ts_echo;
  s.is_retransmit = pkt.is_retransmit;
  // The ledger stays home-shard-only (see the header comment): drop the
  // pointer before release so the counter is never touched off-thread.
  pkt.wire_refs = nullptr;
  pkt.release();
  // Amortized like any packet list: the mailbox keeps its capacity across
  // windows, so steady state appends without allocating.
  // mpsim-analyze: allow(hot-alloc)
  mailbox_.push_back(s);
}

void BoundarySink::drain() {
  for (const ShippedPacket& s : mailbox_) {
    MPSIM_CHECK(s.send_time != kNever,
                "mailbox entry crossed shards without a (time, seq) stamp");
    Packet& pkt = Packet::alloc(*dst_events_);
    pkt.type = s.type;
    pkt.flow_id = s.flow_id;
    pkt.subflow_id = s.subflow_id;
    pkt.subflow_seq = s.subflow_seq;
    pkt.data_seq = s.data_seq;
    pkt.subflow_cum_ack = s.subflow_cum_ack;
    pkt.data_cum_ack = s.data_cum_ack;
    pkt.rcv_window = s.rcv_window;
    pkt.is_window_update = s.is_window_update;
    pkt.size_bytes = s.size_bytes;
    pkt.ts_echo = s.ts_echo;
    pkt.is_retransmit = s.is_retransmit;
    pkt.resume(*s.route, s.next_hop);
    // The conservative window guarantees send_time + delay is still in the
    // destination shard's future; receive_shipped re-checks it.
    pipe_.receive_shipped(pkt, s.send_time);
  }
  mailbox_.clear();
}

}  // namespace mpsim::net
