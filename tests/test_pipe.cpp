#include "net/pipe.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/event_list.hpp"
#include "net/cbr.hpp"
#include "net/packet.hpp"

namespace mpsim::net {
namespace {

TEST(Pipe, DeliversAfterDelay) {
  EventList events;
  CountingSink sink("sink");
  Pipe pipe(events, "pipe", from_ms(25));
  Route route({&pipe, &sink});
  Packet::alloc(events).send_on(route);
  events.run_all();
  EXPECT_EQ(sink.packets(), 1u);
  EXPECT_EQ(events.now(), from_ms(25));
}

TEST(Pipe, ZeroDelayDeliversImmediately) {
  EventList events;
  CountingSink sink("sink");
  Pipe pipe(events, "pipe", 0);
  Route route({&pipe, &sink});
  Packet::alloc(events).send_on(route);
  events.run_all();
  EXPECT_EQ(sink.packets(), 1u);
  EXPECT_EQ(events.now(), 0);
}

TEST(Pipe, PreservesOrderAndSpacing) {
  EventList events;
  struct TimedSink : PacketSink {
    explicit TimedSink(EventList& e) : events(e) {}
    void receive(Packet& pkt) override {
      times.push_back(events.now());
      seqs.push_back(pkt.data_seq);
      pkt.release();
    }
    const std::string& sink_name() const override { return name; }
    EventList& events;
    std::string name = "timed";
    std::vector<SimTime> times;
    std::vector<std::uint64_t> seqs;
  } sink(events);

  Pipe pipe(events, "pipe", from_ms(10));
  Route route({&pipe, &sink});

  // Inject at t=0 and t=3ms via a helper event source.
  struct Injector : EventSource {
    Injector(EventList& e, const Route& r) : EventSource(e, "inj"), events(e), route(r) {}
    void on_event() override {
      Packet& p = Packet::alloc(events);
      p.data_seq = static_cast<std::uint64_t>(count++);
      p.send_on(route);
    }
    EventList& events;
    const Route& route;
    int count = 0;
  } inj(events, route);
  events.schedule_at(inj, 0);
  events.schedule_at(inj, from_ms(3));
  events.run_all();

  ASSERT_EQ(sink.times.size(), 2u);
  EXPECT_EQ(sink.times[0], from_ms(10));
  EXPECT_EQ(sink.times[1], from_ms(13));
  EXPECT_EQ(sink.seqs[0], 0u);
  EXPECT_EQ(sink.seqs[1], 1u);
}

TEST(Pipe, ManyInFlightSimultaneously) {
  EventList events;
  CountingSink sink("sink");
  Pipe pipe(events, "pipe", from_ms(100));
  Route route({&pipe, &sink});
  for (int i = 0; i < 1000; ++i) Packet::alloc(events).send_on(route);
  events.run_all();
  EXPECT_EQ(sink.packets(), 1000u);
  EXPECT_EQ(events.now(), from_ms(100));
}

}  // namespace
}  // namespace mpsim::net
