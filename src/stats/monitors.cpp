#include "stats/monitors.hpp"

namespace mpsim::stats {

PeriodicSampler::PeriodicSampler(EventList& events, std::string name,
                                 SimTime interval,
                                 std::function<void(SimTime)> fn)
    : EventSource(std::move(name)),
      events_(events),
      interval_(interval),
      fn_(std::move(fn)) {}

void PeriodicSampler::start(SimTime at) {
  running_ = true;
  events_.schedule_at(*this, at);
}

void PeriodicSampler::on_event() {
  if (!running_) return;
  fn_(events_.now());
  events_.schedule_in(*this, interval_);
}

CounterSeries::CounterSeries(EventList& events, std::string name,
                             SimTime interval,
                             std::function<std::uint64_t()> counter)
    : interval_(interval),
      counter_(std::move(counter)),
      sampler_(events, std::move(name), interval, [this](SimTime t) {
        const std::uint64_t v = counter_();
        if (primed_) points_.push_back({t, v - last_});
        primed_ = true;
        last_ = v;
      }) {}

void CounterSeries::start(SimTime at) { sampler_.start(at); }

double CounterSeries::mean_rate() const {
  if (points_.empty()) return 0.0;
  std::uint64_t total = 0;
  for (const auto& p : points_) total += p.delta;
  return static_cast<double>(total) /
         to_sec(interval_ * static_cast<SimTime>(points_.size()));
}

double pkts_to_mbps(std::uint64_t pkts, SimTime elapsed) {
  if (elapsed <= 0) return 0.0;
  return static_cast<double>(pkts) * net::kDataPacketBytes * 8.0 /
         to_sec(elapsed) / 1e6;
}

}  // namespace mpsim::stats
