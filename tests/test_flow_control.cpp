// Data-level flow control end to end: zero-window stalls, window-update
// reopening (the §6 shared-buffer design driven to its corner cases).
#include <gtest/gtest.h>

#include "cc/mptcp_lia.hpp"
#include "mptcp/connection.hpp"
#include "sim_fixtures.hpp"
#include "topo/network.hpp"
#include "topo/two_link.hpp"

namespace mpsim {
namespace {

using mptcp::ConnectionConfig;
using mptcp::MptcpConnection;
using test::SingleLink;

TEST(FlowControl, SlowReaderPacesSenderToReadRate) {
  EventList events;
  topo::Network net(events);
  SingleLink link(net, 10e6, from_ms(10), 100 * net::kDataPacketBytes);
  ConnectionConfig cfg;
  cfg.recv_buffer_pkts = 32;
  auto tcp = test::single_tcp(events, "t", link, cfg);
  tcp->receiver().set_app_read_rate(100.0);  // 100 pkt/s = 1.2 Mb/s
  tcp->start(0);
  events.run_until(from_sec(30));
  // Goodput to the app tracks the read rate, not the 10 Mb/s link.
  const double rate = static_cast<double>(tcp->receiver().delivered()) / 30.0;
  EXPECT_NEAR(rate, 100.0, 15.0);
  EXPECT_EQ(tcp->receiver().window_violations(), 0u);
}

TEST(FlowControl, ZeroWindowReopensViaWindowUpdate) {
  // The app stops reading entirely, the window closes to zero and the
  // sender goes quiet. When the app resumes, the receiver must volunteer
  // a window update (no data is flowing to carry it) or the connection
  // deadlocks.
  EventList events;
  topo::Network net(events);
  SingleLink link(net, 10e6, from_ms(10), 100 * net::kDataPacketBytes);
  ConnectionConfig cfg;
  cfg.recv_buffer_pkts = 32;
  auto tcp = test::single_tcp(events, "t", link, cfg);
  tcp->receiver().set_app_read_rate(1e-9);  // effectively stalled app
  tcp->start(0);
  events.run_until(from_sec(10));
  const auto stalled_at = tcp->receiver().delivered();
  EXPECT_LE(tcp->receiver().advertised_window(), 1u);
  // Nothing moves while the app is stalled.
  events.run_until(from_sec(20));
  EXPECT_LE(tcp->receiver().delivered() - stalled_at, 2u);

  // App wakes up.
  tcp->receiver().set_app_read_rate(10000.0);
  events.run_until(from_sec(40));
  EXPECT_GT(tcp->receiver().window_updates_sent(), 0u)
      << "reopen must be advertised spontaneously";
  EXPECT_GT(tcp->receiver().delivered(), stalled_at + 5000u)
      << "transfer must resume at full speed";
  EXPECT_EQ(tcp->receiver().window_violations(), 0u);
}

TEST(FlowControl, ZeroWindowOnMultipathReopensToo) {
  EventList events;
  topo::Network net(events);
  topo::LinkSpec spec;
  spec.rate_bps = 10e6;
  spec.one_way_delay = from_ms(10);
  spec.buf_bytes = topo::bdp_bytes(10e6, from_ms(20));
  topo::TwoLink links(net, spec, spec);
  ConnectionConfig cfg;
  cfg.recv_buffer_pkts = 48;
  MptcpConnection mp(events, "mp", cc::mptcp_lia(), cfg);
  mp.add_subflow(links.fwd(0), links.rev(0));
  mp.add_subflow(links.fwd(1), links.rev(1));
  mp.receiver().set_app_read_rate(1e-9);
  mp.start(0);
  events.run_until(from_sec(10));
  const auto stalled_at = mp.receiver().delivered();
  mp.receiver().set_app_read_rate(10000.0);
  events.run_until(from_sec(30));
  EXPECT_GT(mp.receiver().delivered(), stalled_at + 5000u);
  EXPECT_EQ(mp.receiver().window_violations(), 0u);
}

TEST(FlowControl, SteadyTrickleSelfPacesWithoutSpuriousRetransmits) {
  // A reader far below the link rate keeps the advertised window hovering
  // at 1-2 packets; the flow self-paces off the sliding right edge with no
  // losses and hence no retransmissions.
  EventList events;
  topo::Network net(events);
  SingleLink link(net, 10e6, from_ms(10), 100 * net::kDataPacketBytes);
  ConnectionConfig cfg;
  cfg.recv_buffer_pkts = 16;
  auto tcp = test::single_tcp(events, "t", link, cfg);
  tcp->receiver().set_app_read_rate(50.0);
  tcp->start(0);
  events.run_until(from_sec(30));
  EXPECT_NEAR(static_cast<double>(tcp->receiver().delivered()) / 30.0, 50.0,
              8.0);
  EXPECT_EQ(tcp->subflow(0).retransmits(), 0u);
  EXPECT_EQ(tcp->subflow(0).timeouts(), 0u);
}

TEST(FlowControl, WindowUpdateIsNotCountedAsDupack) {
  // RFC 5681 excludes window-changing segments from the duplicate-ACK
  // definition. Inject crafted ACKs directly at the sender: three window
  // updates with an unchanged cumulative ACK must NOT trigger fast
  // retransmit; three plain duplicates at the same cumulative ACK must.
  EventList events;
  topo::Network net(events);
  SingleLink link(net, 10e6, from_ms(10), 100 * net::kDataPacketBytes);
  auto tcp = test::single_tcp(events, "t", link);
  tcp->start(0);
  // Run well past the initial slow-start loss episode so the cumulative
  // ACK has passed `recover_` (otherwise RFC 6582's bogus-retransmit
  // guard suppresses the injected dupacks for a different reason).
  events.run_until(from_sec(5));
  ASSERT_GT(tcp->subflow(0).inflight(), 0u) << "need outstanding data";
  ASSERT_FALSE(tcp->subflow(0).in_recovery());
  const auto retx_before = tcp->subflow(0).retransmits();

  auto inject = [&](bool window_update) {
    net::Packet& ack = net::Packet::alloc(events);
    ack.type = net::PacketType::kAck;
    ack.flow_id = tcp->flow_id();
    ack.subflow_id = 0;
    ack.subflow_cum_ack = tcp->subflow(0).packets_acked();  // duplicate
    ack.data_cum_ack = tcp->receiver().data_cum_ack();
    ack.rcv_window = tcp->receiver().advertised_window();
    ack.is_window_update = window_update;
    net::Route direct({&tcp->subflow(0)});
    ack.send_on(direct);
  };

  for (int i = 0; i < 3; ++i) inject(/*window_update=*/true);
  EXPECT_EQ(tcp->subflow(0).retransmits(), retx_before)
      << "window updates must not count toward fast retransmit";

  for (int i = 0; i < 3; ++i) inject(/*window_update=*/false);
  EXPECT_GT(tcp->subflow(0).retransmits(), retx_before)
      << "three genuine dupacks trigger fast retransmit";
}

TEST(FlowControl, TinyBufferStillCorrectJustSlow) {
  EventList events;
  topo::Network net(events);
  SingleLink link(net, 10e6, from_ms(10), 100 * net::kDataPacketBytes);
  ConnectionConfig cfg;
  cfg.recv_buffer_pkts = 2;  // pathological
  cfg.app_limit_pkts = 200;
  auto tcp = test::single_tcp(events, "t", link, cfg);
  tcp->start(0);
  events.run_until(from_sec(30));
  EXPECT_TRUE(tcp->complete()) << "2-packet window: slow but correct";
  EXPECT_EQ(tcp->receiver().window_violations(), 0u);
}

TEST(FlowControl, BufferNeverOverflowsUnderReordering) {
  // Asymmetric RTTs cause heavy data-level reordering; the shared buffer
  // absorbs it without ever exceeding capacity.
  EventList events;
  topo::Network net(events);
  topo::LinkSpec fast;
  fast.rate_bps = 10e6;
  fast.one_way_delay = from_ms(2);
  fast.buf_bytes = topo::bdp_bytes(10e6, from_ms(4));
  topo::LinkSpec slow;
  slow.rate_bps = 10e6;
  slow.one_way_delay = from_ms(100);
  slow.buf_bytes = topo::bdp_bytes(10e6, from_ms(200));
  topo::TwoLink links(net, fast, slow);
  ConnectionConfig cfg;
  cfg.recv_buffer_pkts = 64;
  MptcpConnection mp(events, "mp", cc::mptcp_lia(), cfg);
  mp.add_subflow(links.fwd(0), links.rev(0));
  mp.add_subflow(links.fwd(1), links.rev(1));
  mp.start(0);
  events.run_until(from_sec(30));
  EXPECT_EQ(mp.receiver().window_violations(), 0u);
  EXPECT_LE(mp.receiver().buffer_occupancy(), 64u);
  EXPECT_GT(mp.delivered_pkts(), 8000u);
}

}  // namespace
}  // namespace mpsim
