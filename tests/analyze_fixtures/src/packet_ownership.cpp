// Fixture: packet taken from the pool but never handed on or returned
// -> packet-ownership.
struct EventList;
struct Packet {
  static Packet& alloc(EventList& events);
  int flow_id = 0;
};

struct LeakySource {
  EventList* events_ = nullptr;

  void on_event() {
    Packet& q = Packet::alloc(*events_);
    q.flow_id = 1;  // dropped on the floor: no send_on/advance/release
  }
};
