// Constant-bit-rate traffic with optional exponential on/off bursting.
//
// §3's dynamic load-balancing experiment (Fig. 9) uses a CBR flow that sends
// at full link rate for an exponential on-period (mean 10 ms) and is silent
// for an exponential off-period (mean 100 ms). CBR packets are fire-and-
// forget: no ACKs, no retransmission; drops simply vanish.
#pragma once

#include <string>

#include "core/event_list.hpp"
#include "core/rng.hpp"
#include "net/packet.hpp"

namespace mpsim::net {

// Terminal sink that counts and releases arriving packets.
class CountingSink : public PacketSink {
 public:
  explicit CountingSink(std::string name) : name_(std::move(name)) {}

  void receive(Packet& pkt) override {
    ++packets_;
    bytes_ += pkt.size_bytes;
    pkt.release();
  }
  const std::string& sink_name() const override { return name_; }

  std::uint64_t packets() const { return packets_; }
  std::uint64_t bytes() const { return bytes_; }
  void reset() { packets_ = 0; bytes_ = 0; }

 private:
  std::string name_;
  std::uint64_t packets_ = 0;
  std::uint64_t bytes_ = 0;
};

class OnOffCbrSource : public EventSource {
 public:
  // Sends `rate_bps` of kDataPacketBytes packets while "on". If
  // `mean_on`/`mean_off` are zero the source is always on.
  OnOffCbrSource(EventList& events, std::string name, const Route& route,
                 double rate_bps, SimTime mean_on, SimTime mean_off,
                 std::uint64_t seed);

  void start(SimTime at);
  void on_event() override;

  std::uint64_t packets_sent() const { return packets_sent_; }

 private:
  SimTime inter_packet_gap() const {
    return from_sec(kDataPacketBytes * 8.0 / rate_bps_);
  }

  EventList& events_;
  const Route& route_;
  double rate_bps_;
  SimTime mean_on_;
  SimTime mean_off_;
  Rng rng_;
  bool on_ = false;
  SimTime phase_ends_ = 0;
  std::uint64_t packets_sent_ = 0;
};

}  // namespace mpsim::net
