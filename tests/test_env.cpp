// Accept/reject behaviour of the strict env-knob parsers (core/env.hpp).
//
// The env_* wrappers exit(2) on malformed input, so the testable surface
// is the pure parse_* layer: full-consumption parsing, whitespace
// trimming, and the explicit hex rejection. A value these tests reject is
// one MPSIM_THREADS / MPSIM_BENCH_SCALE would refuse to run with.
#include "core/env.hpp"

#include <gtest/gtest.h>

namespace mpsim::env {
namespace {

TEST(ParseDouble, AcceptsPlainNumbers) {
  double v = -1.0;
  EXPECT_TRUE(parse_double("1.5", v));
  EXPECT_DOUBLE_EQ(v, 1.5);
  EXPECT_TRUE(parse_double("-0.25", v));
  EXPECT_DOUBLE_EQ(v, -0.25);
  EXPECT_TRUE(parse_double("1e3", v));
  EXPECT_DOUBLE_EQ(v, 1000.0);
  EXPECT_TRUE(parse_double("0", v));
  EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(ParseDouble, TrimsWhitespace) {
  double v = 0.0;
  EXPECT_TRUE(parse_double("  2 ", v));
  EXPECT_DOUBLE_EQ(v, 2.0);
  EXPECT_TRUE(parse_double("\t0.5\n", v));
  EXPECT_DOUBLE_EQ(v, 0.5);
}

TEST(ParseDouble, RejectsEmptyAndGarbage) {
  double v = 0.0;
  EXPECT_FALSE(parse_double("", v));
  EXPECT_FALSE(parse_double("   ", v));
  EXPECT_FALSE(parse_double("fast", v));
  EXPECT_FALSE(parse_double("1,5", v));
}

TEST(ParseDouble, RejectsTrailingText) {
  // "2Mbps" silently parsing as 2.0 is exactly the bug class the strict
  // parser exists to kill.
  double v = 0.0;
  EXPECT_FALSE(parse_double("2Mbps", v));
  EXPECT_FALSE(parse_double("1.5x", v));
  EXPECT_FALSE(parse_double("3 4", v));
}

TEST(ParseDouble, RejectsHex) {
  double v = 0.0;
  EXPECT_FALSE(parse_double("0x2", v));
  EXPECT_FALSE(parse_double("0X10", v));
}

TEST(ParseDouble, RejectsNonFinite) {
  double v = 0.0;
  EXPECT_FALSE(parse_double("nan", v));
  EXPECT_FALSE(parse_double("inf", v));
  EXPECT_FALSE(parse_double("1e999", v));  // overflows to ERANGE
}

TEST(ParseInt, AcceptsIntegers) {
  std::int64_t v = -1;
  EXPECT_TRUE(parse_int("42", v));
  EXPECT_EQ(v, 42);
  EXPECT_TRUE(parse_int(" -7 ", v));
  EXPECT_EQ(v, -7);
  EXPECT_TRUE(parse_int("0", v));
  EXPECT_EQ(v, 0);
}

TEST(ParseInt, RejectsNonIntegers) {
  std::int64_t v = 0;
  EXPECT_FALSE(parse_int("", v));
  EXPECT_FALSE(parse_int("4.2", v));
  EXPECT_FALSE(parse_int("1e3", v));
  EXPECT_FALSE(parse_int("0x10", v));
  EXPECT_FALSE(parse_int("seven", v));
  EXPECT_FALSE(parse_int("12 monkeys", v));
}

TEST(ParseInt, RejectsOverflow) {
  std::int64_t v = 0;
  EXPECT_FALSE(parse_int("99999999999999999999", v));
  EXPECT_TRUE(parse_int("9223372036854775807", v));
  EXPECT_EQ(v, INT64_MAX);
}

TEST(EnvFallbacks, UnsetVariableYieldsFallback) {
  // An unset variable must never be an error — it is the normal case.
  EXPECT_DOUBLE_EQ(env_double("MPSIM_TEST_UNSET_D", 1.5, 0.0), 1.5);
  EXPECT_EQ(env_int("MPSIM_TEST_UNSET_I", 7, 0, 100), 7);
  EXPECT_EQ(env_choice("MPSIM_TEST_UNSET_C", "wheel", {"wheel", "heap"}),
            "wheel");
}

}  // namespace
}  // namespace mpsim::env
