// RFC 6356-style formulation of the paper's algorithm, kept as an ablation.
//
// Instead of minimising eq. (1) over subsets on every ACK, the standardised
// variant ("Linked Increases Algorithm") computes a single aggressiveness
// constant
//
//   alpha = w_total * max_r (w_r / RTT_r^2) / ( sum_r w_r / RTT_r )^2
//
// and increases by min(alpha / w_total, 1/w_r) per ACK — exactly the §2.5
// two-path algorithm box generalised with S = R only. For the minimising
// set equal to the full set the two coincide; they differ transiently when
// some strict subset is the binding bottleneck constraint. The ablation
// bench compares the two across heterogeneous-RTT scenarios.
#pragma once

#include "cc/congestion_control.hpp"

namespace mpsim::cc {

class Rfc6356 : public CongestionControl {
 public:
  double increase_per_ack(const ConnectionView& c, std::size_t r) const override;
  double window_after_loss(const ConnectionView& c, std::size_t r) const override;
  std::string name() const override { return "RFC6356"; }

  static double alpha(const ConnectionView& c);
};

const Rfc6356& rfc6356();

}  // namespace mpsim::cc
