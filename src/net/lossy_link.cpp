#include "net/lossy_link.hpp"

// Header-only; this translation unit exists so the target has a home for the
// class should out-of-line definitions become necessary.
