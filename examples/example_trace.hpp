// Shared flight-recorder plumbing for the examples.
//
// Every example honors the MPSIM_TRACE knob (csv|jsonl|null|off) the same
// way: construct an ExampleTrace immediately after the EventList — before
// the topology, so instrumented objects bind to the recorder — and the
// trace is written to trace_<name>.<ext> when the helper goes out of
// scope (or at an explicit write()), printing the path it wrote.
#pragma once

#include <cstdio>
#include <string>

#include "core/event_list.hpp"
#include "trace/sinks.hpp"
#include "trace/trace.hpp"

namespace mpsim::examples {

class ExampleTrace {
 public:
  ExampleTrace(EventList& events, std::string name)
      : kind_(trace::sink_from_env()), name_(std::move(name)) {
    if (kind_ != trace::SinkKind::kNone) {
      rec_ = &trace::TraceRecorder::install(events, trace::config_from_env());
    }
  }

  ExampleTrace(const ExampleTrace&) = delete;
  ExampleTrace& operator=(const ExampleTrace&) = delete;

  ~ExampleTrace() { write(); }

  // nullptr when tracing is off — pass straight to MPSIM_TRACE.
  trace::TraceRecorder* recorder() const { return rec_; }

  // Flush to trace_<name><ext> and print the path (idempotent; the
  // destructor calls this too).
  void write() {
    if (rec_ == nullptr || written_) return;
    written_ = true;
    auto sink = trace::make_sink(kind_);
    rec_->flush(*sink);
    const std::string path =
        "trace_" + name_ + trace::sink_extension(kind_);
    if (trace::write_text_file(path, sink->text())) {
      std::printf("trace written to %s (%llu records)\n", path.c_str(),
                  static_cast<unsigned long long>(rec_->total_records()));
    }
  }

 private:
  trace::SinkKind kind_;
  std::string name_;
  trace::TraceRecorder* rec_ = nullptr;
  bool written_ = false;
};

}  // namespace mpsim::examples
