// Fig. 7/8 / §3 — congestion balancing on the five-link torus.
//
// Five links (A..E), five two-path flows, flow i striping over links i and
// i+1. All RTTs 100 ms, buffers one BDP. We shrink link C from 1000 pkt/s
// down to 100 pkt/s and plot the loss-rate imbalance p_A / p_C for each
// algorithm (Fig. 8's y-axis; perfect balancing -> ratio 1). At C = 100 we
// also report Jain's index over flow rates — the paper gives 0.99 COUPLED,
// 0.986 MPTCP, 0.92 EWTCP.
#include <array>
#include <memory>
#include <vector>

#include "cc/coupled.hpp"
#include "cc/ewtcp.hpp"
#include "cc/mptcp_lia.hpp"
#include "cc/semicoupled.hpp"
#include "harness.hpp"
#include "topo/torus.hpp"

namespace mpsim {
namespace {

struct Result {
  double loss_ratio_ac;  // p_A / p_C
  double jain;
};

Result run(const cc::CongestionControl& algo, double cap_c,
           trace::SinkKind trace_kind, const std::string& combo) {
  EventList events;
  // One trace file per algorithm x capacity combination, named
  // trace_fig8_torus_<algo>_c<cap>.<ext>.
  bench::BenchTrace bt(events, trace_kind, "fig8_torus_" + combo);
  topo::Network net(events);
  topo::Torus torus(net, {1000, 1000, cap_c, 1000, 1000});
  bench::GoodputMeter meter(events);
  std::vector<std::unique_ptr<mptcp::MptcpConnection>> flows;
  for (int f = 0; f < topo::Torus::kLinks; ++f) {
    auto conn = std::make_unique<mptcp::MptcpConnection>(
        events, "flow" + std::to_string(f), algo);
    conn->add_subflow(torus.fwd(f, 0), torus.rev(f, 0));
    conn->add_subflow(torus.fwd(f, 1), torus.rev(f, 1));
    conn->start(from_ms(31 * f));
    meter.track(*conn);
    flows.push_back(std::move(conn));
  }
  // Long warm-up and measurement: loss rates on the large links are small
  // (fractions of a percent) and need thousands of drop samples for a
  // stable ratio.
  events.run_until(bench::scaled(60));
  for (int l = 0; l < topo::Torus::kLinks; ++l) {
    torus.queue(l).reset_stats();
  }
  meter.mark();
  events.run_until(bench::scaled(60) + bench::scaled(900));

  Result r;
  const double pa = torus.queue(0).loss_rate();
  const double pc = torus.queue(2).loss_rate();
  r.loss_ratio_ac = pc > 0 ? pa / pc : 0.0;
  r.jain = stats::jain_index(meter.mbps());
  bt.write();
  return r;
}

}  // namespace
}  // namespace mpsim

int main(int argc, char** argv) {
  using namespace mpsim;
  const auto trace_kind = bench::trace_sink_arg(argc, argv);
  bench::banner(
      "Fig. 8 / §3: torus loss-rate balance, shrinking link C",
      "y = p_A/p_C; 1.0 = perfectly balanced. COUPLED best, EWTCP worst, "
      "MPTCP between. Jain at C=100: 0.99/0.986/0.92");

  struct Algo {
    const char* name;
    const cc::CongestionControl* algo;
  };
  const Algo algos[] = {
      {"EWTCP", &cc::ewtcp()},
      {"SEMICOUPLED", &cc::semicoupled()},
      {"MPTCP", &cc::mptcp_lia()},
      {"COUPLED", &cc::coupled()},
  };

  stats::Table table({"capacity C (pkt/s)", "EWTCP p_A/p_C",
                      "SEMICOUPLED p_A/p_C", "MPTCP p_A/p_C",
                      "COUPLED p_A/p_C"});
  std::array<double, 4> jain_at_100{};
  for (double cap : {100.0, 250.0, 500.0, 750.0, 1000.0}) {
    std::vector<double> row;
    for (std::size_t a = 0; a < 4; ++a) {
      const Result r =
          run(*algos[a].algo, cap, trace_kind,
              std::string(algos[a].name) + "_c" + stats::fmt_double(cap, 0));
      row.push_back(r.loss_ratio_ac);
      if (cap == 100.0) jain_at_100[a] = r.jain;
    }
    table.add_row(stats::fmt_double(cap, 0), row, 3);
  }
  table.print();

  std::printf("\nJain's fairness index over flow rates at C = 100 pkt/s:\n");
  stats::Table jt({"algorithm", "Jain index (paper)"});
  jt.add_row({"EWTCP", stats::fmt_double(jain_at_100[0], 3) + "  (0.92)"});
  jt.add_row({"SEMICOUPLED", stats::fmt_double(jain_at_100[1], 3) + "  (-)"});
  jt.add_row({"MPTCP", stats::fmt_double(jain_at_100[2], 3) + "  (0.986)"});
  jt.add_row({"COUPLED", stats::fmt_double(jain_at_100[3], 3) + "  (0.99)"});
  jt.print();
  return 0;
}
