// Fixture: function-local static mutable state in a handler -> hot-static.
struct WakeCounter {
  void on_event() {
    static int calls = 0;
    ++calls;
  }
};
