// Discrete-event scheduler.
//
// The simulator is an event loop: components that need to act at a future
// simulated time derive from EventSource and schedule themselves on the
// EventList. Ties among equal timestamps are broken by a *canonical key*
// packed into the 64-bit seq:
//
//     key = (source order id << 32) | per-source schedule counter
//
// The order id is assigned at EventSource construction from the simulation's
// id counter, and the low half counts that source's own schedule_at calls —
// so the dispatch order of same-time events is a pure function of (a) the
// construction order of the topology and (b) each source's own behaviour,
// never of which EventList the source lives on. Two consequences the
// parallel-DES layer (core/shard.hpp) builds on:
//   * Sharding is exact: partitioning sources across several EventLists and
//     executing them under conservative lookahead windows dispatches every
//     event with the same key it would have had on one list, so a sharded
//     run is byte-identical to a sequential one.
//   * Batching is exact: all same-time events of one source occupy a
//     contiguous key range (no other source can interleave), so an element
//     may service several of its same-time completions inside one dispatch
//     without reordering anything (see net::Pipe's batched service mode).
//
// Two interchangeable backends implement the queue, plus a policy that
// switches between them at run time:
//   * kWheel — hierarchical timing wheel (core/timing_wheel.hpp), amortized
//     O(1) schedule/dispatch; wins when many events are pending.
//   * kHeap  — binary heap, O(log n) per operation; wins on sparse queues
//     (a handful of timers), and is cross-checked against the wheel (tests
//     assert both dispatch identical event orders).
//   * kAdaptive — starts on the heap and migrates pending events to a wheel
//     when live occupancy crosses a high-water mark, back when it falls
//     under a low-water mark (hysteresis plus an events-processed cooldown
//     so a workload hovering at the boundary cannot thrash). Migration
//     preserves every (time, seq) key, so dispatch order — and therefore
//     every trace byte — is identical to both pure backends; only wall
//     time and scheduler_switches() differ. The default.
// kAuto resolves from the MPSIM_SCHEDULER environment variable ("adaptive",
// "wheel" or "heap"), defaulting to adaptive.
//
// Cancellation is lazy on the hot path: a source that no longer wants a
// pending wake-up simply ignores the callback (sources track their own next
// valid deadline). This keeps the queue free of tombstone bookkeeping where
// it matters. For teardown — an EventSource about to be destroyed while
// wake-ups for it are still queued — cancel() eagerly removes every pending
// entry for the source; it is O(pending) and meant for cold paths only.
//
// An EventList is also the identity of one simulation instance: per-run
// services (the packet pool, see net::PacketPool; the flight recorder, see
// trace::TraceRecorder) attach to it instead of living in globals, so
// independent simulations can run concurrently on separate threads.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "core/check.hpp"
#include "core/time.hpp"
#include "core/timing_wheel.hpp"

namespace mpsim {

class EventList;

// Anything that can be woken by the scheduler. Construction assigns the
// source's canonical order id from `events`' simulation, so every source is
// born with a stable tie-break identity; the EventList passed here is the
// one the source must be scheduled on (checked at schedule time under
// shard builds only by the causality invariants, not structurally).
class EventSource {
 public:
  EventSource(EventList& events, std::string name);
  virtual ~EventSource() = default;

  EventSource(const EventSource&) = delete;
  EventSource& operator=(const EventSource&) = delete;

  // Called when a scheduled wake-up for this source fires.
  virtual void on_event() = 0;

  const std::string& name() const { return name_; }

  // Canonical tie-break id (1-based, construction order within the
  // simulation — shared across every shard of one ShardGroup).
  std::uint32_t order_id() const { return order_id_; }

 private:
  friend class EventList;
  std::string name_;
  std::uint32_t order_id_ = 0;
  std::uint32_t sched_seq_ = 0;  // this source's schedule_at count
};

enum class SchedulerKind {
  kAuto,      // resolve from MPSIM_SCHEDULER, default kAdaptive
  kHeap,      // binary heap (the original backend)
  kWheel,     // hierarchical timing wheel
  kAdaptive,  // heap <-> wheel, switched on live occupancy
};

// "auto", "heap", "wheel" or "adaptive" — the MPSIM_SCHEDULER spellings.
const char* to_string(SchedulerKind kind);

class EventList {
 public:
  explicit EventList(SchedulerKind kind = SchedulerKind::kAuto);

  EventList(const EventList&) = delete;
  EventList& operator=(const EventList&) = delete;

  // The scheduler this instance was configured with (kHeap, kWheel or
  // kAdaptive — never kAuto; that resolves at construction).
  SchedulerKind scheduler_kind() const { return mode_; }
  // The backend currently dispatching (kHeap or kWheel). Equal to
  // scheduler_kind() for the pure backends; flips over time under
  // kAdaptive.
  SchedulerKind active_backend() const {
    return wheel_ ? SchedulerKind::kWheel : SchedulerKind::kHeap;
  }
  // How many heap<->wheel migrations have happened (0 for pure backends).
  // Deterministic for a given run: it depends only on the schedule/dispatch
  // sequence, never on wall time or thread interleaving.
  std::uint64_t scheduler_switches() const { return switches_; }
  // Override the adaptive thresholds (test hook; also usable for tuning).
  // Pending >= `high` on the heap migrates to a wheel; pending <= `low` on
  // the wheel migrates back; at least `cooldown` dispatched events must
  // separate consecutive switches. Requires high > low.
  void set_adaptive_policy(std::size_t high, std::size_t low,
                           std::uint64_t cooldown);
  // What kAuto resolves to for new EventLists (reads MPSIM_SCHEDULER once).
  static SchedulerKind default_scheduler();

  SimTime now() const { return now_; }

  // Wake `src` at absolute time `t` (must be >= now()).
  void schedule_at(EventSource& src, SimTime t);

  // Wake `src` after `dt` nanoseconds.
  void schedule_in(EventSource& src, SimTime dt) {
    schedule_at(src, now_ + dt);
  }

  // Eagerly remove every pending wake-up for `src` and return how many were
  // dropped. O(pending events) on either backend — this is the teardown
  // path for sources whose lifetime ends before the simulation's (periodic
  // samplers, short-lived monitors), not a hot-path primitive.
  std::size_t cancel(const EventSource& src);

  bool empty() const { return wheel_ ? wheel_->empty() : heap_.empty(); }
  std::size_t pending() const {
    return wheel_ ? wheel_->size() : heap_.size();
  }
  std::uint64_t events_processed() const { return processed_; }

  // Dispatch the earliest pending event. Returns false if none remain.
  bool run_one();

  // Run events with timestamp <= `t`; afterwards now() == t (even if the
  // queue drained early), so periodic samplers see a consistent clock.
  void run_until(SimTime t);

  // Run until no events remain.
  void run_all();

  // Allocate the next flow id for a connection built on this simulation.
  // Per-simulation (not process-global) so ids — which appear in packets,
  // receiver demux tables and trace files — depend only on construction
  // order within the run, never on how parallel runner jobs interleave.
  // Under a ShardGroup the counter is shared by every shard (see
  // share_id_counters), so ids are also independent of the shard count.
  std::uint32_t alloc_flow_id() { return (*flow_counter_)++; }

  // Allocate a canonical source order id (EventSource construction).
  std::uint32_t alloc_order_id() {
    MPSIM_CHECK(*order_counter_ != 0xFFFFFFFFu,
                "canonical order-id space exhausted");
    return (*order_counter_)++;
  }

  // Redirect order-id and flow-id allocation to counters owned elsewhere —
  // core::ShardGroup points every shard of one simulation at a single
  // counter pair so construction yields identical ids whatever the shard
  // count. Must be called before any source/connection is built, and the
  // counters must only ever be touched from one thread at a time (all
  // construction in this codebase is single-threaded).
  void share_id_counters(std::uint32_t* order, std::uint32_t* flow) {
    order_counter_ = order;
    flow_counter_ = flow;
  }

  // Earliest pending event time, or kNever when the queue is empty. Used by
  // the shard barrier to derive the next safe execution window.
  SimTime next_event_time() const {
    if (wheel_) return wheel_->empty() ? kNever : wheel_->next_time();
    return heap_.empty() ? kNever : heap_.top().time;
  }

  // Causality horizon: dispatching any event later than this trips an
  // MPSIM_CHECK. The conservative parallel-DES window loop tightens it to
  // each window's upper bound so a shard running past its lookahead is an
  // invariant violation, not a silent reorder. kNever = unrestricted.
  void set_horizon(SimTime h) { horizon_ = h; }
  SimTime horizon() const { return horizon_; }

  // Canonical key of the event currently being dispatched (0 outside a
  // dispatch). The trace recorder stamps this into records so traces from
  // several shards merge into exactly the sequential emission order.
  std::uint64_t current_dispatch_key() const { return dispatch_key_; }

  // --- per-simulation services ------------------------------------------
  // A service is owned by the EventList and lives exactly as long as the
  // simulation instance. Each service type owns one fixed slot; the slot
  // constants live here so every simulation agrees on the layout (the
  // alternative — a run-time type registry — would make slot assignment
  // depend on attach order and cost a lookup on hot paths).
  //   kPacketPoolSlot     net::PacketPool, attached lazily on first alloc.
  //   kTraceRecorderSlot  trace::TraceRecorder, attached explicitly by
  //                       TraceRecorder::install() before the topology is
  //                       built (instrumented objects capture the pointer
  //                       at construction).
  //   kArenaSlot          SimArena (core/arena.hpp), attached lazily by the
  //                       first Subflow/Queue built on this simulation; the
  //                       SoA home of per-subflow and per-queue hot state.
  class Service {
   public:
    virtual ~Service() = default;
  };
  static constexpr std::size_t kPacketPoolSlot = 0;
  static constexpr std::size_t kTraceRecorderSlot = 1;
  static constexpr std::size_t kArenaSlot = 2;
  static constexpr std::size_t kServiceSlots = 3;

  Service* service(std::size_t slot) const { return services_[slot].get(); }
  Service& attach_service(std::size_t slot, std::unique_ptr<Service> s);

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;  // canonical (order id << 32 | per-source seq) key
    EventSource* src;
    bool operator>(const Entry& o) const {
      if (time != o.time) return time > o.time;
      return seq > o.seq;
    }
  };

  // True when kAdaptive may migrate right now: outside the cooldown window
  // (or before the first switch ever).
  bool switch_allowed() const {
    return switches_ == 0 || processed_ - last_switch_processed_ >= cooldown_;
  }
  void switch_to_wheel();  // heap -> wheel, preserving (time, seq) keys
  void switch_to_heap();   // wheel -> heap, preserving (time, seq) keys
  // Post-dispatch hook: under kAdaptive, fall back to the heap once the
  // wheel has drained to the low-water mark.
  void after_dispatch() {
    if (mode_ == SchedulerKind::kAdaptive && wheel_ &&
        wheel_->size() <= low_water_ && switch_allowed()) {
      switch_to_heap();
    }
  }

  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::unique_ptr<TimingWheel> wheel_;  // non-null iff the wheel is active
  std::array<std::unique_ptr<Service>, kServiceSlots> services_;
  SimTime now_ = 0;
  SimTime horizon_ = kNever;
  std::uint64_t dispatch_key_ = 0;
  std::uint64_t processed_ = 0;
  std::uint32_t own_order_counter_ = 1;  // 0 is reserved ("no source")
  std::uint32_t own_flow_counter_ = 1;
  std::uint32_t* order_counter_ = &own_order_counter_;
  std::uint32_t* flow_counter_ = &own_flow_counter_;
  SchedulerKind mode_ = SchedulerKind::kHeap;  // resolved, never kAuto
  // Adaptive policy. The defaults bracket the measured heap/wheel crossover
  // (BENCH_micro_core: the wheel wins from a few thousand pending events
  // up, the heap below a few hundred) with a wide hysteresis band; the
  // cooldown bounds migration frequency to once per 8k dispatches even if
  // occupancy oscillates across both marks.
  std::size_t high_water_ = 2048;
  std::size_t low_water_ = 256;
  std::uint64_t cooldown_ = 8192;
  std::uint64_t switches_ = 0;
  std::uint64_t last_switch_processed_ = 0;
};

// Inline: one call per scheduled event — for simulations pushing tens of
// millions of events the extra call layer is measurable in the profile.
inline void EventList::schedule_at(EventSource& src, SimTime t) {
  MPSIM_CHECK(t >= now_, "cannot schedule in the past (clock rollback)");
  if (t < now_) t = now_;  // degrade gracefully when checks are off
  MPSIM_CHECK(src.sched_seq_ != 0xFFFFFFFFu,
              "per-source schedule counter exhausted");
  const std::uint64_t key =
      (static_cast<std::uint64_t>(src.order_id_) << 32) | src.sched_seq_++;
  if (wheel_) {
    wheel_->schedule(t, key, &src);
  } else {
    heap_.push(Entry{t, key, &src});
    if (mode_ == SchedulerKind::kAdaptive && heap_.size() >= high_water_ &&
        switch_allowed()) {
      switch_to_wheel();
    }
  }
}

inline EventSource::EventSource(EventList& events, std::string name)
    : name_(std::move(name)), order_id_(events.alloc_order_id()) {}

}  // namespace mpsim
