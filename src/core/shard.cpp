#include "core/shard.hpp"

#include <thread>

#include "core/check.hpp"
#include "core/env.hpp"

namespace mpsim {

ShardGroup::Exec ShardGroup::default_exec() {
  static const Exec exec =
      env::env_choice("MPSIM_SHARD_EXEC", "threads", {"threads", "inline"}) ==
              "inline"
          ? Exec::kInline
          : Exec::kThreads;
  return exec;
}

ShardGroup::ShardGroup(int shards, SchedulerKind kind)
    : exec_(default_exec()) {
  MPSIM_CHECK(shards >= 1, "a shard group needs at least one shard");
  shards_.reserve(static_cast<std::size_t>(shards));
  drains_.resize(static_cast<std::size_t>(shards));
  for (int i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<EventList>(kind));
    shards_.back()->share_id_counters(&order_counter_, &flow_counter_);
  }
  barrier_ = std::make_unique<Barrier>(shards);
}

void ShardGroup::note_lookahead(SimTime link_delay) {
  MPSIM_CHECK(link_delay > 0,
              "cross-shard links need positive propagation delay");
  if (link_delay < lookahead_) lookahead_ = link_delay;
}

void ShardGroup::register_drain(int dest, std::function<void()> fn) {
  drains_[static_cast<std::size_t>(dest)].push_back(std::move(fn));
}

void ShardGroup::set_phase_hooks(std::function<void()> begin,
                                 std::function<void()> end) {
  begin_hook_ = std::move(begin);
  end_hook_ = std::move(end);
}

std::uint64_t ShardGroup::events_processed() const {
  std::uint64_t total = 0;
  for (const auto& s : shards_) total += s->events_processed();
  return total;
}

void ShardGroup::compute_window(SimTime t) {
  SimTime m = kNever;
  for (const auto& s : shards_) {
    const SimTime next = s->next_event_time();
    if (next < m) m = next;
  }
  if (m == kNever || m > t) {
    // Nothing pending inside this run: one final window just advances
    // every shard clock to t.
    window_ = t;
    final_ = true;
    return;
  }
  // The window is final when m + lookahead_ > t, written overflow-safely
  // (t - m >= 0 here; lookahead_ may be kNever when no cross-shard edge
  // exists, in which case every run is a single window — the sequential
  // degenerate case).
  final_ = lookahead_ > t - m;
  window_ = final_ ? t : m + lookahead_ - 1;
}

void ShardGroup::step_window(SimTime t) {
  if (final_) {
    // All events <= t have executed, and anything the final window shipped
    // cross-shard delivers at >= m + lookahead_ > t, so the post-window
    // drains only scheduled future work. The run is complete.
    done_ = true;
  } else {
    compute_window(t);
  }
}

void ShardGroup::worker(int i, SimTime t) {
  EventList& el = *shards_[static_cast<std::size_t>(i)];
  auto& drains = drains_[static_cast<std::size_t>(i)];
  for (;;) {
    // Execute phase: this thread exclusively owns shard i's EventList and
    // every element placed on it; cross-shard packets go out by appending
    // to foreign mailboxes nobody reads until the next drain phase.
    el.set_horizon(window_);
    el.run_until(window_);
    barrier_->arrive_and_wait([] {});
    // Drain phase: ingest what other shards shipped during the window.
    // Every producer is parked at the barrier above, so plain vectors are
    // race-free; drains only schedule into shard i's own EventList.
    for (auto& fn : drains) fn();
    barrier_->arrive_and_wait([this, t] { step_window(t); });
    if (done_) break;
  }
}

void ShardGroup::run_windows_threads(SimTime t) {
  std::vector<std::thread> workers;
  workers.reserve(shards_.size() - 1);
  for (int i = 1; i < size(); ++i) {
    workers.emplace_back(&ShardGroup::worker, this, i, t);
  }
  worker(0, t);
  for (auto& w : workers) w.join();
}

void ShardGroup::run_windows_inline(SimTime t) {
  // The identical window algorithm, round-robin on one thread. Equivalent
  // to the threaded form: within a window, shards only append to foreign
  // mailboxes, which are not read until every shard's window has run.
  while (!done_) {
    for (const auto& s : shards_) {
      s->set_horizon(window_);
      s->run_until(window_);
    }
    for (auto& per_shard : drains_) {
      for (auto& fn : per_shard) fn();
    }
    step_window(t);
  }
}

void ShardGroup::run_until(SimTime t) {
  if (!multi()) {
    shards_[0]->run_until(t);
    return;
  }
  if (begin_hook_) begin_hook_();
  done_ = false;
  compute_window(t);
  if (exec_ == Exec::kThreads) {
    run_windows_threads(t);
  } else {
    run_windows_inline(t);
  }
  // Lift the causality horizons so single-threaded phases between runs
  // (stats resets, construction of samplers) may schedule and run freely.
  for (const auto& s : shards_) s->set_horizon(kNever);
  if (end_hook_) end_hook_();
}

}  // namespace mpsim
