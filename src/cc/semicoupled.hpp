// SEMICOUPLED (§2.4): couples the increases but halves only the local
// window on loss, so traffic is biased toward less-congested paths while
// every path keeps a usable probe window:
//
//   per ACK on path r:  w_r += a / w_total
//   per loss on path r: w_r /= 2
//
// Equilibrium (paper): w_r ~ sqrt(2a) * (1/p_r) / sqrt(sum_s 1/p_s) — e.g.
// paths at 1%/1%/5% loss carry 45%/45%/10% of the window, between EWTCP's
// even 33% split and COUPLED's 0% on the lossy path. The constant `a` sets
// aggressiveness; MPTCP (§2.5) is SEMICOUPLED with `a` chosen adaptively
// for RTT-compensated fairness.
#pragma once

#include "cc/congestion_control.hpp"

namespace mpsim::cc {

class SemiCoupled : public CongestionControl {
 public:
  explicit SemiCoupled(double a = 1.0) : a_(a) {}

  double increase_per_ack(const ConnectionView& c, std::size_t r) const override;
  double window_after_loss(const ConnectionView& c, std::size_t r) const override;
  std::string name() const override { return "SEMICOUPLED"; }

  double a() const { return a_; }

 private:
  double a_;
};

const SemiCoupled& semicoupled();

}  // namespace mpsim::cc
