// Dynamic workload for §3's second server experiment: Poisson flow
// arrivals with Pareto-distributed sizes (mean 200 kB in the paper), and an
// arrival rate that alternates between a light and a heavy phase.
//
// Each arrival creates a finite connection via a caller-supplied factory
// (so the generator is topology-agnostic — single-path TCP or multipath
// with a PathManager, the factory decides); flow completion times are
// recorded. Completed flows are reclaimed (destroyed, their pool/arena
// state returned) once the wire-reference ledger shows no packet in
// flight references them — deferred teardown, so memory is bounded by the
// *live* flow count at churn scale rather than the all-time total.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/event_list.hpp"
#include "core/rng.hpp"
#include "mptcp/connection.hpp"

namespace mpsim::traffic {

struct PoissonConfig {
  double light_rate_per_sec = 10.0;
  double heavy_rate_per_sec = 60.0;
  SimTime phase_duration = from_sec(10);  // alternate light/heavy
  double pareto_shape = 2.0;              // alpha > 1 (finite mean)
  double mean_flow_bytes = 200e3;         // paper: 200 kB
  std::uint64_t seed = 1;
};

// A flow size in bytes -> whole packets, clamped to >= 1: a Pareto draw
// can be smaller than one MSS (degenerate configs — shape near 1 or a tiny
// mean — push xm toward 0), and an unclamped 0 would build a connection
// with app_limit_pkts == 0, which means *unlimited*: it never sends its
// (empty) transfer to completion and active_flows() never drains. A free
// function so the regression test can probe the boundary directly.
inline std::uint64_t size_to_pkts(double bytes) {
  const auto pkts =
      static_cast<std::uint64_t>(std::ceil(bytes / net::kDataPacketBytes));
  return std::max<std::uint64_t>(1, pkts);
}

class PoissonFlowGenerator : public EventSource {
 public:
  // `factory(name, size_pkts)` builds a started connection carrying
  // `size_pkts` packets of application data.
  using Factory = std::function<std::unique_ptr<mptcp::MptcpConnection>(
      const std::string&, std::uint64_t)>;

  PoissonFlowGenerator(EventList& events, std::string name,
                       const PoissonConfig& cfg, Factory factory);

  void start(SimTime at);
  void on_event() override;

  // Destroy every completed flow whose wire-reference ledger reads zero
  // (MptcpConnection::reclaimable()): no packet anywhere in the network
  // still points at its sinks, so teardown cannot leave a dangling
  // reference. Runs automatically at each arrival; public so tests and
  // end-of-run sweeps can force a final pass. Returns flows destroyed.
  std::size_t reclaim_completed();

  // Called on each flow just before reclamation destroys it, so owners can
  // harvest per-flow state (e.g. PathManager counters) that dies with it.
  std::function<void(mptcp::MptcpConnection&)> on_reclaim;

  std::uint64_t flows_started() const { return flows_started_; }
  std::uint64_t flows_completed() const { return flows_completed_; }
  std::uint64_t flows_reclaimed() const { return flows_reclaimed_; }
  const std::vector<SimTime>& completion_times() const { return fct_; }
  std::uint64_t active_flows() const {
    return flows_started_ - flows_completed_;
  }
  // Connections currently owned (live + completed-but-not-yet-reclaimable).
  std::size_t flows_held() const { return flows_.size(); }
  const std::vector<std::unique_ptr<mptcp::MptcpConnection>>& held() const {
    return flows_;
  }

 private:
  std::uint64_t draw_size_pkts();

  EventList& events_;
  PoissonConfig cfg_;
  Factory factory_;
  Rng rng_;
  SimTime started_at_ = 0;
  std::uint64_t flows_started_ = 0;
  std::uint64_t flows_completed_ = 0;
  std::uint64_t flows_reclaimed_ = 0;
  std::vector<SimTime> fct_;
  std::vector<std::unique_ptr<mptcp::MptcpConnection>> flows_;
};

}  // namespace mpsim::traffic
