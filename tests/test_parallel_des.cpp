// Determinism oracle for the conservative parallel DES (core/shard.hpp):
// a sharded run must be *byte-identical* to the sequential run — same
// recorded metrics (bitwise doubles), same merged trace bytes, same event
// count — at every shard count, under every scheduler backend, in both
// execution modes (worker threads and the inline round-robin), and with
// either pipe service discipline. Each test drives the full scenario
// engine + runner + trace-merge path, so a regression anywhere in the
// window protocol, mailbox handoff, canonical keys, or trace merging
// lands here with a diffable artifact.
//
// Trace rings are pinned large enough that no ring wraps: flight-recorder
// retention is per-ring, so once any ring overwrites, sharded and
// sequential runs keep different windows of the (identical) record stream
// and byte comparison is meaningless. The oracle always compares unwrapped
// rings (see trace/trace.hpp).
#include "core/shard.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "cc/mptcp_lia.hpp"
#include "core/rng.hpp"
#include "mptcp/connection.hpp"
#include "runner/experiment_runner.hpp"
#include "scenario/engine.hpp"
#include "topo/fat_tree.hpp"
#include "topo/network.hpp"
#include "trace/sinks.hpp"

namespace mpsim {
namespace {

// A Fig. 8-style two-link MPTCP run (tests/golden/fig8_golden.toml minus
// its [faults] section — fault injection is rejected with > 1 shard, and
// the gate has its own test below). two_link places everything on shard 0,
// so multi-shard runs of it exercise the degenerate window path: idle
// shards, no cross edges, lookahead = never.
constexpr const char* kTwoLinkSpec = R"(
[scenario]
name = "pdes_two_link"

[topology]
kind = "two_link"
link1_rate = "1Mbps"
link1_delay = "20ms"
link2_rate = "1Mbps"
link2_delay = "20ms"

[algorithm]
kind = "mptcp"

[traffic]
kind = "persistent"
count = 1
subflows = 2

[run]
warmup = "0.5s"
measure = "2s"

[output]
metrics = ["flow_mbps", "total_mbps"]
sample_interval = "0.5s"
)";

// The real cross-shard case: FatTree pods/cores partitioned across shards,
// every aggregation<->core link a mailbox edge, permutation traffic over
// sampled multipath routes.
std::string fat_tree_spec(std::uint64_t tm_seed, int subflows) {
  std::ostringstream os;
  os << R"(
[scenario]
name = "pdes_fattree"

[topology]
kind = "fat_tree"
k = 4

[algorithm]
kind = "mptcp"

[traffic]
kind = "permutation"
tm_seed = )"
     << tm_seed << "\nsubflows = " << subflows << R"(

[run]
warmup = "20ms"
measure = "60ms"

[output]
metrics = ["total_mbps", "jain", "per_flow_mean_mbps"]
sample_interval = "20ms"
)";
  return os.str();
}

struct ShardRun {
  std::vector<std::pair<std::string, double>> values;
  std::string trace;  // merged CSV bytes
  std::uint64_t events = 0;
};

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing trace file " << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

// Execute the single run of `text` through the engine on `shards` shards
// and return its metrics + merged trace bytes. `tag` keeps scratch trace
// dirs distinct between invocations (file names depend only on the run
// name, which is shard-count-invariant by design).
ShardRun run_spec(const std::string& text, const std::string& tag,
                  int shards, SchedulerKind kind,
                  ShardGroup::Exec exec = ShardGroup::default_exec()) {
  namespace fs = std::filesystem;
  const scenario::Scenario scn =
      scenario::Scenario::from_string(text, tag + ".toml");
  const auto runs = scn.expand();
  EXPECT_EQ(runs.size(), 1u);

  const fs::path dir = fs::path(::testing::TempDir()) / ("pdes_" + tag);
  fs::create_directories(dir);

  runner::RunnerConfig cfg;
  cfg.threads = 1;
  cfg.scheduler = kind;
  cfg.shard_threads = shards;
  cfg.trace_sink = trace::SinkKind::kCsv;
  cfg.trace_dir = dir.string();
  cfg.trace_capacity = std::size_t{1} << 20;  // never wraps at these sizes
  runner::ExperimentRunner r(cfg);
  const scenario::ResolvedRun& resolved = runs[0];
  r.add(resolved.name, [&resolved, exec](runner::RunContext& ctx) {
    ctx.shards().set_exec_for_test(exec);
    scenario::execute_run(resolved, /*time_scale=*/1.0, ctx);
  });
  const auto results = r.run_all();
  EXPECT_EQ(results.size(), 1u);
  EXPECT_FALSE(results[0].trace_path.empty());
  return {results[0].values, slurp(results[0].trace_path),
          results[0].metrics.events_processed};
}

void expect_same(const ShardRun& ref, const ShardRun& got,
                 const std::string& what) {
  EXPECT_EQ(ref.events, got.events) << what;
  ASSERT_EQ(ref.values.size(), got.values.size()) << what;
  for (std::size_t i = 0; i < ref.values.size(); ++i) {
    EXPECT_EQ(ref.values[i].first, got.values[i].first) << what;
    EXPECT_EQ(ref.values[i].second, got.values[i].second)
        << what << ": " << ref.values[i].first;
  }
  EXPECT_EQ(ref.trace, got.trace) << what << ": merged trace bytes differ";
}

TEST(ParallelDes, TwoLinkGoldenScenarioIdenticalAcrossShardsAndBackends) {
  const ShardRun ref = run_spec(kTwoLinkSpec, "tl_ref", 1,
                                SchedulerKind::kWheel);
  ASSERT_FALSE(ref.trace.empty());
  for (int shards : {1, 2, 4}) {
    for (auto kind : {SchedulerKind::kWheel, SchedulerKind::kHeap,
                      SchedulerKind::kAdaptive}) {
      const std::string tag = "tl_s" + std::to_string(shards) + "_k" +
                              std::to_string(static_cast<int>(kind));
      expect_same(ref, run_spec(kTwoLinkSpec, tag, shards, kind), tag);
    }
  }
}

TEST(ParallelDes, FatTreeCrossShardByteIdenticalAcrossShardCounts) {
  const std::string spec = fat_tree_spec(/*tm_seed=*/11, /*subflows=*/2);
  const ShardRun ref = run_spec(spec, "ft_ref", 1, SchedulerKind::kWheel);
  ASSERT_FALSE(ref.trace.empty());
  // 3 shards gives an uneven pod/core partition (4 pods, 4 cores over 3
  // shards) — the window protocol must not care.
  for (int shards : {2, 3, 4}) {
    const std::string tag = "ft_s" + std::to_string(shards);
    expect_same(ref, run_spec(spec, tag, shards, SchedulerKind::kWheel), tag);
  }
  expect_same(ref, run_spec(spec, "ft_s2_heap", 2, SchedulerKind::kHeap),
              "ft_s2_heap");
  expect_same(ref,
              run_spec(spec, "ft_s4_adaptive", 4, SchedulerKind::kAdaptive),
              "ft_s4_adaptive");
}

TEST(ParallelDes, InlineExecutionMatchesWorkerThreads) {
  // The inline round-robin runs the identical window algorithm on one
  // stack; worker threads must be unobservable relative to it.
  const std::string spec = fat_tree_spec(/*tm_seed=*/23, /*subflows=*/3);
  const ShardRun threads = run_spec(spec, "ex_threads", 4,
                                    SchedulerKind::kWheel,
                                    ShardGroup::Exec::kThreads);
  const ShardRun inline_ = run_spec(spec, "ex_inline", 4,
                                    SchedulerKind::kWheel,
                                    ShardGroup::Exec::kInline);
  expect_same(threads, inline_, "inline vs threads");
}

TEST(ParallelDes, RandomizedFatTreeTrafficIsShardCountInvariant) {
  // Property test: whatever permutation matrix and multipath degree the
  // seed produces, shard count must be unobservable.
  Rng rng(20260808);
  for (int iter = 0; iter < 3; ++iter) {
    const std::uint64_t tm_seed = 1 + rng.next_u64() % 1'000'000;
    const int subflows = 1 + static_cast<int>(rng.next_u64() % 4);
    const std::string spec = fat_tree_spec(tm_seed, subflows);
    const std::string base =
        "prop" + std::to_string(iter) + "_t" + std::to_string(tm_seed);
    const ShardRun ref = run_spec(spec, base + "_s1", 1,
                                  SchedulerKind::kWheel);
    for (int shards : {2, 3}) {
      const std::string tag = base + "_s" + std::to_string(shards);
      expect_same(ref, run_spec(spec, tag, shards, SchedulerKind::kWheel),
                  tag);
    }
  }
}

// --- engine gates: what sharding deliberately refuses -------------------

TEST(ParallelDes, FaultInjectionRejectedWhenSharded) {
  const std::string spec = std::string(kTwoLinkSpec) +
                           "\n[faults]\nscript = [\"1s down link2/q\"]\n";
  const scenario::Scenario scn =
      scenario::Scenario::from_string(spec, "gate_faults.toml");
  const auto runs = scn.expand();
  ASSERT_EQ(runs.size(), 1u);
  {
    runner::RunContext ctx("gate", SchedulerKind::kAuto, /*shard_threads=*/2);
    EXPECT_THROW(
        scenario::execute_run(runs[0], 1.0, ctx, /*dry_run=*/true),
        scenario::SpecError);
  }
  {
    // The same spec stays valid sequentially.
    runner::RunContext ctx("gate1", SchedulerKind::kAuto);
    EXPECT_NO_THROW(
        scenario::execute_run(runs[0], 1.0, ctx, /*dry_run=*/true));
  }
}

TEST(ParallelDes, DynamicTrafficRejectedWhenSharded) {
  // Churn/Poisson traffic constructs connections mid-run, which the
  // conservative windows do not order across shards; the engine must say
  // so up front rather than corrupt determinism.
  for (const char* kind : {"churn", "poisson"}) {
    const std::string spec = R"(
[scenario]
name = "gate_dyn"

[topology]
kind = "two_link"

[algorithm]
kind = "mptcp"

[traffic]
kind = ")" + std::string(kind) +
                             R"("

[run]
warmup = "100ms"
measure = "200ms"
)";
    const scenario::Scenario scn =
        scenario::Scenario::from_string(spec, "gate_dyn.toml");
    const auto runs = scn.expand();
    ASSERT_EQ(runs.size(), 1u);
    runner::RunContext ctx("gate", SchedulerKind::kAuto, /*shard_threads=*/2);
    EXPECT_THROW(
        scenario::execute_run(runs[0], 1.0, ctx, /*dry_run=*/true),
        scenario::SpecError)
        << kind;
  }
}

// --- pipe service disciplines -------------------------------------------

struct DirectStats {
  std::uint64_t delivered0;
  std::uint64_t delivered1;
  std::uint64_t events;

  bool operator==(const DirectStats&) const = default;
};

// A sharded FatTree simulation built directly against the C++ API (the
// same construction the scenario builders perform), with every pipe forced
// onto one service discipline.
DirectStats run_fattree_direct(int shards, bool batched,
                               ShardGroup::Exec exec) {
  runner::RunContext ctx("direct", SchedulerKind::kWheel, shards);
  ctx.shards().set_exec_for_test(exec);
  topo::Network net(ctx.events(), &ctx.shards());
  topo::FatTree ft(net, 4);
  Rng rng(77);
  std::vector<std::unique_ptr<mptcp::MptcpConnection>> conns;
  // Two cross-pod connections with two sampled paths each.
  for (const auto& [src, dst] : {std::pair{0, 13}, std::pair{5, 10}}) {
    auto pairs = topo::sample_path_pairs(ft, src, dst, 2, rng);
    auto conn = std::make_unique<mptcp::MptcpConnection>(
        ft.host_events(src), "mp" + std::to_string(src), cc::mptcp_lia());
    for (auto& pr : pairs) {
      conn->add_subflow(std::move(pr.first), std::move(pr.second));
    }
    conn->start(0);
    conns.push_back(std::move(conn));
  }
  // All per-path elements exist now; flip every pipe in one sweep.
  net.set_pipes_batched(batched);
  ctx.run_until(from_ms(60));
  return {conns[0]->delivered_pkts(), conns[1]->delivered_pkts(),
          ctx.shards().events_processed()};
}

TEST(ParallelDes, BatchedAndLegacyPipeServiceBitIdentical) {
  // Head-armed batching changes how many scheduler entries exist, never
  // what the simulation computes — across shard counts too, where batched
  // wakes interleave with mailbox drains.
  const DirectStats ref =
      run_fattree_direct(1, /*batched=*/true, ShardGroup::Exec::kInline);
  EXPECT_GT(ref.delivered0, 0u);
  EXPECT_GT(ref.delivered1, 0u);
  for (int shards : {1, 2, 4}) {
    const DirectStats on =
        run_fattree_direct(shards, true, ShardGroup::Exec::kInline);
    const DirectStats off =
        run_fattree_direct(shards, false, ShardGroup::Exec::kInline);
    EXPECT_EQ(ref, on) << shards << " shards, batched";
    EXPECT_EQ(ref, off) << shards << " shards, legacy";
  }
}

// Micro property: a batch delivery never reorders same-time ties. Packets
// entering one pipe in some order at the same instant leave in that order,
// under both disciplines, interleaved identically with a second pipe's
// same-time deliveries (canonical keys order by construction id).
class OrderSink final : public net::PacketSink {
 public:
  OrderSink(std::string name, std::vector<std::pair<SimTime, std::uint64_t>>& log,
            EventList& events)
      : name_(std::move(name)), log_(&log), events_(&events) {}

  void receive(net::Packet& pkt) override {
    log_->emplace_back(events_->now(), pkt.subflow_seq);
    pkt.release();
  }
  const std::string& sink_name() const override { return name_; }

 private:
  std::string name_;
  std::vector<std::pair<SimTime, std::uint64_t>>* log_;
  EventList* events_;
};

TEST(ParallelDes, BatchBoundariesPreserveSameTimeTieOrder) {
  auto run = [](bool batched) {
    EventList events(SchedulerKind::kHeap);
    net::Pipe p1(events, "p1", from_us(50));
    net::Pipe p2(events, "p2", from_us(50));
    p1.set_batched(batched);
    p2.set_batched(batched);
    std::vector<std::pair<SimTime, std::uint64_t>> log;
    OrderSink s1("s1", log, events);
    OrderSink s2("s2", log, events);
    net::Route r1({&p1, &s1});
    net::Route r2({&p2, &s2});
    // Interleave 16 same-time sends across the two pipes: all 16 arrive
    // at exactly t=50us, so dispatch order is decided purely by the
    // canonical (order id, seq) keys.
    for (std::uint64_t i = 0; i < 16; ++i) {
      net::Packet& pkt = net::Packet::alloc(events);
      pkt.subflow_seq = i;
      pkt.send_on(i % 2 == 0 ? r1 : r2);
    }
    events.run_all();
    return log;
  };
  const auto on = run(true);
  const auto off = run(false);
  ASSERT_EQ(on.size(), 16u);
  ASSERT_EQ(on, off) << "service discipline changed a same-time tie order";
  // All of pipe 1's packets (even seqs) drain before pipe 2's (odd seqs):
  // p1 was constructed first, so its canonical keys sort lower; within a
  // pipe, FIFO by seq.
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(on[i].second, 2 * i) << "pipe 1 tie order broken at " << i;
    EXPECT_EQ(on[8 + i].second, 2 * i + 1)
        << "pipe 2 tie order broken at " << i;
  }
}

}  // namespace
}  // namespace mpsim
