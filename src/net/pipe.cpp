#include "net/pipe.hpp"

#include <cassert>

namespace mpsim::net {

Pipe::Pipe(EventList& events, std::string name, SimTime delay)
    : EventSource(std::move(name)), events_(events), delay_(delay) {
  assert(delay_ >= 0);
}

void Pipe::receive(Packet& pkt) {
  const SimTime deliver_at = events_.now() + delay_;
  in_flight_.emplace_back(deliver_at, &pkt);
  events_.schedule_at(*this, deliver_at);
}

void Pipe::on_event() {
  // One wake-up was scheduled per packet, so exactly the due head is
  // delivered here; arrivals are FIFO because delay is constant.
  assert(!in_flight_.empty());
  auto [due, pkt] = in_flight_.front();
  assert(due == events_.now());
  in_flight_.pop_front();
  pkt->advance();
}

}  // namespace mpsim::net
