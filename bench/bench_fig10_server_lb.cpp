// Fig. 10 / §3 — multihomed-server load balancing (testbed reproduction).
//
// A dual-homed server with two 100 Mb/s links, 10 ms of added latency
// (dummynet in the paper). 5 long-lived TCP clients on link 1 and 15 on
// link 2 create a 5-vs-15 congestion imbalance. One minute in, 10
// multipath flows (able to use both links) start; perfect balancing would
// shift them entirely onto link 1 so every flow converges toward
// 200/30 = 6.7 Mb/s. We print the timeline of mean per-group goodput and
// the final per-link share of the multipath flows.
#include <memory>
#include <vector>

#include "cc/coupled.hpp"
#include "cc/ewtcp.hpp"
#include "cc/mptcp_lia.hpp"
#include "harness.hpp"
#include "topo/two_link.hpp"

namespace mpsim {
namespace {

void run(const char* name, const cc::CongestionControl& algo) {
  EventList events;
  topo::Network net(events);
  topo::LinkSpec spec;
  spec.rate_bps = 100e6;
  spec.one_way_delay = from_ms(5);
  spec.buf_bytes = topo::bdp_bytes(100e6, from_ms(10));
  topo::TwoLink links(net, spec, spec);

  std::vector<std::unique_ptr<mptcp::MptcpConnection>> tcp1, tcp2, mp;
  for (int i = 0; i < 5; ++i) {
    tcp1.push_back(mptcp::make_single_path_tcp(
        events, "tcp1-" + std::to_string(i), links.fwd(0), links.rev(0)));
    tcp1.back()->start(from_ms(41 * i));
  }
  for (int i = 0; i < 15; ++i) {
    tcp2.push_back(mptcp::make_single_path_tcp(
        events, "tcp2-" + std::to_string(i), links.fwd(1), links.rev(1)));
    tcp2.back()->start(from_ms(29 * i));
  }
  const SimTime mp_start = bench::scaled(60);
  for (int i = 0; i < 10; ++i) {
    auto conn = std::make_unique<mptcp::MptcpConnection>(
        events, "mp" + std::to_string(i), algo);
    conn->add_subflow(links.fwd(0), links.rev(0));
    conn->add_subflow(links.fwd(1), links.rev(1));
    conn->start(mp_start + from_ms(37 * i));
    mp.push_back(std::move(conn));
  }

  std::printf("--- %s ---\n", name);
  stats::Table table({"t (s)", "mean TCP link1", "mean TCP link2",
                      "mean MPTCP total", "MPTCP share on link1 %"});

  auto mean_goodput = [&](auto& flows, std::vector<std::uint64_t>& base,
                          SimTime dt) {
    double total = 0.0;
    for (std::size_t i = 0; i < flows.size(); ++i) {
      total += stats::pkts_to_mbps(flows[i]->delivered_pkts() - base[i], dt);
    }
    return total / static_cast<double>(flows.size());
  };

  std::vector<std::uint64_t> b1, b2, bm;
  std::vector<std::uint64_t> sf0, sf1;
  const SimTime step = bench::scaled(20);
  for (SimTime t = step; t <= bench::scaled(160); t += step) {
    b1.clear();
    for (auto& f : tcp1) b1.push_back(f->delivered_pkts());
    b2.clear();
    for (auto& f : tcp2) b2.push_back(f->delivered_pkts());
    bm.clear();
    for (auto& f : mp) bm.push_back(f->delivered_pkts());
    sf0.clear();
    sf1.clear();
    for (auto& f : mp) {
      sf0.push_back(f->subflow(0).packets_acked());
      sf1.push_back(f->subflow(1).packets_acked());
    }
    events.run_until(t);
    std::uint64_t d0 = 0, d1 = 0;
    for (std::size_t i = 0; i < mp.size(); ++i) {
      d0 += mp[i]->subflow(0).packets_acked() - sf0[i];
      d1 += mp[i]->subflow(1).packets_acked() - sf1[i];
    }
    const double share =
        (d0 + d1) > 0 ? 100.0 * static_cast<double>(d0) /
                            static_cast<double>(d0 + d1)
                      : 0.0;
    table.add_row(stats::fmt_double(to_sec(t), 0),
                  {mean_goodput(tcp1, b1, step), mean_goodput(tcp2, b2, step),
                   mean_goodput(mp, bm, step), share},
                  1);
  }
  table.print();
  std::printf("\n");
}

}  // namespace
}  // namespace mpsim

int main() {
  using namespace mpsim;
  bench::banner(
      "Fig. 10 / §3: dual-homed server, 5 vs 15 clients, +10 multipath",
      "multipath flows (1/3 of flows) shift onto the lighter link 1, "
      "pulling all rates toward the fair 6.7 Mb/s");
  run("MPTCP", cc::mptcp_lia());
  run("COUPLED (paper: similar)", cc::coupled());
  run("EWTCP (paper: slightly worse)", cc::ewtcp());
  return 0;
}
