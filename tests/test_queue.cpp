#include "net/queue.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/event_list.hpp"
#include "net/cbr.hpp"
#include "net/packet.hpp"

namespace mpsim::net {
namespace {

Packet& make_data(EventList& events) {
  Packet& p = Packet::alloc(events);
  p.type = PacketType::kCbr;
  p.size_bytes = kDataPacketBytes;
  return p;
}

class QueueTest : public ::testing::Test {
 protected:
  EventList events;
  CountingSink sink{"sink"};
};

TEST_F(QueueTest, ServiceTimeMatchesRate) {
  // 12 Mb/s, 1500 B packet -> 1 ms serialization.
  Queue q(events, "q", 12e6, 100 * kDataPacketBytes);
  Route route({&q, &sink});
  make_data(events).send_on(route);
  events.run_all();
  EXPECT_EQ(sink.packets(), 1u);
  EXPECT_EQ(events.now(), from_ms(1));
}

TEST_F(QueueTest, BackToBackPacketsSerialise) {
  Queue q(events, "q", 12e6, 100 * kDataPacketBytes);
  Route route({&q, &sink});
  for (int i = 0; i < 5; ++i) make_data(events).send_on(route);
  events.run_all();
  EXPECT_EQ(sink.packets(), 5u);
  EXPECT_EQ(events.now(), from_ms(5));  // 5 x 1 ms, one at a time
}

TEST_F(QueueTest, DropTailWhenFull) {
  // Buffer of exactly 3 packets.
  Queue q(events, "q", 12e6, 3 * kDataPacketBytes);
  Route route({&q, &sink});
  for (int i = 0; i < 10; ++i) make_data(events).send_on(route);
  EXPECT_EQ(q.drops(), 7u);
  events.run_all();
  EXPECT_EQ(sink.packets(), 3u);
  EXPECT_EQ(q.arrivals(), 10u);
  EXPECT_EQ(q.departures(), 3u);
}

TEST_F(QueueTest, LossRateComputation) {
  Queue q(events, "q", 12e6, 5 * kDataPacketBytes);
  Route route({&q, &sink});
  for (int i = 0; i < 10; ++i) make_data(events).send_on(route);
  events.run_all();
  EXPECT_DOUBLE_EQ(q.loss_rate(), 0.5);
}

TEST_F(QueueTest, LossRateZeroWhenIdle) {
  Queue q(events, "q", 1e6, kDataPacketBytes);
  EXPECT_DOUBLE_EQ(q.loss_rate(), 0.0);
}

TEST_F(QueueTest, ByteAccounting) {
  Queue q(events, "q", 12e6, 10 * kDataPacketBytes);
  Route route({&q, &sink});
  for (int i = 0; i < 4; ++i) make_data(events).send_on(route);
  EXPECT_EQ(q.queued_bytes(), 4u * kDataPacketBytes);
  EXPECT_EQ(q.queued_packets(), 4u);
  events.run_all();
  EXPECT_EQ(q.queued_bytes(), 0u);
  EXPECT_EQ(q.bytes_forwarded(), 4u * kDataPacketBytes);
}

TEST_F(QueueTest, SmallPacketsServeFaster) {
  Queue q(events, "q", 8e6, 100 * kDataPacketBytes);
  Route route({&q, &sink});
  Packet& p = Packet::alloc(events);
  p.type = PacketType::kCbr;
  p.size_bytes = 1000;  // 8 Mb/s -> 1 ms
  p.send_on(route);
  events.run_all();
  EXPECT_EQ(events.now(), from_ms(1));
}

TEST_F(QueueTest, FifoOrderPreserved) {
  Queue q(events, "q", 12e6, 100 * kDataPacketBytes);
  // Terminal sink records data_seq order.
  struct OrderSink : PacketSink {
    void receive(Packet& pkt) override {
      seqs.push_back(pkt.data_seq);
      pkt.release();
    }
    const std::string& sink_name() const override { return name; }
    std::string name = "order";
    std::vector<std::uint64_t> seqs;
  } order;
  Route route({&q, &order});
  for (std::uint64_t i = 0; i < 6; ++i) {
    Packet& p = make_data(events);
    p.data_seq = i;
    p.send_on(route);
  }
  events.run_all();
  ASSERT_EQ(order.seqs.size(), 6u);
  for (std::uint64_t i = 0; i < 6; ++i) EXPECT_EQ(order.seqs[i], i);
}

TEST_F(QueueTest, ResetStatsClearsCounters) {
  Queue q(events, "q", 12e6, 2 * kDataPacketBytes);
  Route route({&q, &sink});
  for (int i = 0; i < 5; ++i) make_data(events).send_on(route);
  events.run_all();
  q.reset_stats();
  EXPECT_EQ(q.arrivals(), 0u);
  EXPECT_EQ(q.drops(), 0u);
  EXPECT_EQ(q.departures(), 0u);
}

TEST_F(QueueTest, DroppedPacketsReturnToPool) {
  const std::size_t base = Packet::pool_outstanding(events);
  Queue q(events, "q", 12e6, kDataPacketBytes);  // fits one packet
  Route route({&q, &sink});
  for (int i = 0; i < 4; ++i) make_data(events).send_on(route);
  events.run_all();
  EXPECT_EQ(Packet::pool_outstanding(events), base);
}

}  // namespace
}  // namespace mpsim::net
