#include "model/fairness.hpp"

#include <algorithm>
#include <cmath>

#include "core/check.hpp"
#include <limits>

#include "model/tcp_model.hpp"

namespace mpsim::model {

FairnessReport check_fairness(const std::vector<double>& windows,
                              const std::vector<double>& loss,
                              const std::vector<double>& rtt,
                              double tolerance) {
  const std::size_t n = windows.size();
  MPSIM_CHECK(loss.size() == n && rtt.size() == n,
              "window/loss/RTT vectors must align");
  MPSIM_CHECK(n <= 24, "subset enumeration is exponential");

  std::vector<double> rate(n), tcp(n);
  double total = 0.0;
  double best_tcp = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    rate[r] = windows[r] / rtt[r];
    tcp[r] = std::sqrt(2.0 / loss[r]) / rtt[r];
    total += rate[r];
    best_tcp = std::max(best_tcp, tcp[r]);
  }

  FairnessReport report;
  report.incentive_slack = total - best_tcp;
  report.incentive_ok = report.incentive_slack >= -tolerance * best_tcp;

  report.worst_harm_slack = std::numeric_limits<double>::infinity();
  bool ok = true;
  for (std::size_t mask = 1; mask < (1u << n); ++mask) {
    double subset_rate = 0.0;
    double subset_bound = 0.0;
    for (std::size_t r = 0; r < n; ++r) {
      if (!(mask & (1u << r))) continue;
      subset_rate += rate[r];
      subset_bound = std::max(subset_bound, tcp[r]);
    }
    const double slack = subset_bound - subset_rate;
    report.worst_harm_slack = std::min(report.worst_harm_slack, slack);
    if (slack < -tolerance * subset_bound) ok = false;
  }
  report.do_no_harm_ok = ok;
  return report;
}

}  // namespace mpsim::model
