#!/usr/bin/env python3
"""Perf-regression gate: diff BENCH_*.json reporters against baselines.

Usage:
    tools/bench_diff.py [--baseline-dir bench/baselines]
                        [--max-regress PCT] BENCH_a.json [BENCH_b.json ...]
    tools/bench_diff.py --update BENCH_a.json ...   # refresh the baselines
    tools/bench_diff.py --self-test                 # verify the gate trips

Each current file is compared against <baseline-dir>/<basename>. Two metric
families are gated, wherever they appear in the tree:

  * events_per_sec     — higher is better; a drop  > PCT% is a regression
  * peak_pool_packets  — lower is better;  a rise  > PCT% is a regression
    (peak pool occupancy is deterministic per run, so it gates on any
    machine; events_per_sec assumes baseline and current ran on comparable
    hardware — the bench-gate CI lane runs both on the same runner class)

Structure walk: dicts recurse on keys present in *both* trees, lists of
run objects are matched by their "name" field (so adding or reordering runs
never misattributes a metric), other values are ignored. Metrics present in
only one tree are reported but not gated.

Exit codes: 0 clean, 1 regression found, 2 usage/missing-file error.
"""

import argparse
import json
import os
import sys

GATED = {
    # metric key -> True if higher is better
    "events_per_sec": True,
    "peak_pool_packets": False,
}


def walk(base, cur, path, out):
    """Collect (path, key, baseline, current) for every gated metric."""
    if isinstance(base, dict) and isinstance(cur, dict):
        for key, bval in base.items():
            if key not in cur:
                out.append((path + "/" + key, None, bval, None))
                continue
            cval = cur[key]
            if key in GATED and isinstance(bval, (int, float)) \
                    and isinstance(cval, (int, float)):
                out.append((path + "/" + key, key, float(bval), float(cval)))
            else:
                walk(bval, cval, path + "/" + key, out)
    elif isinstance(base, list) and isinstance(cur, list):
        if all(isinstance(x, dict) and "name" in x for x in base + cur):
            cur_by_name = {x["name"]: x for x in cur}
            for brun in base:
                crun = cur_by_name.get(brun["name"])
                label = path + "[" + str(brun["name"]) + "]"
                if crun is None:
                    out.append((label, None, brun, None))
                else:
                    walk(brun, crun, label, out)
        else:
            for i, (bval, cval) in enumerate(zip(base, cur)):
                walk(bval, cval, path + "[" + str(i) + "]", out)


def diff_trees(base, cur, max_regress, label):
    """Print a metric-by-metric report; return the number of regressions."""
    found = []
    walk(base, cur, "", found)
    regressions = 0
    for path, key, bval, cval in found:
        if key is None:
            print("  MISSING {}: present in baseline only".format(path))
            continue
        higher_better = GATED[key]
        if bval == 0:
            continue  # no meaningful ratio; a zero baseline gates nothing
        change_pct = (cval - bval) / bval * 100.0
        regressed = (-change_pct if higher_better else change_pct) \
            > max_regress
        marker = "REGRESSION" if regressed else "ok"
        print("  {:10s} {}: {:.6g} -> {:.6g} ({:+.2f}%)".format(
            marker, path, bval, cval, change_pct))
        if regressed:
            regressions += 1
    if not found:
        print("  warning: no gated metrics found under {}".format(label))
    return regressions


def self_test(max_regress):
    """The gate must trip on a synthetic regression and stay quiet on an
    improvement; exercised by ctest/CI so a broken gate cannot pass
    silently."""
    base = {
        "dispatch": {"wheel": {"events_per_sec": 1e7}},
        "runs": [
            {"name": "MPTCP",
             "metrics": {"events_per_sec": 3e6, "peak_pool_packets": 1000}},
        ],
    }
    slow = json.loads(json.dumps(base))
    slow["dispatch"]["wheel"]["events_per_sec"] = 1e7 * (
        1.0 - (max_regress + 5.0) / 100.0)
    bloated = json.loads(json.dumps(base))
    bloated["runs"][0]["metrics"]["peak_pool_packets"] = 1000 * (
        1.0 + (max_regress + 5.0) / 100.0)
    fine = json.loads(json.dumps(base))
    fine["dispatch"]["wheel"]["events_per_sec"] = 1.2e7

    print("self-test: synthetic events_per_sec regression")
    if diff_trees(base, slow, max_regress, "self-test") != 1:
        print("self-test FAILED: slow run not flagged")
        return 1
    print("self-test: synthetic peak_pool_packets regression")
    if diff_trees(base, bloated, max_regress, "self-test") != 1:
        print("self-test FAILED: pool bloat not flagged")
        return 1
    print("self-test: improvement must not trip the gate")
    if diff_trees(base, fine, max_regress, "self-test") != 0:
        print("self-test FAILED: improvement flagged as regression")
        return 1
    print("self-test passed")
    return 0


def main():
    ap = argparse.ArgumentParser(
        description="diff BENCH_*.json against committed baselines")
    ap.add_argument("files", nargs="*", help="current BENCH_*.json files")
    ap.add_argument("--baseline-dir", default="bench/baselines")
    ap.add_argument("--max-regress", type=float, default=10.0,
                    help="allowed regression in percent (default 10)")
    ap.add_argument("--update", action="store_true",
                    help="copy the given files over their baselines")
    ap.add_argument("--self-test", action="store_true",
                    help="verify the gate trips on a synthetic regression")
    args = ap.parse_args()

    if args.self_test:
        sys.exit(self_test(args.max_regress))
    if not args.files:
        ap.print_usage(sys.stderr)
        sys.exit(2)

    total = 0
    for path in args.files:
        baseline_path = os.path.join(args.baseline_dir,
                                     os.path.basename(path))
        if not os.path.exists(path):
            print("bench_diff: missing current file {}".format(path),
                  file=sys.stderr)
            sys.exit(2)
        if args.update:
            os.makedirs(args.baseline_dir, exist_ok=True)
            with open(path) as f:
                data = f.read()
            with open(baseline_path, "w") as f:
                f.write(data)
            print("updated {}".format(baseline_path))
            continue
        if not os.path.exists(baseline_path):
            print("bench_diff: no baseline {} (run --update to seed it)"
                  .format(baseline_path), file=sys.stderr)
            sys.exit(2)
        with open(baseline_path) as f:
            base = json.load(f)
        with open(path) as f:
            cur = json.load(f)
        print("{} vs {} (max regress {:g}%):".format(
            path, baseline_path, args.max_regress))
        total += diff_trees(base, cur, args.max_regress, path)

    if total:
        print("bench_diff: {} regression(s) beyond the gate".format(total))
        sys.exit(1)
    print("bench_diff: clean")
    sys.exit(0)


if __name__ == "__main__":
    main()
