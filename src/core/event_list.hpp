// Discrete-event scheduler.
//
// The simulator is a single-threaded event loop: components that need to act
// at a future simulated time derive from EventSource and schedule themselves
// on the EventList. Ties are broken by insertion order so runs are fully
// deterministic.
//
// Two interchangeable backends implement the queue:
//   * kWheel — hierarchical timing wheel (core/timing_wheel.hpp), amortized
//     O(1) schedule/dispatch; the default.
//   * kHeap  — binary heap, O(log n) per operation; kept as a cross-checked
//     fallback (tests assert both dispatch identical event orders).
// kAuto resolves from the MPSIM_SCHEDULER environment variable ("wheel" or
// "heap"), defaulting to the wheel.
//
// Cancellation is lazy on the hot path: a source that no longer wants a
// pending wake-up simply ignores the callback (sources track their own next
// valid deadline). This keeps the queue free of tombstone bookkeeping where
// it matters. For teardown — an EventSource about to be destroyed while
// wake-ups for it are still queued — cancel() eagerly removes every pending
// entry for the source; it is O(pending) and meant for cold paths only.
//
// An EventList is also the identity of one simulation instance: per-run
// services (the packet pool, see net::PacketPool; the flight recorder, see
// trace::TraceRecorder) attach to it instead of living in globals, so
// independent simulations can run concurrently on separate threads.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "core/time.hpp"
#include "core/timing_wheel.hpp"

namespace mpsim {

class EventList;

// Anything that can be woken by the scheduler.
class EventSource {
 public:
  explicit EventSource(std::string name) : name_(std::move(name)) {}
  virtual ~EventSource() = default;

  EventSource(const EventSource&) = delete;
  EventSource& operator=(const EventSource&) = delete;

  // Called when a scheduled wake-up for this source fires.
  virtual void on_event() = 0;

  const std::string& name() const { return name_; }

 private:
  std::string name_;
};

enum class SchedulerKind {
  kAuto,   // resolve from MPSIM_SCHEDULER, default kWheel
  kHeap,   // binary heap (the original backend)
  kWheel,  // hierarchical timing wheel
};

class EventList {
 public:
  explicit EventList(SchedulerKind kind = SchedulerKind::kAuto);

  EventList(const EventList&) = delete;
  EventList& operator=(const EventList&) = delete;

  // The backend this instance runs on (kHeap or kWheel, never kAuto).
  SchedulerKind scheduler_kind() const {
    return wheel_ ? SchedulerKind::kWheel : SchedulerKind::kHeap;
  }
  // What kAuto resolves to for new EventLists (reads MPSIM_SCHEDULER once).
  static SchedulerKind default_scheduler();

  SimTime now() const { return now_; }

  // Wake `src` at absolute time `t` (must be >= now()).
  void schedule_at(EventSource& src, SimTime t);

  // Wake `src` after `dt` nanoseconds.
  void schedule_in(EventSource& src, SimTime dt) {
    schedule_at(src, now_ + dt);
  }

  // Eagerly remove every pending wake-up for `src` and return how many were
  // dropped. O(pending events) on either backend — this is the teardown
  // path for sources whose lifetime ends before the simulation's (periodic
  // samplers, short-lived monitors), not a hot-path primitive.
  std::size_t cancel(const EventSource& src);

  bool empty() const { return wheel_ ? wheel_->empty() : heap_.empty(); }
  std::size_t pending() const {
    return wheel_ ? wheel_->size() : heap_.size();
  }
  std::uint64_t events_processed() const { return processed_; }

  // Dispatch the earliest pending event. Returns false if none remain.
  bool run_one();

  // Run events with timestamp <= `t`; afterwards now() == t (even if the
  // queue drained early), so periodic samplers see a consistent clock.
  void run_until(SimTime t);

  // Run until no events remain.
  void run_all();

  // Allocate the next flow id for a connection built on this simulation.
  // Per-EventList (not process-global) so ids — which appear in packets,
  // receiver demux tables and trace files — depend only on construction
  // order within the run, never on how parallel runner jobs interleave.
  std::uint32_t alloc_flow_id() { return next_flow_id_++; }

  // --- per-simulation services ------------------------------------------
  // A service is owned by the EventList and lives exactly as long as the
  // simulation instance. Each service type owns one fixed slot; the slot
  // constants live here so every simulation agrees on the layout (the
  // alternative — a run-time type registry — would make slot assignment
  // depend on attach order and cost a lookup on hot paths).
  //   kPacketPoolSlot     net::PacketPool, attached lazily on first alloc.
  //   kTraceRecorderSlot  trace::TraceRecorder, attached explicitly by
  //                       TraceRecorder::install() before the topology is
  //                       built (instrumented objects capture the pointer
  //                       at construction).
  class Service {
   public:
    virtual ~Service() = default;
  };
  static constexpr std::size_t kPacketPoolSlot = 0;
  static constexpr std::size_t kTraceRecorderSlot = 1;
  static constexpr std::size_t kServiceSlots = 2;

  Service* service(std::size_t slot) const { return services_[slot].get(); }
  Service& attach_service(std::size_t slot, std::unique_ptr<Service> s);

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;  // FIFO tie-break for equal timestamps
    EventSource* src;
    bool operator>(const Entry& o) const {
      if (time != o.time) return time > o.time;
      return seq > o.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::unique_ptr<TimingWheel> wheel_;  // non-null iff the wheel backend
  std::array<std::unique_ptr<Service>, kServiceSlots> services_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  std::uint32_t next_flow_id_ = 1;
};

}  // namespace mpsim
