#include "core/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

namespace mpsim {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, DoubleMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(3);
  for (std::uint64_t bound : {1ull, 2ull, 7ull, 1000ull}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowZeroIsZero) {
  Rng rng(3);
  EXPECT_EQ(rng.next_below(0), 0u);
}

TEST(Rng, NextBelowCoversAllValues) {
  Rng rng(5);
  std::vector<int> seen(10, 0);
  for (int i = 0; i < 10000; ++i) ++seen[rng.next_below(10)];
  for (int count : seen) EXPECT_GT(count, 800);  // ~1000 expected
}

TEST(Rng, UniformIntInclusiveRange) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceFrequency) {
  Rng rng(17);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.chance(0.2)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.2, 0.01);
}

TEST(Rng, ExponentialMean) {
  Rng rng(19);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(Rng, ExponentialPositive) {
  Rng rng(23);
  for (int i = 0; i < 10000; ++i) EXPECT_GT(rng.exponential(1.0), 0.0);
}

TEST(Rng, ParetoMeanMatchesFormula) {
  // mean = alpha*xm/(alpha-1); alpha=3, xm=2 -> 3.
  Rng rng(29);
  double sum = 0.0;
  const int n = 400000;
  for (int i = 0; i < n; ++i) sum += rng.pareto(3.0, 2.0);
  EXPECT_NEAR(sum / n, 3.0, 0.1);
}

TEST(Rng, ParetoNeverBelowScale) {
  Rng rng(31);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(rng.pareto(2.0, 1.5), 1.5);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(37);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  rng.shuffle(v.data(), v.size());
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 50; ++i) EXPECT_EQ(sorted[static_cast<size_t>(i)], i);
}

TEST(Rng, ShuffleActuallyMoves) {
  Rng rng(41);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  rng.shuffle(v.data(), v.size());
  int fixed = 0;
  for (int i = 0; i < 100; ++i) {
    if (v[static_cast<size_t>(i)] == i) ++fixed;
  }
  EXPECT_LT(fixed, 10);
}

}  // namespace
}  // namespace mpsim
