// The flight recorder: a per-simulation, fixed-memory event trace.
//
// A TraceRecorder is an EventList service (one per simulation instance,
// like net::PacketPool), so parallel ExperimentRunner jobs each record into
// private memory and trace output is exactly as deterministic as the
// simulation itself — byte-identical across runs and thread counts.
//
// Design:
//   * Preallocated ring buffer of POD Records (trace/record.hpp). Appending
//     is a bump-and-store; when full, the oldest record is overwritten
//     (flight-recorder semantics) and counted, so a long run always keeps
//     its most recent window and never allocates mid-flight.
//   * Instrumentation sites go through MPSIM_TRACE(rec, builder): with no
//     recorder installed the site costs one predicted-not-taken branch on a
//     cached pointer — nothing is constructed, nothing is called.
//     (tools/mpsim_lint.py's trace-discipline rule enforces that src/ hot
//     paths never call append_unchecked() directly.)
//   * Nothing is formatted or written during the run; flush(sink) replays
//     the ring chronologically into a TraceSink (CSV/JSONL/null) at run
//     end.
//
// Lifetime contract: install() the recorder immediately after constructing
// the EventList, *before* building queues/connections — instrumented
// objects capture the recorder pointer at construction and an object built
// earlier records nothing.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/event_list.hpp"
#include "trace/record.hpp"
#include "trace/sinks.hpp"

namespace mpsim::trace {

class TraceRecorder final : public EventList::Service {
 public:
  struct Config {
    // Ring capacity in records (~72 B each; the default holds the last
    // ~256k records in ~18 MB). MPSIM_TRACE_CAPACITY overrides via
    // config_from_env().
    std::size_t capacity = std::size_t{1} << 18;
  };

  explicit TraceRecorder(Config cfg);

  // Attach a recorder to `events`' simulation. Exactly once per EventList,
  // and before the instrumented topology is built.
  static TraceRecorder& install(EventList& events, Config cfg);
  static TraceRecorder& install(EventList& events) {
    return install(events, Config{});
  }
  // The simulation's recorder, or nullptr when tracing is disabled. This is
  // what instrumented constructors cache.
  static TraceRecorder* find(const EventList& events);

  // Interns `name` and returns the id instrumentation stamps into records.
  std::uint16_t register_object(std::string name);
  const std::string& object_name(std::uint16_t id) const;
  std::size_t object_count() const { return names_.size(); }

  // Out-of-band merge stamp: records emitted outside any dispatch after
  // the run has started (inter-phase engine code). Sorts after every real
  // dispatch key — canonical keys top out below this (order ids are
  // checked against exhaustion well short of 2^32 - 1).
  static constexpr std::uint64_t kOutOfBandKey = ~std::uint64_t{0};

  // Raw ring append. Call via MPSIM_TRACE only — the macro is the null
  // check and the lint boundary. Stamps the record's merge order: okey is
  // the emitting dispatch's canonical key (0 for pre-run construction,
  // kOutOfBandKey for later out-of-band emissions) and oseq the current
  // sequence counter — shared across a shard group's recorders during
  // single-threaded phases, private per recorder while shard workers run
  // (see use_sequence_counter).
  void append_unchecked(const Record& r) {
    Record& cell = ring_[write_];
    cell = r;
    std::uint64_t key = 0;
    if (events_ != nullptr) {
      key = events_->current_dispatch_key();
      if (key == 0 &&
          (events_->now() > 0 || events_->events_processed() > 0)) {
        key = kOutOfBandKey;
      }
    }
    cell.okey = key;
    cell.oseq = (*oseq_)++;
    if (++write_ == ring_.size()) write_ = 0;
    if (size_ < ring_.size()) {
      ++size_;
    } else {
      ++overwritten_;
    }
  }

  // Redirect the oseq stamp to a counter owned elsewhere (the shard
  // group's shared counter, or back to this recorder's own — see
  // own_sequence_counter). Single-threaded phases share one counter so
  // out-of-band records from different shards' recorders keep a global
  // order; worker phases flip to private counters (every parallel-phase
  // record has a unique (t, okey) dispatch identity, so private counters
  // only order records *within* one dispatch).
  void use_sequence_counter(std::uint64_t* c) { oseq_ = c; }
  std::uint64_t* own_sequence_counter() { return &own_oseq_; }

  // Replay the held records, oldest first, through `sink` (begin/record*/
  // finish). const: flushing twice, or to several sinks, is fine.
  void flush(TraceSink& sink) const;

  // Merge several recorders' rings — one per shard of a ShardGroup — into
  // the exact record stream a sequential run would have flushed: a stable
  // sort by (t, okey, oseq). Sequential emission order is monotone in that
  // triple (time advances; same-time dispatches run in canonical key
  // order; records within a dispatch share its key and count up oseq; and
  // out-of-band records sort before (construction) or after (inter-phase)
  // all same-time dispatches via okey 0 / kOutOfBandKey with a globally
  // shared oseq), so the sort is exactly the inverse of sharding the
  // stream. Each record's object name resolves through its own recorder.
  static void flush_merged(const std::vector<const TraceRecorder*>& recorders,
                           TraceSink& sink);

  std::size_t capacity() const { return ring_.size(); }
  std::size_t size() const { return size_; }
  // Records ever appended / lost to ring wraparound.
  std::uint64_t total_records() const { return size_ + overwritten_; }
  std::uint64_t overwritten() const { return overwritten_; }

 private:
  std::vector<Record> ring_;
  std::size_t write_ = 0;  // next append position
  std::size_t size_ = 0;   // records held (== capacity once wrapped)
  std::uint64_t overwritten_ = 0;
  std::vector<std::string> names_;
  const EventList* events_ = nullptr;  // stamp source, set by install()
  std::uint64_t own_oseq_ = 0;
  std::uint64_t* oseq_ = &own_oseq_;
};

// --- environment knobs ----------------------------------------------------
// MPSIM_TRACE selects the sink: "csv", "jsonl", "null" (record, discard at
// flush), anything else / unset = kNone (tracing off).
SinkKind sink_from_env();
// Config with MPSIM_TRACE_CAPACITY applied when set and positive.
TraceRecorder::Config config_from_env();

}  // namespace mpsim::trace

// The only sanctioned instrumentation hook. `rec` is the object's cached
// TraceRecorder pointer (nullptr = tracing off); `builder` is a
// trace/record.hpp builder call, evaluated only when tracing is on.
// Parenthesize builder calls whose argument lists contain template commas.
#define MPSIM_TRACE(rec, builder)            \
  do {                                       \
    if ((rec) != nullptr) [[unlikely]] {     \
      (rec)->append_unchecked(builder);      \
    }                                        \
  } while (0)
