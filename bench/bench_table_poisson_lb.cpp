// §3 second server experiment — dynamic load with Poisson flow arrivals.
//
// Dual-homed server. Link 1: Poisson arrivals of TCP flows, rate
// alternating 10/s (light) and 60/s (heavy), Pareto sizes with mean
// 200 kB. Link 2: one long-lived TCP. The three multipath algorithms run
// SIMULTANEOUSLY, as in the paper ("We also ran all three multipath
// algorithms simultaneously, able to use both links") — so they compete
// with the dynamic load *and with each other*. Paper's long-run averages:
// MPTCP 61, COUPLED 54, EWTCP 47 Mb/s. EWTCP loses because it will not
// move off the loaded link in heavy phases; COUPLED loses light phases by
// staying 'trapped' off link 1 after bursts clear.
#include <memory>

#include "cc/coupled.hpp"
#include "cc/ewtcp.hpp"
#include "cc/mptcp_lia.hpp"
#include "harness.hpp"
#include "topo/two_link.hpp"
#include "traffic/poisson_flows.hpp"

namespace mpsim {
namespace {

struct Result {
  double mptcp, coupled, ewtcp;
};

Result run() {
  EventList events;
  topo::Network net(events);
  topo::LinkSpec spec;
  spec.rate_bps = 100e6;
  spec.one_way_delay = from_ms(5);
  spec.buf_bytes = topo::bdp_bytes(100e6, from_ms(10));
  topo::TwoLink links(net, spec, spec);

  traffic::PoissonConfig pcfg;
  pcfg.light_rate_per_sec = 10.0;
  pcfg.heavy_rate_per_sec = 60.0;
  pcfg.phase_duration = bench::scaled(10);
  pcfg.mean_flow_bytes = 200e3;
  pcfg.seed = 99;
  traffic::PoissonFlowGenerator gen(
      events, "poisson", pcfg,
      [&](const std::string& name, std::uint64_t pkts) {
        mptcp::ConnectionConfig cfg;
        cfg.app_limit_pkts = pkts;
        auto conn = mptcp::make_single_path_tcp(events, name, links.fwd(0),
                                                links.rev(0), cfg);
        conn->start(events.now());
        return conn;
      });

  auto long_tcp = mptcp::make_single_path_tcp(events, "long", links.fwd(1),
                                              links.rev(1));
  auto mk = [&](const char* name, const cc::CongestionControl& algo) {
    auto conn = std::make_unique<mptcp::MptcpConnection>(events, name, algo);
    conn->add_subflow(links.fwd(0), links.rev(0));
    conn->add_subflow(links.fwd(1), links.rev(1));
    return conn;
  };
  auto mp_mptcp = mk("mptcp", cc::mptcp_lia());
  auto mp_coupled = mk("coupled", cc::coupled());
  auto mp_ewtcp = mk("ewtcp", cc::ewtcp());

  gen.start(0);
  long_tcp->start(from_ms(3));
  mp_mptcp->start(from_ms(7));
  mp_coupled->start(from_ms(13));
  mp_ewtcp->start(from_ms(19));

  events.run_until(bench::scaled(10));
  const auto b1 = mp_mptcp->delivered_pkts();
  const auto b2 = mp_coupled->delivered_pkts();
  const auto b3 = mp_ewtcp->delivered_pkts();
  // 16 light/heavy phase pairs.
  const SimTime dt = bench::scaled(320);
  events.run_until(bench::scaled(10) + dt);
  return {stats::pkts_to_mbps(mp_mptcp->delivered_pkts() - b1, dt),
          stats::pkts_to_mbps(mp_coupled->delivered_pkts() - b2, dt),
          stats::pkts_to_mbps(mp_ewtcp->delivered_pkts() - b3, dt)};
}

}  // namespace
}  // namespace mpsim

int main() {
  using namespace mpsim;
  bench::banner(
      "§3 table: Poisson arrivals on link 1 (10/s <-> 60/s, Pareto 200 kB), "
      "long TCP on link 2; all three multipath algorithms simultaneously",
      "paper multipath averages: MPTCP 61 > COUPLED 54 > EWTCP 47 Mb/s");

  const Result r = run();
  stats::Table table({"algorithm", "multipath Mb/s", "paper Mb/s"});
  table.add_row({"MPTCP", stats::fmt_double(r.mptcp, 1), "61"});
  table.add_row({"COUPLED", stats::fmt_double(r.coupled, 1), "54"});
  table.add_row({"EWTCP", stats::fmt_double(r.ewtcp, 1), "47"});
  table.print();
  std::printf("\nexpected shape: MPTCP highest of the three\n");
  return 0;
}
