// Spec-parser and grid-expansion rejection tests: every malformed spec
// must fail loudly, with a file:line diagnostic — never parse as something
// surprising or silently sweep nothing.
#include "scenario/engine.hpp"
#include "scenario/spec.hpp"

#include <gtest/gtest.h>

#include "net/packet.hpp"

namespace mpsim::scenario {
namespace {

// A minimal spec that validates cleanly; rejection tests splice errors in.
constexpr const char* kBase = R"(
[topology]
kind = "two_link"
link1_rate = "12Mbps"
link1_delay = "20ms"
link2_rate = "12Mbps"
link2_delay = "20ms"

[algorithm]
kind = "mptcp"

[traffic]
kind = "persistent"
count = 1
subflows = 2

[run]
warmup = "1s"
measure = "2s"
)";

Scenario load(const std::string& text) {
  return Scenario::from_string(text, "test.toml");
}

// Capture the SpecError a callable throws (fails the test if it doesn't).
SpecError error_of(const std::function<void()>& f) {
  try {
    f();
  } catch (const SpecError& e) {
    return e;
  }
  ADD_FAILURE() << "expected a SpecError";
  return SpecError("", 0, "");
}

TEST(SpecParser, BaseSpecValidates) {
  Scenario s = load(kBase);
  EXPECT_EQ(s.name(), "test");
  const auto runs = s.expand();
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0].name, "test");  // no sweep, single seed: no suffixes
  EXPECT_EQ(runs[0].seed, 1u);
  EXPECT_NO_THROW(s.validate());
}

TEST(SpecParser, ScenarioNameOverridesFileStem) {
  Scenario s = load(std::string("[scenario]\nname = \"custom\"\n") + kBase);
  EXPECT_EQ(s.name(), "custom");
  EXPECT_EQ(s.expand()[0].name, "custom");
}

TEST(SpecParser, DuplicateSectionRejected) {
  const SpecError e =
      error_of([] { Spec::parse_string("[run]\n[run]\n", "dup.toml"); });
  EXPECT_EQ(e.line(), 2);
  EXPECT_NE(std::string(e.what()).find("dup.toml:2"), std::string::npos);
  EXPECT_NE(std::string(e.what()).find("duplicate section"),
            std::string::npos);
}

TEST(SpecParser, DuplicateKeyRejected) {
  const SpecError e = error_of(
      [] { Spec::parse_string("[run]\na = 1\na = 2\n", "dup.toml"); });
  EXPECT_EQ(e.line(), 3);
  EXPECT_NE(std::string(e.what()).find("duplicate key 'a'"),
            std::string::npos);
}

TEST(SpecParser, BareWordValueRejected) {
  const SpecError e = error_of([] {
    Spec::parse_string("[algorithm]\nkind = mptcp\n", "bare.toml");
  });
  EXPECT_EQ(e.line(), 2);
  EXPECT_NE(std::string(e.what()).find("bare words"), std::string::npos);
}

TEST(SpecParser, NestedArrayRejected) {
  EXPECT_THROW(Spec::parse_string("[a]\nx = [[1, 2], [3]]\n", "n.toml"),
               SpecError);
}

TEST(SpecParser, MixedKindArrayRejected) {
  const SpecError e = error_of(
      [] { Spec::parse_string("[a]\nx = [1, \"two\"]\n", "mix.toml"); });
  EXPECT_NE(std::string(e.what()).find("mixes"), std::string::npos);
}

TEST(SpecParser, UppercaseSectionRejected) {
  EXPECT_THROW(Spec::parse_string("[Run]\n", "u.toml"), SpecError);
}

TEST(SpecParser, KeyBeforeAnySectionRejected) {
  EXPECT_THROW(Spec::parse_string("a = 1\n", "k.toml"), SpecError);
}

TEST(SpecParser, MissingValueRejected) {
  EXPECT_THROW(Spec::parse_string("[run]\na =\n", "m.toml"), SpecError);
}

TEST(SpecUnits, TimeParsing) {
  EXPECT_EQ(parse_time("20ms", "t", 1), from_ms(20));
  EXPECT_EQ(parse_time("1.5s", "t", 1), from_sec(1.5));
  EXPECT_EQ(parse_time("9min", "t", 1), from_sec(540));
  EXPECT_THROW(parse_time("20", "t", 3), SpecError);       // unit-less
  EXPECT_THROW(parse_time("5parsec", "t", 3), SpecError);  // unknown unit
  EXPECT_THROW(parse_time("fast", "t", 3), SpecError);
}

TEST(SpecUnits, RateParsing) {
  EXPECT_DOUBLE_EQ(parse_rate_bps("14.4Mbps", "r", 1), 14.4e6);
  EXPECT_DOUBLE_EQ(parse_rate_bps("2kbps", "r", 1), 2e3);
  EXPECT_DOUBLE_EQ(parse_rate_bps("1Gbps", "r", 1), 1e9);
  EXPECT_DOUBLE_EQ(parse_rate_bps("1000pps", "r", 1),
                   1000.0 * net::kDataPacketBytes * 8.0);
  EXPECT_THROW(parse_rate_bps("48", "r", 1), SpecError);
  EXPECT_THROW(parse_rate_bps("10mph", "r", 1), SpecError);
}

TEST(SpecUnits, SizeParsing) {
  EXPECT_EQ(parse_bytes("3B", "b", 1), 3u);
  EXPECT_EQ(parse_bytes("64kB", "b", 1), 64000u);
  EXPECT_EQ(parse_bytes("1MB", "b", 1), 1000000u);
  EXPECT_EQ(parse_bytes("25pkt", "b", 1),
            25u * net::kDataPacketBytes);
  EXPECT_THROW(parse_bytes("64", "b", 1), SpecError);
  EXPECT_THROW(parse_bytes("64KB", "b", 1), SpecError);  // units exact-case
}

TEST(SpecErrors, DiagnosticsCarryFileAndLine) {
  const SpecError e = error_of([] {
    // Line 4 holds the malformed unit.
    Spec spec = Spec::parse_string(
        "[run]\nwarmup = \"1s\"\nmeasure = \"2s\"\nextra = \"20\"\n",
        "diag.toml");
    spec.require_section("run").get_time("extra");
  });
  EXPECT_EQ(e.file(), "diag.toml");
  EXPECT_EQ(e.line(), 4);
  EXPECT_NE(std::string(e.what()).find("diag.toml:4"), std::string::npos);
}

TEST(SpecValidation, UnknownKeyRejected) {
  Scenario s = load(std::string(kBase) + "typo_key = 1\n");
  const SpecError e = error_of([&] { s.validate(); });
  EXPECT_NE(std::string(e.what()).find("unknown key 'typo_key'"),
            std::string::npos);
}

TEST(SpecValidation, UnknownTopologyKindRejected) {
  std::string text = kBase;
  const std::size_t pos = text.find("\"two_link\"");
  text.replace(pos, 10, "\"ring\"");
  EXPECT_THROW(load(text).validate(), SpecError);
}

TEST(SpecValidation, UnknownMetricRejected) {
  Scenario s = load(std::string(kBase) +
                    "\n[output]\nmetrics = [\"bogus\"]\n");
  const SpecError e = error_of([&] { s.validate(); });
  EXPECT_NE(std::string(e.what()).find("unknown metric 'bogus'"),
            std::string::npos);
}

TEST(SpecValidation, MalformedLossRatioRejected) {
  Scenario s = load(std::string(kBase) +
                    "\n[output]\nmetrics = [\"loss_ratio:a:b\"]\n");
  EXPECT_THROW(s.validate(), SpecError);
}

TEST(SpecValidation, MutuallyExclusiveFlowForms) {
  std::string text = kBase;
  const std::size_t pos = text.find("count = 1");
  text.insert(pos, "flows = [\"0+1\"]\n");
  const SpecError e = error_of([&] { load(text).validate(); });
  EXPECT_NE(std::string(e.what()).find("mutually exclusive"),
            std::string::npos);
}

TEST(SpecValidation, MutuallyExclusiveStartForms) {
  std::string text = kBase;
  const std::size_t pos = text.find("count = 1");
  text.insert(pos, "starts = [\"0s\"]\nstagger = \"10ms\"\n");
  const SpecError e = error_of([&] { load(text).validate(); });
  EXPECT_NE(std::string(e.what()).find("mutually exclusive"),
            std::string::npos);
}

TEST(SweepExpansion, EmptyAxisRejected) {
  Scenario s =
      load(std::string(kBase) + "\n[sweep]\ntraffic.subflows = []\n");
  const SpecError e = error_of([&] { s.expand(); });
  EXPECT_NE(std::string(e.what()).find("no values"), std::string::npos);
}

TEST(SweepExpansion, UnknownSectionRejected) {
  Scenario s = load(std::string(kBase) + "\n[sweep]\nnosuch.key = [1]\n");
  EXPECT_THROW(s.expand(), SpecError);
}

TEST(SweepExpansion, KeyNotPresentRejected) {
  // A sweep axis must name an existing key so a typo cannot silently
  // sweep nothing.
  Scenario s = load(std::string(kBase) + "\n[sweep]\ntraffic.cuont = [1]\n");
  const SpecError e = error_of([&] { s.expand(); });
  EXPECT_NE(std::string(e.what()).find("not present"), std::string::npos);
}

TEST(SweepExpansion, UndottedAxisRejected) {
  Scenario s = load(std::string(kBase) + "\n[sweep]\nsubflows = [1]\n");
  const SpecError e = error_of([&] { s.expand(); });
  EXPECT_NE(std::string(e.what()).find("section.key"), std::string::npos);
}

TEST(SweepExpansion, BadSeedsRejected) {
  EXPECT_THROW(load(std::string(kBase) + "seeds = [1.5]\n").expand(),
               SpecError);
  EXPECT_THROW(load(std::string(kBase) + "seeds = [-1]\n").expand(),
               SpecError);
  EXPECT_THROW(load(std::string(kBase) + "seeds = []\n").expand(),
               SpecError);
}

TEST(SweepExpansion, GridOrderAndNames) {
  Scenario s = load(std::string(kBase) +
                    "seeds = [7, 8]\n"
                    "\n[sweep]\n"
                    "algorithm.kind = [\"mptcp\", \"ewtcp\"]\n"
                    "traffic.subflows = [1, 2]\n");
  const auto runs = s.expand();
  ASSERT_EQ(runs.size(), 8u);  // 2 x 2 axes, 2 seeds

  // First axis slowest, seeds innermost.
  EXPECT_EQ(runs[0].name, "test/algorithm.kind=mptcp,traffic.subflows=1/s7");
  EXPECT_EQ(runs[1].name, "test/algorithm.kind=mptcp,traffic.subflows=1/s8");
  EXPECT_EQ(runs[2].name, "test/algorithm.kind=mptcp,traffic.subflows=2/s7");
  EXPECT_EQ(runs[4].name, "test/algorithm.kind=ewtcp,traffic.subflows=1/s7");
  EXPECT_EQ(runs[7].name, "test/algorithm.kind=ewtcp,traffic.subflows=2/s8");

  // The machine-readable spec echo matches the substituted values.
  ASSERT_EQ(runs[0].point.size(), 3u);
  EXPECT_EQ(runs[0].point[0],
            (std::pair<std::string, std::string>{"algorithm.kind", "mptcp"}));
  EXPECT_EQ(runs[0].point[1],
            (std::pair<std::string, std::string>{"traffic.subflows", "1"}));
  EXPECT_EQ(runs[0].point[2],
            (std::pair<std::string, std::string>{"seed", "7"}));

  // Substitution actually landed in the copied spec.
  EXPECT_EQ(runs[4].spec.require_section("algorithm").get_string("kind"),
            "ewtcp");
  EXPECT_EQ(runs[4].spec.require_section("traffic").get_int("subflows"), 1);

  // Every grid point still dry-builds.
  EXPECT_NO_THROW(s.validate());
}

TEST(SweepExpansion, ScalarAxisActsAsSingleValue) {
  Scenario s = load(std::string(kBase) +
                    "\n[sweep]\ntraffic.subflows = 1\n");
  const auto runs = s.expand();
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0].name, "test/traffic.subflows=1");
}

}  // namespace
}  // namespace mpsim::scenario
