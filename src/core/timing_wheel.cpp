#include "core/timing_wheel.hpp"

#include <algorithm>
#include <bit>

#include "core/check.hpp"

namespace mpsim {

void TimingWheel::cascade(int lv, int idx) {
  Level& level = levels_[static_cast<std::size_t>(lv)];
  Slot& s = level.slots[static_cast<std::size_t>(idx)];
  if (s.entries.size() == 1) {  // common in sparse simulations
    const Entry e = s.entries.front();
    s.entries.clear();
    s.sorted = false;
    unmark(level, idx);
    --wheel_size_;
    insert(e);
    return;
  }
  // Copy into the reusable scratch buffer and clear() the slot so both keep
  // their capacity: after the first lap of the wheel, cascading allocates
  // nothing. (insert() never calls cascade, so scratch_ cannot be reentered.)
  scratch_.assign(s.entries.begin(), s.entries.end());
  s.entries.clear();
  s.head = 0;
  s.sorted = false;
  unmark(level, idx);
  wheel_size_ -= scratch_.size();
  for (const Entry& e : scratch_) insert(e);
}

int TimingWheel::find_slot(const Level& lv, int from) const {
  if (from >= kSlots) return -1;
  int w = from >> 6;
  const std::uint64_t word =
      lv.bitmap[static_cast<std::size_t>(w)] & (~0ull << (from & 63));
  if (word != 0) return (w << 6) + std::countr_zero(word);
  // Jump straight to the next non-empty bitmap word via the summary.
  if (++w == kBitmapWords) return -1;
  const std::uint32_t rest =
      lv.summary & (~0u << w);  // w in [1, 31]: shift is well-defined
  if (rest == 0) return -1;
  w = std::countr_zero(rest);
  return (w << 6) + std::countr_zero(lv.bitmap[static_cast<std::size_t>(w)]);
}

SimTime TimingWheel::next_time() const {
  if (size_ == 0) return kNever;
  // Level 0: the slot index is the exact tick within the current epoch.
  const int idx =
      find_slot(levels_[0], static_cast<int>(cur_ & (kSlots - 1)));
  if (idx >= 0) {
    return static_cast<SimTime>(
        (cur_ & ~static_cast<std::uint64_t>(kSlots - 1)) |
        static_cast<std::uint64_t>(idx));
  }
  // Every entry at level l sorts strictly before every entry at level l+1
  // (they share the level-(l+1) epoch with cur_; higher levels do not), so
  // the first occupied level holds the minimum. Its slot spans many ticks;
  // scan it for the earliest entry.
  for (int lv = 1; lv < kLevels; ++lv) {
    const int il =
        static_cast<int>((cur_ >> (kSlotBits * lv)) & (kSlots - 1));
    const int j = find_slot(levels_[static_cast<std::size_t>(lv)], il + 1);
    if (j < 0) continue;
    const Slot& s = levels_[static_cast<std::size_t>(lv)]
                        .slots[static_cast<std::size_t>(j)];
    SimTime best = kNever;
    for (const Entry& e : s.entries) best = std::min(best, e.time);
    return best;
  }
  return overflow_.top().time;
}

TimingWheel::Entry TimingWheel::pop() {
  MPSIM_CHECK(size_ > 0, "pop() from an empty wheel");
  Entry e;
  const bool ok = pop_if_before(kNever, e);
  MPSIM_CHECK(ok, "non-empty wheel must yield an entry");
  (void)ok;
  return e;
}

std::size_t TimingWheel::cancel(const EventSource* src) {
  std::size_t removed = 0;
  for (int lv = 0; lv < kLevels; ++lv) {
    Level& level = levels_[static_cast<std::size_t>(lv)];
    for (int idx = 0; idx < kSlots; ++idx) {
      Slot& s = level.slots[static_cast<std::size_t>(idx)];
      if (s.entries.empty()) continue;
      // Only the pending suffix [head, end) may be touched; [0, head) of a
      // mid-drain level-0 slot was already dispatched. Erasing preserves
      // relative order, so the `sorted` flag remains valid.
      const auto pending_begin = s.entries.begin() + s.head;
      const auto it = std::remove_if(
          pending_begin, s.entries.end(),
          [src](const Entry& e) { return e.src == src; });
      const auto n = static_cast<std::size_t>(s.entries.end() - it);
      if (n == 0) continue;
      s.entries.erase(it, s.entries.end());
      removed += n;
      if (s.head == s.entries.size()) {
        s.entries.clear();
        s.head = 0;
        s.sorted = false;
        unmark(level, idx);
      }
    }
  }
  wheel_size_ -= removed;
  if (!overflow_.empty()) {
    std::vector<Entry> keep;
    keep.reserve(overflow_.size());
    while (!overflow_.empty()) {
      if (overflow_.top().src == src) {
        ++removed;
      } else {
        keep.push_back(overflow_.top());
      }
      overflow_.pop();
    }
    overflow_ = decltype(overflow_)(EntryGreater(), std::move(keep));
    overflow_empty_ = overflow_.empty();
  }
  size_ -= removed;
  return removed;
}

bool TimingWheel::pop_if_before(SimTime limit, Entry& out) {
  if (size_ == 0) return false;
  const auto lim = static_cast<std::uint64_t>(limit);
  for (;;) {
    const int idx =
        find_slot(levels_[0], static_cast<int>(cur_ & (kSlots - 1)));
    if (idx >= 0) {
      const std::uint64_t tick =
          (cur_ & ~static_cast<std::uint64_t>(kSlots - 1)) |
          static_cast<std::uint64_t>(idx);
      if (tick > lim) return false;
      Level& l0 = levels_[0];
      Slot& s = l0.slots[static_cast<std::size_t>(idx)];
      if (!s.sorted) {
        // Only the pending suffix [head, end) may be reordered; [0, head)
        // was already dispatched. A mid-drain slot can become unsorted
        // under canonical keys: a source dispatching at this very tick may
        // schedule another same-tick event whose (order id, seq) key is
        // smaller than a pending entry's — exactly the case where the heap
        // backend would pop the newcomer first, so the re-sort here is what
        // keeps the two backends dispatch-identical.
        if (s.entries.size() - s.head > 1) {
          std::sort(s.entries.begin() + s.head, s.entries.end(),
                    [](const Entry& a, const Entry& b) {
                      return a.seq < b.seq;
                    });
        }
        s.sorted = true;
      }
      out = s.entries[s.head++];
      cur_ = tick;
      if (s.head == s.entries.size()) {
        s.entries.clear();
        s.head = 0;
        s.sorted = false;
        unmark(l0, idx);
      }
      --wheel_size_;
      --size_;
      return true;
    }
    if (wheel_size_ > 0) {
      // Advance into the next occupied slot of the lowest occupied level
      // and cascade it down; the loop then rescans level 0. Every entry in
      // that slot (and, by the level-ordering invariant, every pending
      // wheel entry) has time >= the slot's base tick, so if the base is
      // past the limit there is nothing to pop and — crucially — cur_ has
      // not moved past `limit` either.
      bool advanced = false;
      for (int lv = 1; lv < kLevels; ++lv) {
        const int il =
            static_cast<int>((cur_ >> (kSlotBits * lv)) & (kSlots - 1));
        const int j =
            find_slot(levels_[static_cast<std::size_t>(lv)], il + 1);
        if (j < 0) continue;
        Level& level = levels_[static_cast<std::size_t>(lv)];
        Slot& s = level.slots[static_cast<std::size_t>(j)];
        if (s.entries.size() == 1) {
          // Sparse fast path: the sole entry of the first occupied slot of
          // the lowest occupied level is the wheel's minimum (every lower
          // level is empty, higher levels and the overflow sort after it),
          // so pop it directly instead of cascading it down level by level
          // only to pop it from level 0 a few scans later. This is the
          // dominant dispatch shape for sparse simulations (a handful of
          // timers spread over a wide horizon).
          const Entry e = s.entries.front();
          if (static_cast<std::uint64_t>(e.time) > lim) return false;
          s.entries.clear();
          s.sorted = false;
          unmark(level, j);
          cur_ = static_cast<std::uint64_t>(e.time);
          --wheel_size_;
          --size_;
          out = e;
          return true;
        }
        const std::uint64_t epoch_mask =
            ~((1ull << (kSlotBits * (lv + 1))) - 1);
        const std::uint64_t slot_base =
            (cur_ & epoch_mask) |
            (static_cast<std::uint64_t>(j) << (kSlotBits * lv));
        if (slot_base > lim) return false;
        cur_ = slot_base;
        cascade(lv, j);
        advanced = true;
        break;
      }
      MPSIM_CHECK(advanced, "occupied wheel must have a next slot");
      (void)advanced;
      continue;
    }
    // Wheel drained: rebase onto the overflow heap's next epoch and pull in
    // every far-future event that now fits under the horizon.
    MPSIM_CHECK(!overflow_empty_,
                "size_ > 0 with drained wheel implies overflow entries");
    if (static_cast<std::uint64_t>(overflow_.top().time) > lim) return false;
    cur_ = static_cast<std::uint64_t>(overflow_.top().time);
    while (!overflow_.empty() &&
           (static_cast<std::uint64_t>(overflow_.top().time) >>
            kHorizonBits) == (cur_ >> kHorizonBits)) {
      insert(overflow_.top());
      overflow_.pop();
    }
    overflow_empty_ = overflow_.empty();
  }
}

void TimingWheel::drain(std::vector<Entry>& out) {
  // Migration path: called once per wheel->heap backend switch, which the
  // adaptive scheduler rate-limits; never on per-event dispatch.
  // mpsim-analyze: allow(hot-alloc)
  out.reserve(out.size() + size_);
  for (int lv = 0; lv < kLevels; ++lv) {
    Level& level = levels_[static_cast<std::size_t>(lv)];
    if (level.summary == 0) continue;
    for (int idx = 0; idx < kSlots; ++idx) {
      Slot& s = level.slots[static_cast<std::size_t>(idx)];
      if (s.entries.empty()) continue;
      // Only the pending suffix survives; [0, head) of a mid-drain level-0
      // slot has already been dispatched. Within the reserve() above.
      // mpsim-analyze: allow(hot-alloc)
      out.insert(out.end(), s.entries.begin() + s.head, s.entries.end());
      s.entries.clear();
      s.head = 0;
      s.sorted = false;
      unmark(level, idx);
    }
  }
  while (!overflow_.empty()) {
    // Within the reserve() above (size_ counts overflow entries).
    // mpsim-analyze: allow(hot-alloc)
    out.push_back(overflow_.top());
    overflow_.pop();
  }
  overflow_empty_ = true;
  wheel_size_ = 0;
  size_ = 0;
}

}  // namespace mpsim
