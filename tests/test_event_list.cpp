#include "core/event_list.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace mpsim {
namespace {

// Records the times it was fired at.
class Recorder : public EventSource {
 public:
  explicit Recorder(EventList& events, std::string name = "rec")
      : EventSource(std::move(name)), events_(events) {}
  void on_event() override { fired.push_back(events_.now()); }
  std::vector<SimTime> fired;

 private:
  EventList& events_;
};

// Every EventList behaviour must hold identically under both scheduler
// backends, so the suite is parameterized over SchedulerKind.
class EventListTest : public ::testing::TestWithParam<SchedulerKind> {
 protected:
  EventListTest() : events(GetParam()) {}
  EventList events;
};

INSTANTIATE_TEST_SUITE_P(Schedulers, EventListTest,
                         ::testing::Values(SchedulerKind::kHeap,
                                           SchedulerKind::kWheel),
                         [](const auto& info) {
                           return info.param == SchedulerKind::kHeap
                                      ? "Heap"
                                      : "Wheel";
                         });

TEST_P(EventListTest, StartsAtTimeZero) {
  EXPECT_EQ(events.now(), 0);
  EXPECT_TRUE(events.empty());
}

TEST_P(EventListTest, RunOneAdvancesClockToEventTime) {
  Recorder r(events);
  events.schedule_at(r, from_ms(5));
  EXPECT_TRUE(events.run_one());
  EXPECT_EQ(events.now(), from_ms(5));
  ASSERT_EQ(r.fired.size(), 1u);
  EXPECT_EQ(r.fired[0], from_ms(5));
}

TEST_P(EventListTest, RunOneOnEmptyReturnsFalse) {
  EXPECT_FALSE(events.run_one());
}

TEST_P(EventListTest, EventsFireInTimeOrder) {
  Recorder r(events);
  events.schedule_at(r, from_ms(30));
  events.schedule_at(r, from_ms(10));
  events.schedule_at(r, from_ms(20));
  events.run_all();
  ASSERT_EQ(r.fired.size(), 3u);
  EXPECT_EQ(r.fired[0], from_ms(10));
  EXPECT_EQ(r.fired[1], from_ms(20));
  EXPECT_EQ(r.fired[2], from_ms(30));
}

TEST_P(EventListTest, TiesBreakInInsertionOrder) {
  Recorder a(events, "a"), b(events, "b"), c(events, "c");
  // Wrap via three recorders and check FIFO by name after the run.
  events.schedule_at(b, from_ms(1));
  events.schedule_at(a, from_ms(1));
  events.schedule_at(c, from_ms(1));
  // Recorders record times only, so instead drive one at a time.
  EXPECT_TRUE(events.run_one());
  EXPECT_EQ(b.fired.size(), 1u);  // b scheduled first wins the tie
  EXPECT_TRUE(events.run_one());
  EXPECT_EQ(a.fired.size(), 1u);
  EXPECT_TRUE(events.run_one());
  EXPECT_EQ(c.fired.size(), 1u);
}

TEST_P(EventListTest, ScheduleInIsRelativeToNow) {
  Recorder r(events);
  events.schedule_at(r, from_ms(10));
  events.run_one();
  events.schedule_in(r, from_ms(5));
  events.run_one();
  ASSERT_EQ(r.fired.size(), 2u);
  EXPECT_EQ(r.fired[1], from_ms(15));
}

TEST_P(EventListTest, RunUntilStopsAtBoundaryInclusive) {
  Recorder r(events);
  events.schedule_at(r, from_ms(10));
  events.schedule_at(r, from_ms(20));
  events.schedule_at(r, from_ms(30));
  events.run_until(from_ms(20));
  EXPECT_EQ(r.fired.size(), 2u);
  EXPECT_EQ(events.now(), from_ms(20));
  EXPECT_EQ(events.pending(), 1u);
}

TEST_P(EventListTest, RunUntilAdvancesClockEvenWhenIdle) {
  events.run_until(from_sec(3));
  EXPECT_EQ(events.now(), from_sec(3));
}

TEST_P(EventListTest, ScheduleAfterIdleRunUntil) {
  // run_until past all events must leave the scheduler able to accept an
  // event earlier than any slot it may have internally advanced to.
  Recorder r(events);
  events.run_until(from_sec(3));
  events.schedule_at(r, from_sec(3) + 1);
  events.run_all();
  ASSERT_EQ(r.fired.size(), 1u);
  EXPECT_EQ(r.fired[0], from_sec(3) + 1);
}

TEST_P(EventListTest, EventScheduledDuringDispatchRuns) {
  struct Chain : EventSource {
    Chain(EventList& e) : EventSource("chain"), events(e) {}
    void on_event() override {
      ++count;
      if (count < 5) events.schedule_in(*this, from_ms(1));
    }
    EventList& events;
    int count = 0;
  } chain(events);
  events.schedule_at(chain, from_ms(1));
  events.run_all();
  EXPECT_EQ(chain.count, 5);
  EXPECT_EQ(events.now(), from_ms(5));
}

TEST_P(EventListTest, ProcessedCounterCounts) {
  Recorder r(events);
  for (int i = 1; i <= 7; ++i) events.schedule_at(r, from_ms(i));
  events.run_all();
  EXPECT_EQ(events.events_processed(), 7u);
}

TEST_P(EventListTest, SameSourceMultiplePendingEvents) {
  Recorder r(events);
  events.schedule_at(r, from_ms(1));
  events.schedule_at(r, from_ms(1));
  events.schedule_at(r, from_ms(2));
  events.run_all();
  EXPECT_EQ(r.fired.size(), 3u);
}

TEST_P(EventListTest, FarFutureEventsFire) {
  // Beyond the wheel horizon (~8.6 s): must land in the overflow path and
  // still fire in order.
  Recorder r(events);
  events.schedule_at(r, from_sec(100));
  events.schedule_at(r, from_sec(10));
  events.schedule_at(r, from_ms(1));
  events.run_all();
  ASSERT_EQ(r.fired.size(), 3u);
  EXPECT_EQ(r.fired[0], from_ms(1));
  EXPECT_EQ(r.fired[1], from_sec(10));
  EXPECT_EQ(r.fired[2], from_sec(100));
  EXPECT_EQ(events.now(), from_sec(100));
}

TEST(EventList, SchedulerKindIsReported) {
  EventList heap(SchedulerKind::kHeap);
  EventList wheel(SchedulerKind::kWheel);
  EXPECT_EQ(heap.scheduler_kind(), SchedulerKind::kHeap);
  EXPECT_EQ(wheel.scheduler_kind(), SchedulerKind::kWheel);
}

TEST(TimeConversions, RoundTrip) {
  EXPECT_EQ(from_ms(100), 100'000'000);
  EXPECT_EQ(from_us(1.5), 1500);
  EXPECT_EQ(from_sec(2), 2'000'000'000);
  EXPECT_DOUBLE_EQ(to_sec(from_sec(2.5)), 2.5);
  EXPECT_DOUBLE_EQ(to_ms(from_ms(7)), 7.0);
  EXPECT_DOUBLE_EQ(to_us(from_us(9)), 9.0);
}

}  // namespace
}  // namespace mpsim
