// Fixture: an allow comment in a cold function suppresses nothing ->
// flagged by --check-stale-allows (and only then; the plain run is clean).
#include <vector>

struct ColdSetup {
  std::vector<int> table;

  void build() {
    // mpsim-analyze: allow(hot-alloc)
    table.push_back(1);
  }
};
