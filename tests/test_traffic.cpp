#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "sim_fixtures.hpp"
#include "topo/network.hpp"
#include "traffic/poisson_flows.hpp"
#include "traffic/traffic_matrix.hpp"

namespace mpsim::traffic {
namespace {

TEST(TrafficMatrix, PermutationIsDerangement) {
  Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    auto tm = permutation_tm(64, rng);
    ASSERT_EQ(tm.size(), 64u);
    std::set<int> srcs, dsts;
    for (const auto& f : tm) {
      EXPECT_NE(f.src, f.dst);
      srcs.insert(f.src);
      dsts.insert(f.dst);
    }
    EXPECT_EQ(srcs.size(), 64u) << "each host sends exactly once";
    EXPECT_EQ(dsts.size(), 64u) << "each host receives exactly once";
  }
}

TEST(TrafficMatrix, PermutationMinimumSize) {
  Rng rng(2);
  auto tm = permutation_tm(2, rng);
  ASSERT_EQ(tm.size(), 2u);
  EXPECT_EQ(tm[0].dst, 1);
  EXPECT_EQ(tm[1].dst, 0);
}

TEST(TrafficMatrix, OneToManyCountsAndDistinctness) {
  Rng rng(3);
  auto tm = one_to_many_tm(50, 12, rng);
  EXPECT_EQ(tm.size(), 600u);
  // Per-src destinations are distinct and never the src.
  for (int h = 0; h < 50; ++h) {
    std::set<int> dsts;
    for (const auto& f : tm) {
      if (f.src != h) continue;
      EXPECT_NE(f.dst, h);
      EXPECT_TRUE(dsts.insert(f.dst).second);
    }
    EXPECT_EQ(dsts.size(), 12u);
  }
}

TEST(TrafficMatrix, SparseFractionApproximatelyHonoured) {
  Rng rng(4);
  int total = 0;
  for (int trial = 0; trial < 50; ++trial) {
    total += static_cast<int>(sparse_tm(100, 0.3, rng).size());
  }
  EXPECT_NEAR(total / 50.0, 30.0, 3.0);
}

TEST(TrafficMatrix, SparseNeverSelfFlows) {
  Rng rng(5);
  for (const auto& f : sparse_tm(100, 1.0, rng)) EXPECT_NE(f.src, f.dst);
}

TEST(PoissonFlows, GeneratesAndCompletesFlows) {
  EventList events;
  topo::Network net(events);
  test::SingleLink link(net, 100e6, from_ms(5), 100 * net::kDataPacketBytes);

  PoissonConfig cfg;
  cfg.light_rate_per_sec = 20.0;
  cfg.heavy_rate_per_sec = 20.0;
  cfg.mean_flow_bytes = 100e3;
  PoissonFlowGenerator gen(
      events, "gen", cfg,
      [&](const std::string& name, std::uint64_t pkts) {
        mptcp::ConnectionConfig ccfg;
        ccfg.app_limit_pkts = pkts;
        auto conn = mptcp::make_single_path_tcp(events, name, link.fwd(),
                                                link.rev(), ccfg);
        conn->start(events.now());
        return conn;
      });
  gen.start(0);
  events.run_until(from_sec(10));
  // ~200 arrivals expected; the fast link drains them quickly.
  EXPECT_GT(gen.flows_started(), 120u);
  EXPECT_LT(gen.flows_started(), 300u);
  EXPECT_GT(gen.flows_completed(), gen.flows_started() * 8 / 10);
  EXPECT_EQ(gen.completion_times().size(), gen.flows_completed());
  for (SimTime fct : gen.completion_times()) EXPECT_GT(fct, 0);
}

TEST(PoissonFlows, AlternatingPhasesChangeArrivalRate) {
  EventList events;
  topo::Network net(events);
  test::SingleLink link(net, 1e9, from_ms(1), 1000 * net::kDataPacketBytes);
  PoissonConfig cfg;
  cfg.light_rate_per_sec = 5.0;
  cfg.heavy_rate_per_sec = 100.0;
  cfg.phase_duration = from_sec(5);
  PoissonFlowGenerator gen(
      events, "gen", cfg,
      [&](const std::string& name, std::uint64_t pkts) {
        mptcp::ConnectionConfig ccfg;
        ccfg.app_limit_pkts = pkts;
        auto conn = mptcp::make_single_path_tcp(events, name, link.fwd(),
                                                link.rev(), ccfg);
        conn->start(events.now());
        return conn;
      });
  gen.start(0);
  events.run_until(from_sec(5));
  const auto light = gen.flows_started();
  events.run_until(from_sec(10));
  const auto heavy = gen.flows_started() - light;
  EXPECT_GT(heavy, light * 5) << "heavy phase should arrive ~20x faster";
}

}  // namespace
}  // namespace mpsim::traffic
