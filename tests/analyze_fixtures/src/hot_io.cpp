// Fixture: blocking I/O inside a packet-delivery override -> hot-io.
#include <iostream>

struct Packet;

struct ChattySink {
  void receive(Packet& pkt) {
    std::cout << "got one\n";
    (void)pkt;
  }
};
