// PathManager: the policy layer owning a connection's subflow-set
// decisions (mptcp/path_manager.hpp). Strategies decide what to open at
// start, the threshold byte counter adds paths mid-transfer (htsim's
// SubflowControl trigger), and the scan loop declares RTO-dead subflows
// down, drops them, and re-probes after a backoff — all against a live
// connection whose coupled controller must only ever sweep active paths.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "cc/congestion_control.hpp"
#include "cc/ewtcp.hpp"
#include "cc/mptcp_lia.hpp"
#include "mptcp/connection.hpp"
#include "mptcp/path_manager.hpp"
#include "mptcp/scheduler.hpp"
#include "net/variable_rate_queue.hpp"
#include "sim_fixtures.hpp"
#include "topo/network.hpp"
#include "topo/two_link.hpp"

namespace mpsim {
namespace {

using mptcp::MptcpConnection;
using mptcp::PathManagerConfig;
using mptcp::PathStrategy;

topo::LinkSpec mid_link() {
  topo::LinkSpec spec;
  spec.rate_bps = 10e6;
  spec.one_way_delay = from_ms(10);
  spec.buf_bytes = topo::bdp_bytes(10e6, from_ms(20));
  return spec;
}

TEST(PathManager, FullMeshOpensEveryCandidateAtStart) {
  EventList events;
  topo::Network net(events);
  topo::TwoLink links(net, mid_link(), mid_link());
  MptcpConnection mp(events, "mp", cc::mptcp_lia());
  PathManagerConfig cfg;
  cfg.strategy = PathStrategy::kFullMesh;
  auto& pm = mp.attach_path_manager(cfg);
  pm.add_candidate(links.fwd(0), links.rev(0));
  pm.add_candidate(links.fwd(1), links.rev(1));
  EXPECT_EQ(mp.num_subflows(), 0u) << "nothing opens before start";

  mp.start(from_ms(5));
  events.run_until(from_sec(5));
  EXPECT_EQ(mp.num_subflows(), 2u);
  EXPECT_EQ(pm.subflows_opened(), 2u);
  // Both candidates actually carry data, not just exist.
  EXPECT_GT(mp.subflow(0).packets_acked(), 100u);
  EXPECT_GT(mp.subflow(1).packets_acked(), 100u);
}

TEST(PathManager, NDiffPortsCyclesCandidatesToReachN) {
  // ndiffports(3) over a single physical path: three 5-tuples, one link.
  EventList events;
  topo::Network net(events);
  test::SingleLink link(net, 10e6, from_ms(10),
                        topo::bdp_bytes(10e6, from_ms(20)));
  MptcpConnection mp(events, "mp", cc::mptcp_lia());
  PathManagerConfig cfg;
  cfg.strategy = PathStrategy::kNDiffPorts;
  cfg.ndiffports = 3;
  auto& pm = mp.attach_path_manager(cfg);
  pm.add_candidate(link.fwd(), link.rev());
  mp.start(0);
  events.run_until(from_sec(1));
  EXPECT_EQ(mp.num_subflows(), 3u);
  EXPECT_EQ(pm.subflows_opened(), 3u);
}

TEST(PathManager, NDiffPortsRespectsMaxSubflows) {
  EventList events;
  topo::Network net(events);
  test::SingleLink link(net, 10e6, from_ms(10),
                        topo::bdp_bytes(10e6, from_ms(20)));
  MptcpConnection mp(events, "mp", cc::mptcp_lia());
  PathManagerConfig cfg;
  cfg.strategy = PathStrategy::kNDiffPorts;
  cfg.ndiffports = 8;
  cfg.max_subflows = 2;
  auto& pm = mp.attach_path_manager(cfg);
  pm.add_candidate(link.fwd(), link.rev());
  mp.start(0);
  events.run_until(from_sec(1));
  EXPECT_EQ(mp.num_subflows(), 2u);
  EXPECT_EQ(pm.subflows_opened(), 2u);
}

TEST(PathManager, ThresholdAddsSecondPathAfterDeliveredBytes) {
  EventList events;
  topo::Network net(events);
  topo::TwoLink links(net, mid_link(), mid_link());
  MptcpConnection mp(events, "mp", cc::mptcp_lia());
  PathManagerConfig cfg;
  cfg.strategy = PathStrategy::kThreshold;
  cfg.add_threshold_bytes = 256 * 1024;
  cfg.max_subflows = 2;
  auto& pm = mp.attach_path_manager(cfg);
  pm.add_candidate(links.fwd(0), links.rev(0));
  pm.add_candidate(links.fwd(1), links.rev(1));
  mp.start(0);

  // At 10 Mb/s, 256 kB takes ~0.2 s; well before that only the first
  // candidate is open.
  events.run_until(from_ms(60));
  EXPECT_EQ(mp.num_subflows(), 1u) << "threshold starts single-path";

  events.run_until(from_sec(5));
  EXPECT_EQ(mp.num_subflows(), 2u)
      << "the byte counter must have opened the second candidate";
  EXPECT_GT(mp.subflow(1).packets_acked(), 100u)
      << "the added subflow joins the stripe, not just the roster";
  // max_subflows caps the growth even though delivered bytes keep
  // crossing multiples of the threshold.
  EXPECT_EQ(pm.subflows_opened(), 2u);
}

TEST(PathManager, ThresholdZeroNeverAdds) {
  EventList events;
  topo::Network net(events);
  topo::TwoLink links(net, mid_link(), mid_link());
  MptcpConnection mp(events, "mp", cc::mptcp_lia());
  PathManagerConfig cfg;
  cfg.strategy = PathStrategy::kThreshold;
  cfg.add_threshold_bytes = 0;  // adds disabled
  auto& pm = mp.attach_path_manager(cfg);
  pm.add_candidate(links.fwd(0), links.rev(0));
  pm.add_candidate(links.fwd(1), links.rev(1));
  mp.start(0);
  events.run_until(from_sec(5));
  EXPECT_EQ(mp.num_subflows(), 1u);
  EXPECT_EQ(pm.subflows_opened(), 1u);
}

// The full dead-path arc on a live connection: an outage on link 2 makes
// its subflow fire RTOs with no acked progress until the manager declares
// it dead and drops it (outstanding data reinjected on the survivor), then
// re-probes it after the backoff; once the link is back the re-probed
// subflow carries data again.
TEST(PathManager, RtoDeadSubflowIsDroppedAndReprobed) {
  EventList events;
  topo::Network net(events);
  auto l1 = net.add_link("l1", 10e6, from_ms(10),
                         topo::bdp_bytes(10e6, from_ms(20)));
  auto& a1 = net.add_pipe("a1", from_ms(10));
  auto l2 = net.add_variable_link("l2", 10e6, from_ms(10),
                                  topo::bdp_bytes(10e6, from_ms(20)));
  auto& a2 = net.add_pipe("a2", from_ms(10));
  auto& vq = *static_cast<net::VariableRateQueue*>(l2.queue);

  MptcpConnection mp(events, "mp", cc::mptcp_lia());
  PathManagerConfig cfg;
  cfg.strategy = PathStrategy::kFullMesh;
  cfg.dead_after_rtos = 2;
  cfg.reprobe_backoff = from_sec(1);
  cfg.scan_period = from_ms(100);
  auto& pm = mp.attach_path_manager(cfg);
  pm.add_candidate(topo::path_of({&l1}), {&a1});
  pm.add_candidate(topo::path_of({&l2}), {&a2});
  mp.start(0);

  events.run_until(from_sec(2));
  ASSERT_EQ(mp.num_active_subflows(), 2u);
  const auto survivor_before = mp.subflow(0).packets_acked();

  // Outage: with min_rto = 200 ms and exponential backoff the second
  // consecutive no-progress RTO lands ~2 s in, so a 4 s outage
  // comfortably covers detection at dead_after_rtos = 2.
  vq.set_rate(0.0);
  events.run_until(from_sec(6));
  // The drop -> backoff -> re-probe -> still-dead cycle may complete more
  // than once inside a 4 s outage; at least one full drop must have fired.
  // (Whether subflow 1 is *currently* active at the 6 s sample depends on
  // which phase of that cycle the instant lands in — a re-probe attempt
  // holds it nominally active until its RTOs declare it dead again — so
  // the cycle is asserted through the drop/re-probe counters instead.)
  EXPECT_GE(pm.subflows_dropped(), 1u);
  EXPECT_GT(mp.subflow(0).packets_acked(), survivor_before)
      << "the survivor must keep the stream moving through the outage";
  // The backoff (1 s) expires inside the 4 s outage, so at least one
  // re-probe has already been attempted (and found the path still dead).
  EXPECT_GE(pm.reprobes(), 1u);

  vq.set_rate(10e6);
  const auto dead_acked = mp.subflow(1).packets_acked();
  events.run_until(from_sec(12));
  EXPECT_EQ(mp.num_active_subflows(), 2u)
      << "a re-probe after recovery must restore the full path set";
  EXPECT_GT(mp.subflow(1).packets_acked(), dead_acked + 100u)
      << "the re-probed subflow must carry data again";
}

TEST(PathManager, NeverDropsTheLastActiveSubflow) {
  EventList events;
  topo::Network net(events);
  auto l1 = net.add_variable_link("l1", 10e6, from_ms(10),
                                  topo::bdp_bytes(10e6, from_ms(20)));
  auto& a1 = net.add_pipe("a1", from_ms(10));
  auto& vq = *static_cast<net::VariableRateQueue*>(l1.queue);

  MptcpConnection mp(events, "mp", cc::mptcp_lia());
  PathManagerConfig cfg;
  cfg.strategy = PathStrategy::kThreshold;
  cfg.add_threshold_bytes = 0;
  cfg.dead_after_rtos = 2;
  auto& pm = mp.attach_path_manager(cfg);
  pm.add_candidate(topo::path_of({&l1}), {&a1});
  mp.start(0);
  events.run_until(from_sec(1));
  ASSERT_EQ(mp.num_active_subflows(), 1u);

  // A long outage racks up far more stalled RTOs than dead_after_rtos,
  // but the sole subflow must stay in the set: a connection with zero
  // active subflows could never recover (and would trip the congestion
  // controller's at-least-one-active check).
  vq.set_rate(0.0);
  events.run_until(from_sec(15));
  EXPECT_EQ(pm.subflows_dropped(), 0u);
  EXPECT_EQ(mp.num_active_subflows(), 1u);
  EXPECT_GT(mp.subflow(0).timeouts(), cfg.dead_after_rtos);

  vq.set_rate(10e6);
  const auto acked = mp.subflow(0).packets_acked();
  events.run_until(from_sec(20));
  EXPECT_GT(mp.subflow(0).packets_acked(), acked)
      << "the kept subflow must resume on its own once the path heals";
}

// Eq. (1)'s sums range over the paths actually in use: a dropped subflow
// must vanish from every coupling sweep, and reappear on reactivation.
TEST(PathManager, DropExcludesSubflowFromCoupledSweeps) {
  EventList events;
  topo::Network net(events);
  topo::TwoLink links(net, mid_link(), mid_link());
  MptcpConnection mp(events, "mp", cc::ewtcp());
  mp.add_subflow(links.fwd(0), links.rev(0));
  mp.add_subflow(links.fwd(1), links.rev(1));
  mp.start(0);
  events.run_until(from_sec(5));

  ASSERT_EQ(cc::active_subflow_count(mp), 2u);
  const double both = cc::total_window(mp);
  EXPECT_DOUBLE_EQ(cc::ewtcp().weight_for(mp), 0.5);

  mp.drop_subflow(1, /*rto_dead=*/false);
  EXPECT_FALSE(mp.subflow_active(1));
  EXPECT_EQ(cc::active_subflow_count(mp), 1u);
  EXPECT_DOUBLE_EQ(cc::ewtcp().weight_for(mp), 1.0)
      << "EWTCP's 1/n must re-weight to the active count";
  EXPECT_DOUBLE_EQ(cc::total_window(mp), mp.cwnd_pkts(0))
      << "a dropped subflow's frozen window must not dilute the total";
  EXPECT_LT(cc::total_window(mp), both);

  mp.reactivate_subflow(1);
  EXPECT_EQ(cc::active_subflow_count(mp), 2u);
  EXPECT_DOUBLE_EQ(cc::ewtcp().weight_for(mp), 0.5);
  events.run_until(from_sec(10));
  EXPECT_GT(mp.subflow(1).packets_acked(), 100u);
}

// Regression (pre-fix this failed): data seqs queued for reinjection on a
// subflow that then dies — or that the receiver meanwhile acknowledges via
// another subflow — used to pin their reinject_pending_ entries forever,
// because nothing purged the queue when no next_data() pull ever drained
// it. The scheduler now purges stale entries on every cum-ACK advance and
// on subflow reset/drop.
TEST(DataSchedulerPurge, AckAdvanceReleasesStaleReinjections) {
  mptcp::DataScheduler s(/*app_limit_pkts=*/100, /*initial_window=*/1000);
  std::uint64_t seq = 0;
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(s.next_data(seq));

  s.reinject({3, 4, 5});
  EXPECT_EQ(s.reinject_backlog(), 3u);

  // The receiver gets everything up to 10 via another subflow; no sender
  // ever pulls the queued seqs. Pre-fix, the backlog stayed at 3 forever.
  s.on_data_ack(10, 1000);
  EXPECT_EQ(s.reinject_backlog(), 0u);
  EXPECT_EQ(s.purged_total(), 3u);
}

TEST(DataSchedulerPurge, PurgeKeepsEntriesStillWorthSending) {
  mptcp::DataScheduler s(/*app_limit_pkts=*/100, /*initial_window=*/1000);
  std::uint64_t seq = 0;
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(s.next_data(seq));

  s.reinject({3, 4, 5});
  s.on_data_ack(5, 1000);  // 3 and 4 retired; 5 still outstanding
  EXPECT_EQ(s.reinject_backlog(), 1u);
  EXPECT_EQ(s.purged_total(), 2u);

  // The surviving entry is handed out first, ahead of fresh data.
  ASSERT_TRUE(s.next_data(seq));
  EXPECT_EQ(seq, 5u);

  // Explicit purge (the drop/reset path) on an already-clean queue is a
  // no-op, and the duplicate filter accepts the seq again if it is still
  // unacked (a genuine re-reinjection after a second subflow death).
  EXPECT_EQ(s.purge_acked(), 0u);
  s.reinject({5});
  EXPECT_EQ(s.reinject_backlog(), 1u);
}

TEST(DataSchedulerPurge, DropPathPurgesWithoutWaitingForNextAck) {
  // drop_subflow() purges eagerly so a dying subflow cannot leave acked
  // seqs queued during the (possibly long) gap until the next cum-ACK
  // advance — the connection-level half of the regression above.
  EventList events;
  topo::Network net(events);
  topo::LinkSpec spec;
  spec.rate_bps = 10e6;
  spec.one_way_delay = from_ms(10);
  spec.buf_bytes = topo::bdp_bytes(10e6, from_ms(20));
  topo::TwoLink links(net, spec, spec);
  MptcpConnection mp(events, "mp", cc::mptcp_lia());
  mp.add_subflow(links.fwd(0), links.rev(0));
  mp.add_subflow(links.fwd(1), links.rev(1));
  mp.start(0);
  events.run_until(from_sec(5));

  mp.drop_subflow(1, /*rto_dead=*/true);
  events.run_until(from_sec(10));
  // Whatever was reinjected at the drop has been pulled or purged; no
  // stale entry may linger once the stream has advanced far past it.
  EXPECT_EQ(mp.scheduler().reinject_backlog(), 0u);
}

}  // namespace
}  // namespace mpsim
