// Quickstart: the smallest useful mpsim program.
//
// Build a client with two independent 10 Mb/s paths to a server, run a
// regular TCP on one path and an MPTCP connection over both, and compare
// goodput. Shows the three core steps of the public API:
//
//   1. build a Network (queues/pipes) inside an EventList,
//   2. create connections (congestion control is a pluggable constant),
//   3. run the event loop and read the counters.
//
// Run: ./quickstart
#include <cstdio>

#include "cc/mptcp_lia.hpp"
#include "example_trace.hpp"
#include "mptcp/connection.hpp"
#include "stats/monitors.hpp"
#include "topo/network.hpp"
#include "topo/two_link.hpp"

int main() {
  using namespace mpsim;

  EventList events;
  examples::ExampleTrace et(events, "quickstart");
  topo::Network net(events);

  // Two 10 Mb/s links, 20 ms RTT each, one bandwidth-delay product of
  // buffering (the classic sweet spot for NewReno).
  topo::LinkSpec spec;
  spec.rate_bps = 10e6;
  spec.one_way_delay = from_ms(10);
  spec.buf_bytes = topo::bdp_bytes(spec.rate_bps, from_ms(20));
  topo::TwoLink links(net, spec, spec);

  // A regular TCP using only link 0.
  auto tcp = mptcp::make_single_path_tcp(events, "plain-tcp", links.fwd(0),
                                         links.rev(0));

  // An MPTCP connection striping over both links with the paper's coupled
  // congestion control (eq. (1), "LIA").
  mptcp::MptcpConnection mptcp(events, "mptcp", cc::mptcp_lia());
  mptcp.add_subflow(links.fwd(0), links.rev(0));
  mptcp.add_subflow(links.fwd(1), links.rev(1));

  tcp->start(0);
  mptcp.start(0);

  // Simulate 30 seconds.
  events.run_until(from_sec(30));

  std::printf("after 30 simulated seconds:\n");
  std::printf("  plain TCP (link 0 only): %6.2f Mb/s\n",
              tcp->delivered_mbps(from_sec(30)));
  std::printf("  MPTCP (links 0 + 1):     %6.2f Mb/s\n",
              mptcp.delivered_mbps(from_sec(30)));
  std::printf("  MPTCP subflow windows:   %.1f / %.1f packets\n",
              mptcp.subflow(0).cwnd(), mptcp.subflow(1).cwnd());
  std::printf(
      "\nNote how MPTCP shares link 0 fairly with the TCP flow while also "
      "filling the idle link 1: its total is ~1.5x the bottleneck rate, "
      "not 2x.\n");
  return 0;
}
