// Server load-balancer churn — Fig. 10's dual-homed server generalized to
// a full flow-lifecycle workload (examples/scenarios/server_lb_churn.toml
// is the scenario-engine twin of this harness).
//
// Poisson arrivals of finite multipath transfers (Pareto sizes) churn
// against persistent background load: one single-path TCP pinned to each
// link plus a long-lived multipath connection. Every multipath connection
// is driven by a threshold PathManager (start single-path, add the second
// link per delivered bytes); a scripted outage on link 2 forces the full
// drop -> backoff -> re-probe arc mid-run. Completed arrivals are
// reclaimed once their wire-reference ledger drains, so the live
// connection population — and the packet pool's peak — stays bounded by
// the offered load, not the all-time flow count. That makes this the
// perf-tracking bench for the lifecycle layer: events/s measures the
// open/close machinery at churn scale, peak_pool_packets regresses if
// reclamation (or the pool conservation it relies on) breaks.
//
// Multi-seed on the ExperimentRunner; per-run wall/events metrics and the
// churn counters go to BENCH_churn_lb.json (gated by tools/bench_diff.py).
#include <memory>
#include <string>
#include <vector>

#include "cc/mptcp_lia.hpp"
#include "harness.hpp"
#include "mptcp/path_manager.hpp"
#include "net/variable_rate_queue.hpp"
#include "topo/network.hpp"
#include "traffic/poisson_flows.hpp"

namespace mpsim {
namespace {

struct Result {
  double mp_mbps = 0.0;        // long-lived multipath goodput over measure
  double mean_fct_ms = 0.0;    // mean churn-flow completion time
  double started = 0.0;
  double reclaimed = 0.0;
  double subflows_added = 0.0;
  double subflows_dropped = 0.0;
  double reprobes = 0.0;
};

Result run(EventList& events, std::uint64_t arrival_seed) {
  // All durations stretched 4x beyond the usual bench timeline: each run
  // must stay long enough (hundreds of ms of wall time even at
  // MPSIM_BENCH_SCALE=0.1) that events_per_sec is not dominated by CPU
  // frequency-ramp noise — the gate compares per run at +-10%.
  const auto T = [](double sec) { return bench::scaled(4.0 * sec); };
  topo::Network net(events);
  auto l1 = net.add_link("l1", 400e6, from_ms(5),
                         topo::bdp_bytes(400e6, from_ms(10)));
  auto& a1 = net.add_pipe("a1", from_ms(5));
  auto l2 = net.add_variable_link("l2", 400e6, from_ms(5),
                                  topo::bdp_bytes(400e6, from_ms(10)));
  auto& a2 = net.add_pipe("a2", from_ms(5));
  auto& vq = *static_cast<net::VariableRateQueue*>(l2.queue);

  mptcp::PathManagerConfig pm_cfg;
  pm_cfg.strategy = mptcp::PathStrategy::kThreshold;
  pm_cfg.add_threshold_bytes = 64 * 1024;
  pm_cfg.max_subflows = 2;
  pm_cfg.scan_period = from_ms(50);
  pm_cfg.reprobe_backoff = from_ms(500);
  pm_cfg.dead_after_rtos = 2;

  auto make_mp = [&](const std::string& name, std::uint64_t pkts) {
    mptcp::ConnectionConfig cfg;
    cfg.app_limit_pkts = pkts;
    // Short RTO floor so dead-path detection fits inside the scaled
    // outage (the floor only binds during total loss).
    cfg.subflow.min_rto = from_ms(50);
    auto conn = std::make_unique<mptcp::MptcpConnection>(events, name,
                                                         cc::mptcp_lia(), cfg);
    auto& pm = conn->attach_path_manager(pm_cfg);
    pm.add_candidate(topo::path_of({&l1}), {&a1});
    pm.add_candidate(topo::path_of({&l2}), {&a2});
    return conn;
  };

  traffic::PoissonConfig pcfg;
  pcfg.light_rate_per_sec = 100.0;
  pcfg.heavy_rate_per_sec = 200.0;
  pcfg.phase_duration = T(5);
  pcfg.mean_flow_bytes = 150e3;
  pcfg.seed = arrival_seed;
  traffic::PoissonFlowGenerator gen(
      events, "churn", pcfg,
      [&](const std::string& name, std::uint64_t pkts) {
        auto conn = make_mp(name, pkts);
        conn->start(events.now());
        return conn;
      });

  Result r;
  gen.on_reclaim = [&](mptcp::MptcpConnection& c) {
    if (const auto* pm = c.path_manager()) {
      r.subflows_added += static_cast<double>(pm->subflows_opened());
      r.subflows_dropped += static_cast<double>(pm->subflows_dropped());
      r.reprobes += static_cast<double>(pm->reprobes());
    }
  };

  auto tcp1 = mptcp::make_single_path_tcp(events, "tcp1", topo::path_of({&l1}),
                                          {&a1});
  auto tcp2 = mptcp::make_single_path_tcp(events, "tcp2", topo::path_of({&l2}),
                                          {&a2});
  auto mp_bg = make_mp("mp_bg", 0);  // long-lived

  gen.start(0);
  tcp1->start(from_ms(3));
  tcp2->start(from_ms(5));
  mp_bg->start(from_ms(7));

  // Warmup, then measure across a scripted link-2 outage.
  const SimTime t_meas0 = T(2);
  events.run_until(t_meas0);
  const auto bg0 = mp_bg->delivered_pkts();

  events.run_until(T(8));
  vq.set_rate(0.0);
  events.run_until(T(13));
  vq.set_rate(400e6);

  const SimTime t_end = T(22);
  events.run_until(t_end);
  events.cancel(gen);           // stop admitting; drain what is in flight
  events.run_until(t_end + T(3));
  gen.reclaim_completed();

  r.mp_mbps = stats::pkts_to_mbps(mp_bg->delivered_pkts() - bg0,
                                  t_end - t_meas0);
  double fct_sum = 0.0;
  for (SimTime t : gen.completion_times()) fct_sum += to_sec(t);
  r.mean_fct_ms = gen.completion_times().empty()
                      ? 0.0
                      : 1e3 * fct_sum /
                            static_cast<double>(gen.completion_times().size());
  r.started = static_cast<double>(gen.flows_started());
  r.reclaimed = static_cast<double>(gen.flows_reclaimed());
  // Fold in the long-lived connection's manager (never reclaimed).
  if (const auto* pm = mp_bg->path_manager()) {
    r.subflows_added += static_cast<double>(pm->subflows_opened());
    r.subflows_dropped += static_cast<double>(pm->subflows_dropped());
    r.reprobes += static_cast<double>(pm->reprobes());
  }
  return r;
}

}  // namespace
}  // namespace mpsim

int main() {
  using namespace mpsim;
  bench::banner(
      "server LB churn: Poisson multipath arrivals (Pareto 150 kB) with a "
      "threshold PathManager, persistent per-link TCPs + long-lived "
      "multipath, scripted link-2 outage",
      "generalizes Fig. 10; lifecycle layer under load (adds, drops, "
      "re-probes, reclamation)");

  const int nseeds = bench::env_seeds(4);
  std::vector<Result> per_seed(static_cast<std::size_t>(nseeds));

  runner::RunnerConfig rcfg;
  rcfg.threads = bench::env_threads();
  runner::ExperimentRunner exp(rcfg);
  for (int k = 0; k < nseeds; ++k) {
    const std::uint64_t seed = 1 + static_cast<std::uint64_t>(k);
    exp.add("seed" + std::to_string(seed),
            [&per_seed, k, seed](runner::RunContext& ctx) {
              ctx.annotate("arrival_seed", std::to_string(seed));
              ctx.annotate("traffic", "churn_pareto_150kB");
              const Result r = run(ctx.events(), seed);
              per_seed[static_cast<std::size_t>(k)] = r;
              ctx.record("mp_bg_mbps", r.mp_mbps);
              ctx.record("mean_fct_ms", r.mean_fct_ms);
              ctx.record("flows_started", r.started);
              ctx.record("flows_reclaimed", r.reclaimed);
              ctx.record("subflows_added", r.subflows_added);
              ctx.record("subflows_dropped", r.subflows_dropped);
              ctx.record("subflow_reprobes", r.reprobes);
            });
  }
  // Untracked warmup: absorb the process-start CPU frequency ramp so the
  // tracked runs' events_per_sec is comparable across invocations (the
  // per-run gate in tools/bench_diff.py is ±10%, the ramp alone is worth
  // more than that on a cold core).
  for (int w = 0; w < 3; ++w) {
    EventList warm;
    (void)run(warm, 999);
  }

  const auto results = exp.run_all();

  stats::Table seeds({"seed", "bg Mb/s", "mean FCT ms", "flows", "reclaimed",
                      "adds", "drops", "reprobes"});
  Result mean;
  for (int k = 0; k < nseeds; ++k) {
    const Result& r = per_seed[static_cast<std::size_t>(k)];
    seeds.add_row(std::to_string(1 + k),
                  {r.mp_mbps, r.mean_fct_ms, r.started, r.reclaimed,
                   r.subflows_added, r.subflows_dropped, r.reprobes},
                  1);
    mean.mp_mbps += r.mp_mbps;
    mean.mean_fct_ms += r.mean_fct_ms;
    mean.started += r.started;
    mean.reclaimed += r.reclaimed;
    mean.subflows_added += r.subflows_added;
    mean.subflows_dropped += r.subflows_dropped;
    mean.reprobes += r.reprobes;
  }
  mean.mp_mbps /= nseeds;
  mean.mean_fct_ms /= nseeds;
  mean.started /= nseeds;
  mean.reclaimed /= nseeds;
  mean.subflows_added /= nseeds;
  mean.subflows_dropped /= nseeds;
  mean.reprobes /= nseeds;
  seeds.print();

  std::printf("\nexpected shape: every seed shows adds > flows (threshold "
              "opens), drops >= 1 and reprobes >= 1 (outage arc), and "
              "reclaimed tracking flows started\n");

  std::printf("\nrunner: %d runs on %u threads, %.2fs total run wall, "
              "%.3g events/s aggregate\n",
              nseeds, exp.resolved_threads(),
              runner::total_wall_seconds(results),
              runner::total_wall_seconds(results) > 0
                  ? static_cast<double>(runner::total_events(results)) /
                        runner::total_wall_seconds(results)
                  : 0.0);

  bench::Json root = bench::Json::object();
  root.set("bench", "churn_lb");
  root.set("seeds", static_cast<double>(nseeds));
  root.set("threads", static_cast<double>(exp.resolved_threads()));
  bench::Json means = bench::Json::object();
  means.set("mp_bg_mbps", mean.mp_mbps);
  means.set("mean_fct_ms", mean.mean_fct_ms);
  means.set("flows_started", mean.started);
  means.set("flows_reclaimed", mean.reclaimed);
  means.set("subflows_added", mean.subflows_added);
  means.set("subflows_dropped", mean.subflows_dropped);
  means.set("subflow_reprobes", mean.reprobes);
  root.set("mean", std::move(means));
  root.set("sum_run_wall_seconds", runner::total_wall_seconds(results));
  root.set("runs", bench::json_from_results(results));
  bench::write_bench_json("churn_lb", root);
  return 0;
}
