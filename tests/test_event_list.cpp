#include "core/event_list.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/check.hpp"

namespace mpsim {
namespace {

// Records the times it was fired at.
class Recorder : public EventSource {
 public:
  explicit Recorder(EventList& events, std::string name = "rec")
      : EventSource(events, std::move(name)), events_(events) {}
  void on_event() override { fired.push_back(events_.now()); }
  std::vector<SimTime> fired;

 private:
  EventList& events_;
};

// Every EventList behaviour must hold identically under all scheduler
// backends, so the suite is parameterized over SchedulerKind. The
// adaptive instance additionally forces tiny hysteresis thresholds so
// even these small workloads cross a migration or two mid-test.
class EventListTest : public ::testing::TestWithParam<SchedulerKind> {
 protected:
  EventListTest() : events(GetParam()) {
    if (GetParam() == SchedulerKind::kAdaptive) {
      events.set_adaptive_policy(/*high=*/4, /*low=*/1, /*cooldown=*/0);
    }
  }
  EventList events;
};

INSTANTIATE_TEST_SUITE_P(Schedulers, EventListTest,
                         ::testing::Values(SchedulerKind::kHeap,
                                           SchedulerKind::kWheel,
                                           SchedulerKind::kAdaptive),
                         [](const auto& info) {
                           switch (info.param) {
                             case SchedulerKind::kHeap: return "Heap";
                             case SchedulerKind::kWheel: return "Wheel";
                             default: return "Adaptive";
                           }
                         });

TEST_P(EventListTest, StartsAtTimeZero) {
  EXPECT_EQ(events.now(), 0);
  EXPECT_TRUE(events.empty());
}

TEST_P(EventListTest, RunOneAdvancesClockToEventTime) {
  Recorder r(events);
  events.schedule_at(r, from_ms(5));
  EXPECT_TRUE(events.run_one());
  EXPECT_EQ(events.now(), from_ms(5));
  ASSERT_EQ(r.fired.size(), 1u);
  EXPECT_EQ(r.fired[0], from_ms(5));
}

TEST_P(EventListTest, RunOneOnEmptyReturnsFalse) {
  EXPECT_FALSE(events.run_one());
}

TEST_P(EventListTest, EventsFireInTimeOrder) {
  Recorder r(events);
  events.schedule_at(r, from_ms(30));
  events.schedule_at(r, from_ms(10));
  events.schedule_at(r, from_ms(20));
  events.run_all();
  ASSERT_EQ(r.fired.size(), 3u);
  EXPECT_EQ(r.fired[0], from_ms(10));
  EXPECT_EQ(r.fired[1], from_ms(20));
  EXPECT_EQ(r.fired[2], from_ms(30));
}

TEST_P(EventListTest, TiesBreakInCanonicalSourceOrder) {
  Recorder a(events, "a"), b(events, "b"), c(events, "c");
  // Same-time ties dispatch by the canonical (source order id, per-source
  // seq) key: source construction order wins, NOT global insertion order.
  // That key is a pure function of the simulation's construction and
  // dispatch history — never of which thread or shard ran schedule_at —
  // which is what makes sharded execution byte-identical to sequential.
  events.schedule_at(b, from_ms(1));
  events.schedule_at(a, from_ms(1));
  events.schedule_at(c, from_ms(1));
  // Recorders record times only, so instead drive one at a time.
  EXPECT_TRUE(events.run_one());
  EXPECT_EQ(a.fired.size(), 1u) << "a constructed first wins the tie";
  EXPECT_TRUE(events.run_one());
  EXPECT_EQ(b.fired.size(), 1u);
  EXPECT_TRUE(events.run_one());
  EXPECT_EQ(c.fired.size(), 1u);
}

TEST_P(EventListTest, SameSourceTiesBreakInScheduleOrder) {
  // Within one source the per-source counter preserves FIFO: two events
  // at the same instant fire in the order they were scheduled.
  struct Tagged : EventSource {
    Tagged(EventList& e, std::vector<int>& log) :
        EventSource(e, "tagged"), log_(log) {}
    void on_event() override { log_.push_back(next_tag_++); }
    std::vector<int>& log_;
    int next_tag_ = 0;
  };
  std::vector<int> log;
  Tagged t(events, log);
  events.schedule_at(t, from_ms(1));
  events.schedule_at(t, from_ms(1));
  events.schedule_at(t, from_ms(1));
  events.run_all();
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log[0], 0);
  EXPECT_EQ(log[1], 1);
  EXPECT_EQ(log[2], 2);
}

TEST_P(EventListTest, ScheduleInIsRelativeToNow) {
  Recorder r(events);
  events.schedule_at(r, from_ms(10));
  events.run_one();
  events.schedule_in(r, from_ms(5));
  events.run_one();
  ASSERT_EQ(r.fired.size(), 2u);
  EXPECT_EQ(r.fired[1], from_ms(15));
}

TEST_P(EventListTest, RunUntilStopsAtBoundaryInclusive) {
  Recorder r(events);
  events.schedule_at(r, from_ms(10));
  events.schedule_at(r, from_ms(20));
  events.schedule_at(r, from_ms(30));
  events.run_until(from_ms(20));
  EXPECT_EQ(r.fired.size(), 2u);
  EXPECT_EQ(events.now(), from_ms(20));
  EXPECT_EQ(events.pending(), 1u);
}

TEST_P(EventListTest, RunUntilAdvancesClockEvenWhenIdle) {
  events.run_until(from_sec(3));
  EXPECT_EQ(events.now(), from_sec(3));
}

TEST_P(EventListTest, ScheduleAfterIdleRunUntil) {
  // run_until past all events must leave the scheduler able to accept an
  // event earlier than any slot it may have internally advanced to.
  Recorder r(events);
  events.run_until(from_sec(3));
  events.schedule_at(r, from_sec(3) + 1);
  events.run_all();
  ASSERT_EQ(r.fired.size(), 1u);
  EXPECT_EQ(r.fired[0], from_sec(3) + 1);
}

TEST_P(EventListTest, EventScheduledDuringDispatchRuns) {
  struct Chain : EventSource {
    Chain(EventList& e) : EventSource(e, "chain"), events(e) {}
    void on_event() override {
      ++count;
      if (count < 5) events.schedule_in(*this, from_ms(1));
    }
    EventList& events;
    int count = 0;
  } chain(events);
  events.schedule_at(chain, from_ms(1));
  events.run_all();
  EXPECT_EQ(chain.count, 5);
  EXPECT_EQ(events.now(), from_ms(5));
}

TEST_P(EventListTest, ProcessedCounterCounts) {
  Recorder r(events);
  for (int i = 1; i <= 7; ++i) events.schedule_at(r, from_ms(i));
  events.run_all();
  EXPECT_EQ(events.events_processed(), 7u);
}

TEST_P(EventListTest, SameSourceMultiplePendingEvents) {
  Recorder r(events);
  events.schedule_at(r, from_ms(1));
  events.schedule_at(r, from_ms(1));
  events.schedule_at(r, from_ms(2));
  events.run_all();
  EXPECT_EQ(r.fired.size(), 3u);
}

TEST_P(EventListTest, FarFutureEventsFire) {
  // Beyond the wheel horizon (~8.6 s): must land in the overflow path and
  // still fire in order.
  Recorder r(events);
  events.schedule_at(r, from_sec(100));
  events.schedule_at(r, from_sec(10));
  events.schedule_at(r, from_ms(1));
  events.run_all();
  ASSERT_EQ(r.fired.size(), 3u);
  EXPECT_EQ(r.fired[0], from_ms(1));
  EXPECT_EQ(r.fired[1], from_sec(10));
  EXPECT_EQ(r.fired[2], from_sec(100));
  EXPECT_EQ(events.now(), from_sec(100));
}

TEST(EventList, SchedulerKindIsReported) {
  EventList heap(SchedulerKind::kHeap);
  EventList wheel(SchedulerKind::kWheel);
  EventList adaptive(SchedulerKind::kAdaptive);
  EXPECT_EQ(heap.scheduler_kind(), SchedulerKind::kHeap);
  EXPECT_EQ(wheel.scheduler_kind(), SchedulerKind::kWheel);
  EXPECT_EQ(adaptive.scheduler_kind(), SchedulerKind::kAdaptive);
  // The active backend is distinct from the mode: adaptive starts sparse,
  // hence on the heap.
  EXPECT_EQ(heap.active_backend(), SchedulerKind::kHeap);
  EXPECT_EQ(wheel.active_backend(), SchedulerKind::kWheel);
  EXPECT_EQ(adaptive.active_backend(), SchedulerKind::kHeap);
  EXPECT_STREQ(to_string(SchedulerKind::kAdaptive), "adaptive");
}

// Force the hysteresis thresholds low and drive occupancy across them in
// both directions mid-run, under throwing checks so any internal
// invariant breach (lost event, misordered migration) aborts the test.
TEST(EventList, AdaptiveCrossesHysteresisBothDirections) {
  ScopedThrowingChecks guard;
  EventList events(SchedulerKind::kAdaptive);
  events.set_adaptive_policy(/*high=*/8, /*low=*/2, /*cooldown=*/0);
  Recorder r(events);

  // Fill to just below the high-water mark: still on the heap.
  for (int i = 1; i <= 7; ++i) events.schedule_at(r, from_ms(i));
  EXPECT_EQ(events.active_backend(), SchedulerKind::kHeap);
  EXPECT_EQ(events.scheduler_switches(), 0u);

  // The 8th pending event crosses high water: migrate heap -> wheel.
  events.schedule_at(r, from_ms(8));
  EXPECT_EQ(events.active_backend(), SchedulerKind::kWheel);
  EXPECT_EQ(events.scheduler_switches(), 1u);

  // Drain down to the low-water mark: migrate wheel -> heap, and every
  // event must still fire exactly once, in time order.
  events.run_all();
  EXPECT_EQ(events.active_backend(), SchedulerKind::kHeap);
  EXPECT_EQ(events.scheduler_switches(), 2u);
  ASSERT_EQ(r.fired.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(r.fired[i], from_ms(i + 1));
}

// The cooldown suppresses migration thrash: with a large cooldown the
// first switch happens but an immediate re-crossing does not switch back.
TEST(EventList, AdaptiveCooldownSuppressesThrash) {
  ScopedThrowingChecks guard;
  EventList events(SchedulerKind::kAdaptive);
  events.set_adaptive_policy(/*high=*/4, /*low=*/2,
                             /*cooldown=*/1'000'000);
  Recorder r(events);
  for (int i = 1; i <= 4; ++i) events.schedule_at(r, from_ms(i));
  EXPECT_EQ(events.active_backend(), SchedulerKind::kWheel);
  EXPECT_EQ(events.scheduler_switches(), 1u);
  events.run_all();
  // Occupancy fell to zero, but the cooldown (measured in processed
  // events) blocks the downswitch.
  EXPECT_EQ(events.active_backend(), SchedulerKind::kWheel);
  EXPECT_EQ(events.scheduler_switches(), 1u);
  ASSERT_EQ(r.fired.size(), 4u);
}

// Events migrated heap -> wheel keep their canonical tie-break: same-time
// events still fire in (source order id, per-source seq) order even though
// the migration re-inserted them in heap-pop order.
TEST(EventList, AdaptiveMigrationPreservesTieOrder) {
  ScopedThrowingChecks guard;
  EventList events(SchedulerKind::kAdaptive);
  events.set_adaptive_policy(/*high=*/3, /*low=*/1, /*cooldown=*/0);
  Recorder a(events, "a"), b(events, "b"), c(events, "c");
  events.schedule_at(b, from_ms(1));
  events.schedule_at(a, from_ms(1));
  events.schedule_at(c, from_ms(1));  // third insert triggers migration
  EXPECT_EQ(events.active_backend(), SchedulerKind::kWheel);
  EXPECT_TRUE(events.run_one());
  EXPECT_EQ(a.fired.size(), 1u) << "a constructed first wins the tie";
  EXPECT_TRUE(events.run_one());
  EXPECT_EQ(b.fired.size(), 1u);
  EXPECT_TRUE(events.run_one());
  EXPECT_EQ(c.fired.size(), 1u);
}

TEST(TimeConversions, RoundTrip) {
  EXPECT_EQ(from_ms(100), 100'000'000);
  EXPECT_EQ(from_us(1.5), 1500);
  EXPECT_EQ(from_sec(2), 2'000'000'000);
  EXPECT_DOUBLE_EQ(to_sec(from_sec(2.5)), 2.5);
  EXPECT_DOUBLE_EQ(to_ms(from_ms(7)), 7.0);
  EXPECT_DOUBLE_EQ(to_us(from_us(9)), 9.0);
}

}  // namespace
}  // namespace mpsim
