#include "cc/rfc6356.hpp"

#include <algorithm>

#include "core/check.hpp"

namespace mpsim::cc {

double Rfc6356::alpha(const ConnectionView& c) {
  double max_term = 0.0;
  double sum_term = 0.0;
  for (std::size_t r = 0; r < c.num_subflows(); ++r) {
    if (!c.subflow_active(r)) continue;
    const double w = c.cwnd_pkts(r);
    const double rtt = c.srtt_sec(r);
    max_term = std::max(max_term, w / (rtt * rtt));
    sum_term += w / rtt;
  }
  return total_window(c) * max_term / (sum_term * sum_term);
}

double Rfc6356::increase_per_ack(const ConnectionView& c,
                                 std::size_t r) const {
  const double a = alpha(c);
  MPSIM_CHECK(a > 0.0, "RFC 6356 alpha must be positive");
  return std::min(a / total_window(c), 1.0 / c.cwnd_pkts(r));
}

double Rfc6356::window_after_loss(const ConnectionView& c,
                                  std::size_t r) const {
  return c.cwnd_pkts(r) / 2.0;
}

const Rfc6356& rfc6356() {
  static const Rfc6356 instance;
  return instance;
}

}  // namespace mpsim::cc
