// BALIA — the Balanced Linked Adaptation algorithm (Peng, Walid, Hares,
// Low; RFC-draft and the kernel study arXiv 1812.03210). With per-path
// rate x_p = w_p / rtt_p and imbalance factor
//
//   alpha_r = max_p(x_p) / x_r            (>= 1; 1 on the fastest path)
//
// the per-ACK increase and per-loss decrease on path r are
//
//   w_r += ( x_r / (rtt_r * (sum_p x_p)^2) )
//          * (1 + alpha_r)/2 * (4 + alpha_r)/5
//   w_r -= w_r * min(alpha_r, 1.5) / 2    on loss
//
// The design theorem: the increase is at most 1/w_r for every alpha >= 1
// (TCP-friendliness), the decrease is between w/2 and 3w/4, and the pair
// balances responsiveness against window oscillation — the deficiency of
// LIA/OLIA the authors set out to fix. With one path, alpha = 1 and both
// rules reduce exactly to Reno's 1/w and w/2.
#pragma once

#include "cc/congestion_control.hpp"

namespace mpsim::cc {

class Balia : public CongestionControl {
 public:
  double increase_per_ack(const ConnectionView& c,
                          std::size_t r) const override;
  double window_after_loss(const ConnectionView& c,
                           std::size_t r) const override;
  std::string name() const override { return "BALIA"; }
};

const Balia& balia();

}  // namespace mpsim::cc
