// The scenario engine: spec file -> expanded run grid -> ExperimentRunner.
//
// A Scenario wraps one parsed spec. expand() turns its [sweep] axes (cross
// product, declaration order) and [run] seeds into a flat list of
// ResolvedRuns, each a fully-substituted copy of the spec with a unique
// name like "fig8_torus/algorithm.kind=coupled,topology.cap_c=100/s1".
// run() executes the grid on an ExperimentRunner — runs are byte-identical
// to building the same simulation directly in C++ (the round-trip tests
// pin this) and to any other thread count. validate() dry-builds every
// grid point: topology, algorithm and traffic are constructed and every
// spec key type-checked, but no simulated time elapses.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "runner/experiment_runner.hpp"
#include "scenario/spec.hpp"
#include "trace/sinks.hpp"

namespace mpsim::scenario {

// One point of the expanded grid.
struct ResolvedRun {
  Spec spec;  // the base spec with this point's sweep values substituted
  std::string name;
  std::uint64_t seed = 1;
  // Sweep-point parameters as "section.key" -> rendered value, in axis
  // declaration order (the machine-readable echo for per-run JSON).
  std::vector<std::pair<std::string, std::string>> point;
};

struct EngineOptions {
  unsigned threads = 0;       // 0 = hardware concurrency
  double time_scale = 1.0;    // scales [run] warmup/measure and schedules
  // Shards per simulation (CLI --shard-threads): conservative parallel
  // DES inside each run, byte-identical to shard_threads = 1.
  int shard_threads = 1;
  // Trace emission for every run (CLI --trace / [output] trace).
  trace::SinkKind trace_sink = trace::SinkKind::kNone;
  std::string trace_dir = ".";
  std::size_t trace_capacity = 0;
};

class Scenario {
 public:
  static Scenario load(const std::string& path);
  static Scenario from_string(const std::string& text,
                              const std::string& file);

  const std::string& name() const { return name_; }
  const Spec& spec() const { return spec_; }

  // The full run grid: sweep cross product x seeds. Throws SpecError on an
  // empty sweep axis or an axis naming a missing section/key.
  std::vector<ResolvedRun> expand() const;

  // Dry-build every grid point (topology + algorithm + traffic + outputs),
  // rejecting unknown keys/kinds and malformed values. Throws SpecError.
  void validate(double time_scale = 1.0) const;

  // Execute the grid. Throws SpecError for spec-level failures.
  std::vector<runner::RunResult> run(const EngineOptions& opts) const;

  // Trace sink requested by [output] trace ("csv"/"jsonl"/"null"/"off"),
  // and the ring capacity ([output] trace_capacity, 0 = default). The CLI
  // lets --trace / MPSIM_TRACE override the spec.
  trace::SinkKind spec_trace_sink() const;
  std::size_t spec_trace_capacity() const;

 private:
  Scenario(Spec spec, std::string name)
      : spec_(std::move(spec)), name_(std::move(name)) {}

  Spec spec_;
  std::string name_;
};

// Build and execute one resolved run on `ctx`, recording metrics and the
// spec echo. `dry_run` stops after construction (validate()). Exposed so
// the round-trip tests can drive a single run on a plain RunContext.
void execute_run(const ResolvedRun& run, double time_scale,
                 runner::RunContext& ctx, bool dry_run = false);

}  // namespace mpsim::scenario
