#include "net/variable_rate_queue.hpp"

#include <cmath>
#include <utility>

#include "core/check.hpp"

namespace mpsim::net {

VariableRateQueue::VariableRateQueue(EventList& events, std::string name,
                                     double rate_bps, std::uint64_t max_bytes)
    : Queue(events, std::move(name), rate_bps, max_bytes) {}

void VariableRateQueue::receive(Packet& pkt) {
  MPSIM_CHECK(h_.queued_bytes <= max_bytes_,
              "queue occupancy exceeds buffer capacity");
  ++h_.arrivals;
  if (h_.queued_bytes + pkt.size_bytes > max_bytes_) {
    ++h_.drops;
    MPSIM_TRACE(trace_,
                trace::queue_drop(events_.now(), trace_id_, pkt.flow_id,
                                  pkt.subflow_id, h_.queued_bytes,
                                  pkt.size_bytes));
    pkt.release();
    return;
  }
  h_.queued_bytes += pkt.size_bytes;
  // Intrusive PacketFifo: links through the packet's embedded pointers,
  // no heap allocation despite the container-idiom name.
  // mpsim-analyze: allow(hot-alloc)
  fifo_.push_back(pkt);
  MPSIM_TRACE(trace_, trace::queue_sample(events_.now(), trace_id_,
                                          h_.queued_bytes, queued_packets()));
  if (!busy_ && rate_bps_ > 0.0) {
    start_service();
    fraction_done_ = 0.0;
    fraction_as_of_ = events_.now();
  }
}

void VariableRateQueue::set_rate(double rate_bps) {
  MPSIM_CHECK(rate_bps >= 0.0, "link rate must be non-negative");
  const SimTime now = events_.now();
  if (busy_) {
    // Bank progress made at the old rate before switching.
    if (rate_bps_ > 0.0) {
      const double total = static_cast<double>(
          from_sec(static_cast<double>(in_service_->size_bytes) * 8.0 /
                   rate_bps_));
      // A rate so high the whole packet serializes in under 1 ns truncates
      // `total` to 0; dividing by it would poison fraction_done_ with
      // NaN/inf and reschedule_head would cast that to SimTime (UB). A
      // sub-ns transmission is simply finished.
      if (total > 0.0) {
        fraction_done_ += static_cast<double>(now - fraction_as_of_) / total;
      } else {
        fraction_done_ = 1.0;
      }
      if (fraction_done_ > 1.0) fraction_done_ = 1.0;
    }
    fraction_as_of_ = now;
  }
  rate_bps_ = rate_bps;
  MPSIM_TRACE(trace_, trace::rate_change(now, trace_id_, rate_bps_));
  if (busy_) {
    reschedule_head();
  } else if (rate_bps_ > 0.0 && !fifo_.empty()) {
    start_service();
    fraction_done_ = 0.0;
    fraction_as_of_ = now;
  }
}

void VariableRateQueue::reschedule_head() {
  MPSIM_CHECK(busy_, "reschedule_head requires a packet in service");
  if (rate_bps_ == 0.0) {
    service_done_at_ = kNever;  // frozen; stale wake-ups self-discard
    return;
  }
  const double total = static_cast<double>(from_sec(
      static_cast<double>(in_service_->size_bytes) * 8.0 / rate_bps_));
  const double remaining = (1.0 - fraction_done_) * total;
  MPSIM_CHECK(std::isfinite(remaining) && remaining >= 0.0,
              "drain-time computation produced a non-finite or negative "
              "remaining service time");
  service_done_at_ = events_.now() + static_cast<SimTime>(remaining);
  events_.schedule_at(*this, service_done_at_);
}

void VariableRateQueue::on_event() {
  if (!busy_ || events_.now() < service_done_at_) return;
  Packet* pkt = in_service_;
  in_service_ = nullptr;
  busy_ = false;
  h_.queued_bytes -= pkt->size_bytes;
  ++h_.departures;
  h_.bytes_forwarded += pkt->size_bytes;
  MPSIM_TRACE(trace_, trace::queue_sample(events_.now(), trace_id_,
                                          h_.queued_bytes, queued_packets()));
  if (!fifo_.empty() && rate_bps_ > 0.0) {
    start_service();
    fraction_done_ = 0.0;
    fraction_as_of_ = events_.now();
  }
  pkt->advance();
}

RateSchedule::RateSchedule(EventList& events, VariableRateQueue& target,
                           std::vector<Change> changes)
    : EventSource(events, "rate-schedule[" + target.sink_name() + "]"),
      events_(events),
      target_(target),
      changes_(std::move(changes)) {
  if (!changes_.empty()) events_.schedule_at(*this, changes_.front().at);
}

void RateSchedule::on_event() {
  while (next_ < changes_.size() && changes_[next_].at <= events_.now()) {
    target_.set_rate(changes_[next_].rate_bps);
    ++next_;
  }
  if (next_ < changes_.size()) {
    events_.schedule_at(*this, changes_[next_].at);
  }
}

}  // namespace mpsim::net
