// Test double for cc::ConnectionView: a plain vector of (window, rtt).
#pragma once

#include <vector>

#include "cc/congestion_control.hpp"

namespace mpsim::cc {

class FakeView : public ConnectionView {
 public:
  FakeView(std::vector<double> windows, std::vector<double> rtts)
      : windows_(std::move(windows)), rtts_(std::move(rtts)) {}

  std::size_t num_subflows() const override { return windows_.size(); }
  double cwnd_pkts(std::size_t r) const override { return windows_[r]; }
  double srtt_sec(std::size_t r) const override { return rtts_[r]; }

  std::vector<double> windows_;
  std::vector<double> rtts_;
};

}  // namespace mpsim::cc
