// Fixture: the handler itself is clean; the violation hides in a helper
// defined in another translation unit. The hard-coded-file-list lint could
// never see this — the call graph must carry hotness across TUs into
// escape_helper.cpp.
void escape_helper(int n);

struct Delegator {
  void on_event() {
    escape_helper(3);
  }
};
