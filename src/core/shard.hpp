// Conservative parallel-DES: one simulation partitioned across N shards.
//
// A ShardGroup owns N EventLists (shards). Topology builders place every
// element (queue, pipe, host, subflow) on exactly one shard; packets that
// must move between shards go through net::BoundarySink mailboxes, never by
// direct cross-shard calls. Execution advances in *windows* derived from
// the minimum cross-shard propagation delay L (the lookahead):
//
//     m = min over shards of next pending event time   (mailboxes empty)
//     W = m + L - 1   (or the run bound t, whichever is smaller)
//
// Every shard may execute all events with time <= W: any packet another
// shard emits at time >= m reaches a foreign shard no earlier than m + L,
// strictly after the window. Windows are separated by a full barrier, after
// which each shard drains its inbound mailboxes on its own thread — so a
// mailbox is only ever written during execute phases (by its single
// producer shard) and only read during drain phases (by its single consumer
// shard), with the barrier ordering the two. No null messages, no locks on
// the packet path, and no thread ever touches another shard's EventList.
//
// Determinism: shards dispatch by the same canonical (source order id,
// per-source seq) keys a sequential run would use (see event_list.hpp), and
// the window protocol never lets an event execute before anything that
// could causally affect it — so a sharded run performs exactly the
// sequential event sequence, merely interleaved across threads in ways that
// cannot be observed. The determinism-oracle suite (test_parallel_des)
// holds this to byte-identical trace output at 1/2/4 shards.
//
// Causality is checked, not assumed: before each window every shard's
// horizon is set to W, and EventList dispatch MPSIM_CHECKs that no event
// ever runs past it (a shard outrunning its lookahead is an invariant
// violation, not a silent reorder).
//
// MPSIM_SHARD_EXEC=threads|inline selects real worker threads (default) or
// a single-threaded round-robin of the identical window algorithm — the
// two are equivalent because execute phases only append to foreign
// mailboxes, which nothing reads until the following drain phase. Inline
// mode exists for tests that need thread-local state (throwing checks) and
// for debugging under a deterministic single stack.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "core/event_list.hpp"
#include "core/time.hpp"

namespace mpsim {

class ShardGroup {
 public:
  enum class Exec {
    kThreads,  // one worker thread per shard
    kInline,   // same window algorithm, single-threaded round-robin
  };

  ShardGroup(int shards, SchedulerKind kind);

  ShardGroup(const ShardGroup&) = delete;
  ShardGroup& operator=(const ShardGroup&) = delete;

  int size() const { return static_cast<int>(shards_.size()); }
  bool multi() const { return shards_.size() > 1; }
  EventList& shard(int i) { return *shards_[static_cast<std::size_t>(i)]; }

  // Record one cross-shard edge's propagation delay; the lookahead is the
  // minimum over all of them. Zero-delay cross-shard edges are rejected —
  // they would force zero-width windows (no conservative progress).
  void note_lookahead(SimTime link_delay);
  SimTime lookahead() const { return lookahead_; }

  // Register `fn` to drain one inbound mailbox of shard `dest`. Callbacks
  // run after each window barrier on the thread that owns `dest` (or the
  // main thread in inline mode) and must only touch `dest`'s state.
  void register_drain(int dest, std::function<void()> fn);

  // Hooks bracketing the parallel section of each run_until, run on the
  // calling thread (trace recorders flip to private sequence counters
  // while worker threads are live; see trace::TraceRecorder).
  void set_phase_hooks(std::function<void()> begin, std::function<void()> end);

  // Advance every shard to exactly time t, processing all events <= t —
  // the sharded equivalent of EventList::run_until. On return all shard
  // clocks read t, every mailbox is empty, and only events later than t
  // remain pending.
  void run_until(SimTime t);

  // Events dispatched across all shards (the sequential-equivalent count).
  std::uint64_t events_processed() const;

  // Per-simulation id counters shared by every shard (EventSource order
  // ids, connection flow ids): construction yields identical ids whatever
  // the shard count. Wired into each shard at group construction.
  std::uint32_t* order_counter() { return &order_counter_; }
  std::uint32_t* flow_counter() { return &flow_counter_; }

  Exec exec_mode() const { return exec_; }
  // What MPSIM_SHARD_EXEC resolves to ("threads" default).
  static Exec default_exec();
  // Test hook: override the process-wide MPSIM_SHARD_EXEC default for this
  // group (the equivalence suite runs both modes in one process). Only
  // meaningful between runs — never call while run_until is live.
  void set_exec_for_test(Exec e) { exec_ = e; }

 private:
  // Mutex/condvar barrier; the last arriver runs `on_last` while every
  // other participant is parked on the condvar, so whatever it writes is
  // published to all of them by the release.
  class Barrier {
   public:
    explicit Barrier(int n) : n_(n), count_(n) {}
    template <typename F>
    void arrive_and_wait(F&& on_last) {
      std::unique_lock<std::mutex> lk(m_);
      if (--count_ == 0) {
        on_last();
        count_ = n_;
        ++gen_;
        cv_.notify_all();
      } else {
        const std::uint64_t g = gen_;
        cv_.wait(lk, [&] { return gen_ != g; });
      }
    }

   private:
    std::mutex m_;
    std::condition_variable cv_;
    int n_;
    int count_;
    std::uint64_t gen_ = 0;
  };

  // Compute the next window upper bound into window_/final_. Requires all
  // mailboxes empty (so next_event_time() is the true frontier).
  void compute_window(SimTime t);
  // Barrier-completion step after a window's drains: finish or open the
  // next window.
  void step_window(SimTime t);
  // One worker's half of the threaded loop (shard i on this thread).
  void worker(int i, SimTime t);
  void run_windows_inline(SimTime t);
  void run_windows_threads(SimTime t);

  std::vector<std::unique_ptr<EventList>> shards_;
  std::vector<std::vector<std::function<void()>>> drains_;
  std::function<void()> begin_hook_;
  std::function<void()> end_hook_;
  std::unique_ptr<Barrier> barrier_;
  SimTime lookahead_ = kNever;  // min cross-shard delay; kNever = no edges
  SimTime window_ = 0;          // current window upper bound (inclusive)
  bool final_ = false;          // window_ == t: last window of this run
  bool done_ = false;
  Exec exec_;
  std::uint32_t order_counter_ = 1;  // 0 is reserved ("no source")
  std::uint32_t flow_counter_ = 1;
};

}  // namespace mpsim
