// Fixture (second half of escape.cpp): allocation in a helper that is only
// hot because a handler in another file calls it -> hot-alloc here.
void escape_helper(int n) {
  int* scratch = new int[static_cast<unsigned>(n)];
  scratch[0] = n;
  delete[] scratch;
}
