// Machine-readable bench results.
//
// The Json value type and report writers moved into the library so the
// scenario CLI shares them: stats/json.hpp (the value type) and
// runner/report.hpp (result -> Json, BENCH_*.json writer). This header
// keeps the bench-local names working.
#pragma once

#include "runner/report.hpp"
#include "stats/json.hpp"

namespace mpsim::bench {

using Json = stats::Json;

using runner::json_from_result;
using runner::json_from_results;

// Write BENCH_<bench>.json in the working directory and report the path.
inline void write_bench_json(const std::string& bench, const Json& root) {
  runner::write_json_file(bench, root);
}

}  // namespace mpsim::bench
