// Fig. 2's efficiency scenario: three unidirectional links of equal
// capacity arranged in a cycle; three flows, where flow i can use a one-hop
// path over link i or a two-hop path over links i+1 and i+2.
//
// Splitting evenly gives every flow 8 Mb/s (each link carries three
// subflows); routing all traffic on the one-hop paths gives each flow the
// full 12 Mb/s. An algorithm that prefers less-congested paths finds the
// efficient allocation because the two-hop paths cross two bottlenecks and
// hence see roughly double the loss.
#pragma once

#include "topo/network.hpp"

namespace mpsim::topo {

class ParkingLot {
 public:
  // `path_rtt` is the propagation RTT of *every* path, one- or two-hop:
  // per-link pipes carry a small fixed delay and the ACK pipes pad the
  // remainder, as the paper's analysis assumes equal RTTs (otherwise TCP's
  // RTT bias, not congestion, would drive traffic off the two-hop paths).
  ParkingLot(Network& net, double link_rate_bps, SimTime path_rtt,
             std::uint64_t buf_bytes);

  static constexpr int kFlows = 3;

  // Flow i's one-hop data path (link i).
  Path one_hop_fwd(int flow) const;
  // Flow i's two-hop data path (links i+1, i+2).
  Path two_hop_fwd(int flow) const;
  // ACK return paths (uncongested, delay-matched).
  Path one_hop_rev(int flow) const;
  Path two_hop_rev(int flow) const;

  net::Queue& queue(int link) { return *links_[link].queue; }

 private:
  Link links_[3];
  net::Pipe* ack_short_[3];
  net::Pipe* ack_long_[3];
};

}  // namespace mpsim::topo
