// Bernoulli random-loss element.
//
// Used to model paths whose loss is not congestion-induced: the fixed-loss
// WiFi/3G thought experiment of §2.3 (p1 = 4%, p2 = 1%) and corruption loss
// on wireless links. Each arriving packet is independently dropped with
// probability `loss_prob`; survivors advance immediately (no queueing, no
// serialization delay — combine with a Queue when both are wanted).
#pragma once

#include <string>

#include "core/event_list.hpp"
#include "core/rng.hpp"
#include "net/packet.hpp"
#include "trace/trace.hpp"

namespace mpsim::net {

class LossyLink : public PacketSink {
 public:
  LossyLink(std::string name, double loss_prob, std::uint64_t seed)
      : name_(std::move(name)), loss_prob_(loss_prob), rng_(seed) {}

  // EventList-aware overload: registers with the simulation's flight
  // recorder (if installed) so random drops show up in traces as kLinkDrop
  // — distinguishable from congestive queue drops.
  LossyLink(EventList& events, std::string name, double loss_prob,
            std::uint64_t seed)
      : LossyLink(std::move(name), loss_prob, seed) {
    events_ = &events;
    trace_ = trace::TraceRecorder::find(events);
    if (trace_ != nullptr) trace_id_ = trace_->register_object(name_);
  }

  void receive(Packet& pkt) override {
    ++arrivals_;
    if (rng_.chance(loss_prob_)) {
      ++drops_;
      MPSIM_TRACE(trace_,
                  trace::link_drop(events_->now(), trace_id_, pkt.flow_id,
                                   pkt.subflow_id, pkt.size_bytes));
      pkt.release();
      return;
    }
    pkt.advance();
  }

  const std::string& sink_name() const override { return name_; }

  void set_loss_prob(double p) { loss_prob_ = p; }
  double loss_prob() const { return loss_prob_; }
  std::uint64_t arrivals() const { return arrivals_; }
  std::uint64_t drops() const { return drops_; }

 private:
  std::string name_;
  double loss_prob_;
  Rng rng_;
  std::uint64_t arrivals_ = 0;
  std::uint64_t drops_ = 0;

  // Set only by the EventList-aware constructor; trace_ != nullptr implies
  // events_ != nullptr, and MPSIM_TRACE's guard keeps the dereference safe.
  EventList* events_ = nullptr;
  trace::TraceRecorder* trace_ = nullptr;
  std::uint16_t trace_id_ = 0;
};

}  // namespace mpsim::net
