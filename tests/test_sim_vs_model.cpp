// Simulation <-> fluid model agreement: run each algorithm over
// fixed-loss paths (so the loss rate is exogenous and exactly known) and
// compare the time-averaged windows against the §2 equilibrium formulas.
// Parameterised over loss-rate environments.
#include <gtest/gtest.h>

#include <cmath>

#include "cc/coupled.hpp"
#include "cc/ewtcp.hpp"
#include "cc/mptcp_lia.hpp"
#include "cc/semicoupled.hpp"
#include "cc/uncoupled.hpp"
#include "mptcp/connection.hpp"
#include "model/equilibrium.hpp"
#include "model/tcp_model.hpp"
#include "stats/monitors.hpp"
#include "topo/network.hpp"

namespace mpsim {
namespace {

// Two fixed-loss paths with equal RTT; returns time-averaged effective
// windows of the two subflows over a long run.
struct AvgWindows {
  double w0;
  double w1;
};

AvgWindows run_fixed_loss(const cc::CongestionControl& algo, double p0,
                          double p1, SimTime one_way = from_ms(25)) {
  EventList events;
  topo::Network net(events);
  auto& loss0 = net.add_lossy("l0", p0, 101);
  auto& q0 = net.add_queue("q0", 1e9, 1u << 30);
  auto& pipe0 = net.add_pipe("p0", one_way);
  auto& ack0 = net.add_pipe("a0", one_way);
  auto& loss1 = net.add_lossy("l1", p1, 202);
  auto& q1 = net.add_queue("q1", 1e9, 1u << 30);
  auto& pipe1 = net.add_pipe("p1", one_way);
  auto& ack1 = net.add_pipe("a1", one_way);

  mptcp::MptcpConnection mp(events, "mp", algo);
  mp.add_subflow({&loss0, &q0, &pipe0}, {&ack0});
  mp.add_subflow({&loss1, &q1, &pipe1}, {&ack1});
  mp.start(0);

  double sum0 = 0.0, sum1 = 0.0;
  int n = 0;
  stats::PeriodicSampler sampler(events, "s", from_ms(50), [&](SimTime) {
    sum0 += mp.subflow(0).effective_cwnd();
    sum1 += mp.subflow(1).effective_cwnd();
    ++n;
  });
  sampler.start(from_sec(20));
  events.run_until(from_sec(140));
  return {sum0 / n, sum1 / n};
}

// The time-averaged AIMD window sits below the fluid balance point (the
// sawtooth spends more time below its peak); 35% tolerance bands still
// discriminate sharply between the algorithms' very different targets.
constexpr double kTol = 0.35;

struct LossEnv {
  double p0;
  double p1;
  std::string label;
};

class SimVsModel : public ::testing::TestWithParam<LossEnv> {};

TEST_P(SimVsModel, UncoupledMatchesTcpFormulaPerPath) {
  const auto [p0, p1, label] = GetParam();
  const AvgWindows w = run_fixed_loss(cc::uncoupled(), p0, p1);
  EXPECT_NEAR(w.w0, model::tcp_window(p0), kTol * model::tcp_window(p0));
  EXPECT_NEAR(w.w1, model::tcp_window(p1), kTol * model::tcp_window(p1));
}

TEST_P(SimVsModel, EwtcpMatchesWeightedTcpFormula) {
  const auto [p0, p1, label] = GetParam();
  const AvgWindows w = run_fixed_loss(cc::ewtcp(), p0, p1);
  const double e0 = model::ewtcp_window(p0, 0.5);
  const double e1 = model::ewtcp_window(p1, 0.5);
  EXPECT_NEAR(w.w0, e0, kTol * e0);
  EXPECT_NEAR(w.w1, e1, kTol * e1);
}

TEST_P(SimVsModel, SemicoupledMatchesPaperFormula) {
  const auto [p0, p1, label] = GetParam();
  const AvgWindows w = run_fixed_loss(cc::semicoupled(), p0, p1);
  const auto pred = model::semicoupled_windows({p0, p1}, 1.0);
  EXPECT_NEAR(w.w0, pred[0], kTol * pred[0]);
  EXPECT_NEAR(w.w1, pred[1], kTol * pred[1]);
}

TEST_P(SimVsModel, MptcpMatchesNumericEquilibrium) {
  const auto [p0, p1, label] = GetParam();
  const AvgWindows w = run_fixed_loss(cc::mptcp_lia(), p0, p1);
  // Equal RTTs here; the solver needs them in seconds.
  auto eq = model::mptcp_equilibrium({p0, p1}, {0.05, 0.05});
  ASSERT_TRUE(eq.converged);
  EXPECT_NEAR(w.w0, eq.windows[0], kTol * eq.windows[0] + 1.0);
  EXPECT_NEAR(w.w1, eq.windows[1], kTol * eq.windows[1] + 1.0);
}

TEST_P(SimVsModel, CoupledConcentratesWindowPerModel) {
  const auto [p0, p1, label] = GetParam();
  if (p0 == p1) GTEST_SKIP() << "tie split is indeterminate";
  const AvgWindows w = run_fixed_loss(cc::coupled(), p0, p1);
  // Model: all window on the lower-loss path; the lossier path hovers at
  // the probe floor. Assert the strong asymmetry rather than exact zero.
  const double lossier = p0 > p1 ? w.w0 : w.w1;
  const double cleaner = p0 > p1 ? w.w1 : w.w0;
  EXPECT_GT(cleaner, 2.0 * lossier);
  const double pmin = std::min(p0, p1);
  EXPECT_NEAR(cleaner + lossier, model::tcp_window(pmin),
              0.45 * model::tcp_window(pmin));
}

INSTANTIATE_TEST_SUITE_P(
    LossEnvironments, SimVsModel,
    ::testing::Values(LossEnv{0.002, 0.002, "equal_low"},
                      LossEnv{0.005, 0.005, "equal_mid"},
                      LossEnv{0.002, 0.008, "skewed_4x"},
                      LossEnv{0.001, 0.004, "skewed_low"}),
    [](const ::testing::TestParamInfo<LossEnv>& info) {
      return info.param.label;
    });

// Scaling law: quadrupling the loss rate halves the window (w ~ 1/sqrt p).
// Ratios cancel the sawtooth bias, so this is much tighter than the
// absolute checks above.
TEST(SimVsModelScaling, WindowScalesAsInverseSqrtLoss) {
  const AvgWindows lo = run_fixed_loss(cc::uncoupled(), 0.002, 0.002);
  const AvgWindows hi = run_fixed_loss(cc::uncoupled(), 0.008, 0.008);
  EXPECT_NEAR(lo.w0 / hi.w0, 2.0, 0.4);
  EXPECT_NEAR(lo.w1 / hi.w1, 2.0, 0.4);
}

TEST(SimVsModelScaling, CoupledTotalIndependentOfSplit) {
  // §2.2: w_total = sqrt(2/p) whatever the path count; compare the
  // two-path COUPLED total against a single-path TCP at the same loss.
  const AvgWindows two = run_fixed_loss(cc::coupled(), 0.004, 0.004);
  const AvgWindows one = run_fixed_loss(cc::uncoupled(), 0.004, 0.004);
  // one.w0 is a single TCP's window at p; COUPLED's TOTAL should match it.
  EXPECT_NEAR(two.w0 + two.w1, one.w0, 0.4 * one.w0);
}

}  // namespace
}  // namespace mpsim
