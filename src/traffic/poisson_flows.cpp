#include "traffic/poisson_flows.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

namespace mpsim::traffic {

PoissonFlowGenerator::PoissonFlowGenerator(EventList& events,
                                           std::string name,
                                           const PoissonConfig& cfg,
                                           Factory factory)
    : EventSource(events, std::move(name)),
      events_(events),
      cfg_(cfg),
      factory_(std::move(factory)),
      rng_(cfg.seed) {}

void PoissonFlowGenerator::start(SimTime at) {
  started_at_ = at;
  events_.schedule_at(*this, at);
}

std::uint64_t PoissonFlowGenerator::draw_size_pkts() {
  // Pareto(alpha, xm) has mean alpha*xm/(alpha-1); solve xm for the
  // configured mean.
  const double alpha = cfg_.pareto_shape;
  const double xm = cfg_.mean_flow_bytes * (alpha - 1.0) / alpha;
  const double bytes = rng_.pareto(alpha, xm);
  // size_to_pkts owns the >= 1 pkt clamp; see its comment for why a
  // 0-packet flow would never complete.
  return size_to_pkts(bytes);
}

std::size_t PoissonFlowGenerator::reclaim_completed() {
  std::size_t reclaimed = 0;
  auto keep = flows_.begin();
  for (auto& f : flows_) {
    if (f->reclaimable()) {
      if (on_reclaim) on_reclaim(*f);
      // Destruction cancels the flow's pending events and returns its
      // arena rows; the wire-refs gate guarantees no packet still in a
      // queue or pipe can call back into it.
      f.reset();
      ++reclaimed;
    } else {
      *keep++ = std::move(f);
    }
  }
  flows_.erase(keep, flows_.end());
  flows_reclaimed_ += reclaimed;
  return reclaimed;
}

void PoissonFlowGenerator::on_event() {
  const SimTime now = events_.now();

  // Tear down what finished before building more: reclamation at arrival
  // granularity keeps held connections proportional to the live count.
  reclaim_completed();

  // Launch one flow.
  const std::uint64_t size = draw_size_pkts();
  // Flow churn allocates at flow-arrival granularity (Poisson rate, many
  // thousands of packet events apart), not per packet event.
  std::string fname = EventSource::name() + "/f";
  // mpsim-analyze: allow(hot-alloc)
  fname += std::to_string(flows_started_);
  auto conn = factory_(std::move(fname), size);
  ++flows_started_;
  mptcp::MptcpConnection* raw = conn.get();
  const SimTime born = now;
  raw->on_complete = [this, raw, born] {
    ++flows_completed_;
    // Once per flow completion — flow-churn granularity again.
    // mpsim-analyze: allow(hot-alloc)
    fct_.push_back(events_.now() - born);
    (void)raw;
  };
  // mpsim-analyze: allow(hot-alloc)
  flows_.push_back(std::move(conn));

  // Schedule the next arrival from the current phase's rate.
  const auto phase = static_cast<std::uint64_t>(
      (now - started_at_) / cfg_.phase_duration);
  const double rate = (phase % 2 == 0) ? cfg_.light_rate_per_sec
                                       : cfg_.heavy_rate_per_sec;
  const SimTime gap = from_sec(rng_.exponential(1.0 / rate));
  events_.schedule_at(*this, now + std::max<SimTime>(1, gap));
}

}  // namespace mpsim::traffic
