// SoA arena for per-simulation hot state.
//
// The per-ACK and per-dequeue hot paths used to chase Subflow/Queue object
// pointers scattered across the heap: the coupled congestion controller
// reads every sibling subflow's window and smoothed RTT on each ACK
// (eq. (1) of the paper iterates all r in the increase term), and the
// runner's aggregate metrics sweep every queue. SimArena packs exactly that
// state into dense, cache-line-sized rows indexed by small ids, allocated
// per EventList (so parallel runner jobs share nothing). Objects keep their
// interfaces and hold a reference to their row; cold state stays on the
// object.
//
// Storage is chunked (fixed-size arrays of rows) rather than one
// std::vector so rows never move: components cache `SubflowHot&` at
// construction, and connections can join a *running* simulation (Poisson
// arrivals construct subflows from event callbacks) without invalidating
// references held by objects already in the event loop. Rows constructed
// consecutively (e.g. one connection's subflows) land consecutively in the
// same chunk, which is what the per-ACK sibling sweep iterates.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/event_list.hpp"
#include "core/time.hpp"

namespace mpsim {

// Per-subflow congestion state, one 64-byte cache line per subflow. Written
// by tcp::Subflow (the owning object), read by the congestion controller's
// per-ACK sibling sweep via mptcp::MptcpConnection.
struct alignas(64) SubflowHot {
  double cwnd = 0.0;           // packets
  double ssthresh = 0.0;       // packets
  SimTime srtt = 0;            // mirror of RttEstimator::srtt()
  SimTime rto = 0;             // mirror of RttEstimator::rto()
  std::uint64_t snd_una = 0;   // first unacked subflow seq
  std::uint64_t snd_nxt = 0;   // next subflow seq to send
  std::uint32_t in_recovery = 0;  // bool; 32-bit to keep the row packed
  std::uint32_t rtt_valid = 0;    // RttEstimator::has_sample()
  std::uint32_t active = 1;       // participates in sending and eq. (1)
};
static_assert(sizeof(SubflowHot) == 64, "one cache line per subflow");

// Per-subflow rate-control state, two cache lines per subflow. Allocated
// only for connections whose congestion controller is rate-based
// (cc::CongestionControl::rate_based()): written by the controller's
// on_ack_sample() and read by the subflow's pacer on every launch decision
// and by coupled controllers sweeping sibling bandwidth shares. Times are
// kept in double seconds — this row only feeds floating-point rate math,
// never the event scheduler.
struct alignas(64) RateHot {
  double btl_bw = 0.0;         // bottleneck-bw estimate, pkts/sec (max filter)
  double bw_filter[3] = {0.0, 0.0, 0.0};  // per-round max shift registers
  double min_rtt_sec = 0.0;    // windowed min RTT (0 = no sample yet)
  double min_rtt_at_sec = 0.0; // when min_rtt_sec was last lowered/refreshed
  double cycle_start_sec = 0.0;  // PROBE_BW gain-cycle phase start
  double pacing_rate = 0.0;    // pkts/sec the pacer spaces launches at
  double pacing_gain = 0.0;    // current gain applied to btl_bw
  double cwnd_gain = 0.0;      // window gain applied to the BDP
  double full_bw = 0.0;        // STARTUP bw-plateau tracker
  std::uint64_t delivered_pkts = 0;  // mirror of the estimator's counter
  std::uint32_t mode = 0;        // controller-defined state-machine phase
  std::uint32_t cycle_index = 0;   // PROBE_BW gain-cycle position
  std::uint32_t full_bw_count = 0; // rounds without bw growth in STARTUP
};
static_assert(sizeof(RateHot) == 128, "two cache lines per rate-mode subflow");

// Per-queue occupancy and flow counters, one cache line per queue. Written
// by net::Queue on every arrival/departure.
struct alignas(64) QueueHot {
  std::uint64_t queued_bytes = 0;
  std::uint64_t arrivals = 0;
  std::uint64_t drops = 0;
  std::uint64_t departures = 0;
  std::uint64_t bytes_forwarded = 0;
};
static_assert(sizeof(QueueHot) == 64, "one cache line per queue");

class SimArena final : public EventList::Service {
 public:
  // The arena of `events`, attached lazily on first use (like the packet
  // pool): the first Subflow or Queue built on a simulation creates it.
  static SimArena& of(EventList& events);

  std::uint32_t add_subflow() { return subflows_.add(); }
  SubflowHot& subflow(std::uint32_t id) { return subflows_[id]; }
  const SubflowHot& subflow(std::uint32_t id) const { return subflows_[id]; }
  std::uint32_t num_subflows() const { return subflows_.size(); }

  // Returns a subflow row to the column's free list; the next add_subflow()
  // reuses it (value-reinitialised). Called from tcp::Subflow's destructor
  // so flow churn — thousands of short connections opening and closing —
  // keeps the arena's footprint at the *live* subflow count instead of the
  // all-time total.
  void release_subflow(std::uint32_t id) { subflows_.release(id); }
  std::uint32_t free_subflow_rows() const { return subflows_.free_rows(); }

  std::uint32_t add_queue() { return queues_.add(); }
  QueueHot& queue(std::uint32_t id) { return queues_[id]; }
  const QueueHot& queue(std::uint32_t id) const { return queues_[id]; }
  std::uint32_t num_queues() const { return queues_.size(); }

  // Rate-control rows, allocated per subflow only when the connection's
  // congestion controller is rate-based; same stable-address/free-list
  // lifecycle as the subflow rows.
  std::uint32_t add_rate() { return rates_.add(); }
  RateHot& rate(std::uint32_t id) { return rates_[id]; }
  const RateHot& rate(std::uint32_t id) const { return rates_[id]; }
  std::uint32_t num_rates() const { return rates_.size(); }
  void release_rate(std::uint32_t id) { rates_.release(id); }
  std::uint32_t free_rate_rows() const { return rates_.free_rows(); }

 private:
  // A growable column of rows with stable addresses: chunks are allocated
  // once and never moved or freed until the arena dies. 64 rows x 64 bytes
  // = one 4 KiB page per chunk. Released rows go on a LIFO free list and
  // are handed back (value-reinitialised) before the column grows, so
  // size() is a high-water mark of *concurrently live* rows, not a count
  // of every row ever created.
  template <typename T>
  class Column {
   public:
    std::uint32_t add() {
      if (!free_.empty()) {
        const std::uint32_t id = free_.back();
        free_.pop_back();
        (*this)[id] = T{};
        return id;
      }
      if ((count_ & kMask) == 0) {
        chunks_.push_back(std::make_unique<Chunk>());
      }
      return count_++;
    }
    // Subflow-teardown granularity; the free list's growth is amortized
    // and bounded by the high-water row count.
    // mpsim-analyze: allow(hot-alloc)
    void release(std::uint32_t id) { free_.push_back(id); }
    T& operator[](std::uint32_t id) {
      return (*chunks_[id >> kShift])[id & kMask];
    }
    const T& operator[](std::uint32_t id) const {
      return (*chunks_[id >> kShift])[id & kMask];
    }
    std::uint32_t size() const { return count_; }
    std::uint32_t free_rows() const {
      return static_cast<std::uint32_t>(free_.size());
    }

   private:
    static constexpr std::uint32_t kShift = 6;
    static constexpr std::uint32_t kMask = (1u << kShift) - 1;
    using Chunk = std::array<T, kMask + 1>;
    std::vector<std::unique_ptr<Chunk>> chunks_;
    std::vector<std::uint32_t> free_;
    std::uint32_t count_ = 0;
  };

  Column<SubflowHot> subflows_;
  Column<QueueHot> queues_;
  Column<RateHot> rates_;
};

}  // namespace mpsim
