#include "cc/coupled_bbr.hpp"

#include <algorithm>

#include "core/arena.hpp"
#include "core/check.hpp"

namespace mpsim::cc {

namespace {

// BBR mode encoding for RateHot::mode.
constexpr std::uint32_t kStartup = 0;
constexpr std::uint32_t kDrain = 1;
constexpr std::uint32_t kProbeBw = 2;

constexpr double kHighGain = 2.885;  // 2/ln 2, BBR's startup gain
constexpr double kProbeGains[8] = {1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0};
constexpr double kMinRttWindowSec = 10.0;
constexpr int kFullBwRounds = 3;

double max_filter_bw(const RateHot& h) {
  return std::max({h.bw_filter[0], h.bw_filter[1], h.bw_filter[2]});
}

// Sum of bottleneck-bandwidth estimates across the connection's active
// rate-mode subflows, for the coupled probe scaling.
double total_btl_bw(const ConnectionView& c) {
  double sum = 0.0;
  for (std::size_t s = 0; s < c.num_subflows(); ++s) {
    if (!c.subflow_active(s)) continue;
    if (const RateHot* h = c.rate_state(s)) sum += h->btl_bw;
  }
  return sum;
}

double bdp_pkts(const RateHot& h) { return h.btl_bw * h.min_rtt_sec; }

}  // namespace

double CoupledBbr::increase_per_ack(const ConnectionView&, std::size_t) const {
  return 0.0;  // the window is rate-driven, not ACK-clocked
}

double CoupledBbr::window_after_loss(const ConnectionView& c,
                                     std::size_t r) const {
  // Loss is not a primary congestion signal for BBR; keep the model window.
  // During STARTUP, though, it is decisive: this sender has no SACK, so a
  // startup overshoot loses the tail of the window and repairs over RTO
  // cycles that starve the sampler — the bandwidth plateau that normally
  // ends STARTUP may never be observed. Treat the first loss as "pipe
  // full" and move to DRAIN (the BBRv2-style startup exit).
  RateHot* h = c.rate_state(r);
  if (h != nullptr && h->mode == kStartup && h->btl_bw > 0.0) {
    h->full_bw = h->btl_bw;
    h->mode = kDrain;
    // Republish the pacer immediately: the repair that follows is all
    // retransmissions, whose ACKs are Karn-ambiguous and produce no
    // samples — waiting for on_ack_sample to slow the pacer would keep
    // flooding at the startup gain for the whole repair.
    h->pacing_gain = 1.0 / kHighGain;
    h->cwnd_gain = kHighGain;
    h->pacing_rate = h->pacing_gain * h->btl_bw;
  }
  return c.cwnd_pkts(r);
}

void CoupledBbr::on_ack_sample(const ConnectionView& c, std::size_t r,
                               const DeliveryRateSample& s) const {
  RateHot* hp = c.rate_state(r);
  MPSIM_CHECK(hp != nullptr, "CoupledBBR needs a RateHot row per subflow");
  RateHot& h = *hp;
  MPSIM_CHECK(s.delivered_pkts >= h.delivered_pkts,
              "delivery samples must carry a monotone delivered counter");
  h.delivered_pkts = s.delivered_pkts;

  // min_rtt: windowed min, refreshed when the window expires so the
  // estimate tracks route changes instead of the all-time best.
  if (h.min_rtt_sec == 0.0 || s.rtt_sec < h.min_rtt_sec ||
      s.now_sec - h.min_rtt_at_sec > kMinRttWindowSec) {
    h.min_rtt_sec = s.rtt_sec;
    h.min_rtt_at_sec = s.now_sec;
  }

  // btl_bw: max filter over the last 3 rounds. App-limited samples only
  // count when they raise the estimate — they understate the path.
  if (s.round_start) {
    h.bw_filter[2] = h.bw_filter[1];
    h.bw_filter[1] = h.bw_filter[0];
    h.bw_filter[0] = 0.0;
  }
  if (!s.app_limited || s.delivery_rate > h.btl_bw) {
    h.bw_filter[0] = std::max(h.bw_filter[0], s.delivery_rate);
  }
  h.btl_bw = max_filter_bw(h);

  switch (h.mode) {
    case kStartup:
      if (s.round_start) {
        if (h.btl_bw >= h.full_bw * 1.25) {
          h.full_bw = h.btl_bw;
          h.full_bw_count = 0;
        } else if (++h.full_bw_count >=
                   static_cast<std::uint32_t>(kFullBwRounds)) {
          h.mode = kDrain;  // pipe full: bw stopped growing for 3 rounds
        }
      }
      break;
    case kDrain:
      if (c.inflight_pkts(r) <= bdp_pkts(h)) {
        h.mode = kProbeBw;
        h.cycle_index = 0;
        h.cycle_start_sec = s.now_sec;
      }
      break;
    case kProbeBw:
      if (s.now_sec - h.cycle_start_sec > h.min_rtt_sec) {
        h.cycle_index = (h.cycle_index + 1) % 8;
        h.cycle_start_sec = s.now_sec;
      }
      break;
    default:
      MPSIM_CHECK(false, "unknown CoupledBBR mode");
  }

  double gain;
  double cg;
  switch (h.mode) {
    case kStartup:
      gain = kHighGain;
      cg = kHighGain;
      break;
    case kDrain:
      gain = 1.0 / kHighGain;
      cg = kHighGain;
      break;
    default: {
      gain = kProbeGains[h.cycle_index];
      if (gain > 1.0) {
        // The coupling of arXiv 2002.06284: probe in proportion to this
        // subflow's share of the connection's total bandwidth, so the
        // aggregate overshoot matches a single BBR flow's.
        const double total = total_btl_bw(c);
        const double share = total > 0.0 ? h.btl_bw / total : 1.0;
        gain = 1.0 + (gain - 1.0) * share;
      }
      cg = 2.0;
      break;
    }
  }
  h.pacing_gain = gain;
  h.cwnd_gain = cg;
  double rate = gain * h.btl_bw;
  if (rate <= 0.0) {
    // No delivery sample has cleared the filter yet (all app-limited):
    // pace off the ACK clock instead so the pacer never stalls.
    rate = kHighGain * c.cwnd_pkts(r) / c.srtt_sec(r);
  }
  h.pacing_rate = rate;
  MPSIM_CHECK(h.pacing_rate > 0.0,
              "CoupledBBR must always publish a positive pacing rate");
}

double CoupledBbr::pacing_rate(const ConnectionView& c, std::size_t r) const {
  const RateHot* h = c.rate_state(r);
  if (h != nullptr && h->pacing_rate > 0.0) return h->pacing_rate;
  // Before the first delivery sample: startup-gain over the ACK clock.
  return kHighGain * c.cwnd_pkts(r) / c.srtt_sec(r);
}

double CoupledBbr::cwnd_gain(const ConnectionView& c, std::size_t r) const {
  const RateHot* h = c.rate_state(r);
  if (h != nullptr && h->cwnd_gain > 0.0) return h->cwnd_gain;
  return kHighGain;
}

double CoupledBbr::target_cwnd_pkts(const ConnectionView& c,
                                    std::size_t r) const {
  const RateHot* h = c.rate_state(r);
  if (h == nullptr || h->btl_bw <= 0.0 || h->min_rtt_sec <= 0.0) {
    return c.cwnd_pkts(r);
  }
  // Inflight cap: cwnd_gain * BDP, floored so the estimator keeps getting
  // enough packets per round to produce samples.
  return std::max(4.0, cwnd_gain(c, r) * bdp_pkts(*h));
}

const CoupledBbr& coupled_bbr() {
  static const CoupledBbr instance;
  return instance;
}

}  // namespace mpsim::cc
