"""Stale suppression detection (--check-stale-allows).

Two kinds of allow comments exist in src/:

  * `// mpsim-analyze: allow(<rule>)` — consumed by this tool's rule
    passes. An analyze-allow is stale when no rule pass used it to
    suppress a finding on its own line or the line below.
  * `// mpsim-lint: allow(<rule>)`   — consumed by tools/mpsim_lint.py.
    A lint-allow is stale when re-linting the file with that one comment
    stripped produces exactly the same findings: the comment blesses
    nothing.

Stale allows are worse than dead code: they are *standing permission* for
a violation that no longer exists, so the next edit can silently
reintroduce it pre-approved.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

LINT_ALLOW_RE = re.compile(r"//\s*mpsim-lint:\s*allow\([\w\-,\s]+\)")


def _import_mpsim_lint():
    tools_dir = str(Path(__file__).resolve().parent.parent)
    if tools_dir not in sys.path:
        sys.path.insert(0, tools_dir)
    import mpsim_lint
    return mpsim_lint


def stale_analyze_allows(lexed_files: dict, used_allows: set) -> list:
    """(path, line) of every mpsim-analyze allow no rule pass consumed."""
    stale = []
    for path, lf in lexed_files.items():
        for line, marks in lf.allows.items():
            if any(tool == "analyze" for tool, _ in marks) \
                    and (path, line) not in used_allows:
                stale.append((path, line))
    return sorted(stale)


def stale_lint_allows(root: Path, files: list, arena_hot_ranges=None) -> list:
    """(relpath, line) of every mpsim-lint allow whose removal changes
    nothing. `files` are paths relative to `root`."""
    lint = _import_mpsim_lint()
    stale = []
    for rel in files:
        path = root / rel
        try:
            lines = path.read_text().splitlines()
        except OSError:
            continue
        marked = [i for i, raw in enumerate(lines, start=1)
                  if LINT_ALLOW_RE.search(raw)]
        if not marked:
            continue
        baseline = []
        lint.lint_lines(rel, lines, baseline,
                        arena_hot_ranges=arena_hot_ranges)
        for ln in marked:
            probe = list(lines)
            probe[ln - 1] = LINT_ALLOW_RE.sub("", probe[ln - 1])
            findings = []
            lint.lint_lines(rel, probe, findings,
                            arena_hot_ranges=arena_hot_ranges)
            if len(findings) == len(baseline):
                stale.append((rel, ln))
    return sorted(stale)
