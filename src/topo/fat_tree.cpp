#include "topo/fat_tree.hpp"

#include <string>

#include "core/check.hpp"

namespace mpsim::topo {

FatTree::FatTree(Network& net, int k, double link_rate_bps,
                 SimTime per_hop_delay, std::uint64_t buf_bytes)
    : net_(net), k_(k), half_k_(k / 2), per_hop_delay_(per_hop_delay) {
  MPSIM_CHECK(k % 2 == 0 && k >= 2, "fat-tree arity must be even, >= 2");
  const int hosts = num_hosts();
  const int pods = k_;
  const int cores = half_k_ * half_k_;

  auto mk = [&](const std::string& name, int src_shard, int dst_shard) {
    return net_.add_link(name, link_rate_bps, per_hop_delay_, buf_bytes,
                         src_shard, dst_shard);
  };

  host_up_.reserve(hosts);
  host_down_.reserve(hosts);
  for (int h = 0; h < hosts; ++h) {
    const int s = shard_of_pod(pod_of(h));
    host_up_.push_back(mk("ft/h" + std::to_string(h) + "/up", s, s));
    host_down_.push_back(mk("ft/h" + std::to_string(h) + "/down", s, s));
  }

  edge_agg_.resize(pods);
  agg_edge_.resize(pods);
  agg_core_.resize(pods);
  for (int p = 0; p < pods; ++p) {
    const int sp = shard_of_pod(p);
    edge_agg_[p].resize(half_k_);
    agg_edge_[p].resize(half_k_);
    agg_core_[p].resize(half_k_);
    for (int e = 0; e < half_k_; ++e) {
      for (int a = 0; a < half_k_; ++a) {
        edge_agg_[p][e].push_back(mk("ft/p" + std::to_string(p) + "/e" +
                                         std::to_string(e) + "-a" +
                                         std::to_string(a),
                                     sp, sp));
      }
    }
    for (int a = 0; a < half_k_; ++a) {
      for (int e = 0; e < half_k_; ++e) {
        agg_edge_[p][a].push_back(mk("ft/p" + std::to_string(p) + "/a" +
                                         std::to_string(a) + "-e" +
                                         std::to_string(e),
                                     sp, sp));
      }
      // Aggregation -> core links are the upward cross-shard edges; their
      // propagation delay is the group's conservative lookahead.
      for (int c = 0; c < half_k_; ++c) {
        agg_core_[p][a].push_back(mk("ft/p" + std::to_string(p) + "/a" +
                                         std::to_string(a) + "-c" +
                                         std::to_string(c),
                                     sp, shard_of_core(a * half_k_ + c)));
      }
    }
  }

  core_agg_.resize(cores);
  for (int c = 0; c < cores; ++c) {
    for (int p = 0; p < pods; ++p) {
      core_agg_[c].push_back(
          mk("ft/c" + std::to_string(c) + "-p" + std::to_string(p),
             shard_of_core(c), shard_of_pod(p)));
    }
  }
}

std::vector<Path> FatTree::paths(int src, int dst) {
  MPSIM_CHECK(src != dst && src >= 0 && dst >= 0 && src < num_hosts() &&
                  dst < num_hosts(),
              "host indices out of range or equal");
  const int ps = pod_of(src), pd = pod_of(dst);
  const int es = edge_of(src), ed = edge_of(dst);
  std::vector<Path> out;

  // Terminal hop: the dst host's access link, re-homed so delivery lands
  // on src's shard, where the connection's receiver runs. One pipe +
  // boundary per paths() call (shared by all paths returned — they all end
  // at the same host), created unconditionally so the element count, and
  // with it every object id, is independent of the shard layout.
  const int home = shard_of_pod(ps);
  const std::string dname = "ft/dlv" + std::to_string(dlv_count_++);
  net::Pipe& dlv_pipe =
      net_.add_pipe(net_.shard_events(home), dname + "/p", per_hop_delay_);
  net::BoundarySink& dlv = net_.add_boundary(
      dname + "/b", net_.shard_events(shard_of_pod(pd)), dlv_pipe, home);
  auto append_delivery = [&](Path& p) {
    p.push_back(host_down_[dst].queue);
    p.push_back(&dlv);
  };

  if (ps == pd && es == ed) {
    // Same edge switch: one two-hop path through it.
    Path p;
    append_link(p, host_up_[src]);
    append_delivery(p);
    out.push_back(std::move(p));
    return out;
  }

  if (ps == pd) {
    // Same pod: up to an aggregation switch and back down, k/2 choices.
    for (int a = 0; a < half_k_; ++a) {
      Path p;
      append_link(p, host_up_[src]);
      append_link(p, edge_agg_[ps][es][a]);
      append_link(p, agg_edge_[ps][a][ed]);
      append_delivery(p);
      out.push_back(std::move(p));
    }
    return out;
  }

  // Cross-pod: (agg, core) choice; core switch c = a*k/2 + i is reachable
  // from aggregation index a in every pod.
  for (int a = 0; a < half_k_; ++a) {
    for (int i = 0; i < half_k_; ++i) {
      const int core = a * half_k_ + i;
      Path p;
      append_link(p, host_up_[src]);
      append_link(p, edge_agg_[ps][es][a]);
      append_link(p, agg_core_[ps][a][i]);
      append_link(p, core_agg_[core][pd]);
      append_link(p, agg_edge_[pd][a][ed]);
      append_delivery(p);
      out.push_back(std::move(p));
    }
  }
  return out;
}

std::vector<Path> FatTree::sample_paths(int src, int dst, int n, Rng& rng) {
  std::vector<Path> all = paths(src, dst);
  if (static_cast<int>(all.size()) <= n) return all;
  rng.shuffle(all.data(), all.size());
  all.resize(static_cast<std::size_t>(n));
  return all;
}

Path FatTree::ack_path(const Path& fwd, int src) {
  // Forward paths alternate queue/boundary, so hops = size/2; the ACK pipe
  // carries the same total propagation delay. One pipe per call, on src's
  // home shard (sharing pipes across connections would make the element
  // count depend on which delays coincide — fine sequentially, but the
  // count must not change when pods spread across shards and pipes can no
  // longer be shared; per-call pipes keep ids layout-invariant).
  const SimTime delay =
      per_hop_delay_ * static_cast<SimTime>(fwd.size() / 2);
  net::Pipe& pipe = net_.add_pipe(
      net_.shard_events(shard_of_pod(pod_of(src))),
      "ft/ack" + std::to_string(ack_count_++), delay);
  return {&pipe};
}

std::vector<const net::Queue*> FatTree::access_queues() const {
  std::vector<const net::Queue*> qs;
  for (const Link& l : host_up_) qs.push_back(l.queue);
  for (const Link& l : host_down_) qs.push_back(l.queue);
  return qs;
}

std::vector<const net::Queue*> FatTree::core_queues() const {
  std::vector<const net::Queue*> qs;
  for (const auto& pod : edge_agg_)
    for (const auto& sw : pod)
      for (const Link& l : sw) qs.push_back(l.queue);
  for (const auto& pod : agg_edge_)
    for (const auto& sw : pod)
      for (const Link& l : sw) qs.push_back(l.queue);
  for (const auto& pod : agg_core_)
    for (const auto& sw : pod)
      for (const Link& l : sw) qs.push_back(l.queue);
  for (const auto& core : core_agg_)
    for (const Link& l : core) qs.push_back(l.queue);
  return qs;
}

std::vector<PathPair> sample_path_pairs(FatTree& ft, int src, int dst, int n,
                                        Rng& rng) {
  std::vector<PathPair> out;
  for (auto& p : ft.sample_paths(src, dst, n, rng)) {
    auto rev = ft.ack_path(p, src);
    out.emplace_back(std::move(p), std::move(rev));
  }
  return out;
}

}  // namespace mpsim::topo
