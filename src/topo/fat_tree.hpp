// k-ary FatTree (Al-Fares et al. [2]), as simulated in §4: with k = 8,
// 128 single-interface hosts and 80 eight-port switches (32 edge, 32
// aggregation, 16 core), every link 100 Mb/s.
//
// Between hosts in different pods there are (k/2)^2 equal-length paths, one
// per (aggregation switch, core switch) choice; within a pod k/2 paths; on
// the same edge switch a single path. The paper's multipath experiments
// select up to 8 of these at random per host pair, and mimic ECMP by
// letting single-path TCP pick one of them at random.
//
// Every directed link is a Queue (serialization/buffer) on the source
// node's shard, a BoundarySink, and a Pipe (propagation) on the
// destination node's shard; routes hop queue -> boundary and the pipe
// continues the route after propagation (net/boundary.hpp). This is the
// parallel-DES partition: pod p lives on shard p % N, core switch c on
// shard c % N, so the only cross-shard edges are aggregation<->core links
// and the conservative lookahead is one hop's propagation delay. On an
// ungrouped Network every boundary degenerates to an inline handoff and
// the element graph — and therefore every canonical event key — is
// identical, which is what makes sharded runs byte-comparable to
// sequential ones.
//
// ACKs return over delay-matched pipes (the reverse direction is never the
// bottleneck in these workloads). ACK and final-delivery elements are
// created per paths()/ack_path() call, never shared/cached: the element
// count must be a pure function of the call sequence, not of the shard
// count, or object ids would diverge between sharded and sequential runs.
#pragma once

#include <cstdint>
#include <vector>

#include "core/rng.hpp"
#include "topo/network.hpp"

namespace mpsim::topo {

class FatTree {
 public:
  FatTree(Network& net, int k, double link_rate_bps = 100e6,
          SimTime per_hop_delay = from_us(20),
          std::uint64_t buf_bytes = 100 * net::kDataPacketBytes);

  int k() const { return k_; }
  int num_hosts() const { return k_ * k_ * k_ / 4; }
  int num_switches() const { return k_ * k_ + k_ * k_ / 4; }

  // All shortest paths src -> dst ((k/2)^2, k/2 or 1 of them). Non-const:
  // each call creates one delivery boundary+pipe on src's home shard,
  // shared by the returned paths, so the terminal hop lands on the shard
  // that owns the connection's endpoints.
  std::vector<Path> paths(int src, int dst);

  // A random sample of up to `n` distinct shortest paths.
  std::vector<Path> sample_paths(int src, int dst, int n, Rng& rng);

  // Delay-matched ACK return path for a forward path produced above. The
  // pipe lives on src's home shard (where the connection's sender and
  // receiver run), so the whole ACK round stays shard-local.
  Path ack_path(const Path& fwd, int src);

  // The EventList that owns host h's pod — connections between hosts must
  // be built on the source host's list.
  EventList& host_events(int h) {
    return net_.shard_events(shard_of_pod(pod_of(h)));
  }

  // Queue inventory for loss-rate distributions (Fig. 13 separates core
  // from access links).
  std::vector<const net::Queue*> access_queues() const;
  std::vector<const net::Queue*> core_queues() const;

 private:
  int pod_of(int host) const { return host / (half_k_ * half_k_); }
  int edge_of(int host) const {  // edge switch index within its pod
    return (host % (half_k_ * half_k_)) / half_k_;
  }
  int shard_of_pod(int pod) const { return pod % net_.shards(); }
  int shard_of_core(int core) const { return core % net_.shards(); }

  Network& net_;
  int k_;
  int half_k_;
  SimTime per_hop_delay_;
  int dlv_count_ = 0;  // names per-call delivery elements deterministically
  int ack_count_ = 0;  // names per-call ACK pipes deterministically

  // Directed links, addressed structurally.
  std::vector<Link> host_up_;    // host -> edge
  std::vector<Link> host_down_;  // edge -> host
  // [pod][edge][agg] and [pod][agg][edge]
  std::vector<std::vector<std::vector<Link>>> edge_agg_;
  std::vector<std::vector<std::vector<Link>>> agg_edge_;
  // [pod][agg][core-in-group] and [core][pod]
  std::vector<std::vector<std::vector<Link>>> agg_core_;
  std::vector<std::vector<Link>> core_agg_;
};

// Up to `n` sampled (fwd, ack) path pairs for one connection — the path
// selection every §4 FatTree experiment uses (n = 1 is the ECMP stand-in:
// one random shortest path).
std::vector<PathPair> sample_path_pairs(FatTree& ft, int src, int dst, int n,
                                        Rng& rng);

}  // namespace mpsim::topo
