// k-ary FatTree (Al-Fares et al. [2]), as simulated in §4: with k = 8,
// 128 single-interface hosts and 80 eight-port switches (32 edge, 32
// aggregation, 16 core), every link 100 Mb/s.
//
// Between hosts in different pods there are (k/2)^2 equal-length paths, one
// per (aggregation switch, core switch) choice; within a pod k/2 paths; on
// the same edge switch a single path. The paper's multipath experiments
// select up to 8 of these at random per host pair, and mimic ECMP by
// letting single-path TCP pick one of them at random.
//
// Every directed link is a Queue (+ serialization/buffer) followed by a
// Pipe (propagation). ACKs return over delay-matched pipes (the reverse
// direction is never the bottleneck in these workloads).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "core/rng.hpp"
#include "topo/network.hpp"

namespace mpsim::topo {

class FatTree {
 public:
  FatTree(Network& net, int k, double link_rate_bps = 100e6,
          SimTime per_hop_delay = from_us(20),
          std::uint64_t buf_bytes = 100 * net::kDataPacketBytes);

  int k() const { return k_; }
  int num_hosts() const { return k_ * k_ * k_ / 4; }
  int num_switches() const { return k_ * k_ + k_ * k_ / 4; }

  // All shortest paths src -> dst ((k/2)^2, k/2 or 1 of them).
  std::vector<Path> paths(int src, int dst) const;

  // A random sample of up to `n` distinct shortest paths.
  std::vector<Path> sample_paths(int src, int dst, int n, Rng& rng) const;

  // Delay-matched ACK return path for a forward path produced above.
  Path ack_path(const Path& fwd);

  // Queue inventory for loss-rate distributions (Fig. 13 separates core
  // from access links).
  std::vector<const net::Queue*> access_queues() const;
  std::vector<const net::Queue*> core_queues() const;

 private:
  int pod_of(int host) const { return host / (half_k_ * half_k_); }
  int edge_of(int host) const {  // edge switch index within its pod
    return (host % (half_k_ * half_k_)) / half_k_;
  }

  Network& net_;
  int k_;
  int half_k_;
  SimTime per_hop_delay_;

  // Directed link queues/pipes, addressed structurally.
  std::vector<Link> host_up_;    // host -> edge
  std::vector<Link> host_down_;  // edge -> host
  // [pod][edge][agg] and [pod][agg][edge]
  std::vector<std::vector<std::vector<Link>>> edge_agg_;
  std::vector<std::vector<std::vector<Link>>> agg_edge_;
  // [pod][agg][core-in-group] and [core][pod]
  std::vector<std::vector<std::vector<Link>>> agg_core_;
  std::vector<std::vector<Link>> core_agg_;

  std::map<SimTime, net::Pipe*> ack_pipes_;  // shared, keyed by total delay
};

// Up to `n` sampled (fwd, ack) path pairs for one connection — the path
// selection every §4 FatTree experiment uses (n = 1 is the ECMP stand-in:
// one random shortest path).
std::vector<PathPair> sample_path_pairs(FatTree& ft, int src, int dst, int n,
                                        Rng& rng);

}  // namespace mpsim::topo
