// Bernoulli random-loss element.
//
// Used to model paths whose loss is not congestion-induced: the fixed-loss
// WiFi/3G thought experiment of §2.3 (p1 = 4%, p2 = 1%) and corruption loss
// on wireless links. Each arriving packet is independently dropped with
// probability `loss_prob`; survivors advance immediately (no queueing, no
// serialization delay — combine with a Queue when both are wanted).
#pragma once

#include <string>

#include "core/rng.hpp"
#include "net/packet.hpp"

namespace mpsim::net {

class LossyLink : public PacketSink {
 public:
  LossyLink(std::string name, double loss_prob, std::uint64_t seed)
      : name_(std::move(name)), loss_prob_(loss_prob), rng_(seed) {}

  void receive(Packet& pkt) override {
    ++arrivals_;
    if (rng_.chance(loss_prob_)) {
      ++drops_;
      pkt.release();
      return;
    }
    pkt.advance();
  }

  const std::string& sink_name() const override { return name_; }

  void set_loss_prob(double p) { loss_prob_ = p; }
  double loss_prob() const { return loss_prob_; }
  std::uint64_t arrivals() const { return arrivals_; }
  std::uint64_t drops() const { return drops_; }

 private:
  std::string name_;
  double loss_prob_;
  Rng rng_;
  std::uint64_t arrivals_ = 0;
  std::uint64_t drops_ = 0;
};

}  // namespace mpsim::net
