// Structural tests for the topology builders: path counts, hop structure,
// disjointness, and addressing — checked against the §4 descriptions.
#include <gtest/gtest.h>

#include <set>

#include "core/event_list.hpp"
#include "topo/bcube.hpp"
#include "topo/fat_tree.hpp"
#include "topo/network.hpp"
#include "topo/parking_lot.hpp"
#include "topo/torus.hpp"
#include "topo/triangle.hpp"
#include "topo/two_link.hpp"

namespace mpsim::topo {
namespace {

TEST(FatTree, PaperScaleCounts) {
  EventList events;
  Network net(events);
  FatTree ft(net, 8);
  EXPECT_EQ(ft.num_hosts(), 128);   // "128 single-interface hosts"
  EXPECT_EQ(ft.num_switches(), 80); // "80 eight-port switches"
}

TEST(FatTree, CrossPodPathCount) {
  EventList events;
  Network net(events);
  FatTree ft(net, 4);
  // k=4: (k/2)^2 = 4 cross-pod paths.
  EXPECT_EQ(ft.paths(0, 15).size(), 4u);
}

TEST(FatTree, SamePodPathCount) {
  EventList events;
  Network net(events);
  FatTree ft(net, 4);
  // Hosts 0 and 2 share a pod (hosts/pod = 4) but not an edge switch.
  EXPECT_EQ(ft.paths(0, 2).size(), 2u);
}

TEST(FatTree, SameEdgeSinglePath) {
  EventList events;
  Network net(events);
  FatTree ft(net, 4);
  EXPECT_EQ(ft.paths(0, 1).size(), 1u);
}

TEST(FatTree, CrossPodPathsHaveSixHops) {
  EventList events;
  Network net(events);
  FatTree ft(net, 4);
  for (const Path& p : ft.paths(0, 15)) {
    EXPECT_EQ(p.size(), 12u);  // 6 links x (queue + pipe)
  }
}

TEST(FatTree, PathsHaveDistinctCoreTransits) {
  // Cross-pod paths may share edge<->agg links (when they pick the same
  // aggregation switch) but each (agg, core) choice is unique, so the
  // agg->core hop (element index 4: host_up, edge_agg, then agg_core)
  // identifies the path.
  EventList events;
  Network net(events);
  FatTree ft(net, 4);
  auto ps = ft.paths(0, 15);
  std::set<net::PacketSink*> agg_core_hops;
  for (const Path& p : ps) {
    ASSERT_GE(p.size(), 6u);
    EXPECT_TRUE(agg_core_hops.insert(p[4]).second)
        << "two paths share the same agg->core link";
  }
  EXPECT_EQ(agg_core_hops.size(), ps.size());
}

TEST(FatTree, SamplePathsAreDistinct) {
  EventList events;
  Network net(events);
  FatTree ft(net, 8);
  Rng rng(1);
  auto ps = ft.sample_paths(0, 100, 8, rng);
  EXPECT_EQ(ps.size(), 8u);
  std::set<net::PacketSink*> agg_core_hops;
  for (const Path& p : ps) {
    EXPECT_TRUE(agg_core_hops.insert(p[4]).second)
        << "sampled paths must be distinct (agg,core) choices";
  }
}

TEST(FatTree, AckPathsArePerCallAndDelayMatched) {
  EventList events;
  Network net(events);
  FatTree ft(net, 4);
  auto p1 = ft.paths(0, 15)[0];
  auto p2 = ft.paths(1, 14)[0];
  auto a1 = ft.ack_path(p1, 0);
  auto a2 = ft.ack_path(p2, 1);
  ASSERT_EQ(a1.size(), 1u);
  ASSERT_EQ(a2.size(), 1u);
  // Per-call pipes: the element count is a pure function of the call
  // sequence, never of which delays happen to coincide — that invariance
  // is what keeps object ids identical across shard layouts.
  EXPECT_NE(a1[0], a2[0]) << "ACK pipes are per-call, not shared";
  EXPECT_EQ(static_cast<net::Pipe*>(a1[0])->delay(),
            static_cast<net::Pipe*>(a2[0])->delay())
      << "equal-hop forward paths get equal ACK delays";
}

TEST(FatTree, QueueInventoryCounts) {
  EventList events;
  Network net(events);
  FatTree ft(net, 4);
  // Access: 16 up + 16 down. Core: edge-agg 4 pods x2x2 x2 dirs = 32,
  // agg-core 4 pods x2 aggs x2 cores x2 dirs = 32.
  EXPECT_EQ(ft.access_queues().size(), 32u);
  EXPECT_EQ(ft.core_queues().size(), 64u);
}

TEST(BCube, PaperScaleCounts) {
  EventList events;
  Network net(events);
  BCube bc(net, 5, 2);
  EXPECT_EQ(bc.num_hosts(), 125);       // "125 three-interface hosts"
  EXPECT_EQ(bc.levels(), 3);
  EXPECT_EQ(bc.switches_per_level(), 25);
}

TEST(BCube, NeighborsDifferInOneDigit) {
  EventList events;
  Network net(events);
  BCube bc(net, 5, 2);
  auto nb = bc.neighbors(0, 1);
  EXPECT_EQ(nb.size(), 4u);  // n-1 per level
  for (int h : nb) {
    EXPECT_EQ(h % 5, 0);       // digit 0 unchanged
    EXPECT_EQ(h / 25, 0);      // digit 2 unchanged
    EXPECT_NE(h, 0);
  }
}

TEST(BCube, TwelveTp2Destinations) {
  EventList events;
  Network net(events);
  BCube bc(net, 5, 2);
  std::set<int> dsts;
  for (int l = 0; l < 3; ++l) {
    for (int d : bc.neighbors(7, l)) dsts.insert(d);
  }
  EXPECT_EQ(dsts.size(), 12u) << "4 neighbours x 3 levels (paper TP2)";
}

TEST(BCube, ProducesLevelsPlusOnePaths) {
  EventList events;
  Network net(events);
  BCube bc(net, 5, 2);
  Rng rng(3);
  EXPECT_EQ(bc.paths(0, 124, rng).size(), 3u);
}

TEST(BCube, PathsLeaveOnDistinctInterfaces) {
  EventList events;
  Network net(events);
  BCube bc(net, 5, 2);
  Rng rng(5);
  auto ps = bc.paths(3, 88, rng);
  std::set<net::PacketSink*> first_hops;
  for (const Path& p : ps) {
    EXPECT_TRUE(first_hops.insert(p[0]).second)
        << "each path must use a different source NIC";
  }
}

TEST(BCube, SinglePathHopCountMatchesHammingDistance) {
  EventList events;
  Network net(events);
  BCube bc(net, 5, 2);
  // 0 = (0,0,0); 31 = (1,1,1) in base 5 -> Hamming distance 3 ->
  // 3 corrections x 2 links x 2 elements = 12.
  const int dst = 1 + 5 + 25;
  EXPECT_EQ(bc.single_path(0, dst).size(), 12u);
  // 1 = (0,0,1): distance 1 -> 4 elements.
  EXPECT_EQ(bc.single_path(0, 1).size(), 4u);
}

TEST(BCube, DetourPathsStillArrive) {
  // paths() asserts internally that every constructed path terminates at
  // dst; exercise many pairs to cover the detour logic.
  EventList events;
  Network net(events);
  BCube bc(net, 5, 2);
  Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    const int src = static_cast<int>(rng.next_below(125));
    int dst = src;
    while (dst == src) dst = static_cast<int>(rng.next_below(125));
    auto ps = bc.paths(src, dst, rng);
    EXPECT_EQ(ps.size(), 3u);
    for (const Path& p : ps) EXPECT_GE(p.size(), 4u);
  }
}

TEST(Torus, FlowsMapToAdjacentLinks) {
  EventList events;
  Network net(events);
  Torus torus(net, {1000, 1000, 1000, 1000, 1000});
  // Flow 4 wraps: link 4 and link 0.
  EXPECT_EQ(torus.fwd(4, 0)[0],
            static_cast<net::PacketSink*>(&torus.queue(4)));
  EXPECT_EQ(torus.fwd(4, 1)[0],
            static_cast<net::PacketSink*>(&torus.queue(0)));
}

TEST(Torus, EachLinkServesTwoFlows) {
  EventList events;
  Network net(events);
  Torus torus(net, {1000, 1000, 1000, 1000, 1000});
  // Link 2 is used by flow 2 (path 0) and flow 1 (path 1).
  int users = 0;
  for (int f = 0; f < 5; ++f) {
    for (int pth = 0; pth < 2; ++pth) {
      if (torus.fwd(f, pth)[0] ==
          static_cast<net::PacketSink*>(&torus.queue(2))) {
        ++users;
      }
    }
  }
  EXPECT_EQ(users, 2);
}

TEST(ParkingLot, TwoHopPathCrossesTwoLinks) {
  EventList events;
  Network net(events);
  ParkingLot pl(net, 12e6, from_ms(5), 50 * net::kDataPacketBytes);
  EXPECT_EQ(pl.one_hop_fwd(0).size(), 2u);
  EXPECT_EQ(pl.two_hop_fwd(0).size(), 4u);
  // Flow 0's two-hop path uses links 1 and 2.
  EXPECT_EQ(pl.two_hop_fwd(0)[0],
            static_cast<net::PacketSink*>(&pl.queue(1)));
  EXPECT_EQ(pl.two_hop_fwd(0)[2],
            static_cast<net::PacketSink*>(&pl.queue(2)));
}

TEST(Triangle, CyclicLinkAssignment) {
  EventList events;
  Network net(events);
  Triangle tri(net, {12e6, 10e6, 8e6}, from_ms(5),
               {50000, 50000, 50000});
  // Flow 2 uses links 2 and 0.
  EXPECT_EQ(tri.fwd(2, 0)[0], static_cast<net::PacketSink*>(&tri.queue(2)));
  EXPECT_EQ(tri.fwd(2, 1)[0], static_cast<net::PacketSink*>(&tri.queue(0)));
}

TEST(TwoLink, SpecHelpersAndAccess) {
  EventList events;
  Network net(events);
  auto spec1 = LinkSpec::pkt_rate(1000.0, from_ms(50), 1.0);
  EXPECT_DOUBLE_EQ(spec1.rate_bps, 1000.0 * 1500 * 8);
  TwoLink tl(net, spec1, spec1);
  EXPECT_EQ(tl.fwd(0).size(), 2u);
  EXPECT_EQ(tl.rev(0).size(), 1u);
  EXPECT_NE(&tl.queue(0), &tl.queue(1));
}

TEST(NetworkHelpers, BdpBytes) {
  // 12 Mb/s x 100 ms = 150 kB (+1 packet of slack).
  EXPECT_NEAR(static_cast<double>(bdp_bytes(12e6, from_ms(100))), 150000.0,
              1600.0);
}

}  // namespace
}  // namespace mpsim::topo
