// Fig. 2 / §2.2 — "Choosing efficient paths" on the parking-lot cycle.
//
// Three links, three flows; each flow has a one-hop path and a two-hop
// path. The paper's arithmetic (at 12 Mb/s links): an even split gives
// every flow 8 Mb/s, EWTCP ~8.5, and one-hop-only routing 12. We run every
// algorithm (scaled 4x to 48 Mb/s so subflow windows stay in the
// fast-retransmit regime) and print per-flow goodput plus the fraction of
// the one-hop optimum, alongside the paper's fluid predictions.
#include <memory>
#include <vector>

#include "cc/coupled.hpp"
#include "cc/ewtcp.hpp"
#include "cc/mptcp_lia.hpp"
#include "cc/semicoupled.hpp"
#include "cc/uncoupled.hpp"
#include "harness.hpp"
#include "topo/parking_lot.hpp"

namespace mpsim {
namespace {

constexpr double kLinkRate = 48e6;
const SimTime kRtt = from_ms(40);

struct Result {
  double mean_flow_mbps;
  double min_flow_mbps;
};

Result run(const cc::CongestionControl* algo, bool one_hop_only) {
  EventList events;
  topo::Network net(events);
  topo::ParkingLot pl(net, kLinkRate, kRtt, topo::bdp_bytes(kLinkRate, kRtt));
  bench::GoodputMeter meter(events);
  std::vector<std::unique_ptr<mptcp::MptcpConnection>> flows;
  for (int f = 0; f < topo::ParkingLot::kFlows; ++f) {
    auto conn = std::make_unique<mptcp::MptcpConnection>(
        events, "flow" + std::to_string(f),
        algo != nullptr ? *algo : cc::uncoupled());
    conn->add_subflow(pl.one_hop_fwd(f), pl.one_hop_rev(f));
    if (!one_hop_only) {
      conn->add_subflow(pl.two_hop_fwd(f), pl.two_hop_rev(f));
    }
    conn->start(from_ms(17 * f));
    meter.track(*conn);
    flows.push_back(std::move(conn));
  }
  events.run_until(bench::scaled(10));
  meter.mark();
  events.run_until(bench::scaled(10) + bench::scaled(60));
  const auto mbps = meter.mbps();
  return {stats::mean(mbps), stats::minimum(mbps)};
}

}  // namespace
}  // namespace mpsim

int main() {
  using namespace mpsim;
  bench::banner("Fig. 2 / §2.2: parking-lot path efficiency",
                "even split -> 2/3 of optimal; EWTCP ~8.5/12; "
                "congestion-shifting algorithms -> ~optimal (one-hop only)");

  stats::Table table(
      {"algorithm", "mean flow Mb/s", "min flow Mb/s", "% of one-hop opt"});
  const Result opt = run(nullptr, /*one_hop_only=*/true);

  struct Row {
    const char* name;
    const cc::CongestionControl* algo;
  };
  const Row rows[] = {
      {"ONE-HOP ONLY (optimal)", nullptr},
      {"UNCOUPLED (both paths)", &cc::uncoupled()},
      {"EWTCP", &cc::ewtcp()},
      {"SEMICOUPLED", &cc::semicoupled()},
      {"COUPLED", &cc::coupled()},
      {"MPTCP", &cc::mptcp_lia()},
  };
  for (const Row& row : rows) {
    const Result r = (row.algo == nullptr)
                         ? opt
                         : run(row.algo, /*one_hop_only=*/false);
    table.add_row(row.name,
                  {r.mean_flow_mbps, r.min_flow_mbps,
                   100.0 * r.mean_flow_mbps / opt.mean_flow_mbps});
  }
  table.print();
  std::printf(
      "\npaper fluid prediction (scaled to 48 Mb/s): even split 32, "
      "EWTCP ~34, optimal 48\n");
  return 0;
}
