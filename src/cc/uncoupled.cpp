#include "cc/uncoupled.hpp"

namespace mpsim::cc {

double total_window(const ConnectionView& c) {
  double total = 0.0;
  for (std::size_t r = 0; r < c.num_subflows(); ++r) total += c.cwnd_pkts(r);
  return total;
}

double Uncoupled::increase_per_ack(const ConnectionView& c,
                                   std::size_t r) const {
  return 1.0 / c.cwnd_pkts(r);
}

double Uncoupled::window_after_loss(const ConnectionView& c,
                                    std::size_t r) const {
  return c.cwnd_pkts(r) / 2.0;
}

const Uncoupled& uncoupled() {
  static const Uncoupled instance;
  return instance;
}

}  // namespace mpsim::cc
