#include "tcp/rtt_estimator.hpp"

#include <algorithm>
#include <cstdlib>

namespace mpsim::tcp {

void RttEstimator::add_sample(SimTime rtt) {
  if (rtt < 0) return;
  min_seen_ = std::min(min_seen_, rtt);
  if (!has_sample_) {
    srtt_ = rtt;
    rttvar_ = rtt / 2;
    has_sample_ = true;
    return;
  }
  const SimTime err = std::abs(srtt_ - rtt);
  rttvar_ = (3 * rttvar_ + err) / 4;
  srtt_ = (7 * srtt_ + rtt) / 8;
}

SimTime RttEstimator::rto() const {
  if (!has_sample_) return std::max<SimTime>(from_sec(1), min_rto_);
  return std::clamp(srtt_ + 4 * rttvar_, min_rto_, max_rto_);
}

}  // namespace mpsim::tcp
