// A guided tour of the §2 design space: run every congestion-control
// algorithm through the two scenarios that motivated the paper's design,
// and print the story the numbers tell.
//
//   Scenario A (Fig. 1): a two-subflow multipath flow shares one
//   bottleneck with a regular TCP. Fairness demands it take ~1/2.
//
//   Scenario B (§2.3): two paths with very different loss and RTT
//   (WiFi-like vs 3G-like). The incentive goal demands the multipath
//   flow do at least as well as the best single path.
//
// UNCOUPLED wins B but cheats in A; COUPLED is fair in A but collapses in
// B; EWTCP is fair in A but mediocre in B; MPTCP is the algorithm that
// passes both — which is the paper's thesis in two tables.
//
// Run: ./algorithm_tour
#include <cstdio>
#include <memory>

#include "cc/coupled.hpp"
#include "cc/ewtcp.hpp"
#include "cc/mptcp_lia.hpp"
#include "cc/semicoupled.hpp"
#include "cc/uncoupled.hpp"
#include "example_trace.hpp"
#include "mptcp/connection.hpp"
#include "stats/monitors.hpp"
#include "stats/table.hpp"
#include "topo/network.hpp"

namespace {

using namespace mpsim;

struct Algo {
  const char* name;
  const cc::CongestionControl* cc;
};

const Algo kAlgos[] = {
    {"UNCOUPLED", &cc::uncoupled()},   {"EWTCP", &cc::ewtcp()},
    {"SEMICOUPLED", &cc::semicoupled()}, {"COUPLED", &cc::coupled()},
    {"MPTCP", &cc::mptcp_lia()},
};

// Scenario A: shared 12 Mb/s bottleneck, two subflows vs one TCP (Fig. 1).
// Returns the fraction of the link the multipath flow takes.
double shared_bottleneck_fraction(const cc::CongestionControl& algo,
                                  const std::string& label) {
  EventList events;
  examples::ExampleTrace et(events, "algorithm_tour_bottleneck_" + label);
  topo::Network net(events);
  auto link = net.add_link("l", 12e6, from_ms(10),
                           topo::bdp_bytes(12e6, from_ms(20)));
  auto& ack = net.add_pipe("a", from_ms(10));
  mptcp::MptcpConnection mp(events, "mp", algo);
  mp.add_subflow(topo::path_of({&link}), {&ack});
  mp.add_subflow(topo::path_of({&link}), {&ack});
  auto tcp = mptcp::make_single_path_tcp(events, "tcp",
                                         topo::path_of({&link}), {&ack});
  tcp->start(0);
  mp.start(from_sec(1));  // the multipath flow is the newcomer
  events.run_until(from_sec(10));
  const auto m0 = mp.delivered_pkts();
  const auto t0 = tcp->delivered_pkts();
  events.run_until(from_sec(130));
  const double m = static_cast<double>(mp.delivered_pkts() - m0);
  const double t = static_cast<double>(tcp->delivered_pkts() - t0);
  return m / (m + t);
}

// Scenario B: WiFi-like (0.5% loss, 20 ms RTT) + 3G-like (0.1% loss,
// 200 ms RTT) fixed-loss paths. Returns multipath pkt/s and, once, the
// best single-path reference.
double rtt_mismatch_rate(const cc::CongestionControl* algo,
                         const std::string& label) {
  EventList events;
  examples::ExampleTrace et(events, "algorithm_tour_mismatch_" + label);
  topo::Network net(events);
  auto& wl = net.add_lossy("wl", 0.005, 11);
  auto& wq = net.add_queue("wq", 1e9, 1u << 30);
  auto& wp = net.add_pipe("wp", from_ms(10));
  auto& wa = net.add_pipe("wa", from_ms(10));
  auto& gl = net.add_lossy("gl", 0.001, 13);
  auto& gq = net.add_queue("gq", 1e9, 1u << 30);
  auto& gp = net.add_pipe("gp", from_ms(100));
  auto& ga = net.add_pipe("ga", from_ms(100));
  std::unique_ptr<mptcp::MptcpConnection> conn;
  if (algo == nullptr) {
    conn = mptcp::make_single_path_tcp(events, "wifi", {&wl, &wq, &wp},
                                       {&wa});
  } else {
    conn = std::make_unique<mptcp::MptcpConnection>(events, "mp", *algo);
    conn->add_subflow({&wl, &wq, &wp}, {&wa});
    conn->add_subflow({&gl, &gq, &gp}, {&ga});
  }
  conn->start(0);
  events.run_until(from_sec(5));
  const auto before = conn->delivered_pkts();
  events.run_until(from_sec(95));
  return static_cast<double>(conn->delivered_pkts() - before) / 90.0;
}

}  // namespace

int main() {
  using namespace mpsim;
  std::printf("The design space of §2, in two scenarios.\n\n");
  std::printf("A: shared-bottleneck fairness (fluid fair share = 0.50;\n");
  std::printf("   drop-tail loss synchronisation lands fair algorithms a\n");
  std::printf("   few points above that, so <= ~0.6 reads as fair)\n");
  std::printf("B: RTT/loss mismatch (goal: >= best single path)\n\n");

  const double best_single = rtt_mismatch_rate(nullptr, "single");

  stats::Table table({"algorithm", "A: bottleneck share",
                      "B: pkt/s (vs best single)", "verdict"});
  for (const Algo& a : kAlgos) {
    const double frac = shared_bottleneck_fraction(*a.cc, a.name);
    const double rate = rtt_mismatch_rate(a.cc, a.name);
    const bool fair = frac < 0.62;
    const bool incentive = rate > 0.8 * best_single;
    const char* verdict = fair && incentive ? "passes both"
                          : fair            ? "fair but no incentive"
                          : incentive       ? "fast but unfair"
                                            : "fails both";
    table.add_row({a.name, stats::fmt_double(frac, 2),
                   stats::fmt_double(rate, 0) + " / " +
                       stats::fmt_double(best_single, 0),
                   verdict});
  }
  table.print();
  std::printf(
      "\nOnly the paper's MPTCP algorithm satisfies both goals of §2.5 —\n"
      "take no more than a TCP at any bottleneck, and never do worse than\n"
      "your best path.\n");
  return 0;
}
