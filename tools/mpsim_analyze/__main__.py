#!/usr/bin/env python3
"""mpsim_analyze: whole-program call-graph analyzer for the simulator.

Parses every translation unit named by compile_commands.json (plus all
headers under src/), builds the project call graph, computes the **hot
set** — everything reachable from the event-dispatch roots — and runs the
determinism/ownership rule passes (rules.py) over it. This replaces
tools/mpsim_lint.py's hard-coded hot-file list with computed reachability:
a helper called from Subflow::receive cannot escape checking by living in
an unlisted file.

Usage:
  tools/mpsim_analyze --compile-commands build/compile_commands.json
  tools/mpsim_analyze --src-root tests/analyze_fixtures/src
Options:
  --dump-hotset          print the hot functions and exit
  --dump-callgraph       print every function and its resolved callees
  --dump-hot-files FILE  write the hot file list ('-' = stdout)
  --emit-hot-ranges FILE write hot body ranges as path:start:end (feeds
                         mpsim_lint --arena-hot-ranges)
  --check-stale-allows   also fail on allow comments (both tools') that no
                         longer suppress anything
  --with-lint            additionally run mpsim_lint over src/ with its
                         arena-discipline rule rebased onto the computed
                         hot ranges (one process, one exit code)

Exit status: 0 clean, 1 findings/stale allows, 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import hotset                              # noqa: E402
import rules                               # noqa: E402
import stale                               # noqa: E402

SOURCE_GLOBS = hotset.SOURCE_GLOBS


def discover_files(args, root: Path) -> list:
    """Relative paths of every file to analyze."""
    found: set = set()
    if args.src_root:
        base = Path(args.src_root)
        if not base.is_dir():
            sys.exit(f"mpsim_analyze: no such directory: {base}")
        root = base
        for g in SOURCE_GLOBS:
            found.update(p.relative_to(base).as_posix()
                         for p in base.rglob(g))
    else:
        cc = Path(args.compile_commands)
        if not cc.is_file():
            sys.exit(f"mpsim_analyze: no such file: {cc} "
                     "(configure cmake with CMAKE_EXPORT_COMPILE_COMMANDS)")
        src = (root / "src").resolve()
        for entry in json.loads(cc.read_text()):
            f = Path(entry["file"])
            if not f.is_absolute():
                f = (Path(entry["directory"]) / f).resolve()
            try:
                found.add(
                    (Path("src") / f.resolve().relative_to(src)).as_posix())
            except ValueError:
                continue  # tests/bench/examples TU — out of scope
        # Headers never appear as TUs; inline hot-path code lives there.
        for g in ("*.hpp", "*.h"):
            found.update(p.relative_to(root).as_posix()
                         for p in (root / "src").rglob(g))
    return sorted(found), root


def main() -> int:
    ap = argparse.ArgumentParser(
        prog="mpsim_analyze", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    src = ap.add_mutually_exclusive_group(required=True)
    src.add_argument("--compile-commands", metavar="JSON",
                     help="compile_commands.json naming the TUs")
    src.add_argument("--src-root", metavar="DIR",
                     help="analyze every C++ file under DIR instead "
                          "(fixture trees, no build needed)")
    ap.add_argument("--root", default=None,
                    help="repo root (default: parent of tools/)")
    ap.add_argument("--dump-hotset", action="store_true")
    ap.add_argument("--dump-callgraph", action="store_true")
    ap.add_argument("--dump-hot-files", metavar="FILE")
    ap.add_argument("--emit-hot-ranges", metavar="FILE")
    ap.add_argument("--check-stale-allows", action="store_true")
    ap.add_argument("--with-lint", action="store_true")
    args = ap.parse_args()

    root = Path(args.root) if args.root \
        else Path(__file__).resolve().parent.parent.parent
    files, root = discover_files(args, root)
    if not files:
        sys.exit("mpsim_analyze: nothing to analyze")

    lexed_files, defs, graph, hot = hotset.analyze_tree(root, files)

    if args.dump_callgraph:
        graph.dump(sys.stdout)
        return 0
    if args.dump_hotset:
        for d in hot:
            print(f"{d.path}:{d.start_line}-{d.end_line} {d.qualname}")
        print(f"# {len(hot)} hot functions of {len(defs)} total, "
              f"{len(graph.hot_files(hot))} files", file=sys.stderr)
        return 0
    if args.dump_hot_files:
        out = "\n".join(graph.hot_files(hot)) + "\n"
        if args.dump_hot_files == "-":
            sys.stdout.write(out)
        else:
            Path(args.dump_hot_files).write_text(out)
        return 0

    hot_ranges = hotset.hot_ranges(hot)
    if args.emit_hot_ranges:
        Path(args.emit_hot_ranges).write_text(
            "".join(f"{p}:{a}:{b}\n" for p, a, b in hot_ranges))

    findings, used_allows = rules.run_rules(lexed_files, hot)
    for f in findings:
        print(f)

    failures = len(findings)

    if args.check_stale_allows:
        for path, line in stale.stale_analyze_allows(lexed_files,
                                                     used_allows):
            print(f"{path}:{line}: [stale-allow] mpsim-analyze allow "
                  "suppresses nothing — delete it")
            failures += 1
        for path, line in stale.stale_lint_allows(root, files,
                                                  arena_hot_ranges=hot_ranges):
            print(f"{path}:{line}: [stale-allow] mpsim-lint allow "
                  "suppresses nothing — delete it")
            failures += 1

    if args.with_lint:
        lint = stale._import_mpsim_lint()
        lint_findings: list = []
        for rel in files:
            lint.lint_lines(rel, (root / rel).read_text().splitlines(),
                            lint_findings, arena_hot_ranges=hot_ranges)
        for lfind in lint_findings:
            print(lfind)
        failures += len(lint_findings)

    if failures:
        print(f"\nmpsim_analyze: {failures} finding(s); hot set "
              f"{len(hot)}/{len(defs)} functions across "
              f"{len(graph.hot_files(hot))} files", file=sys.stderr)
        return 1
    print(f"mpsim_analyze: OK ({len(files)} files, {len(defs)} functions, "
          f"{len(hot)} hot)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
