// MPTCP — the paper's final algorithm (§2 opening box; "Linked Increases"
// in the later RFC 6356). Per ACK on subflow r the window increases by
//
//     min over S subset of R with r in S of
//         max_{s in S} w_s / RTT_s^2
//       ( sum_{s in S} w_s / RTT_s )^2                       (eq. (1))
//
// and each loss halves w_r. The subset minimisation enforces both fairness
// requirements of §2.5 simultaneously for every possible bottleneck
// combination: since S = {r} yields 1/w_r, the increase never exceeds a
// regular TCP's, and the appendix proves the equilibrium satisfies goals
// (3) and (4).
//
// The appendix also shows the minimising S is always a prefix of the
// subflows ordered by sqrt(w_s)/RTT_s (equivalently by w_s/RTT_s^2), so the
// search is linear, not combinatorial. Both the linear-search and the
// brute-force O(2^n) evaluations are exposed; a property test asserts they
// agree exactly.
#pragma once

#include <cstddef>
#include <span>

#include "cc/congestion_control.hpp"

namespace mpsim::cc {

class MptcpLia : public CongestionControl {
 public:
  double increase_per_ack(const ConnectionView& c, std::size_t r) const override;
  double window_after_loss(const ConnectionView& c, std::size_t r) const override;
  std::string name() const override { return "MPTCP"; }

  // Evaluate eq. (1) directly from window/RTT spans (std::vector converts
  // implicitly). `windows` in packets, `rtts` in seconds. Exposed for tests
  // and the fluid model; increase_per_ack calls the linear form per ACK, so
  // it must not allocate for typical path counts.
  static double increase_linear(std::span<const double> windows,
                                std::span<const double> rtts, std::size_t r);
  static double increase_bruteforce(std::span<const double> windows,
                                    std::span<const double> rtts,
                                    std::size_t r);
};

const MptcpLia& mptcp_lia();

}  // namespace mpsim::cc
