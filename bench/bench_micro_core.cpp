// Microbenchmarks of the simulator core (google-benchmark): event-loop
// dispatch, queue+pipe packet forwarding, the LIA increase computation
// (linear vs brute force), and a complete small TCP simulation. These
// bound how much simulated time the experiment harness can afford.
#include <benchmark/benchmark.h>

#include <vector>

#include "cc/mptcp_lia.hpp"
#include "core/event_list.hpp"
#include "core/rng.hpp"
#include "mptcp/connection.hpp"
#include "net/cbr.hpp"
#include "net/packet.hpp"
#include "net/pipe.hpp"
#include "net/queue.hpp"
#include "topo/network.hpp"

namespace {

using namespace mpsim;

class NopSource : public EventSource {
 public:
  explicit NopSource(EventList& events) : EventSource("nop"), events_(events) {}
  void on_event() override { events_.schedule_in(*this, 1000); }

 private:
  EventList& events_;
};

void BM_EventListDispatch(benchmark::State& state) {
  EventList events;
  std::vector<std::unique_ptr<NopSource>> sources;
  for (int i = 0; i < 64; ++i) {
    sources.push_back(std::make_unique<NopSource>(events));
    events.schedule_at(*sources.back(), i);
  }
  for (auto _ : state) {
    events.run_one();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_EventListDispatch);

void BM_QueuePipeForwarding(benchmark::State& state) {
  EventList events;
  net::Queue queue(events, "q", 1e9, 1u << 24);
  net::Pipe pipe(events, "p", from_us(10));
  net::CountingSink sink("s");
  net::Route route({&queue, &pipe, &sink});
  for (auto _ : state) {
    net::Packet& pkt = net::Packet::alloc();
    pkt.type = net::PacketType::kCbr;
    pkt.send_on(route);
    events.run_all();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_QueuePipeForwarding);

void BM_LiaIncreaseLinear(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  std::vector<double> w(n), rtt(n);
  for (std::size_t i = 0; i < n; ++i) {
    w[i] = 1 + rng.next_double() * 50;
    rtt[i] = 0.01 + rng.next_double();
  }
  std::size_t r = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cc::MptcpLia::increase_linear(w, rtt, r));
    r = (r + 1) % n;
  }
}
BENCHMARK(BM_LiaIncreaseLinear)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_LiaIncreaseBruteForce(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  std::vector<double> w(n), rtt(n);
  for (std::size_t i = 0; i < n; ++i) {
    w[i] = 1 + rng.next_double() * 50;
    rtt[i] = 0.01 + rng.next_double();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(cc::MptcpLia::increase_bruteforce(w, rtt, 0));
  }
}
BENCHMARK(BM_LiaIncreaseBruteForce)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_SmallTcpSimulation(benchmark::State& state) {
  // One simulated second of a single TCP over a 10 Mb/s bottleneck.
  for (auto _ : state) {
    EventList events;
    topo::Network net(events);
    auto link = net.add_link("l", 10e6, from_ms(10),
                             topo::bdp_bytes(10e6, from_ms(20)));
    auto& ack = net.add_pipe("a", from_ms(10));
    auto tcp = mptcp::make_single_path_tcp(
        events, "t", topo::path_of({&link}), {&ack});
    tcp->start(0);
    events.run_until(from_sec(1));
    benchmark::DoNotOptimize(tcp->delivered_pkts());
  }
}
BENCHMARK(BM_SmallTcpSimulation)->Unit(benchmark::kMillisecond);

}  // namespace
