#include "cc/mptcp_lia.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <numeric>
#include <vector>

#include "core/check.hpp"

namespace mpsim::cc {

namespace {
// Connections with more paths than this (none of the paper's scenarios;
// a guard for future path-manager workloads) take a heap-allocating slow
// path instead of the stack buffers the per-ACK fast path uses.
constexpr std::size_t kInlinePaths = 32;
}  // namespace

double MptcpLia::increase_linear(std::span<const double> windows,
                                 std::span<const double> rtts,
                                 std::size_t r) {
  const std::size_t n = windows.size();
  MPSIM_CHECK(rtts.size() == n && r < n, "window/RTT vectors out of step");

  // Order subflows by w/RTT^2 ascending. Note (sqrt(w)/RTT)^2 = w/RTT^2, so
  // this is the appendix's sqrt(w_s)/RTT_s ordering. Runs once per ACK:
  // index scratch stays on the stack for realistic path counts.
  std::array<std::size_t, kInlinePaths> order_buf;
  std::vector<std::size_t> order_spill;
  std::size_t* order = order_buf.data();
  if (n > kInlinePaths) {
    // Spill only beyond kInlinePaths subflows — unreachable for the
    // paper's 2-8 path topologies; the stack buffer serves those.
    // mpsim-analyze: allow(hot-alloc)
    order_spill.resize(n);
    order = order_spill.data();
  }
  std::iota(order, order + n, std::size_t{0});
  std::sort(order, order + n, [&](std::size_t a, std::size_t b) {
    return windows[a] / (rtts[a] * rtts[a]) < windows[b] / (rtts[b] * rtts[b]);
  });

  // Position of r in the ordering.
  std::size_t pos = 0;
  while (order[pos] != r) ++pos;

  // min over u >= pos of (w_u/RTT_u^2) / (prefix-sum_{t<=u} w_t/RTT_t)^2.
  double best = std::numeric_limits<double>::infinity();
  double prefix = 0.0;
  for (std::size_t u = 0; u < n; ++u) {
    const std::size_t s = order[u];
    prefix += windows[s] / rtts[s];
    if (u < pos) continue;
    const double numer = windows[s] / (rtts[s] * rtts[s]);
    best = std::min(best, numer / (prefix * prefix));
  }
  return best;
}

double MptcpLia::increase_bruteforce(std::span<const double> windows,
                                     std::span<const double> rtts,
                                     std::size_t r) {
  const std::size_t n = windows.size();
  MPSIM_CHECK(n <= 20, "brute force is exponential; test use only");
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t mask = 1; mask < (1u << n); ++mask) {
    if (!(mask & (1u << r))) continue;
    double numer = 0.0;
    double denom = 0.0;
    for (std::size_t s = 0; s < n; ++s) {
      if (!(mask & (1u << s))) continue;
      numer = std::max(numer, windows[s] / (rtts[s] * rtts[s]));
      denom += windows[s] / rtts[s];
    }
    best = std::min(best, numer / (denom * denom));
  }
  return best;
}

double MptcpLia::increase_per_ack(const ConnectionView& c,
                                  std::size_t r) const {
  MPSIM_CHECK(c.subflow_active(r),
              "LIA increase requested for an inactive subflow");
  // Snapshot the per-path state into stack buffers: this runs once per ACK,
  // and heap-allocating vectors here showed up in the FatTree profile.
  // Only *active* subflows are copied — eq. (1)'s sums range over the
  // paths in use — so `m` is the compacted count and `k` is r's index in
  // the compacted ordering.
  const std::size_t n = c.num_subflows();
  std::array<double, kInlinePaths> w_buf;
  std::array<double, kInlinePaths> rtt_buf;
  std::vector<double> w_spill;
  std::vector<double> rtt_spill;
  double* w = w_buf.data();
  double* rtt = rtt_buf.data();
  if (n > kInlinePaths) {
    // Same spill-only-beyond-inline-capacity escape as above.
    // mpsim-analyze: allow(hot-alloc)
    w_spill.resize(n);
    // mpsim-analyze: allow(hot-alloc)
    rtt_spill.resize(n);
    w = w_spill.data();
    rtt = rtt_spill.data();
  }
  std::size_t m = 0;
  std::size_t k = 0;
  for (std::size_t s = 0; s < n; ++s) {
    if (!c.subflow_active(s)) continue;
    if (s == r) k = m;
    w[m] = c.cwnd_pkts(s);
    MPSIM_CHECK(w[m] > 0.0,
                "congestion window must stay positive (>= min_cwnd)");
    rtt[m] = c.srtt_sec(s);
    MPSIM_CHECK(rtt[m] > 0.0, "smoothed RTT must be positive");
    ++m;
  }
  const double inc = increase_linear(std::span<const double>(w, m),
                                     std::span<const double>(rtt, m), k);
  // Eq. (1): the minimum over subsets containing r is bounded by the
  // singleton-equivalent term, i.e. never more aggressive than 1/w_r.
  MPSIM_CHECK(inc > 0.0 && inc <= 1.0 / c.cwnd_pkts(r) + 1e-12,
              "LIA increase outside (0, 1/w_r] (eq. 1 bound)");
  return inc;
}

double MptcpLia::window_after_loss(const ConnectionView& c,
                                   std::size_t r) const {
  return c.cwnd_pkts(r) / 2.0;
}

const MptcpLia& mptcp_lia() {
  static const MptcpLia instance;
  return instance;
}

}  // namespace mpsim::cc
