#include "net/packet.hpp"

#include "core/check.hpp"

namespace mpsim::net {

Packet& PacketPool::alloc() {
  Packet* p;
  if (free_.empty()) {
    // Pool growth: one heap allocation per new high-water mark of
    // in-flight packets, amortized to zero once the simulation reaches
    // steady state — never one per packet.
    // mpsim-analyze: allow(hot-alloc)
    storage_.push_back(std::unique_ptr<Packet>(new Packet()));
    // Keep free_ able to hold every packet ever created, so release() on
    // the per-hop hot path can never reallocate the free list.
    // mpsim-analyze: allow(hot-alloc)
    free_.reserve(storage_.capacity());
    p = storage_.back().get();
    p->pool_ = this;
  } else {
    p = free_.back();
    free_.pop_back();
    MPSIM_CHECK(p->in_pool_, "free-list packet not marked as pooled");
  }
  p->in_pool_ = false;
  ++outstanding_;
  ++total_allocated_;
  if (outstanding_ > peak_) peak_ = outstanding_;
  MPSIM_CHECK(outstanding_ + free_.size() == storage_.size(),
              "packet conservation: outstanding + free != capacity");
  return *p;
}

void PacketPool::release(Packet& p) {
  MPSIM_CHECK(p.pool_ == this, "packet released to a foreign pool");
  MPSIM_CHECK(!p.in_pool_, "packet double-released to pool");
  MPSIM_CHECK(outstanding_ > 0, "release with no outstanding packets");
  if (p.wire_refs != nullptr) {
    MPSIM_CHECK(*p.wire_refs > 0, "wire-reference ledger underflow");
    --*p.wire_refs;
    p.wire_refs = nullptr;
  }
  p.in_pool_ = true;
  --outstanding_;
  ++total_released_;
  // Within capacity by construction: alloc() reserves free_ for every
  // packet it ever creates, so this push never allocates.
  // mpsim-analyze: allow(hot-alloc)
  free_.push_back(&p);
  MPSIM_CHECK(outstanding_ + free_.size() == storage_.size(),
              "packet conservation: outstanding + free != capacity");
}

PacketPool& PacketPool::of(EventList& events) {
  // kPacketPoolSlot holds a PacketPool or nothing, so the downcast is safe
  // by construction.
  if (EventList::Service* s = events.service(EventList::kPacketPoolSlot)) {
    return *static_cast<PacketPool*>(s);
  }
  // Lazy attach: once per simulation instance, on its very first packet.
  // mpsim-analyze: allow(hot-alloc)
  auto pool = std::make_unique<PacketPool>();
  return static_cast<PacketPool&>(
      events.attach_service(EventList::kPacketPoolSlot, std::move(pool)));
}

PacketPool* PacketPool::find(const EventList& events) {
  return static_cast<PacketPool*>(
      events.service(EventList::kPacketPoolSlot));
}

void Packet::reset() {
  type = PacketType::kData;
  flow_id = 0;
  subflow_id = 0;
  subflow_seq = 0;
  data_seq = 0;
  subflow_cum_ack = 0;
  data_cum_ack = 0;
  rcv_window = 0;
  is_window_update = false;
  size_bytes = kDataPacketBytes;
  ts_echo = 0;
  is_retransmit = false;
  wire_refs = nullptr;
  route_ = nullptr;
  next_hop_ = 0;
  link_next = nullptr;
  link_prev = nullptr;
  link_due = 0;
}

Packet& Packet::alloc(EventList& events) {
  Packet& p = PacketPool::of(events).alloc();
  p.reset();
  return p;
}

std::size_t Packet::pool_outstanding(const EventList& events) {
  const PacketPool* pool = PacketPool::find(events);
  return pool ? pool->outstanding() : 0;
}

}  // namespace mpsim::net
