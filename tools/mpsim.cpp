// mpsim — the scenario CLI driver.
//
//   mpsim run <spec.toml>...       execute every run in each spec's grid
//   mpsim validate <spec.toml>...  dry-build every grid point, no sim time
//   mpsim list                     print the registered kinds
//
// `run` prints one deterministic block per run (name + recorded metrics,
// fixed formatting) to stdout and writes BENCH_scenario_<name>.json; wall
// timings go to stderr, so stdout and the trace files are byte-identical
// across thread counts and schedulers — CI diffs them. A malformed spec
// exits 2 with a file:line diagnostic.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/env.hpp"
#include "core/event_list.hpp"
#include "runner/report.hpp"
#include "scenario/engine.hpp"
#include "scenario/registry.hpp"
#include "trace/trace.hpp"

namespace {

using namespace mpsim;

int usage() {
  std::fprintf(stderr,
               "usage: mpsim <command> [options] [<spec.toml>...]\n"
               "\n"
               "commands:\n"
               "  run       execute every run in each spec's sweep x seed "
               "grid\n"
               "  validate  dry-build every grid point; no simulated time\n"
               "  list      print registered topology/algorithm/traffic/"
               "scheduler kinds\n"
               "\n"
               "options:\n"
               "  --threads=N     worker threads (default MPSIM_THREADS, "
               "else hardware)\n"
               "  --shard-threads=N  shards per simulation (conservative "
               "parallel DES;\n"
               "                  default MPSIM_SHARD_THREADS, else 1; "
               "byte-identical to 1)\n"
               "  --scale=X       simulated-duration scale (default "
               "MPSIM_BENCH_SCALE, else 1)\n"
               "  --trace=KIND    csv|jsonl|null|off; overrides MPSIM_TRACE "
               "and [output] trace\n"
               "  --trace-dir=D   directory for trace_<run>.* files "
               "(default \".\")\n"
               "\n"
               "environment:\n"
               "  MPSIM_SCHEDULER=adaptive|wheel|heap   event-queue backend "
               "(default adaptive;\n"
               "                  bad values exit 2; see `mpsim list`)\n"
               "\n"
               "specs may carry a [faults] section (scripted link "
               "down/up/rate/ramp,\nloss bursts, queue drain/corrupt, "
               "subflow resets, flap trains, seeded\nrandom outages); "
               "fault runs report recovery metrics (fault_outages,\n"
               "fault_ttr_mean_s, ...) alongside the ordinary ones. See "
               "README.md.\n");
  return 1;
}

struct Options {
  unsigned threads = 0;
  int shard_threads = 1;
  double scale = 1.0;
  std::string trace;  // "" = not given on the command line
  std::string trace_dir = ".";
  std::vector<std::string> specs;
};

bool parse_args(int argc, char** argv, Options& opts) {
  opts.threads = static_cast<unsigned>(
      env::env_int("MPSIM_THREADS", 0, 0, 1 << 20));
  opts.shard_threads =
      static_cast<int>(env::env_int("MPSIM_SHARD_THREADS", 1, 1, 1 << 10));
  opts.scale = env::env_double("MPSIM_BENCH_SCALE", 1.0, 0.0);
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&](const char* flag, std::string& out) {
      const std::size_t n = std::strlen(flag);
      if (arg.rfind(flag, 0) != 0) return false;
      out = arg.substr(n);
      return true;
    };
    std::string v;
    if (value_of("--threads=", v)) {
      std::int64_t n = 0;
      if (!env::parse_int(v, n) || n < 0) {
        std::fprintf(stderr, "mpsim: --threads wants a non-negative "
                             "integer, got \"%s\"\n", v.c_str());
        return false;
      }
      opts.threads = static_cast<unsigned>(n);
    } else if (value_of("--shard-threads=", v)) {
      std::int64_t n = 0;
      if (!env::parse_int(v, n) || n < 1 || n > (1 << 10)) {
        std::fprintf(stderr, "mpsim: --shard-threads wants an integer "
                             ">= 1, got \"%s\"\n", v.c_str());
        return false;
      }
      opts.shard_threads = static_cast<int>(n);
    } else if (value_of("--scale=", v)) {
      double d = 0.0;
      if (!env::parse_double(v, d) || !(d > 0.0)) {
        std::fprintf(stderr, "mpsim: --scale wants a positive number, "
                             "got \"%s\"\n", v.c_str());
        return false;
      }
      opts.scale = d;
    } else if (value_of("--trace=", v)) {
      if (v != "csv" && v != "jsonl" && v != "null" && v != "off") {
        std::fprintf(stderr, "mpsim: --trace wants csv|jsonl|null|off, "
                             "got \"%s\"\n", v.c_str());
        return false;
      }
      opts.trace = v;
    } else if (value_of("--trace-dir=", v)) {
      opts.trace_dir = v;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "mpsim: unknown option %s\n", arg.c_str());
      return false;
    } else {
      opts.specs.push_back(arg);
    }
  }
  return true;
}

trace::SinkKind sink_from_name(const std::string& name) {
  if (name == "csv") return trace::SinkKind::kCsv;
  if (name == "jsonl") return trace::SinkKind::kJsonl;
  if (name == "null") return trace::SinkKind::kNull;
  return trace::SinkKind::kNone;
}

// Priority: --trace flag, then MPSIM_TRACE, then the spec's [output] trace.
trace::SinkKind resolve_sink(const Options& opts,
                             const scenario::Scenario& scn) {
  if (!opts.trace.empty()) return sink_from_name(opts.trace);
  if (trace::sink_from_env() != trace::SinkKind::kNone) {
    return trace::sink_from_env();
  }
  return scn.spec_trace_sink();
}

int cmd_list() {
  const scenario::Registry& reg = scenario::builtin_registry();
  auto print = [](const char* title, const scenario::Registry::Names& ns) {
    std::printf("%s:\n", title);
    for (const auto& [key, help] : ns.entries) {
      std::printf("  %-12s %s\n", key.c_str(), help.c_str());
    }
  };
  print("topologies", reg.topology_names());
  print("algorithms", reg.algorithm_names());
  print("traffic", reg.traffic_names());
  print("data schedulers ([scheduler] kind=...)", reg.scheduler_names());
  std::printf("event schedulers (MPSIM_SCHEDULER=adaptive|wheel|heap):\n");
  std::printf("  %-12s %s\n", "adaptive",
              "heap while sparse, timing wheel while dense (default)");
  std::printf("  %-12s %s\n", "wheel", "hierarchical timing wheel");
  std::printf("  %-12s %s\n", "heap", "binary heap");
  std::printf("  resolved default: %s\n",
              to_string(EventList::default_scheduler()));
  return 0;
}

int cmd_validate(const Options& opts) {
  int failures = 0;
  for (const std::string& path : opts.specs) {
    try {
      const scenario::Scenario scn = scenario::Scenario::load(path);
      const std::size_t runs = scn.expand().size();
      scn.validate(opts.scale);
      std::printf("%s: ok (%zu run%s)\n", path.c_str(), runs,
                  runs == 1 ? "" : "s");
    } catch (const scenario::SpecError& e) {
      std::fprintf(stderr, "%s\n", e.what());
      ++failures;
    }
  }
  return failures == 0 ? 0 : 2;
}

int cmd_run(const Options& opts) {
  for (const std::string& path : opts.specs) {
    try {
      const scenario::Scenario scn = scenario::Scenario::load(path);
      scn.validate(opts.scale);  // fail fast before burning CPU on the grid

      scenario::EngineOptions eng;
      eng.threads = opts.threads;
      eng.shard_threads = opts.shard_threads;
      eng.time_scale = opts.scale;
      eng.trace_sink = resolve_sink(opts, scn);
      eng.trace_dir = opts.trace_dir;
      eng.trace_capacity = static_cast<std::size_t>(env::env_int(
          "MPSIM_TRACE_CAPACITY",
          static_cast<std::int64_t>(scn.spec_trace_capacity()), 0,
          std::int64_t{1} << 32));

      const std::vector<runner::RunResult> results = scn.run(eng);

      std::printf("== %s ==\n", scn.name().c_str());
      for (const runner::RunResult& r : results) {
        std::printf("run %s\n", r.name.c_str());
        // The resolved backend (and, for adaptive, its migration count) is
        // deterministic per run, so printing it keeps stdout byte-identical
        // across thread counts while making bench numbers attributable.
        if (!r.metrics.scheduler.empty()) {
          std::printf("  # scheduler = %s", r.metrics.scheduler.c_str());
          if (r.metrics.scheduler == "adaptive") {
            std::printf(" (switches=%llu)",
                        static_cast<unsigned long long>(
                            r.metrics.scheduler_switches));
          }
          std::printf("\n");
        }
        for (const auto& [k, v] : r.annotations) {
          std::printf("  # %s = %s\n", k.c_str(), v.c_str());
        }
        for (const auto& [k, v] : r.values) {
          std::printf("  %s = %.10g\n", k.c_str(), v);
        }
        if (!r.trace_path.empty()) {
          std::printf("  trace = %s\n", r.trace_path.c_str());
        }
      }
      std::fflush(stdout);
      std::fprintf(stderr, "[%s] %zu runs, %.2fs simulated work in %u "
                           "thread(s)\n",
                   scn.name().c_str(), results.size(),
                   runner::total_wall_seconds(results),
                   eng.threads == 0
                       ? runner::ExperimentRunner::hardware_threads()
                       : eng.threads);

      runner::write_json_file("scenario_" + scn.name(),
                              runner::json_from_results(results));
    } catch (const scenario::SpecError& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 2;
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  Options opts;
  if (!parse_args(argc, argv, opts)) return 1;

  if (cmd == "list") return cmd_list();
  if (opts.specs.empty()) {
    std::fprintf(stderr, "mpsim: %s needs at least one spec file\n",
                 cmd.c_str());
    return usage();
  }
  if (cmd == "validate") return cmd_validate(opts);
  if (cmd == "run") return cmd_run(opts);
  std::fprintf(stderr, "mpsim: unknown command \"%s\"\n", cmd.c_str());
  return usage();
}
