// Multipath connection integration: striping, coupling, fairness at a
// shared bottleneck (Fig. 1), reinjection across subflows, completion.
#include "mptcp/connection.hpp"

#include <gtest/gtest.h>

#include "cc/coupled.hpp"
#include "cc/ewtcp.hpp"
#include "cc/mptcp_lia.hpp"
#include "cc/uncoupled.hpp"
#include "sim_fixtures.hpp"
#include "stats/monitors.hpp"
#include "topo/network.hpp"
#include "topo/two_link.hpp"

namespace mpsim {
namespace {

using mptcp::ConnectionConfig;
using mptcp::MptcpConnection;
using test::SingleLink;

topo::LinkSpec mk_spec(double rate_bps, SimTime one_way, double bdp_mult) {
  topo::LinkSpec s;
  s.rate_bps = rate_bps;
  s.one_way_delay = one_way;
  s.buf_bytes = topo::bdp_bytes(rate_bps, 2 * one_way, bdp_mult);
  return s;
}

TEST(Connection, UsesBothDisjointLinks) {
  EventList events;
  topo::Network net(events);
  topo::TwoLink links(net, mk_spec(10e6, from_ms(10), 1.0),
                      mk_spec(10e6, from_ms(10), 1.0));
  MptcpConnection conn(events, "mp", cc::mptcp_lia());
  conn.add_subflow(links.fwd(0), links.rev(0));
  conn.add_subflow(links.fwd(1), links.rev(1));
  conn.start(0);
  events.run_until(from_sec(20));
  // With two empty 10 Mb/s links, MPTCP should aggregate most of both.
  const double mbps = stats::pkts_to_mbps(conn.delivered_pkts(), from_sec(20));
  EXPECT_GT(mbps, 15.0);
  EXPECT_GT(conn.subflow(0).packets_acked(), 1000u);
  EXPECT_GT(conn.subflow(1).packets_acked(), 1000u);
  EXPECT_EQ(conn.receiver().window_violations(), 0u);
}

TEST(Connection, Fig1SharedBottleneckFairness) {
  // Fig. 1: a two-subflow MPTCP flow and a single-path TCP share one
  // bottleneck. Running UNCOUPLED on both subflows would take ~2/3 of the
  // link; MPTCP must take ~1/2.
  EventList events;
  topo::Network net(events);
  SingleLink link(net, 12e6, from_ms(10), topo::bdp_bytes(12e6, from_ms(20)));
  MptcpConnection mp(events, "mp", cc::mptcp_lia());
  mp.add_subflow(link.fwd(), link.rev());
  mp.add_subflow(link.fwd(), link.rev());
  auto tcp = test::single_tcp(events, "tcp", link);
  mp.start(0);
  tcp->start(from_ms(53));
  events.run_until(from_sec(5));  // warm-up
  const auto mp0 = mp.delivered_pkts();
  const auto tcp0 = tcp->delivered_pkts();
  events.run_until(from_sec(65));
  const double mp_share = static_cast<double>(mp.delivered_pkts() - mp0);
  const double tcp_share =
      static_cast<double>(tcp->delivered_pkts() - tcp0);
  const double frac = mp_share / (mp_share + tcp_share);
  EXPECT_NEAR(frac, 0.5, 0.12) << "MPTCP must not beat TCP at a shared "
                                  "bottleneck";
}

TEST(Connection, Fig1UncoupledIsUnfair) {
  // The control: UNCOUPLED on two subflows *does* take about twice the
  // single-path TCP's share (the problem §2.1 identifies).
  EventList events;
  topo::Network net(events);
  SingleLink link(net, 12e6, from_ms(10), topo::bdp_bytes(12e6, from_ms(20)));
  MptcpConnection mp(events, "mp", cc::uncoupled());
  mp.add_subflow(link.fwd(), link.rev());
  mp.add_subflow(link.fwd(), link.rev());
  auto tcp = test::single_tcp(events, "tcp", link);
  mp.start(0);
  tcp->start(from_ms(53));
  events.run_until(from_sec(5));
  const auto mp0 = mp.delivered_pkts();
  const auto tcp0 = tcp->delivered_pkts();
  events.run_until(from_sec(65));
  const double mp_share = static_cast<double>(mp.delivered_pkts() - mp0);
  const double tcp_share =
      static_cast<double>(tcp->delivered_pkts() - tcp0);
  const double frac = mp_share / (mp_share + tcp_share);
  EXPECT_GT(frac, 0.58) << "uncoupled should grab ~2/3";
}

TEST(Connection, CoupledConcentratesOnLessCongestedPath) {
  // Link 1 carries four competing TCPs (heavily congested), link 2 one.
  // Window-based COUPLED sloshes between paths on short timescales, so the
  // concentration property is asserted on a long average with a strong
  // congestion asymmetry.
  EventList events;
  topo::Network net(events);
  topo::TwoLink links(net, mk_spec(10e6, from_ms(10), 1.0),
                      mk_spec(10e6, from_ms(10), 1.0));
  std::vector<std::unique_ptr<MptcpConnection>> competitors;
  for (int i = 0; i < 4; ++i) {
    competitors.push_back(mptcp::make_single_path_tcp(
        events, "c" + std::to_string(i), links.fwd(0), links.rev(0)));
    competitors.back()->start(from_ms(11 * i));
  }
  competitors.push_back(mptcp::make_single_path_tcp(events, "c4",
                                                    links.fwd(1),
                                                    links.rev(1)));
  competitors.back()->start(from_ms(23));
  MptcpConnection mp(events, "mp", cc::coupled());
  mp.add_subflow(links.fwd(0), links.rev(0));
  mp.add_subflow(links.fwd(1), links.rev(1));
  mp.start(from_ms(35));
  events.run_until(from_sec(120));
  const auto on_link1 = mp.subflow(0).packets_acked();
  const auto on_link2 = mp.subflow(1).packets_acked();
  EXPECT_GT(links.queue(0).loss_rate(), links.queue(1).loss_rate());
  EXPECT_GT(on_link2, 2 * on_link1)
      << "COUPLED should carry most traffic on the less congested link";
}

TEST(Connection, FiniteFlowCompletesAndStops) {
  EventList events;
  topo::Network net(events);
  topo::TwoLink links(net, mk_spec(10e6, from_ms(5), 1.0),
                      mk_spec(10e6, from_ms(5), 1.0));
  ConnectionConfig cfg;
  cfg.app_limit_pkts = 2000;
  MptcpConnection conn(events, "mp", cc::mptcp_lia(), cfg);
  conn.add_subflow(links.fwd(0), links.rev(0));
  conn.add_subflow(links.fwd(1), links.rev(1));
  int completions = 0;
  conn.on_complete = [&] { ++completions; };
  conn.start(0);
  events.run_until(from_sec(30));
  EXPECT_TRUE(conn.complete());
  EXPECT_EQ(completions, 1);
  EXPECT_EQ(conn.receiver().data_cum_ack(), 2000u);
  // Both subflows carried data.
  EXPECT_GT(conn.subflow(0).packets_acked(), 100u);
  EXPECT_GT(conn.subflow(1).packets_acked(), 100u);
  const SimTime done_at = conn.completed_at();
  events.run_until(from_sec(40));
  EXPECT_EQ(conn.completed_at(), done_at);
}

TEST(Connection, ReinjectionRescuesDataFromDeadSubflow) {
  // Subflow 1's link dies mid-transfer with a window of data stranded on
  // it. The stranded data sequence numbers must be reinjected on subflow 0
  // after the RTO so the in-order stream keeps moving.
  EventList events;
  topo::Network net(events);
  auto& vq = net.add_variable_queue("v", 10e6, 50 * net::kDataPacketBytes);
  auto& vpipe = net.add_pipe("vp", from_ms(10));
  auto& vack = net.add_pipe("va", from_ms(10));
  SingleLink good(net, 10e6, from_ms(10), 50 * net::kDataPacketBytes, "good");

  MptcpConnection conn(events, "mp", cc::mptcp_lia());
  conn.add_subflow(good.fwd(), good.rev());
  conn.add_subflow({&vq, &vpipe}, {&vack});
  conn.start(0);
  events.run_until(from_sec(3));
  ASSERT_GT(conn.subflow(1).inflight(), 0u) << "need stranded data to test";
  vq.set_rate(0.0);  // kill subflow 1 permanently
  const auto delivered_before = conn.receiver().delivered();
  events.run_until(from_sec(10));
  EXPECT_GT(conn.subflow(1).timeouts(), 0u);
  // ~7 s at close to 10 Mb/s on the good link ~= 5800 packets; without
  // reinjection the stream would stall at the first stranded sequence.
  EXPECT_GT(conn.receiver().delivered() - delivered_before, 4000u);
  EXPECT_GT(conn.receiver().duplicates(), 0u)
      << "frozen copies drain from the dead queue only if it revives; the "
         "duplicates here come from go-back-N copies on the live path";
  EXPECT_EQ(conn.receiver().window_violations(), 0u);
}

TEST(Connection, TightReceiveBufferThrottlesButDelivers) {
  EventList events;
  topo::Network net(events);
  topo::TwoLink links(net, mk_spec(10e6, from_ms(10), 1.0),
                      mk_spec(10e6, from_ms(50), 1.0));  // asymmetric RTTs
  ConnectionConfig cfg;
  cfg.recv_buffer_pkts = 16;
  MptcpConnection conn(events, "mp", cc::mptcp_lia(), cfg);
  conn.add_subflow(links.fwd(0), links.rev(0));
  conn.add_subflow(links.fwd(1), links.rev(1));
  conn.start(0);
  events.run_until(from_sec(20));
  EXPECT_EQ(conn.receiver().window_violations(), 0u)
      << "sender must honour the advertised window";
  EXPECT_GT(conn.delivered_pkts(), 1000u);
}

TEST(Connection, ViewReportsLiveState) {
  EventList events;
  topo::Network net(events);
  topo::TwoLink links(net, mk_spec(10e6, from_ms(10), 1.0),
                      mk_spec(10e6, from_ms(40), 1.0));
  MptcpConnection conn(events, "mp", cc::mptcp_lia());
  conn.add_subflow(links.fwd(0), links.rev(0));
  conn.add_subflow(links.fwd(1), links.rev(1));
  conn.start(0);
  events.run_until(from_sec(5));
  EXPECT_EQ(conn.num_subflows(), 2u);
  EXPECT_GE(conn.cwnd_pkts(0), 1.0);
  EXPECT_GE(conn.cwnd_pkts(1), 1.0);
  // Base RTTs 20 ms / 80 ms plus up to one buffer's worth of queueing.
  EXPECT_NEAR(conn.srtt_sec(0), 0.03, 0.025);
  EXPECT_NEAR(conn.srtt_sec(1), 0.12, 0.09);
}

TEST(Connection, DistinctFlowIds) {
  EventList events;
  topo::Network net(events);
  SingleLink link(net, 10e6, from_ms(5), 100 * net::kDataPacketBytes);
  auto a = test::single_tcp(events, "a", link);
  auto b = test::single_tcp(events, "b", link);
  EXPECT_NE(a->flow_id(), b->flow_id());
}

}  // namespace
}  // namespace mpsim
