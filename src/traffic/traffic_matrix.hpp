// The §4 data-center traffic patterns, as (src, dst) pair lists:
//
//   TP1 — random permutation: every host sends to exactly one other host
//         and receives from exactly one (a derangement). The minimal
//         pattern that can fully load a FatTree.
//   TP2 — one-to-many: every host opens 12 flows, modelling replicated
//         distributed-filesystem writes. In FatTree destinations are
//         random; in BCube they are the host's neighbours at each level.
//   TP3 — sparse: 30% of hosts open one flow to a random destination.
#pragma once

#include <cstdint>
#include <vector>

#include "core/rng.hpp"

namespace mpsim::traffic {

struct FlowPair {
  int src;
  int dst;
};

// TP1: a random derangement of [0, hosts).
std::vector<FlowPair> permutation_tm(int hosts, Rng& rng);

// TP2 (random destinations): `flows_per_host` distinct random dsts != src.
std::vector<FlowPair> one_to_many_tm(int hosts, int flows_per_host, Rng& rng);

// TP3: each host participates with probability `fraction`; one random dst.
std::vector<FlowPair> sparse_tm(int hosts, double fraction, Rng& rng);

}  // namespace mpsim::traffic
