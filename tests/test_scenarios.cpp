// End-to-end reproductions of the §2 design vignettes, scaled down to run
// in test time. The full paper-scale versions live in bench/.
#include <gtest/gtest.h>

#include "cc/coupled.hpp"
#include "cc/ewtcp.hpp"
#include "cc/mptcp_lia.hpp"
#include "cc/semicoupled.hpp"
#include "mptcp/connection.hpp"
#include "model/tcp_model.hpp"
#include "sim_fixtures.hpp"
#include "stats/monitors.hpp"
#include "topo/network.hpp"
#include "topo/parking_lot.hpp"
#include "topo/two_link.hpp"

namespace mpsim {
namespace {

using mptcp::ConnectionConfig;
using mptcp::MptcpConnection;

// --- §2.3 fixed-loss arithmetic, validated in simulation -----------------
//
// WiFi-like path: higher loss, RTT 10 ms. 3G-like path: 5x lower loss,
// RTT 100 ms. Links are loss elements + pipes (no queueing), so loss rates
// are exact. The paper's raw 4%/1% values leave NewReno timeout-dominated
// (windows of ~7 packets cannot raise 3 dupacks); we scale both down 8x,
// which preserves every ratio the §2.3 argument uses while keeping the
// dynamics in the AIMD regime the fluid model describes. The bench
// (bench_fig15_wifi3g_compete) reports the paper-exact settings too.
inline constexpr double kWifiLoss = 0.005;
inline constexpr double k3gLoss = 0.001;

struct FixedLossPaths {
  explicit FixedLossPaths(topo::Network& net)
      : wifi_loss(net.add_lossy("wifi/loss", kWifiLoss, 11)),
        wifi_q(net.add_queue("wifi/q", 1e9, 1u << 30)),
        wifi_pipe(net.add_pipe("wifi/pipe", from_ms(5))),
        wifi_ack(net.add_pipe("wifi/ack", from_ms(5))),
        g3_loss(net.add_lossy("3g/loss", k3gLoss, 13)),
        g3_q(net.add_queue("3g/q", 1e9, 1u << 30)),
        g3_pipe(net.add_pipe("3g/pipe", from_ms(50))),
        g3_ack(net.add_pipe("3g/ack", from_ms(50))) {}

  topo::Path wifi_fwd() { return {&wifi_loss, &wifi_q, &wifi_pipe}; }
  topo::Path wifi_rev() { return {&wifi_ack}; }
  topo::Path g3_fwd() { return {&g3_loss, &g3_q, &g3_pipe}; }
  topo::Path g3_rev() { return {&g3_ack}; }

  net::LossyLink& wifi_loss;
  net::Queue& wifi_q;
  net::Pipe& wifi_pipe;
  net::Pipe& wifi_ack;
  net::LossyLink& g3_loss;
  net::Queue& g3_q;
  net::Pipe& g3_pipe;
  net::Pipe& g3_ack;
};

double run_rate_pkts(EventList& events, MptcpConnection& conn,
                     SimTime warmup, SimTime measure) {
  conn.start(0);
  events.run_until(warmup);
  const auto before = conn.delivered_pkts();
  events.run_until(warmup + measure);
  return static_cast<double>(conn.delivered_pkts() - before) /
         to_sec(measure);
}

TEST(Section23, FluidFormulaHoldsAtModerateLoss) {
  // At the paper's 4% WiFi loss the window is ~7 packets and NewReno is
  // timeout-dominated, so the fluid sqrt(2/p) value overestimates badly
  // (a known limit of the model, cf. PFTK). Validate the formula where it
  // is meant to hold: moderate loss, window ~30.
  EventList events;
  topo::Network net(events);
  auto& loss = net.add_lossy("l", 0.002, 21);
  auto& q = net.add_queue("q", 1e9, 1u << 30);
  auto& pipe = net.add_pipe("p", from_ms(25));
  auto& ack = net.add_pipe("a", from_ms(25));
  auto tcp =
      mptcp::make_single_path_tcp(events, "t", {&loss, &q, &pipe}, {&ack});
  const double rate = run_rate_pkts(events, *tcp, from_sec(5), from_sec(120));
  const double fluid = model::tcp_rate(0.002, 0.050);  // ~632 pkt/s
  EXPECT_GT(rate, 0.65 * fluid);
  EXPECT_LT(rate, 1.15 * fluid);
}

TEST(Section23, HighLossShortRttStillBeatsLowLossLongRtt) {
  // The qualitative §2.3 premise: despite 4x the loss, the WiFi-like path
  // outperforms the 3G-like path because its RTT is 10x shorter.
  EventList events;
  topo::Network net(events);
  FixedLossPaths paths(net);
  auto wifi = mptcp::make_single_path_tcp(events, "wifi", paths.wifi_fwd(),
                                          paths.wifi_rev());
  auto g3 = mptcp::make_single_path_tcp(events, "3g", paths.g3_fwd(),
                                        paths.g3_rev());
  wifi->start(0);
  g3->start(0);
  events.run_until(from_sec(65));
  const double wifi_rate =
      static_cast<double>(wifi->delivered_pkts()) / 65.0;
  const double g3_rate = static_cast<double>(g3->delivered_pkts()) / 65.0;
  EXPECT_GT(wifi_rate, 1.5 * g3_rate);
}

TEST(Section23, SinglePath3gMatchesFormula) {
  EventList events;
  topo::Network net(events);
  FixedLossPaths paths(net);
  auto tcp = mptcp::make_single_path_tcp(events, "3g", paths.g3_fwd(),
                                         paths.g3_rev());
  const double rate =
      run_rate_pkts(events, *tcp, from_sec(5), from_sec(120));
  // w ~ 45 pkts: comfortably in the fast-retransmit regime, so the fluid
  // value (~447 pkt/s) is accurate.
  EXPECT_NEAR(rate, model::tcp_rate(k3gLoss, 0.100), 0.25 * model::tcp_rate(k3gLoss, 0.100));
}

TEST(Section23, CoupledCollapsesWindowOntoLowLossPath) {
  // COUPLED keeps its *window* on the less congested 3G path and pins the
  // lossier WiFi path near the 1-packet probe floor — even though, in raw
  // packet counts, 1 packet per 10 ms WiFi RTT still rivals the 3G path's
  // packets per 100 ms RTT. The §2.3 pathology is about the window/rate
  // allocation, asserted on time-averaged windows.
  EventList events;
  topo::Network net(events);
  FixedLossPaths paths(net);
  MptcpConnection mp(events, "mp", cc::coupled());
  mp.add_subflow(paths.wifi_fwd(), paths.wifi_rev());
  mp.add_subflow(paths.g3_fwd(), paths.g3_rev());
  mp.start(0);
  double w_wifi = 0.0, w_g3 = 0.0;
  int n = 0;
  stats::PeriodicSampler sampler(events, "s", from_ms(100), [&](SimTime) {
    w_wifi += mp.subflow(0).effective_cwnd();
    w_g3 += mp.subflow(1).effective_cwnd();
    ++n;
  });
  sampler.start(from_sec(5));
  events.run_until(from_sec(65));
  ASSERT_GT(n, 0);
  EXPECT_GT(w_g3 / n, 2.5 * (w_wifi / n));
  EXPECT_LT(w_wifi / n, 6.0) << "well below its standalone ~20 pkt window";
}

TEST(Section23, MptcpBeatsEwtcpAndCoupledUnderRttMismatch) {
  auto run = [](const cc::CongestionControl& algo) {
    EventList events;
    topo::Network net(events);
    FixedLossPaths paths(net);
    MptcpConnection mp(events, "mp", algo);
    mp.add_subflow(paths.wifi_fwd(), paths.wifi_rev());
    mp.add_subflow(paths.g3_fwd(), paths.g3_rev());
    return run_rate_pkts(events, mp, from_sec(5), from_sec(120));
  };
  const double mptcp = run(cc::mptcp_lia());
  const double ewtcp = run(cc::ewtcp());
  const double coupled = run(cc::coupled());
  // Paper ordering: TCP-wifi > MPTCP(goal) > EWTCP > COUPLED. Compare
  // against the *simulated* single-path WiFi rate (at 4% loss NewReno runs
  // well below the fluid 707 pkt/s; the incentive goal is relative to what
  // a real TCP achieves, which is what our testbed-equivalent measures).
  EXPECT_GT(mptcp, ewtcp);
  EXPECT_GT(ewtcp, coupled);
  EventList events;
  topo::Network net(events);
  FixedLossPaths paths(net);
  auto wifi_tcp = mptcp::make_single_path_tcp(events, "wifi",
                                              paths.wifi_fwd(),
                                              paths.wifi_rev());
  const double wifi_rate =
      run_rate_pkts(events, *wifi_tcp, from_sec(5), from_sec(120));
  EXPECT_GT(mptcp, 0.75 * wifi_rate)
      << "incentive goal: MPTCP near the best single path";
}

// --- §2.2 parking lot: efficiency requires congestion-shifting -----------

TEST(Section22, CoupledOutperformsEwtcpOnParkingLot) {
  auto run = [](const cc::CongestionControl& algo) {
    EventList events;
    topo::Network net(events);
    // 48 Mb/s keeps subflow windows large enough that AIMD dynamics (not
    // RTO granularity) decide the allocation; ratios match the paper's
    // 12 Mb/s analysis.
    topo::ParkingLot pl(net, 48e6, from_ms(40),
                        topo::bdp_bytes(48e6, from_ms(40)));
    std::vector<std::unique_ptr<MptcpConnection>> flows;
    for (int f = 0; f < topo::ParkingLot::kFlows; ++f) {
      auto conn = std::make_unique<MptcpConnection>(
          events, "f" + std::to_string(f), algo);
      conn->add_subflow(pl.one_hop_fwd(f), pl.one_hop_rev(f));
      conn->add_subflow(pl.two_hop_fwd(f), pl.two_hop_rev(f));
      conn->start(from_ms(17 * f));
      flows.push_back(std::move(conn));
    }
    events.run_until(from_sec(10));
    std::vector<std::uint64_t> base;
    for (auto& f : flows) base.push_back(f->delivered_pkts());
    events.run_until(from_sec(70));
    double total = 0.0;
    for (std::size_t i = 0; i < flows.size(); ++i) {
      total += stats::pkts_to_mbps(flows[i]->delivered_pkts() - base[i],
                                   from_sec(60));
    }
    return total / 3.0;  // mean per-flow Mb/s
  };
  const double coupled = run(cc::coupled());
  const double ewtcp = run(cc::ewtcp());
  const double mptcp = run(cc::mptcp_lia());
  // Paper (at 12 Mb/s): even split gets 8/flow, EWTCP ~8.5, one-hop
  // routing 12. Scaled to 48 Mb/s links: congestion-shifting algorithms
  // approach full capacity; EWTCP leaves several Mb/s on the table.
  EXPECT_GT(coupled, ewtcp + 2.0);
  EXPECT_GT(mptcp, ewtcp + 1.0);
  EXPECT_LT(ewtcp, 0.93 * 48.0);
  EXPECT_GT(coupled, 0.95 * 48.0);
}

// --- §2.4 the 'trapped' problem (Fig. 9 dynamics, scaled down) ------------

TEST(Section24, CoupledLosesToMptcpUnderBurstyCbr) {
  // Fig. 9: bursty CBR (on ~10 ms at full rate, off ~100 ms) occupies the
  // top link. COUPLED dumps its whole window off the top path at each
  // burst (decrease w_total/2) and regrows it only at 1/w_total per ACK,
  // so it cannot exploit the quiet periods; MPTCP keeps enough presence.
  auto run = [](const cc::CongestionControl& algo) {
    EventList events;
    topo::Network net(events);
    topo::TwoLink links(net,
                        topo::LinkSpec{100e6, from_ms(5),
                                       50 * net::kDataPacketBytes},
                        topo::LinkSpec{100e6, from_ms(5),
                                       50 * net::kDataPacketBytes});
    net::CountingSink cbr_sink("cbr_sink");
    topo::Path cbr_path = links.fwd(0);
    cbr_path.push_back(&cbr_sink);
    net::Route cbr_route(cbr_path);
    net::OnOffCbrSource cbr(events, "cbr", cbr_route, 100e6, from_ms(10),
                            from_ms(100), 77);
    MptcpConnection mp(events, "mp", algo);
    mp.add_subflow(links.fwd(0), links.rev(0));
    mp.add_subflow(links.fwd(1), links.rev(1));
    cbr.start(0);
    mp.start(from_ms(13));
    events.run_until(from_sec(5));
    const auto before = mp.subflow(0).packets_acked();
    events.run_until(from_sec(25));
    return stats::pkts_to_mbps(mp.subflow(0).packets_acked() - before,
                               from_sec(20));
  };
  const double mptcp_top = run(cc::mptcp_lia());
  const double coupled_top = run(cc::coupled());
  EXPECT_GT(mptcp_top, coupled_top + 5.0)
      << "paper: MPTCP ~83 vs COUPLED ~55 Mb/s on the top link";
}

// --- §2.4 SEMICOUPLED keeps probe traffic everywhere ----------------------

TEST(Section24, SemicoupledKeepsTrafficOnBothPaths) {
  EventList events;
  topo::Network net(events);
  FixedLossPaths paths(net);
  MptcpConnection mp(events, "mp", cc::semicoupled());
  mp.add_subflow(paths.wifi_fwd(), paths.wifi_rev());
  mp.add_subflow(paths.g3_fwd(), paths.g3_rev());
  mp.start(0);
  events.run_until(from_sec(60));
  // Unlike COUPLED, both paths carry non-trivial traffic.
  EXPECT_GT(mp.subflow(0).packets_acked(), 1000u);
  EXPECT_GT(mp.subflow(1).packets_acked(), 1000u);
}

}  // namespace
}  // namespace mpsim
