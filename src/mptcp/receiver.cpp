#include "mptcp/receiver.hpp"

#include <utility>

#include "core/check.hpp"

namespace mpsim::mptcp {

MptcpReceiver::MptcpReceiver(EventList& events, std::string name,
                             std::uint32_t flow_id, std::uint64_t buffer_pkts)
    : EventSource(events, std::move(name)),
      events_(events),
      flow_id_(flow_id),
      capacity_(buffer_pkts) {
  trace_ = trace::TraceRecorder::find(events);
  if (trace_ != nullptr) trace_id_ = trace_->register_object(this->name());
  // Reorder tracking never outgrows the shared buffer, so one up-front
  // reservation makes the per-packet receive path allocation-free.
  ooo_data_.reserve(capacity_);
}

void MptcpReceiver::add_subflow(const net::Route& ack_route) {
  // Subflow-open granularity (see MptcpConnection::add_subflow): the
  // receive path proper never reaches this.
  SubflowRx rx;
  rx.ack_route = &ack_route;
  // mpsim-analyze: allow(hot-alloc)
  rx.ooo.reserve(capacity_);
  // mpsim-analyze: allow(hot-alloc)
  subflows_.push_back(std::move(rx));
}

void MptcpReceiver::set_app_read_rate(double pkts_per_sec) {
  app_read_rate_ = pkts_per_sec;
  last_drain_ = events_.now();
  if (app_read_rate_ > 0.0 && next_drain_at_ == kNever) {
    next_drain_at_ = events_.now() + kDrainInterval;
    events_.schedule_at(*this, next_drain_at_);
  }
}

void MptcpReceiver::set_delayed_ack(bool enabled, SimTime delay) {
  delayed_ack_ = enabled;
  delack_delay_ = delay;
  if (!enabled) flush_delayed_acks();
}

void MptcpReceiver::receive(net::Packet& pkt) {
  MPSIM_CHECK(pkt.type == net::PacketType::kData,
              "receiver can only accept data packets");
  MPSIM_CHECK(pkt.flow_id == flow_id_,
              "packet delivered to the wrong connection's receiver");
  MPSIM_CHECK(pkt.subflow_id < subflows_.size(),
              "data packet names an unregistered subflow");
  ++packets_received_;

  // --- subflow-level reassembly (drives loss detection at the sender) ---
  SubflowRx& sub = subflows_[pkt.subflow_id];
  const bool subflow_in_order = pkt.subflow_seq == sub.rcv_nxt;
  if (subflow_in_order) {
    ++sub.rcv_nxt;
    while (!sub.ooo.empty() && sub.ooo.min() == sub.rcv_nxt) {
      sub.ooo.erase_min();
      ++sub.rcv_nxt;
    }
  } else if (pkt.subflow_seq > sub.rcv_nxt) {
    sub.ooo.add(pkt.subflow_seq);
  }
  // (subflow_seq < rcv_nxt: duplicate from go-back-N, nothing to track)

  // --- data-level reassembly into the shared buffer ---
  const std::uint64_t dseq = pkt.data_seq;
  bool data_in_order = false;
  if (dseq < rcv_nxt_data_ || ooo_data_.contains(dseq)) {
    ++duplicate_data_;  // reinjected or go-back-N copy; already have it
  } else if (buffer_occupancy() >= capacity_) {
    // No room. A sender honouring the advertised window cannot trigger
    // this; counted so tests can assert the invariant.
    ++window_violations_;
  } else if (dseq == rcv_nxt_data_) {
    data_in_order = true;
    ++rcv_nxt_data_;
    while (!ooo_data_.empty() && ooo_data_.min() == rcv_nxt_data_) {
      ooo_data_.erase_min();
      ++rcv_nxt_data_;
    }
    drain_to_app();
  } else {
    ooo_data_.add(dseq);
  }

  MPSIM_CHECK(buffer_occupancy() <= capacity_,
              "shared receive buffer overflow (6 deadlock-avoidance bound)");
  MPSIM_CHECK(app_read_seq_ <= rcv_nxt_data_,
              "application cannot read past the in-order edge");
  MPSIM_TRACE(trace_, trace::rcv_buffer(events_.now(), trace_id_, flow_id_,
                                        buffer_occupancy(),
                                        advertised_window()));
  send_ack(pkt);
  // Perfectly in-order traffic under delayed ACKs may leave one segment
  // pending; anything else was acked immediately inside send_ack.
  (void)subflow_in_order;
  (void)data_in_order;
  pkt.release();
}

void MptcpReceiver::send_ack(const net::Packet& data_pkt) {
  SubflowRx& sub = subflows_[data_pkt.subflow_id];
  if (!delayed_ack_) {
    emit_ack(data_pkt.subflow_id, data_pkt.ts_echo, data_pkt.is_retransmit,
             false);
    return;
  }

  // Delayed ACKs: hold a perfectly in-order segment briefly; everything
  // irregular (gaps, duplicates, retransmits) is acked at once so the
  // sender's loss detection is never delayed.
  const bool irregular = data_pkt.subflow_seq + 1 != sub.rcv_nxt ||
                         data_pkt.is_retransmit || !sub.ooo.empty() ||
                         !ooo_data_.empty();
  ++sub.pending_acks;
  if (sub.pending_acks == 1) {
    sub.pending_ts_echo = data_pkt.ts_echo;
    sub.pending_is_retx = data_pkt.is_retransmit;
  }
  if (irregular || sub.pending_acks >= 2) {
    sub.pending_acks = 0;
    emit_ack(data_pkt.subflow_id, data_pkt.ts_echo, data_pkt.is_retransmit,
             false);
    return;
  }
  // One clean segment pending: arm the delayed-ACK timer.
  const SimTime deadline = events_.now() + delack_delay_;
  if (delack_deadline_ == kNever || deadline < delack_deadline_) {
    delack_deadline_ = deadline;
    events_.schedule_at(*this, deadline);
  }
}

void MptcpReceiver::emit_ack(std::uint32_t subflow_id, SimTime ts_echo,
                             bool is_retx, bool window_update) {
  SubflowRx& sub = subflows_[subflow_id];
  net::Packet& ack = net::Packet::alloc(events_);
  ack.type = net::PacketType::kAck;
  ack.flow_id = flow_id_;
  ack.subflow_id = subflow_id;
  ack.subflow_cum_ack = sub.rcv_nxt;
  ack.data_cum_ack = rcv_nxt_data_;
  ack.rcv_window = advertised_window();
  ack.size_bytes = net::kAckPacketBytes;
  ack.ts_echo = ts_echo;
  ack.is_retransmit = is_retx;
  ack.is_window_update = window_update;
  if (ack.rcv_window == 0) advertised_zero_ = true;
  if (wire_counter_ != nullptr) {
    ++*wire_counter_;
    ack.wire_refs = wire_counter_;
  }
  ++acks_sent_;
  ack.send_on(*sub.ack_route);
}

void MptcpReceiver::flush_delayed_acks() {
  for (std::uint32_t id = 0; id < subflows_.size(); ++id) {
    SubflowRx& sub = subflows_[id];
    if (sub.pending_acks > 0) {
      sub.pending_acks = 0;
      emit_ack(id, sub.pending_ts_echo, sub.pending_is_retx, false);
    }
  }
}

void MptcpReceiver::maybe_send_window_update() {
  // The sender of a zero-window advertisement stops transmitting, so no
  // further data will arrive to carry the reopened window back — the
  // receiver must volunteer it (the simulator's stand-in for TCP's
  // window-update / persist machinery).
  if (!advertised_zero_ || subflows_.empty()) return;
  if (advertised_window() == 0) return;
  advertised_zero_ = false;
  ++window_updates_sent_;
  emit_ack(0, events_.now(), /*is_retx=*/true, /*window_update=*/true);
}

void MptcpReceiver::drain_to_app() {
  if (app_read_rate_ <= 0.0) {
    // Infinitely fast application: in-order data leaves the buffer at once.
    app_read_seq_ = rcv_nxt_data_;
    return;
  }
  const SimTime now = events_.now();
  read_credit_ += app_read_rate_ * to_sec(now - last_drain_);
  last_drain_ = now;
  while (read_credit_ >= 1.0 && app_read_seq_ < rcv_nxt_data_) {
    read_credit_ -= 1.0;
    ++app_read_seq_;
  }
  if (app_read_seq_ >= rcv_nxt_data_) read_credit_ = 0.0;  // no banking ahead
  maybe_send_window_update();
}

void MptcpReceiver::on_event() {
  // Shared wake-up for the delayed-ACK timer and the periodic app drain;
  // each action gates on its own deadline, so spurious wake-ups no-op and
  // never spawn extra periodic chains.
  const SimTime now = events_.now();
  if (delack_deadline_ != kNever && now >= delack_deadline_) {
    delack_deadline_ = kNever;
    flush_delayed_acks();
  }
  if (next_drain_at_ != kNever && now >= next_drain_at_) {
    if (app_read_rate_ > 0.0) {
      drain_to_app();
      next_drain_at_ = now + kDrainInterval;
      events_.schedule_at(*this, next_drain_at_);
    } else {
      next_drain_at_ = kNever;
    }
  }
}

}  // namespace mpsim::mptcp
