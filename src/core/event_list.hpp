// Discrete-event scheduler.
//
// The simulator is a single-threaded event loop: components that need to act
// at a future simulated time derive from EventSource and schedule themselves
// on the EventList. Ties are broken by insertion order so runs are fully
// deterministic.
//
// Two interchangeable backends implement the queue:
//   * kWheel — hierarchical timing wheel (core/timing_wheel.hpp), amortized
//     O(1) schedule/dispatch; the default.
//   * kHeap  — binary heap, O(log n) per operation; kept as a cross-checked
//     fallback (tests assert both dispatch identical event orders).
// kAuto resolves from the MPSIM_SCHEDULER environment variable ("wheel" or
// "heap"), defaulting to the wheel.
//
// Cancellation is lazy: a source that no longer wants a pending wake-up simply
// ignores the callback (sources track their own next valid deadline). This
// keeps the queue free of tombstone bookkeeping on the hot path.
//
// An EventList is also the identity of one simulation instance: per-run
// services (the packet pool, see net::PacketPool) attach to it instead of
// living in globals, so independent simulations can run concurrently on
// separate threads.
#pragma once

#include <cstdint>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "core/time.hpp"
#include "core/timing_wheel.hpp"

namespace mpsim {

class EventList;

// Anything that can be woken by the scheduler.
class EventSource {
 public:
  explicit EventSource(std::string name) : name_(std::move(name)) {}
  virtual ~EventSource() = default;

  EventSource(const EventSource&) = delete;
  EventSource& operator=(const EventSource&) = delete;

  // Called when a scheduled wake-up for this source fires.
  virtual void on_event() = 0;

  const std::string& name() const { return name_; }

 private:
  std::string name_;
};

enum class SchedulerKind {
  kAuto,   // resolve from MPSIM_SCHEDULER, default kWheel
  kHeap,   // binary heap (the original backend)
  kWheel,  // hierarchical timing wheel
};

class EventList {
 public:
  explicit EventList(SchedulerKind kind = SchedulerKind::kAuto);

  EventList(const EventList&) = delete;
  EventList& operator=(const EventList&) = delete;

  // The backend this instance runs on (kHeap or kWheel, never kAuto).
  SchedulerKind scheduler_kind() const {
    return wheel_ ? SchedulerKind::kWheel : SchedulerKind::kHeap;
  }
  // What kAuto resolves to for new EventLists (reads MPSIM_SCHEDULER once).
  static SchedulerKind default_scheduler();

  SimTime now() const { return now_; }

  // Wake `src` at absolute time `t` (must be >= now()).
  void schedule_at(EventSource& src, SimTime t);

  // Wake `src` after `dt` nanoseconds.
  void schedule_in(EventSource& src, SimTime dt) {
    schedule_at(src, now_ + dt);
  }

  bool empty() const { return wheel_ ? wheel_->empty() : heap_.empty(); }
  std::size_t pending() const {
    return wheel_ ? wheel_->size() : heap_.size();
  }
  std::uint64_t events_processed() const { return processed_; }

  // Dispatch the earliest pending event. Returns false if none remain.
  bool run_one();

  // Run events with timestamp <= `t`; afterwards now() == t (even if the
  // queue drained early), so periodic samplers see a consistent clock.
  void run_until(SimTime t);

  // Run until no events remain.
  void run_all();

  // --- per-simulation services ------------------------------------------
  // A service is owned by the EventList and lives exactly as long as the
  // simulation instance. The packet pool (net::PacketPool) is the sole
  // service today; it attaches itself lazily on first allocation.
  class Service {
   public:
    virtual ~Service() = default;
  };
  Service* service() const { return service_.get(); }
  Service& attach_service(std::unique_ptr<Service> s);

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;  // FIFO tie-break for equal timestamps
    EventSource* src;
    bool operator>(const Entry& o) const {
      if (time != o.time) return time > o.time;
      return seq > o.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::unique_ptr<TimingWheel> wheel_;  // non-null iff the wheel backend
  std::unique_ptr<Service> service_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
};

}  // namespace mpsim
