// The flight recorder's record schema.
//
// One Record is a fixed-size POD cell: a timestamp, a type tag, the ids of
// the object/flow/subflow it describes, and a small typed payload (two
// integers, two reals). Fixed size keeps the ring buffer a flat
// preallocated array — appending is a bump-and-store, never an allocation —
// and gives every sink (CSV, JSONL) the same column set.
//
// Payload conventions per type (everything else zero):
//   kCwnd       a=srtt ns, b=rto ns, x=cwnd pkts, y=ssthresh pkts,
//               phase=current TcpPhase
//   kState      a=from TcpPhase, phase=to TcpPhase
//   kQueue      a=queued bytes, b=queued packets
//   kQueueDrop  a=queued bytes at drop, b=dropped packet bytes
//   kLinkDrop   b=dropped packet bytes (random, not congestive)
//   kRate       x=new link rate, bits/s
//   kDataAck    a=data-level cumulative ACK, b=flow-control right edge
//   kRcvBuf     a=buffer occupancy pkts, b=advertised window pkts
//   kReinject   a=data seqs queued for reinjection, b=first such seq
//   kGoodput    x=delivered goodput since the last sample, Mb/s
//   kFault      a=fault::Action enum, b=aux (duration ns, packets dropped,
//               or subflow index per action), x=value (rate bps or drop
//               probability per action)
//   kSubflowAdd  a=active subflows after the add, b=total subflows ever
//                opened on the connection (a brand-new join grows b; a
//                re-probe repeats an earlier sub id with b unchanged)
//   kSubflowDrop a=drop reason (0 = administrative/policy, 1 = declared
//                dead after repeated RTOs without progress), b=data seqs
//                handed to the scheduler for sibling reinjection
//   kRateSample  a=estimator's delivered counter pkts, b=sample was
//                app-limited (0/1), x=measured delivery rate pkts/s,
//                y=pacing rate republished by the controller, pkts/s
//   kPacing      a=pacer deadline ns (burst parked until then),
//                x=pacing rate gating the launch, pkts/s
#pragma once

#include <cstdint>

#include "core/time.hpp"

namespace mpsim::trace {

enum class RecordType : std::uint8_t {
  kCwnd = 0,   // subflow congestion state sample (per processed ACK)
  kState,      // subflow phase transition (loss reaction, recovery exit)
  kQueue,      // queue occupancy after an enqueue or departure
  kQueueDrop,  // drop-tail loss
  kLinkDrop,   // random (non-congestive) loss on a LossyLink
  kRate,       // VariableRateQueue rate change (outage = 0)
  kDataAck,    // MPTCP data-level cumulative ACK advanced
  kRcvBuf,     // receiver shared-buffer occupancy sample
  kReinject,   // data seqs queued for reinjection on sibling subflows
  kGoodput,    // periodic delivered-goodput sample (bench harness)
  kFault,      // fault-injection action applied to a target
  kSubflowAdd,   // a subflow joined (or re-joined) a live connection
  kSubflowDrop,  // a subflow was dropped from a live connection
  kRateSample,   // delivery-rate estimator sample fed to a rate-based CC
  kPacing,       // the pacer parked a transmission burst until a deadline
};
inline constexpr int kRecordTypeCount = 15;

// Sender phases, as the paper's Fig. 5-style cwnd plots label them.
enum class TcpPhase : std::uint8_t {
  kSlowStart = 0,
  kCongestionAvoidance,
  kFastRecovery,   // NewReno dupack recovery
  kRtoRecovery,    // timeout + go-back-N
};

// Stable lowercase names, used by the CSV/JSONL sinks and the schema
// validator (tools/check_trace_schema.py must list the same set).
const char* record_type_name(RecordType t);
const char* tcp_phase_name(TcpPhase p);

struct Record {
  SimTime t = 0;
  RecordType type = RecordType::kCwnd;
  std::uint8_t phase = 0;   // TcpPhase payload where applicable
  std::uint16_t obj = 0;    // recorder-registered object id
  std::uint32_t flow = 0;   // connection id, 0 = none
  std::uint32_t sub = 0;    // subflow id within the connection
  std::uint64_t a = 0;      // integer payload
  std::uint64_t b = 0;      // integer payload
  double x = 0.0;           // real payload
  double y = 0.0;           // real payload
  // Merge-order stamps, filled by TraceRecorder::append_unchecked and never
  // emitted by sinks: the canonical dispatch key of the event that recorded
  // this (0 before the run starts, all-ones for out-of-band emissions
  // between run phases) and a sequence number within that stamp group.
  // Sorting a multi-shard run's rings by (t, okey, oseq) reproduces the
  // sequential emission order exactly — see TraceRecorder::flush_merged.
  std::uint64_t okey = 0;
  std::uint64_t oseq = 0;
};

// --- builders -------------------------------------------------------------
// One per record type, so instrumentation sites read as prose and cannot
// mix up payload slots. Builders are cheap but not free; call them only
// inside MPSIM_TRACE's enabled branch.

inline Record cwnd_sample(SimTime t, std::uint16_t obj, std::uint32_t flow,
                          std::uint32_t sub, TcpPhase phase, double cwnd,
                          double ssthresh, SimTime srtt, SimTime rto) {
  Record r;
  r.t = t;
  r.type = RecordType::kCwnd;
  r.phase = static_cast<std::uint8_t>(phase);
  r.obj = obj;
  r.flow = flow;
  r.sub = sub;
  r.a = static_cast<std::uint64_t>(srtt);
  r.b = static_cast<std::uint64_t>(rto);
  r.x = cwnd;
  r.y = ssthresh;
  return r;
}

inline Record state_transition(SimTime t, std::uint16_t obj,
                               std::uint32_t flow, std::uint32_t sub,
                               TcpPhase from, TcpPhase to) {
  Record r;
  r.t = t;
  r.type = RecordType::kState;
  r.phase = static_cast<std::uint8_t>(to);
  r.obj = obj;
  r.flow = flow;
  r.sub = sub;
  r.a = static_cast<std::uint64_t>(from);
  return r;
}

inline Record queue_sample(SimTime t, std::uint16_t obj,
                           std::uint64_t queued_bytes,
                           std::uint64_t queued_pkts) {
  Record r;
  r.t = t;
  r.type = RecordType::kQueue;
  r.obj = obj;
  r.a = queued_bytes;
  r.b = queued_pkts;
  return r;
}

inline Record queue_drop(SimTime t, std::uint16_t obj, std::uint32_t flow,
                         std::uint32_t sub, std::uint64_t queued_bytes,
                         std::uint64_t pkt_bytes) {
  Record r;
  r.t = t;
  r.type = RecordType::kQueueDrop;
  r.obj = obj;
  r.flow = flow;
  r.sub = sub;
  r.a = queued_bytes;
  r.b = pkt_bytes;
  return r;
}

inline Record link_drop(SimTime t, std::uint16_t obj, std::uint32_t flow,
                        std::uint32_t sub, std::uint64_t pkt_bytes) {
  Record r;
  r.t = t;
  r.type = RecordType::kLinkDrop;
  r.obj = obj;
  r.flow = flow;
  r.sub = sub;
  r.b = pkt_bytes;
  return r;
}

inline Record rate_change(SimTime t, std::uint16_t obj, double rate_bps) {
  Record r;
  r.t = t;
  r.type = RecordType::kRate;
  r.obj = obj;
  r.x = rate_bps;
  return r;
}

inline Record data_ack(SimTime t, std::uint16_t obj, std::uint32_t flow,
                       std::uint64_t cum_ack, std::uint64_t right_edge) {
  Record r;
  r.t = t;
  r.type = RecordType::kDataAck;
  r.obj = obj;
  r.flow = flow;
  r.a = cum_ack;
  r.b = right_edge;
  return r;
}

inline Record rcv_buffer(SimTime t, std::uint16_t obj, std::uint32_t flow,
                         std::uint64_t occupancy, std::uint64_t advertised) {
  Record r;
  r.t = t;
  r.type = RecordType::kRcvBuf;
  r.obj = obj;
  r.flow = flow;
  r.a = occupancy;
  r.b = advertised;
  return r;
}

inline Record reinject(SimTime t, std::uint16_t obj, std::uint32_t flow,
                       std::uint64_t count, std::uint64_t first_seq) {
  Record r;
  r.t = t;
  r.type = RecordType::kReinject;
  r.obj = obj;
  r.flow = flow;
  r.a = count;
  r.b = first_seq;
  return r;
}

inline Record goodput_sample(SimTime t, std::uint16_t obj,
                             std::uint32_t flow, std::uint32_t sub,
                             double mbps) {
  Record r;
  r.t = t;
  r.type = RecordType::kGoodput;
  r.obj = obj;
  r.flow = flow;
  r.sub = sub;
  r.x = mbps;
  return r;
}

inline Record fault_event(SimTime t, std::uint16_t obj, std::uint32_t action,
                          double value, std::uint64_t aux) {
  Record r;
  r.t = t;
  r.type = RecordType::kFault;
  r.obj = obj;
  r.a = action;
  r.b = aux;
  r.x = value;
  return r;
}

inline Record subflow_add(SimTime t, std::uint16_t obj, std::uint32_t flow,
                          std::uint32_t sub, std::uint64_t active,
                          std::uint64_t total) {
  Record r;
  r.t = t;
  r.type = RecordType::kSubflowAdd;
  r.obj = obj;
  r.flow = flow;
  r.sub = sub;
  r.a = active;
  r.b = total;
  return r;
}

// Drop reasons for kSubflowDrop's `a` payload.
inline constexpr std::uint64_t kDropAdmin = 0;
inline constexpr std::uint64_t kDropRtoDead = 1;

inline Record subflow_drop(SimTime t, std::uint16_t obj, std::uint32_t flow,
                           std::uint32_t sub, std::uint64_t reason,
                           std::uint64_t reinjected) {
  Record r;
  r.t = t;
  r.type = RecordType::kSubflowDrop;
  r.obj = obj;
  r.flow = flow;
  r.sub = sub;
  r.a = reason;
  r.b = reinjected;
  return r;
}

inline Record rate_sample(SimTime t, std::uint16_t obj, std::uint32_t flow,
                          std::uint32_t sub, double delivery_rate,
                          double pacing_rate, std::uint64_t delivered,
                          bool app_limited) {
  Record r;
  r.t = t;
  r.type = RecordType::kRateSample;
  r.obj = obj;
  r.flow = flow;
  r.sub = sub;
  r.a = delivered;
  r.b = app_limited ? 1 : 0;
  r.x = delivery_rate;
  r.y = pacing_rate;
  return r;
}

inline Record pacing_wait(SimTime t, std::uint16_t obj, std::uint32_t flow,
                          std::uint32_t sub, SimTime deadline,
                          double pacing_rate) {
  Record r;
  r.t = t;
  r.type = RecordType::kPacing;
  r.obj = obj;
  r.flow = flow;
  r.sub = sub;
  r.a = static_cast<std::uint64_t>(deadline);
  r.x = pacing_rate;
  return r;
}

}  // namespace mpsim::trace
