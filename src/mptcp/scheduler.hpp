// Connection-level data scheduling (§2 box: "An MPTCP sender stripes
// packets across these subflows as space in the subflow windows becomes
// available").
//
// The scheduler owns the data sequence space: it hands out new data
// sequence numbers on demand (so whichever subflow has window space first
// gets the next packet — window-based striping), tracks the data-level
// cumulative ACK and the receiver-advertised window, and queues
// reinjections: data stranded on a timed-out subflow that should be
// retransmitted on a sibling (§6 / the mobile scenario of §5).
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_set>
#include <vector>

#include "core/event_list.hpp"
#include "trace/trace.hpp"

namespace mpsim::mptcp {

class DataScheduler {
 public:
  // `app_limit_pkts == 0` means an unlimited (long-lived) stream.
  // `initial_window` seeds the flow-control right edge (the receiver's
  // buffer size, learned exactly from the first data ACK onward).
  DataScheduler(std::uint64_t app_limit_pkts, std::uint64_t initial_window)
      : app_limit_(app_limit_pkts),
        right_edge_(initial_window) {}

  // Next data sequence number to transmit: queued reinjections first, then
  // fresh data, subject to the data-level flow-control window and the
  // application limit. Returns false if nothing may be sent.
  bool next_data(std::uint64_t& data_seq);

  // Process a data-level cumulative ACK + receive window. The right edge
  // (ack + window) only ever moves forward: ACKs may be reordered across
  // subflows with different RTTs (§6), and TCP never shrinks the window.
  void on_data_ack(std::uint64_t data_cum_ack, std::uint64_t rcv_window);

  // Queue data sequence numbers for retransmission on another subflow.
  // Already-acked and already-queued sequences are skipped.
  void reinject(const std::vector<std::uint64_t>& data_seqs);

  // Drop every queued reinjection the cumulative ACK has already passed,
  // releasing its reinject_pending_ entry. Without this, a seq queued for
  // a subflow that dies (or a connection that completes) before any
  // next_data() call drains it stays in reinject_pending_ forever — and a
  // later, genuine reinjection of the same seq is silently refused by the
  // duplicate filter. Called on every cum-ACK advance and on subflow
  // reset/drop. Returns the number of entries purged.
  std::uint64_t purge_acked();

  // Wire the owning connection's flight recorder in. The scheduler has no
  // clock of its own, so it borrows the connection's EventList for record
  // timestamps; kReinject records are emitted here (not in the connection)
  // because this is where duplicate suppression decides what is actually
  // queued.
  void set_trace(EventList* events, trace::TraceRecorder* rec,
                 std::uint16_t trace_id, std::uint32_t flow_id) {
    trace_events_ = events;
    trace_ = rec;
    trace_id_ = trace_id;
    trace_flow_ = flow_id;
  }

  std::uint64_t data_cum_ack() const { return data_cum_ack_; }
  std::uint64_t next_new() const { return next_new_; }
  std::uint64_t right_edge() const { return right_edge_; }
  std::uint64_t reinject_backlog() const { return reinject_q_.size(); }
  // Data seqs ever accepted for reinjection (duplicates excluded).
  std::uint64_t reinjected_total() const { return reinjected_total_; }
  // Stale entries removed by purge_acked() over the connection's life.
  std::uint64_t purged_total() const { return purged_total_; }

  bool app_limited() const { return app_limit_ != 0; }
  // All application data sent and acknowledged.
  bool complete() const {
    return app_limited() && data_cum_ack_ >= app_limit_;
  }

 private:
  std::uint64_t app_limit_;
  std::uint64_t right_edge_;
  std::uint64_t next_new_ = 0;
  std::uint64_t data_cum_ack_ = 0;
  std::deque<std::uint64_t> reinject_q_;
  std::unordered_set<std::uint64_t> reinject_pending_;
  std::uint64_t reinjected_total_ = 0;
  std::uint64_t purged_total_ = 0;

  // Flight recorder wiring (set_trace); trace_ != nullptr implies
  // trace_events_ != nullptr.
  EventList* trace_events_ = nullptr;
  trace::TraceRecorder* trace_ = nullptr;
  std::uint16_t trace_id_ = 0;
  std::uint32_t trace_flow_ = 0;
};

}  // namespace mpsim::mptcp
