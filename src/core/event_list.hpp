// Discrete-event scheduler.
//
// The simulator is a single-threaded event loop: components that need to act
// at a future simulated time derive from EventSource and schedule themselves
// on the EventList. Ties are broken by insertion order so runs are fully
// deterministic.
//
// Cancellation is lazy: a source that no longer wants a pending wake-up simply
// ignores the callback (sources track their own next valid deadline). This
// keeps the heap free of tombstone bookkeeping on the hot path.
#pragma once

#include <cstdint>
#include <queue>
#include <string>
#include <vector>

#include "core/time.hpp"

namespace mpsim {

class EventList;

// Anything that can be woken by the scheduler.
class EventSource {
 public:
  explicit EventSource(std::string name) : name_(std::move(name)) {}
  virtual ~EventSource() = default;

  EventSource(const EventSource&) = delete;
  EventSource& operator=(const EventSource&) = delete;

  // Called when a scheduled wake-up for this source fires.
  virtual void on_event() = 0;

  const std::string& name() const { return name_; }

 private:
  std::string name_;
};

class EventList {
 public:
  EventList() = default;

  EventList(const EventList&) = delete;
  EventList& operator=(const EventList&) = delete;

  SimTime now() const { return now_; }

  // Wake `src` at absolute time `t` (must be >= now()).
  void schedule_at(EventSource& src, SimTime t);

  // Wake `src` after `dt` nanoseconds.
  void schedule_in(EventSource& src, SimTime dt) {
    schedule_at(src, now_ + dt);
  }

  bool empty() const { return heap_.empty(); }
  std::size_t pending() const { return heap_.size(); }
  std::uint64_t events_processed() const { return processed_; }

  // Dispatch the earliest pending event. Returns false if none remain.
  bool run_one();

  // Run events with timestamp <= `t`; afterwards now() == t (even if the
  // heap drained early), so periodic samplers see a consistent clock.
  void run_until(SimTime t);

  // Run until no events remain.
  void run_all();

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;  // FIFO tie-break for equal timestamps
    EventSource* src;
    bool operator>(const Entry& o) const {
      if (time != o.time) return time > o.time;
      return seq > o.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
};

}  // namespace mpsim
