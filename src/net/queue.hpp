// Drop-tail FIFO queue with a finite byte buffer and a fixed service rate.
//
// The queue models the serialization of packets onto a link: one packet is
// "in service" at a time and departs after size*8/rate seconds, at which
// point it advances to the next hop (normally a Pipe carrying the link's
// propagation delay). Arrivals that would overflow the buffer are dropped at
// the tail and counted, giving each link's loss rate.
#pragma once

#include <cstdint>
#include <deque>
#include <string>

#include "core/event_list.hpp"
#include "net/packet.hpp"
#include "trace/trace.hpp"

namespace mpsim::net {

class Queue : public PacketSink, public EventSource {
 public:
  // `rate_bps` link speed; `max_bytes` buffer capacity (queued + in service).
  Queue(EventList& events, std::string name, double rate_bps,
        std::uint64_t max_bytes);

  void receive(Packet& pkt) override;
  void on_event() override;
  const std::string& sink_name() const override { return EventSource::name(); }

  // Fault-injection primitive: drop up to `max_pkts` waiting packets from
  // the tail (the packet in service is not interrupted). Models buffer
  // corruption (small counts) and a full drain (SIZE_MAX). Dropped packets
  // count as drops and emit queue_drop trace records, exactly like
  // drop-tail losses. Returns how many packets were dropped.
  std::size_t drop_waiting(std::size_t max_pkts);

  // --- statistics ---
  std::uint64_t arrivals() const { return arrivals_; }
  std::uint64_t drops() const { return drops_; }
  std::uint64_t departures() const { return departures_; }
  std::uint64_t bytes_forwarded() const { return bytes_forwarded_; }
  double loss_rate() const {
    return arrivals_ == 0 ? 0.0
                          : static_cast<double>(drops_) / arrivals_;
  }
  void reset_stats();

  std::uint64_t queued_bytes() const { return queued_bytes_; }
  std::size_t queued_packets() const { return fifo_.size() + (busy_ ? 1 : 0); }
  double rate_bps() const { return rate_bps_; }
  std::uint64_t capacity_bytes() const { return max_bytes_; }

 protected:
  SimTime service_time(const Packet& pkt) const {
    return from_sec(static_cast<double>(pkt.size_bytes) * 8.0 / rate_bps_);
  }
  void start_service();

  EventList& events_;
  std::deque<Packet*> fifo_;  // waiting packets; head-of-line is in service
  double rate_bps_;
  std::uint64_t max_bytes_;
  std::uint64_t queued_bytes_ = 0;
  bool busy_ = false;
  Packet* in_service_ = nullptr;
  SimTime service_done_at_ = 0;

  std::uint64_t arrivals_ = 0;
  std::uint64_t drops_ = 0;
  std::uint64_t departures_ = 0;
  std::uint64_t bytes_forwarded_ = 0;

  // Flight recorder, cached at construction (nullptr = tracing off).
  trace::TraceRecorder* trace_ = nullptr;
  std::uint16_t trace_id_ = 0;
};

}  // namespace mpsim::net
