// Pacing-cost microbench: the rate-based CC subsystem must be free when
// it is off.
//
// Two runs over the same fast two-link topology, identical except for the
// controller: a window-mode coupled connection (pacing off — the pre-rate
// fast path: no RateHot row, no estimator, no pacer timers) and a
// rate-mode Coupled BBR connection (pacing on — every launch consults the
// pacing gate, every ACK feeds the delivery-rate estimator). Both runs'
// events_per_sec land in BENCH_pacing.json and are gated per run by
// tools/bench_diff.py against bench/baselines/BENCH_pacing.json at ±10%:
// the window run regresses if the mere presence of the rate surface ever
// leaks cost into the pacing-off path; the rate run regresses if the
// pacer or estimator themselves get slower.
#include <cstdio>
#include <string>
#include <vector>

#include "cc/coupled_bbr.hpp"
#include "cc/mptcp_lia.hpp"
#include "harness.hpp"
#include "topo/two_link.hpp"

namespace mpsim {
namespace {

struct Result {
  double mp_mbps = 0.0;
};

Result run(EventList& events, const cc::CongestionControl& algo) {
  // Stretched 4x like bench_churn_lb: each run must stay long enough at
  // MPSIM_BENCH_SCALE=0.1 that events_per_sec is not dominated by CPU
  // frequency-ramp noise — the gate compares per run at +-10%.
  const auto T = [](double sec) { return bench::scaled(4.0 * sec); };
  topo::Network net(events);
  // High packet rates so per-packet cost dominates the event loop; the
  // RTT mismatch keeps both the coupled window and the BBR rate model
  // doing real per-path work instead of collapsing to symmetry.
  topo::TwoLink links(net,
                      topo::LinkSpec::pkt_rate(20000.0, from_ms(5), 1.0),
                      topo::LinkSpec::pkt_rate(10000.0, from_ms(20), 1.0));
  mptcp::MptcpConnection m(events, "m", algo);
  m.add_subflow(links.fwd(0), links.rev(0));
  m.add_subflow(links.fwd(1), links.rev(1));
  m.start(0);

  const SimTime t0 = T(1);
  events.run_until(t0);
  const auto d0 = m.delivered_pkts();
  const SimTime t1 = T(6);
  events.run_until(t1);

  Result r;
  r.mp_mbps = stats::pkts_to_mbps(m.delivered_pkts() - d0, t1 - t0);
  return r;
}

}  // namespace
}  // namespace mpsim

int main() {
  using namespace mpsim;
  bench::banner(
      "pacing cost: window-mode coupled vs rate-mode Coupled BBR on a fast "
      "RTT-mismatched two-link",
      "rate subsystem overhead bound (DESIGN.md rate-based CC & pacing); "
      "window run = pacing-off cost, rate run = pacer+estimator cost");

  struct Variant {
    std::string name;
    const cc::CongestionControl* algo;
  };
  const std::vector<Variant> variants = {
      {"window_coupled", &cc::mptcp_lia()},
      {"rate_coupled_bbr", &cc::coupled_bbr()},
  };

  std::vector<Result> per_run(variants.size());

  runner::RunnerConfig rcfg;
  rcfg.threads = bench::env_threads();
  runner::ExperimentRunner exp(rcfg);
  for (std::size_t i = 0; i < variants.size(); ++i) {
    const Variant& v = variants[i];
    exp.add(v.name, [&per_run, i, &v](runner::RunContext& ctx) {
      ctx.annotate("controller", v.name);
      const Result r = run(ctx.events(), *v.algo);
      per_run[i] = r;
      ctx.record("mp_mbps", r.mp_mbps);
    });
  }
  // Untracked warmup: absorb the process-start CPU frequency ramp so the
  // tracked runs' events_per_sec is comparable across invocations.
  for (int w = 0; w < 3; ++w) {
    EventList warm;
    (void)run(warm, cc::coupled_bbr());
  }

  const auto results = exp.run_all();

  stats::Table table({"variant", "goodput Mb/s", "events/s"});
  for (std::size_t i = 0; i < variants.size(); ++i) {
    table.add_row(variants[i].name,
                  {per_run[i].mp_mbps, results[i].metrics.events_per_sec}, 3);
  }
  table.print();

  if (results.size() == 2 && results[0].metrics.events_per_sec > 0) {
    const double overhead_pct = 100.0 *
        (results[0].metrics.events_per_sec -
         results[1].metrics.events_per_sec) /
        results[0].metrics.events_per_sec;
    std::printf("\nrate-mode events/s overhead vs window mode: %+.2f%% "
                "(informational; rate mode also schedules pacer timers, so "
                "its event mix differs — the regression gate compares each "
                "run against its own baseline)\n",
                overhead_pct);
  }
  std::printf("expected shape: both variants saturate the two-link "
              "aggregate; window run events/s tracks the pre-rate-subsystem "
              "fast path\n");

  std::fprintf(stderr, "\n[bench_pacing] %zu runs in %u thread(s)\n",
               results.size(), exp.resolved_threads());

  bench::Json root = bench::Json::object();
  root.set("bench", "pacing");
  root.set("threads", static_cast<double>(exp.resolved_threads()));
  root.set("sum_run_wall_seconds", runner::total_wall_seconds(results));
  root.set("runs", bench::json_from_results(results));
  bench::write_bench_json("pacing", root);
  return 0;
}
