// Element factory/owner for building topologies.
//
// A Network owns queues, pipes and loss elements; topology classes use it
// to assemble directed links and hand out Paths (ordered element lists) for
// connections to ride. A unidirectional "link" is a Queue (serialization +
// buffering) feeding a Pipe (propagation).
//
// ACK return paths in the experiment topologies are pipes only: 40-byte
// ACKs at the data rates simulated here load the reverse direction by under
// 3%, and none of the paper's scenarios congest the ACK direction. This
// halves the event count of every experiment.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/event_list.hpp"
#include "fault/fault.hpp"
#include "net/cbr.hpp"
#include "net/lossy_link.hpp"
#include "net/packet.hpp"
#include "net/pipe.hpp"
#include "net/queue.hpp"
#include "net/variable_rate_queue.hpp"

namespace mpsim::topo {

using Path = std::vector<net::PacketSink*>;

// (forward, ACK-return) element lists for one subflow.
using PathPair = std::pair<Path, Path>;

// One direction of a link.
struct Link {
  net::Queue* queue = nullptr;
  net::Pipe* pipe = nullptr;
};

class Network {
 public:
  explicit Network(EventList& events) : events_(events) {}

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  EventList& events() { return events_; }

  net::Queue& add_queue(const std::string& name, double rate_bps,
                        std::uint64_t buf_bytes) {
    queues_.push_back(
        std::make_unique<net::Queue>(events_, name, rate_bps, buf_bytes));
    faults_.add_queue(name, *queues_.back());
    return *queues_.back();
  }

  net::VariableRateQueue& add_variable_queue(const std::string& name,
                                             double rate_bps,
                                             std::uint64_t buf_bytes) {
    vqueues_.push_back(std::make_unique<net::VariableRateQueue>(
        events_, name, rate_bps, buf_bytes));
    faults_.add_variable_queue(name, *vqueues_.back());
    return *vqueues_.back();
  }

  net::Pipe& add_pipe(const std::string& name, SimTime delay) {
    pipes_.push_back(std::make_unique<net::Pipe>(events_, name, delay));
    return *pipes_.back();
  }

  net::LossyLink& add_lossy(const std::string& name, double loss_prob,
                            std::uint64_t seed) {
    lossy_.push_back(
        std::make_unique<net::LossyLink>(name, loss_prob, seed));
    faults_.add_lossy(name, *lossy_.back());
    return *lossy_.back();
  }

  // Queue -> Pipe pair modelling one direction of a link.
  Link add_link(const std::string& name, double rate_bps, SimTime delay,
                std::uint64_t buf_bytes) {
    Link link;
    link.queue = &add_queue(name + "/q", rate_bps, buf_bytes);
    link.pipe = &add_pipe(name + "/p", delay);
    return link;
  }

  // Like add_link, but with a variable-rate queue so the link is a valid
  // target for down/up/rate/ramp faults. Identical behaviour at a constant
  // rate.
  Link add_variable_link(const std::string& name, double rate_bps,
                         SimTime delay, std::uint64_t buf_bytes) {
    Link link;
    link.queue = &add_variable_queue(name + "/q", rate_bps, buf_bytes);
    link.pipe = &add_pipe(name + "/p", delay);
    return link;
  }

  // Fault-target name -> element map, populated as elements are built.
  fault::TargetRegistry& fault_targets() { return faults_; }
  const fault::TargetRegistry& fault_targets() const { return faults_; }

 private:
  EventList& events_;
  fault::TargetRegistry faults_;
  std::vector<std::unique_ptr<net::Queue>> queues_;
  std::vector<std::unique_ptr<net::VariableRateQueue>> vqueues_;
  std::vector<std::unique_ptr<net::Pipe>> pipes_;
  std::vector<std::unique_ptr<net::LossyLink>> lossy_;
};

// Path assembly helpers.
inline void append_link(Path& path, const Link& link) {
  path.push_back(link.queue);
  path.push_back(link.pipe);
}

inline Path path_of(std::initializer_list<const Link*> links) {
  Path p;
  for (const Link* l : links) append_link(p, *l);
  return p;
}

// Buffer sizing helper: `bdp_multiple` bandwidth-delay products, in bytes.
inline std::uint64_t bdp_bytes(double rate_bps, SimTime rtt,
                               double bdp_multiple = 1.0) {
  const double bytes = rate_bps / 8.0 * to_sec(rtt) * bdp_multiple;
  return static_cast<std::uint64_t>(bytes) + net::kDataPacketBytes;
}

inline double pkts_per_sec_to_bps(double pps) {
  return pps * net::kDataPacketBytes * 8.0;
}

}  // namespace mpsim::topo
