// Fig. 12 / §4 — FatTree throughput vs number of paths used.
//
// k=8 FatTree, TP1 permutation traffic. MPTCP with 1..8 random paths per
// pair, plus the single-path TCP (ECMP) reference. The paper finds ~8
// paths are needed to reach ~90% of the optimal (100 Mb/s per host),
// while TCP on one path manages about half.
#include "cc/mptcp_lia.hpp"
#include "datacenter.hpp"

namespace mpsim {
namespace {

double run(int npaths, bool multipath) {
  EventList events;
  topo::Network net(events);
  topo::FatTree ft(net, 8);
  Rng tm_rng(777);
  auto tm = traffic::permutation_tm(ft.num_hosts(), tm_rng);
  bench::DcConfig cfg;
  cfg.algo = multipath ? &cc::mptcp_lia() : nullptr;
  cfg.npaths = npaths;
  cfg.warmup_sec = 1.0 * bench::time_scale();
  cfg.measure_sec = 3.0 * bench::time_scale();
  auto result = bench::run_dc(
      events,
      [&](int s, int d, int n, Rng& rng) {
        return bench::fattree_paths(ft, s, d, n, rng);
      },
      ft.num_hosts(), tm, cfg);
  return result.per_host_mbps;
}

}  // namespace
}  // namespace mpsim

int main() {
  using namespace mpsim;
  bench::banner("Fig. 12 / §4: throughput vs paths used (FatTree, TP1)",
                "TCP ~50% of optimal; MPTCP reaches ~90% at 8 paths");

  stats::Table table({"paths", "TCP % of optimal", "MPTCP % of optimal"});
  const double tcp = run(1, /*multipath=*/false);
  for (int n = 1; n <= 8; ++n) {
    const double mp = run(n, /*multipath=*/true);
    table.add_row(std::to_string(n),
                  {tcp /* flat reference */, mp}, 1);
  }
  table.print();
  std::printf("\n(optimal = 100 Mb/s per host; TCP column is the flat "
              "1-path ECMP reference)\n");
  return 0;
}
