#include "tcp/rtt_estimator.hpp"

#include <gtest/gtest.h>

namespace mpsim::tcp {
namespace {

TEST(RttEstimator, NoSampleUsesFallback) {
  RttEstimator est;
  EXPECT_FALSE(est.has_sample());
  EXPECT_EQ(est.srtt(from_ms(42)), from_ms(42));
}

TEST(RttEstimator, InitialRtoIsConservative) {
  RttEstimator est;
  EXPECT_GE(est.rto(), from_sec(1));
}

TEST(RttEstimator, FirstSampleInitialisesSrtt) {
  RttEstimator est;
  est.add_sample(from_ms(80));
  EXPECT_TRUE(est.has_sample());
  EXPECT_EQ(est.srtt(), from_ms(80));
  EXPECT_EQ(est.rttvar(), from_ms(40));
}

TEST(RttEstimator, SmoothingConvergesToConstantInput) {
  RttEstimator est;
  for (int i = 0; i < 100; ++i) est.add_sample(from_ms(50));
  EXPECT_NEAR(to_ms(est.srtt()), 50.0, 0.5);
  EXPECT_NEAR(to_ms(est.rttvar()), 0.0, 1.0);
}

TEST(RttEstimator, JumpsAreSmoothed) {
  RttEstimator est;
  for (int i = 0; i < 50; ++i) est.add_sample(from_ms(10));
  est.add_sample(from_ms(100));
  // One outlier shifts SRTT by 1/8 of the error.
  EXPECT_NEAR(to_ms(est.srtt()), 10.0 + 90.0 / 8, 1.0);
}

TEST(RttEstimator, RtoHasFloor) {
  RttEstimator est(from_ms(200));
  for (int i = 0; i < 100; ++i) est.add_sample(from_us(100));
  EXPECT_EQ(est.rto(), from_ms(200));
}

TEST(RttEstimator, RtoTracksVariance) {
  RttEstimator est(from_ms(1));
  // Alternate 50 and 150 ms: high variance keeps RTO well above SRTT.
  for (int i = 0; i < 100; ++i) {
    est.add_sample(from_ms(i % 2 == 0 ? 50 : 150));
  }
  EXPECT_GT(est.rto(), est.srtt());
  EXPECT_GT(est.rto(), from_ms(150));
}

TEST(RttEstimator, RtoHasCeiling) {
  RttEstimator est(from_ms(200), from_sec(2));
  for (int i = 0; i < 10; ++i) est.add_sample(from_sec(10));
  EXPECT_EQ(est.rto(), from_sec(2));
}

TEST(RttEstimator, MinSeenTracksMinimum) {
  RttEstimator est;
  est.add_sample(from_ms(30));
  est.add_sample(from_ms(10));
  est.add_sample(from_ms(20));
  EXPECT_EQ(est.min_seen(), from_ms(10));
}

TEST(RttEstimator, NegativeSamplesIgnored) {
  RttEstimator est;
  est.add_sample(-5);
  EXPECT_FALSE(est.has_sample());
}

}  // namespace
}  // namespace mpsim::tcp
