// One TCP subflow: the full windowed NewReno sender machinery, with the
// additive-increase and multiplicative-decrease *amounts* delegated to the
// owning connection (which consults a pluggable congestion-control algorithm
// that may couple the subflows, per §2 of the paper).
//
// Implemented behaviour:
//   * slow start (cwnd += 1 per acked packet below ssthresh),
//   * congestion avoidance (cwnd += host-supplied increase per acked packet),
//   * duplicate-ACK counting, fast retransmit at 3 dupacks,
//   * NewReno fast recovery with window inflation and partial-ACK hole
//     retransmission,
//   * retransmission timeout with exponential backoff and go-back-N resend,
//   * Karn's rule (no RTT samples from retransmitted segments),
//   * a scoreboard mapping subflow sequence numbers to connection-level data
//     sequence numbers (§6: the two sequence spaces are separate).
//
// Windows are kept in packets as doubles (the paper states all windows in
// packets); transmission is quantised to whole packets.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "core/arena.hpp"
#include "core/event_list.hpp"
#include "net/packet.hpp"
#include "tcp/delivery_rate.hpp"
#include "tcp/rtt_estimator.hpp"
#include "trace/trace.hpp"

namespace mpsim::tcp {

struct SubflowConfig {
  double init_cwnd = 2.0;       // packets
  double init_ssthresh = 1e9;   // effectively infinite
  double min_cwnd = 1.0;        // paper: windows bounded >= 1 pkt (probing)
  double max_cwnd = 1e9;
  std::uint32_t dupack_threshold = 3;
  SimTime min_rto = from_ms(200);
  SimTime max_rto = from_sec(60);
  // RFC 3042 Limited Transmit: send one new segment per dupack before the
  // fast-retransmit threshold, keeping the ACK clock alive at small
  // windows (where three dupacks may never materialise).
  bool limited_transmit = false;
  // The paper's kernel optimisation: "we compute the increase parameter
  // only when the congestion windows grow to accommodate one more packet,
  // rather than every ACK". Off = evaluate eq. (1) per ACK.
  bool quantized_increase = false;
};

// Connection-level services a subflow needs. Implemented by
// mptcp::MptcpConnection; the tcp layer has no knowledge of multipath.
class SubflowHost {
 public:
  virtual ~SubflowHost() = default;

  // Hand out the next data sequence number to transmit on this subflow, or
  // return false if none is available (application-limited, flow-controlled,
  // or complete).
  virtual bool next_data(std::uint32_t subflow_id, std::uint64_t& data_seq) = 0;

  // Additive increase (in packets) to apply per newly acked packet during
  // congestion avoidance on this subflow.
  virtual double ca_increase(std::uint32_t subflow_id) = 0;

  // New congestion window after a loss event on this subflow.
  virtual double window_after_loss(std::uint32_t subflow_id) = 0;

  // A (possibly updated) data-level cumulative ACK / receive window arrived.
  virtual void on_data_ack(std::uint64_t data_cum_ack,
                           std::uint64_t rcv_window) = 0;

  // The subflow suffered a retransmission timeout; `outstanding` lists the
  // data sequence numbers still unacknowledged on it (candidates for
  // reinjection on sibling subflows).
  virtual void on_subflow_rto(std::uint32_t subflow_id,
                              const std::vector<std::uint64_t>& outstanding) = 0;

  // Progress happened on this subflow (ACK processed); the connection may
  // want to pump data into sibling subflows whose constraints changed.
  virtual void on_subflow_progress(std::uint32_t subflow_id) = 0;

  // A delivery-rate sample (rate mode only): the cumulative ACK advanced
  // and the estimator produced an unambiguous measurement. The host feeds
  // its rate-based congestion controller and republishes pacing rate and
  // target window. Default no-op keeps window-mode hosts oblivious.
  virtual void on_ack_sample(std::uint32_t /*subflow_id*/,
                             const cc::DeliveryRateSample& /*sample*/) {}
};

class Subflow : public net::PacketSink, public EventSource {
 public:
  Subflow(EventList& events, std::string name, SubflowHost& host,
          std::uint32_t flow_id, std::uint32_t subflow_id,
          const SubflowConfig& cfg);

  // Teardown cancels any pending retransmission wake-up and returns the
  // arena row to the free list, so short-lived connections (Poisson churn)
  // leave no residue in the event scheduler or the SoA columns.
  ~Subflow() override;

  // The forward route this subflow's data packets travel (must end at the
  // connection's receiver). ACKs arrive back at this object.
  void set_route(const net::Route& fwd) { route_ = &fwd; }

  // Wire-reference ledger (net::Packet::wire_refs): every packet this
  // subflow emits increments `*c`; the pool decrements it when the packet
  // dies anywhere in the network. Set by the owning connection.
  void set_wire_counter(std::uint64_t* c) { wire_counter_ = c; }

  // --- lifecycle (driven by mptcp::PathManager via the connection) ------
  // An inactive subflow sends nothing, arms no timer, and is excluded from
  // the coupled controller's eq. (1) sweep; late ACKs for packets already
  // on the wire still advance its cumulative-ACK state. Deactivation is
  // how a subflow is "dropped" — rows are positional (the receiver demuxes
  // by subflow id), so subflows are never erased from the connection.
  bool active() const { return h_.active != 0; }
  void deactivate();
  // Re-probe a dropped path: restart as a fresh slow-start sender (initial
  // window, cleared backoff/recovery state, go-back-N over anything still
  // unacknowledged at subflow level).
  void reactivate();

  // Transmit as much as the congestion window / available data allow.
  void try_send();

  // PacketSink: ACKs from the receiver.
  void receive(net::Packet& pkt) override;
  const std::string& sink_name() const override { return EventSource::name(); }

  // EventSource: retransmission timer.
  void on_event() override;

  // Administrative reset (fault injection): react exactly as if the RTO
  // fired right now — collapse to the minimum window, go-back-N, back off,
  // and hand the outstanding data to the host for sibling reinjection.
  // Unlike the timer path this fires even with nothing outstanding.
  void force_timeout();

  // --- inspection ---
  double cwnd() const { return h_.cwnd; }
  // The congestion window as seen by coupled congestion control. During
  // NewReno fast recovery the cwnd is *inflated* by one packet per dupack
  // (the self-clocking transmit rule) and can transiently dwarf the real
  // window; the semantically meaningful value there is ssthresh, the
  // post-loss target the window deflates to on the full ACK.
  double effective_cwnd() const {
    return h_.in_recovery != 0 ? std::min(h_.cwnd, h_.ssthresh) : h_.cwnd;
  }
  void set_cwnd(double w);  // for tests and warm starts
  double ssthresh() const { return h_.ssthresh; }
  bool in_recovery() const { return h_.in_recovery != 0; }
  std::uint64_t inflight() const { return h_.snd_nxt - h_.snd_una; }
  const RttEstimator& rtt() const { return rtt_; }
  std::uint32_t id() const { return subflow_id_; }
  // This subflow's SoA row (core/arena.hpp): the congestion controller's
  // per-ACK sibling sweep reads rows instead of chasing object pointers.
  const SubflowHot& hot() const { return h_; }
  std::uint32_t hot_id() const { return hot_id_; }

  std::uint64_t packets_sent() const { return packets_sent_; }
  std::uint64_t packets_acked() const { return h_.snd_una; }
  std::uint64_t retransmits() const { return retransmits_; }
  std::uint64_t timeouts() const { return timeouts_; }
  std::uint64_t loss_events() const { return loss_events_; }

  // Data sequence numbers assigned to this subflow and not yet cum-acked.
  std::vector<std::uint64_t> outstanding_data() const;

  // --- rate mode (pacing + delivery-rate estimation) --------------------
  // Switch this subflow from ACK-clocked window growth to rate-based
  // operation: every launch is recorded by a DeliveryRateEstimator, every
  // cumulative-ACK advance produces a sample for SubflowHost::on_ack_sample
  // (instead of running slow start / ca_increase), and transmission is
  // spaced by the pacing rate the controller publishes into this subflow's
  // arena RateHot row. Must be called before any data is sent; sticky for
  // the subflow's lifetime (reactivation keeps it).
  void enable_rate_mode();
  bool rate_mode() const { return rate_ != nullptr; }
  // This subflow's RateHot row (valid only in rate mode).
  RateHot& rate_hot() { return *rate_; }
  const RateHot& rate_hot() const { return *rate_; }
  std::uint32_t rate_id() const { return rate_id_; }
  const DeliveryRateEstimator& delivery_estimator() const { return rate_est_; }

  // OLIA's inter-loss interval l_r, in packets: the larger of the packets
  // acked since the last loss event and the interval between the previous
  // two losses (the RFC-draft's smoothing against a single early loss).
  double loss_interval_pkts() const {
    return static_cast<double>(
        std::max<std::uint64_t>(1, std::max(acked_since_loss_,
                                            prev_loss_interval_)));
  }

 private:
  void handle_ack(net::Packet& ack);
  void send_packet(std::uint64_t subflow_seq, bool is_retransmit);
  void enter_recovery();
  void handle_timeout();
  void arm_rto();
  void cancel_rto() { rto_armed_ = false; }
  // Lazy wake-up scheduling shared by the RTO and the pacer: keep at most
  // one pending scheduler entry, pulled earlier when a nearer deadline
  // appears; on_event re-arms forward for whichever deadline moved later.
  void schedule_wakeup(SimTime t) {
    if (next_fire_ == kNever || next_fire_ > t) {
      next_fire_ = t;
      events_.schedule_at(*this, t);
    }
  }
  bool pacing_active() const {
    return rate_ != nullptr && rate_->pacing_rate > 0.0;
  }
  void arm_pacer(SimTime t) {
    pace_armed_ = true;
    pace_deadline_ = t;
    schedule_wakeup(t);
  }
  void clamp_cwnd();
  void check_invariants() const;
  // Keep the arena's srtt/rto mirror in sync after an RttEstimator update.
  void sync_rtt_mirror() {
    h_.srtt = rtt_.has_sample() ? rtt_.srtt() : 0;
    h_.rto = rtt_.rto();
    h_.rtt_valid = rtt_.has_sample() ? 1 : 0;
  }
  // Current sender phase, as the flight recorder labels it.
  trace::TcpPhase phase() const {
    if (h_.in_recovery != 0) return trace::TcpPhase::kFastRecovery;
    return h_.cwnd < h_.ssthresh ? trace::TcpPhase::kSlowStart
                                 : trace::TcpPhase::kCongestionAvoidance;
  }

  EventList& events_;
  SubflowHost& host_;
  const net::Route* route_ = nullptr;
  std::uint64_t* wire_counter_ = nullptr;
  std::uint32_t flow_id_;
  std::uint32_t subflow_id_;
  SubflowConfig cfg_;

  // Hot state — windows (packets), sequence edges, recovery flag, RTT
  // mirror — lives in the per-EventList arena; h_ is this subflow's row.
  std::uint32_t hot_id_;
  SubflowHot& h_;

  // Sequence state not needed by siblings. The scoreboard holds the
  // data_seq for every subflow seq in [scoreboard_base_, high_water_).
  std::uint64_t high_water_ = 0; // highest subflow seq ever assigned + 1
  std::uint64_t scoreboard_base_ = 0;
  std::deque<std::uint64_t> scoreboard_;  // subflow seq -> data seq

  // NewReno recovery state.
  std::uint32_t dupacks_ = 0;
  std::uint64_t recover_ = 0;  // recovery ends when snd_una >= recover_

  // Quantized-increase cache (cfg_.quantized_increase).
  double cached_increase_ = 0.0;
  double increase_quantum_ = -1.0;

  // RTO state.
  RttEstimator rtt_;
  bool rto_armed_ = false;
  SimTime rto_deadline_ = 0;
  SimTime next_fire_ = kNever;  // earliest pending scheduler wake-up
  int backoff_ = 0;

  // Rate mode (null/false in window mode — every hot-path branch below
  // stays provably dead, keeping window-mode traces bit-identical).
  std::uint32_t rate_id_ = 0;
  RateHot* rate_ = nullptr;     // arena row; owned (released in dtor)
  DeliveryRateEstimator rate_est_;
  bool pace_armed_ = false;
  SimTime pace_deadline_ = 0;
  SimTime pace_next_send_ = 0;  // earliest time pacing admits the next launch

  // OLIA inter-loss intervals (tracked in every mode; ~free).
  std::uint64_t acked_since_loss_ = 0;
  std::uint64_t prev_loss_interval_ = 0;

  // Stats.
  std::uint64_t packets_sent_ = 0;
  std::uint64_t retransmits_ = 0;
  std::uint64_t timeouts_ = 0;
  std::uint64_t loss_events_ = 0;

  // Flight recorder, cached at construction (nullptr = tracing off).
  trace::TraceRecorder* trace_ = nullptr;
  std::uint16_t trace_id_ = 0;
};

}  // namespace mpsim::tcp
