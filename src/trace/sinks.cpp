#include "trace/sinks.hpp"

#include <cinttypes>
#include <cstdio>

#include "core/check.hpp"

namespace mpsim::trace {

namespace {

// %.10g round-trips every value the simulator produces (windows are sums of
// small rationals, rates are configured constants) while keeping rows
// readable; printf %g is locale-independent for the "C" decimal point the
// simulator never changes.
void append_real(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  out += buf;
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  out += buf;
}

void append_i64(std::string& out, std::int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRId64, v);
  out += buf;
}

}  // namespace

const char* record_type_name(RecordType t) {
  switch (t) {
    case RecordType::kCwnd: return "cwnd";
    case RecordType::kState: return "state";
    case RecordType::kQueue: return "queue";
    case RecordType::kQueueDrop: return "queue_drop";
    case RecordType::kLinkDrop: return "link_drop";
    case RecordType::kRate: return "rate";
    case RecordType::kDataAck: return "data_ack";
    case RecordType::kRcvBuf: return "rcv_buf";
    case RecordType::kReinject: return "reinject";
    case RecordType::kGoodput: return "goodput";
    case RecordType::kFault: return "fault";
    case RecordType::kSubflowAdd: return "subflow_add";
    case RecordType::kSubflowDrop: return "subflow_drop";
    case RecordType::kRateSample: return "rate_sample";
    case RecordType::kPacing: return "pacing";
  }
  return "unknown";
}

const char* tcp_phase_name(TcpPhase p) {
  switch (p) {
    case TcpPhase::kSlowStart: return "slow_start";
    case TcpPhase::kCongestionAvoidance: return "congestion_avoidance";
    case TcpPhase::kFastRecovery: return "fast_recovery";
    case TcpPhase::kRtoRecovery: return "rto_recovery";
  }
  return "unknown";
}

void CsvSink::begin() {
  out_ += kHeader;
  out_ += '\n';
}

void CsvSink::record(const Record& r, std::string_view obj_name) {
  // Object names are simulator identifiers ("mp/sf0", "wifi") — no commas,
  // quotes, or newlines by construction; checked rather than escaped.
  MPSIM_CHECK(obj_name.find_first_of(",\"\n") == std::string_view::npos,
              "trace object name would corrupt the CSV row");
  append_i64(out_, r.t);
  out_ += ',';
  out_ += record_type_name(r.type);
  out_ += ',';
  out_.append(obj_name.data(), obj_name.size());
  out_ += ',';
  append_u64(out_, r.flow);
  out_ += ',';
  append_u64(out_, r.sub);
  out_ += ',';
  append_u64(out_, r.phase);
  out_ += ',';
  append_u64(out_, r.a);
  out_ += ',';
  append_u64(out_, r.b);
  out_ += ',';
  append_real(out_, r.x);
  out_ += ',';
  append_real(out_, r.y);
  out_ += '\n';
}

void JsonlSink::record(const Record& r, std::string_view obj_name) {
  MPSIM_CHECK(obj_name.find_first_of("\"\\\n") == std::string_view::npos,
              "trace object name would corrupt the JSONL row");
  out_ += "{\"t\":";
  append_i64(out_, r.t);
  out_ += ",\"type\":\"";
  out_ += record_type_name(r.type);
  out_ += "\",\"obj\":\"";
  out_.append(obj_name.data(), obj_name.size());
  out_ += "\",\"flow\":";
  append_u64(out_, r.flow);
  out_ += ",\"sub\":";
  append_u64(out_, r.sub);
  out_ += ",\"phase\":";
  append_u64(out_, r.phase);
  out_ += ",\"a\":";
  append_u64(out_, r.a);
  out_ += ",\"b\":";
  append_u64(out_, r.b);
  out_ += ",\"x\":";
  append_real(out_, r.x);
  out_ += ",\"y\":";
  append_real(out_, r.y);
  out_ += "}\n";
}

std::unique_ptr<TraceSink> make_sink(SinkKind kind) {
  switch (kind) {
    case SinkKind::kCsv: return std::make_unique<CsvSink>();
    case SinkKind::kJsonl: return std::make_unique<JsonlSink>();
    case SinkKind::kNull: return std::make_unique<NullSink>();
    case SinkKind::kNone: break;
  }
  MPSIM_CHECK(false, "make_sink(kNone): caller must gate on the sink kind");
  return std::make_unique<NullSink>();
}

const char* sink_extension(SinkKind kind) {
  return kind == SinkKind::kJsonl ? ".jsonl" : ".csv";
}

bool write_text_file(const std::string& path, const std::string& body) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return false;
  }
  std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  return true;
}

}  // namespace mpsim::trace
