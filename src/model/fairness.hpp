// The two fairness requirements of §2.5, as checkable predicates:
//
//  (3) incentive:   sum_r w_r/RTT_r  >=  max_r wTCP_r/RTT_r
//      (a multipath flow does at least as well as single-path TCP on the
//       best of its paths), and
//
//  (4) do-no-harm:  for every subset S,
//                   sum_{r in S} w_r/RTT_r  <=  max_{r in S} wTCP_r/RTT_r
//      (on any possible bottleneck the flow takes no more than one TCP).
//
// wTCP_r = sqrt(2/p_r) is the window of a hypothetical single-path TCP
// experiencing path r's loss rate.
#pragma once

#include <vector>

namespace mpsim::model {

struct FairnessReport {
  bool incentive_ok = false;       // constraint (3)
  bool do_no_harm_ok = false;      // constraint (4), all subsets
  double incentive_slack = 0.0;    // (sum rate) - (best TCP rate); >= 0 ok
  double worst_harm_slack = 0.0;   // min over S of (TCP bound - subset rate)
};

// `windows` in packets, `loss` per-packet probabilities, `rtt` seconds.
// `tolerance` is the relative slack allowed before declaring violation
// (fluid-model equalities hold only approximately at finite windows).
FairnessReport check_fairness(const std::vector<double>& windows,
                              const std::vector<double>& loss,
                              const std::vector<double>& rtt,
                              double tolerance = 1e-6);

}  // namespace mpsim::model
