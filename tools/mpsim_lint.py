#!/usr/bin/env python3
"""Project-specific lint for the mptcp simulator.

Enforces simulator rules that clang-tidy cannot express. All rules apply to
src/ (the simulation library); tests and benches may do what they like.

Rules
-----
pool-discipline     Packets are pool-allocated: no `new Packet` / `delete`
                    or malloc/free outside src/net/packet.cpp. Per-packet
                    heap churn breaks the pool's conservation ledger and
                    the perf model.
determinism-clock   No wall-clock reads (std::chrono, time(), clock(),
                    gettimeofday) in simulation code: results must be a
                    pure function of the seed. src/runner/ is exempt (it
                    measures host wall time for RunMetrics, never feeds it
                    back into simulations).
determinism-rand    All randomness flows through the seeded mpsim::Rng: no
                    rand()/srand(), std::random_device, or <random> engines
                    outside src/core/rng.*.
mutable-global      No mutable namespace-scope or static-member state:
                    simulations run concurrently on worker threads, so
                    shared mutable state is a data race. std::atomic and
                    thread_local declarations are allowed; so is anything
                    const/constexpr.
simtime-discipline  SimTime values are built with from_ns/us/ms/sec(), not
                    hand-scaled unit factors (`static_cast<SimTime>(x *
                    1e9)`): hand-scaling is where ns/us confusions breed.
                    core/time.hpp itself is exempt.
no-bare-assert      Use MPSIM_CHECK instead of assert() in src/: bare
                    asserts vanish in RelWithDebInfo, the tier-1 test
                    configuration, silently un-checking the invariant.
trace-discipline    Instrumentation sites go through the MPSIM_TRACE macro,
                    never TraceRecorder::append_unchecked() directly: the
                    macro is the single place carrying the null-recorder
                    check and the [[unlikely]] hint, so a bare call either
                    crashes when tracing is off or silently de-optimises
                    the hot path. src/trace/ itself is exempt.
arena-discipline    The per-event hot paths (event scheduling, subflow ACK
                    processing, queue enqueue/dequeue) must not allocate:
                    per-subflow and per-queue hot state lives in the
                    SimArena SoA columns, packets in the pool, wheel slots
                    in reserved vectors. Any `new` / make_unique /
                    make_shared / malloc there is a finding; the rare
                    legitimate one-off (backend migration, arena chunk
                    growth) carries an allow comment. For this rule only,
                    the allow may sit on the preceding line — the
                    allocation statements it blesses are usually already
                    at the 80-column limit.
                    Where "hot" means: with --arena-hot-ranges (the
                    normal mode — `make analyze` and the analyze ctest/CI
                    lane feed ranges computed by tools/mpsim_analyze),
                    every function body reachable from event dispatch,
                    wherever it lives. Standalone (no build tree), the
                    ARENA_HOT_FILES fallback list below — a file-granular
                    under-approximation kept for `ctest -R mpsim_lint`
                    and pre-build use.
registry-discipline Scenario-registry registrations (add_topology /
                    add_algorithm / add_traffic with a literal key) live in
                    src/scenario/builders.cpp and nowhere else, and every
                    key there is lowercase [a-z0-9_]+ and unique per kind —
                    so `mpsim list`, the spec grammar and the registry can
                    never drift apart or collide. src/scenario/registry.*
                    (the declarations) is exempt.

Suppression: append `// mpsim-lint: allow(<rule>)` to the offending line.

Usage: tools/mpsim_lint.py [--root DIR] [PATHS...]
Exits non-zero if any finding is reported.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

SOURCE_GLOBS = ("*.cpp", "*.hpp", "*.h")

ALLOW_RE = re.compile(r"//\s*mpsim-lint:\s*allow\(([\w\-,\s]+)\)")
ANALYZE_ALLOW_RE = re.compile(r"//\s*mpsim-analyze:\s*allow\(([\w\-,\s]+)\)")

# Strip string literals and comments before matching so rule regexes cannot
# fire on prose. (Line comments are kept for ALLOW_RE, handled separately.)
STRING_RE = re.compile(r'"(?:[^"\\]|\\.)*"')
LINE_COMMENT_RE = re.compile(r"//.*$")


class Finding:
    def __init__(self, path: Path, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def code_of(line: str) -> str:
    """The matchable portion of a line: no strings, no comments."""
    return LINE_COMMENT_RE.sub("", STRING_RE.sub('""', line))


def allowed_rules(line: str) -> set[str]:
    m = ALLOW_RE.search(line)
    if not m:
        return set()
    return {r.strip() for r in m.group(1).split(",")}


def analyze_allowed_rules(line: str) -> set[str]:
    """tools/mpsim_analyze's allow marker; its hot-alloc rule subsumes
    arena-discipline, so either spelling suppresses the allocation rule."""
    m = ANALYZE_ALLOW_RE.search(line)
    if not m:
        return set()
    return {r.strip() for r in m.group(1).split(",")}


def in_block_comment_map(lines: list[str]) -> list[bool]:
    """lines[i] -> True if line i is (wholly) inside a /* */ block."""
    out = []
    depth = 0
    for raw in lines:
        out.append(depth > 0)
        stripped = LINE_COMMENT_RE.sub("", raw)
        depth += stripped.count("/*") - stripped.count("*/")
        depth = max(depth, 0)
    return out


# --- individual rules ----------------------------------------------------

# `delete` must be followed by an operand ( `= delete;` declarations are not
# deallocations).
POOL_RE = re.compile(
    r"\bnew\s+Packet\b|\bdelete\s*(?:\[\s*\]\s*)?[\w(*&]"
    r"|\bmalloc\s*\(|\bfree\s*\(")
CLOCK_RE = re.compile(
    r"std::chrono|steady_clock|system_clock|high_resolution_clock"
    r"|\bgettimeofday\s*\(|\btime\s*\(\s*(?:NULL|nullptr|0)?\s*\)"
    r"|\bclock\s*\(\s*\)"
)
RAND_RE = re.compile(
    r"\brand\s*\(|\bsrand\s*\(|std::random_device|std::mt19937"
    r"|std::minstd_rand|std::default_random_engine|std::uniform_int_distribution"
    r"|std::uniform_real_distribution"
)
ASSERT_RE = re.compile(r"(?<![_\w])assert\s*\(")
# Heap allocation in a per-event hot path. `new` must start an expression
# (`new Foo`), so words like "renew" or `= delete` never match.
ARENA_RE = re.compile(
    r"\bnew\s+[A-Za-z_:]|std::make_unique|std::make_shared"
    r"|\bmalloc\s*\(|\bcalloc\s*\(")
# Files whose bodies run once per simulated event (schedule/dispatch, ACK
# clocking, packet enqueue/dequeue). Keep in sync with the docstring.
ARENA_HOT_FILES = (
    "core/event_list.cpp", "core/event_list.hpp",
    "core/timing_wheel.cpp", "core/timing_wheel.hpp",
    "tcp/subflow.cpp", "tcp/subflow.hpp",
    "net/queue.cpp", "net/queue.hpp",
    "net/variable_rate_queue.cpp",
)
TRACE_APPEND_RE = re.compile(r"\bappend_unchecked\s*\(")
SIMTIME_CAST_RE = re.compile(
    r"(static_cast<\s*SimTime\s*>|\bSimTime\s*\()[^;]*\b1e[369]\b", re.DOTALL
)
# A registration *call* (not the declarations in registry.hpp, which are
# preceded by `void` / `Registry::`). Matched against code_of() output, so
# a wrapped literal key still shows up on the continuation line as `""`.
REGISTRY_CALL_RE = re.compile(
    r"(?<!void )(?<!:)\badd_(topology|algorithm|traffic)\s*\(")
# Key extraction inside builders.cpp (raw text: keys may wrap onto the
# line after the call).
REGISTRY_KEY_RE = re.compile(
    r"\badd_(topology|algorithm|traffic)\s*\(\s*\"([^\"]*)\"", re.DOTALL)

DECL_KEYWORDS = (
    "class", "struct", "enum", "union", "using", "typedef", "template",
    "namespace", "extern", "friend", "public", "private", "protected",
    "return", "if", "for", "while", "switch", "case", "default", "do",
    "else", "static_assert", "inline namespace",
)


def check_regex_rule(path: Path, lines: list[str], in_block: list[bool],
                     rule: str, regex: re.Pattern, message: str,
                     findings: list[Finding]) -> None:
    for i, raw in enumerate(lines, start=1):
        if in_block[i - 1] or rule in allowed_rules(raw):
            continue
        if regex.search(code_of(raw)):
            findings.append(Finding(path, i, rule, message))


def check_arena_rule(path: Path, lines: list[str], in_block: list[bool],
                     findings: list[Finding],
                     ranges: list[tuple[int, int]] | None = None) -> None:
    """No heap allocation in per-event hot paths; the allow comment may
    sit on the flagged line or the one before it (clang-format keeps the
    allocation statements at the 80-column limit). When `ranges` is given
    (computed hot function bodies from tools/mpsim_analyze), only lines
    inside a range are checked; otherwise the whole file is."""
    for i, raw in enumerate(lines, start=1):
        if in_block[i - 1]:
            continue
        if ranges is not None and not any(a <= i <= b for a, b in ranges):
            continue
        allows = allowed_rules(raw) | analyze_allowed_rules(raw)
        if i >= 2:
            allows |= allowed_rules(lines[i - 2])
            allows |= analyze_allowed_rules(lines[i - 2])
        if "arena-discipline" in allows or "hot-alloc" in allows:
            continue
        if ARENA_RE.search(code_of(raw)):
            findings.append(Finding(
                path, i, "arena-discipline",
                "no heap allocation in per-event hot paths; hot state "
                "lives in SimArena columns / the packet pool / reserved "
                "wheel slots"))


def check_simtime_rule(path: Path, lines: list[str],
                       findings: list[Finding]) -> None:
    # Join each line with its two successors: the offending casts span
    # statements that clang-format wraps across up to three lines.
    for i in range(len(lines)):
        if "simtime-discipline" in allowed_rules(lines[i]):
            continue
        window = " ".join(code_of(l) for l in lines[i:i + 3])
        m = SIMTIME_CAST_RE.search(window)
        # Only report when the cast starts on THIS line (avoid duplicates).
        if m and SIMTIME_CAST_RE.match(window, pos=window.find(m.group(1))) \
                and m.group(1) in code_of(lines[i]):
            findings.append(Finding(
                path, i + 1, "simtime-discipline",
                "build SimTime with from_ns/us/ms/sec(), not raw 1e3/1e6/1e9 "
                "unit factors"))


def check_mutable_global(path: Path, lines: list[str], in_block: list[bool],
                         findings: list[Finding]) -> None:
    for i, raw in enumerate(lines, start=1):
        if in_block[i - 1] or "mutable-global" in allowed_rules(raw):
            continue
        line = code_of(raw).rstrip()
        if not line or raw[:1].isspace():  # namespace scope only
            continue
        stripped = line.strip()
        first_word = re.split(r"[\s<:&*]+", stripped, maxsplit=1)[0]
        if first_word in DECL_KEYWORDS or stripped.startswith(("#", "}", "//")):
            continue
        # A variable definition at namespace scope: `type name = ...;`,
        # `type name{...};`, `type Class::member = ...;` — but not a
        # function (those have a parameter list before any initializer).
        decl = re.match(
            r"^(?:static\s+)?(?:thread_local\s+)?[\w:<>,\s*&]+?"
            r"[\w:]+\s*(=|\{[^()]*\}\s*;|;\s*$)", stripped)
        if not decl:
            continue
        paren = stripped.find("(")
        init = stripped.find(decl.group(1))
        if paren != -1 and paren < init:
            continue  # function declaration/definition
        if re.search(r"\bconst\b|\bconstexpr\b|\bconsteval\b", stripped):
            continue
        if "std::atomic" in stripped or "thread_local" in stripped:
            continue  # race-free by construction
        findings.append(Finding(
            path, i, "mutable-global",
            "mutable namespace-scope state races across parallel "
            "simulations; use per-EventList services, std::atomic, or "
            "thread_local"))


def check_registry_keys(path: Path, text: str,
                        findings: list[Finding]) -> None:
    """Key discipline inside builders.cpp: lowercase, unique per kind."""
    seen: dict[tuple[str, str], int] = {}
    for m in REGISTRY_KEY_RE.finditer(text):
        kind, key = m.group(1), m.group(2)
        line = text.count("\n", 0, m.start()) + 1
        if not re.fullmatch(r"[a-z0-9_]+", key):
            findings.append(Finding(
                path, line, "registry-discipline",
                f"registry key '{key}' must be lowercase [a-z0-9_]+"))
        if (kind, key) in seen:
            findings.append(Finding(
                path, line, "registry-discipline",
                f"duplicate {kind} key '{key}' (first registered on line "
                f"{seen[(kind, key)]})"))
        else:
            seen[(kind, key)] = line


def computed_hot_ranges(root: Path):
    """Hot function body ranges computed by tools/mpsim_analyze over
    root/src, or None (-> ARENA_HOT_FILES fallback) if the analyzer or a
    parseable tree is unavailable."""
    try:
        pkg = Path(__file__).resolve().parent / "mpsim_analyze"
        if str(pkg) not in sys.path:
            sys.path.insert(0, str(pkg))
        import hotset
        files = hotset.discover_src(root)
        if not files:
            return None
        _, _, _, hot = hotset.analyze_tree(root, files)
        return hotset.hot_ranges(hot)
    except Exception:
        return None


def lint_file(path: Path, findings: list[Finding],
              arena_hot_ranges=None) -> None:
    lint_lines(path.as_posix(), path.read_text().splitlines(), findings,
               arena_hot_ranges=arena_hot_ranges)


def lint_lines(rel: str, lines: list[str], findings: list[Finding],
               arena_hot_ranges=None) -> None:
    """Lint one file given as (posix path, lines). Path-based exemptions
    key off `rel`, so callers (tools/mpsim_analyze's stale-allow prober)
    can lint modified text under the file's real identity.

    `arena_hot_ranges` rebases the arena-discipline rule from the
    hard-coded ARENA_HOT_FILES list onto computed reachability: a list of
    (path, start_line, end_line) hot function bodies, as emitted by
    `mpsim_analyze --emit-hot-ranges`. Files with no hot range are then
    exempt; listed ranges are checked wherever they live.
    """
    path = Path(rel)
    in_block = in_block_comment_map(lines)

    if not rel.endswith("net/packet.cpp"):
        check_regex_rule(path, lines, in_block, "pool-discipline", POOL_RE,
                         "packets are pool-allocated; use Packet::alloc() / "
                         "release()", findings)
    if "/runner/" not in rel:
        check_regex_rule(path, lines, in_block, "determinism-clock", CLOCK_RE,
                         "no wall-clock reads in simulation code; results "
                         "must be a pure function of the seed", findings)
    if "core/rng" not in rel:
        check_regex_rule(path, lines, in_block, "determinism-rand", RAND_RE,
                         "all randomness must flow through the seeded "
                         "mpsim::Rng", findings)
    check_regex_rule(path, lines, in_block, "no-bare-assert", ASSERT_RE,
                     "use MPSIM_CHECK (active in RelWithDebInfo) instead of "
                     "assert()", findings)
    if "/trace/" not in rel:
        check_regex_rule(path, lines, in_block, "trace-discipline",
                         TRACE_APPEND_RE,
                         "record through MPSIM_TRACE(recorder, builder); a "
                         "direct append_unchecked() skips the null-recorder "
                         "guard", findings)
    if not rel.endswith("core/time.hpp"):
        check_simtime_rule(path, lines, findings)
    if arena_hot_ranges is not None:
        ranges = [(a, b) for p, a, b in arena_hot_ranges
                  if rel.endswith(p) or p.endswith(rel)]
        if ranges:
            check_arena_rule(path, lines, in_block, findings, ranges=ranges)
    elif rel.endswith(ARENA_HOT_FILES):
        check_arena_rule(path, lines, in_block, findings)
    if rel.endswith("scenario/builders.cpp"):
        check_registry_keys(path, "\n".join(lines), findings)
    elif "scenario/registry" not in rel:
        check_regex_rule(path, lines, in_block, "registry-discipline",
                         REGISTRY_CALL_RE,
                         "topology/algorithm/traffic registrations live in "
                         "src/scenario/builders.cpp only", findings)
    check_mutable_global(path, lines, in_block, findings)


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("paths", nargs="*", default=None,
                    help="files or directories to lint (default: src/)")
    ap.add_argument("--root", default=None,
                    help="repo root (default: parent of this script's dir)")
    ap.add_argument("--arena-hot-ranges", metavar="FILE", default=None,
                    help="rebase arena-discipline onto computed hot ranges "
                         "(path:start:end per line, from mpsim_analyze "
                         "--emit-hot-ranges) instead of the built-in "
                         "hot-file list")
    args = ap.parse_args()

    root = Path(args.root) if args.root else Path(__file__).resolve().parent.parent

    arena_hot_ranges = None
    if args.arena_hot_ranges:
        arena_hot_ranges = []
        for raw in Path(args.arena_hot_ranges).read_text().splitlines():
            raw = raw.strip()
            if not raw:
                continue
            p, start, end = raw.rsplit(":", 2)
            arena_hot_ranges.append((p, int(start), int(end)))
    else:
        # No ranges file given: compute the hot set ourselves through
        # tools/mpsim_analyze (pure stdlib, no build needed), so standalone
        # runs check the same function-granular hot set as the analyzer.
        # ARENA_HOT_FILES remains the file-granular fallback if that fails.
        arena_hot_ranges = computed_hot_ranges(root)
    targets = [Path(p) for p in args.paths] if args.paths else [root / "src"]

    files: list[Path] = []
    for t in targets:
        if t.is_dir():
            for g in SOURCE_GLOBS:
                files.extend(sorted(t.rglob(g)))
        elif t.exists():
            files.append(t)
        else:
            print(f"mpsim_lint: no such path: {t}", file=sys.stderr)
            return 2

    findings: list[Finding] = []
    for f in files:
        lint_file(f, findings, arena_hot_ranges=arena_hot_ranges)

    for fi in findings:
        print(fi)
    if findings:
        print(f"\nmpsim_lint: {len(findings)} finding(s) in "
              f"{len(files)} file(s)", file=sys.stderr)
        return 1
    print(f"mpsim_lint: OK ({len(files)} files clean)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
