"""Symbol table, call graph and hot-set computation for mpsim_analyze.

The call graph is *name-resolved*: a call site `x->foo(...)` links to every
known definition of `foo`, and an unqualified `foo(...)` links to same-class
methods, free functions and — conservatively — any other `foo`. Without
template instantiation or type inference this over-approximates reachability,
which is the correct direction for this tool: the hot set must never *miss*
a function that event dispatch can actually reach (a missed function is an
unchecked allocation; a spuriously included one costs at worst a justified
allow-comment).

The hot set is everything reachable from the event-dispatch roots:

  * every `on_event` override (EventSource wake-ups: subflow RTO timers,
    queue service completion, samplers, fault engine, traffic arrivals),
  * every `receive` override (PacketSink delivery: queues, pipes, loss
    elements, subflow ACK intake, the MPTCP receiver),
  * the EventList dispatch/schedule machinery itself,
  * the congestion-control per-ACK hooks (increase_per_ack /
    window_after_loss — the paper's two algorithm-defining rules),
  * the trace-record builders (run inside MPSIM_TRACE on every
    instrumented hot event).
"""

from __future__ import annotations

from collections import defaultdict, deque

# Method names that are dispatch roots wherever they are defined (virtual
# overrides cannot be resolved by receiver type at this fidelity, so every
# override of these interface hooks is a root).
ROOT_NAMES = {
    "on_event",            # EventSource wake-up (incl. Subflow pacer fires)
    "receive",             # PacketSink delivery
    "increase_per_ack",    # CongestionControl per-ACK increase rule
    "window_after_loss",   # CongestionControl loss-response rule
    "on_ack_sample",       # rate-based CC delivery-sample hook
    "next_data",           # DataScheduler placement decision per launch
}

# Specific (class, method) roots: the dispatch loop and schedule hot path,
# plus the per-packet primitives. The packet ones would mostly be reached
# through member calls anyway, but several carry STL-shadowed names
# (push_back, reset — see STL_MEMBER_NAMES), so they are rooted explicitly
# rather than depending on resolution subtleties: every packet runs through
# them on every hop.
ROOT_QUALIFIED = {
    ("EventList", "run_one"),
    ("EventList", "run_until"),
    ("EventList", "run_all"),
    ("EventList", "schedule_at"),
    ("EventList", "schedule_in"),
    ("Packet", "send_on"),
    ("Packet", "advance"),
    ("Packet", "release"),
    ("Packet", "alloc"),
    ("Packet", "reset"),
    ("PacketFifo", "push_back"),
    ("PacketFifo", "pop_front"),
    ("PacketFifo", "pop_back"),
    ("PacketPool", "alloc"),
    ("PacketPool", "release"),
    ("TimingWheel", "schedule"),
    ("FlatSeqSet", "add"),
    ("FlatSeqSet", "erase_min"),
    ("FlatSeqSet", "min"),
    ("FlatSeqSet", "contains"),
}

# Member-call sites (`x.name(...)` / `p->name(...)`) with these names are
# overwhelmingly STL container/string operations; resolving them by bare
# name would alias them onto unrelated project methods (every `.begin()`
# would make the CSV trace sink "hot") and drown the hot set. Qualified
# and unqualified calls still resolve normally, and project hot-path
# methods that share one of these names are ROOT_QUALIFIED above.
STL_MEMBER_NAMES = {
    "begin", "end", "rbegin", "rend", "size", "empty", "clear", "front",
    "back", "data", "at", "find", "count", "contains", "push", "pop",
    "top", "insert", "erase", "reserve", "resize", "emplace",
    "emplace_back", "emplace_front", "push_back", "push_front", "pop_back",
    "pop_front", "get", "reset", "swap", "str", "c_str", "append",
    "assign", "fill", "length", "substr", "capacity", "first", "second",
    "value", "has_value",
    # Not STL, but a container-idiom name shared by several unrelated
    # project classes (FlatSeqSet, Column, TargetRegistry, runner): bare
    # member resolution would alias them all together. Hot-path bearers
    # are rooted explicitly in ROOT_QUALIFIED instead.
    "add",
}

# Every function defined in these files is a root: trace/record.hpp holds
# the record builders that MPSIM_TRACE evaluates on instrumented hot events.
ROOT_FILE_SUFFIXES = ("trace/record.hpp",)


class CallGraph:
    def __init__(self, defs: list):
        self.defs = defs
        self.by_name = defaultdict(list)       # name -> [FunctionDef]
        self.by_cls_name = defaultdict(list)   # (cls, name) -> [FunctionDef]
        for d in defs:
            self.by_name[d.name].append(d)
            self.by_cls_name[(d.cls, d.name)].append(d)
        self.edges = {}                        # FunctionDef -> set of defs
        for d in defs:
            self.edges[id(d)] = self._resolve_calls(d)

    def _resolve_calls(self, d) -> set:
        out = set()
        for c in d.calls:
            if c.is_member and c.name in STL_MEMBER_NAMES:
                continue
            if c.qualifier:
                targets = self.by_cls_name.get((c.qualifier, c.name))
                # Base:: / alias-qualified call: fall back to any definition
                # of that name rather than dropping the edge.
                if not targets:
                    targets = self.by_name.get(c.name, [])
            else:
                targets = self.by_name.get(c.name, [])
            out.update(id(t) for t in targets)
        return out

    # --- hot set ----------------------------------------------------------

    def roots(self) -> list:
        rs = []
        for d in self.defs:
            if d.name in ROOT_NAMES or (d.cls, d.name) in ROOT_QUALIFIED \
                    or d.path.replace("\\", "/").endswith(ROOT_FILE_SUFFIXES):
                rs.append(d)
        return rs

    def hot_set(self) -> list:
        by_id = {id(d): d for d in self.defs}
        seen = set()
        work = deque(id(d) for d in self.roots())
        seen.update(work)
        while work:
            cur = work.popleft()
            for nxt in self.edges.get(cur, ()):
                if nxt not in seen:
                    seen.add(nxt)
                    work.append(nxt)
        hot = [by_id[i] for i in seen]
        hot.sort(key=lambda d: (d.path, d.start_line))
        return hot

    def hot_files(self, hot=None) -> list:
        """Files containing at least one hot function definition."""
        hot = self.hot_set() if hot is None else hot
        return sorted({d.path for d in hot})

    def dump(self, out) -> None:
        for d in sorted(self.defs, key=lambda d: (d.path, d.start_line)):
            out.write(f"{d!r}\n")
            names = sorted({t.qualname for t in self.defs
                            if id(t) in self.edges[id(d)]})
            for nm in names:
                out.write(f"  -> {nm}\n")
