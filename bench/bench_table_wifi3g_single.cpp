// §5 static experiment, single flow — WiFi + 3G, no competing traffic.
//
// Paper (laptop testbed, 15 runs): TCP-over-WiFi 14.4 Mb/s, TCP-over-3G
// 2.1 Mb/s, MPTCP 17.3 Mb/s — i.e. the multipath user gets roughly the
// *sum* of the access links when nothing competes (the "trying too hard to
// be fair?" discussion: with an idle link, a hypothetical TCP at that loss
// rate would be arbitrarily fast, so the fairness goal does not bind).
#include <memory>

#include "cc/coupled.hpp"
#include "cc/ewtcp.hpp"
#include "cc/mptcp_lia.hpp"
#include "harness.hpp"
#include "wireless.hpp"

namespace mpsim {
namespace {

double run(int mode, const cc::CongestionControl* algo) {
  EventList events;
  topo::Network net(events);
  bench::WirelessClient radio(net);
  std::unique_ptr<mptcp::MptcpConnection> conn;
  if (mode == 0) {
    conn = mptcp::make_single_path_tcp(events, "wifi", radio.wifi_fwd(),
                                       radio.wifi_rev());
  } else if (mode == 1) {
    conn = mptcp::make_single_path_tcp(events, "3g", radio.g3_fwd(),
                                       radio.g3_rev());
  } else {
    conn = std::make_unique<mptcp::MptcpConnection>(events, "mp", *algo);
    conn->add_subflow(radio.wifi_fwd(), radio.wifi_rev());
    conn->add_subflow(radio.g3_fwd(), radio.g3_rev());
  }
  conn->start(0);
  events.run_until(bench::scaled(5));
  const auto before = conn->delivered_pkts();
  events.run_until(bench::scaled(5) + bench::scaled(60));
  return stats::pkts_to_mbps(conn->delivered_pkts() - before,
                             bench::scaled(60));
}

}  // namespace
}  // namespace mpsim

int main() {
  using namespace mpsim;
  bench::banner("§5 static single-flow: WiFi + 3G, no competition",
                "paper: WiFi-only 14.4, 3G-only 2.1, MPTCP 17.3 Mb/s "
                "(~ sum of access links)");

  stats::Table table({"flow", "Mb/s", "paper Mb/s"});
  const double wifi = run(0, nullptr);
  const double g3 = run(1, nullptr);
  table.add_row({"TCP over WiFi", stats::fmt_double(wifi, 1), "14.4"});
  table.add_row({"TCP over 3G", stats::fmt_double(g3, 1), "2.1"});
  table.add_row({"MPTCP (both)",
                 stats::fmt_double(run(2, &cc::mptcp_lia()), 1), "17.3"});
  table.add_row({"EWTCP (both)",
                 stats::fmt_double(run(2, &cc::ewtcp()), 1), "-"});
  table.add_row({"COUPLED (both)",
                 stats::fmt_double(run(2, &cc::coupled()), 1), "-"});
  table.print();
  std::printf("\nexpected shape: MPTCP ~= WiFi + 3G = %.1f Mb/s\n",
              wifi + g3);
  return 0;
}
