#include "cc/semicoupled.hpp"

namespace mpsim::cc {

double SemiCoupled::increase_per_ack(const ConnectionView& c,
                                     std::size_t /*r*/) const {
  return a_ / total_window(c);
}

double SemiCoupled::window_after_loss(const ConnectionView& c,
                                      std::size_t r) const {
  return c.cwnd_pkts(r) / 2.0;
}

const SemiCoupled& semicoupled() {
  static const SemiCoupled instance;
  return instance;
}

}  // namespace mpsim::cc
