// Example: multipath TCP in a FatTree data center (§4 scenario).
//
// Builds a k=4 FatTree (16 hosts), runs a random permutation of
// host-to-host flows, and compares single-path TCP over ECMP-style random
// routing against MPTCP striping over 4 paths. Prints per-flow goodput
// and utilization — the core story of §4: randomized single paths collide
// in the core and strand capacity; multipath finds it.
//
// Run: ./datacenter_fattree [k] [paths]
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "cc/mptcp_lia.hpp"
#include "cc/uncoupled.hpp"
#include "core/rng.hpp"
#include "example_trace.hpp"
#include "mptcp/connection.hpp"
#include "stats/monitors.hpp"
#include "stats/summary.hpp"
#include "topo/fat_tree.hpp"
#include "topo/network.hpp"
#include "traffic/traffic_matrix.hpp"

namespace {

using namespace mpsim;

std::vector<double> run(int k, int npaths, bool multipath) {
  EventList events;
  examples::ExampleTrace et(
      events, multipath ? "datacenter_fattree_mptcp"
                        : "datacenter_fattree_single");
  topo::Network net(events);
  topo::FatTree ft(net, k);
  Rng rng(2026);
  auto tm = traffic::permutation_tm(ft.num_hosts(), rng);

  std::vector<std::unique_ptr<mptcp::MptcpConnection>> flows;
  int idx = 0;
  for (const auto& pair : tm) {
    auto conn = std::make_unique<mptcp::MptcpConnection>(
        events, "flow" + std::to_string(idx++),
        multipath ? static_cast<const cc::CongestionControl&>(
                        cc::mptcp_lia())
                  : cc::uncoupled());
    for (auto& path : ft.sample_paths(pair.src, pair.dst,
                                      multipath ? npaths : 1, rng)) {
      auto ack = ft.ack_path(path, pair.src);
      conn->add_subflow(path, ack);
    }
    conn->start(from_ms(idx % 16));
    flows.push_back(std::move(conn));
  }

  events.run_until(from_sec(1));
  std::vector<std::uint64_t> base;
  for (auto& f : flows) base.push_back(f->delivered_pkts());
  events.run_until(from_sec(4));

  std::vector<double> mbps;
  for (std::size_t i = 0; i < flows.size(); ++i) {
    mbps.push_back(stats::pkts_to_mbps(flows[i]->delivered_pkts() - base[i],
                                       from_sec(3)));
  }
  return mbps;
}

void describe(const char* name, const std::vector<double>& mbps) {
  std::printf("%-24s mean %5.1f  min %5.1f  max %5.1f Mb/s   "
              "utilization %4.1f%%   Jain %.3f\n",
              name, stats::mean(mbps), stats::minimum(mbps),
              stats::maximum(mbps), stats::mean(mbps), /* 100 Mb/s NICs */
              stats::jain_index(mbps));
}

}  // namespace

int main(int argc, char** argv) {
  const int k = argc > 1 ? std::atoi(argv[1]) : 4;
  const int npaths = argc > 2 ? std::atoi(argv[2]) : 4;

  std::printf("FatTree k=%d: %d hosts, permutation traffic, 100 Mb/s links\n\n",
              k, k * k * k / 4);
  describe("single-path TCP (ECMP):", run(k, npaths, false));
  describe("MPTCP:", run(k, npaths, true));
  std::printf(
      "\nMPTCP's min-flow and fairness improve because no flow stays "
      "stuck behind a core collision — see bench_table_fattree for the "
      "full k=8 paper configuration.\n");
  return 0;
}
