// Direct tests of the hierarchical timing wheel, exercising the cases a
// whole-EventList test reaches only by luck: cross-level cascades, the
// overflow heap beyond the wheel horizon, idle-gap rebasing, and the
// peek-without-cascade contract that run_until() depends on.
#include "core/timing_wheel.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/event_list.hpp"
#include "core/rng.hpp"

namespace mpsim {
namespace {

// The wheel stores EventSource pointers but never dereferences them, so a
// tag pointer is enough to identify entries.
EventSource* tag(std::uintptr_t v) {
  return reinterpret_cast<EventSource*>(v);
}

TEST(TimingWheel, StartsEmpty) {
  TimingWheel w;
  EXPECT_TRUE(w.empty());
  EXPECT_EQ(w.size(), 0u);
  EXPECT_EQ(w.next_time(), kNever);
}

TEST(TimingWheel, PopsInTimeOrder) {
  TimingWheel w;
  w.schedule(300, 0, tag(3));
  w.schedule(100, 1, tag(1));
  w.schedule(200, 2, tag(2));
  EXPECT_EQ(w.next_time(), 100);
  EXPECT_EQ(w.pop().time, 100);
  EXPECT_EQ(w.pop().time, 200);
  EXPECT_EQ(w.pop().time, 300);
  EXPECT_TRUE(w.empty());
}

TEST(TimingWheel, FifoAmongEqualTimes) {
  TimingWheel w;
  w.schedule(50, 10, tag(1));
  w.schedule(50, 11, tag(2));
  w.schedule(50, 12, tag(3));
  EXPECT_EQ(w.pop().seq, 10u);
  EXPECT_EQ(w.pop().seq, 11u);
  EXPECT_EQ(w.pop().seq, 12u);
}

TEST(TimingWheel, FifoSurvivesCascade) {
  // Entries at the same far-future tick start on a higher level (one slot,
  // insertion order) and reach level 0 via cascade; FIFO must survive.
  TimingWheel w;
  const SimTime t = (1ll << 20) + 7;  // needs level >= 2 when cur_ = 0
  w.schedule(t, 1, tag(1));
  w.schedule(5, 2, tag(0));  // forces wheel advance through cascades
  w.schedule(t, 3, tag(2));
  EXPECT_EQ(w.pop().seq, 2u);
  auto a = w.pop();
  auto b = w.pop();
  EXPECT_EQ(a.time, t);
  EXPECT_EQ(b.time, t);
  EXPECT_EQ(a.seq, 1u);
  EXPECT_EQ(b.seq, 3u);
}

TEST(TimingWheel, OverflowHeapBeyondHorizon) {
  TimingWheel w;
  const SimTime far = (1ll << 33) + 12345;  // past the 8.6 s horizon
  const SimTime very_far = (1ll << 40) + 9;
  w.schedule(very_far, 1, tag(1));
  w.schedule(far, 2, tag(2));
  w.schedule(77, 3, tag(3));
  EXPECT_EQ(w.next_time(), 77);
  EXPECT_EQ(w.pop().time, 77);
  EXPECT_EQ(w.next_time(), far);
  EXPECT_EQ(w.pop().time, far);
  EXPECT_EQ(w.pop().time, very_far);
  EXPECT_TRUE(w.empty());
}

TEST(TimingWheel, IdleGapRebase) {
  // Drain the wheel, then schedule far past the old position: the wheel
  // must rebase rather than walk every intervening slot.
  TimingWheel w;
  w.schedule(10, 1, tag(1));
  EXPECT_EQ(w.pop().time, 10);
  const SimTime far = (1ll << 36) + 42;
  w.schedule(far, 2, tag(2));
  EXPECT_EQ(w.next_time(), far);
  EXPECT_EQ(w.pop().time, far);
}

TEST(TimingWheel, ScheduleAtCurrentTickDuringDispatch) {
  // An event scheduled for the tick currently being dispatched must fire
  // in this dispatch round, after already-queued entries for that tick.
  TimingWheel w;
  w.schedule(100, 1, tag(1));
  w.schedule(100, 2, tag(2));
  EXPECT_EQ(w.pop().seq, 1u);
  w.schedule(100, 3, tag(3));  // "now", mid-dispatch
  EXPECT_EQ(w.pop().seq, 2u);
  EXPECT_EQ(w.pop().seq, 3u);
}

TEST(TimingWheel, PeekDoesNotAdvanceWheel) {
  // Regression test for run_until(): next_time() must not cascade/advance,
  // or a subsequent schedule() earlier than the peeked time would violate
  // the wheel's monotonicity and either assert or mis-order.
  TimingWheel w;
  const SimTime far = (1ll << 24) + 3;  // top-level slot from cur_ = 0
  w.schedule(far, 1, tag(1));
  EXPECT_EQ(w.next_time(), far);  // peek must not move cur_ to `far`
  w.schedule(500, 2, tag(2));     // much earlier than the peeked time
  EXPECT_EQ(w.next_time(), 500);
  EXPECT_EQ(w.pop().time, 500);
  EXPECT_EQ(w.pop().time, far);
}

TEST(TimingWheel, NextTimeExactAcrossLevels) {
  TimingWheel w;
  // One entry per level distance plus overflow.
  const SimTime times[] = {3, 1000, (1ll << 17) + 5, (1ll << 29) + 1,
                           (1ll << 33) + 8};
  std::uint64_t seq = 0;
  for (SimTime t : times) w.schedule(t, seq++, tag(1));
  for (SimTime t : times) {
    EXPECT_EQ(w.next_time(), t);
    EXPECT_EQ(w.pop().time, t);
  }
}

TEST(TimingWheel, RandomizedAgainstReferenceOrder) {
  // 50k random schedules interleaved with pops; the dispatch order must be
  // exactly (time, seq)-sorted.
  TimingWheel w;
  Rng rng(777);
  std::vector<TimingWheel::Entry> popped;
  std::uint64_t seq = 0;
  SimTime now = 0;
  int pending = 0;
  for (int step = 0; step < 50'000; ++step) {
    const bool do_pop = pending > 0 && rng.next_double() < 0.5;
    if (do_pop) {
      auto e = w.pop();
      EXPECT_GE(e.time, now);
      now = e.time;
      popped.push_back(e);
      --pending;
    } else {
      // Mix of deltas: 0, sub-slot, cross-slot, cross-level, overflow.
      const double u = rng.next_double();
      SimTime delta;
      if (u < 0.1) {
        delta = 0;
      } else if (u < 0.5) {
        delta = static_cast<SimTime>(rng.next_double() * 255);
      } else if (u < 0.8) {
        delta = static_cast<SimTime>(rng.next_double() * (1 << 20));
      } else if (u < 0.98) {
        delta = static_cast<SimTime>(rng.next_double() * (1ll << 31));
      } else {
        delta = (1ll << 33) + static_cast<SimTime>(rng.next_double() * 1e9);
      }
      w.schedule(now + delta, seq++, tag(1));
      ++pending;
    }
  }
  while (!w.empty()) popped.push_back(w.pop());
  for (std::size_t i = 1; i < popped.size(); ++i) {
    const auto& a = popped[i - 1];
    const auto& b = popped[i];
    ASSERT_TRUE(a.time < b.time || (a.time == b.time && a.seq < b.seq))
        << "order violated at index " << i << ": (" << a.time << "," << a.seq
        << ") before (" << b.time << "," << b.seq << ")";
  }
}

}  // namespace
}  // namespace mpsim
