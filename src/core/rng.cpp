#include "core/rng.hpp"

#include <cmath>

namespace mpsim {

namespace {
// splitmix64: expands a single seed into well-distributed generator state.
std::uint64_t splitmix64(std::uint64_t& x) {
  std::uint64_t z = (x += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  for (auto& s : s_) s = splitmix64(seed);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() {
  // 53 top bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::uint64_t Rng::next_below(std::uint64_t n) {
  if (n == 0) return 0;
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % n;
  std::uint64_t v;
  do {
    v = next_u64();
  } while (v >= limit);
  return v % n;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  return lo + static_cast<std::int64_t>(
                  next_below(static_cast<std::uint64_t>(hi - lo + 1)));
}

double Rng::exponential(double mean) {
  double u;
  do {
    u = next_double();
  } while (u == 0.0);
  return -mean * std::log(u);
}

double Rng::pareto(double alpha, double xm) {
  double u;
  do {
    u = next_double();
  } while (u == 0.0);
  return xm / std::pow(u, 1.0 / alpha);
}

}  // namespace mpsim
