// Pluggable multipath congestion control.
//
// A CongestionControl decides, as a pure function of connection state, (a)
// the additive increase applied to subflow r's window per newly acked packet
// during congestion avoidance, and (b) subflow r's new window after a loss
// event. This is exactly the design space §2 of the paper explores: all five
// algorithm boxes (REGULAR/uncoupled, EWTCP, COUPLED, SEMICOUPLED, MPTCP)
// differ only in these two rules.
//
// Algorithms are stateless and const; a single instance can serve any number
// of connections simultaneously.
#pragma once

#include <cstddef>
#include <string>

namespace mpsim::cc {

// The slice of connection state congestion control may read.
class ConnectionView {
 public:
  virtual ~ConnectionView() = default;
  virtual std::size_t num_subflows() const = 0;
  virtual double cwnd_pkts(std::size_t r) const = 0;
  // Smoothed RTT in seconds (a sane fallback before the first sample).
  virtual double srtt_sec(std::size_t r) const = 0;
  // Whether subflow r currently participates in sending. Dropped (dead,
  // awaiting re-probe) subflows are excluded from every coupling sweep:
  // eq. (1)'s sums range over the paths actually in use, and a dead path's
  // frozen window must not dilute the increase applied to live ones.
  // Defaults to true so fixed-subflow-set views need not override it.
  virtual bool subflow_active(std::size_t /*r*/) const { return true; }
};

class CongestionControl {
 public:
  virtual ~CongestionControl() = default;

  // Additive window increase (packets) for subflow `r` per acked packet.
  virtual double increase_per_ack(const ConnectionView& c,
                                  std::size_t r) const = 0;

  // Subflow r's window (packets) after one loss event. Callers clamp to the
  // configured minimum (the paper keeps windows >= 1 pkt so every path is
  // continuously probed, §2.4).
  virtual double window_after_loss(const ConnectionView& c,
                                   std::size_t r) const = 0;

  virtual std::string name() const = 0;
};

// Total window across all *active* subflows, in packets. Checks (throwing
// build) that every active subflow has a positive window and RTT and that
// at least one subflow is active — congestion control must never be
// consulted for a connection whose whole path set is dropped.
double total_window(const ConnectionView& c);

// Number of active subflows (the n in EWTCP's default 1/n weight).
std::size_t active_subflow_count(const ConnectionView& c);

}  // namespace mpsim::cc
