// The fault engine end to end: injector semantics against live network
// elements, recovery metrics, bit-exact equivalence with the legacy
// RateSchedule mobility path (the Fig. 17 round trip), scenario [faults]
// wiring (thread-count identity, recovery metrics in the per-run report,
// and every parse diagnostic).
#include "fault/fault.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "cc/mptcp_lia.hpp"
#include "core/check.hpp"
#include "mptcp/connection.hpp"
#include "net/cbr.hpp"
#include "net/lossy_link.hpp"
#include "net/packet.hpp"
#include "net/variable_rate_queue.hpp"
#include "scenario/engine.hpp"
#include "scenario/spec.hpp"
#include "sim_fixtures.hpp"
#include "topo/network.hpp"
#include "topo/wireless.hpp"

namespace mpsim {
namespace {

using mptcp::MptcpConnection;

net::Packet& make_data(EventList& events) {
  net::Packet& p = net::Packet::alloc(events);
  p.type = net::PacketType::kCbr;
  return p;
}

// ---------------------------------------------------------------------------
// Injector semantics
// ---------------------------------------------------------------------------

TEST(FaultEngine, FlapTrainExpandsToAlternatingEdges) {
  const auto train =
      fault::flap_train("q", from_sec(1), from_sec(2), from_ms(500), 3);
  ASSERT_EQ(train.size(), 6u);
  for (int i = 0; i < 3; ++i) {
    const auto& down = train[static_cast<std::size_t>(2 * i)];
    const auto& up = train[static_cast<std::size_t>(2 * i + 1)];
    EXPECT_EQ(down.action, fault::Action::kDown);
    EXPECT_EQ(down.at, from_sec(1) + i * from_sec(2));
    EXPECT_EQ(down.target, "q");
    EXPECT_EQ(up.action, fault::Action::kUp);
    EXPECT_EQ(up.at, down.at + from_ms(500));
  }
}

TEST(FaultEngine, DrainDropsWaitingButNotInServicePacket) {
  EventList events;
  net::CountingSink sink("sink");
  // 12 Mb/s: 1 ms per packet. Five packets at t=0, drain at t=0.5 ms: the
  // head is mid-transmission and must complete; the other four die.
  net::Queue q(events, "q", 12e6, 100 * net::kDataPacketBytes);
  net::Route route({&q, &sink});
  for (int i = 0; i < 5; ++i) make_data(events).send_on(route);

  fault::TargetRegistry reg;
  reg.add_queue("q", q);
  fault::FaultPlan plan;
  fault::FaultEvent ev;
  ev.at = from_us(500);
  ev.action = fault::Action::kDrain;
  ev.target = "q";
  plan.events = {ev};
  fault::FaultInjector injector(events, reg, plan, /*run_seed=*/1);

  events.run_all();
  EXPECT_EQ(sink.packets(), 1u);
  EXPECT_EQ(q.drops(), 4u);
  EXPECT_EQ(injector.events_applied(), 1u);
}

TEST(FaultEngine, CorruptDropsExactlyCountPackets) {
  EventList events;
  net::CountingSink sink("sink");
  net::Queue q(events, "q", 12e6, 100 * net::kDataPacketBytes);
  net::Route route({&q, &sink});
  for (int i = 0; i < 5; ++i) make_data(events).send_on(route);

  fault::TargetRegistry reg;
  reg.add_queue("q", q);
  fault::FaultPlan plan;
  fault::FaultEvent ev;
  ev.at = from_us(500);
  ev.action = fault::Action::kCorrupt;
  ev.target = "q";
  ev.count = 2;
  plan.events = {ev};
  fault::FaultInjector injector(events, reg, plan, /*run_seed=*/1);

  events.run_all();
  EXPECT_EQ(sink.packets(), 3u);
  EXPECT_EQ(q.drops(), 2u);
}

TEST(FaultEngine, RampStepsThroughIntermediateRates) {
  EventList events;
  net::CountingSink sink("sink");
  net::VariableRateQueue q(events, "q", 12e6, 1000 * net::kDataPacketBytes);

  fault::TargetRegistry reg;
  reg.add_variable_queue("q", q);
  fault::FaultPlan plan;
  fault::FaultEvent ev;
  ev.at = from_sec(1);
  ev.action = fault::Action::kRamp;
  ev.target = "q";
  ev.value = 6e6;
  ev.duration = from_sec(3);
  ev.count = 3;
  plan.events = {ev};
  fault::FaultInjector injector(events, reg, plan, /*run_seed=*/1);

  // Linear 12 -> 6 Mb/s in 3 steps of 1 s: 10, 8, then exactly 6 Mb/s.
  events.run_until(from_sec(2) + from_ms(1));
  EXPECT_DOUBLE_EQ(q.rate_bps(), 10e6);
  events.run_until(from_sec(3) + from_ms(1));
  EXPECT_DOUBLE_EQ(q.rate_bps(), 8e6);
  events.run_until(from_sec(4) + from_ms(1));
  EXPECT_DOUBLE_EQ(q.rate_bps(), 6e6);
  // The ramp itself plus its three synthesized steps all applied.
  EXPECT_EQ(injector.events_applied(), 4u);
}

TEST(FaultEngine, LossBurstRestoresBaselineProbability) {
  EventList events;
  net::LossyLink lossy(events, "l", 0.01, 99);

  fault::TargetRegistry reg;
  reg.add_lossy("l", lossy);
  fault::FaultPlan plan;
  fault::FaultEvent ev;
  ev.at = from_sec(1);
  ev.action = fault::Action::kLossBurst;
  ev.target = "l";
  ev.value = 0.5;
  ev.duration = from_sec(1);
  plan.events = {ev};
  fault::FaultInjector injector(events, reg, plan, /*run_seed=*/1);

  events.run_until(from_ms(1500));
  EXPECT_DOUBLE_EQ(lossy.loss_prob(), 0.5);
  events.run_until(from_ms(2500));
  EXPECT_DOUBLE_EQ(lossy.loss_prob(), 0.01);  // back to the baseline
  EXPECT_EQ(injector.events_applied(), 2u);   // burst + synthesized restore
}

TEST(FaultEngine, RandomOutageTimelineIsAFunctionOfSeedAndSalt) {
  auto applied_with = [](std::uint64_t run_seed) {
    EventList events;
    net::VariableRateQueue q(events, "q", 10e6,
                             100 * net::kDataPacketBytes);
    fault::TargetRegistry reg;
    reg.add_variable_queue("q", q);
    fault::FaultPlan plan;
    fault::RandomOutage ro;
    ro.target = "q";
    ro.mean_up = from_ms(300);
    ro.mean_down = from_ms(50);
    ro.until = from_sec(30);
    ro.salt = 0;
    plan.random = {ro};
    fault::FaultInjector injector(events, reg, plan, run_seed);
    events.run_all();
    return injector.events_applied();
  };
  const std::uint64_t a = applied_with(5);
  EXPECT_EQ(a, applied_with(5)) << "same seed must replay identically";
  EXPECT_GE(a, 2u) << "30 s at ~3 outages/s must produce events";
}

// ---------------------------------------------------------------------------
// Recovery metrics
// ---------------------------------------------------------------------------

TEST(FaultEngine, RecoveryMonitorReportsOutageAndRecovery) {
  ScopedThrowingChecks throwing;
  EventList events;
  topo::Network net(events);
  auto& q = net.add_variable_queue("link/q", 10e6,
                                   50 * net::kDataPacketBytes);
  auto& pipe = net.add_pipe("link/p", from_ms(10));
  auto& ack = net.add_pipe("link/a", from_ms(10));
  auto tcp = mptcp::make_single_path_tcp(events, "t", {&q, &pipe}, {&ack});
  tcp->start(0);

  fault::FaultPlan plan;
  fault::FaultEvent down;
  down.at = from_sec(2);
  down.action = fault::Action::kDown;
  down.target = "link/q";
  fault::FaultEvent up;
  up.at = from_sec(4);
  up.action = fault::Action::kUp;
  up.target = "link/q";
  plan.events = {down, up};
  fault::RecoveryMonitor recovery(events, from_ms(1));
  recovery.track(*tcp);
  fault::FaultInjector injector(events, net.fault_targets(), plan,
                               /*run_seed=*/1, &recovery);

  events.run_until(from_sec(10));
  recovery.finalize();

  EXPECT_EQ(recovery.outages(), 1u);
  EXPECT_EQ(recovery.recoveries(), 1u);
  // Time-to-first-recovery: the retransmission timer must fire and the
  // first post-outage delivery land within a handful of RTTs.
  EXPECT_GT(recovery.mean_ttr_sec(), 0.0);
  EXPECT_LT(recovery.mean_ttr_sec(), 2.0);
  EXPECT_GE(recovery.max_ttr_sec(), recovery.mean_ttr_sec());
  // Degradation spans exactly the scripted [2 s, 4 s] outage.
  EXPECT_NEAR(recovery.degraded_sec(), 2.0, 1e-9);
  // A dead link delivers at most the handful of packets already in flight:
  // goodput retained during degradation is a small fraction of clean.
  EXPECT_LT(recovery.degraded_goodput_fraction(), 0.25);
  EXPECT_GE(recovery.degraded_goodput_fraction(), 0.0);
  EXPECT_EQ(injector.events_applied(), 2u);
}

// ---------------------------------------------------------------------------
// Fig. 17 round trip: the general fault engine reproduces the legacy
// RateSchedule mobility trace bit-exactly. Same topology, same flows, same
// schedule — one sim drives the radios with net::RateSchedule, the other
// with a FaultPlan; every per-interval delivery count must match exactly.
// ---------------------------------------------------------------------------

struct Fig17Deliveries {
  std::vector<std::uint64_t> wifi, g3, mp;
};

template <typename InstallMobility>
Fig17Deliveries run_fig17(InstallMobility install) {
  const double s = 0.05;  // scaled walk: 12 min -> 36 s
  auto at = [s](double minutes) { return from_sec(minutes * 60.0 * s); };
  EventList events;
  topo::Network net(events);
  topo::WirelessClient radio(net);
  auto tcp_wifi = mptcp::make_single_path_tcp(events, "tcp-wifi",
                                              radio.wifi_fwd(),
                                              radio.wifi_rev());
  auto tcp_3g = mptcp::make_single_path_tcp(events, "tcp-3g", radio.g3_fwd(),
                                            radio.g3_rev());
  MptcpConnection mp(events, "mp", cc::mptcp_lia());
  mp.add_subflow(radio.wifi_fwd(), radio.wifi_rev());
  mp.add_subflow(radio.g3_fwd(), radio.g3_rev());
  tcp_wifi->start(0);
  tcp_3g->start(from_ms(13));
  mp.start(at(1.0));
  install(events, net, radio, at);

  Fig17Deliveries out;
  for (double minute = 0.5; minute <= 12.0; minute += 0.5) {
    events.run_until(at(minute));
    out.wifi.push_back(tcp_wifi->delivered_pkts());
    out.g3.push_back(tcp_3g->delivered_pkts());
    out.mp.push_back(mp.delivered_pkts());
  }
  return out;
}

TEST(FaultEngine, Fig17FaultPlanMatchesRateScheduleBitExactly) {
  // Legacy construction: two RateSchedules, wifi first (as the original
  // bench ordered them).
  std::vector<std::unique_ptr<net::RateSchedule>> schedules;
  const auto legacy = run_fig17([&](EventList& events, topo::Network&,
                                    topo::WirelessClient& radio,
                                    const auto& at) {
    schedules.push_back(std::make_unique<net::RateSchedule>(
        events, radio.wifi_q,
        std::vector<net::RateSchedule::Change>{
            {at(9.0), 0.0},
            {at(10.5), 5e6},
            {at(11.0), topo::WirelessClient::kWifiRate}}));
    schedules.push_back(std::make_unique<net::RateSchedule>(
        events, radio.g3_q,
        std::vector<net::RateSchedule::Change>{
            {at(0.0), 1.0e6}, {at(9.0), 2.1e6}, {at(10.5), 1.4e6}}));
  });

  // The same mobility trace as a fault plan (what fig17_mobile.toml's
  // [faults] section and the converted bench both build).
  std::unique_ptr<fault::FaultInjector> injector;
  const auto engine = run_fig17([&](EventList& events, topo::Network& net,
                                    topo::WirelessClient&, const auto& at) {
    auto ev = [](SimTime t, fault::Action a, const char* target,
                 double value) {
      fault::FaultEvent e;
      e.at = t;
      e.action = a;
      e.target = target;
      e.value = value;
      return e;
    };
    fault::FaultPlan plan;
    plan.events = {
        ev(at(9.0), fault::Action::kDown, "wifi/q", -1.0),
        ev(at(10.5), fault::Action::kUp, "wifi/q", 5e6),
        ev(at(11.0), fault::Action::kRate, "wifi/q",
           topo::WirelessClient::kWifiRate),
        ev(at(0.0), fault::Action::kRate, "3g/q", 1.0e6),
        ev(at(9.0), fault::Action::kRate, "3g/q", 2.1e6),
        ev(at(10.5), fault::Action::kRate, "3g/q", 1.4e6),
    };
    injector = std::make_unique<fault::FaultInjector>(
        events, net.fault_targets(), plan, /*run_seed=*/1);
  });

  ASSERT_EQ(legacy.wifi.size(), engine.wifi.size());
  for (std::size_t i = 0; i < legacy.wifi.size(); ++i) {
    EXPECT_EQ(legacy.wifi[i], engine.wifi[i]) << "interval " << i;
    EXPECT_EQ(legacy.g3[i], engine.g3[i]) << "interval " << i;
    EXPECT_EQ(legacy.mp[i], engine.mp[i]) << "interval " << i;
  }
  // The walk actually happened: WiFi TCP stops gaining during the outage.
  EXPECT_EQ(engine.wifi[19], engine.wifi[20])
      << "no WiFi deliveries inside [9.5 min, 10 min] of the outage";
  EXPECT_GT(engine.mp.back(), engine.mp[17])
      << "the multipath flow keeps moving through the outage";
}

// ---------------------------------------------------------------------------
// Scenario wiring: [faults] specs are deterministic across thread counts
// and surface recovery metrics in the per-run report.
// ---------------------------------------------------------------------------

constexpr const char* kFaultSweepSpec = R"(
[scenario]
name = "fault_identity"

[topology]
kind = "two_link"
link1_rate = "10Mbps"
link1_delay = "10ms"
link2_rate = "10Mbps"
link2_delay = "10ms"

[algorithm]
kind = "mptcp"

[traffic]
kind = "persistent"
count = 1
subflows = 2

[faults]
script = ["1s down link2/q", "3s up link2/q", "6s rate 4Mbps link2/q"]
flap = ["link1/q start=8s period=2s down=250ms count=2"]

[run]
warmup = "0.5s"
measure = "12s"
seeds = [1, 2]
)";

TEST(FaultEngine, ScenarioFaultRunsAreThreadCountInvariant) {
  scenario::Scenario s =
      scenario::Scenario::from_string(kFaultSweepSpec, "fi.toml");
  scenario::EngineOptions sequential;
  sequential.threads = 1;
  scenario::EngineOptions parallel;
  parallel.threads = 4;
  const auto r1 = s.run(sequential);
  const auto r4 = s.run(parallel);

  ASSERT_EQ(r1.size(), 2u);
  ASSERT_EQ(r4.size(), 2u);
  for (std::size_t i = 0; i < r1.size(); ++i) {
    EXPECT_EQ(r1[i].name, r4[i].name);
    EXPECT_EQ(r1[i].values, r4[i].values);  // bit-exact doubles
    EXPECT_EQ(r1[i].annotations, r4[i].annotations);
  }

  // The recovery metrics ride along in every run's report.
  auto value_of = [&](std::size_t run, const std::string& key) {
    for (const auto& kv : r1[run].values) {
      if (kv.first == key) return kv.second;
    }
    ADD_FAILURE() << "metric " << key << " missing from run " << run;
    return -1.0;
  };
  for (std::size_t run = 0; run < r1.size(); ++run) {
    // 3 scripted + 4 flap edges, all before the 12.5 s horizon.
    EXPECT_EQ(value_of(run, "fault_events_applied"), 7.0);
    EXPECT_EQ(value_of(run, "fault_outages"), 3.0);
    EXPECT_EQ(value_of(run, "fault_recoveries"), 3.0);
    EXPECT_GT(value_of(run, "fault_ttr_mean_s"), 0.0);
    EXPECT_GT(value_of(run, "fault_degraded_sec"), 0.0);
    EXPECT_GE(value_of(run, "fault_reinjections"), 0.0);
    EXPECT_LT(value_of(run, "fault_degraded_goodput_fraction"), 1.0);
  }
}

// ---------------------------------------------------------------------------
// Spec diagnostics: every malformed [faults] entry fails with a file:line
// SpecError naming the problem.
// ---------------------------------------------------------------------------

constexpr const char* kTwoLinkBase = R"(
[scenario]
name = "errs"

[topology]
kind = "two_link"
link1_rate = "10Mbps"
link1_delay = "10ms"
link2_rate = "10Mbps"
link2_delay = "10ms"

[algorithm]
kind = "mptcp"

[traffic]
kind = "persistent"
count = 1
subflows = 2

[run]
warmup = "1s"
measure = "2s"
)";

constexpr const char* kWirelessBase = R"(
[scenario]
name = "errs"

[topology]
kind = "wireless"

[algorithm]
kind = "mptcp"

[traffic]
kind = "persistent"
flows = ["0+1"]

[run]
warmup = "1s"
measure = "2s"
)";

// Validate `base` plus a [faults] section and return the SpecError it
// must raise.
scenario::SpecError fault_error(const std::string& base,
                                const std::string& faults) {
  const std::string text = base + "\n[faults]\n" + faults + "\n";
  try {
    scenario::Scenario::from_string(text, "f.toml").validate();
  } catch (const scenario::SpecError& e) {
    return e;
  }
  ADD_FAILURE() << "expected a SpecError from:\n" << faults;
  return scenario::SpecError("", 0, "");
}

TEST(FaultSpecErrors, UnknownTarget) {
  const auto e = fault_error(kTwoLinkBase, "script = \"1s down nope\"");
  EXPECT_NE(std::string(e.what()).find("unknown fault target 'nope'"),
            std::string::npos)
      << e.what();
  EXPECT_NE(std::string(e.what()).find("known: "), std::string::npos)
      << "diagnostic must list the registered names";
  EXPECT_EQ(e.file(), "f.toml");
  EXPECT_GT(e.line(), 0);
}

TEST(FaultSpecErrors, UnknownAction) {
  const auto e =
      fault_error(kTwoLinkBase, "script = \"1s explode link1/q\"");
  EXPECT_NE(std::string(e.what()).find("unknown fault action 'explode'"),
            std::string::npos)
      << e.what();
  EXPECT_NE(std::string(e.what()).find("down, up, rate"), std::string::npos)
      << "diagnostic must list the known actions";
}

TEST(FaultSpecErrors, NegativeTime) {
  const auto e = fault_error(kTwoLinkBase, "script = \"-1s down link1/q\"");
  EXPECT_NE(std::string(e.what()).find("fault time must be non-negative"),
            std::string::npos)
      << e.what();
}

TEST(FaultSpecErrors, TooFewTokens) {
  const auto e = fault_error(kTwoLinkBase, "script = \"down link1/q\"");
  EXPECT_NE(std::string(e.what()).find("fault script entry needs"),
            std::string::npos)
      << e.what();
}

TEST(FaultSpecErrors, WrongArgCount) {
  const auto e = fault_error(kTwoLinkBase, "script = \"1s rate link1/q\"");
  EXPECT_NE(std::string(e.what()).find(
                "'rate' needs '<time> rate <rate> <target>'"),
            std::string::npos)
      << e.what();
}

TEST(FaultSpecErrors, NegativeRampDuration) {
  const auto e = fault_error(kTwoLinkBase,
                             "script = \"1s ramp 5Mbps -2s 4 link1/q\"");
  EXPECT_NE(std::string(e.what()).find("ramp duration must be positive"),
            std::string::npos)
      << e.what();
}

TEST(FaultSpecErrors, RampNeedsSteps) {
  const auto e = fault_error(kTwoLinkBase,
                             "script = \"1s ramp 5Mbps 2s 0 link1/q\"");
  EXPECT_NE(std::string(e.what()).find("ramp needs at least one step"),
            std::string::npos)
      << e.what();
}

TEST(FaultSpecErrors, LossProbabilityOutOfRange) {
  const auto e =
      fault_error(kWirelessBase, "script = \"1s loss 1.5 wifi/loss\"");
  EXPECT_NE(std::string(e.what()).find("loss probability must be in [0, 1]"),
            std::string::npos)
      << e.what();
}

TEST(FaultSpecErrors, LossProbabilityNotANumber) {
  const auto e =
      fault_error(kWirelessBase, "script = \"1s loss much wifi/loss\"");
  EXPECT_NE(std::string(e.what()).find("is not a number"), std::string::npos)
      << e.what();
}

TEST(FaultSpecErrors, NegativeLossBurstDuration) {
  const auto e = fault_error(kWirelessBase,
                             "script = \"1s loss_burst 0.5 -1s wifi/loss\"");
  EXPECT_NE(
      std::string(e.what()).find("loss burst duration must be positive"),
      std::string::npos)
      << e.what();
}

TEST(FaultSpecErrors, CorruptCountTooSmall) {
  const auto e =
      fault_error(kTwoLinkBase, "script = \"1s corrupt 0 link1/q\"");
  EXPECT_NE(std::string(e.what()).find("corrupt needs a packet count >= 1"),
            std::string::npos)
      << e.what();
}

TEST(FaultSpecErrors, ResetSubflowOutOfRange) {
  const auto e = fault_error(kTwoLinkBase, "script = \"1s reset 7 flow0\"");
  EXPECT_NE(std::string(e.what()).find(
                "subflow index 7 out of range for connection 'flow0' "
                "(has 2 subflows)"),
            std::string::npos)
      << e.what();
}

TEST(FaultSpecErrors, KindMismatch) {
  // `down` needs a rate to cut; a loss element has none.
  const auto e =
      fault_error(kWirelessBase, "script = \"1s down wifi/loss\"");
  EXPECT_NE(std::string(e.what()).find(
                "fault target 'wifi/loss' is a loss element; 'down' needs "
                "a variable-rate queue"),
            std::string::npos)
      << e.what();
}

TEST(FaultSpecErrors, OverlappingDownDown) {
  const auto e = fault_error(
      kTwoLinkBase,
      "script = [\"1s down link1/q\", \"2s down link1/q\"]");
  EXPECT_NE(std::string(e.what()).find(
                "overlapping 'down'/'down' on target 'link1/q' (it is "
                "already down)"),
            std::string::npos)
      << e.what();
}

TEST(FaultSpecErrors, UpWithoutDown) {
  const auto e = fault_error(kTwoLinkBase, "script = \"2s up link1/q\"");
  EXPECT_NE(std::string(e.what()).find(
                "'up' without a preceding 'down' on target 'link1/q'"),
            std::string::npos)
      << e.what();
}

TEST(FaultSpecErrors, FlapDownMustFitInsidePeriod) {
  const auto e = fault_error(
      kTwoLinkBase,
      "flap = \"link1/q start=1s period=1s down=2s count=3\"");
  EXPECT_NE(std::string(e.what()).find("flap needs 0 < down < period"),
            std::string::npos)
      << e.what();
}

TEST(FaultSpecErrors, FlapCountMustBePositive) {
  const auto e = fault_error(
      kTwoLinkBase,
      "flap = \"link1/q start=1s period=2s down=1s count=0\"");
  EXPECT_NE(std::string(e.what()).find("flap count must be >= 1"),
            std::string::npos)
      << e.what();
}

TEST(FaultSpecErrors, FlapMissingParameter) {
  const auto e =
      fault_error(kTwoLinkBase, "flap = \"link1/q start=1s period=2s\"");
  EXPECT_NE(std::string(e.what()).find(
                "flap needs all of start=, period=, down=, count="),
            std::string::npos)
      << e.what();
}

TEST(FaultSpecErrors, FlapUnknownParameter) {
  const auto e = fault_error(
      kTwoLinkBase,
      "flap = \"link1/q start=1s period=2s down=1s count=3 cadence=9\"");
  EXPECT_NE(std::string(e.what()).find("unknown flap parameter 'cadence'"),
            std::string::npos)
      << e.what();
}

TEST(FaultSpecErrors, RandomOutageNeedsPositiveParameters) {
  const auto e = fault_error(
      kTwoLinkBase,
      "random_outage = \"link1/q mean_up=1s mean_down=0s until=10s\"");
  EXPECT_NE(std::string(e.what()).find(
                "random_outage needs positive mean_up=, mean_down= and "
                "until="),
            std::string::npos)
      << e.what();
}

TEST(FaultSpecErrors, RandomOutageConflictsWithScriptedEdges) {
  const auto e = fault_error(
      kTwoLinkBase,
      "script = [\"1s down link1/q\", \"2s up link1/q\"]\n"
      "random_outage = \"link1/q mean_up=1s mean_down=1s until=10s\"");
  EXPECT_NE(std::string(e.what()).find(
                "has both a random outage process and scripted down/up "
                "events"),
            std::string::npos)
      << e.what();
}

TEST(FaultSpecErrors, RecoveryPollMustBePositive) {
  const auto e = fault_error(kTwoLinkBase,
                             "recovery_poll = \"0s\"\n"
                             "script = \"1s down link1/q\"");
  EXPECT_NE(std::string(e.what()).find("recovery_poll must be positive"),
            std::string::npos)
      << e.what();
}

}  // namespace
}  // namespace mpsim
