// Failure injection: outages at awkward moments, lossy ACK paths, link
// flapping — the robustness margin beyond the paper's scripted scenarios.
// The FaultMatrix suite at the bottom sweeps every congestion controller
// through the fault engine's canonical disruptions.
#include <gtest/gtest.h>

#include <tuple>

#include "cc/balia.hpp"
#include "cc/coupled.hpp"
#include "cc/coupled_bbr.hpp"
#include "cc/ewtcp.hpp"
#include "cc/mptcp_lia.hpp"
#include "cc/olia.hpp"
#include "cc/rfc6356.hpp"
#include "cc/semicoupled.hpp"
#include "cc/uncoupled.hpp"
#include "core/check.hpp"
#include "fault/fault.hpp"
#include "mptcp/connection.hpp"
#include "net/lossy_link.hpp"
#include "net/variable_rate_queue.hpp"
#include "sim_fixtures.hpp"
#include "topo/network.hpp"

namespace mpsim {
namespace {

using mptcp::ConnectionConfig;
using mptcp::MptcpConnection;
using test::SingleLink;

struct VarLink {
  VarLink(topo::Network& net, const std::string& name, double rate,
          SimTime one_way, std::uint64_t buf)
      : q(net.add_variable_queue(name + "/q", rate, buf)),
        pipe(net.add_pipe(name + "/p", one_way)),
        ack(net.add_pipe(name + "/a", one_way)) {}
  topo::Path fwd() { return {&q, &pipe}; }
  topo::Path rev() { return {&ack}; }
  net::VariableRateQueue& q;
  net::Pipe& pipe;
  net::Pipe& ack;
};

TEST(FailureInjection, OutageDuringSlowStart) {
  // The link dies while the very first window is in flight: the flow must
  // neither crash nor stall forever.
  EventList events;
  topo::Network net(events);
  VarLink link(net, "v", 10e6, from_ms(10), 100 * net::kDataPacketBytes);
  auto tcp = mptcp::make_single_path_tcp(events, "t", link.fwd(), link.rev());
  tcp->start(0);
  events.run_until(from_ms(25));  // mid slow start
  link.q.set_rate(0.0);
  events.run_until(from_sec(5));
  link.q.set_rate(10e6);
  events.run_until(from_sec(15));
  EXPECT_GT(tcp->subflow(0).timeouts(), 0u);
  EXPECT_GT(tcp->delivered_pkts(), 5000u) << "must recover to full speed";
  EXPECT_EQ(tcp->receiver().window_violations(), 0u);
}

TEST(FailureInjection, LossyAckPathStillDeliversEverything) {
  // 10% of ACKs vanish. Cumulative acking absorbs that: later ACKs cover
  // earlier ones and the stream completes.
  EventList events;
  topo::Network net(events);
  auto link = net.add_link("l", 10e6, from_ms(10),
                           topo::bdp_bytes(10e6, from_ms(20)));
  auto& ack_loss = net.add_lossy("ackloss", 0.10, 4242);
  auto& ack_pipe = net.add_pipe("ackpipe", from_ms(10));
  ConnectionConfig cfg;
  cfg.app_limit_pkts = 5000;
  auto tcp = mptcp::make_single_path_tcp(
      events, "t", topo::path_of({&link}), {&ack_loss, &ack_pipe}, cfg);
  tcp->start(0);
  events.run_until(from_sec(60));
  EXPECT_TRUE(tcp->complete());
  EXPECT_EQ(tcp->receiver().data_cum_ack(), 5000u);
}

TEST(FailureInjection, BothPathsDieAndRevive) {
  EventList events;
  topo::Network net(events);
  VarLink l1(net, "l1", 10e6, from_ms(10), 50 * net::kDataPacketBytes);
  VarLink l2(net, "l2", 10e6, from_ms(10), 50 * net::kDataPacketBytes);
  MptcpConnection mp(events, "mp", cc::mptcp_lia());
  mp.add_subflow(l1.fwd(), l1.rev());
  mp.add_subflow(l2.fwd(), l2.rev());
  mp.start(0);
  events.run_until(from_sec(3));
  l1.q.set_rate(0.0);
  l2.q.set_rate(0.0);
  events.run_until(from_sec(10));
  const auto during = mp.delivered_pkts();
  l1.q.set_rate(10e6);
  l2.q.set_rate(10e6);
  events.run_until(from_sec(25));
  EXPECT_GT(mp.delivered_pkts(), during + 15000u)
      << "full two-link speed after total blackout";
  EXPECT_EQ(mp.receiver().window_violations(), 0u);
}

TEST(FailureInjection, FlappingLink) {
  // One path flaps every 2 seconds; the connection should ride the stable
  // path at full speed throughout and opportunistically use the flapper.
  EventList events;
  topo::Network net(events);
  VarLink stable(net, "stable", 10e6, from_ms(10),
                 50 * net::kDataPacketBytes);
  VarLink flappy(net, "flappy", 10e6, from_ms(10),
                 50 * net::kDataPacketBytes);
  std::vector<net::RateSchedule::Change> changes;
  for (int i = 1; i <= 20; ++i) {
    changes.push_back({from_sec(2 * i), (i % 2 == 1) ? 0.0 : 10e6});
  }
  net::RateSchedule sched(events, flappy.q, std::move(changes));
  MptcpConnection mp(events, "mp", cc::mptcp_lia());
  mp.add_subflow(stable.fwd(), stable.rev());
  mp.add_subflow(flappy.fwd(), flappy.rev());
  mp.start(0);
  events.run_until(from_sec(40));
  // Stable path alone at ~10 Mb/s for 40 s ~= 33k packets; require at
  // least 90% of that despite the flapping sibling.
  EXPECT_GT(mp.delivered_pkts(), 30000u);
  EXPECT_EQ(mp.receiver().window_violations(), 0u);
  // The flapper carried some traffic during its up periods.
  EXPECT_GT(mp.subflow(1).packets_acked(), 1000u);
}

TEST(FailureInjection, DeadFromBirthSubflowDoesNotPoisonConnection) {
  // One path never works at all (rate 0 from the start).
  EventList events;
  topo::Network net(events);
  SingleLink good(net, 10e6, from_ms(10), 50 * net::kDataPacketBytes,
                  "good");
  VarLink dead(net, "dead", 10e6, from_ms(10), 50 * net::kDataPacketBytes);
  dead.q.set_rate(0.0);
  MptcpConnection mp(events, "mp", cc::mptcp_lia());
  mp.add_subflow(good.fwd(), good.rev());
  mp.add_subflow(dead.fwd(), dead.rev());
  mp.start(0);
  events.run_until(from_sec(20));
  EXPECT_GT(mp.delivered_pkts(), 14000u)
      << "the good path must run at ~ full speed";
  EXPECT_GT(mp.subflow(1).timeouts(), 0u);
}

TEST(FailureInjection, PacketPoolBalancedAfterChaos) {
  EventList events;
  const std::size_t base = net::Packet::pool_outstanding(events);
  {
    topo::Network net(events);
    VarLink l1(net, "l1", 10e6, from_ms(10), 20 * net::kDataPacketBytes);
    auto& lossy = net.add_lossy("loss", 0.05, 5);
    auto& pipe = net.add_pipe("p2", from_ms(30));
    auto& ack2 = net.add_pipe("a2", from_ms(30));
    ConnectionConfig cfg;
    cfg.app_limit_pkts = 3000;
    MptcpConnection mp(events, "mp", cc::mptcp_lia(), cfg);
    mp.add_subflow(l1.fwd(), l1.rev());
    mp.add_subflow({&lossy, &pipe}, {&ack2});
    mp.start(0);
    events.run_until(from_sec(2));
    l1.q.set_rate(0.0);
    events.run_until(from_sec(4));
    l1.q.set_rate(10e6);
    events.run_until(from_sec(60));
    EXPECT_TRUE(mp.complete());
    events.run_all();  // drain every in-flight packet and timer
  }
  EXPECT_EQ(net::Packet::pool_outstanding(events), base)
      << "every allocated packet must return to the pool";
}

// ---------------------------------------------------------------------------
// Fault matrix: every congestion controller x every canonical disruption,
// driven through the fault engine (not ad-hoc set_rate calls) so the same
// code paths the scenario [faults] section uses are exercised. Runs under
// throwing checks: the per-ACK LIA eq. (1) increase bound and every other
// runtime invariant must hold through the churn, not just at the end.
// ---------------------------------------------------------------------------

struct MatrixAlgo {
  std::string label;
  const cc::CongestionControl* algo;
};

enum class FaultKind {
  kSlowStartOutage,  // path 2 dies while the first window is in flight
  kFlapTrain,        // path 2 flaps on a fixed cadence
  kLossBurst,        // path 2 suffers a 30% loss episode
  kPathDeath,        // path 2 dies for good
};

const char* fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::kSlowStartOutage: return "SlowStartOutage";
    case FaultKind::kFlapTrain: return "FlapTrain";
    case FaultKind::kLossBurst: return "LossBurst";
    case FaultKind::kPathDeath: return "PathDeath";
  }
  return "?";
}

fault::FaultPlan matrix_plan(FaultKind kind) {
  fault::FaultPlan plan;
  auto ev = [](SimTime t, fault::Action a, const char* target, double value,
               SimTime duration = 0) {
    fault::FaultEvent e;
    e.at = t;
    e.action = a;
    e.target = target;
    e.value = value;
    e.duration = duration;
    return e;
  };
  switch (kind) {
    case FaultKind::kSlowStartOutage:
      plan.events = {ev(from_ms(25), fault::Action::kDown, "l2/q", -1.0),
                     ev(from_sec(3), fault::Action::kUp, "l2/q", -1.0)};
      break;
    case FaultKind::kFlapTrain:
      plan.events = fault::flap_train("l2/q", from_sec(1), from_sec(2),
                                      from_ms(500), 6);
      break;
    case FaultKind::kLossBurst:
      plan.events = {ev(from_sec(2), fault::Action::kLossBurst, "l2/loss",
                        0.30, from_sec(2))};
      break;
    case FaultKind::kPathDeath:
      plan.events = {ev(from_sec(2), fault::Action::kDown, "l2/q", -1.0)};
      break;
  }
  return plan;
}

class FaultMatrix
    : public ::testing::TestWithParam<std::tuple<MatrixAlgo, FaultKind>> {};

TEST_P(FaultMatrix, SurvivesDisruptionWithoutStallOrInvariantBreach) {
  const MatrixAlgo& a = std::get<0>(GetParam());
  const FaultKind kind = std::get<1>(GetParam());
  ScopedThrowingChecks throwing;  // invariant breach => CheckFailureError

  EventList events;
  topo::Network net(events);
  VarLink l1(net, "l1", 10e6, from_ms(10), 50 * net::kDataPacketBytes);
  // Path 2 carries a (normally silent) lossy element so the loss-burst
  // fault has something to act on.
  auto& l2_loss = net.add_lossy("l2/loss", 0.0, 77);
  VarLink l2(net, "l2", 10e6, from_ms(10), 50 * net::kDataPacketBytes);

  MptcpConnection mp(events, "mp", *a.algo);
  mp.add_subflow(l1.fwd(), l1.rev());
  mp.add_subflow({&l2_loss, &l2.q, &l2.pipe}, l2.rev());
  net.fault_targets().add_connection("mp", mp);
  mp.start(0);

  fault::RecoveryMonitor recovery(events, from_ms(1));
  recovery.track(mp);
  fault::FaultInjector injector(events, net.fault_targets(),
                               matrix_plan(kind), /*run_seed=*/7, &recovery);

  events.run_until(from_sec(25));
  const std::uint64_t late = mp.delivered_pkts();
  events.run_until(from_sec(30));
  recovery.finalize();

  EXPECT_GT(injector.events_applied(), 0u) << a.label;
  // No permanent stall: the stable path alone is worth ~10 Mb/s, so the
  // last five seconds must still move thousands of packets...
  EXPECT_GT(mp.delivered_pkts(), late + 2000u)
      << a.label << "/" << fault_kind_name(kind) << " stalled";
  // ...and the 30 s total must be well past single-path floor.
  EXPECT_GT(mp.delivered_pkts(), 10000u)
      << a.label << "/" << fault_kind_name(kind);
  EXPECT_EQ(mp.receiver().window_violations(), 0u) << a.label;

  if (kind == FaultKind::kSlowStartOutage || kind == FaultKind::kFlapTrain) {
    // Every completed outage must be observed, and recovery must follow.
    EXPECT_GE(recovery.outages(), 1u) << a.label;
    EXPECT_GE(recovery.recoveries(), 1u) << a.label;
    EXPECT_GT(recovery.mean_ttr_sec(), 0.0) << a.label;
    EXPECT_GT(recovery.degraded_sec(), 0.0) << a.label;
  }
  if (kind == FaultKind::kPathDeath) {
    // The dead path was noticed (RTOs), and the stream kept flowing on the
    // survivor regardless.
    EXPECT_GT(mp.subflow(1).timeouts(), 0u) << a.label;
    EXPECT_GE(recovery.outages(), 1u) << a.label;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithmsAllFaults, FaultMatrix,
    ::testing::Combine(
        ::testing::Values(MatrixAlgo{"uncoupled", &cc::uncoupled()},
                          MatrixAlgo{"ewtcp", &cc::ewtcp()},
                          MatrixAlgo{"semicoupled", &cc::semicoupled()},
                          MatrixAlgo{"coupled", &cc::coupled()},
                          MatrixAlgo{"mptcp", &cc::mptcp_lia()},
                          MatrixAlgo{"rfc6356", &cc::rfc6356()},
                          MatrixAlgo{"olia", &cc::olia()},
                          MatrixAlgo{"balia", &cc::balia()},
                          MatrixAlgo{"coupled_bbr", &cc::coupled_bbr()}),
        ::testing::Values(FaultKind::kSlowStartOutage, FaultKind::kFlapTrain,
                          FaultKind::kLossBurst, FaultKind::kPathDeath)),
    [](const ::testing::TestParamInfo<std::tuple<MatrixAlgo, FaultKind>>&
           info) {
      return std::get<0>(info.param).label + std::string("_") +
             fault_kind_name(std::get<1>(info.param));
    });

TEST(FailureInjection, Section6DeadlockRegression) {
  // §6 of the paper: a tiny shared receive buffer, a dying subflow with
  // data outstanding, and opportunistic reinjection racing the RTO. The
  // failure mode this guards against is a deadlock where the window is
  // full of data stranded on the dead path, the receive buffer cannot
  // admit the retransmissions, and the data-level cumulative ACK stops
  // forever. Progress (cum-ACK advance within bounded sim time) must hold.
  ScopedThrowingChecks throwing;
  EventList events;
  topo::Network net(events);
  VarLink fast(net, "fast", 10e6, from_ms(10), 50 * net::kDataPacketBytes);
  // The doomed path is slow and long-delay so it strands a chunk of the
  // sequence space when it dies.
  VarLink doomed(net, "doomed", 2e6, from_ms(80), 50 * net::kDataPacketBytes);
  ConnectionConfig cfg;
  cfg.recv_buffer_pkts = 16;  // §6-small: flow control binds hard
  cfg.app_limit_pkts = 4000;
  MptcpConnection mp(events, "mp", cc::mptcp_lia(), cfg);
  mp.add_subflow(fast.fwd(), fast.rev());
  mp.add_subflow(doomed.fwd(), doomed.rev());
  net.fault_targets().add_connection("mp", mp);
  mp.start(0);

  fault::FaultPlan plan;
  fault::FaultEvent down;
  down.at = from_ms(700);  // with data in flight on both paths
  down.action = fault::Action::kDown;
  down.target = "doomed/q";
  fault::FaultEvent reset;  // and kick the dead subflow's RTO state too
  reset.at = from_ms(900);
  reset.action = fault::Action::kReset;
  reset.target = "mp";
  reset.count = 1;
  plan.events = {down, reset};
  fault::FaultInjector injector(events, net.fault_targets(), plan,
                               /*run_seed=*/3);

  events.run_until(from_ms(1000));
  const std::uint64_t ack_at_kill = mp.receiver().data_cum_ack();
  // Bounded-time progress: within every subsequent 2 s window the
  // data-level cumulative ACK must advance until the stream completes.
  std::uint64_t prev = ack_at_kill;
  for (int window = 0; window < 15 && !mp.complete(); ++window) {
    events.run_until(from_ms(1000) + from_sec(2 * (window + 1)));
    const std::uint64_t now_ack = mp.receiver().data_cum_ack();
    EXPECT_GT(now_ack, prev)
        << "cum-ACK stalled in window " << window << " (deadlock)";
    if (now_ack == prev) break;
    prev = now_ack;
  }
  EXPECT_TRUE(mp.complete()) << "stream never finished: cum-ACK stuck at "
                             << prev << " of " << cfg.app_limit_pkts;
  EXPECT_EQ(mp.receiver().window_violations(), 0u);
  EXPECT_GT(mp.scheduler().reinjected_total(), 0u)
      << "the race this test guards requires reinjection to fire";
  EXPECT_GT(injector.events_applied(), 0u);
}

}  // namespace
}  // namespace mpsim
