#include "net/variable_rate_queue.hpp"

#include <gtest/gtest.h>

#include "core/check.hpp"
#include "core/event_list.hpp"
#include "net/cbr.hpp"
#include "net/packet.hpp"

namespace mpsim::net {
namespace {

Packet& make_data(EventList& events) {
  Packet& p = Packet::alloc(events);
  p.type = PacketType::kCbr;
  return p;
}

// Helper event that changes the rate of a queue at a scheduled time.
class RateChanger : public EventSource {
 public:
  RateChanger(EventList& e, VariableRateQueue& q, double rate)
      : EventSource(e, "chg"), q_(q), rate_(rate) {}
  void on_event() override { q_.set_rate(rate_); }

 private:
  VariableRateQueue& q_;
  double rate_;
};

TEST(VariableRateQueue, BehavesLikeFixedQueueWithoutChanges) {
  EventList events;
  CountingSink sink("sink");
  VariableRateQueue q(events, "vq", 12e6, 100 * kDataPacketBytes);
  Route route({&q, &sink});
  for (int i = 0; i < 3; ++i) make_data(events).send_on(route);
  events.run_all();
  EXPECT_EQ(sink.packets(), 3u);
  EXPECT_EQ(events.now(), from_ms(3));
}

TEST(VariableRateQueue, RateChangeMidServiceRescales) {
  EventList events;
  CountingSink sink("sink");
  // 12 Mb/s: a packet takes 1 ms. Halve the rate halfway through: the
  // remaining half takes 1 ms at 6 Mb/s -> completes at 1.5 ms.
  VariableRateQueue q(events, "vq", 12e6, 100 * kDataPacketBytes);
  Route route({&q, &sink});
  make_data(events).send_on(route);
  RateChanger slow(events, q, 6e6);
  events.schedule_at(slow, from_us(500));
  events.run_all();
  EXPECT_EQ(sink.packets(), 1u);
  EXPECT_EQ(events.now(), from_us(1500));
}

TEST(VariableRateQueue, SpeedupMidServiceFinishesEarlier) {
  EventList events;
  struct TimedSink : PacketSink {
    explicit TimedSink(EventList& e) : events(e) {}
    void receive(Packet& pkt) override {
      delivered_at = events.now();
      pkt.release();
    }
    const std::string& sink_name() const override { return name; }
    EventList& events;
    std::string name = "timed";
    SimTime delivered_at = -1;
  } sink(events);
  VariableRateQueue q(events, "vq", 12e6, 100 * kDataPacketBytes);
  Route route({&q, &sink});
  make_data(events).send_on(route);
  RateChanger fast(events, q, 24e6);
  events.schedule_at(fast, from_us(500));
  events.run_all();
  // Half done at 0.5 ms; remaining half at double speed takes 0.25 ms.
  // (A stale wake-up from the original 1 ms schedule fires later and is
  // ignored, so assert on the delivery time, not the final clock.)
  EXPECT_EQ(sink.delivered_at, from_us(750));
}

TEST(VariableRateQueue, OutageFreezesAndResumes) {
  EventList events;
  CountingSink sink("sink");
  VariableRateQueue q(events, "vq", 12e6, 100 * kDataPacketBytes);
  Route route({&q, &sink});
  make_data(events).send_on(route);
  RateChanger off(events, q, 0.0);
  RateChanger on(events, q, 12e6);
  events.schedule_at(off, from_us(500));
  events.schedule_at(on, from_ms(10));
  events.run_all();
  // Half transmitted before the outage; the second half (0.5 ms) completes
  // after service resumes at 10 ms.
  EXPECT_EQ(sink.packets(), 1u);
  EXPECT_EQ(events.now(), from_ms(10) + from_us(500));
  EXPECT_FALSE(q.in_outage());
}

TEST(VariableRateQueue, ArrivalsDuringOutageQueueUp) {
  EventList events;
  CountingSink sink("sink");
  VariableRateQueue q(events, "vq", 12e6, 10 * kDataPacketBytes);
  Route route({&q, &sink});
  q.set_rate(0.0);
  for (int i = 0; i < 5; ++i) make_data(events).send_on(route);
  EXPECT_EQ(q.queued_packets(), 5u);
  RateChanger on(events, q, 12e6);
  events.schedule_at(on, from_ms(100));
  events.run_all();
  EXPECT_EQ(sink.packets(), 5u);
  EXPECT_EQ(events.now(), from_ms(105));
}

TEST(VariableRateQueue, DropsStillApplyDuringOutage) {
  EventList events;
  CountingSink sink("sink");
  VariableRateQueue q(events, "vq", 12e6, 2 * kDataPacketBytes);
  Route route({&q, &sink});
  q.set_rate(0.0);
  for (int i = 0; i < 5; ++i) make_data(events).send_on(route);
  EXPECT_EQ(q.drops(), 3u);
}

TEST(VariableRateQueue, ExtremeRateMidServiceStaysFinite) {
  // Regression: a rate jump so large that the remaining service time
  // truncates to zero nanoseconds used to divide 0-by-0 when banking the
  // transmitted fraction (fraction_done_ went NaN, and the next
  // reschedule cast the NaN to SimTime — UB). The packet must simply be
  // treated as done and depart, with every internal quantity finite.
  ScopedThrowingChecks throwing;
  EventList events;
  CountingSink sink("sink");
  VariableRateQueue q(events, "vq", 12e6, 100 * kDataPacketBytes);
  Route route({&q, &sink});
  make_data(events).send_on(route);
  RateChanger warp(events, q, 1e15);  // sub-nanosecond residual service time
  events.schedule_at(warp, from_us(500));
  events.run_all();
  EXPECT_EQ(sink.packets(), 1u);

  // The queue keeps working afterwards: a second packet at a sane rate
  // serves in the normal 1 ms.
  RateChanger sane(events, q, 12e6);
  events.schedule_at(sane, events.now() + 1);
  events.run_all();
  const SimTime before = events.now();
  make_data(events).send_on(route);
  events.run_all();
  EXPECT_EQ(sink.packets(), 2u);
  EXPECT_EQ(events.now(), before + from_ms(1));
}

TEST(VariableRateQueue, RepeatedZeroAndExtremeFlipsStayConsistent) {
  // set_rate(0) mid-transmission followed by extreme restores, repeated:
  // the banked-fraction bookkeeping must survive arbitrary interleaving.
  ScopedThrowingChecks throwing;
  EventList events;
  CountingSink sink("sink");
  VariableRateQueue q(events, "vq", 12e6, 100 * kDataPacketBytes);
  Route route({&q, &sink});
  for (int i = 0; i < 3; ++i) make_data(events).send_on(route);
  RateChanger off1(events, q, 0.0);
  RateChanger warp(events, q, 1e15);
  RateChanger off2(events, q, 0.0);
  RateChanger norm(events, q, 12e6);
  events.schedule_at(off1, from_us(300));
  events.schedule_at(warp, from_us(900));
  events.schedule_at(off2, from_us(901));
  events.schedule_at(norm, from_ms(2));
  events.run_all();
  EXPECT_EQ(sink.packets(), 3u);
  EXPECT_FALSE(q.in_outage());
}

TEST(RateSchedule, AppliesChangesInOrder) {
  EventList events;
  CountingSink sink("sink");
  VariableRateQueue q(events, "vq", 12e6, 100 * kDataPacketBytes);
  RateSchedule sched(events, q,
                     {{from_ms(5), 0.0}, {from_ms(20), 24e6}});
  events.run_until(from_ms(6));
  EXPECT_TRUE(q.in_outage());
  events.run_until(from_ms(21));
  EXPECT_FALSE(q.in_outage());
  EXPECT_DOUBLE_EQ(q.rate_bps(), 24e6);
}

}  // namespace
}  // namespace mpsim::net
