// §3 dynamic load-balancing table (Fig. 9 scenario).
//
// Two 100 Mb/s links, 50-packet buffers, 10 ms path RTT. The top link also
// carries an on/off CBR flow: on at 100 Mb/s for exp(10 ms), off for
// exp(100 ms). A two-subflow multipath flow should vacate the top link
// during bursts and re-take it quickly when the CBR goes quiet.
//
// Paper's throughputs (Mb/s):      top    bottom
//   EWTCP                           85     100
//   MPTCP                           83     99.8
//   COUPLED                         55     99.4
#include <memory>

#include "cc/coupled.hpp"
#include "cc/ewtcp.hpp"
#include "cc/mptcp_lia.hpp"
#include "cc/semicoupled.hpp"
#include "harness.hpp"
#include "net/cbr.hpp"
#include "topo/two_link.hpp"

namespace mpsim {
namespace {

struct Result {
  double top_mbps;
  double bottom_mbps;
};

Result run(const cc::CongestionControl& algo) {
  EventList events;
  topo::Network net(events);
  topo::LinkSpec spec;
  spec.rate_bps = 100e6;
  spec.one_way_delay = from_ms(5);
  spec.buf_bytes = 50 * net::kDataPacketBytes;
  topo::TwoLink links(net, spec, spec);

  net::CountingSink cbr_sink("cbr/sink");
  topo::Path cbr_path = links.fwd(0);
  cbr_path.push_back(&cbr_sink);
  net::Route cbr_route(cbr_path);
  net::OnOffCbrSource cbr(events, "cbr", cbr_route, 100e6, from_ms(10),
                          from_ms(100), 20260706);

  mptcp::MptcpConnection mp(events, "mp", algo);
  mp.add_subflow(links.fwd(0), links.rev(0));
  mp.add_subflow(links.fwd(1), links.rev(1));
  cbr.start(0);
  mp.start(from_ms(13));

  events.run_until(bench::scaled(5));
  const auto top0 = mp.subflow(0).packets_acked();
  const auto bot0 = mp.subflow(1).packets_acked();
  events.run_until(bench::scaled(5) + bench::scaled(60));
  const SimTime dt = bench::scaled(60);
  return {stats::pkts_to_mbps(mp.subflow(0).packets_acked() - top0, dt),
          stats::pkts_to_mbps(mp.subflow(1).packets_acked() - bot0, dt)};
}

}  // namespace
}  // namespace mpsim

int main() {
  using namespace mpsim;
  bench::banner("§3 table: bursty CBR on the top link (Fig. 9)",
                "paper Mb/s — EWTCP 85/100, MPTCP 83/99.8, COUPLED 55/99.4");

  stats::Table table(
      {"algorithm", "top link Mb/s", "bottom link Mb/s", "paper top/bottom"});
  struct Row {
    const char* name;
    const cc::CongestionControl* algo;
    const char* paper;
  };
  const Row rows[] = {
      {"EWTCP", &cc::ewtcp(), "85 / 100"},
      {"MPTCP", &cc::mptcp_lia(), "83 / 99.8"},
      {"SEMICOUPLED", &cc::semicoupled(), "-"},
      {"COUPLED", &cc::coupled(), "55 / 99.4"},
  };
  for (const Row& row : rows) {
    const Result r = run(*row.algo);
    table.add_row({row.name, stats::fmt_double(r.top_mbps, 1),
                   stats::fmt_double(r.bottom_mbps, 1), row.paper});
  }
  table.print();
  std::printf(
      "\nexpected shape: EWTCP ~ MPTCP >> COUPLED on the top link; all "
      "~full on the bottom link\n");
  return 0;
}
