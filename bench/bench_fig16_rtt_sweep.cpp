// Fig. 16 / §5 — RTT-compensation sweep.
//
// Fig. 14 topology with C1 = 400 pkt/s, RTT1 = 100 ms fixed; link 2 swept
// over C2 in {400, 800, 1600, 3200} pkt/s and RTT2 in {12, 25, 50, 100,
// 200, 400, 800} ms. Each link also carries one single-path TCP (S1, S2).
// The plotted quantity is the ratio of M's throughput to the better of S1
// and S2 — the incentive goal says it should be >= 1.0, and the paper
// finds it within a few percent of 1 except at tiny bandwidth-delay
// products on link 2 (timeouts), with an average multipath gain of ~15%
// over using just the better link.
#include <memory>
#include <vector>

#include "cc/mptcp_lia.hpp"
#include "harness.hpp"
#include "topo/two_link.hpp"

namespace mpsim {
namespace {

double run_ratio(double c2, double rtt2_ms) {
  EventList events;
  topo::Network net(events);
  topo::TwoLink links(
      net, topo::LinkSpec::pkt_rate(400.0, from_ms(50), 1.0),
      topo::LinkSpec::pkt_rate(c2, from_ms(rtt2_ms / 2.0), 1.0));
  auto s1 = mptcp::make_single_path_tcp(events, "s1", links.fwd(0),
                                        links.rev(0));
  auto s2 = mptcp::make_single_path_tcp(events, "s2", links.fwd(1),
                                        links.rev(1));
  mptcp::MptcpConnection m(events, "m", cc::mptcp_lia());
  m.add_subflow(links.fwd(0), links.rev(0));
  m.add_subflow(links.fwd(1), links.rev(1));
  s1->start(0);
  s2->start(from_ms(37));
  m.start(from_ms(71));

  events.run_until(bench::scaled(40));
  const auto b1 = s1->delivered_pkts();
  const auto b2 = s2->delivered_pkts();
  const auto bm = m.delivered_pkts();
  events.run_until(bench::scaled(40) + bench::scaled(200));
  const double r1 = static_cast<double>(s1->delivered_pkts() - b1);
  const double r2 = static_cast<double>(s2->delivered_pkts() - b2);
  const double rm = static_cast<double>(m.delivered_pkts() - bm);
  return rm / std::max(r1, r2);
}

}  // namespace
}  // namespace mpsim

int main() {
  using namespace mpsim;
  bench::banner(
      "Fig. 16 / §5: ratio of M's throughput to better(S1,S2)",
      "C1=400 pkt/s RTT1=100 ms; each cell should be ~1.0, dipping only "
      "at tiny BDP on link 2 (timeout-dominated)");

  const double c2s[] = {400, 800, 1600, 3200};
  const double rtts[] = {12, 25, 50, 100, 200, 400, 800};

  stats::Table table({"RTT2 (ms)", "C2=400", "C2=800", "C2=1600",
                      "C2=3200"});
  double sum = 0.0;
  int n = 0;
  for (double rtt : rtts) {
    std::vector<double> row;
    for (double c2 : c2s) {
      const double ratio = run_ratio(c2, rtt);
      row.push_back(ratio);
      sum += ratio;
      ++n;
    }
    table.add_row(stats::fmt_double(rtt, 0), row, 2);
  }
  table.print();
  std::printf("\nmean ratio over all cells: %.2f (>= 1.0 means the "
              "incentive goal holds on average; paper ~1.0 with +15%% "
              "gain vs best single link)\n",
              sum / n);
  return 0;
}
