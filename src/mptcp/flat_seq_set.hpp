// A sorted flat set of sequence numbers, tuned for reassembly buffers.
//
// MptcpReceiver used std::set for its out-of-order tracking, which costs a
// red-black-tree node allocation per out-of-order arrival — on the
// per-packet receive path, under exactly the loss/reorder conditions the
// paper studies. tools/mpsim_analyze's hot-alloc pass flagged it. This
// container keeps the same semantics (ordered, unique, pop-min, membership)
// in one contiguous vector reserved to the flow-control bound:
//
//   * add():       binary search + in-place shift. Out-of-order arrivals
//                  overwhelmingly carry ascending sequence numbers, so the
//                  common insert position is the end — no shift at all.
//   * erase_min(): head-index bump, O(1); the dead prefix is recycled in
//                  place (no deallocation) once it outgrows the live part.
//   * No allocation after reserve(): the live size is bounded by the
//     advertised receive window, which the callers reserve up front.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/check.hpp"

namespace mpsim::mptcp {

class FlatSeqSet {
 public:
  void reserve(std::size_t n) { v_.reserve(n); }

  bool empty() const { return head_ == v_.size(); }
  std::size_t size() const { return v_.size() - head_; }

  // Smallest held sequence number. Requires !empty().
  std::uint64_t min() const {
    MPSIM_CHECK(!empty(), "min() of an empty FlatSeqSet");
    return v_[head_];
  }

  bool contains(std::uint64_t s) const {
    const auto begin = v_.begin() + static_cast<std::ptrdiff_t>(head_);
    const auto it = std::lower_bound(begin, v_.end(), s);
    return it != v_.end() && *it == s;
  }

  // Inserts `s`; returns false (and holds nothing new) if already present.
  bool add(std::uint64_t s) {
    const auto begin = v_.begin() + static_cast<std::ptrdiff_t>(head_);
    const auto it = std::lower_bound(begin, v_.end(), s);
    if (it != v_.end() && *it == s) return false;
    // Shifts within reserved capacity; the live size is bounded by the
    // receive window the owner reserved for. A pathological overflow
    // grows the vector once, amortized — never per packet.
    // mpsim-analyze: allow(hot-alloc)
    v_.insert(it, s);
    return true;
  }

  // Drops the smallest element. Requires !empty().
  void erase_min() {
    MPSIM_CHECK(!empty(), "erase_min() of an empty FlatSeqSet");
    ++head_;
    // Recycle the dead prefix in place once it dominates: move the live
    // suffix down and reuse the same storage (erase of a prefix never
    // reallocates). Amortized O(1) per erase_min.
    if (head_ >= 64 && head_ > size()) {
      v_.erase(v_.begin(), v_.begin() + static_cast<std::ptrdiff_t>(head_));
      head_ = 0;
    }
  }

 private:
  std::vector<std::uint64_t> v_;  // ascending; live range is [head_, end)
  std::size_t head_ = 0;
};

}  // namespace mpsim::mptcp
