#include "net/packet.hpp"

#include <cassert>
#include <memory>
#include <vector>

namespace mpsim::net {

namespace {

// Global free-list pool. Single-threaded simulator, so no locking. Packets
// are recycled rather than freed; peak usage is bounded by total in-flight
// packets across all queues and pipes.
class PacketPool {
 public:
  Packet& alloc() {
    if (free_.empty()) {
      storage_.push_back(std::unique_ptr<Packet>(new Packet()));
      ++outstanding_;
      return *storage_.back();
    }
    Packet* p = free_.back();
    free_.pop_back();
    ++outstanding_;
    return *p;
  }

  void release(Packet* p) {
    assert(outstanding_ > 0);
    --outstanding_;
    free_.push_back(p);
  }

  std::size_t outstanding() const { return outstanding_; }

  static PacketPool& instance() {
    static PacketPool pool;
    return pool;
  }

 private:
  std::vector<std::unique_ptr<Packet>> storage_;
  std::vector<Packet*> free_;
  std::size_t outstanding_ = 0;
};

}  // namespace

void Packet::reset() {
  type = PacketType::kData;
  flow_id = 0;
  subflow_id = 0;
  subflow_seq = 0;
  data_seq = 0;
  subflow_cum_ack = 0;
  data_cum_ack = 0;
  rcv_window = 0;
  is_window_update = false;
  size_bytes = kDataPacketBytes;
  ts_echo = 0;
  is_retransmit = false;
  route_ = nullptr;
  next_hop_ = 0;
}

Packet& Packet::alloc() {
  Packet& p = PacketPool::instance().alloc();
  p.reset();
  return p;
}

void Packet::release() { PacketPool::instance().release(this); }

std::size_t Packet::pool_outstanding() {
  return PacketPool::instance().outstanding();
}

void Packet::send_on(const Route& route) {
  assert(route.size() > 0);
  route_ = &route;
  next_hop_ = 1;
  route.at(0)->receive(*this);
}

void Packet::advance() {
  assert(route_ != nullptr && next_hop_ < route_->size());
  PacketSink* sink = route_->at(next_hop_++);
  sink->receive(*this);
}

}  // namespace mpsim::net
