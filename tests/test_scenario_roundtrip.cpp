// Round-trip byte-identity: a simulation assembled by the scenario engine
// from a spec file must produce exactly the numbers (bit-for-bit doubles)
// of the same simulation built directly against the C++ API, and exactly
// the same results at any thread count. These tests pin the construction
// orders the builders mirror — a builder that reorders element creation or
// rng draws breaks here, not silently in a bench figure.
#include "scenario/engine.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "cc/coupled.hpp"
#include "cc/mptcp_lia.hpp"
#include "core/rng.hpp"
#include "mptcp/connection.hpp"
#include "net/packet.hpp"
#include "runner/experiment_runner.hpp"
#include "stats/goodput.hpp"
#include "stats/summary.hpp"
#include "topo/fat_tree.hpp"
#include "topo/network.hpp"
#include "topo/torus.hpp"
#include "topo/wireless.hpp"
#include "traffic/traffic_matrix.hpp"

namespace mpsim::scenario {
namespace {

// Execute the single run of `text` through the engine and return its
// recorded metrics in order.
std::vector<std::pair<std::string, double>> engine_values(
    const std::string& text) {
  Scenario s = Scenario::from_string(text, "rt.toml");
  const auto runs = s.expand();
  EXPECT_EQ(runs.size(), 1u);
  runner::RunContext ctx(runs[0].name, SchedulerKind::kAuto);
  execute_run(runs[0], /*time_scale=*/1.0, ctx);
  return ctx.values();
}

TEST(ScenarioRoundTrip, TorusMatchesDirectConstruction) {
  const auto engine = engine_values(R"(
[scenario]
name = "rt_torus"

[topology]
kind = "torus"
rate_pps = 1000
cap_c = 250

[algorithm]
kind = "coupled"

[traffic]
kind = "persistent"
stagger = "31ms"

[run]
warmup = "5s"
measure = "20s"

[output]
metrics = ["flow_mbps", "jain", "queue_loss", "loss_ratio:0:2"]
)");

  // The same simulation, written the way bench_fig8_torus writes it.
  runner::RunContext ctx("direct", SchedulerKind::kAuto);
  EventList& events = ctx.events();
  topo::Network net(events);
  topo::Torus torus(net, {1000.0, 1000.0, 250.0, 1000.0, 1000.0});
  stats::GoodputMeter meter(events);
  cc::Coupled coupled;
  std::vector<std::unique_ptr<mptcp::MptcpConnection>> conns;
  for (int i = 0; i < topo::Torus::kLinks; ++i) {
    auto conn = std::make_unique<mptcp::MptcpConnection>(
        events, "flow" + std::to_string(i), coupled);
    conn->add_subflow(torus.fwd(i, 0), torus.rev(i, 0));
    conn->add_subflow(torus.fwd(i, 1), torus.rev(i, 1));
    conn->start(static_cast<SimTime>(i) * from_ms(31));
    meter.track(*conn);
    conns.push_back(std::move(conn));
  }
  events.run_until(from_sec(5));
  for (int l = 0; l < topo::Torus::kLinks; ++l) {
    torus.queue(l).reset_stats();
  }
  meter.mark();
  events.run_until(from_sec(5) + from_sec(20));
  const std::vector<double> mbps = meter.mbps();

  // 5 flow rates + jain + 5 queue losses + 1 loss ratio, in plan order.
  ASSERT_EQ(engine.size(), 12u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(engine[static_cast<std::size_t>(i)].first,
              "mbps_flow" + std::to_string(i));
    EXPECT_EQ(engine[static_cast<std::size_t>(i)].second,
              mbps[static_cast<std::size_t>(i)]);
  }
  EXPECT_EQ(engine[5].first, "jain");
  EXPECT_EQ(engine[5].second, stats::jain_index(mbps));
  for (int l = 0; l < 5; ++l) {
    EXPECT_EQ(engine[static_cast<std::size_t>(6 + l)].first,
              "loss_q" + std::to_string(l));
    EXPECT_EQ(engine[static_cast<std::size_t>(6 + l)].second,
              torus.queue(l).loss_rate());
  }
  const double pa = torus.queue(0).loss_rate();
  const double pc = torus.queue(2).loss_rate();
  EXPECT_EQ(engine[11].first, "loss_ratio_0_2");
  EXPECT_EQ(engine[11].second, pc > 0 ? pa / pc : 0.0);

  // The experiment actually ran: every ring flow moved traffic.
  for (double v : mbps) EXPECT_GT(v, 0.0);
}

TEST(ScenarioRoundTrip, FatTreePermutationMatchesDirect) {
  const auto engine = engine_values(R"(
[scenario]
name = "rt_ft"

[topology]
kind = "fat_tree"
k = 4

[algorithm]
kind = "mptcp"

[traffic]
kind = "permutation"
tm_seed = 4243
subflows = 4

[run]
warmup = "0.2s"
measure = "0.5s"

[output]
metrics = ["total_mbps", "jain", "per_flow_mean_mbps", "per_host_mbps"]
)");

  runner::RunContext ctx("direct", SchedulerKind::kAuto);
  EventList& events = ctx.events();
  topo::Network net(events);
  topo::FatTree ft(net, 4, 100e6, from_us(20), 100 * net::kDataPacketBytes);
  stats::GoodputMeter meter(events);
  cc::MptcpLia lia;
  Rng tm_rng(4243);
  const auto tm = traffic::permutation_tm(ft.num_hosts(), tm_rng);
  mptcp::ConnectionConfig ccfg;
  ccfg.subflow.min_rto = from_ms(10);
  ccfg.recv_buffer_pkts = 4096;
  Rng rng(1);  // the run seed (default: no [run] seeds)
  std::vector<std::unique_ptr<mptcp::MptcpConnection>> conns;
  int idx = 0;
  for (const auto& pair : tm) {
    auto conn = std::make_unique<mptcp::MptcpConnection>(
        events, "f" + std::to_string(idx), lia, ccfg);
    for (auto& pr :
         topo::sample_path_pairs(ft, pair.src, pair.dst, 4, rng)) {
      conn->add_subflow(pr.first, pr.second);
    }
    conn->start(from_ms(0.5 * static_cast<double>(idx % 997)));
    meter.track(*conn);
    conns.push_back(std::move(conn));
    ++idx;
  }
  events.run_until(from_sec(0.2));
  meter.mark();
  events.run_until(from_sec(0.2) + from_sec(0.5));

  const std::vector<double> mbps = meter.mbps();
  double total = 0.0;
  for (double v : mbps) total += v;

  ASSERT_EQ(engine.size(), 4u);
  EXPECT_EQ(engine[0].first, "total_mbps");
  EXPECT_EQ(engine[0].second, total);
  EXPECT_EQ(engine[1].first, "jain");
  EXPECT_EQ(engine[1].second, stats::jain_index(mbps));
  EXPECT_EQ(engine[2].first, "per_flow_mean_mbps");
  EXPECT_EQ(engine[2].second, total / static_cast<double>(conns.size()));
  EXPECT_EQ(engine[3].first, "per_host_mbps");
  EXPECT_EQ(engine[3].second, total / static_cast<double>(ft.num_hosts()));
  EXPECT_GT(total, 0.0);
}

TEST(ScenarioRoundTrip, WirelessMatchesDirect) {
  const auto engine = engine_values(R"(
[scenario]
name = "rt_wifi"

[topology]
kind = "wireless"

[algorithm]
kind = "mptcp"

[traffic]
kind = "persistent"
flows = ["0+1"]

[run]
warmup = "2s"
measure = "10s"
)");

  runner::RunContext ctx("direct", SchedulerKind::kAuto);
  EventList& events = ctx.events();
  topo::Network net(events);
  topo::WirelessClient radio(net);
  stats::GoodputMeter meter(events);
  cc::MptcpLia lia;
  mptcp::MptcpConnection conn(events, "flow0", lia);
  conn.add_subflow(radio.wifi_fwd(), radio.wifi_rev());
  conn.add_subflow(radio.g3_fwd(), radio.g3_rev());
  conn.start(0);
  meter.track(conn);
  events.run_until(from_sec(2));
  meter.mark();
  events.run_until(from_sec(2) + from_sec(10));

  const std::vector<double> mbps = meter.mbps();
  // Default metrics: flow_mbps then total_mbps.
  ASSERT_EQ(engine.size(), 2u);
  EXPECT_EQ(engine[0].first, "mbps_flow0");
  EXPECT_EQ(engine[0].second, mbps[0]);
  EXPECT_EQ(engine[1].first, "total_mbps");
  EXPECT_EQ(engine[1].second, mbps[0]);
  // Both radios contribute: more than WiFi alone can carry in theory is
  // not guaranteed at this horizon, but goodput must be well above zero.
  EXPECT_GT(mbps[0], 1.0);
}

TEST(ScenarioRoundTrip, ThreadCountDoesNotChangeResults) {
  Scenario s = Scenario::from_string(R"(
[scenario]
name = "rt_grid"

[topology]
kind = "two_link"
link1_rate = "12Mbps"
link1_delay = "20ms"
link2_rate = "12Mbps"
link2_delay = "20ms"

[algorithm]
kind = "mptcp"

[traffic]
kind = "persistent"
count = 1
subflows = 2

[run]
warmup = "0.5s"
measure = "1s"
seeds = [1, 2, 3]

[sweep]
algorithm.kind = ["mptcp", "ewtcp"]
)",
                                     "rt_grid.toml");

  EngineOptions sequential;
  sequential.threads = 1;
  EngineOptions parallel;
  parallel.threads = 4;
  const auto r1 = s.run(sequential);
  const auto r4 = s.run(parallel);

  ASSERT_EQ(r1.size(), 6u);  // 2 algorithms x 3 seeds
  ASSERT_EQ(r4.size(), 6u);
  for (std::size_t i = 0; i < r1.size(); ++i) {
    EXPECT_EQ(r1[i].name, r4[i].name);
    EXPECT_EQ(r1[i].values, r4[i].values);  // bit-exact doubles
    EXPECT_EQ(r1[i].annotations, r4[i].annotations);
    EXPECT_FALSE(r1[i].values.empty());
  }
}

}  // namespace
}  // namespace mpsim::scenario
