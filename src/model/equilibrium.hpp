// Numeric equilibrium solver for the full MPTCP algorithm (eq. (1)).
//
// At equilibrium the per-ACK increases and per-loss decreases balance on
// every path (appendix):
//
//   (1 - p_r) * increase_r(w) = p_r * w_r / 2        for each r.
//
// increase_r is the subset-minimised formula, so there is no closed form in
// general; we solve by damped fixed-point iteration on
//
//   w_r  <-  2 (1 - p_r) increase_r(w) / p_r .
//
// The solution feeds the fairness property tests (constraints (3)/(4)) and
// the Fig. 16 predictions.
#pragma once

#include <vector>

namespace mpsim::model {

struct MptcpEquilibrium {
  std::vector<double> windows;  // packets
  bool converged = false;
  int iterations = 0;
};

// `loss[r]` per-packet drop probability, `rtt[r]` seconds.
MptcpEquilibrium mptcp_equilibrium(const std::vector<double>& loss,
                                   const std::vector<double>& rtt,
                                   double tol = 1e-10, int max_iter = 200000);

// Aggregate rate sum_r w_r / RTT_r in pkt/s.
double total_rate(const std::vector<double>& windows,
                  const std::vector<double>& rtt);

}  // namespace mpsim::model
