// Every builtin registry entry, in one translation unit.
//
// tools/mpsim_lint.py's registry-discipline rule pins all add_topology /
// add_algorithm / add_traffic calls to this file and checks the keys are
// lowercase and unique, so `mpsim list` and the spec grammar can never
// drift apart or collide.
//
// Byte-identity contract: a builder must construct network elements and
// connections in exactly the order the corresponding bench binary does —
// element construction order determines names, event ordering and rng
// draws. Where a bench and the engine share a helper (topo::WirelessClient,
// topo::sample_path_pairs), identity is structural; elsewhere the order is
// mirrored by hand and locked by the round-trip tests.
#include <array>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cc/balia.hpp"
#include "cc/coupled.hpp"
#include "cc/coupled_bbr.hpp"
#include "cc/ewtcp.hpp"
#include "cc/mptcp_lia.hpp"
#include "cc/olia.hpp"
#include "cc/rfc6356.hpp"
#include "cc/semicoupled.hpp"
#include "cc/uncoupled.hpp"
#include "core/check.hpp"
#include "mptcp/path_manager.hpp"
#include "net/cbr.hpp"
#include "net/variable_rate_queue.hpp"
#include "scenario/registry.hpp"
#include "topo/bcube.hpp"
#include "topo/fat_tree.hpp"
#include "topo/network.hpp"
#include "topo/parking_lot.hpp"
#include "topo/torus.hpp"
#include "topo/triangle.hpp"
#include "topo/two_link.hpp"
#include "topo/wireless.hpp"
#include "traffic/poisson_flows.hpp"
#include "traffic/traffic_matrix.hpp"

namespace mpsim::scenario {
namespace {

// ---------------------------------------------------------------------------
// Topologies
// ---------------------------------------------------------------------------

// Truncate a slot's canonical path list to the first n pairs.
std::vector<topo::PathPair> take(std::vector<topo::PathPair> pairs, int n) {
  if (n >= 0 && static_cast<std::size_t>(n) < pairs.size()) {
    pairs.resize(static_cast<std::size_t>(n));
  }
  return pairs;
}

class TwoLinkTopo final : public BuiltTopology {
 public:
  TwoLinkTopo(topo::Network& net, const topo::LinkSpec& l1,
              const topo::LinkSpec& l2)
      : links_(net, l1, l2) {}

  int flow_slots() const override { return 1; }

  std::vector<topo::PathPair> flow_paths(int slot, int nsubflows,
                                         Rng& rng) override {
    (void)slot;
    (void)rng;
    return take({{links_.fwd(0), links_.rev(0)},
                 {links_.fwd(1), links_.rev(1)}},
                nsubflows);
  }

  std::vector<net::Queue*> queues() override {
    return {&links_.queue(0), &links_.queue(1)};
  }

 private:
  topo::TwoLink links_;
};

topo::LinkSpec link_spec(const Section& s, const std::string& prefix) {
  topo::LinkSpec spec;
  spec.rate_bps = s.get_rate_bps(prefix + "_rate", spec.rate_bps);
  spec.one_way_delay = s.get_time(prefix + "_delay", spec.one_way_delay);
  spec.buf_bytes = s.get_bytes(prefix + "_buf", spec.buf_bytes);
  return spec;
}

class TriangleTopo final : public BuiltTopology {
 public:
  TriangleTopo(topo::Network& net, const std::array<double, 3>& rates,
               SimTime delay, const std::array<std::uint64_t, 3>& bufs)
      : tri_(net, rates, delay, bufs) {}

  int flow_slots() const override { return topo::Triangle::kFlows; }

  std::vector<topo::PathPair> flow_paths(int slot, int nsubflows,
                                         Rng& rng) override {
    (void)rng;
    return take({{tri_.fwd(slot, 0), tri_.rev(slot, 0)},
                 {tri_.fwd(slot, 1), tri_.rev(slot, 1)}},
                nsubflows);
  }

  std::vector<net::Queue*> queues() override {
    return {&tri_.queue(0), &tri_.queue(1), &tri_.queue(2)};
  }

 private:
  topo::Triangle tri_;
};

class ParkingLotTopo final : public BuiltTopology {
 public:
  ParkingLotTopo(topo::Network& net, double rate, SimTime rtt,
                 std::uint64_t buf)
      : pl_(net, rate, rtt, buf) {}

  int flow_slots() const override { return topo::ParkingLot::kFlows; }

  // Path 0 = the one-hop path, path 1 = the two-hop detour (Fig. 2's
  // ordering).
  std::vector<topo::PathPair> flow_paths(int slot, int nsubflows,
                                         Rng& rng) override {
    (void)rng;
    return take({{pl_.one_hop_fwd(slot), pl_.one_hop_rev(slot)},
                 {pl_.two_hop_fwd(slot), pl_.two_hop_rev(slot)}},
                nsubflows);
  }

  std::vector<net::Queue*> queues() override {
    return {&pl_.queue(0), &pl_.queue(1), &pl_.queue(2)};
  }

 private:
  topo::ParkingLot pl_;
};

class TorusTopo final : public BuiltTopology {
 public:
  TorusTopo(topo::Network& net,
            const std::array<double, topo::Torus::kLinks>& rates)
      : torus_(net, rates) {}

  int flow_slots() const override { return topo::Torus::kLinks; }

  std::vector<topo::PathPair> flow_paths(int slot, int nsubflows,
                                         Rng& rng) override {
    (void)rng;
    return take({{torus_.fwd(slot, 0), torus_.rev(slot, 0)},
                 {torus_.fwd(slot, 1), torus_.rev(slot, 1)}},
                nsubflows);
  }

  std::vector<net::Queue*> queues() override {
    std::vector<net::Queue*> qs;
    for (int l = 0; l < topo::Torus::kLinks; ++l) {
      qs.push_back(&torus_.queue(l));
    }
    return qs;
  }

 private:
  topo::Torus torus_;
};

class FatTreeTopo final : public BuiltTopology {
 public:
  FatTreeTopo(topo::Network& net, int k, double rate, SimTime delay,
              std::uint64_t buf)
      : ft_(net, k, rate, delay, buf) {}

  int flow_slots() const override { return 0; }  // matrix traffic only

  std::vector<topo::PathPair> flow_paths(int slot, int nsubflows,
                                         Rng& rng) override {
    (void)slot;
    (void)nsubflows;
    (void)rng;
    return {};
  }

  int num_hosts() const override { return ft_.num_hosts(); }

  std::vector<topo::PathPair> host_paths(int src, int dst, int n,
                                         Rng& rng) override {
    return topo::sample_path_pairs(ft_, src, dst, n, rng);
  }

  EventList& host_events(int h, EventList& fallback) override {
    (void)fallback;  // hosts always have a definite shard in a fat tree
    return ft_.host_events(h);
  }

  std::vector<net::Queue*> queues() override {
    // Access then core, the Fig. 13 reporting order.
    std::vector<net::Queue*> qs;
    for (const auto* q : ft_.access_queues()) {
      qs.push_back(const_cast<net::Queue*>(q));
    }
    for (const auto* q : ft_.core_queues()) {
      qs.push_back(const_cast<net::Queue*>(q));
    }
    return qs;
  }

 private:
  topo::FatTree ft_;
};

class BCubeTopo final : public BuiltTopology {
 public:
  BCubeTopo(topo::Network& net, int n, int k, double rate, SimTime delay,
            std::uint64_t buf)
      : bc_(net, n, k, rate, delay, buf) {}

  int flow_slots() const override { return 0; }  // matrix traffic only

  std::vector<topo::PathPair> flow_paths(int slot, int nsubflows,
                                         Rng& rng) override {
    (void)slot;
    (void)nsubflows;
    (void)rng;
    return {};
  }

  int num_hosts() const override { return bc_.num_hosts(); }

  std::vector<topo::PathPair> host_paths(int src, int dst, int n,
                                         Rng& rng) override {
    return topo::sample_path_pairs(bc_, src, dst, n, rng);
  }

  std::vector<std::pair<int, int>> neighbor_pairs() const override {
    // BCube TP2: every host writes to its one-digit neighbours at every
    // level (replica placement close in the topology).
    std::vector<std::pair<int, int>> tm;
    for (int h = 0; h < bc_.num_hosts(); ++h) {
      for (int l = 0; l < bc_.levels(); ++l) {
        for (int d : bc_.neighbors(h, l)) tm.emplace_back(h, d);
      }
    }
    return tm;
  }

  std::vector<net::Queue*> queues() override {
    std::vector<net::Queue*> qs;
    for (const auto* q : bc_.all_queues()) {
      qs.push_back(const_cast<net::Queue*>(q));
    }
    return qs;
  }

 private:
  topo::BCube bc_;
};

class WirelessTopo final : public BuiltTopology {
 public:
  WirelessTopo(topo::Network& net, double wifi_loss)
      : radio_(net, wifi_loss) {}

  void add_schedule(EventList& events, net::VariableRateQueue& q,
                    std::vector<net::RateSchedule::Change> changes) {
    schedules_.push_back(
        std::make_unique<net::RateSchedule>(events, q, std::move(changes)));
  }

  topo::WirelessClient& radio() { return radio_; }

  int flow_slots() const override { return 1; }

  // Path 0 = WiFi, path 1 = 3G.
  std::vector<topo::PathPair> flow_paths(int slot, int nsubflows,
                                         Rng& rng) override {
    (void)slot;
    (void)rng;
    return take({{radio_.wifi_fwd(), radio_.wifi_rev()},
                 {radio_.g3_fwd(), radio_.g3_rev()}},
                nsubflows);
  }

  std::vector<net::Queue*> queues() override {
    return {&radio_.wifi_q, &radio_.g3_q};
  }

 private:
  topo::WirelessClient radio_;
  std::vector<std::unique_ptr<net::RateSchedule>> schedules_;
};

// "<time>:<rate>" schedule entries, e.g. "9min:0bps". Times are scaled
// like every other simulated duration.
std::vector<net::RateSchedule::Change> parse_schedule(
    const Section& s, const std::string& key, const BuildEnv& env) {
  std::vector<net::RateSchedule::Change> changes;
  for (const std::string& entry : s.get_string_array(key)) {
    const std::size_t colon = entry.find(':');
    if (colon == std::string::npos) {
      s.fail("schedule entry '" + entry + "' in '" + key +
             "' must look like \"9min:5Mbps\"");
    }
    net::RateSchedule::Change c;
    c.at = env.scaled(
        parse_time(entry.substr(0, colon), s.file(), s.line()));
    c.rate_bps =
        parse_rate_bps(entry.substr(colon + 1), s.file(), s.line());
    changes.push_back(c);
  }
  return changes;
}

// ---------------------------------------------------------------------------
// Algorithms
// ---------------------------------------------------------------------------

AlgorithmInstance make_algorithm(const std::string& kind,
                                 const Section& at) {
  AlgorithmInstance a;
  a.name = kind;
  if (kind == "uncoupled") {
    a.cc = std::make_unique<cc::Uncoupled>();
  } else if (kind == "ewtcp") {
    a.cc = std::make_unique<cc::Ewtcp>();
  } else if (kind == "coupled") {
    a.cc = std::make_unique<cc::Coupled>();
  } else if (kind == "semicoupled") {
    a.cc = std::make_unique<cc::SemiCoupled>();
  } else if (kind == "mptcp") {
    a.cc = std::make_unique<cc::MptcpLia>();
  } else if (kind == "rfc6356") {
    a.cc = std::make_unique<cc::Rfc6356>();
  } else if (kind == "olia") {
    a.cc = std::make_unique<cc::Olia>();
  } else if (kind == "balia") {
    a.cc = std::make_unique<cc::Balia>();
  } else if (kind == "coupled_bbr") {
    a.cc = std::make_unique<cc::CoupledBbr>();
  } else if (kind == "single") {
    a.cc = std::make_unique<cc::Uncoupled>();
    a.single_path = true;
  } else {
    at.fail("unknown algorithm kind '" + kind + "'");
  }
  return a;
}

// ---------------------------------------------------------------------------
// Traffic models
// ---------------------------------------------------------------------------

// The [path_manager] section -> the policy knobs of mptcp::PathManager.
// Shared by every traffic model that supports path management; models that
// don't simply never read the section and check_all_used() rejects it.
mptcp::PathManagerConfig parse_path_manager(const Section& s) {
  mptcp::PathManagerConfig cfg;
  const std::string strategy = s.get_string("strategy", "threshold");
  if (strategy == "fullmesh") {
    cfg.strategy = mptcp::PathStrategy::kFullMesh;
  } else if (strategy == "ndiffports") {
    cfg.strategy = mptcp::PathStrategy::kNDiffPorts;
  } else if (strategy == "threshold") {
    cfg.strategy = mptcp::PathStrategy::kThreshold;
  } else {
    s.fail("unknown path manager strategy '" + strategy +
           "' (known: fullmesh, ndiffports, threshold)");
  }
  cfg.ndiffports = static_cast<std::size_t>(s.get_int(
      "ndiffports", static_cast<std::int64_t>(cfg.ndiffports)));
  if (cfg.ndiffports < 1) s.fail("'ndiffports' must be >= 1");
  cfg.add_threshold_bytes =
      s.get_bytes("add_threshold", cfg.add_threshold_bytes);
  cfg.max_subflows = static_cast<std::size_t>(s.get_int(
      "max_subflows", static_cast<std::int64_t>(cfg.max_subflows)));
  if (cfg.max_subflows < 1) s.fail("'max_subflows' must be >= 1");
  cfg.scan_period = s.get_time("scan_period", cfg.scan_period);
  cfg.reprobe_backoff = s.get_time("reprobe_backoff", cfg.reprobe_backoff);
  cfg.dead_after_rtos = static_cast<std::uint32_t>(s.get_int(
      "dead_after_rtos", static_cast<std::int64_t>(cfg.dead_after_rtos)));
  if (cfg.dead_after_rtos < 1) s.fail("'dead_after_rtos' must be >= 1");
  return cfg;
}

// The [scheduler] section -> the data-placement policy of the connections
// a traffic model builds. Absent section = the paper's stripe. The kind
// key goes through the registry so an unknown name fails with the
// section's file:line and the list of known kinds.
mptcp::DataSchedulerKind parse_scheduler(const BuildEnv& env) {
  if (env.scheduler == nullptr) return mptcp::DataSchedulerKind::kStripe;
  const Section& s = *env.scheduler;
  const std::string kind = s.get_string("kind", "stripe");
  return builtin_registry().scheduler(kind, s)(s);
}

// "0", "1", "0+1", ... — '+'-joined path indices for one flow.
std::vector<int> parse_path_set(const std::string& text, const Section& s) {
  std::vector<int> idxs;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t plus = text.find('+', pos);
    const std::string part =
        text.substr(pos, plus == std::string::npos ? std::string::npos
                                                   : plus - pos);
    if (part.empty() || part.find_first_not_of("0123456789") !=
                            std::string::npos) {
      s.fail("flow path set '" + text +
             "' must be '+'-joined path indices like \"0+1\"");
    }
    idxs.push_back(std::stoi(part));
    if (plus == std::string::npos) break;
    pos = plus + 1;
  }
  return idxs;
}

struct FlowSpec {
  std::vector<int> paths;  // path indices within the flow's slot
  std::string name;
  SimTime start = 0;
  std::string algo;  // "" = the run's [algorithm] instance
};

class PersistentTraffic final : public TrafficModel {
 public:
  explicit PersistentTraffic(const Section& s) {
    if (s.has("flows")) {
      if (s.has("count")) s.reject("count", "mutually exclusive with 'flows'");
      if (s.has("subflows")) {
        s.reject("subflows", "mutually exclusive with 'flows'");
      }
      for (const std::string& f : s.get_string_array("flows")) {
        FlowSpec fs;
        fs.paths = parse_path_set(f, s);
        flows_.push_back(std::move(fs));
      }
      if (flows_.empty()) s.fail("'flows' must not be empty");
    } else {
      count_ = static_cast<int>(s.get_int("count", -1));
      subflows_ = static_cast<int>(s.get_int("subflows", 2));
      if (subflows_ < 1) s.fail("'subflows' must be >= 1");
    }
    const bool has_starts = s.has("starts");
    if (has_starts) {
      if (s.has("start")) s.reject("start", "mutually exclusive with 'starts'");
      if (s.has("stagger")) {
        s.reject("stagger", "mutually exclusive with 'starts'");
      }
      starts_ = s.get_time_array("starts");
    } else {
      start_ = s.get_time("start", 0);
      stagger_ = s.get_time("stagger", 0);
    }
    if (s.has("names")) names_ = s.get_string_array("names");
    if (s.has("algos")) algos_ = s.get_string_array("algos");
    recv_buffer_pkts_ = static_cast<std::uint64_t>(s.get_int(
        "recv_buffer_pkts",
        static_cast<std::int64_t>(mptcp::ConnectionConfig{}.recv_buffer_pkts)));
    app_limit_pkts_ =
        static_cast<std::uint64_t>(s.get_int("app_limit_pkts", 0));
    min_rto_ = s.get_time("min_rto", tcp::SubflowConfig{}.min_rto);
    section_copy_ = &s;  // diagnostics only; outlives the model (Scenario)
  }

  void build(EventList& events, BuiltTopology& topo,
             const AlgorithmInstance& algo, Rng& rng,
             const BuildEnv& env) override {
    std::vector<FlowSpec> flows = flows_;
    if (flows.empty()) {
      const int n = count_ >= 0 ? count_ : topo.flow_slots();
      if (n <= 0) {
        section_copy_->fail(
            "this topology has no flow slots; give an explicit 'count'");
      }
      for (int i = 0; i < n; ++i) {
        FlowSpec fs;
        const int nsub = algo.single_path ? 1 : subflows_;
        for (int p = 0; p < nsub; ++p) fs.paths.push_back(p);
        flows.push_back(std::move(fs));
      }
    }
    for (std::size_t i = 0; i < flows.size(); ++i) {
      if (i < names_.size()) flows[i].name = names_[i];
      if (flows[i].name.empty()) {
        flows[i].name = "flow" + std::to_string(i);
      }
      if (i < starts_.size()) {
        flows[i].start = starts_[i];
      } else if (starts_.empty()) {
        flows[i].start =
            start_ + static_cast<SimTime>(i) * stagger_;
      } else {
        section_copy_->fail("'starts' must list one time per flow");
      }
      if (i < algos_.size()) flows[i].algo = algos_[i];
    }

    mptcp::ConnectionConfig ccfg;
    ccfg.recv_buffer_pkts = recv_buffer_pkts_;
    ccfg.app_limit_pkts = app_limit_pkts_;
    ccfg.subflow.min_rto = min_rto_;
    ccfg.scheduler = parse_scheduler(env);

    // With a [path_manager] section, the flow's path set becomes the
    // manager's candidate list and the manager decides what actually opens
    // (and when); without one, every listed path opens immediately.
    mptcp::PathManagerConfig pm_cfg;
    if (env.path_manager != nullptr) {
      pm_cfg = parse_path_manager(*env.path_manager);
    }

    const int slots = topo.flow_slots();
    for (std::size_t i = 0; i < flows.size(); ++i) {
      const FlowSpec& fs = flows[i];
      AlgorithmInstance local;
      const AlgorithmInstance* use = &algo;
      if (!fs.algo.empty()) {
        local = make_algorithm(fs.algo, *section_copy_);
        use = &local;
      }
      std::vector<int> paths = fs.paths;
      if (use->single_path && paths.size() > 1) paths = {paths.front()};
      int max_idx = 0;
      for (int p : paths) max_idx = p > max_idx ? p : max_idx;
      const int slot = slots > 0 ? static_cast<int>(i) % slots : 0;
      auto pairs = topo.flow_paths(slot, max_idx + 1, rng);
      if (static_cast<std::size_t>(max_idx) >= pairs.size()) {
        section_copy_->fail("flow " + std::to_string(i) +
                            " references path index " +
                            std::to_string(max_idx) +
                            " but the topology offers only " +
                            std::to_string(pairs.size()));
      }
      auto conn = std::make_unique<mptcp::MptcpConnection>(
          events, fs.name, *use->cc, ccfg);
      if (env.path_manager != nullptr) {
        auto& pm = conn->attach_path_manager(pm_cfg);
        for (int p : paths) {
          pm.add_candidate(pairs[static_cast<std::size_t>(p)].first,
                           pairs[static_cast<std::size_t>(p)].second);
        }
      } else {
        for (int p : paths) {
          conn->add_subflow(pairs[static_cast<std::size_t>(p)].first,
                            pairs[static_cast<std::size_t>(p)].second);
        }
      }
      conn->start(env.scaled_start(fs.start));
      if (use == &local) owned_algos_.push_back(std::move(local.cc));
      conns_.push_back(std::move(conn));
    }
  }

  std::vector<const mptcp::MptcpConnection*> connections() const override {
    std::vector<const mptcp::MptcpConnection*> out;
    for (const auto& c : conns_) out.push_back(c.get());
    return out;
  }

  std::vector<mptcp::MptcpConnection*> mutable_connections() override {
    std::vector<mptcp::MptcpConnection*> out;
    for (const auto& c : conns_) out.push_back(c.get());
    return out;
  }

 private:
  std::vector<FlowSpec> flows_;
  int count_ = -1;
  int subflows_ = 2;
  SimTime start_ = 0;
  SimTime stagger_ = 0;
  std::vector<SimTime> starts_;
  std::vector<std::string> names_;
  std::vector<std::string> algos_;
  std::uint64_t recv_buffer_pkts_;
  std::uint64_t app_limit_pkts_;
  SimTime min_rto_;
  const Section* section_copy_;
  std::vector<std::unique_ptr<mptcp::MptcpConnection>> conns_;
  std::vector<std::unique_ptr<const cc::CongestionControl>> owned_algos_;
};

// The §4 traffic matrices, built exactly like bench::run_dc: flow idx gets
// name "f<idx>", starts at 0.5 ms * (idx % 997) (unscaled — starts only
// de-synchronize), and single-path runs sample one path.
class MatrixTraffic final : public TrafficModel {
 public:
  enum class Kind { kPermutation, kOneToMany, kSparse, kNeighbors };

  MatrixTraffic(Kind kind, const Section& s) : kind_(kind) {
    if (kind_ != Kind::kNeighbors) {
      tm_seed_ = static_cast<std::uint64_t>(s.get_int("tm_seed"));
    }
    if (kind_ == Kind::kOneToMany) {
      flows_per_host_ = static_cast<int>(s.get_int("flows_per_host", 12));
    }
    if (kind_ == Kind::kSparse) {
      fraction_ = s.get_number("fraction", 0.3);
    }
    subflows_ = static_cast<int>(s.get_int("subflows", 8));
    min_rto_ = s.get_time("min_rto", from_ms(10));
    recv_buffer_pkts_ =
        static_cast<std::uint64_t>(s.get_int("recv_buffer_pkts", 4096));
    section_ = &s;
  }

  void build(EventList& events, BuiltTopology& topo,
             const AlgorithmInstance& algo, Rng& rng,
             const BuildEnv& env) override {
    hosts_ = topo.num_hosts();
    if (hosts_ <= 0) {
      section_->fail("matrix traffic needs a host-addressable topology "
                     "(fat_tree, bcube)");
    }
    std::vector<std::pair<int, int>> tm;
    if (kind_ == Kind::kNeighbors) {
      tm = topo.neighbor_pairs();
      if (tm.empty()) {
        section_->fail("this topology has no neighbour traffic matrix");
      }
    } else {
      Rng tm_rng(tm_seed_);
      std::vector<traffic::FlowPair> pairs;
      switch (kind_) {
        case Kind::kPermutation:
          pairs = traffic::permutation_tm(hosts_, tm_rng);
          break;
        case Kind::kOneToMany:
          pairs = traffic::one_to_many_tm(hosts_, flows_per_host_, tm_rng);
          break;
        default:
          pairs = traffic::sparse_tm(hosts_, fraction_, tm_rng);
          break;
      }
      for (const auto& p : pairs) tm.emplace_back(p.src, p.dst);
    }

    mptcp::ConnectionConfig ccfg;
    ccfg.subflow.min_rto = min_rto_;
    ccfg.recv_buffer_pkts = recv_buffer_pkts_;
    ccfg.scheduler = parse_scheduler(env);
    int idx = 0;
    for (const auto& [src, dst] : tm) {
      // Each connection lives on its source host's shard; with one shard
      // host_events is `events` and this is the classic construction.
      auto conn = std::make_unique<mptcp::MptcpConnection>(
          topo.host_events(src, events), "f" + std::to_string(idx),
          *algo.cc, ccfg);
      auto paths =
          topo.host_paths(src, dst, algo.single_path ? 1 : subflows_, rng);
      for (auto& pr : paths) {
        conn->add_subflow(pr.first, pr.second);
      }
      conn->start(from_ms(0.5 * static_cast<double>(idx % 997)));
      conns_.push_back(std::move(conn));
      ++idx;
    }
  }

  std::vector<const mptcp::MptcpConnection*> connections() const override {
    std::vector<const mptcp::MptcpConnection*> out;
    for (const auto& c : conns_) out.push_back(c.get());
    return out;
  }

  std::vector<mptcp::MptcpConnection*> mutable_connections() override {
    std::vector<mptcp::MptcpConnection*> out;
    for (const auto& c : conns_) out.push_back(c.get());
    return out;
  }

  int host_count() const override { return hosts_; }

 private:
  Kind kind_;
  std::uint64_t tm_seed_ = 0;
  int flows_per_host_ = 12;
  double fraction_ = 0.3;
  int subflows_ = 8;
  SimTime min_rto_;
  std::uint64_t recv_buffer_pkts_;
  const Section* section_;
  int hosts_ = 0;
  std::vector<std::unique_ptr<mptcp::MptcpConnection>> conns_;
};

// §3's dynamic server workload: Poisson single-path arrivals on path 0,
// one long-lived TCP on path 1, and a set of multipath companions using
// both paths — all simultaneously, as the paper ran them. The run seed
// drives the arrival process, so [run] seeds sweeps arrival randomness.
class PoissonTraffic final : public TrafficModel {
 public:
  explicit PoissonTraffic(const Section& s) {
    pcfg_.light_rate_per_sec = s.get_number("light_rate_per_sec", 10.0);
    pcfg_.heavy_rate_per_sec = s.get_number("heavy_rate_per_sec", 60.0);
    phase_ = s.get_time("phase", from_sec(10));
    pcfg_.pareto_shape = s.get_number("pareto_shape", 2.0);
    pcfg_.mean_flow_bytes = s.get_number("mean_flow_bytes", 200e3);
    long_tcp_ = s.get_bool("long_tcp", true);
    if (s.has("companions")) {
      companions_ = s.get_string_array("companions");
    } else {
      companions_ = {"mptcp", "coupled", "ewtcp"};
    }
    section_ = &s;
  }

  void build(EventList& events, BuiltTopology& topo,
             const AlgorithmInstance& algo, Rng& rng,
             const BuildEnv& env) override {
    (void)algo;  // per-companion algorithms below
    pcfg_.phase_duration = env.scaled(phase_);
    pcfg_.seed = seed_;
    auto pairs = topo.flow_paths(0, 2, rng);
    if (pairs.size() < 2) {
      section_->fail("poisson traffic needs a two-path flow slot");
    }
    gen_ = std::make_unique<traffic::PoissonFlowGenerator>(
        events, "poisson", pcfg_,
        [&events, pairs](const std::string& name, std::uint64_t pkts) {
          mptcp::ConnectionConfig cfg;
          cfg.app_limit_pkts = pkts;
          auto conn = mptcp::make_single_path_tcp(
              events, name, pairs[0].first, pairs[0].second, cfg);
          conn->start(events.now());
          return conn;
        });
    if (long_tcp_) {
      persistent_.push_back(mptcp::make_single_path_tcp(
          events, "long", pairs[1].first, pairs[1].second));
    }
    mptcp::ConnectionConfig comp_cfg;
    comp_cfg.scheduler = parse_scheduler(env);
    for (const std::string& kind : companions_) {
      AlgorithmInstance inst = make_algorithm(kind, *section_);
      auto conn = std::make_unique<mptcp::MptcpConnection>(events, kind,
                                                           *inst.cc,
                                                           comp_cfg);
      conn->add_subflow(pairs[0].first, pairs[0].second);
      conn->add_subflow(pairs[1].first, pairs[1].second);
      persistent_.push_back(std::move(conn));
      owned_algos_.push_back(std::move(inst.cc));
    }
    // The bench's start stagger: generator at 0, long TCP at 3 ms,
    // companions at 7, 13, 19, ... ms.
    gen_->start(0);
    std::size_t c = 0;
    for (auto& conn : persistent_) {
      if (long_tcp_ && c == 0) {
        conn->start(from_ms(3));
      } else {
        const std::size_t k = c - (long_tcp_ ? 1 : 0);
        conn->start(from_ms(7 + 6 * static_cast<double>(k)));
      }
      ++c;
    }
  }

  void set_seed(std::uint64_t seed) { seed_ = seed; }

  bool builds_during_run() const override { return true; }

  std::vector<const mptcp::MptcpConnection*> connections() const override {
    std::vector<const mptcp::MptcpConnection*> out;
    for (const auto& c : persistent_) out.push_back(c.get());
    return out;
  }

  std::vector<mptcp::MptcpConnection*> mutable_connections() override {
    std::vector<mptcp::MptcpConnection*> out;
    for (const auto& c : persistent_) out.push_back(c.get());
    return out;
  }

  void record_metrics(runner::RunContext& ctx) const override {
    if (gen_ == nullptr) return;
    ctx.record("poisson_flows_started",
               static_cast<double>(gen_->flows_started()));
    ctx.record("poisson_flows_completed",
               static_cast<double>(gen_->flows_completed()));
  }

 private:
  traffic::PoissonConfig pcfg_;
  SimTime phase_;
  bool long_tcp_;
  std::vector<std::string> companions_;
  std::uint64_t seed_ = 1;
  const Section* section_;
  std::unique_ptr<traffic::PoissonFlowGenerator> gen_;
  std::vector<std::unique_ptr<mptcp::MptcpConnection>> persistent_;
  std::vector<std::unique_ptr<const cc::CongestionControl>> owned_algos_;
};

// Fig. 10's server load balancer generalized into a churn workload: Poisson
// arrivals of *finite multipath* connections, each with its own PathManager
// over the two paths of flow slot 0, running against persistent background
// load — `tcp_link1`/`tcp_link2` single-path TCPs pinned to each path and
// `mp_count` long-lived multipath connections under the run's [algorithm].
// Completed arrivals are reclaimed (destroyed, pool/arena state returned)
// once their wire-reference ledger drains, so the connection population
// tracks the live flow count over arbitrarily long runs.
class ChurnTraffic final : public TrafficModel {
 public:
  explicit ChurnTraffic(const Section& s) {
    pcfg_.light_rate_per_sec = s.get_number("light_rate_per_sec", 20.0);
    pcfg_.heavy_rate_per_sec =
        s.get_number("heavy_rate_per_sec", pcfg_.light_rate_per_sec);
    phase_ = s.get_time("phase", from_sec(10));
    pcfg_.pareto_shape = s.get_number("pareto_shape", 2.0);
    pcfg_.mean_flow_bytes = s.get_number("mean_flow_bytes", 200e3);
    tcp_link1_ = static_cast<int>(s.get_int("tcp_link1", 1));
    tcp_link2_ = static_cast<int>(s.get_int("tcp_link2", 1));
    mp_count_ = static_cast<int>(s.get_int("mp_count", 2));
    if (tcp_link1_ < 0 || tcp_link2_ < 0 || mp_count_ < 0) {
      s.fail("background flow counts must be >= 0");
    }
    min_rto_ = s.get_time("min_rto", tcp::SubflowConfig{}.min_rto);
    recv_buffer_pkts_ = static_cast<std::uint64_t>(s.get_int(
        "recv_buffer_pkts",
        static_cast<std::int64_t>(mptcp::ConnectionConfig{}.recv_buffer_pkts)));
    section_ = &s;
  }

  void build(EventList& events, BuiltTopology& topo,
             const AlgorithmInstance& algo, Rng& rng,
             const BuildEnv& env) override {
    pcfg_.phase_duration = env.scaled(phase_);
    pcfg_.seed = seed_;
    auto pairs = topo.flow_paths(0, 2, rng);
    if (pairs.size() < 2) {
      section_->fail("churn traffic needs a two-path flow slot");
    }
    mptcp::PathManagerConfig pm_cfg;
    if (env.path_manager != nullptr) {
      pm_cfg = parse_path_manager(*env.path_manager);
    }
    if (algo.single_path) pm_cfg.max_subflows = 1;

    mptcp::ConnectionConfig ccfg;
    ccfg.subflow.min_rto = min_rto_;
    ccfg.recv_buffer_pkts = recv_buffer_pkts_;
    ccfg.scheduler = parse_scheduler(env);

    const cc::CongestionControl* cc = algo.cc.get();
    gen_ = std::make_unique<traffic::PoissonFlowGenerator>(
        events, "churn", pcfg_,
        [&events, pairs, cc, ccfg, pm_cfg](const std::string& name,
                                           std::uint64_t pkts) {
          mptcp::ConnectionConfig cfg = ccfg;
          cfg.app_limit_pkts = pkts;
          auto conn = std::make_unique<mptcp::MptcpConnection>(events, name,
                                                               *cc, cfg);
          auto& pm = conn->attach_path_manager(pm_cfg);
          pm.add_candidate(pairs[0].first, pairs[0].second);
          pm.add_candidate(pairs[1].first, pairs[1].second);
          conn->start(events.now());
          return conn;
        });
    // PathManager counters die with their reclaimed flow; bank them here so
    // record_metrics can report run totals.
    gen_->on_reclaim = [this](mptcp::MptcpConnection& c) {
      bank_pm(c);
    };

    for (int i = 0; i < tcp_link1_; ++i) {
      persistent_.push_back(mptcp::make_single_path_tcp(
          events, "tcp1_" + std::to_string(i), pairs[0].first,
          pairs[0].second, ccfg));
    }
    for (int i = 0; i < tcp_link2_; ++i) {
      persistent_.push_back(mptcp::make_single_path_tcp(
          events, "tcp2_" + std::to_string(i), pairs[1].first,
          pairs[1].second, ccfg));
    }
    for (int i = 0; i < mp_count_; ++i) {
      auto conn = std::make_unique<mptcp::MptcpConnection>(
          events, "mp" + std::to_string(i), *algo.cc, ccfg);
      auto& pm = conn->attach_path_manager(pm_cfg);
      pm.add_candidate(pairs[0].first, pairs[0].second);
      pm.add_candidate(pairs[1].first, pairs[1].second);
      persistent_.push_back(std::move(conn));
    }

    // Generator at 0; background flows staggered (3, 5, 7, ... ms) only to
    // de-synchronize their slow starts, like the other models do.
    gen_->start(0);
    for (std::size_t i = 0; i < persistent_.size(); ++i) {
      persistent_[i]->start(from_ms(3 + 2 * static_cast<double>(i)));
    }
  }

  void set_seed(std::uint64_t seed) { seed_ = seed; }

  bool builds_during_run() const override { return true; }

  std::vector<const mptcp::MptcpConnection*> connections() const override {
    std::vector<const mptcp::MptcpConnection*> out;
    for (const auto& c : persistent_) out.push_back(c.get());
    return out;
  }

  std::vector<mptcp::MptcpConnection*> mutable_connections() override {
    std::vector<mptcp::MptcpConnection*> out;
    for (const auto& c : persistent_) out.push_back(c.get());
    return out;
  }

  void record_metrics(runner::RunContext& ctx) const override {
    if (gen_ == nullptr) return;
    // Final sweep: anything whose ledger drained by end of run is counted
    // as reclaimed, not as still-held.
    gen_->reclaim_completed();
    ctx.record("churn_flows_started",
               static_cast<double>(gen_->flows_started()));
    ctx.record("churn_flows_completed",
               static_cast<double>(gen_->flows_completed()));
    ctx.record("churn_flows_reclaimed",
               static_cast<double>(gen_->flows_reclaimed()));
    ctx.record("churn_flows_held", static_cast<double>(gen_->flows_held()));
    // Banked counters from reclaimed flows + live counters from everything
    // still alive (held arrivals and the persistent multipath set).
    std::uint64_t opened = pm_opened_;
    std::uint64_t dropped = pm_dropped_;
    std::uint64_t reprobes = pm_reprobes_;
    auto add = [&](const mptcp::MptcpConnection& c) {
      if (const auto* pm = c.path_manager()) {
        opened += pm->subflows_opened();
        dropped += pm->subflows_dropped();
        reprobes += pm->reprobes();
      }
    };
    for (const auto& c : gen_->held()) add(*c);
    for (const auto& c : persistent_) add(*c);
    ctx.record("churn_subflows_added", static_cast<double>(opened));
    ctx.record("churn_subflows_dropped", static_cast<double>(dropped));
    ctx.record("churn_subflow_reprobes", static_cast<double>(reprobes));
  }

 private:
  void bank_pm(const mptcp::MptcpConnection& c) {
    if (const auto* pm = c.path_manager()) {
      pm_opened_ += pm->subflows_opened();
      pm_dropped_ += pm->subflows_dropped();
      pm_reprobes_ += pm->reprobes();
    }
  }

  traffic::PoissonConfig pcfg_;
  SimTime phase_ = from_sec(10);
  int tcp_link1_ = 1;
  int tcp_link2_ = 1;
  int mp_count_ = 2;
  SimTime min_rto_ = 0;
  std::uint64_t recv_buffer_pkts_ = 0;
  std::uint64_t seed_ = 1;
  const Section* section_;
  std::unique_ptr<traffic::PoissonFlowGenerator> gen_;
  std::vector<std::unique_ptr<mptcp::MptcpConnection>> persistent_;
  std::uint64_t pm_opened_ = 0;
  std::uint64_t pm_dropped_ = 0;
  std::uint64_t pm_reprobes_ = 0;
};

// ---------------------------------------------------------------------------
// Registrations
// ---------------------------------------------------------------------------

Registry make_builtin_registry() {
  Registry r;

  r.add_topology(
      "two_link", "client/server over two disjoint bottleneck links",
      [](topo::Network& net, const Section& s, const BuildEnv&) {
        return std::make_unique<TwoLinkTopo>(net, link_spec(s, "link1"),
                                             link_spec(s, "link2"));
      });

  r.add_topology(
      "triangle", "Fig. 3: three links, three two-path flows in a cycle",
      [](topo::Network& net, const Section& s, const BuildEnv&) {
        const auto rates = s.get_number_array("rates_pps");
        if (rates.size() != 3) s.fail("'rates_pps' must list 3 link rates");
        const SimTime delay = s.get_time("one_way_delay", from_ms(10));
        std::array<double, 3> bps{};
        std::array<std::uint64_t, 3> bufs{};
        const double bdp_mult = s.get_number("buffer_bdp", 1.0);
        for (int i = 0; i < 3; ++i) {
          bps[static_cast<std::size_t>(i)] = topo::pkts_per_sec_to_bps(
              rates[static_cast<std::size_t>(i)]);
          bufs[static_cast<std::size_t>(i)] = topo::bdp_bytes(
              bps[static_cast<std::size_t>(i)], 2 * delay, bdp_mult);
        }
        return std::make_unique<TriangleTopo>(net, bps, delay, bufs);
      });

  r.add_topology(
      "parking_lot",
      "Fig. 2: three-link cycle, one-hop vs two-hop paths",
      [](topo::Network& net, const Section& s, const BuildEnv&) {
        const double rate = s.get_rate_bps("link_rate", 48e6);
        const SimTime rtt = s.get_time("rtt", from_ms(40));
        const std::uint64_t buf =
            s.get_bytes("buffer", topo::bdp_bytes(rate, rtt));
        return std::make_unique<ParkingLotTopo>(net, rate, rtt, buf);
      });

  r.add_topology(
      "torus", "Fig. 7/8: five-link ring, five two-path flows",
      [](topo::Network& net, const Section& s, const BuildEnv&) {
        std::array<double, topo::Torus::kLinks> rates{};
        if (s.has("rates_pps")) {
          const auto rs = s.get_number_array("rates_pps");
          if (rs.size() != topo::Torus::kLinks) {
            s.fail("'rates_pps' must list 5 link rates");
          }
          for (std::size_t i = 0; i < rs.size(); ++i) rates[i] = rs[i];
        } else {
          const double base = s.get_number("rate_pps", 1000.0);
          const double cap_c = s.get_number("cap_c", base);
          rates = {base, base, cap_c, base, base};
        }
        return std::make_unique<TorusTopo>(net, rates);
      });

  r.add_topology(
      "fat_tree", "§4: k-ary FatTree (k=8 -> 128 hosts, 100 Mb/s links)",
      [](topo::Network& net, const Section& s, const BuildEnv&) {
        const int k = static_cast<int>(s.get_int("k", 8));
        if (k < 2 || k % 2 != 0) s.fail("'k' must be even and >= 2");
        const double rate = s.get_rate_bps("link_rate", 100e6);
        const SimTime delay = s.get_time("per_hop_delay", from_us(20));
        const std::uint64_t buf =
            s.get_bytes("buffer", 100 * net::kDataPacketBytes);
        return std::make_unique<FatTreeTopo>(net, k, rate, delay, buf);
      });

  r.add_topology(
      "bcube", "§4: BCube(n,k) server-centric fabric (5,2 -> 125 hosts)",
      [](topo::Network& net, const Section& s, const BuildEnv&) {
        const int n = static_cast<int>(s.get_int("n", 5));
        const int k = static_cast<int>(s.get_int("k", 2));
        if (n < 2 || k < 0) s.fail("need n >= 2 and k >= 0");
        const double rate = s.get_rate_bps("link_rate", 100e6);
        const SimTime delay = s.get_time("per_hop_delay", from_us(20));
        const std::uint64_t buf =
            s.get_bytes("buffer", 100 * net::kDataPacketBytes);
        return std::make_unique<BCubeTopo>(net, n, k, rate, delay, buf);
      });

  r.add_topology(
      "wireless",
      "§5: WiFi (path 0) + 3G (path 1) client, scriptable rates",
      [](topo::Network& net, const Section& s, const BuildEnv& env) {
        const double wifi_loss = s.get_number("wifi_loss", 0.0005);
        auto t = std::make_unique<WirelessTopo>(net, wifi_loss);
        if (s.has("wifi_schedule")) {
          t->add_schedule(net.events(), t->radio().wifi_q,
                          parse_schedule(s, "wifi_schedule", env));
        }
        if (s.has("g3_schedule")) {
          t->add_schedule(net.events(), t->radio().g3_q,
                          parse_schedule(s, "g3_schedule", env));
        }
        return t;
      });

  auto simple_algo = [](const char* kind) {
    return [kind](const Section& s) { return make_algorithm(kind, s); };
  };
  r.add_algorithm("uncoupled", "independent TCP per subflow",
                  simple_algo("uncoupled"));
  r.add_algorithm("ewtcp", "equally-weighted TCP per subflow (§2.1)",
                  [](const Section& s) {
                    AlgorithmInstance a;
                    a.name = "ewtcp";
                    const double w = s.get_number("weight", 0.0);
                    a.cc = std::make_unique<cc::Ewtcp>(w);
                    return a;
                  });
  r.add_algorithm("coupled", "fully coupled windows (§2.3)",
                  simple_algo("coupled"));
  r.add_algorithm("semicoupled",
                  "coupled increase, per-path decrease (§2.4)",
                  [](const Section& s) {
                    AlgorithmInstance a;
                    a.name = "semicoupled";
                    const double aa = s.get_number("a", 1.0);
                    a.cc = std::make_unique<cc::SemiCoupled>(aa);
                    return a;
                  });
  r.add_algorithm("mptcp", "the paper's final algorithm (§2.5, LIA)",
                  simple_algo("mptcp"));
  r.add_algorithm("rfc6356", "RFC 6356 standardisation of LIA",
                  simple_algo("rfc6356"));
  r.add_algorithm("olia", "opportunistic LIA (arXiv 1812.03210 §2)",
                  simple_algo("olia"));
  r.add_algorithm("balia", "balanced LIA (arXiv 1812.03210 §3)",
                  simple_algo("balia"));
  r.add_algorithm("coupled_bbr",
                  "rate-based coupled BBR (arXiv 2002.06284): paced "
                  "subflows driven by delivery-rate estimation",
                  simple_algo("coupled_bbr"));
  r.add_algorithm("single",
                  "single-path TCP baseline (1 subflow, uncoupled)",
                  simple_algo("single"));

  r.add_traffic("persistent", "long-lived flows on the topology's slots",
                [](const Section& s) {
                  return std::make_unique<PersistentTraffic>(s);
                });
  r.add_traffic("permutation", "TP1: random derangement of hosts",
                [](const Section& s) {
                  return std::make_unique<MatrixTraffic>(
                      MatrixTraffic::Kind::kPermutation, s);
                });
  r.add_traffic("one_to_many",
                "TP2 (FatTree): N random destinations per host",
                [](const Section& s) {
                  return std::make_unique<MatrixTraffic>(
                      MatrixTraffic::Kind::kOneToMany, s);
                });
  r.add_traffic("sparse", "TP3: a fraction of hosts, one flow each",
                [](const Section& s) {
                  return std::make_unique<MatrixTraffic>(
                      MatrixTraffic::Kind::kSparse, s);
                });
  r.add_traffic("neighbors",
                "TP2 (BCube): every host to its one-digit neighbours",
                [](const Section& s) {
                  return std::make_unique<MatrixTraffic>(
                      MatrixTraffic::Kind::kNeighbors, s);
                });
  r.add_traffic("poisson",
                "§3: Poisson arrivals + long TCP + multipath companions",
                [](const Section& s) {
                  return std::make_unique<PoissonTraffic>(s);
                });
  r.add_traffic("churn",
                "Fig. 10 generalized: Poisson multipath arrivals with "
                "path management, reclaimed on completion",
                [](const Section& s) {
                  return std::make_unique<ChurnTraffic>(s);
                });

  // Data-placement policies ([scheduler] kind=...). Builders only map the
  // key to a DataSchedulerKind; policy state lives in mptcp/scheduler.cpp.
  auto simple_sched = [](mptcp::DataSchedulerKind kind) {
    return [kind](const Section&) { return kind; };
  };
  r.add_scheduler("stripe",
                  "lowest-numbered subflow with window space (default)",
                  simple_sched(mptcp::DataSchedulerKind::kStripe));
  r.add_scheduler("min_rtt_first",
                  "prefer the active subflow with the smallest srtt",
                  simple_sched(mptcp::DataSchedulerKind::kMinRttFirst));
  r.add_scheduler("redundant",
                  "duplicate fresh data across all active subflows",
                  simple_sched(mptcp::DataSchedulerKind::kRedundant));
  r.add_scheduler("blest",
                  "BLEST-style: hold fresh data off slow subflows that "
                  "would stall the faster path's send window",
                  simple_sched(mptcp::DataSchedulerKind::kBlest));

  return r;
}

}  // namespace

const Registry& builtin_registry() {
  static const Registry registry = make_builtin_registry();
  return registry;
}

// The engine needs to push the run seed into the models with an arrival
// process without widening the TrafficModel interface for every kind.
void seed_poisson_model(TrafficModel& model, std::uint64_t seed) {
  if (auto* p = dynamic_cast<PoissonTraffic*>(&model)) {
    p->set_seed(seed);
  }
  if (auto* c = dynamic_cast<ChurnTraffic*>(&model)) {
    c->set_seed(seed);
  }
}

}  // namespace mpsim::scenario
