// §4 FatTree table — per-host throughput (Mb/s) for TP1/TP2/TP3.
//
// FatTree k=8: 128 hosts, 80 switches, 100 Mb/s links. Paper's numbers:
//
//               TP1    TP2    TP3
//   SINGLE-PATH  51     94     60
//   EWTCP        92     92.5   99
//   MPTCP        95     97     99
//
// TP1 = random permutation, TP2 = 12 random destinations per host,
// TP3 = sparse (30% of hosts, one flow each). Multipath uses 8 random
// shortest paths per pair.
#include "cc/ewtcp.hpp"
#include "cc/mptcp_lia.hpp"
#include "datacenter.hpp"

namespace mpsim {
namespace {

double run(int tp, const cc::CongestionControl* algo) {
  EventList events;
  topo::Network net(events);
  topo::FatTree ft(net, 8);
  Rng tm_rng(4242 + static_cast<std::uint64_t>(tp));
  std::vector<traffic::FlowPair> tm;
  switch (tp) {
    case 1: tm = traffic::permutation_tm(ft.num_hosts(), tm_rng); break;
    case 2: tm = traffic::one_to_many_tm(ft.num_hosts(), 12, tm_rng); break;
    default: tm = traffic::sparse_tm(ft.num_hosts(), 0.3, tm_rng); break;
  }
  bench::DcConfig cfg;
  cfg.algo = algo;
  cfg.npaths = 8;
  cfg.warmup_sec = 1.0 * bench::time_scale();
  cfg.measure_sec = 3.0 * bench::time_scale();
  auto result = bench::run_dc(
      events,
      [&](int s, int d, int n, Rng& rng) {
        return bench::fattree_paths(ft, s, d, n, rng);
      },
      ft.num_hosts(), tm, cfg);
  // The paper reports "per-host throughput": for TP1 every host sends one
  // flow (per-host == per-flow); TP2 sums a host's 12 flows; TP3 counts
  // only the 30% of hosts that participate, i.e. per-flow.
  return tp == 2 ? result.per_host_mbps : result.per_flow_mean;
}

}  // namespace
}  // namespace mpsim

int main() {
  using namespace mpsim;
  bench::banner("§4 FatTree table: per-host throughput, k=8 (128 hosts)",
                "paper: SINGLE 51/94/60, EWTCP 92/92.5/99, MPTCP 95/97/99");

  stats::Table table({"algorithm", "TP1", "TP2", "TP3", "paper"});
  struct Row {
    const char* name;
    const cc::CongestionControl* algo;
    const char* paper;
  };
  const Row rows[] = {
      {"SINGLE-PATH (ECMP)", nullptr, "51 / 94 / 60"},
      {"EWTCP", &cc::ewtcp(), "92 / 92.5 / 99"},
      {"MPTCP", &cc::mptcp_lia(), "95 / 97 / 99"},
  };
  for (const Row& row : rows) {
    table.add_row({row.name, stats::fmt_double(run(1, row.algo), 1),
                   stats::fmt_double(run(2, row.algo), 1),
                   stats::fmt_double(run(3, row.algo), 1), row.paper});
  }
  table.print();
  std::printf(
      "\nexpected shape: multipath recovers most of the 100 Mb/s NIC on "
      "TP1/TP3; single-path ECMP collides in the core on TP1\n");
  return 0;
}
