#include "model/equilibrium.hpp"

#include <algorithm>
#include <cmath>

#include "core/check.hpp"

#include "cc/mptcp_lia.hpp"
#include "model/tcp_model.hpp"

namespace mpsim::model {

MptcpEquilibrium mptcp_equilibrium(const std::vector<double>& loss,
                                   const std::vector<double>& rtt,
                                   double tol, int max_iter) {
  const std::size_t n = loss.size();
  MPSIM_CHECK(rtt.size() == n && n > 0, "loss/RTT vectors must align");

  MptcpEquilibrium eq;
  // Start from the single-path TCP windows; the equilibrium lies below.
  eq.windows.resize(n);
  for (std::size_t r = 0; r < n; ++r) eq.windows[r] = tcp_window(loss[r]);

  constexpr double kFloor = 1e-9;
  constexpr double kDamping = 0.25;
  for (int it = 0; it < max_iter; ++it) {
    double max_delta = 0.0;
    for (std::size_t r = 0; r < n; ++r) {
      const double inc = cc::MptcpLia::increase_linear(eq.windows, rtt, r);
      const double target = 2.0 * (1.0 - loss[r]) * inc / loss[r];
      const double next =
          std::max(kFloor, eq.windows[r] + kDamping * (target - eq.windows[r]));
      max_delta = std::max(max_delta,
                           std::abs(next - eq.windows[r]) /
                               std::max(1.0, eq.windows[r]));
      eq.windows[r] = next;
    }
    eq.iterations = it + 1;
    if (max_delta < tol) {
      eq.converged = true;
      break;
    }
  }
  return eq;
}

double total_rate(const std::vector<double>& windows,
                  const std::vector<double>& rtt) {
  double rate = 0.0;
  for (std::size_t r = 0; r < windows.size(); ++r) rate += windows[r] / rtt[r];
  return rate;
}

}  // namespace mpsim::model
