#include "topo/parking_lot.hpp"

#include <string>

namespace mpsim::topo {

ParkingLot::ParkingLot(Network& net, double link_rate_bps, SimTime path_rtt,
                       std::uint64_t buf_bytes) {
  const SimTime hop = path_rtt / 20;  // small per-link propagation
  for (int i = 0; i < 3; ++i) {
    links_[i] = net.add_link("pl" + std::to_string(i), link_rate_bps, hop,
                             buf_bytes);
    // Pad ACK pipes so one-hop and two-hop paths see the same base RTT.
    ack_short_[i] =
        &net.add_pipe("pl" + std::to_string(i) + "/ack1", path_rtt - hop);
    ack_long_[i] =
        &net.add_pipe("pl" + std::to_string(i) + "/ack2", path_rtt - 2 * hop);
  }
}

Path ParkingLot::one_hop_fwd(int flow) const {
  return path_of({&links_[flow]});
}

Path ParkingLot::two_hop_fwd(int flow) const {
  return path_of({&links_[(flow + 1) % 3], &links_[(flow + 2) % 3]});
}

Path ParkingLot::one_hop_rev(int flow) const { return {ack_short_[flow]}; }

Path ParkingLot::two_hop_rev(int flow) const { return {ack_long_[flow]}; }

}  // namespace mpsim::topo
