// Single-path TCP behaviour: the subflow machinery (slow start, congestion
// avoidance, fast retransmit, RTO, go-back-N) exercised end-to-end over a
// real simulated link via a one-subflow connection.
#include "tcp/subflow.hpp"

#include <gtest/gtest.h>

#include "cc/uncoupled.hpp"
#include "core/check.hpp"
#include "mptcp/connection.hpp"
#include "sim_fixtures.hpp"
#include "stats/monitors.hpp"
#include "topo/network.hpp"

namespace mpsim {
namespace {

using mptcp::ConnectionConfig;
using mptcp::MptcpConnection;
using test::SingleLink;

TEST(Subflow, SlowStartDoublesPerRtt) {
  EventList events;
  topo::Network net(events);
  // Fat link: no losses during the test window. RTT = 20 ms.
  SingleLink link(net, 1e9, from_ms(10), 10'000'000);
  auto tcp = test::single_tcp(events, "t", link);
  tcp->start(0);
  // After ~5 RTTs of slow start from cwnd=2: 2,4,8,16,32...
  events.run_until(from_ms(95));
  EXPECT_GE(tcp->subflow(0).cwnd(), 32.0);
  EXPECT_LE(tcp->subflow(0).cwnd(), 128.0);
}

TEST(Subflow, DeliversInOrderStream) {
  EventList events;
  topo::Network net(events);
  SingleLink link(net, 10e6, from_ms(5), 50 * net::kDataPacketBytes);
  ConnectionConfig cfg;
  cfg.app_limit_pkts = 500;
  auto tcp = test::single_tcp(events, "t", link, cfg);
  tcp->start(0);
  events.run_until(from_sec(10));
  EXPECT_TRUE(tcp->complete());
  EXPECT_EQ(tcp->receiver().delivered(), 500u);
  EXPECT_EQ(tcp->receiver().window_violations(), 0u);
}

TEST(Subflow, ThroughputApproachesLinkRate) {
  EventList events;
  topo::Network net(events);
  // 10 Mb/s, RTT 20 ms, 1 BDP buffer.
  SingleLink link(net, 10e6, from_ms(10), topo::bdp_bytes(10e6, from_ms(20)));
  auto tcp = test::single_tcp(events, "t", link);
  tcp->start(0);
  events.run_until(from_sec(1));  // warm up
  const std::uint64_t before = tcp->receiver().delivered();
  events.run_until(from_sec(11));
  const double mbps =
      stats::pkts_to_mbps(tcp->receiver().delivered() - before, from_sec(10));
  EXPECT_GT(mbps, 8.5) << "NewReno should utilise >85% of the bottleneck";
  EXPECT_LT(mbps, 10.1);
}

TEST(Subflow, LossesTriggerFastRetransmitNotTimeout) {
  EventList events;
  topo::Network net(events);
  SingleLink link(net, 10e6, from_ms(10), topo::bdp_bytes(10e6, from_ms(20)));
  auto tcp = test::single_tcp(events, "t", link);
  tcp->start(0);
  events.run_until(from_sec(20));
  EXPECT_GT(tcp->subflow(0).loss_events(), 5u)
      << "sawtooth must hit the buffer limit repeatedly";
  EXPECT_GT(tcp->subflow(0).retransmits(), 0u);
  // The initial slow-start overshoot may punch enough holes that the
  // RFC 6582 Impatient rule cuts that one recovery short with an RTO;
  // steady-state sawtooth losses must all be handled by fast retransmit.
  EXPECT_LE(tcp->subflow(0).timeouts(), 1u)
      << "steady-state drop-tail losses are recoverable via dupacks";
}

TEST(Subflow, CwndSawtoothStaysNearBdp) {
  EventList events;
  topo::Network net(events);
  const double rate = 10e6;
  SingleLink link(net, rate, from_ms(10),
                  topo::bdp_bytes(rate, from_ms(20)));
  auto tcp = test::single_tcp(events, "t", link);
  tcp->start(0);
  events.run_until(from_sec(15));
  // BDP = 10e6/8 * 0.02 / 1500 ~= 16.7 pkts; with 1 BDP of buffer the
  // congestion window oscillates between ~BDP and ~2 BDP. The sample
  // instant is an arbitrary phase of the sawtooth, and mid-recovery the
  // reported cwnd is inflated by one per dupack (RFC 5681), so the
  // instantaneous ceiling is ssthresh + ~2 BDP ~= 3 BDP, not 2 BDP.
  const double w = tcp->subflow(0).cwnd();
  EXPECT_GT(w, 8.0);
  EXPECT_LT(w, 52.0);
}

TEST(Subflow, RttEstimateMatchesPathRtt) {
  EventList events;
  topo::Network net(events);
  // Half a BDP of buffering keeps queueing delay below 25 ms.
  SingleLink link(net, 100e6, from_ms(25),
                  topo::bdp_bytes(100e6, from_ms(50), 0.5));
  auto tcp = test::single_tcp(events, "t", link);
  tcp->start(0);
  events.run_until(from_sec(2));
  // Base RTT 50 ms plus up to ~25 ms of queueing.
  const double srtt_ms = to_ms(tcp->subflow(0).rtt().srtt());
  EXPECT_GE(srtt_ms, 49.0);
  EXPECT_LE(srtt_ms, 80.0);
}

TEST(Subflow, OutageCausesRtoAndRecovery) {
  EventList events;
  topo::Network net(events);
  auto& vq = net.add_variable_queue("v", 10e6, 100 * net::kDataPacketBytes);
  auto& pipe = net.add_pipe("p", from_ms(5));
  auto& ack = net.add_pipe("a", from_ms(5));
  auto tcp = mptcp::make_single_path_tcp(events, "t", {&vq, &pipe}, {&ack});
  tcp->start(0);
  events.run_until(from_sec(2));
  const auto delivered_before = tcp->receiver().delivered();
  // 3-second outage.
  vq.set_rate(0.0);
  events.run_until(from_sec(5));
  vq.set_rate(10e6);
  events.run_until(from_sec(9));
  EXPECT_GT(tcp->subflow(0).timeouts(), 0u);
  EXPECT_GT(tcp->receiver().delivered(), delivered_before + 1000u)
      << "flow must resume after the outage";
  EXPECT_EQ(tcp->receiver().window_violations(), 0u);
}

TEST(Subflow, BackoffDoublesRtoDuringPersistentOutage) {
  EventList events;
  topo::Network net(events);
  auto& vq = net.add_variable_queue("v", 10e6, 100 * net::kDataPacketBytes);
  auto& pipe = net.add_pipe("p", from_ms(5));
  auto& ack = net.add_pipe("a", from_ms(5));
  auto tcp = mptcp::make_single_path_tcp(events, "t", {&vq, &pipe}, {&ack});
  tcp->start(0);
  events.run_until(from_sec(1));
  vq.set_rate(0.0);
  events.run_until(from_sec(30));
  const auto timeouts = tcp->subflow(0).timeouts();
  // Exponential backoff: ~200ms, 400, 800, ... => only a handful of RTOs
  // in 29 s rather than ~145 at a constant 200 ms.
  EXPECT_GE(timeouts, 3u);
  EXPECT_LE(timeouts, 12u);
}

// Regression: arm_rto() computed `rtt_.rto() << shift` before clamping to
// max_rto. With a large base RTO a backoff shift of only 3 overflows signed
// SimTime (UB); the wrapped-negative value won the std::min against max_rto
// and put the retransmission deadline in the past. The shift is now
// saturated against max_rto before it is applied.
TEST(Subflow, RtoBackoffSaturatesInsteadOfOverflowing) {
  ScopedThrowingChecks guard;  // a past-deadline schedule becomes a throw
  EventList events;
  topo::Network net(events);
  auto& vq = net.add_variable_queue("v", 10e6, 100 * net::kDataPacketBytes);
  auto& pipe = net.add_pipe("p", from_ms(5));
  auto& ack = net.add_pipe("a", from_ms(5));
  // Base RTO pinned at 2e18 ns: 2e18 << 3 wraps negative in int64. The
  // clamp must instead hold every backed-off RTO at max_rto.
  constexpr SimTime kHugeRto = 2'000'000'000'000'000'000;
  ConnectionConfig cfg;
  cfg.subflow.min_rto = kHugeRto;
  cfg.subflow.max_rto = kHugeRto;
  auto tcp = mptcp::make_single_path_tcp(events, "t", {&vq, &pipe}, {&ack},
                                         cfg);
  tcp->start(0);
  vq.set_rate(0.0);  // blackhole from the first transmission: RTOs only
  // Timeouts land at 1x, 2x, 3x kHugeRto (saturated — not 1x, 3x, 7x
  // doubled). Pre-fix, arming after the third timeout computes a negative
  // RTO and trips "cannot schedule in the past".
  EXPECT_NO_THROW(events.run_until(7 * (kHugeRto / 2)));
  EXPECT_EQ(tcp->subflow(0).timeouts(), 3u);
}

TEST(Subflow, CompletionCallbackFires) {
  EventList events;
  topo::Network net(events);
  SingleLink link(net, 10e6, from_ms(5), 50 * net::kDataPacketBytes);
  ConnectionConfig cfg;
  cfg.app_limit_pkts = 50;
  auto tcp = test::single_tcp(events, "t", link, cfg);
  bool done = false;
  tcp->on_complete = [&] { done = true; };
  tcp->start(from_ms(100));
  events.run_until(from_sec(5));
  EXPECT_TRUE(done);
  EXPECT_GT(tcp->completed_at(), tcp->started_at());
}

TEST(Subflow, TwoFlowsShareBottleneckFairly) {
  EventList events;
  topo::Network net(events);
  SingleLink link(net, 10e6, from_ms(10), topo::bdp_bytes(10e6, from_ms(20)));
  auto a = test::single_tcp(events, "a", link);
  auto b = test::single_tcp(events, "b", link);
  a->start(0);
  b->start(from_ms(37));  // desynchronise
  events.run_until(from_sec(5));
  const auto da = a->receiver().delivered();
  const auto db = b->receiver().delivered();
  events.run_until(from_sec(45));
  const double ra = static_cast<double>(a->receiver().delivered() - da);
  const double rb = static_cast<double>(b->receiver().delivered() - db);
  EXPECT_NEAR(ra / (ra + rb), 0.5, 0.13)
      << "long-run NewReno shares within ~25%";
}

TEST(Subflow, KarnRuleNoRttSampleFromRetransmits) {
  // A path with heavy random loss and huge propagation: if retransmitted
  // segments were sampled, SRTT would be wildly inflated. We check SRTT
  // stays near the true RTT despite many retransmissions.
  EventList events;
  topo::Network net(events);
  auto& lossy = net.add_lossy("loss", 0.05, 42);
  auto& q = net.add_queue("q", 100e6, 1'000'000);
  auto& pipe = net.add_pipe("p", from_ms(50));
  auto& ack = net.add_pipe("a", from_ms(50));
  auto tcp =
      mptcp::make_single_path_tcp(events, "t", {&lossy, &q, &pipe}, {&ack});
  tcp->start(0);
  events.run_until(from_sec(30));
  EXPECT_GT(tcp->subflow(0).retransmits(), 10u);
  EXPECT_NEAR(to_ms(tcp->subflow(0).rtt().srtt()), 100.0, 20.0);
}

}  // namespace
}  // namespace mpsim
