#!/usr/bin/env python3
"""Fixture suite for tools/mpsim_analyze (and its mpsim_lint rebase).

Runs the analyzer over tests/analyze_fixtures/src — a tree seeded with one
deliberate violation per rule — and asserts that:

  * every seeded violation fires, in the right file, under the right rule;
  * the cross-TU escape (clean handler calling an allocating helper in an
    unlisted file) is caught, which the hard-coded-file-list lint cannot do;
  * the clean cold-allocation control produces no findings;
  * --check-stale-allows flags the allow comment that suppresses nothing;
  * on the real tree the computed hot-file set is a strict superset of
    mpsim_lint's legacy ARENA_HOT_FILES list (the acceptance criterion for
    replacing the list with reachability).

Stdlib only; invoked by ctest as `python3 tests/test_analyze_fixtures.py
--root <repo root>`.
"""

from __future__ import annotations

import argparse
import subprocess
import sys
from pathlib import Path

# (file, rule) pairs the fixture tree must produce.
EXPECTED = [
    ("hot_alloc.cpp", "hot-alloc"),
    ("hot_clock.cpp", "hot-clock"),
    ("hot_rand.cpp", "hot-rand"),
    ("hot_io.cpp", "hot-io"),
    ("hot_static.cpp", "hot-static"),
    ("packet_ownership.cpp", "packet-ownership"),
    ("simtime_unit.cpp", "simtime-unit"),
    ("escape_helper.cpp", "hot-alloc"),  # hot only via the cross-TU call
]

# Files that must never appear in any finding.
NEVER_FLAGGED = ["clean_cold.cpp", "escape.cpp"]


def run_analyzer(root: Path, *extra: str) -> tuple[int, str]:
    cmd = [sys.executable, str(root / "tools" / "mpsim_analyze"),
           "--src-root", str(root / "tests" / "analyze_fixtures" / "src"),
           *extra]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    return proc.returncode, proc.stdout + proc.stderr


def main() -> int:
    ap = argparse.ArgumentParser()
    ap.add_argument("--root", default=None)
    args = ap.parse_args()
    root = (Path(args.root) if args.root
            else Path(__file__).resolve().parent.parent)

    failures: list[str] = []

    # --- seeded violations all fire -------------------------------------
    code, out = run_analyzer(root)
    if code != 1:
        failures.append(f"fixture run: expected exit 1, got {code}\n{out}")
    for fname, rule in EXPECTED:
        if not any(fname in ln and f"[{rule}]" in ln
                   for ln in out.splitlines()):
            failures.append(f"seeded violation not reported: "
                            f"{fname} [{rule}]")
    for fname in NEVER_FLAGGED:
        hits = [ln for ln in out.splitlines()
                if ln.startswith(fname + ":")]
        if hits:
            failures.append(f"false positive on {fname}: {hits}")
    # The plain run must NOT flag the stale allow (that is opt-in).
    if "stale-allow" in out:
        failures.append("plain run reported stale-allow without the flag")

    # --- stale-allow detection ------------------------------------------
    code, out = run_analyzer(root, "--check-stale-allows")
    if code != 1:
        failures.append(f"stale run: expected exit 1, got {code}")
    if not any("stale_allow.cpp" in ln and "[stale-allow]" in ln
               for ln in out.splitlines()):
        failures.append("stale allow in stale_allow.cpp not reported")

    # --- real tree: computed hot files superset of the legacy list ------
    sys.path.insert(0, str(root / "tools"))
    sys.path.insert(0, str(root / "tools" / "mpsim_analyze"))
    import hotset  # noqa: E402
    import mpsim_lint  # noqa: E402
    files = hotset.discover_src(root)
    _, _, graph, hot = hotset.analyze_tree(root, files)
    hot_files = set(graph.hot_files(hot))
    legacy = {f for f in files if f.endswith(mpsim_lint.ARENA_HOT_FILES)}
    missing = {f for f in legacy
               if not any(h.endswith(f) or f.endswith(h)
                          for h in hot_files)}
    if missing:
        failures.append(f"hot set misses legacy arena-hot files: "
                        f"{sorted(missing)}")
    if len(hot_files) <= len(legacy):
        failures.append(
            f"hot set ({len(hot_files)} files) is not a strict superset "
            f"of the legacy list ({len(legacy)} files)")

    if failures:
        for f in failures:
            print(f"FAIL: {f}")
        return 1
    print(f"test_analyze_fixtures: OK ({len(EXPECTED)} seeded violations "
          f"caught, controls clean, hot files {len(hot_files)} > "
          f"legacy {len(legacy)})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
