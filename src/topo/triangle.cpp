#include "topo/triangle.hpp"

#include <string>

namespace mpsim::topo {

Triangle::Triangle(Network& net, const std::array<double, 3>& rates_bps,
                   SimTime one_way_delay,
                   const std::array<std::uint64_t, 3>& bufs) {
  for (int i = 0; i < 3; ++i) {
    links_[i] = net.add_link("tri" + std::to_string(i), rates_bps[i],
                             one_way_delay, bufs[i]);
    ack_[i] = &net.add_pipe("tri" + std::to_string(i) + "/ack", one_way_delay);
  }
}

Path Triangle::fwd(int flow, int path) const {
  return path_of({&links_[link_of(flow, path)]});
}

Path Triangle::rev(int flow, int path) const {
  return {ack_[link_of(flow, path)]};
}

}  // namespace mpsim::topo
