// Shared runner for the §4 data-center experiments (FatTree and BCube).
//
// For each (src, dst) pair in a traffic matrix it creates either a
// single-path TCP on one random shortest path (the paper's ECMP stand-in:
// "we mimicked ECMP in our simulator by making each TCP source pick one of
// the shortest-hop paths at random") or a multipath connection over up to
// `npaths` sampled paths.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cc/congestion_control.hpp"
#include "cc/uncoupled.hpp"
#include "harness.hpp"
#include "topo/bcube.hpp"
#include "topo/fat_tree.hpp"
#include "traffic/traffic_matrix.hpp"

namespace mpsim::bench {

struct DcResult {
  std::vector<double> per_flow_mbps;
  double per_host_mbps = 0.0;   // aggregate goodput / number of hosts
  double per_flow_mean = 0.0;   // aggregate goodput / number of flows
};

struct DcConfig {
  int npaths = 8;                           // subflows per connection
  const cc::CongestionControl* algo = nullptr;  // nullptr => single path
  double warmup_sec = 1.0;
  double measure_sec = 3.0;
  std::uint64_t seed = 1;
  // Datacenter RTTs are ~100s of microseconds; the WAN 200 ms RTO floor
  // would turn every timeout into a thousand-RTT stall (the classic
  // incast problem — DC kernels lower the floor, so do we).
  SimTime min_rto = from_ms(10);
  std::uint64_t recv_buffer_pkts = 4096;
};

template <typename PathProvider>
DcResult run_dc(EventList& events, PathProvider&& provider, int hosts,
                const std::vector<traffic::FlowPair>& tm,
                const DcConfig& cfg) {
  Rng rng(cfg.seed);
  std::vector<std::unique_ptr<mptcp::MptcpConnection>> flows;
  GoodputMeter meter(events);
  int idx = 0;
  mptcp::ConnectionConfig ccfg;
  ccfg.subflow.min_rto = cfg.min_rto;
  ccfg.recv_buffer_pkts = cfg.recv_buffer_pkts;
  for (const auto& pair : tm) {
    const bool single = cfg.algo == nullptr;
    auto conn = std::make_unique<mptcp::MptcpConnection>(
        events, "f" + std::to_string(idx),
        single ? cc::uncoupled() : *cfg.algo, ccfg);
    auto paths = provider(pair.src, pair.dst, single ? 1 : cfg.npaths, rng);
    for (auto& pr : paths) {
      conn->add_subflow(pr.first, pr.second);
    }
    conn->start(from_ms(0.5 * static_cast<double>(idx % 997)));
    meter.track(*conn);
    flows.push_back(std::move(conn));
    ++idx;
  }
  events.run_until(from_sec(cfg.warmup_sec));
  meter.mark();
  events.run_until(from_sec(cfg.warmup_sec + cfg.measure_sec));

  DcResult result;
  result.per_flow_mbps = meter.mbps();
  double total = 0.0;
  for (double v : result.per_flow_mbps) total += v;
  result.per_host_mbps = total / static_cast<double>(hosts);
  result.per_flow_mean =
      tm.empty() ? 0.0 : total / static_cast<double>(tm.size());
  return result;
}

// (fwd, rev) path pairs for one connection. The sampling lives in
// src/topo (shared with the scenario engine, so spec-driven runs pick
// byte-identical paths); these wrappers keep the historical bench names.
using PathPair = topo::PathPair;

inline std::vector<PathPair> fattree_paths(topo::FatTree& ft, int src,
                                           int dst, int n, Rng& rng) {
  return topo::sample_path_pairs(ft, src, dst, n, rng);
}

inline std::vector<PathPair> bcube_paths(topo::BCube& bc, int src, int dst,
                                         int n, Rng& rng) {
  return topo::sample_path_pairs(bc, src, dst, n, rng);
}

}  // namespace mpsim::bench
