// The two-independent-links scenario that recurs throughout the paper:
// Fig. 1 (shared-bottleneck fairness), Fig. 5/9 (dynamic load), Fig. 10
// (dual-homed server), Fig. 14/15/16 (wireless client / RTT sweep).
//
// A client M reaches a server over two disjoint bottleneck links. Each link
// may carry additional single-path competing flows. The forward direction
// is a Queue+Pipe; the ACK direction a Pipe of equal delay.
#pragma once

#include <cstdint>
#include <string>

#include "topo/network.hpp"

namespace mpsim::topo {

struct LinkSpec {
  double rate_bps = 100e6;
  SimTime one_way_delay = from_ms(5);  // per direction; RTT = 2x
  std::uint64_t buf_bytes = 50 * net::kDataPacketBytes;

  static LinkSpec pkt_rate(double pps, SimTime one_way, double bdp_mult) {
    LinkSpec s;
    s.rate_bps = pkts_per_sec_to_bps(pps);
    s.one_way_delay = one_way;
    s.buf_bytes = bdp_bytes(s.rate_bps, 2 * one_way, bdp_mult);
    return s;
  }
};

class TwoLink {
 public:
  TwoLink(Network& net, const LinkSpec& link1, const LinkSpec& link2);

  // Data path over link i (0 or 1) and the matching ACK return path.
  Path fwd(int link) const;
  Path rev(int link) const;

  // The bottleneck queue of link i (loss statistics, CBR injection point).
  net::Queue& queue(int link) { return *links_[link].queue; }
  const net::Queue& queue(int link) const { return *links_[link].queue; }

 private:
  Link links_[2];
  net::Pipe* ack_pipes_[2];
};

}  // namespace mpsim::topo
