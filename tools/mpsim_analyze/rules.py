"""Rule passes over the computed hot set.

Each rule scans the body lines of every hot function and reports findings
as `path:line: [rule] qualname: message`. Suppression: append
`// mpsim-analyze: allow(<rule>)` to the offending line or the line
directly above it (clang-format keeps many offenders at the column limit).
For the allocation rule, a legacy `// mpsim-lint: allow(arena-discipline)`
comment counts too — the two tools police the same discipline and one
justified comment should satisfy both.

Rules
-----
hot-alloc         No heap allocation on event-dispatch-reachable paths:
                  `new`, make_unique/make_shared, malloc/calloc/realloc,
                  and growing STL container calls (push_back, emplace*,
                  resize, insert, append, to_string, reserve). Hot state
                  lives in the SimArena SoA columns, packets in the pool,
                  pending events in reserved scheduler storage.
hot-clock         No wall-clock reads: a hot function reading host time
                  makes the run a function of the machine, not the seed.
hot-rand          No rand()/srand()/std::random_device/<random> engines:
                  all randomness flows through the seeded mpsim::Rng.
hot-io            No blocking I/O (stdio, iostreams on std::cout/cerr,
                  file streams, system()): dispatch must never stall on
                  the host OS, and output ordering would leak thread
                  interleaving into results.
hot-static        No function-local `static` mutable state: concurrent
                  simulations on worker threads would race on it (and
                  C++ magic-statics serialize on first use).
packet-ownership  A function that takes packets from the pool
                  (Packet::alloc / PacketPool::alloc) must also hand each
                  one on (send_on/advance/push_back/receive_shipped) or
                  return it (release); an alloc with no downstream
                  transfer leaks the packet out of the conservation
                  ledger.
simtime-unit      SimTime values are built with from_ns/us/ms/sec(), not
                  hand-scaled 1e3/1e6/1e9 factors (ns/us confusions breed
                  in hand-scaling; core/time.hpp owns the only factors).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

RULE_NAMES = (
    "hot-alloc", "hot-clock", "hot-rand", "hot-io", "hot-static",
    "packet-ownership", "simtime-unit",
)

# Strings/comments never trigger rules (mirrors tools/mpsim_lint.py).
STRING_RE = re.compile(r'"(?:[^"\\]|\\.)*"')
LINE_COMMENT_RE = re.compile(r"//.*$")

ALLOC_RE = re.compile(
    r"\bnew\s+[A-Za-z_:(]|std::make_unique|std::make_shared"
    r"|\bmalloc\s*\(|\bcalloc\s*\(|\brealloc\s*\("
    r"|\.\s*(?:push_back|emplace_back|emplace|resize|insert|append"
    r"|reserve)\s*\(|std::to_string\s*\(")
CLOCK_RE = re.compile(
    r"std::chrono|steady_clock|system_clock|high_resolution_clock"
    r"|\bgettimeofday\s*\(|\btime\s*\(\s*(?:NULL|nullptr|0)?\s*\)"
    r"|\bclock\s*\(\s*\)")
RAND_RE = re.compile(
    r"\brand\s*\(|\bsrand\s*\(|std::random_device|std::mt19937"
    r"|std::minstd_rand|std::default_random_engine"
    r"|std::uniform_int_distribution|std::uniform_real_distribution")
IO_RE = re.compile(
    r"std::cout|std::cerr|std::clog|\bprintf\s*\(|\bfprintf\s*\("
    r"|\bfopen\s*\(|\bfwrite\s*\(|\bfread\s*\(|\bfflush\s*\("
    r"|std::(?:i|o)?fstream|std::getline|\bsystem\s*\(")
STATIC_LOCAL_RE = re.compile(r"^\s*static\s+(?!const\b|constexpr\b)\w")
SIMTIME_CAST_RE = re.compile(
    r"(?:static_cast<\s*SimTime\s*>|\bSimTime\s*\()[^;]*\b1e[369]\b")

PKT_SOURCE_RE = re.compile(r"\bPacket::alloc\s*\(|\bpool\b[\w.]*\.alloc\s*\(")
PKT_TRANSFER_RE = re.compile(
    r"\.\s*(?:send_on|advance|release|receive_shipped)\s*\(|\bpush_back\s*\("
    r"|\breturn\b[^;]*\balloc\s*\(|\breturn\s+(?:\*?\s*)?p\b")


@dataclass
class Finding:
    path: str
    line: int
    rule: str
    func: str
    message: str

    def __str__(self) -> str:
        return (f"{self.path}:{self.line}: [{self.rule}] "
                f"{self.func}: {self.message}")


def code_of(line: str) -> str:
    return LINE_COMMENT_RE.sub("", STRING_RE.sub('""', line))


def _allow_site(lexed, line: int, rule: str):
    """Line number of an allow comment covering `line` for `rule`
    (same line or the one above), else None. hot-alloc additionally
    honors the legacy lint spelling arena-discipline."""
    accepted = {("analyze", rule)}
    if rule == "hot-alloc":
        accepted.add(("lint", "arena-discipline"))
    for cand in (line, line - 1):
        marks = lexed.allows.get(cand, ())
        if any(m in accepted for m in marks):
            return cand
    return None


def _scan(lexed, fn, rule, regex, message, findings, used_allows):
    lines = lexed.lines
    for ln in range(fn.body_start, min(fn.end_line, len(lines)) + 1):
        raw = lines[ln - 1]
        if not regex.search(code_of(raw)):
            continue
        site = _allow_site(lexed, ln, rule)
        if site is not None:
            used_allows.add((lexed.path, site))
            continue
        findings.append(Finding(lexed.path, ln, rule, fn.qualname, message))


def run_rules(lexed_files: dict, hot: list):
    """(findings, used_allows) over every hot function.

    lexed_files maps path -> LexedFile; hot is the list of FunctionDef in
    the hot set. used_allows collects (path, line) of every allow comment
    that actually suppressed something — the complement feeds
    --check-stale-allows.
    """
    findings: list = []
    used_allows: set = set()
    for fn in hot:
        lexed = lexed_files[fn.path]
        _scan(lexed, fn, "hot-alloc", ALLOC_RE,
              "heap allocation on an event-dispatch path; use the SimArena "
              "columns, the packet pool, or reserved storage", findings,
              used_allows)
        _scan(lexed, fn, "hot-clock", CLOCK_RE,
              "wall-clock read on an event-dispatch path; results must be "
              "a pure function of (spec, seed)", findings, used_allows)
        _scan(lexed, fn, "hot-rand", RAND_RE,
              "unseeded randomness on an event-dispatch path; use the "
              "seeded mpsim::Rng", findings, used_allows)
        _scan(lexed, fn, "hot-io", IO_RE,
              "blocking I/O on an event-dispatch path; buffer into the "
              "flight recorder and flush after the run", findings,
              used_allows)
        _scan(lexed, fn, "hot-static", STATIC_LOCAL_RE,
              "function-local static mutable state races across parallel "
              "simulations; use per-EventList services", findings,
              used_allows)
        if not lexed.path.replace("\\", "/").endswith("core/time.hpp"):
            # time.hpp owns the unit factors; everyone else goes through it.
            _scan(lexed, fn, "simtime-unit", SIMTIME_CAST_RE,
                  "build SimTime with from_ns/us/ms/sec(), not raw "
                  "1e3/1e6/1e9 unit factors", findings, used_allows)
        _check_packet_ownership(lexed, fn, findings, used_allows)
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings, used_allows


def _check_packet_ownership(lexed, fn, findings, used_allows):
    """Local-flow pairing: every Packet::alloc in a body needs a matching
    transfer (send_on/advance/release/fifo push/return) somewhere in the
    same body. Function-level, not path-sensitive: a transfer on any path
    satisfies the rule (MPSIM_CHECK + the pool's conservation ledger cover
    the dynamic cases)."""
    lines = lexed.lines
    body = range(fn.body_start, min(fn.end_line, len(lines)) + 1)
    sources = [ln for ln in body if PKT_SOURCE_RE.search(code_of(lines[ln - 1]))]
    if not sources:
        return
    has_transfer = any(PKT_TRANSFER_RE.search(code_of(lines[ln - 1]))
                       for ln in body)
    if has_transfer:
        return
    for ln in sources:
        site = _allow_site(lexed, ln, "packet-ownership")
        if site is not None:
            used_allows.add((lexed.path, site))
            continue
        findings.append(Finding(
            lexed.path, ln, "packet-ownership", fn.qualname,
            "packet taken from the pool but never sent, advanced, "
            "released or returned in this function — it leaks out of the "
            "conservation ledger"))
