#include "stats/table.hpp"

#include <cstdio>
#include <sstream>
#include <utility>

namespace mpsim::stats {

std::string fmt_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void Table::add_row(const std::string& label,
                    const std::vector<double>& values, int precision) {
  std::vector<std::string> cells;
  cells.push_back(label);
  for (double v : values) cells.push_back(fmt_double(v, precision));
  rows_.push_back(std::move(cells));
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : "";
      out << cell << std::string(widths[c] - cell.size(), ' ');
      out << (c + 1 < widths.size() ? "  " : "");
    }
    out << '\n';
  };
  emit(headers_);
  std::string rule;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    rule += std::string(widths[c], '-');
    if (c + 1 < widths.size()) rule += "  ";
  }
  out << rule << '\n';
  for (const auto& row : rows_) emit(row);
  return out.str();
}

void Table::print() const { std::fputs(to_string().c_str(), stdout); }

}  // namespace mpsim::stats
