// COUPLED (§2.2, adapted from Kelly-Voice [15] and Han et al. [10]): fully
// coupled AIMD that moves all traffic onto the least-congested path.
//
//   per ACK on path r:  w_r += 1 / w_total
//   per loss on path r: w_r -= w_total / 2      (bounded below)
//
// With one path this reduces to regular TCP. With equal loss rates,
// w_total = sqrt(2/p) regardless of path count, solving §2.1's fairness
// problem. With unequal loss rates the higher-loss paths collapse toward
// zero window — which is efficient (Fig. 2) but suffers the "trapped flow"
// problem of §2.4 and the RTT-mismatch problem of §2.3.
#pragma once

#include "cc/congestion_control.hpp"

namespace mpsim::cc {

class Coupled : public CongestionControl {
 public:
  double increase_per_ack(const ConnectionView& c, std::size_t r) const override;
  double window_after_loss(const ConnectionView& c, std::size_t r) const override;
  std::string name() const override { return "COUPLED"; }
};

const Coupled& coupled();

}  // namespace mpsim::cc
