#include "topo/bcube.hpp"

#include <string>

#include "core/check.hpp"

namespace mpsim::topo {

BCube::BCube(Network& net, int n, int k, double link_rate_bps,
             SimTime per_hop_delay, std::uint64_t buf_bytes)
    : net_(net), n_(n), k_(k), per_hop_delay_(per_hop_delay) {
  MPSIM_CHECK(n >= 2 && k >= 0, "BCube needs n >= 2 hosts/switch, k >= 0");
  hosts_ = 1;
  for (int l = 0; l <= k; ++l) hosts_ *= n;

  const int lv = levels();
  host_up_.reserve(static_cast<std::size_t>(hosts_) * lv);
  host_down_.reserve(static_cast<std::size_t>(hosts_) * lv);
  for (int h = 0; h < hosts_; ++h) {
    for (int l = 0; l < lv; ++l) {
      const std::string base =
          "bc/h" + std::to_string(h) + "l" + std::to_string(l);
      host_up_.push_back(
          net_.add_link(base + "/up", link_rate_bps, per_hop_delay, buf_bytes));
      host_down_.push_back(net_.add_link(base + "/down", link_rate_bps,
                                         per_hop_delay, buf_bytes));
    }
  }
}

int BCube::digit(int host, int level) const {
  int v = host;
  for (int l = 0; l < level; ++l) v /= n_;
  return v % n_;
}

int BCube::with_digit(int host, int level, int value) const {
  int scale = 1;
  for (int l = 0; l < level; ++l) scale *= n_;
  return host + (value - digit(host, level)) * scale;
}

void BCube::append_correction(Path& path, int cur, int level,
                              int value) const {
  const int next = with_digit(cur, level, value);
  const int lv = levels();
  append_link(path, host_up_[static_cast<std::size_t>(cur) * lv + level]);
  append_link(path, host_down_[static_cast<std::size_t>(next) * lv + level]);
}

Path BCube::single_path(int src, int dst) const {
  MPSIM_CHECK(src != dst, "source and destination must differ");
  Path path;
  int cur = src;
  for (int l = k_; l >= 0; --l) {
    if (digit(cur, l) != digit(dst, l)) {
      append_correction(path, cur, l, digit(dst, l));
      cur = with_digit(cur, l, digit(dst, l));
    }
  }
  return path;
}

std::vector<Path> BCube::paths(int src, int dst, Rng& rng) const {
  MPSIM_CHECK(src != dst, "source and destination must differ");
  const int lv = levels();
  std::vector<Path> out;
  out.reserve(static_cast<std::size_t>(lv));
  for (int i = 0; i < lv; ++i) {
    Path path;
    int cur = src;
    int detour_level = -1;
    if (digit(src, i) == digit(dst, i)) {
      // Digit i already matches: detour through a random sibling at level
      // i so this path still leaves on interface i (and stays disjoint
      // from the other paths' first hops).
      int alt = digit(src, i);
      while (alt == digit(src, i)) {
        alt = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n_)));
      }
      append_correction(path, cur, i, alt);
      cur = with_digit(cur, i, alt);
      detour_level = i;
    }
    for (int step = 0; step < lv; ++step) {
      const int l = (i + step) % lv;
      if (digit(cur, l) != digit(dst, l) && l != detour_level) {
        append_correction(path, cur, l, digit(dst, l));
        cur = with_digit(cur, l, digit(dst, l));
      }
    }
    if (detour_level >= 0) {
      // Undo the detour digit last.
      append_correction(path, cur, detour_level, digit(dst, detour_level));
      cur = with_digit(cur, detour_level, digit(dst, detour_level));
    }
    MPSIM_CHECK(cur == dst, "path construction must terminate at dst");
    out.push_back(std::move(path));
  }
  return out;
}

Path BCube::ack_path(const Path& fwd) {
  const SimTime delay =
      per_hop_delay_ * static_cast<SimTime>(fwd.size() / 2);
  auto it = ack_pipes_.find(delay);
  if (it == ack_pipes_.end()) {
    net::Pipe& pipe =
        net_.add_pipe("bc/ack" + std::to_string(to_us(delay)), delay);
    it = ack_pipes_.emplace(delay, &pipe).first;
  }
  return {it->second};
}

std::vector<int> BCube::neighbors(int host, int level) const {
  std::vector<int> out;
  for (int v = 0; v < n_; ++v) {
    if (v != digit(host, level)) out.push_back(with_digit(host, level, v));
  }
  return out;
}

std::vector<const net::Queue*> BCube::all_queues() const {
  std::vector<const net::Queue*> qs;
  for (const Link& l : host_up_) qs.push_back(l.queue);
  for (const Link& l : host_down_) qs.push_back(l.queue);
  return qs;
}

std::vector<PathPair> sample_path_pairs(BCube& bc, int src, int dst, int n,
                                        Rng& rng) {
  std::vector<PathPair> out;
  if (n <= 1) {
    auto p = bc.single_path(src, dst);
    auto ack = bc.ack_path(p);
    out.emplace_back(std::move(p), std::move(ack));
    (void)rng;
    return out;
  }
  auto all = bc.paths(src, dst, rng);
  for (int i = 0; i < n && i < static_cast<int>(all.size()); ++i) {
    out.emplace_back(all[static_cast<std::size_t>(i)],
                     bc.ack_path(all[static_cast<std::size_t>(i)]));
  }
  return out;
}

}  // namespace mpsim::topo
