"""Declaration parser for mpsim_analyze.

Walks a token stream (lexer.py) and extracts every *function definition* —
free functions, inline class methods, out-of-line `Ret Class::method(...)`
bodies, constructors, destructors and operators — together with the call
sites inside each body. This is a scope-tracking recognizer, not a full
C++ parser: it tracks namespace/class nesting and brace depth, recognizes
the `name ( params ) [qualifiers] [: init-list] {` shape of a definition,
and treats everything inside the body as a flat token sequence to mine for
calls. That is exactly the fidelity a name-based call graph needs, and it
keeps the tool dependency-free.

Known over-approximations (deliberate — the hot set must err toward
inclusion, see callgraph.py):
  * Macros are not expanded; a macro invocation at class scope that hides
    a definition is invisible, and one inside a body contributes whatever
    call-shaped tokens appear in its argument list.
  * Lambdas defined inside a body belong to the enclosing function.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from lexer import LexedFile, Token

# Identifiers that look like calls but are control flow / operators.
NOT_A_CALL = {
    "if", "for", "while", "switch", "return", "catch", "sizeof", "alignof",
    "alignas", "decltype", "noexcept", "static_assert", "defined", "assert",
    "typeid", "new", "delete", "throw", "case", "do", "else",
    "static_cast", "dynamic_cast", "const_cast", "reinterpret_cast",
}

# Keywords that can never be a function name.
KEYWORDS = NOT_A_CALL | {
    "class", "struct", "union", "enum", "namespace", "template", "typename",
    "using", "typedef", "public", "private", "protected", "virtual",
    "override", "final", "const", "constexpr", "consteval", "constinit",
    "inline", "static", "extern", "friend", "explicit", "operator",
    "volatile", "mutable", "auto", "void", "bool", "char", "int", "long",
    "short", "float", "double", "unsigned", "signed", "try", "requires",
}


@dataclass
class CallSite:
    name: str        # unqualified callee name ('foo', 'operator<<' excluded)
    qualifier: str   # 'Class' for Class::foo(...), '' otherwise
    is_member: bool  # preceded by '.' or '->'
    line: int


@dataclass
class FunctionDef:
    name: str          # unqualified ('on_event', 'Subflow', '~Subflow')
    cls: str           # owning class ('' for free functions)
    namespace: str     # enclosing namespace path ('mpsim::net')
    path: str          # file that holds the definition
    start_line: int    # line of the name token
    body_start: int    # line of the opening '{'
    end_line: int      # line of the closing '}'
    calls: list = field(default_factory=list)  # list[CallSite]

    @property
    def qualname(self) -> str:
        return f"{self.cls}::{self.name}" if self.cls else self.name

    def __repr__(self) -> str:  # compact for --dump-callgraph
        return f"{self.qualname}@{self.path}:{self.start_line}"


def parse_file(lf: LexedFile) -> list:
    """All function definitions (with call sites) in one lexed file."""
    return _Parser(lf).run()


class _Parser:
    def __init__(self, lf: LexedFile):
        self.lf = lf
        self.toks = lf.tokens
        self.n = len(self.toks)
        self.defs: list = []

    def run(self) -> list:
        # Scope stack entries: ('namespace'|'class'|'brace', name).
        stack: list = []
        i = 0
        while i < self.n:
            t = self.toks[i]
            if t.kind == "ident" and t.text == "namespace":
                i = self._open_scope(stack, i, "namespace")
                continue
            if t.kind == "ident" and t.text in ("class", "struct", "union",
                                                "enum"):
                i = self._open_scope(stack, i, "class")
                continue
            if t.kind == "punct" and t.text == "{":
                stack.append(("brace", ""))
                i += 1
                continue
            if t.kind == "punct" and t.text == "}":
                if stack:
                    stack.pop()
                i += 1
                continue
            if t.kind == "ident" or (t.kind == "punct" and t.text == "~"):
                consumed = self._try_function(stack, i)
                if consumed:
                    i = consumed
                    continue
            i += 1
        return self.defs

    # --- scopes -----------------------------------------------------------

    def _open_scope(self, stack: list, i: int, kind: str) -> int:
        """Position after `namespace N {` / `class C ... {` (or after `;`
        for forward declarations). Pushes the scope if a body opens."""
        j = i + 1
        # enum class X / namespace A::B
        name_parts: list = []
        while j < self.n:
            t = self.toks[j]
            if t.kind == "ident" and t.text not in ("final", "class",
                                                    "struct"):
                name_parts.append(t.text)
                j += 1
            elif t.kind == "punct" and t.text == "::":
                name_parts.append("::")
                j += 1
            else:
                break
        # Skip base-class lists / enum underlying types up to '{' or ';'.
        depth = 0
        while j < self.n:
            t = self.toks[j]
            if t.kind == "punct":
                if t.text in ("<", "("):
                    depth += 1
                elif t.text in (">", ")"):
                    depth -= 1
                elif t.text == ";" and depth <= 0:
                    return j + 1  # declaration only
                elif t.text == "{" and depth <= 0:
                    name = "".join(name_parts) if name_parts else "<anon>"
                    stack.append((kind, name))
                    return j + 1
                elif t.text == "=" and depth <= 0:
                    # namespace alias / enum with initializer-less '=' —
                    # treat as declaration, skip to ';'.
                    return self._skip_to(j, ";") + 1
            j += 1
        return j

    # --- function recognition --------------------------------------------

    def _try_function(self, stack: list, i: int):
        """If tokens at i start `qualified-name ( params ) ... {`, record a
        FunctionDef and return the index just past the body; else None."""
        # Name: [~] ident (:: [~] ident)* | operator<symbols>
        j = i
        parts: list = []
        tilde = False
        while j < self.n:
            t = self.toks[j]
            if t.kind == "punct" and t.text == "~":
                tilde = True
                j += 1
                continue
            if t.kind == "ident":
                if t.text == "operator":
                    op, j2 = self._operator_name(j)
                    if op is None:
                        return None
                    parts.append(op)
                    j = j2
                    break
                parts.append(("~" if tilde else "") + t.text)
                tilde = False
                j += 1
                # Skip one balanced template argument list after a name
                # part (Foo<T>::bar, push_back<int> — rare here).
                if j < self.n and self.toks[j].text == "<":
                    close = self._match_angle(j)
                    if close is not None and close + 1 < self.n and \
                            self.toks[close + 1].text == "::":
                        j = close + 1
                if j < self.n and self.toks[j].kind == "punct" and \
                        self.toks[j].text == "::":
                    j += 1
                    continue
                break
            return None
        if not parts or parts[-1] in KEYWORDS:
            return None
        if j >= self.n or self.toks[j].text != "(":
            return None

        close = self._match(j, "(", ")")
        if close is None:
            return None
        k = close + 1
        # Qualifiers between ')' and '{' / ';': const noexcept override
        # final && & -> Type : init-list. A ';' or '=' (default/delete/pure)
        # means declaration, '{' means definition.
        saw_init_colon = False
        depth = 0
        while k < self.n:
            t = self.toks[k]
            if t.kind == "punct":
                if t.text in ("(", "<", "["):
                    depth += 1
                elif t.text in (")", ">", "]"):
                    depth -= 1
                elif depth <= 0:
                    if t.text == ";":
                        return None
                    if t.text == "=" and not saw_init_colon:
                        return None  # = default / = delete / = 0
                    if t.text == ":":
                        saw_init_colon = True
                    elif t.text == "{":
                        break
            k += 1
        if k >= self.n:
            return None

        body_end = self._match(k, "{", "}")
        if body_end is None:
            body_end = self.n - 1

        name = parts[-1]
        explicit_cls = parts[-2] if len(parts) >= 2 else ""
        scope_cls = next((nm for kd, nm in reversed(stack) if kd == "class"),
                         "")
        namespaces = "::".join(nm for kd, nm in stack if kd == "namespace")
        fn = FunctionDef(
            name=name,
            cls=explicit_cls or scope_cls,
            namespace=namespaces,
            path=self.lf.path,
            start_line=self.toks[i].line,
            body_start=self.toks[k].line,
            end_line=self.toks[body_end].line,
        )
        fn.calls = self._extract_calls(k + 1, body_end)
        # Parameter-list defaults can call too (rare; include them).
        fn.calls += self._extract_calls(j + 1, close)
        self.defs.append(fn)
        return body_end + 1

    def _operator_name(self, j: int):
        """j is at 'operator'. Returns (name, index past the symbol)."""
        k = j + 1
        if k >= self.n:
            return None, k
        t = self.toks[k]
        if t.kind == "punct":
            sym = t.text
            k += 1
            # operator() / operator[]
            if sym == "(" and k < self.n and self.toks[k].text == ")":
                sym, k = "()", k + 1
            elif sym == "[" and k < self.n and self.toks[k].text == "]":
                sym, k = "[]", k + 1
            return "operator" + sym, k
        if t.kind == "ident":  # operator bool, conversion operators
            while k < self.n and (self.toks[k].kind == "ident" or
                                  self.toks[k].text in ("::", "*", "&", "<",
                                                        ">")):
                if self.toks[k].text == "(":
                    break
                k += 1
            return "operator-conv", k
        return None, k

    # --- call-site extraction --------------------------------------------

    def _extract_calls(self, start: int, end: int) -> list:
        calls: list = []
        for j in range(start, end):
            t = self.toks[j]
            if t.kind != "ident" or t.text in NOT_A_CALL:
                continue
            if j + 1 >= self.n or self.toks[j + 1].text != "(":
                # name<...>(...): skip a balanced angle list.
                if j + 1 < self.n and self.toks[j + 1].text == "<":
                    close = self._match_angle(j + 1)
                    if close is None or close + 1 >= self.n or \
                            self.toks[close + 1].text != "(":
                        continue
                else:
                    continue
            prev = self.toks[j - 1] if j > start - 1 and j > 0 else None
            if prev is not None and prev.kind == "ident" and \
                    prev.text == "new":
                continue  # allocation, not a call (rules.py's territory)
            qualifier = ""
            is_member = False
            if prev is not None and prev.kind == "punct":
                if prev.text == "::" and j >= 2 and \
                        self.toks[j - 2].kind == "ident":
                    qualifier = self.toks[j - 2].text
                elif prev.text in (".", "->"):
                    is_member = True
            calls.append(CallSite(name=t.text, qualifier=qualifier,
                                  is_member=is_member, line=t.line))
        return calls

    # --- token helpers ----------------------------------------------------

    def _match(self, i: int, open_t: str, close_t: str):
        depth = 0
        for j in range(i, self.n):
            txt = self.toks[j].text
            if self.toks[j].kind != "punct":
                continue
            if txt == open_t:
                depth += 1
            elif txt == close_t:
                depth -= 1
                if depth == 0:
                    return j
        return None

    def _match_angle(self, i: int):
        """Balanced <...> with a sanity cap (comparison operators bail)."""
        depth = 0
        for j in range(i, min(i + 64, self.n)):
            t = self.toks[j]
            if t.kind != "punct":
                continue
            if t.text == "<":
                depth += 1
            elif t.text == ">":
                depth -= 1
                if depth == 0:
                    return j
            elif t.text in (";", "{", "}", "&&", "||"):
                return None
        return None

    def _skip_to(self, i: int, stop: str) -> int:
        for j in range(i, self.n):
            if self.toks[j].kind == "punct" and self.toks[j].text == stop:
                return j
        return self.n - 1
