// Fig. 13 / §4 — distributions of flow throughput and link loss rate in
// the 128-host FatTree under TP1, for SINGLE-PATH / EWTCP / MPTCP.
//
// Output format follows the figure: "rank of flow -> throughput" for a
// set of rank quantiles, and "rank of link -> loss rate" for core links
// and access links separately. Paper's shape: MPTCP's throughput curve is
// higher and much flatter (fairer) than EWTCP's; single-path has a long
// tail of starved flows. MPTCP also balances core-link loss best.
#include "cc/ewtcp.hpp"
#include "cc/mptcp_lia.hpp"
#include "datacenter.hpp"

namespace mpsim {
namespace {

struct Dist {
  std::vector<double> flow_mbps;      // sorted ascending
  std::vector<double> core_loss_pct;  // sorted ascending
  std::vector<double> access_loss_pct;
};

Dist run(const cc::CongestionControl* algo) {
  EventList events;
  topo::Network net(events);
  topo::FatTree ft(net, 8);
  Rng tm_rng(4243);
  auto tm = traffic::permutation_tm(ft.num_hosts(), tm_rng);
  bench::DcConfig cfg;
  cfg.algo = algo;
  cfg.npaths = 8;
  cfg.warmup_sec = 1.0 * bench::time_scale();
  cfg.measure_sec = 3.0 * bench::time_scale();
  auto result = bench::run_dc(
      events,
      [&](int s, int d, int n, Rng& rng) {
        return bench::fattree_paths(ft, s, d, n, rng);
      },
      ft.num_hosts(), tm, cfg);

  Dist dist;
  dist.flow_mbps = stats::rank_sorted(result.per_flow_mbps);
  for (const auto* q : ft.core_queues()) {
    dist.core_loss_pct.push_back(100.0 * q->loss_rate());
  }
  for (const auto* q : ft.access_queues()) {
    dist.access_loss_pct.push_back(100.0 * q->loss_rate());
  }
  dist.core_loss_pct = stats::rank_sorted(dist.core_loss_pct);
  dist.access_loss_pct = stats::rank_sorted(dist.access_loss_pct);
  return dist;
}

double at_quantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1));
  return sorted[idx];
}

}  // namespace
}  // namespace mpsim

int main() {
  using namespace mpsim;
  bench::banner(
      "Fig. 13 / §4: FatTree TP1 rank distributions",
      "flow-throughput curve: MPTCP higher & flatter than EWTCP; "
      "single-path has a starved tail. Loss balanced best by MPTCP");

  const Dist single = run(nullptr);
  const Dist ewtcp = run(&cc::ewtcp());
  const Dist mptcp = run(&cc::mptcp_lia());

  std::printf("flow throughput (Mb/s) by rank quantile:\n");
  stats::Table ft({"quantile", "SINGLE", "EWTCP", "MPTCP"});
  for (double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0}) {
    ft.add_row(stats::fmt_double(100 * q, 0) + "%",
               {at_quantile(single.flow_mbps, q),
                at_quantile(ewtcp.flow_mbps, q),
                at_quantile(mptcp.flow_mbps, q)},
               1);
  }
  ft.print();

  std::printf("\nJain index over flow throughputs: SINGLE %.3f, "
              "EWTCP %.3f, MPTCP %.3f\n",
              stats::jain_index(single.flow_mbps),
              stats::jain_index(ewtcp.flow_mbps),
              stats::jain_index(mptcp.flow_mbps));

  std::printf("\ncore-link loss rate (%%) by rank quantile:\n");
  stats::Table lt({"quantile", "SINGLE", "EWTCP", "MPTCP"});
  for (double q : {0.5, 0.75, 0.9, 0.99, 1.0}) {
    lt.add_row(stats::fmt_double(100 * q, 0) + "%",
               {at_quantile(single.core_loss_pct, q),
                at_quantile(ewtcp.core_loss_pct, q),
                at_quantile(mptcp.core_loss_pct, q)},
               3);
  }
  lt.print();

  std::printf("\naccess-link loss rate (%%) by rank quantile:\n");
  stats::Table at({"quantile", "SINGLE", "EWTCP", "MPTCP"});
  for (double q : {0.5, 0.9, 1.0}) {
    at.add_row(stats::fmt_double(100 * q, 0) + "%",
               {at_quantile(single.access_loss_pct, q),
                at_quantile(ewtcp.access_loss_pct, q),
                at_quantile(mptcp.access_loss_pct, q)},
               3);
  }
  at.print();
  return 0;
}
