#include "mptcp/path_manager.hpp"

#include <algorithm>

#include "core/check.hpp"
#include "mptcp/connection.hpp"

namespace mpsim::mptcp {

PathManager::PathManager(EventList& events, MptcpConnection& conn,
                         const PathManagerConfig& cfg)
    : EventSource(events, conn.name() + "/pm"),
      events_(events),
      conn_(conn),
      cfg_(cfg) {
  MPSIM_CHECK(cfg_.max_subflows > 0, "path manager needs max_subflows >= 1");
  MPSIM_CHECK(cfg_.scan_period > 0, "path manager needs a positive period");
}

PathManager::~PathManager() { events_.cancel(*this); }

void PathManager::add_candidate(std::vector<net::PacketSink*> fwd,
                                std::vector<net::PacketSink*> rev) {
  candidates_.push_back(Candidate{std::move(fwd), std::move(rev)});
}

void PathManager::start(SimTime at) {
  if (started_) return;
  started_ = true;
  events_.schedule_at(*this, at);
}

void PathManager::open_next_candidate() {
  MPSIM_CHECK(!candidates_.empty(), "no candidate paths registered");
  const Candidate& c = candidates_[next_candidate_ % candidates_.size()];
  ++next_candidate_;
  conn_.add_subflow(c.fwd, c.rev);
  ++opened_;
}

void PathManager::open_initial() {
  switch (cfg_.strategy) {
    case PathStrategy::kFullMesh:
      // Every registered path at once (the kernel fullmesh default).
      while (next_candidate_ < candidates_.size() &&
             conn_.num_subflows() < cfg_.max_subflows) {
        open_next_candidate();
      }
      break;
    case PathStrategy::kNDiffPorts: {
      const std::size_t target = std::min(cfg_.ndiffports, cfg_.max_subflows);
      while (conn_.num_subflows() < target && !candidates_.empty()) {
        open_next_candidate();
      }
      break;
    }
    case PathStrategy::kThreshold:
      // Start single-path; scans add more as bytes are delivered.
      if (conn_.num_subflows() == 0 && !candidates_.empty()) {
        open_next_candidate();
      }
      break;
  }
  MPSIM_CHECK(conn_.num_subflows() > 0,
              "path manager started a connection with no subflows");
}

void PathManager::on_event() {
  if (!opened_initial_) {
    opened_initial_ = true;
    open_initial();
  }
  scan();
  // Stop rescheduling once the transfer is fully acknowledged: a manager
  // that kept scanning would pin its completed connection in the event
  // list forever and churn-scale reclamation could never drain.
  if (conn_.complete()) return;
  events_.schedule_at(*this, events_.now() + cfg_.scan_period);
}

void PathManager::scan() {
  const SimTime now = events_.now();

  // Threshold adds: one new subflow per add_threshold_bytes delivered
  // (htsim SubflowControl's byte counter), while unused candidates remain.
  if (cfg_.strategy == PathStrategy::kThreshold &&
      cfg_.add_threshold_bytes > 0) {
    const std::uint64_t delivered =
        conn_.scheduler().data_cum_ack() * net::kDataPacketBytes;
    if (delivered - last_add_bytes_ >= cfg_.add_threshold_bytes &&
        conn_.num_subflows() < cfg_.max_subflows &&
        next_candidate_ < candidates_.size()) {
      open_next_candidate();
      last_add_bytes_ = delivered;
    }
  }

  // Dead-path detection and re-probe, all strategies. The connection may
  // also grow subflows behind our back (direct add_subflow calls); the
  // watch table tracks whatever rows exist.
  // mpsim-analyze: allow(hot-alloc)
  if (watch_.size() < conn_.num_subflows()) watch_.resize(conn_.num_subflows());
  for (std::size_t r = 0; r < conn_.num_subflows(); ++r) {
    Watch& w = watch_[r];
    const tcp::Subflow& sf = conn_.subflow(r);
    if (sf.active()) {
      const std::uint64_t timeouts = sf.timeouts();
      const std::uint64_t acked = sf.packets_acked();
      if (acked > w.last_acked) {
        w.stalled_rtos = 0;  // forward progress clears the strike count
      } else if (timeouts > w.last_timeouts) {
        w.stalled_rtos +=
            static_cast<std::uint32_t>(timeouts - w.last_timeouts);
      }
      w.last_timeouts = timeouts;
      w.last_acked = acked;
      if (w.stalled_rtos >= cfg_.dead_after_rtos &&
          conn_.num_active_subflows() > 1) {
        // Repeated RTOs, nothing acked: the path is dead. Never drop the
        // last active subflow — with no sibling to carry the stream the
        // right behaviour is to keep backing off, not to go silent.
        conn_.drop_subflow(r, /*rto_dead=*/true);
        w.dropped_at = now;
        w.stalled_rtos = 0;
        ++dropped_;
      }
    } else if (w.dropped_at != kNever &&
               now - w.dropped_at >= cfg_.reprobe_backoff) {
      // Our drop, backoff elapsed: probe the path again from slow start.
      conn_.reactivate_subflow(r);
      w.dropped_at = kNever;
      w.last_timeouts = sf.timeouts();
      w.last_acked = sf.packets_acked();
      w.stalled_rtos = 0;
      ++reprobes_;
    }
    // (inactive with dropped_at == kNever: someone else deactivated it;
    // leave their decision alone.)
  }
}

}  // namespace mpsim::mptcp
