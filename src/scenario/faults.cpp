#include "scenario/faults.hpp"

#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

#include "mptcp/connection.hpp"

namespace mpsim::scenario {

namespace {

constexpr const char* kKnownActions =
    "down, up, rate, ramp, loss, loss_burst, drain, corrupt, reset";

std::vector<std::string> split_tokens(const std::string& text) {
  std::vector<std::string> tokens;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && (text[i] == ' ' || text[i] == '\t')) ++i;
    std::size_t start = i;
    while (i < text.size() && text[i] != ' ' && text[i] != '\t') ++i;
    if (i > start) tokens.push_back(text.substr(start, i - start));
  }
  return tokens;
}

double parse_number_token(const Section& sec, int line,
                          const std::string& token, const char* what) {
  const char* begin = token.c_str();
  char* end = nullptr;
  const double v = std::strtod(begin, &end);
  if (end == begin || *end != '\0') {
    sec.fail_at(line, std::string("fault ") + what + " is not a number: '" +
                          token + "'");
  }
  return v;
}

int parse_int_token(const Section& sec, int line, const std::string& token,
                    const char* what) {
  const char* begin = token.c_str();
  char* end = nullptr;
  const long v = std::strtol(begin, &end, 10);
  if (end == begin || *end != '\0') {
    sec.fail_at(line, std::string("fault ") + what +
                          " is not an integer: '" + token + "'");
  }
  return static_cast<int>(v);
}

// One-element arrays and bare scalars are interchangeable, matching the
// typed array accessors.
std::vector<const Value*> collect_items(const Section& sec,
                                        const std::string& key) {
  const Value* v = sec.find(key);
  std::vector<const Value*> items;
  if (v == nullptr) return items;
  if (v->kind == Value::Kind::kArray) {
    for (const Value& item : v->items) items.push_back(&item);
  } else {
    items.push_back(v);
  }
  for (const Value* item : items) {
    if (item->kind != Value::Kind::kString) {
      sec.fail_at(item->line, "[faults] " + key +
                                  " entries must be strings, got " +
                                  item->kind_name());
    }
  }
  return items;
}

const fault::Target& resolve_target(const Section& sec, int line,
                                    const fault::TargetRegistry& targets,
                                    const std::string& name) {
  const fault::Target* t = targets.find(name);
  if (t == nullptr) {
    sec.fail_at(line, "unknown fault target '" + name +
                          "' (known: " + targets.known_names() + ")");
  }
  return *t;
}

void require_kind(const Section& sec, int line, const fault::Target& t,
                  const std::string& action, bool ok, const char* needs) {
  if (!ok) {
    sec.fail_at(line, "fault target '" + t.name + "' is a " +
                          fault::target_kind_name(t.kind) + "; '" + action +
                          "' needs a " + needs);
  }
}

// A down/up edge, for the per-target overlap state machine.
struct Edge {
  SimTime at = 0;
  bool down = false;
  int line = 0;
  std::string target;
};

void check_edges(const Section& sec, std::vector<Edge>& edges) {
  std::stable_sort(edges.begin(), edges.end(),
                   [](const Edge& a, const Edge& b) { return a.at < b.at; });
  std::vector<std::string> down_targets;
  for (const Edge& e : edges) {
    const auto it =
        std::find(down_targets.begin(), down_targets.end(), e.target);
    if (e.down) {
      if (it != down_targets.end()) {
        sec.fail_at(e.line, "overlapping 'down'/'down' on target '" +
                                e.target + "' (it is already down)");
      }
      down_targets.push_back(e.target);
    } else {
      if (it == down_targets.end()) {
        sec.fail_at(e.line, "'up' without a preceding 'down' on target '" +
                                e.target + "'");
      }
      down_targets.erase(it);
    }
  }
}

}  // namespace

ParsedFaults parse_fault_plan(const Section& sec,
                              const fault::TargetRegistry& targets,
                              const BuildEnv& env) {
  ParsedFaults out;
  out.recovery_poll =
      env.scaled(sec.get_time("recovery_poll", from_ms(1)));
  if (out.recovery_poll <= 0) {
    sec.fail("recovery_poll must be positive");
  }

  std::vector<Edge> edges;

  for (const Value* item : collect_items(sec, "script")) {
    const int line = item->line;
    const std::vector<std::string> tok = split_tokens(item->str);
    if (tok.size() < 3) {
      sec.fail_at(line,
                  "fault script entry needs '<time> <action> [args...] "
                  "<target>', got '" + item->str + "'");
    }
    const SimTime at = env.scaled(parse_time(tok[0], sec.file(), line));
    if (at < 0) sec.fail_at(line, "fault time must be non-negative");
    const std::string& action = tok[1];
    const std::string& target_name = tok.back();
    const fault::Target& target =
        resolve_target(sec, line, targets, target_name);
    const std::size_t args = tok.size() - 3;  // between action and target

    fault::FaultEvent ev;
    ev.at = at;
    ev.target = target_name;

    auto want_args = [&](std::size_t n, const char* usage) {
      if (args != n) {
        sec.fail_at(line, "'" + action + "' needs '" + usage + "', got '" +
                              item->str + "'");
      }
    };

    if (action == "down") {
      want_args(0, "<time> down <target>");
      require_kind(sec, line, target, action, target.vqueue != nullptr,
                   "variable-rate queue");
      ev.action = fault::Action::kDown;
      edges.push_back({at, true, line, target_name});
    } else if (action == "up") {
      if (args > 1) {
        sec.fail_at(line, "'up' needs '<time> up [rate] <target>', got '" +
                              item->str + "'");
      }
      require_kind(sec, line, target, action, target.vqueue != nullptr,
                   "variable-rate queue");
      ev.action = fault::Action::kUp;
      if (args == 1) {
        ev.value = parse_rate_bps(tok[2], sec.file(), line);
      }
      edges.push_back({at, false, line, target_name});
    } else if (action == "rate") {
      want_args(1, "<time> rate <rate> <target>");
      require_kind(sec, line, target, action, target.vqueue != nullptr,
                   "variable-rate queue");
      ev.action = fault::Action::kRate;
      ev.value = parse_rate_bps(tok[2], sec.file(), line);
    } else if (action == "ramp") {
      want_args(3, "<time> ramp <rate> <duration> <steps> <target>");
      require_kind(sec, line, target, action, target.vqueue != nullptr,
                   "variable-rate queue");
      ev.action = fault::Action::kRamp;
      ev.value = parse_rate_bps(tok[2], sec.file(), line);
      ev.duration = env.scaled(parse_time(tok[3], sec.file(), line));
      if (ev.duration <= 0) {
        sec.fail_at(line, "ramp duration must be positive");
      }
      ev.count = parse_int_token(sec, line, tok[4], "ramp step count");
      if (ev.count < 1) sec.fail_at(line, "ramp needs at least one step");
    } else if (action == "loss") {
      want_args(1, "<time> loss <probability> <target>");
      require_kind(sec, line, target, action, target.lossy != nullptr,
                   "loss element");
      ev.action = fault::Action::kLoss;
      ev.value = parse_number_token(sec, line, tok[2], "loss probability");
      if (ev.value < 0.0 || ev.value > 1.0) {
        sec.fail_at(line, "loss probability must be in [0, 1]");
      }
    } else if (action == "loss_burst") {
      want_args(2, "<time> loss_burst <probability> <duration> <target>");
      require_kind(sec, line, target, action, target.lossy != nullptr,
                   "loss element");
      ev.action = fault::Action::kLossBurst;
      ev.value = parse_number_token(sec, line, tok[2], "loss probability");
      if (ev.value < 0.0 || ev.value > 1.0) {
        sec.fail_at(line, "loss probability must be in [0, 1]");
      }
      ev.duration = env.scaled(parse_time(tok[3], sec.file(), line));
      if (ev.duration <= 0) {
        sec.fail_at(line, "loss burst duration must be positive");
      }
    } else if (action == "drain") {
      want_args(0, "<time> drain <target>");
      require_kind(sec, line, target, action, target.queue != nullptr,
                   "queue");
      ev.action = fault::Action::kDrain;
    } else if (action == "corrupt") {
      want_args(1, "<time> corrupt <packets> <target>");
      require_kind(sec, line, target, action, target.queue != nullptr,
                   "queue");
      ev.action = fault::Action::kCorrupt;
      ev.count = parse_int_token(sec, line, tok[2], "corrupt packet count");
      if (ev.count < 1) {
        sec.fail_at(line, "corrupt needs a packet count >= 1");
      }
    } else if (action == "reset") {
      want_args(1, "<time> reset <subflow-index> <target>");
      require_kind(sec, line, target, action, target.conn != nullptr,
                   "connection");
      ev.action = fault::Action::kReset;
      ev.count = parse_int_token(sec, line, tok[2], "reset subflow index");
      if (ev.count < 0 ||
          static_cast<std::size_t>(ev.count) >= target.conn->num_subflows()) {
        sec.fail_at(line, "subflow index " + std::to_string(ev.count) +
                              " out of range for connection '" + target_name +
                              "' (has " +
                              std::to_string(target.conn->num_subflows()) +
                              " subflows)");
      }
    } else {
      sec.fail_at(line, "unknown fault action '" + action +
                            "' (known: " + kKnownActions + ")");
    }
    out.plan.events.push_back(std::move(ev));
  }

  for (const Value* item : collect_items(sec, "flap")) {
    const int line = item->line;
    const std::vector<std::string> tok = split_tokens(item->str);
    if (tok.empty()) {
      sec.fail_at(line,
                  "flap entry needs '<target> start=<t> period=<t> "
                  "down=<t> count=<n>'");
    }
    const std::string& target_name = tok[0];
    const fault::Target& target =
        resolve_target(sec, line, targets, target_name);
    require_kind(sec, line, target, "flap", target.vqueue != nullptr,
                 "variable-rate queue");
    SimTime start = 0, period = 0, down = 0;
    int count = 0;
    bool saw_start = false, saw_period = false, saw_down = false,
         saw_count = false;
    for (std::size_t i = 1; i < tok.size(); ++i) {
      const std::size_t eq = tok[i].find('=');
      if (eq == std::string::npos) {
        sec.fail_at(line, "flap parameter '" + tok[i] +
                              "' is not of the form key=value");
      }
      const std::string key = tok[i].substr(0, eq);
      const std::string val = tok[i].substr(eq + 1);
      if (key == "start") {
        start = env.scaled(parse_time(val, sec.file(), line));
        saw_start = true;
      } else if (key == "period") {
        period = env.scaled(parse_time(val, sec.file(), line));
        saw_period = true;
      } else if (key == "down") {
        down = env.scaled(parse_time(val, sec.file(), line));
        saw_down = true;
      } else if (key == "count") {
        count = parse_int_token(sec, line, val, "flap count");
        saw_count = true;
      } else {
        sec.fail_at(line, "unknown flap parameter '" + key +
                              "' (known: start, period, down, count)");
      }
    }
    if (!saw_start || !saw_period || !saw_down || !saw_count) {
      sec.fail_at(line, "flap needs all of start=, period=, down=, count=");
    }
    if (start < 0) sec.fail_at(line, "flap start must be non-negative");
    if (down <= 0 || period <= down) {
      sec.fail_at(line, "flap needs 0 < down < period");
    }
    if (count < 1) sec.fail_at(line, "flap count must be >= 1");
    for (fault::FaultEvent& ev :
         fault::flap_train(target_name, start, period, down, count)) {
      edges.push_back(
          {ev.at, ev.action == fault::Action::kDown, line, target_name});
      out.plan.events.push_back(std::move(ev));
    }
  }

  std::size_t outage_index = 0;
  for (const Value* item : collect_items(sec, "random_outage")) {
    const int line = item->line;
    const std::vector<std::string> tok = split_tokens(item->str);
    if (tok.empty()) {
      sec.fail_at(line,
                  "random_outage entry needs '<target> mean_up=<t> "
                  "mean_down=<t> until=<t> [seed=<n>]'");
    }
    fault::RandomOutage ro;
    ro.target = tok[0];
    ro.salt = outage_index++;
    const fault::Target& target =
        resolve_target(sec, line, targets, ro.target);
    require_kind(sec, line, target, "random_outage",
                 target.vqueue != nullptr, "variable-rate queue");
    for (const Edge& e : edges) {
      if (e.target == ro.target) {
        sec.fail_at(line, "target '" + ro.target +
                              "' has both a random outage process and "
                              "scripted down/up events; keep them on "
                              "separate targets");
      }
    }
    for (std::size_t i = 1; i < tok.size(); ++i) {
      const std::size_t eq = tok[i].find('=');
      if (eq == std::string::npos) {
        sec.fail_at(line, "random_outage parameter '" + tok[i] +
                              "' is not of the form key=value");
      }
      const std::string key = tok[i].substr(0, eq);
      const std::string val = tok[i].substr(eq + 1);
      if (key == "mean_up") {
        ro.mean_up = env.scaled(parse_time(val, sec.file(), line));
      } else if (key == "mean_down") {
        ro.mean_down = env.scaled(parse_time(val, sec.file(), line));
      } else if (key == "until") {
        ro.until = env.scaled(parse_time(val, sec.file(), line));
      } else if (key == "seed") {
        ro.salt = static_cast<std::uint64_t>(
            parse_int_token(sec, line, val, "random_outage seed"));
      } else {
        sec.fail_at(line,
                    "unknown random_outage parameter '" + key +
                        "' (known: mean_up, mean_down, until, seed)");
      }
    }
    if (ro.mean_up <= 0 || ro.mean_down <= 0 || ro.until <= 0) {
      sec.fail_at(line,
                  "random_outage needs positive mean_up=, mean_down= and "
                  "until=");
    }
    out.plan.random.push_back(std::move(ro));
  }

  check_edges(sec, edges);
  return out;
}

}  // namespace mpsim::scenario
