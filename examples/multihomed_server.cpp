// Example: load balancing at a multihomed server (§3 scenario).
//
// A server has two upstream links. Clients arrive unevenly: most of them
// connect over link 2. A handful of multipath-capable clients then join,
// able to use both links — and even though they are a minority of flows,
// their coupled congestion control shifts traffic toward the idle link
// and evens out everyone's throughput, doing at transport timescales what
// operators otherwise attempt with BGP prefix-splitting tricks.
//
// Run: ./multihomed_server [num_multipath_flows]
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "cc/mptcp_lia.hpp"
#include "example_trace.hpp"
#include "mptcp/connection.hpp"
#include "stats/monitors.hpp"
#include "stats/summary.hpp"
#include "topo/network.hpp"
#include "topo/two_link.hpp"

int main(int argc, char** argv) {
  using namespace mpsim;
  const int num_mp = argc > 1 ? std::atoi(argv[1]) : 10;

  EventList events;
  examples::ExampleTrace et(events, "multihomed_server");
  topo::Network net(events);
  topo::LinkSpec spec;
  spec.rate_bps = 100e6;
  spec.one_way_delay = from_ms(5);
  spec.buf_bytes = topo::bdp_bytes(spec.rate_bps, from_ms(10));
  topo::TwoLink links(net, spec, spec);

  // 5 single-path clients on link 1, 15 on link 2: a 3x load imbalance.
  std::vector<std::unique_ptr<mptcp::MptcpConnection>> clients;
  for (int i = 0; i < 5; ++i) {
    clients.push_back(mptcp::make_single_path_tcp(
        events, "client-l1-" + std::to_string(i), links.fwd(0),
        links.rev(0)));
    clients.back()->start(from_ms(41 * i));
  }
  for (int i = 0; i < 15; ++i) {
    clients.push_back(mptcp::make_single_path_tcp(
        events, "client-l2-" + std::to_string(i), links.fwd(1),
        links.rev(1)));
    clients.back()->start(from_ms(29 * i));
  }

  // Multipath clients join after 30 s, able to use both links.
  std::vector<std::unique_ptr<mptcp::MptcpConnection>> mp;
  for (int i = 0; i < num_mp; ++i) {
    auto conn = std::make_unique<mptcp::MptcpConnection>(
        events, "mp-" + std::to_string(i), cc::mptcp_lia());
    conn->add_subflow(links.fwd(0), links.rev(0));
    conn->add_subflow(links.fwd(1), links.rev(1));
    conn->start(from_sec(30) + from_ms(37 * i));
    mp.push_back(std::move(conn));
  }

  auto report = [&](const char* phase, SimTime from, SimTime to) {
    std::vector<std::uint64_t> base;
    for (auto& c : clients) base.push_back(c->delivered_pkts());
    std::vector<std::uint64_t> mbase;
    for (auto& c : mp) mbase.push_back(c->delivered_pkts());
    events.run_until(to);
    const SimTime dt = to - from;
    std::vector<double> all;
    double l1 = 0.0, l2 = 0.0, mpr = 0.0;
    for (std::size_t i = 0; i < clients.size(); ++i) {
      const double v =
          stats::pkts_to_mbps(clients[i]->delivered_pkts() - base[i], dt);
      all.push_back(v);
      (i < 5 ? l1 : l2) += v;
    }
    for (std::size_t i = 0; i < mp.size(); ++i) {
      const double v =
          stats::pkts_to_mbps(mp[i]->delivered_pkts() - mbase[i], dt);
      all.push_back(v);
      mpr += v;
    }
    std::printf("%-28s link1 TCPs %5.1f  link2 TCPs %5.1f  multipath %5.1f  "
                "Jain %.3f\n",
                phase, l1, l2, mpr, stats::jain_index(all));
  };

  std::printf("aggregate goodput (Mb/s) per group:\n");
  events.run_until(from_sec(10));
  report("before multipath joins:", from_sec(10), from_sec(30));
  report("multipath ramping up:", from_sec(30), from_sec(60));
  report("steady state:", from_sec(60), from_sec(120));

  // Where did the multipath flows put their traffic?
  std::uint64_t on1 = 0, on2 = 0;
  for (auto& c : mp) {
    on1 += c->subflow(0).packets_acked();
    on2 += c->subflow(1).packets_acked();
  }
  if (on1 + on2 > 0) {
    std::printf("\nmultipath flows sent %.0f%% of their packets over the "
                "lightly-loaded link 1\n",
                100.0 * static_cast<double>(on1) /
                    static_cast<double>(on1 + on2));
  }
  return 0;
}
