#include "stats/summary.hpp"

#include <algorithm>
#include <cmath>

#include "core/check.hpp"

namespace mpsim::stats {

double jain_index(const std::vector<double>& xs) {
  if (xs.empty()) return 1.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double x : xs) {
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq == 0.0) return 1.0;
  return sum * sum / (static_cast<double>(xs.size()) * sum_sq);
}

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double stddev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

double minimum(const std::vector<double>& xs) {
  MPSIM_CHECK(!xs.empty(), "minimum of an empty sample");
  return *std::min_element(xs.begin(), xs.end());
}

double maximum(const std::vector<double>& xs) {
  MPSIM_CHECK(!xs.empty(), "maximum of an empty sample");
  return *std::max_element(xs.begin(), xs.end());
}

double percentile(std::vector<double> xs, double q) {
  MPSIM_CHECK(!xs.empty() && q >= 0.0 && q <= 1.0,
              "percentile needs data and q in [0, 1]");
  std::sort(xs.begin(), xs.end());
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(xs.size() - 1) + 0.5);
  return xs[idx];
}

std::vector<double> rank_sorted(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  return xs;
}

}  // namespace mpsim::stats
