// Summary statistics used by the paper's evaluation: Jain's fairness index
// (§3: 0.99 / 0.986 / 0.92 on the torus), rank distributions (Fig. 13), and
// basic aggregates.
#pragma once

#include <vector>

namespace mpsim::stats {

// Jain's fairness index: (sum x)^2 / (n * sum x^2). 1.0 = perfectly fair.
double jain_index(const std::vector<double>& xs);

double mean(const std::vector<double>& xs);
double stddev(const std::vector<double>& xs);
double minimum(const std::vector<double>& xs);
double maximum(const std::vector<double>& xs);

// Value at quantile q in [0,1] using nearest-rank on a copy.
double percentile(std::vector<double> xs, double q);

// Sorted ascending — the "rank of flow/link" x-axis of Fig. 13.
std::vector<double> rank_sorted(std::vector<double> xs);

}  // namespace mpsim::stats
