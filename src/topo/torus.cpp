#include "topo/torus.hpp"

#include <string>

namespace mpsim::topo {

Torus::Torus(Network& net, const std::array<double, kLinks>& rates_pps) {
  const SimTime one_way = kRtt / 2;
  for (int i = 0; i < kLinks; ++i) {
    const double bps = pkts_per_sec_to_bps(rates_pps[i]);
    const std::string name = "torus" + std::string(1, char('A' + i));
    links_[i] = net.add_link(name, bps, one_way, bdp_bytes(bps, kRtt, 1.0));
    ack_[i] = &net.add_pipe(name + "/ack", one_way);
  }
}

Path Torus::fwd(int flow, int path) const {
  return path_of({&links_[link_of(flow, path)]});
}

Path Torus::rev(int flow, int path) const {
  return {ack_[link_of(flow, path)]};
}

}  // namespace mpsim::topo
