// Reproducibility: identical configurations produce bit-identical
// results; different seeds differ. Every experiment in bench/ relies on
// this property.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cc/mptcp_lia.hpp"
#include "mptcp/connection.hpp"
#include "net/cbr.hpp"
#include "sim_fixtures.hpp"
#include "topo/fat_tree.hpp"
#include "topo/network.hpp"
#include "traffic/traffic_matrix.hpp"

namespace mpsim {
namespace {

struct RunStats {
  std::uint64_t delivered;
  std::uint64_t acked0;
  std::uint64_t acked1;
  std::uint64_t loss0;
  std::uint64_t events;

  bool operator==(const RunStats&) const = default;
};

RunStats run_two_link(std::uint64_t cbr_seed,
                      SchedulerKind kind = SchedulerKind::kAuto) {
  EventList events(kind);
  if (kind == SchedulerKind::kAdaptive) {
    // Thresholds low enough that this small sim (tens of pending events)
    // genuinely migrates back and forth instead of staying on the heap.
    events.set_adaptive_policy(/*high=*/16, /*low=*/4, /*cooldown=*/64);
  }
  topo::Network net(events);
  auto l1 = net.add_link("l1", 10e6, from_ms(10),
                         topo::bdp_bytes(10e6, from_ms(20)));
  auto& a1 = net.add_pipe("a1", from_ms(10));
  auto l2 = net.add_link("l2", 10e6, from_ms(10),
                         topo::bdp_bytes(10e6, from_ms(20)));
  auto& a2 = net.add_pipe("a2", from_ms(10));

  net::CountingSink sink("cbrsink");
  topo::Path cbr_path = topo::path_of({&l1});
  cbr_path.push_back(&sink);
  net::Route cbr_route(cbr_path);
  net::OnOffCbrSource cbr(events, "cbr", cbr_route, 10e6, from_ms(20),
                          from_ms(80), cbr_seed);

  mptcp::MptcpConnection mp(events, "mp", cc::mptcp_lia());
  mp.add_subflow(topo::path_of({&l1}), {&a1});
  mp.add_subflow(topo::path_of({&l2}), {&a2});
  cbr.start(0);
  mp.start(from_ms(7));
  events.run_until(from_sec(20));
  return {mp.delivered_pkts(), mp.subflow(0).packets_acked(),
          mp.subflow(1).packets_acked(), l1.queue->drops(),
          events.events_processed()};
}

TEST(Determinism, IdenticalRunsAreBitIdentical) {
  const RunStats a = run_two_link(42);
  const RunStats b = run_two_link(42);
  EXPECT_EQ(a, b);
}

TEST(Determinism, DifferentSeedsDiffer) {
  const RunStats a = run_two_link(42);
  const RunStats b = run_two_link(43);
  EXPECT_NE(a.events, b.events);
}

TEST(Determinism, HeapAndWheelSchedulersBitIdentical) {
  // The scheduler backend is an implementation detail: a full MPTCP+CBR
  // simulation must produce the same statistics — including the exact
  // event count — under the binary heap, the timing wheel, and the
  // adaptive migrator (forced to switch mid-run by low thresholds).
  const RunStats heap = run_two_link(42, SchedulerKind::kHeap);
  const RunStats wheel = run_two_link(42, SchedulerKind::kWheel);
  const RunStats adaptive = run_two_link(42, SchedulerKind::kAdaptive);
  EXPECT_EQ(heap, wheel);
  EXPECT_EQ(heap, adaptive);
}

// Randomized churn: the two backends must dispatch the exact same
// (time, source-id) sequence over >= 10^5 events, under a workload that
// stresses ties, zero-delay self-reschedules, slot boundaries, and
// beyond-horizon jumps that land in the wheel's overflow heap.
TEST(Determinism, SchedulerChurnEquivalence) {
  struct Churner : EventSource {
    Churner(EventList& e, int id, std::vector<std::pair<SimTime, int>>& log,
            std::uint64_t seed)
        : EventSource(e, "churn" + std::to_string(id)),
          events(e),
          id(id),
          log(log),
          rng(seed) {}
    void on_event() override {
      log.emplace_back(events.now(), id);
      if (log.size() >= 120'000) return;  // stop rescheduling; drain
      const double u = rng.next_double();
      SimTime delta;
      if (u < 0.15) {
        delta = 0;  // same-tick: exercises FIFO + mid-dispatch appends
      } else if (u < 0.55) {
        delta = static_cast<SimTime>(rng.next_double() * 300);
      } else if (u < 0.85) {
        delta = static_cast<SimTime>(rng.next_double() * (1 << 18));
      } else if (u < 0.99) {
        delta = static_cast<SimTime>(rng.next_double() * (1ll << 30));
      } else {
        // Past the wheel horizon: lands in the overflow heap.
        delta = (1ll << 34) + static_cast<SimTime>(rng.next_double() * 1e9);
      }
      events.schedule_in(*this, delta);
      // Occasionally double-schedule to keep multiple pending entries per
      // source in flight.
      if (rng.next_double() < 0.1) {
        events.schedule_in(*this, delta / 2);
      }
    }
    EventList& events;
    int id;
    std::vector<std::pair<SimTime, int>>& log;
    Rng rng;
  };

  std::uint64_t adaptive_switches = 0;
  auto run = [&adaptive_switches](SchedulerKind kind) {
    EventList events(kind);
    if (kind == SchedulerKind::kAdaptive) {
      // The churn holds ~16-32 entries pending; these thresholds sit
      // inside that band so occupancy noise drives repeated migrations.
      events.set_adaptive_policy(/*high=*/24, /*low=*/8, /*cooldown=*/100);
    }
    std::vector<std::pair<SimTime, int>> log;
    std::vector<std::unique_ptr<Churner>> churners;
    for (int i = 0; i < 16; ++i) {
      churners.push_back(std::make_unique<Churner>(
          events, i, log, 555 + static_cast<std::uint64_t>(i)));
      events.schedule_at(*churners.back(), i % 3);
    }
    events.run_all();
    if (kind == SchedulerKind::kAdaptive) {
      adaptive_switches = events.scheduler_switches();
    }
    return log;
  };

  const auto heap_log = run(SchedulerKind::kHeap);
  const auto wheel_log = run(SchedulerKind::kWheel);
  const auto adaptive_log = run(SchedulerKind::kAdaptive);
  ASSERT_GE(heap_log.size(), 100'000u);
  ASSERT_EQ(heap_log.size(), wheel_log.size());
  ASSERT_EQ(heap_log.size(), adaptive_log.size());
  EXPECT_GE(adaptive_switches, 2u)
      << "thresholds failed to force any migration; the adaptive leg "
      << "degenerated into a pure-backend rerun";
  for (std::size_t i = 0; i < heap_log.size(); ++i) {
    ASSERT_EQ(heap_log[i], wheel_log[i])
        << "dispatch sequences diverge at event " << i << ": heap ("
        << heap_log[i].first << ", src " << heap_log[i].second << ") vs "
        << "wheel (" << wheel_log[i].first << ", src "
        << wheel_log[i].second << ")";
    ASSERT_EQ(heap_log[i], adaptive_log[i])
        << "adaptive dispatch diverges at event " << i << " ("
        << adaptive_log[i].first << ", src " << adaptive_log[i].second
        << ")";
  }
}

TEST(Determinism, TrafficMatricesReproducible) {
  Rng a(7), b(7);
  auto tma = traffic::permutation_tm(64, a);
  auto tmb = traffic::permutation_tm(64, b);
  ASSERT_EQ(tma.size(), tmb.size());
  for (std::size_t i = 0; i < tma.size(); ++i) {
    EXPECT_EQ(tma[i].dst, tmb[i].dst);
  }
}

TEST(Determinism, FatTreePathSamplingReproducible) {
  EventList ev1, ev2;
  topo::Network n1(ev1), n2(ev2);
  topo::FatTree f1(n1, 4), f2(n2, 4);
  Rng r1(9), r2(9);
  auto p1 = f1.sample_paths(0, 15, 3, r1);
  auto p2 = f2.sample_paths(0, 15, 3, r2);
  ASSERT_EQ(p1.size(), p2.size());
  for (std::size_t i = 0; i < p1.size(); ++i) {
    // Structural equality: same element names along the path.
    ASSERT_EQ(p1[i].size(), p2[i].size());
    for (std::size_t h = 0; h < p1[i].size(); ++h) {
      EXPECT_EQ(p1[i][h]->sink_name(), p2[i][h]->sink_name());
    }
  }
}

}  // namespace
}  // namespace mpsim
