// Drop-tail FIFO queue with a finite byte buffer and a fixed service rate.
//
// The queue models the serialization of packets onto a link: one packet is
// "in service" at a time and departs after size*8/rate seconds, at which
// point it advances to the next hop (normally a Pipe carrying the link's
// propagation delay). Arrivals that would overflow the buffer are dropped at
// the tail and counted, giving each link's loss rate.
#pragma once

#include <cstdint>
#include <string>

#include "core/arena.hpp"
#include "core/event_list.hpp"
#include "net/packet.hpp"
#include "trace/trace.hpp"

namespace mpsim::net {

class Queue : public PacketSink, public EventSource {
 public:
  // `rate_bps` link speed; `max_bytes` buffer capacity (queued + in service).
  Queue(EventList& events, std::string name, double rate_bps,
        std::uint64_t max_bytes);

  void receive(Packet& pkt) override;
  void on_event() override;
  const std::string& sink_name() const override { return EventSource::name(); }

  // Fault-injection primitive: drop up to `max_pkts` waiting packets from
  // the tail (the packet in service is not interrupted). Models buffer
  // corruption (small counts) and a full drain (SIZE_MAX). Dropped packets
  // count as drops and emit queue_drop trace records, exactly like
  // drop-tail losses. Returns how many packets were dropped.
  std::size_t drop_waiting(std::size_t max_pkts);

  // --- statistics ---
  std::uint64_t arrivals() const { return h_.arrivals; }
  std::uint64_t drops() const { return h_.drops; }
  std::uint64_t departures() const { return h_.departures; }
  std::uint64_t bytes_forwarded() const { return h_.bytes_forwarded; }
  double loss_rate() const {
    return h_.arrivals == 0 ? 0.0
                            : static_cast<double>(h_.drops) / h_.arrivals;
  }
  void reset_stats();

  std::uint64_t queued_bytes() const { return h_.queued_bytes; }
  std::size_t queued_packets() const { return fifo_.size() + (busy_ ? 1 : 0); }
  double rate_bps() const { return rate_bps_; }
  std::uint64_t capacity_bytes() const { return max_bytes_; }
  // This queue's SoA row (core/arena.hpp).
  const QueueHot& hot() const { return h_; }
  std::uint32_t hot_id() const { return hot_id_; }

 protected:
  // Serialization delay of `pkt` at the current rate. Nearly all packets are
  // full-MSS data or minimum-size ACKs, so the two results are memoized per
  // rate (start_service runs once per packet per hop; the recompute-on-match
  // expressions are the exact FP operations of the fallback, so memoized and
  // direct answers are bit-identical). The memo revalidates against
  // rate_bps_, which VariableRateQueue::set_rate may change mid-run.
  SimTime service_time(const Packet& pkt) const {
    if (rate_bps_ != memo_rate_) {
      memo_rate_ = rate_bps_;
      memo_data_st_ = from_sec(static_cast<double>(kDataPacketBytes) * 8.0 /
                               rate_bps_);
      memo_ack_st_ = from_sec(static_cast<double>(kAckPacketBytes) * 8.0 /
                              rate_bps_);
    }
    if (pkt.size_bytes == kDataPacketBytes) return memo_data_st_;
    if (pkt.size_bytes == kAckPacketBytes) return memo_ack_st_;
    return from_sec(static_cast<double>(pkt.size_bytes) * 8.0 / rate_bps_);
  }
  void start_service();

  EventList& events_;
  PacketFifo fifo_;  // waiting packets; head-of-line is in service
  double rate_bps_;
  std::uint64_t max_bytes_;
  bool busy_ = false;
  Packet* in_service_ = nullptr;
  SimTime service_done_at_ = 0;

  // service_time() memo; memo_rate_ = -1 forces a fill on first use.
  mutable double memo_rate_ = -1.0;
  mutable SimTime memo_data_st_ = 0;
  mutable SimTime memo_ack_st_ = 0;

  // Occupancy and flow counters live in the per-EventList arena; h_ is this
  // queue's row.
  std::uint32_t hot_id_;
  QueueHot& h_;

  // Flight recorder, cached at construction (nullptr = tracing off).
  trace::TraceRecorder* trace_ = nullptr;
  std::uint16_t trace_id_ = 0;
};

}  // namespace mpsim::net
