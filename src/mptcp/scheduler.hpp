// Connection-level data scheduling (§2 box: "An MPTCP sender stripes
// packets across these subflows as space in the subflow windows becomes
// available").
//
// The scheduler owns the data sequence space: it hands out new data
// sequence numbers on demand, tracks the data-level cumulative ACK and the
// receiver-advertised window, and queues reinjections: data stranded on a
// timed-out subflow that should be retransmitted on a sibling (§6 / the
// mobile scenario of §5).
//
// DataScheduler is a small registry of policies, all sharing the sequence
// bookkeeping above and differing only in *which* subflow a fresh packet
// is granted to:
//
//   stripe        the base class: whichever subflow has window space first
//                 gets the next packet (window-based striping — the
//                 paper's behaviour, bit-exact with the pre-registry code)
//   min_rtt_first fresh data is deferred on a subflow while an active
//                 sibling with lower srtt (ties: lower id) still has free
//                 window — reinjections always go through
//   redundant     every subflow independently walks the same fresh data
//                 stream, so each packet rides every active path and the
//                 receiver suppresses the duplicates (lowest latency,
//                 paid in capacity)
//   blest         BLEST-style blocking estimation: a slow subflow is
//                 refused fresh data when the fastest active sibling's
//                 projected capacity over one slow-path RTT covers the
//                 remaining send window anyway (avoids HoL at the
//                 receiver window)
//
// Policies that rank subflows see them through SchedulerView, implemented
// by MptcpConnection over the arena rows; without a view every policy
// degenerates to stripe.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_set>
#include <vector>

#include "core/event_list.hpp"
#include "trace/trace.hpp"

namespace mpsim::mptcp {

// Selectable scheduling policy (scenario spec: [scheduler] kind = "...").
// Named DataSchedulerKind: core::SchedulerKind already names the *event*
// scheduler backends (heap/wheel/adaptive); these pick data placement.
enum class DataSchedulerKind { kStripe, kMinRttFirst, kRedundant, kBlest };

const char* to_string(DataSchedulerKind kind);

// What a placement policy may ask about the connection's subflows. The
// signatures deliberately match cc::ConnectionView so MptcpConnection
// satisfies both interfaces with single overrides.
class SchedulerView {
 public:
  virtual ~SchedulerView() = default;
  virtual std::size_t num_subflows() const = 0;
  virtual bool subflow_active(std::size_t r) const = 0;
  virtual double srtt_sec(std::size_t r) const = 0;
  virtual double cwnd_pkts(std::size_t r) const = 0;
  virtual double inflight_pkts(std::size_t r) const = 0;
};

class DataScheduler {
 public:
  // `app_limit_pkts == 0` means an unlimited (long-lived) stream.
  // `initial_window` seeds the flow-control right edge (the receiver's
  // buffer size, learned exactly from the first data ACK onward).
  DataScheduler(std::uint64_t app_limit_pkts, std::uint64_t initial_window)
      : app_limit_(app_limit_pkts),
        right_edge_(initial_window) {}
  virtual ~DataScheduler() = default;

  // Next data sequence number for `subflow_id` to transmit: queued
  // reinjections first (these unblock the receiver's head-of-line and are
  // never policy-gated), then fresh data subject to the data-level
  // flow-control window, the application limit, and the policy's placement
  // rule. Returns false if this subflow may send nothing now.
  virtual bool next_data(std::uint32_t subflow_id, std::uint64_t& data_seq);

  // Single-subflow convenience (tests, abstract drivers): stripe-equivalent.
  bool next_data(std::uint64_t& data_seq) { return next_data(0, data_seq); }

  virtual const char* kind_name() const {
    return to_string(DataSchedulerKind::kStripe);
  }

  // Install the subflow-ranking view. Optional: policies fall back to
  // stripe placement without one. Not owned; must outlive the scheduler.
  void set_view(const SchedulerView* view) { view_ = view; }

  // Process a data-level cumulative ACK + receive window. The right edge
  // (ack + window) only ever moves forward: ACKs may be reordered across
  // subflows with different RTTs (§6), and TCP never shrinks the window.
  void on_data_ack(std::uint64_t data_cum_ack, std::uint64_t rcv_window);

  // Queue data sequence numbers for retransmission on another subflow.
  // Already-acked and already-queued sequences are skipped.
  void reinject(const std::vector<std::uint64_t>& data_seqs);

  // Drop every queued reinjection the cumulative ACK has already passed,
  // releasing its reinject_pending_ entry. Without this, a seq queued for
  // a subflow that dies (or a connection that completes) before any
  // next_data() call drains it stays in reinject_pending_ forever — and a
  // later, genuine reinjection of the same seq is silently refused by the
  // duplicate filter. Called on every cum-ACK advance and on subflow
  // reset/drop. Returns the number of entries purged.
  std::uint64_t purge_acked();

  // Wire the owning connection's flight recorder in. The scheduler has no
  // clock of its own, so it borrows the connection's EventList for record
  // timestamps; kReinject records are emitted here (not in the connection)
  // because this is where duplicate suppression decides what is actually
  // queued.
  void set_trace(EventList* events, trace::TraceRecorder* rec,
                 std::uint16_t trace_id, std::uint32_t flow_id) {
    trace_events_ = events;
    trace_ = rec;
    trace_id_ = trace_id;
    trace_flow_ = flow_id;
  }

  std::uint64_t data_cum_ack() const { return data_cum_ack_; }
  std::uint64_t next_new() const { return next_new_; }
  std::uint64_t right_edge() const { return right_edge_; }
  std::uint64_t reinject_backlog() const { return reinject_q_.size(); }
  // Data seqs ever accepted for reinjection (duplicates excluded).
  std::uint64_t reinjected_total() const { return reinjected_total_; }
  // Stale entries removed by purge_acked() over the connection's life.
  std::uint64_t purged_total() const { return purged_total_; }

  bool app_limited() const { return app_limit_ != 0; }
  // All application data sent and acknowledged.
  bool complete() const {
    return app_limited() && data_cum_ack_ >= app_limit_;
  }

 protected:
  // The two placement primitives subclasses compose: drain the reinject
  // queue / advance the fresh-data edge under flow control. Base
  // next_data() is exactly next_reinject || next_fresh.
  bool next_reinject(std::uint64_t& data_seq);
  bool next_fresh(std::uint64_t& data_seq);
  // Remaining fresh packets the limits admit right now (for BLEST).
  std::uint64_t fresh_window_pkts() const;

  const SchedulerView* view_ = nullptr;

  std::uint64_t app_limit_;
  std::uint64_t right_edge_;
  std::uint64_t next_new_ = 0;
  std::uint64_t data_cum_ack_ = 0;

 private:
  std::deque<std::uint64_t> reinject_q_;
  std::unordered_set<std::uint64_t> reinject_pending_;
  std::uint64_t reinjected_total_ = 0;
  std::uint64_t purged_total_ = 0;

  // Flight recorder wiring (set_trace); trace_ != nullptr implies
  // trace_events_ != nullptr.
  EventList* trace_events_ = nullptr;
  trace::TraceRecorder* trace_ = nullptr;
  std::uint16_t trace_id_ = 0;
  std::uint32_t trace_flow_ = 0;
};

class MinRttFirstScheduler : public DataScheduler {
 public:
  using DataScheduler::DataScheduler;
  using DataScheduler::next_data;
  bool next_data(std::uint32_t subflow_id, std::uint64_t& data_seq) override;
  const char* kind_name() const override {
    return to_string(DataSchedulerKind::kMinRttFirst);
  }
};

class RedundantScheduler : public DataScheduler {
 public:
  using DataScheduler::DataScheduler;
  using DataScheduler::next_data;
  bool next_data(std::uint32_t subflow_id, std::uint64_t& data_seq) override;
  const char* kind_name() const override {
    return to_string(DataSchedulerKind::kRedundant);
  }

 private:
  // Per-subflow cursor into the shared fresh stream; each subflow sends
  // every (not-yet-delivered) data seq, and the receiver's reorder set
  // counts the suppressed duplicates.
  std::vector<std::uint64_t> cursor_;
};

class BlestScheduler : public DataScheduler {
 public:
  using DataScheduler::DataScheduler;
  using DataScheduler::next_data;
  bool next_data(std::uint32_t subflow_id, std::uint64_t& data_seq) override;
  const char* kind_name() const override {
    return to_string(DataSchedulerKind::kBlest);
  }
};

std::unique_ptr<DataScheduler> make_data_scheduler(
    DataSchedulerKind kind, std::uint64_t app_limit_pkts,
    std::uint64_t initial_window);

}  // namespace mpsim::mptcp
