#include "net/packet.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace mpsim::net {
namespace {

// Sink that records arrivals and forwards (or terminates).
class RecordingSink : public PacketSink {
 public:
  explicit RecordingSink(std::string name, bool terminal = false)
      : name_(std::move(name)), terminal_(terminal) {}
  void receive(Packet& pkt) override {
    ++arrivals;
    if (terminal_) {
      pkt.release();
    } else {
      pkt.advance();
    }
  }
  const std::string& sink_name() const override { return name_; }
  int arrivals = 0;

 private:
  std::string name_;
  bool terminal_;
};

TEST(Packet, AllocReturnsCleanPacket) {
  Packet& p = Packet::alloc();
  p.flow_id = 99;
  p.data_seq = 1234;
  p.is_retransmit = true;
  p.release();
  Packet& q = Packet::alloc();  // pool recycles; must be reset
  EXPECT_EQ(q.flow_id, 0u);
  EXPECT_EQ(q.data_seq, 0u);
  EXPECT_FALSE(q.is_retransmit);
  EXPECT_EQ(q.size_bytes, kDataPacketBytes);
  q.release();
}

TEST(Packet, PoolTracksOutstanding) {
  const std::size_t base = Packet::pool_outstanding();
  Packet& a = Packet::alloc();
  Packet& b = Packet::alloc();
  EXPECT_EQ(Packet::pool_outstanding(), base + 2);
  a.release();
  b.release();
  EXPECT_EQ(Packet::pool_outstanding(), base);
}

TEST(Packet, SendOnTraversesAllHops) {
  RecordingSink s1("s1"), s2("s2"), s3("s3", /*terminal=*/true);
  Route route({&s1, &s2, &s3});
  Packet& p = Packet::alloc();
  p.send_on(route);
  EXPECT_EQ(s1.arrivals, 1);
  EXPECT_EQ(s2.arrivals, 1);
  EXPECT_EQ(s3.arrivals, 1);
}

TEST(Packet, RouteAccessorDuringTraversal) {
  RecordingSink terminal("t", true);
  Route route({&terminal});
  Packet& p = Packet::alloc();
  p.send_on(route);
  // Packet is released by the terminal; the route object is untouched.
  EXPECT_EQ(route.size(), 1u);
}

TEST(Route, ReverseLinkage) {
  RecordingSink a("a", true), b("b", true);
  Route fwd({&a});
  Route rev({&b});
  fwd.set_reverse(&rev);
  rev.set_reverse(&fwd);
  EXPECT_EQ(fwd.reverse(), &rev);
  EXPECT_EQ(rev.reverse(), &fwd);
}

TEST(Route, PushBackBuildsInOrder) {
  RecordingSink a("a"), b("b");
  Route r;
  r.push_back(&a);
  r.push_back(&b);
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(r.at(0), &a);
  EXPECT_EQ(r.at(1), &b);
}

TEST(Packet, SizesMatchConventions) {
  EXPECT_EQ(kDataPacketBytes, 1500u);
  EXPECT_EQ(kAckPacketBytes, 40u);
}

TEST(Packet, ManyAllocReleaseCyclesStayBalanced) {
  const std::size_t base = Packet::pool_outstanding();
  std::vector<Packet*> live;
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 100; ++i) live.push_back(&Packet::alloc());
    for (Packet* p : live) p->release();
    live.clear();
  }
  EXPECT_EQ(Packet::pool_outstanding(), base);
}

}  // namespace
}  // namespace mpsim::net
