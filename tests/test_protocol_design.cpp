// §6 protocol-design decisions, demonstrated as executable scenarios:
//
//   1. Per-subflow receive buffers deadlock when one subflow stalls; the
//      shared pool does not (we model the broken variant locally and show
//      the real receiver survives the same event sequence).
//   2. Inferring the data-level cumulative ACK from subflow ACKs
//      mis-computes the window's trailing edge under ACK reordering; the
//      explicit data ACK does not (the paper's worked i.–iv. example).
//   3. Flow-controlled data ACKs can deadlock (A full, B waiting); our
//      ACKs-as-options are never flow controlled — asserted structurally.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <vector>

#include "cc/mptcp_lia.hpp"
#include "mptcp/connection.hpp"
#include "sim_fixtures.hpp"
#include "topo/network.hpp"
#include "topo/two_link.hpp"

namespace mpsim {
namespace {

// ---------------------------------------------------------------------
// 1. Per-subflow buffers vs shared buffer.
//
// Minimal abstract model of the broken design: each subflow has its own
// B-packet pool; in-order delivery to the app requires the next data seq,
// which may live on a stalled subflow. We replay the paper's scenario:
// subflow 1 stalls holding the next-needed packet; subflow 2 keeps
// receiving until its pool is full. At that point subflow 2 advertises
// window 0, the missing packet can only be retransmitted on subflow 2 (its
// own path is dead), and nothing can ever drain: deadlock.
struct PerSubflowBufferModel {
  static constexpr std::uint64_t kBuf = 4;
  std::uint64_t app_next = 0;                // next data seq the app needs
  std::set<std::uint64_t> pool1, pool2;      // held packets per subflow

  bool subflow2_window_open() const { return pool2.size() < kBuf; }
  void drain() {
    for (;;) {
      if (pool1.count(app_next)) {
        pool1.erase(app_next++);
      } else if (pool2.count(app_next)) {
        pool2.erase(app_next++);
      } else {
        break;
      }
    }
  }
};

TEST(ProtocolDesign, PerSubflowBuffersDeadlock) {
  PerSubflowBufferModel m;
  // Data seq 0 was sent on subflow 1, which stalls (packet lost, path
  // down). Seqs 1..4 arrive on subflow 2 and must be held (missing 0).
  for (std::uint64_t seq = 1; seq <= 4; ++seq) {
    ASSERT_TRUE(m.subflow2_window_open());
    m.pool2.insert(seq);
    m.drain();
  }
  // Subflow 2's pool is now full: the retransmission of seq 0 over
  // subflow 2 is blocked by subflow 2's own zero window. Deadlock.
  EXPECT_FALSE(m.subflow2_window_open());
  EXPECT_EQ(m.app_next, 0u);
}

TEST(ProtocolDesign, SharedBufferSurvivesSameScenario) {
  // The real receiver with a single shared pool of the same total size
  // (2 subflows x 4): seqs 1..4 arrive on subflow 1... then the "stalled"
  // packet 0 is retransmitted over the healthy subflow and everything
  // drains. No state in which progress is impossible.
  EventList events;
  mptcp::MptcpReceiver rx(events, "rx", 1, 8);
  struct NullSink : net::PacketSink {
    void receive(net::Packet& p) override { p.release(); }
    const std::string& sink_name() const override { return n; }
    std::string n = "null";
  } null_sink;
  net::Route ack({&null_sink});
  rx.add_subflow(ack);
  rx.add_subflow(ack);

  auto deliver = [&](std::uint32_t sf, std::uint64_t sseq,
                     std::uint64_t dseq) {
    net::Packet& p = net::Packet::alloc(events);
    p.type = net::PacketType::kData;
    p.flow_id = 1;
    p.subflow_id = sf;
    p.subflow_seq = sseq;
    p.data_seq = dseq;
    net::Route direct({&rx});
    p.send_on(direct);
  };

  for (std::uint64_t seq = 1; seq <= 4; ++seq) deliver(1, seq - 1, seq);
  EXPECT_EQ(rx.data_cum_ack(), 0u);
  EXPECT_GT(rx.advertised_window(), 0u)
      << "shared pool still has room for the hole-filler";
  deliver(1, 4, 0);  // seq 0 reinjected on the healthy subflow
  EXPECT_EQ(rx.data_cum_ack(), 5u);
  EXPECT_EQ(rx.buffer_occupancy(), 0u);
}

// ---------------------------------------------------------------------
// 2. Inferred vs explicit data cumulative ACK (the paper's i.-iv. walk).
//
// Sender-side model of the *inferred* design: the sender reconstructs the
// data cum-ack from subflow ACKs using its scoreboard, and interprets the
// receive window relative to that reconstruction. With a 2-packet buffer
// and ACKs arriving out of order (subflow 2's RTT is shorter), the sender
// concludes it may send packet 3 — which the receiver cannot buffer.
TEST(ProtocolDesign, InferredDataAckOverruns) {
  const std::uint64_t buffer = 2;
  // Receiver truth: data 1 (subflow1/seq10) and data 2 (subflow2/seq20)
  // received in order; app has read nothing -> occupancy 2.
  // ACK(a): subflow1 cum 10+1, window relative to data 1 -> 1.
  // ACK(b): subflow2 cum 20+1, window relative to data 2 -> 0.
  struct SubflowAck {
    int subflow;
    std::uint64_t data_equiv;  // what the scoreboard maps the ack to
    std::uint64_t window;      // receiver's window at ack time
  };
  const SubflowAck ack_a{1, 1, 1};
  const SubflowAck ack_b{2, 2, 0};

  // Reordered arrival: b first, then a.
  std::uint64_t inferred_cum = 0;
  std::uint64_t send_allowance = 0;
  std::set<std::uint64_t> acked;
  auto process = [&](const SubflowAck& ack) {
    acked.insert(ack.data_equiv);
    while (acked.count(inferred_cum + 1)) ++inferred_cum;
    send_allowance = inferred_cum + ack.window;
  };
  process(ack_b);  // infers data 2 received but not 1 -> cum still 0
  EXPECT_EQ(inferred_cum, 0u);
  process(ack_a);  // now cum=2, but window=1 came from the *older* ack
  EXPECT_EQ(inferred_cum, 2u);
  EXPECT_EQ(send_allowance, 3u)
      << "sender believes seqs up to 3 are permitted";
  // Receiver truth: occupancy 2 of 2 -> packet 3 would be dropped.
  EXPECT_GT(send_allowance, buffer)
      << "the inferred design overruns the buffer (paper step iv.)";
}

TEST(ProtocolDesign, ExplicitDataAckNeverOverruns) {
  // Same event sequence through the real receiver: the explicit data
  // cum-ack and window travel together, so even the stale/reordered ACK
  // pair yields a right edge of at most cum + free space.
  EventList events;
  struct AckLog : net::PacketSink {
    void receive(net::Packet& p) override {
      edges.push_back(p.data_cum_ack + p.rcv_window);
      p.release();
    }
    const std::string& sink_name() const override { return n; }
    std::string n = "log";
    std::vector<std::uint64_t> edges;
  } log;
  mptcp::MptcpReceiver rx(events, "rx", 1, 2);
  rx.set_app_read_rate(1e-9);  // app effectively never reads
  net::Route ack({&log});
  rx.add_subflow(ack);
  rx.add_subflow(ack);

  auto deliver = [&](std::uint32_t sf, std::uint64_t sseq,
                     std::uint64_t dseq) {
    net::Packet& p = net::Packet::alloc(events);
    p.type = net::PacketType::kData;
    p.flow_id = 1;
    p.subflow_id = sf;
    p.subflow_seq = sseq;
    p.data_seq = dseq;
    net::Route direct({&rx});
    p.send_on(direct);
  };
  deliver(0, 10, 0);
  deliver(1, 20, 1);
  // Whatever order these ACKs reach the sender, max(cum+wnd) is the right
  // edge; it must never exceed the buffer capacity's worth of data.
  for (std::uint64_t edge : log.edges) EXPECT_LE(edge, 2u);
}

// ---------------------------------------------------------------------
// 3. ACKs as TCP options are not flow controlled.
//
// Structural assertion on the real implementation: ACK generation in the
// receiver is unconditional on buffer state (a full buffer still produces
// an ACK, with window 0), which is exactly what "data acks in TCP options,
// not in the payload stream" buys. If ACKs were data chunks, a zero-window
// receiver could never ack — the A<->B pipelining deadlock of §6.
TEST(ProtocolDesign, AcksFlowEvenWithZeroWindow) {
  EventList events;
  struct AckCount : net::PacketSink {
    void receive(net::Packet& p) override {
      ++acks;
      last_window = p.rcv_window;
      p.release();
    }
    const std::string& sink_name() const override { return n; }
    std::string n = "cnt";
    int acks = 0;
    std::uint64_t last_window = 99;
  } cnt;
  mptcp::MptcpReceiver rx(events, "rx", 1, 2);
  rx.set_app_read_rate(1e-9);
  net::Route ack({&cnt});
  rx.add_subflow(ack);
  net::Route direct({&rx});
  for (std::uint64_t i = 0; i < 5; ++i) {
    net::Packet& p = net::Packet::alloc(events);
    p.type = net::PacketType::kData;
    p.flow_id = 1;
    p.subflow_id = 0;
    p.subflow_seq = i;
    p.data_seq = i;
    p.send_on(direct);
  }
  EXPECT_EQ(cnt.acks, 5) << "every segment acked, full buffer or not";
  EXPECT_EQ(cnt.last_window, 0u);
}

// ---------------------------------------------------------------------
// 4. Sequence-space separation end to end: a middlebox-style rewrite of
// subflow sequence numbers must not corrupt stream reassembly, because
// data sequence numbers travel separately (the pf example in §6).
TEST(ProtocolDesign, SubflowSeqRewriteDoesNotCorruptStream) {
  EventList events;
  struct NullSink : net::PacketSink {
    void receive(net::Packet& p) override { p.release(); }
    const std::string& sink_name() const override { return n; }
    std::string n = "null";
  } null_sink;
  mptcp::MptcpReceiver rx(events, "rx", 1, 64);
  net::Route ack({&null_sink});
  rx.add_subflow(ack);
  net::Route direct({&rx});
  // A "firewall" added a constant offset to subflow seqs; data seqs are
  // intact. Stream must reassemble perfectly.
  for (std::uint64_t i = 0; i < 10; ++i) {
    net::Packet& p = net::Packet::alloc(events);
    p.type = net::PacketType::kData;
    p.flow_id = 1;
    p.subflow_id = 0;
    p.subflow_seq = i + 1'000'000;  // rewritten space
    p.data_seq = i;
    p.send_on(direct);
  }
  EXPECT_EQ(rx.data_cum_ack(), 10u);
  EXPECT_EQ(rx.delivered(), 10u);
}

}  // namespace
}  // namespace mpsim
