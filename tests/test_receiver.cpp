#include "mptcp/receiver.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/event_list.hpp"
#include "net/packet.hpp"

namespace mpsim::mptcp {
namespace {

// Captures ACK fields at the end of the ACK route.
class AckTrap : public net::PacketSink {
 public:
  void receive(net::Packet& pkt) override {
    sub_acks.push_back(pkt.subflow_cum_ack);
    data_acks.push_back(pkt.data_cum_ack);
    windows.push_back(pkt.rcv_window);
    pkt.release();
  }
  const std::string& sink_name() const override { return name_; }

  std::vector<std::uint64_t> sub_acks, data_acks, windows;

 private:
  std::string name_ = "acktrap";
};

class ReceiverTest : public ::testing::Test {
 protected:
  ReceiverTest()
      : rx(events, "rx", /*flow_id=*/1, /*buffer_pkts=*/8),
        ack_route({&trap}) {
    rx.add_subflow(ack_route);
    rx.add_subflow(ack_route);
  }

  void deliver(std::uint32_t subflow, std::uint64_t sub_seq,
               std::uint64_t data_seq) {
    net::Packet& p = net::Packet::alloc(events);
    p.type = net::PacketType::kData;
    p.flow_id = 1;
    p.subflow_id = subflow;
    p.subflow_seq = sub_seq;
    p.data_seq = data_seq;
    net::Route direct({&rx});
    p.send_on(direct);
  }

  EventList events;
  AckTrap trap;
  MptcpReceiver rx;
  net::Route ack_route;
};

TEST_F(ReceiverTest, InOrderDeliveryAdvancesEverything) {
  deliver(0, 0, 0);
  deliver(0, 1, 1);
  EXPECT_EQ(rx.data_cum_ack(), 2u);
  EXPECT_EQ(rx.delivered(), 2u);
  EXPECT_EQ(rx.buffer_occupancy(), 0u);
  ASSERT_EQ(trap.data_acks.size(), 2u);
  EXPECT_EQ(trap.data_acks[1], 2u);
  EXPECT_EQ(trap.sub_acks[1], 2u);
}

TEST_F(ReceiverTest, OutOfOrderDataIsBuffered) {
  deliver(0, 0, 2);  // data 2 before 0,1
  EXPECT_EQ(rx.data_cum_ack(), 0u);
  EXPECT_EQ(rx.buffer_occupancy(), 1u);
  EXPECT_EQ(rx.advertised_window(), 7u);
  deliver(0, 1, 0);
  deliver(0, 2, 1);
  EXPECT_EQ(rx.data_cum_ack(), 3u);
  EXPECT_EQ(rx.buffer_occupancy(), 0u);
}

TEST_F(ReceiverTest, SubflowSequencesIndependent) {
  deliver(0, 0, 0);
  deliver(1, 0, 1);
  ASSERT_EQ(trap.sub_acks.size(), 2u);
  EXPECT_EQ(trap.sub_acks[0], 1u);  // subflow 0 cum ack
  EXPECT_EQ(trap.sub_acks[1], 1u);  // subflow 1 cum ack (its own space)
  EXPECT_EQ(rx.data_cum_ack(), 2u);
}

TEST_F(ReceiverTest, SubflowHoleHoldsSubflowAckOnly) {
  deliver(0, 0, 0);
  deliver(0, 2, 2);  // subflow gap at seq 1
  EXPECT_EQ(trap.sub_acks.back(), 1u) << "subflow cum ack stuck at the hole";
  deliver(1, 0, 1);  // data hole filled via the other subflow
  EXPECT_EQ(rx.data_cum_ack(), 3u)
      << "data stream complete even though subflow 0 has a hole";
}

TEST_F(ReceiverTest, DuplicateDataCounted) {
  deliver(0, 0, 0);
  deliver(1, 0, 0);  // same data on the other subflow (reinjection)
  EXPECT_EQ(rx.duplicates(), 1u);
  EXPECT_EQ(rx.data_cum_ack(), 1u);
}

TEST_F(ReceiverTest, DuplicateOutOfOrderDataCounted) {
  deliver(0, 0, 5);
  deliver(0, 1, 5);
  EXPECT_EQ(rx.duplicates(), 1u);
  EXPECT_EQ(rx.buffer_occupancy(), 1u);
}

TEST_F(ReceiverTest, EveryDataPacketGetsAnAck) {
  for (int i = 0; i < 7; ++i) deliver(0, static_cast<std::uint64_t>(i), 0);
  EXPECT_EQ(trap.sub_acks.size(), 7u) << "duplicates must still be acked";
}

TEST_F(ReceiverTest, AdvertisedWindowShrinksWithOccupancy) {
  deliver(0, 0, 3);
  deliver(0, 1, 4);
  EXPECT_EQ(rx.advertised_window(), 6u);
  ASSERT_FALSE(trap.windows.empty());
  EXPECT_EQ(trap.windows.back(), 6u);
}

TEST_F(ReceiverTest, WindowViolationCountsOverflow) {
  // Fill the 8-packet buffer with out-of-order data, then one more.
  for (std::uint64_t i = 0; i < 8; ++i) deliver(0, i, i + 1);
  EXPECT_EQ(rx.buffer_occupancy(), 8u);
  deliver(0, 8, 9);
  EXPECT_EQ(rx.window_violations(), 1u);
}

TEST_F(ReceiverTest, EchoFieldsCopiedToAck) {
  net::Packet& p = net::Packet::alloc(events);
  p.type = net::PacketType::kData;
  p.flow_id = 1;
  p.subflow_id = 0;
  p.subflow_seq = 0;
  p.data_seq = 0;
  p.ts_echo = from_ms(123);
  p.is_retransmit = true;

  struct EchoTrap : net::PacketSink {
    void receive(net::Packet& pkt) override {
      echo = pkt.ts_echo;
      retx = pkt.is_retransmit;
      pkt.release();
    }
    const std::string& sink_name() const override { return name; }
    std::string name = "echo";
    SimTime echo = 0;
    bool retx = false;
  } echo_trap;

  EventList ev2;
  MptcpReceiver rx2(ev2, "rx2", 1, 8);
  net::Route ack2({&echo_trap});
  rx2.add_subflow(ack2);
  net::Route direct({&rx2});
  p.send_on(direct);
  EXPECT_EQ(echo_trap.echo, from_ms(123));
  EXPECT_TRUE(echo_trap.retx);
}

TEST_F(ReceiverTest, FiniteAppReadRateHoldsDataInBuffer) {
  rx.set_app_read_rate(1000.0);  // 1 pkt/ms
  deliver(0, 0, 0);
  deliver(0, 1, 1);
  deliver(0, 2, 2);
  // Data is in order but unread: occupies buffer.
  EXPECT_EQ(rx.data_cum_ack(), 3u);
  EXPECT_LT(rx.delivered(), 3u);
  EXPECT_GT(rx.buffer_occupancy(), 0u);
  events.run_until(from_ms(10));
  EXPECT_EQ(rx.delivered(), 3u);
  EXPECT_EQ(rx.buffer_occupancy(), 0u);
}

TEST_F(ReceiverTest, SlowReaderShrinksWindowToZero) {
  rx.set_app_read_rate(1.0);  // 1 pkt/s: effectively stalled
  for (std::uint64_t i = 0; i < 8; ++i) deliver(0, i, i);
  EXPECT_EQ(rx.advertised_window(), 0u);
  EXPECT_EQ(trap.windows.back(), 0u);
}

// The receiver's reorder sets are FlatSeqSets (no per-packet node
// allocation); these pin the std::set semantics they must preserve.

TEST(FlatSeqSetTest, OrderedUniquePopMin) {
  FlatSeqSet s;
  s.reserve(8);
  EXPECT_TRUE(s.empty());
  EXPECT_TRUE(s.add(5));
  EXPECT_TRUE(s.add(2));
  EXPECT_TRUE(s.add(9));
  EXPECT_FALSE(s.add(5));  // duplicate rejected
  EXPECT_EQ(s.size(), 3u);
  EXPECT_TRUE(s.contains(2));
  EXPECT_TRUE(s.contains(9));
  EXPECT_FALSE(s.contains(4));
  EXPECT_EQ(s.min(), 2u);
  s.erase_min();
  EXPECT_EQ(s.min(), 5u);
  s.erase_min();
  EXPECT_EQ(s.min(), 9u);
  s.erase_min();
  EXPECT_TRUE(s.empty());
}

TEST(FlatSeqSetTest, HeadCompactionPreservesContents) {
  FlatSeqSet s;
  s.reserve(16);
  // Many erase_min cycles push head_ across the compaction threshold;
  // the live contents must be unaffected throughout.
  std::uint64_t next = 0;
  for (int round = 0; round < 50; ++round) {
    for (int k = 0; k < 4; ++k) s.add(next + static_cast<std::uint64_t>(k));
    EXPECT_EQ(s.min(), next);
    for (int k = 0; k < 4; ++k) {
      EXPECT_EQ(s.min(), next + static_cast<std::uint64_t>(k));
      s.erase_min();
    }
    EXPECT_TRUE(s.empty());
    next += 4;
  }
}

TEST(FlatSeqSetTest, InterleavedAddEraseStaysSorted) {
  FlatSeqSet s;
  s.reserve(32);
  // Descending adds force mid-vector inserts relative to head_.
  for (std::uint64_t v : {70u, 30u, 50u, 10u, 60u, 20u, 40u}) s.add(v);
  EXPECT_EQ(s.min(), 10u);
  s.erase_min();
  s.add(15);  // insert below the current minimum, after a head bump
  EXPECT_EQ(s.min(), 15u);
  s.erase_min();
  EXPECT_EQ(s.min(), 20u);
  EXPECT_TRUE(s.contains(70));
  EXPECT_FALSE(s.contains(10));  // erased values are really gone
}

}  // namespace
}  // namespace mpsim::mptcp
