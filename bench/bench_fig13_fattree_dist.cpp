// Fig. 13 / §4 — distributions of flow throughput and link loss rate in
// the 128-host FatTree under TP1, for SINGLE-PATH / EWTCP / MPTCP.
//
// Output format follows the figure: "rank of flow -> throughput" for a
// set of rank quantiles, and "rank of link -> loss rate" for core links
// and access links separately. Paper's shape: MPTCP's throughput curve is
// higher and much flatter (fairer) than EWTCP's; single-path has a long
// tail of starved flows. MPTCP also balances core-link loss best.
//
// The three algorithm runs are independent simulations, so they execute
// concurrently on the ExperimentRunner (MPSIM_THREADS=1 forces the old
// sequential behaviour); results are identical either way. A
// BENCH_fig13_fattree_dist.json file records per-run metrics and the
// headline statistics.
#include <array>

#include "cc/ewtcp.hpp"
#include "cc/mptcp_lia.hpp"
#include "datacenter.hpp"

namespace mpsim {
namespace {

struct Dist {
  std::vector<double> flow_mbps;      // sorted ascending
  std::vector<double> core_loss_pct;  // sorted ascending
  std::vector<double> access_loss_pct;
};

Dist run(EventList& events, const cc::CongestionControl* algo) {
  topo::Network net(events);
  topo::FatTree ft(net, 8);
  Rng tm_rng(4243);
  auto tm = traffic::permutation_tm(ft.num_hosts(), tm_rng);
  bench::DcConfig cfg;
  cfg.algo = algo;
  cfg.npaths = 8;
  cfg.warmup_sec = 1.0 * bench::time_scale();
  cfg.measure_sec = 3.0 * bench::time_scale();
  auto result = bench::run_dc(
      events,
      [&](int s, int d, int n, Rng& rng) {
        return bench::fattree_paths(ft, s, d, n, rng);
      },
      ft.num_hosts(), tm, cfg);

  Dist dist;
  dist.flow_mbps = stats::rank_sorted(result.per_flow_mbps);
  for (const auto* q : ft.core_queues()) {
    dist.core_loss_pct.push_back(100.0 * q->loss_rate());
  }
  for (const auto* q : ft.access_queues()) {
    dist.access_loss_pct.push_back(100.0 * q->loss_rate());
  }
  dist.core_loss_pct = stats::rank_sorted(dist.core_loss_pct);
  dist.access_loss_pct = stats::rank_sorted(dist.access_loss_pct);
  return dist;
}

double at_quantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1));
  return sorted[idx];
}

double mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double total = 0.0;
  for (double x : v) total += x;
  return total / static_cast<double>(v.size());
}

}  // namespace
}  // namespace mpsim

int main() {
  using namespace mpsim;
  bench::banner(
      "Fig. 13 / §4: FatTree TP1 rank distributions",
      "flow-throughput curve: MPTCP higher & flatter than EWTCP; "
      "single-path has a starved tail. Loss balanced best by MPTCP");

  const char* names[3] = {"SINGLE", "EWTCP", "MPTCP"};
  const cc::CongestionControl* algos[3] = {nullptr, &cc::ewtcp(),
                                           &cc::mptcp_lia()};
  std::array<Dist, 3> dists;

  runner::RunnerConfig rcfg;
  rcfg.threads = bench::env_threads();
  runner::ExperimentRunner exp(rcfg);
  for (int i = 0; i < 3; ++i) {
    exp.add(names[i], [&dists, &algos, &names, i](runner::RunContext& ctx) {
      ctx.annotate("algorithm", names[i]);
      ctx.annotate("topology", "fat_tree_k8");
      ctx.annotate("traffic", "permutation_tp1");
      dists[static_cast<std::size_t>(i)] = run(ctx.events(), algos[i]);
      const Dist& d = dists[static_cast<std::size_t>(i)];
      ctx.record("jain_index", stats::jain_index(d.flow_mbps));
      ctx.record("mean_flow_mbps", mean(d.flow_mbps));
      ctx.record("median_flow_mbps", at_quantile(d.flow_mbps, 0.5));
      ctx.record("max_core_loss_pct", at_quantile(d.core_loss_pct, 1.0));
    });
  }
  const auto results = exp.run_all();
  const Dist& single = dists[0];
  const Dist& ewtcp = dists[1];
  const Dist& mptcp = dists[2];

  std::printf("flow throughput (Mb/s) by rank quantile:\n");
  stats::Table ft({"quantile", "SINGLE", "EWTCP", "MPTCP"});
  for (double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0}) {
    ft.add_row(stats::fmt_double(100 * q, 0) + "%",
               {at_quantile(single.flow_mbps, q),
                at_quantile(ewtcp.flow_mbps, q),
                at_quantile(mptcp.flow_mbps, q)},
               1);
  }
  ft.print();

  std::printf("\nJain index over flow throughputs: SINGLE %.3f, "
              "EWTCP %.3f, MPTCP %.3f\n",
              stats::jain_index(single.flow_mbps),
              stats::jain_index(ewtcp.flow_mbps),
              stats::jain_index(mptcp.flow_mbps));

  std::printf("\ncore-link loss rate (%%) by rank quantile:\n");
  stats::Table lt({"quantile", "SINGLE", "EWTCP", "MPTCP"});
  for (double q : {0.5, 0.75, 0.9, 0.99, 1.0}) {
    lt.add_row(stats::fmt_double(100 * q, 0) + "%",
               {at_quantile(single.core_loss_pct, q),
                at_quantile(ewtcp.core_loss_pct, q),
                at_quantile(mptcp.core_loss_pct, q)},
               3);
  }
  lt.print();

  std::printf("\naccess-link loss rate (%%) by rank quantile:\n");
  stats::Table at({"quantile", "SINGLE", "EWTCP", "MPTCP"});
  for (double q : {0.5, 0.9, 1.0}) {
    at.add_row(stats::fmt_double(100 * q, 0) + "%",
               {at_quantile(single.access_loss_pct, q),
                at_quantile(ewtcp.access_loss_pct, q),
                at_quantile(mptcp.access_loss_pct, q)},
               3);
  }
  at.print();

  std::printf("\nrunner: %zu runs on %u threads, %.2fs total run wall\n",
              exp.job_count(), exp.resolved_threads(),
              runner::total_wall_seconds(results));

  bench::Json root = bench::Json::object();
  root.set("bench", "fig13_fattree_dist");
  root.set("threads", static_cast<double>(exp.resolved_threads()));
  root.set("runs", bench::json_from_results(results));
  bench::Json quantiles = bench::Json::object();
  for (int i = 0; i < 3; ++i) {
    std::vector<double> qs;
    for (double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0}) {
      qs.push_back(at_quantile(dists[static_cast<std::size_t>(i)].flow_mbps,
                               q));
    }
    quantiles.set(names[i], bench::Json::array_of(qs));
  }
  root.set("flow_mbps_quantiles", std::move(quantiles));
  bench::write_bench_json("fig13_fattree_dist", root);
  return 0;
}
