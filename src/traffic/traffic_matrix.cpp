#include "traffic/traffic_matrix.hpp"

#include <numeric>

#include "core/check.hpp"
#include <unordered_set>

namespace mpsim::traffic {

std::vector<FlowPair> permutation_tm(int hosts, Rng& rng) {
  MPSIM_CHECK(hosts >= 2, "traffic matrix needs at least two hosts");
  std::vector<int> dst(static_cast<std::size_t>(hosts));
  std::iota(dst.begin(), dst.end(), 0);
  // Shuffle until a derangement (expected ~e tries).
  for (;;) {
    rng.shuffle(dst.data(), dst.size());
    bool ok = true;
    for (int h = 0; h < hosts; ++h) {
      if (dst[static_cast<std::size_t>(h)] == h) {
        ok = false;
        break;
      }
    }
    if (ok) break;
  }
  std::vector<FlowPair> tm;
  tm.reserve(static_cast<std::size_t>(hosts));
  for (int h = 0; h < hosts; ++h) {
    tm.push_back({h, dst[static_cast<std::size_t>(h)]});
  }
  return tm;
}

std::vector<FlowPair> one_to_many_tm(int hosts, int flows_per_host,
                                     Rng& rng) {
  MPSIM_CHECK(flows_per_host < hosts,
              "cannot pick flows_per_host distinct peers");
  std::vector<FlowPair> tm;
  tm.reserve(static_cast<std::size_t>(hosts) * flows_per_host);
  for (int h = 0; h < hosts; ++h) {
    std::unordered_set<int> used;
    while (static_cast<int>(used.size()) < flows_per_host) {
      const int d =
          static_cast<int>(rng.next_below(static_cast<std::uint64_t>(hosts)));
      if (d == h || !used.insert(d).second) continue;
      tm.push_back({h, d});
    }
  }
  return tm;
}

std::vector<FlowPair> sparse_tm(int hosts, double fraction, Rng& rng) {
  std::vector<FlowPair> tm;
  for (int h = 0; h < hosts; ++h) {
    if (!rng.chance(fraction)) continue;
    int d = h;
    while (d == h) {
      d = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(hosts)));
    }
    tm.push_back({h, d});
  }
  return tm;
}

}  // namespace mpsim::traffic
