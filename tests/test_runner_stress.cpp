// Runner stress for the ThreadSanitizer lane: many concurrent multipath
// simulations on >= 4 worker threads, exercising every shared-looking code
// path the parallel runner touches — packet pools, flow-id allocation,
// coupled congestion control singletons, the check layer, work stealing —
// while TSan watches for races. The test also re-asserts the determinism
// guarantee under contention: a 4-thread and an 8-thread sweep of the same
// jobs must be byte-identical.
#include "runner/experiment_runner.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cc/mptcp_lia.hpp"
#include "core/rng.hpp"
#include "mptcp/connection.hpp"
#include "net/packet.hpp"
#include "topo/fat_tree.hpp"
#include "topo/network.hpp"

namespace mpsim::runner {
namespace {

// A two-path MPTCP transfer with seed-varied rates/delays. Heavier than the
// single-path job in test_experiment_runner: it drives the coupled (LIA)
// controller — whose const singleton is shared by all threads — plus two
// packet-pool-churning paths per job.
void mptcp_job(RunContext& ctx, std::uint64_t seed) {
  EventList& events = ctx.events();
  topo::Network net(events);
  Rng rng(seed);
  const double rate1 = 6e6 + rng.next_double() * 4e6;
  const double rate2 = 4e6 + rng.next_double() * 4e6;
  const SimTime d1 = from_ms(4) + from_us(rng.next_double() * 800);
  const SimTime d2 = from_ms(12) + from_us(rng.next_double() * 800);
  auto l1 = net.add_link("l1", rate1, d1, topo::bdp_bytes(rate1, 2 * d1));
  auto l2 = net.add_link("l2", rate2, d2, topo::bdp_bytes(rate2, 2 * d2));
  auto& a1 = net.add_pipe("a1", d1);
  auto& a2 = net.add_pipe("a2", d2);

  mptcp::MptcpConnection conn(events, "mp", cc::mptcp_lia());
  conn.add_subflow(topo::path_of({&l1}), {&a1});
  conn.add_subflow(topo::path_of({&l2}), {&a2});
  conn.start(0);
  events.run_until(from_ms(1200));

  ctx.record("delivered_pkts", static_cast<double>(conn.delivered_pkts()));
  ctx.record("events", static_cast<double>(events.events_processed()));
  ctx.record("sf0_acked",
             static_cast<double>(conn.subflow(0).packets_acked()));
  ctx.record("sf1_acked",
             static_cast<double>(conn.subflow(1).packets_acked()));
  // Pool ledger must balance inside the worker thread.
  const net::PacketPool* pool = net::PacketPool::find(events);
  ASSERT_NE(pool, nullptr);
  EXPECT_EQ(pool->total_allocated(),
            pool->total_released() + pool->outstanding());
}

std::vector<RunResult> sweep(unsigned threads, int njobs) {
  RunnerConfig cfg;
  cfg.threads = threads;
  ExperimentRunner r(cfg);
  for (int k = 0; k < njobs; ++k) {
    r.add("seed" + std::to_string(k), [k](RunContext& ctx) {
      mptcp_job(ctx, 7000 + static_cast<std::uint64_t>(k));
    });
  }
  return r.run_all();
}

TEST(RunnerStress, FourPlusThreadsManyMultipathJobs) {
  // 24 jobs over 6 threads: every worker both drains its own deque and
  // steals, and simulations overlap heavily in time.
  const auto results = sweep(/*threads=*/6, /*njobs=*/24);
  ASSERT_EQ(results.size(), 24u);
  for (const auto& r : results) {
    EXPECT_GT(r.value("delivered_pkts"), 0.0) << r.name;
    EXPECT_GT(r.metrics.events_processed, 100u) << r.name;
  }
}

TEST(RunnerStress, ContendedSweepsAreByteIdentical) {
  const int njobs = 16;
  const auto four = sweep(/*threads=*/4, njobs);
  const auto eight = sweep(/*threads=*/8, njobs);
  ASSERT_EQ(four.size(), eight.size());
  for (std::size_t i = 0; i < four.size(); ++i) {
    EXPECT_EQ(four[i].name, eight[i].name);
    ASSERT_EQ(four[i].values.size(), eight[i].values.size());
    for (std::size_t j = 0; j < four[i].values.size(); ++j) {
      EXPECT_EQ(four[i].values[j].first, eight[i].values[j].first);
      EXPECT_EQ(four[i].values[j].second, eight[i].values[j].second)
          << four[i].name << "." << four[i].values[j].first;
    }
  }
}

TEST(RunnerStress, AdaptiveBackendMatchesHeapUnderContention) {
  // The adaptive migrator must be invisible to results even when jobs run
  // on contended worker threads: a 4-thread adaptive sweep (thresholds
  // forced low enough to migrate mid-run) byte-matches a 1-thread pure-heap
  // sweep, and the reported backend/switch counts stay deterministic.
  auto sweep_kind = [](SchedulerKind kind, unsigned threads, int njobs) {
    RunnerConfig cfg;
    cfg.threads = threads;
    cfg.scheduler = kind;
    ExperimentRunner r(cfg);
    for (int k = 0; k < njobs; ++k) {
      r.add("seed" + std::to_string(k), [k, kind](RunContext& ctx) {
        if (kind == SchedulerKind::kAdaptive) {
          // Forced low enough to migrate mid-run even with batched pipe
          // service, which keeps at most one pending wake per pipe and so
          // shrinks the schedule far below the legacy per-packet counts.
          ctx.events().set_adaptive_policy(/*high=*/10, /*low=*/4,
                                           /*cooldown=*/128);
        }
        mptcp_job(ctx, 7000 + static_cast<std::uint64_t>(k));
      });
    }
    return r.run_all();
  };
  const int njobs = 12;
  const auto heap = sweep_kind(SchedulerKind::kHeap, /*threads=*/1, njobs);
  const auto adaptive =
      sweep_kind(SchedulerKind::kAdaptive, /*threads=*/4, njobs);
  ASSERT_EQ(heap.size(), adaptive.size());
  std::uint64_t total_switches = 0;
  for (std::size_t i = 0; i < heap.size(); ++i) {
    EXPECT_EQ(adaptive[i].metrics.scheduler, "adaptive");
    total_switches += adaptive[i].metrics.scheduler_switches;
    ASSERT_EQ(heap[i].values.size(), adaptive[i].values.size());
    for (std::size_t j = 0; j < heap[i].values.size(); ++j) {
      EXPECT_EQ(heap[i].values[j].second, adaptive[i].values[j].second)
          << heap[i].name << "." << heap[i].values[j].first;
    }
  }
  EXPECT_GT(total_switches, 0u)
      << "no job ever crossed the forced thresholds; the adaptive leg "
      << "tested nothing";
}

TEST(RunnerStress, NestedShardWorkersUnderSeedWorkersByteIdentical) {
  // Nested parallelism for the TSan lane: runner seed-workers each fan out
  // shard-worker threads (conservative parallel DES) inside their job. A
  // sharded FatTree job has real cross-shard traffic — every agg<->core
  // hop is a mailbox handoff — so this exercises window barriers, drains
  // and per-shard pools *under* the work-stealing pool, and re-asserts
  // that the composition stays byte-identical to fully sequential runs.
  auto sweep_nested = [](unsigned threads, int shard_threads, int njobs) {
    RunnerConfig cfg;
    cfg.threads = threads;
    cfg.shard_threads = shard_threads;
    cfg.scheduler = SchedulerKind::kWheel;
    ExperimentRunner r(cfg);
    for (int k = 0; k < njobs; ++k) {
      r.add("ft" + std::to_string(k), [k](RunContext& ctx) {
        topo::Network net(ctx.events(), &ctx.shards());
        topo::FatTree ft(net, 4);
        Rng rng(9000 + static_cast<std::uint64_t>(k));
        std::vector<std::unique_ptr<mptcp::MptcpConnection>> conns;
        for (int c = 0; c < 3; ++c) {
          const int src = (4 * c + k) % ft.num_hosts();
          const int dst = (src + 7) % ft.num_hosts();  // cross-pod on k=4
          auto pairs = topo::sample_path_pairs(ft, src, dst, 2, rng);
          auto conn = std::make_unique<mptcp::MptcpConnection>(
              ft.host_events(src), "mp" + std::to_string(c),
              cc::mptcp_lia());
          for (auto& pr : pairs) {
            conn->add_subflow(std::move(pr.first), std::move(pr.second));
          }
          conn->start(0);
          conns.push_back(std::move(conn));
        }
        ctx.run_until(from_ms(50));
        for (std::size_t c = 0; c < conns.size(); ++c) {
          ctx.record("delivered" + std::to_string(c),
                     static_cast<double>(conns[c]->delivered_pkts()));
        }
        ctx.record("events",
                   static_cast<double>(ctx.shards().events_processed()));
      });
    }
    return r.run_all();
  };
  const int njobs = 6;
  const auto sequential = sweep_nested(/*threads=*/1, /*shard_threads=*/1,
                                       njobs);
  const auto nested = sweep_nested(/*threads=*/2, /*shard_threads=*/2, njobs);
  const auto wide = sweep_nested(/*threads=*/2, /*shard_threads=*/4, njobs);
  ASSERT_EQ(sequential.size(), nested.size());
  ASSERT_EQ(sequential.size(), wide.size());
  for (std::size_t i = 0; i < sequential.size(); ++i) {
    EXPECT_GT(sequential[i].value("delivered0"), 0.0) << sequential[i].name;
    ASSERT_EQ(sequential[i].values.size(), nested[i].values.size());
    for (std::size_t j = 0; j < sequential[i].values.size(); ++j) {
      EXPECT_EQ(sequential[i].values[j].second, nested[i].values[j].second)
          << sequential[i].name << "." << sequential[i].values[j].first
          << " (2 runner threads x 2 shards)";
      EXPECT_EQ(sequential[i].values[j].second, wide[i].values[j].second)
          << sequential[i].name << "." << sequential[i].values[j].first
          << " (2 runner threads x 4 shards)";
    }
  }
}

TEST(RunnerStress, FlowIdsDeterministicUnderConcurrency) {
  // Flow ids are allocated per-EventList: within one simulation they are
  // unique (a duplicate would cross-deliver packets between connections and
  // trip the receiver's flow-id check), and across runner jobs they depend
  // only on construction order inside the job — never on which worker
  // thread ran it or how many jobs ran before. Each job here builds three
  // connections and must observe ids 1, 2, 3 exactly.
  RunnerConfig cfg;
  cfg.threads = 8;
  ExperimentRunner r(cfg);
  constexpr int kJobs = 32;
  for (int k = 0; k < kJobs; ++k) {
    r.add("ids" + std::to_string(k), [](RunContext& ctx) {
      topo::Network net(ctx.events());
      std::vector<std::unique_ptr<mptcp::MptcpConnection>> conns;
      for (int c = 0; c < 3; ++c) {
        auto link = net.add_link("l" + std::to_string(c), 8e6, from_ms(1),
                                 64000);
        auto& ack = net.add_pipe("a" + std::to_string(c), from_ms(1));
        auto tcp = mptcp::make_single_path_tcp(
            ctx.events(), "t" + std::to_string(c), topo::path_of({&link}),
            {&ack});
        tcp->start(0);
        conns.push_back(std::move(tcp));
      }
      ctx.events().run_until(from_ms(50));
      for (std::size_t c = 0; c < conns.size(); ++c) {
        ctx.record("flow_id" + std::to_string(c),
                   static_cast<double>(conns[c]->flow_id()));
      }
    });
  }
  const auto results = r.run_all();
  for (const auto& res : results) {
    EXPECT_EQ(res.value("flow_id0"), 1.0) << res.name;
    EXPECT_EQ(res.value("flow_id1"), 2.0) << res.name;
    EXPECT_EQ(res.value("flow_id2"), 3.0) << res.name;
  }
}

}  // namespace
}  // namespace mpsim::runner
