// The algorithm x scenario matrix: every congestion controller run
// through the same two canonical scenarios (shared bottleneck, disjoint
// links) with per-algorithm expected shares derived from the §2 balance
// equations. One TEST_P per scenario.
#include <gtest/gtest.h>

#include <memory>

#include "cc/coupled.hpp"
#include "cc/ewtcp.hpp"
#include "cc/mptcp_lia.hpp"
#include "cc/rfc6356.hpp"
#include "cc/semicoupled.hpp"
#include "cc/uncoupled.hpp"
#include "mptcp/connection.hpp"
#include "sim_fixtures.hpp"
#include "stats/monitors.hpp"
#include "topo/network.hpp"
#include "topo/two_link.hpp"

namespace mpsim {
namespace {

using mptcp::MptcpConnection;
using test::SingleLink;

struct AlgoCase {
  std::string label;
  const cc::CongestionControl* algo;
  // Expected long-run fraction of a shared bottleneck taken by a
  // two-subflow multipath flow against one single-path TCP, from the
  // balance equations (equal RTTs):
  //   UNCOUPLED: two full TCPs -> 2/3.
  //   EWTCP (phi = 1/2): each subflow half-aggressive -> 1/2.
  //   SEMICOUPLED (a = 1): w_total = 2 sqrt(a/p) = sqrt2 * w_TCP
  //        -> sqrt2/(1+sqrt2) ~= 0.586.
  //   COUPLED / MPTCP / RFC6356: one TCP's worth -> 1/2.
  double shared_frac;
  double tolerance;
};

class AlgorithmMatrix : public ::testing::TestWithParam<AlgoCase> {};

TEST_P(AlgorithmMatrix, SharedBottleneckShareMatchesBalanceEquations) {
  const AlgoCase& c = GetParam();
  EventList events;
  topo::Network net(events);
  SingleLink link(net, 12e6, from_ms(10), topo::bdp_bytes(12e6, from_ms(20)));
  MptcpConnection mp(events, "mp", *c.algo);
  mp.add_subflow(link.fwd(), link.rev());
  mp.add_subflow(link.fwd(), link.rev());
  auto tcp = test::single_tcp(events, "tcp", link);
  mp.start(0);
  tcp->start(from_ms(53));
  events.run_until(from_sec(5));
  const auto mp0 = mp.delivered_pkts();
  const auto tcp0 = tcp->delivered_pkts();
  events.run_until(from_sec(95));
  const double mp_share = static_cast<double>(mp.delivered_pkts() - mp0);
  const double tcp_share = static_cast<double>(tcp->delivered_pkts() - tcp0);
  EXPECT_NEAR(mp_share / (mp_share + tcp_share), c.shared_frac, c.tolerance)
      << c.label;
}

TEST_P(AlgorithmMatrix, DisjointIdleLinksAreAggregated) {
  // Whatever the coupling, two idle disjoint links should be mostly
  // filled — even COUPLED, whose probe window grows unhindered when the
  // "other" path shows no loss either.
  const AlgoCase& c = GetParam();
  EventList events;
  topo::Network net(events);
  topo::LinkSpec spec;
  spec.rate_bps = 10e6;
  spec.one_way_delay = from_ms(10);
  spec.buf_bytes = topo::bdp_bytes(10e6, from_ms(20));
  topo::TwoLink links(net, spec, spec);
  MptcpConnection mp(events, "mp", *c.algo);
  mp.add_subflow(links.fwd(0), links.rev(0));
  mp.add_subflow(links.fwd(1), links.rev(1));
  mp.start(0);
  events.run_until(from_sec(5));
  const auto before = mp.delivered_pkts();
  events.run_until(from_sec(35));
  const double mbps = stats::pkts_to_mbps(mp.delivered_pkts() - before,
                                          from_sec(30));
  // COUPLED's synchronous wtotal/2 cuts make it lossier here; everyone
  // else should be near 18+ of the 20 Mb/s.
  const double floor_mbps = (c.algo == &cc::coupled()) ? 12.0 : 16.0;
  EXPECT_GT(mbps, floor_mbps) << c.label;
  EXPECT_EQ(mp.receiver().window_violations(), 0u);
}

TEST_P(AlgorithmMatrix, WindowsNeverBelowProbeFloor) {
  // §2.4: keep >= 1 packet on every path, always.
  const AlgoCase& c = GetParam();
  EventList events;
  topo::Network net(events);
  SingleLink link(net, 10e6, from_ms(10), topo::bdp_bytes(10e6, from_ms(20)));
  MptcpConnection mp(events, "mp", *c.algo);
  mp.add_subflow(link.fwd(), link.rev());
  mp.add_subflow(link.fwd(), link.rev());
  mp.start(0);
  bool ok = true;
  stats::PeriodicSampler sampler(events, "s", from_ms(100), [&](SimTime) {
    ok = ok && mp.subflow(0).cwnd() >= 1.0 && mp.subflow(1).cwnd() >= 1.0;
  });
  sampler.start(0);
  events.run_until(from_sec(30));
  EXPECT_TRUE(ok) << c.label;
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, AlgorithmMatrix,
    ::testing::Values(
        AlgoCase{"uncoupled", &cc::uncoupled(), 2.0 / 3.0, 0.10},
        AlgoCase{"ewtcp", &cc::ewtcp(), 0.5, 0.12},
        AlgoCase{"semicoupled", &cc::semicoupled(), 0.586, 0.12},
        AlgoCase{"coupled", &cc::coupled(), 0.5, 0.15},
        AlgoCase{"mptcp", &cc::mptcp_lia(), 0.5, 0.12},
        AlgoCase{"rfc6356", &cc::rfc6356(), 0.5, 0.12}),
    [](const ::testing::TestParamInfo<AlgoCase>& info) {
      return info.param.label;
    });

}  // namespace
}  // namespace mpsim
