// Unit tests for the five §2 algorithm boxes as pure window-update rules.
#include <gtest/gtest.h>

#include <cmath>

#include "cc/coupled.hpp"
#include "cc/ewtcp.hpp"
#include "cc/mptcp_lia.hpp"
#include "cc/rfc6356.hpp"
#include "cc/semicoupled.hpp"
#include "cc/uncoupled.hpp"
#include "fake_view.hpp"

namespace mpsim::cc {
namespace {

// ---------- UNCOUPLED (regular TCP per subflow) ----------

TEST(Uncoupled, IncreaseIsOneOverOwnWindow) {
  FakeView v({10.0, 40.0}, {0.1, 0.1});
  EXPECT_DOUBLE_EQ(uncoupled().increase_per_ack(v, 0), 0.1);
  EXPECT_DOUBLE_EQ(uncoupled().increase_per_ack(v, 1), 0.025);
}

TEST(Uncoupled, LossHalvesOwnWindow) {
  FakeView v({10.0, 40.0}, {0.1, 0.1});
  EXPECT_DOUBLE_EQ(uncoupled().window_after_loss(v, 0), 5.0);
  EXPECT_DOUBLE_EQ(uncoupled().window_after_loss(v, 1), 20.0);
}

TEST(Uncoupled, IndependentOfOtherSubflows) {
  FakeView small({10.0}, {0.1});
  FakeView big({10.0, 1000.0}, {0.1, 0.1});
  EXPECT_DOUBLE_EQ(uncoupled().increase_per_ack(small, 0),
                   uncoupled().increase_per_ack(big, 0));
}

// ---------- EWTCP ----------

TEST(Ewtcp, AutoWeightIsOneOverN) {
  FakeView v2({10.0, 10.0}, {0.1, 0.1});
  FakeView v4({10.0, 10.0, 10.0, 10.0}, {0.1, 0.1, 0.1, 0.1});
  EXPECT_DOUBLE_EQ(ewtcp().weight_for(v2), 0.5);
  EXPECT_DOUBLE_EQ(ewtcp().weight_for(v4), 0.25);
}

TEST(Ewtcp, IncreaseScalesWithWeightSquared) {
  // Equilibrium of (phi^2/w, w/2) AIMD is phi * w_TCP: per-ACK increase
  // must be phi^2 / w.
  FakeView v({20.0, 20.0}, {0.1, 0.1});
  EXPECT_DOUBLE_EQ(ewtcp().increase_per_ack(v, 0), 0.25 / 20.0);
}

TEST(Ewtcp, ExplicitWeightOverridesAuto) {
  Ewtcp heavy(1.0);
  FakeView v({20.0, 20.0}, {0.1, 0.1});
  EXPECT_DOUBLE_EQ(heavy.increase_per_ack(v, 0), 1.0 / 20.0);
}

TEST(Ewtcp, SinglePathWithAutoWeightIsRegularTcp) {
  FakeView v({20.0}, {0.1});
  EXPECT_DOUBLE_EQ(ewtcp().increase_per_ack(v, 0),
                   uncoupled().increase_per_ack(v, 0));
  EXPECT_DOUBLE_EQ(ewtcp().window_after_loss(v, 0),
                   uncoupled().window_after_loss(v, 0));
}

TEST(Ewtcp, LossHalvesOwnWindowOnly) {
  FakeView v({12.0, 30.0}, {0.1, 0.1});
  EXPECT_DOUBLE_EQ(ewtcp().window_after_loss(v, 1), 15.0);
}

// ---------- COUPLED ----------

TEST(Coupled, IncreaseUsesTotalWindow) {
  FakeView v({10.0, 30.0}, {0.1, 0.1});
  EXPECT_DOUBLE_EQ(coupled().increase_per_ack(v, 0), 1.0 / 40.0);
  EXPECT_DOUBLE_EQ(coupled().increase_per_ack(v, 1), 1.0 / 40.0);
}

TEST(Coupled, LossSubtractsHalfTotal) {
  FakeView v({30.0, 10.0}, {0.1, 0.1});
  EXPECT_DOUBLE_EQ(coupled().window_after_loss(v, 0), 10.0);  // 30 - 20
}

TEST(Coupled, LossFloorsAtZero) {
  // w_r < w_total/2: the decrease would go negative; clamp at 0 (the
  // caller's min-cwnd then keeps 1 packet for probing).
  FakeView v({5.0, 50.0}, {0.1, 0.1});
  EXPECT_DOUBLE_EQ(coupled().window_after_loss(v, 0), 0.0);
}

TEST(Coupled, SinglePathReducesToRegularTcp) {
  FakeView v({20.0}, {0.1});
  EXPECT_DOUBLE_EQ(coupled().increase_per_ack(v, 0), 1.0 / 20.0);
  EXPECT_DOUBLE_EQ(coupled().window_after_loss(v, 0), 10.0);
}

// ---------- SEMICOUPLED ----------

TEST(SemiCoupled, IncreaseIsAOverTotal) {
  FakeView v({10.0, 30.0}, {0.1, 0.1});
  EXPECT_DOUBLE_EQ(semicoupled().increase_per_ack(v, 0), 1.0 / 40.0);
  SemiCoupled agg(2.0);
  EXPECT_DOUBLE_EQ(agg.increase_per_ack(v, 0), 2.0 / 40.0);
}

TEST(SemiCoupled, LossHalvesOwnWindow) {
  FakeView v({10.0, 30.0}, {0.1, 0.1});
  EXPECT_DOUBLE_EQ(semicoupled().window_after_loss(v, 1), 15.0);
}

TEST(SemiCoupled, SinglePathReducesToRegularTcp) {
  FakeView v({20.0}, {0.1});
  EXPECT_DOUBLE_EQ(semicoupled().increase_per_ack(v, 0),
                   uncoupled().increase_per_ack(v, 0));
}

// ---------- MPTCP (LIA) ----------

TEST(MptcpLia, SinglePathReducesToRegularTcp) {
  FakeView v({20.0}, {0.1});
  EXPECT_DOUBLE_EQ(mptcp_lia().increase_per_ack(v, 0), 1.0 / 20.0);
  EXPECT_DOUBLE_EQ(mptcp_lia().window_after_loss(v, 0), 10.0);
}

TEST(MptcpLia, EqualPathsGiveOneOverNSquaredW) {
  // n equal paths (window w, same RTT): eq. (1)'s minimum is the full set,
  // (w/RTT^2) / (n w / RTT)^2 = 1/(n^2 w). Total window then equals one
  // TCP's — the §2.1 fairness goal.
  const double w = 25.0;
  for (std::size_t n = 1; n <= 6; ++n) {
    std::vector<double> ws(n, w), rtts(n, 0.1);
    FakeView v(ws, rtts);
    EXPECT_NEAR(mptcp_lia().increase_per_ack(v, 0),
                1.0 / (static_cast<double>(n * n) * w), 1e-12)
        << "n=" << n;
  }
}

TEST(MptcpLia, NeverExceedsRegularTcpIncrease) {
  // S = {r} is a candidate subset, so increase <= 1/w_r always: the
  // do-no-harm cap of §2.5.
  FakeView v({3.0, 50.0, 8.0}, {0.01, 0.5, 0.1});
  for (std::size_t r = 0; r < 3; ++r) {
    EXPECT_LE(mptcp_lia().increase_per_ack(v, r),
              1.0 / v.cwnd_pkts(r) + 1e-15);
  }
}

TEST(MptcpLia, LossHalvesOwnWindow) {
  FakeView v({10.0, 30.0}, {0.1, 0.2});
  EXPECT_DOUBLE_EQ(mptcp_lia().window_after_loss(v, 0), 5.0);
}

TEST(MptcpLia, TwoPathHandComputedCase) {
  // w = (10, 40), rtt = (0.1, 0.1).
  // Ordering by w/rtt^2: path0 (1000) then path1 (4000).
  // For r=0: candidates {0}: (10/0.01)/(10/0.1)^2 = 1000/10000 = 0.1;
  //          {0,1}: (4000)/(500)^2 = 0.016. min = 0.016.
  // For r=1: only {1} and {0,1} -> min((40/.01)/(400)^2=0.025, 0.016)=0.016.
  FakeView v({10.0, 40.0}, {0.1, 0.1});
  EXPECT_NEAR(mptcp_lia().increase_per_ack(v, 0), 0.016, 1e-12);
  EXPECT_NEAR(mptcp_lia().increase_per_ack(v, 1), 0.016, 1e-12);
}

TEST(MptcpLia, RttMismatchFavoursNeitherBeyondCap) {
  // Short-RTT path with big window dominates the denominator.
  FakeView v({10.0, 10.0}, {0.01, 1.0});
  const double inc0 = mptcp_lia().increase_per_ack(v, 0);
  const double inc1 = mptcp_lia().increase_per_ack(v, 1);
  EXPECT_LE(inc0, 1.0 / 10.0 + 1e-15);
  EXPECT_LE(inc1, inc0 + 1e-15);  // long-RTT path gets the smaller subset min
}

// ---------- RFC 6356 variant ----------

TEST(Rfc6356, AlphaMatchesEquation) {
  FakeView v({10.0, 40.0}, {0.1, 0.2});
  const double max_term = std::max(10.0 / 0.01, 40.0 / 0.04);
  const double sum_term = 10.0 / 0.1 + 40.0 / 0.2;
  const double expected = 50.0 * max_term / (sum_term * sum_term);
  EXPECT_NEAR(Rfc6356::alpha(v), expected, 1e-12);
}

TEST(Rfc6356, IncreaseCappedByRegularTcp) {
  FakeView v({2.0, 80.0}, {0.05, 0.3});
  for (std::size_t r = 0; r < 2; ++r) {
    EXPECT_LE(rfc6356().increase_per_ack(v, r), 1.0 / v.cwnd_pkts(r) + 1e-15);
  }
}

TEST(Rfc6356, EqualPathsMatchLia) {
  // With symmetric paths the binding subset is the full set, so the two
  // formulations coincide.
  FakeView v({25.0, 25.0, 25.0}, {0.1, 0.1, 0.1});
  for (std::size_t r = 0; r < 3; ++r) {
    EXPECT_NEAR(rfc6356().increase_per_ack(v, r),
                mptcp_lia().increase_per_ack(v, r), 1e-12);
  }
}

TEST(Rfc6356, SinglePathReducesToRegularTcp) {
  FakeView v({20.0}, {0.1});
  EXPECT_DOUBLE_EQ(rfc6356().increase_per_ack(v, 0), 1.0 / 20.0);
}

// ---------- cross-algorithm sanity ----------

TEST(AllAlgorithms, NamesAreDistinct) {
  EXPECT_NE(uncoupled().name(), ewtcp().name());
  EXPECT_NE(coupled().name(), semicoupled().name());
  EXPECT_NE(mptcp_lia().name(), rfc6356().name());
}

TEST(AllAlgorithms, TotalWindowHelper) {
  FakeView v({1.5, 2.5, 6.0}, {0.1, 0.1, 0.1});
  EXPECT_DOUBLE_EQ(total_window(v), 10.0);
}

}  // namespace
}  // namespace mpsim::cc
