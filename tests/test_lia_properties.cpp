// Property tests for eq. (1): the appendix's linear-search evaluation must
// agree exactly with brute-force subset enumeration, and the increase obeys
// the structural invariants the fairness proof relies on. Randomised over
// many window/RTT configurations via parameterised tests.
#include <gtest/gtest.h>

#include <vector>

#include "cc/mptcp_lia.hpp"
#include "core/rng.hpp"

namespace mpsim::cc {
namespace {

struct Config {
  std::size_t n;
  std::uint64_t seed;
};

class LiaProperty : public ::testing::TestWithParam<Config> {
 protected:
  void SetUp() override {
    const Config c = GetParam();
    Rng rng(c.seed);
    windows.resize(c.n);
    rtts.resize(c.n);
    for (std::size_t r = 0; r < c.n; ++r) {
      windows[r] = 1.0 + rng.next_double() * 99.0;          // [1, 100) pkts
      rtts[r] = 0.001 + rng.next_double() * 0.999;          // [1 ms, 1 s)
    }
  }
  std::vector<double> windows;
  std::vector<double> rtts;
};

TEST_P(LiaProperty, LinearSearchMatchesBruteForce) {
  for (std::size_t r = 0; r < windows.size(); ++r) {
    const double lin = MptcpLia::increase_linear(windows, rtts, r);
    const double bf = MptcpLia::increase_bruteforce(windows, rtts, r);
    EXPECT_NEAR(lin, bf, 1e-15 + 1e-12 * bf) << "r=" << r;
  }
}

TEST_P(LiaProperty, IncreaseCappedBySingletonSubset) {
  for (std::size_t r = 0; r < windows.size(); ++r) {
    EXPECT_LE(MptcpLia::increase_linear(windows, rtts, r),
              1.0 / windows[r] + 1e-15);
  }
}

TEST_P(LiaProperty, IncreaseIsPositive) {
  for (std::size_t r = 0; r < windows.size(); ++r) {
    EXPECT_GT(MptcpLia::increase_linear(windows, rtts, r), 0.0);
  }
}

TEST_P(LiaProperty, LastOrderedPathAttainsMaximumIncrease) {
  // Every path's candidate set includes the full prefix (all subflows), so
  // every increase is <= the full-set term. The last path in the
  // sqrt(w)/RTT ordering has *only* that candidate, so it attains the
  // maximum increase exactly.
  std::size_t last = 0;
  double best = -1.0;
  for (std::size_t r = 0; r < windows.size(); ++r) {
    const double key = windows[r] / (rtts[r] * rtts[r]);
    if (key > best) {
      best = key;
      last = r;
    }
  }
  const double inc_last = MptcpLia::increase_linear(windows, rtts, last);
  double max_inc = 0.0;
  for (std::size_t r = 0; r < windows.size(); ++r) {
    const double inc = MptcpLia::increase_linear(windows, rtts, r);
    EXPECT_LE(inc, inc_last * (1.0 + 1e-12)) << "r=" << r;
    max_inc = std::max(max_inc, inc);
  }
  EXPECT_NEAR(inc_last, max_inc, 1e-12 * max_inc);
}

TEST_P(LiaProperty, ScalingRttsUniformlyScalesIncrease) {
  // Multiplying every RTT by c multiplies eq. (1) by ... numerator 1/c^2,
  // denominator 1/c^2 -> invariant. Increase must be unchanged.
  std::vector<double> scaled = rtts;
  for (double& x : scaled) x *= 3.7;
  for (std::size_t r = 0; r < windows.size(); ++r) {
    const double a = MptcpLia::increase_linear(windows, rtts, r);
    const double b = MptcpLia::increase_linear(windows, scaled, r);
    EXPECT_NEAR(a, b, 1e-12 * a);
  }
}

TEST_P(LiaProperty, ScalingWindowsInverselyScalesIncrease) {
  // w -> c*w scales eq. (1) by 1/c (numerator c, denominator c^2).
  const double c = 2.5;
  std::vector<double> scaled = windows;
  for (double& x : scaled) x *= c;
  for (std::size_t r = 0; r < windows.size(); ++r) {
    const double a = MptcpLia::increase_linear(windows, rtts, r);
    const double b = MptcpLia::increase_linear(scaled, rtts, r);
    EXPECT_NEAR(a / c, b, 1e-12 * b);
  }
}

std::vector<Config> make_configs() {
  std::vector<Config> cfgs;
  for (std::size_t n : {1u, 2u, 3u, 4u, 5u, 6u, 8u}) {
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
      cfgs.push_back({n, seed * 977});
    }
  }
  return cfgs;
}

INSTANTIATE_TEST_SUITE_P(RandomConfigs, LiaProperty,
                         ::testing::ValuesIn(make_configs()),
                         [](const ::testing::TestParamInfo<Config>& info) {
                           return "n" + std::to_string(info.param.n) + "_s" +
                                  std::to_string(info.param.seed);
                         });

}  // namespace
}  // namespace mpsim::cc
