#include "scenario/registry.hpp"

#include "core/check.hpp"

namespace mpsim::scenario {

std::vector<topo::PathPair> BuiltTopology::host_paths(int src, int dst,
                                                      int n, Rng& rng) {
  (void)src;
  (void)dst;
  (void)n;
  (void)rng;
  return {};
}

namespace {

template <typename T>
const T* find_entry(const std::vector<T>& entries, const std::string& key) {
  for (const T& e : entries) {
    if (e.key == key) return &e;
  }
  return nullptr;
}

template <typename T>
std::string known_keys(const std::vector<T>& entries) {
  std::string out;
  for (const T& e : entries) {
    if (!out.empty()) out += ", ";
    out += e.key;
  }
  return out;
}

}  // namespace

const TopologyBuilder& Registry::topology(const std::string& key,
                                          const Section& at) const {
  if (const auto* e = find_entry(topologies_, key)) return e->builder;
  at.fail("unknown topology kind '" + key + "' (known: " +
          known_keys(topologies_) + ")");
}

const AlgorithmBuilder& Registry::algorithm(const std::string& key,
                                            const Section& at) const {
  if (const auto* e = find_entry(algorithms_, key)) return e->builder;
  at.fail("unknown algorithm kind '" + key + "' (known: " +
          known_keys(algorithms_) + ")");
}

const TrafficBuilder& Registry::traffic(const std::string& key,
                                        const Section& at) const {
  if (const auto* e = find_entry(traffics_, key)) return e->builder;
  at.fail("unknown traffic kind '" + key + "' (known: " +
          known_keys(traffics_) + ")");
}

const SchedulerBuilder& Registry::scheduler(const std::string& key,
                                            const Section& at) const {
  if (const auto* e = find_entry(schedulers_, key)) return e->builder;
  at.fail("unknown scheduler kind '" + key + "' (known: " +
          known_keys(schedulers_) + ")");
}

namespace {

template <typename T>
Registry::Names names_of(const std::vector<T>& entries) {
  Registry::Names n;
  for (const T& e : entries) n.entries.emplace_back(e.key, e.help);
  return n;
}

}  // namespace

Registry::Names Registry::topology_names() const {
  return names_of(topologies_);
}
Registry::Names Registry::algorithm_names() const {
  return names_of(algorithms_);
}
Registry::Names Registry::traffic_names() const {
  return names_of(traffics_);
}
Registry::Names Registry::scheduler_names() const {
  return names_of(schedulers_);
}

void Registry::add_topology(const std::string& key, const std::string& help,
                            TopologyBuilder b) {
  MPSIM_CHECK(find_entry(topologies_, key) == nullptr,
              "duplicate topology registration");
  topologies_.push_back({key, help, std::move(b)});
}

void Registry::add_algorithm(const std::string& key, const std::string& help,
                             AlgorithmBuilder b) {
  MPSIM_CHECK(find_entry(algorithms_, key) == nullptr,
              "duplicate algorithm registration");
  algorithms_.push_back({key, help, std::move(b)});
}

void Registry::add_traffic(const std::string& key, const std::string& help,
                           TrafficBuilder b) {
  MPSIM_CHECK(find_entry(traffics_, key) == nullptr,
              "duplicate traffic registration");
  traffics_.push_back({key, help, std::move(b)});
}

void Registry::add_scheduler(const std::string& key, const std::string& help,
                             SchedulerBuilder b) {
  MPSIM_CHECK(find_entry(schedulers_, key) == nullptr,
              "duplicate scheduler registration");
  schedulers_.push_back({key, help, std::move(b)});
}

}  // namespace mpsim::scenario
