#include "cc/olia.hpp"

#include <array>
#include <cmath>
#include <vector>

#include "core/check.hpp"

namespace mpsim::cc {

namespace {
// Same inline capacity as the LIA fast path: connections with more paths
// spill to the heap, unreachable for the paper's 2-8 path topologies.
constexpr std::size_t kInlinePaths = 32;
}  // namespace

double Olia::increase_per_ack(const ConnectionView& c, std::size_t r) const {
  MPSIM_CHECK(c.subflow_active(r),
              "OLIA increase requested for an inactive subflow");
  const std::size_t n = c.num_subflows();

  // Snapshot active subflows into stack buffers (per-ACK fast path).
  std::array<std::size_t, kInlinePaths> id_buf;
  std::vector<std::size_t> id_spill;
  std::size_t* ids = id_buf.data();
  if (n > kInlinePaths) {
    // Spill only beyond kInlinePaths subflows, like LIA.
    // mpsim-analyze: allow(hot-alloc)
    id_spill.resize(n);
    ids = id_spill.data();
  }
  std::size_t m = 0;
  double denom = 0.0;       // sum_p w_p / rtt_p
  double max_w = 0.0;       // the max-window set M's window
  double best_metric = 0.0; // the best-path set B's l_p^2 / rtt_p
  for (std::size_t s = 0; s < n; ++s) {
    if (!c.subflow_active(s)) continue;
    ids[m++] = s;
    const double w = c.cwnd_pkts(s);
    const double rtt = c.srtt_sec(s);
    MPSIM_CHECK(w > 0.0 && rtt > 0.0,
                "OLIA needs positive windows and RTTs");
    denom += w / rtt;
    const double l = std::max(1.0, c.loss_interval_pkts(s));
    max_w = std::max(max_w, w);
    best_metric = std::max(best_metric, l * l / rtt);
  }
  MPSIM_CHECK(m >= 1, "OLIA consulted with no active subflow");

  // Membership sweep with a small relative tolerance: the sets are defined
  // by exact maxima, and floating-point snapshots of "equal" paths must
  // land in the same set for the tie cases the algorithm reasons about.
  const auto near = [](double v, double target) {
    return v >= target * (1.0 - 1e-12);
  };
  std::size_t n_best = 0;       // |B|
  std::size_t n_max = 0;        // |M|
  std::size_t n_collected = 0;  // |B \ M|
  bool r_in_max = false;
  bool r_in_collected = false;
  for (std::size_t u = 0; u < m; ++u) {
    const std::size_t s = ids[u];
    const double w = c.cwnd_pkts(s);
    const double l = std::max(1.0, c.loss_interval_pkts(s));
    const bool in_best = near(l * l / c.srtt_sec(s), best_metric);
    const bool in_max = near(w, max_w);
    n_best += in_best ? 1 : 0;
    n_max += in_max ? 1 : 0;
    const bool collected = in_best && !in_max;
    n_collected += collected ? 1 : 0;
    if (s == r) {
      r_in_max = in_max;
      r_in_collected = collected;
    }
  }
  (void)n_best;

  const double w_r = c.cwnd_pkts(r);
  const double rtt_r = c.srtt_sec(r);
  const double nd = static_cast<double>(m);
  double alpha = 0.0;
  if (n_collected > 0) {
    if (r_in_collected) {
      alpha = 1.0 / (nd * static_cast<double>(n_collected));
    } else if (r_in_max) {
      alpha = -1.0 / (nd * static_cast<double>(n_max));
    }
  }
  // When every best path already has the max window, C is empty and OLIA
  // degenerates to the pure coupled term (alpha_r = 0 for all r).

  const double coupled = (w_r / (rtt_r * rtt_r)) / (denom * denom);
  // arXiv 1812.03210 bounds: the coupled term is at most the single-path
  // 1/w_r (denom >= w_r/rtt_r), and |alpha_r| <= 1/n by construction —
  // so the per-ACK increase can never exceed twice a regular TCP's, nor
  // shrink the window faster than 1/(n*w_r) per ACK.
  MPSIM_CHECK(coupled > 0.0 && coupled <= 1.0 / w_r + 1e-12,
              "OLIA coupled term outside (0, 1/w_r]");
  MPSIM_CHECK(std::abs(alpha) <= 1.0 / nd + 1e-12,
              "OLIA alpha term outside [-1/n, 1/n]");
  return coupled + alpha / w_r;
}

double Olia::window_after_loss(const ConnectionView& c, std::size_t r) const {
  return c.cwnd_pkts(r) / 2.0;
}

const Olia& olia() {
  static const Olia instance;
  return instance;
}

}  // namespace mpsim::cc
