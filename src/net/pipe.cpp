#include "net/pipe.hpp"

#include "core/check.hpp"

namespace mpsim::net {

Pipe::Pipe(EventList& events, std::string name, SimTime delay)
    : EventSource(std::move(name)), events_(events), delay_(delay) {
  MPSIM_CHECK(delay_ >= 0, "propagation delay must be non-negative");
}

void Pipe::receive(Packet& pkt) {
  const SimTime deliver_at = events_.now() + delay_;
  pkt.link_due = deliver_at;
  // Intrusive PacketFifo: links through the packet's embedded pointers,
  // no heap allocation despite the container-idiom name.
  // mpsim-analyze: allow(hot-alloc)
  in_flight_.push_back(pkt);
  events_.schedule_at(*this, deliver_at);
}

void Pipe::on_event() {
  // One wake-up was scheduled per packet, so exactly the due head is
  // delivered here; arrivals are FIFO because delay is constant.
  MPSIM_CHECK(!in_flight_.empty(), "pipe wake-up with nothing in flight");
  Packet* pkt = in_flight_.pop_front();
  MPSIM_CHECK(pkt->link_due == events_.now(),
              "pipe delivery must fire exactly on time");
  pkt->advance();
}

}  // namespace mpsim::net
