// Machine-readable run reports.
//
// Converts ExperimentRunner results into stats::Json trees and writes the
// BENCH_<name>.json files tracked across PRs. String annotations recorded
// via RunContext::annotate() — the resolved-spec echo (seed, sweep-point
// parameters, algorithm) — land in a "spec" object per run so downstream
// tooling never has to re-parse run names.
#pragma once

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "runner/experiment_runner.hpp"
#include "stats/json.hpp"

namespace mpsim::runner {

// One runner result as a Json object: name, resolved-spec echo, recorded
// values, run metrics, trace path when one was written.
inline stats::Json json_from_result(const RunResult& r) {
  stats::Json o = stats::Json::object();
  o.set("name", r.name);
  if (!r.annotations.empty()) {
    stats::Json spec = stats::Json::object();
    for (const auto& [k, v] : r.annotations) spec.set(k, v);
    o.set("spec", std::move(spec));
  }
  for (const auto& [k, v] : r.values) o.set(k, v);
  stats::Json m = stats::Json::object();
  m.set("wall_seconds", r.metrics.wall_seconds);
  m.set("events_processed", static_cast<double>(r.metrics.events_processed));
  m.set("events_per_sec", r.metrics.events_per_sec);
  m.set("peak_pool_packets",
        static_cast<double>(r.metrics.peak_pool_packets));
  if (!r.metrics.scheduler.empty()) {
    m.set("scheduler", r.metrics.scheduler);
    m.set("scheduler_switches",
          static_cast<double>(r.metrics.scheduler_switches));
  }
  o.set("metrics", std::move(m));
  if (!r.trace_path.empty()) o.set("trace_path", r.trace_path);
  return o;
}

inline stats::Json json_from_results(const std::vector<RunResult>& rs) {
  stats::Json a = stats::Json::array();
  for (const RunResult& r : rs) a.push(json_from_result(r));
  return a;
}

// Write BENCH_<name>.json in the working directory and report the path.
inline void write_json_file(const std::string& name,
                            const stats::Json& root) {
  const std::string path = "BENCH_" + name + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return;
  }
  const std::string body = root.dump();
  std::fwrite(body.data(), 1, body.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::printf("\n[json] wrote %s\n", path.c_str());
}

}  // namespace mpsim::runner
