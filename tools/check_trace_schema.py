#!/usr/bin/env python3
"""Validate a flight-recorder CSV trace against the record schema.

Checks (mirroring src/trace/record.hpp and the CsvSink format):
  * header is exactly  t_ns,type,obj,flow,sub,phase,a,b,x,y
  * every row has exactly 10 columns
  * t_ns is a non-negative integer and non-decreasing down the file
    (the recorder stores records in simulation order)
  * type is one of the known record-type names
  * flow / sub / phase / a / b are non-negative integers, phase <= 3
  * x / y parse as finite floats
  * obj is non-empty and contains no characters that would break the CSV

CI runs this over a short `bench_fig17_mobile --trace` emission so schema
drift between the C++ sinks and this validator fails the build.

Usage: tools/check_trace_schema.py TRACE.csv [TRACE2.csv ...]
Exits non-zero on the first malformed file.
"""

from __future__ import annotations

import math
import sys
from pathlib import Path

HEADER = "t_ns,type,obj,flow,sub,phase,a,b,x,y"
NUM_COLS = 10

# Must match record_type_name() in src/trace/sinks.cpp.
RECORD_TYPES = {
    "cwnd", "state", "queue", "queue_drop", "link_drop",
    "rate", "data_ack", "rcv_buf", "reinject", "goodput", "fault",
    "subflow_add", "subflow_drop", "rate_sample", "pacing",
}
MAX_PHASE = 3  # TcpPhase::kRtoRecovery


def fail(path: Path, lineno: int, msg: str) -> None:
    print(f"{path}:{lineno}: {msg}", file=sys.stderr)
    sys.exit(1)


def check_uint(path: Path, lineno: int, name: str, value: str) -> int:
    if not value.isdigit():
        fail(path, lineno, f"column '{name}' is not a non-negative integer: "
             f"{value!r}")
    return int(value)


def check_file(path: Path) -> int:
    try:
        lines = path.read_text().splitlines()
    except OSError as e:
        print(f"{path}: cannot read: {e}", file=sys.stderr)
        sys.exit(1)
    if not lines:
        fail(path, 1, "empty trace file (expected at least the header)")
    if lines[0] != HEADER:
        fail(path, 1, f"bad header: {lines[0]!r} (expected {HEADER!r})")

    prev_t = -1
    for lineno, line in enumerate(lines[1:], start=2):
        cols = line.split(",")
        if len(cols) != NUM_COLS:
            fail(path, lineno, f"expected {NUM_COLS} columns, got {len(cols)}")
        t_ns, rtype, obj, flow, sub, phase, a, b, x, y = cols

        t = check_uint(path, lineno, "t_ns", t_ns)
        if t < prev_t:
            fail(path, lineno, f"t_ns went backwards: {t} after {prev_t}")
        prev_t = t

        if rtype not in RECORD_TYPES:
            fail(path, lineno, f"unknown record type {rtype!r}")
        if not obj:
            fail(path, lineno, "empty obj name")
        if any(c in obj for c in ',"\n'):
            fail(path, lineno, f"obj name {obj!r} contains CSV metacharacters")

        check_uint(path, lineno, "flow", flow)
        check_uint(path, lineno, "sub", sub)
        p = check_uint(path, lineno, "phase", phase)
        if p > MAX_PHASE:
            fail(path, lineno, f"phase {p} out of range (max {MAX_PHASE})")
        check_uint(path, lineno, "a", a)
        check_uint(path, lineno, "b", b)

        for name, value in (("x", x), ("y", y)):
            try:
                v = float(value)
            except ValueError:
                fail(path, lineno, f"column '{name}' is not a float: "
                     f"{value!r}")
            if not math.isfinite(v):
                fail(path, lineno, f"column '{name}' is not finite: {value!r}")

    return len(lines) - 1


def main() -> int:
    if len(sys.argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    for arg in sys.argv[1:]:
        path = Path(arg)
        rows = check_file(path)
        print(f"{path}: OK ({rows} records)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
