// Fixture: wall-clock read inside an event handler -> hot-clock.
#include <chrono>

struct LatencyProbe {
  long long last_ns = 0;

  void on_event() {
    const auto now = std::chrono::steady_clock::now();
    last_ns = now.time_since_epoch().count();
  }
};
