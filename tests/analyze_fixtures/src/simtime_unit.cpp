// Fixture: hand-scaled SimTime unit factor -> simtime-unit.
using SimTime = long long;

struct Rescheduler {
  SimTime next = 0;

  void on_event() {
    const double seconds = 0.25;
    next = static_cast<SimTime>(seconds * 1e9);
  }
};
