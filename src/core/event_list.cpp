#include "core/event_list.hpp"

#include "core/check.hpp"
#include "core/env.hpp"

namespace mpsim {

SchedulerKind EventList::default_scheduler() {
  static const SchedulerKind kind = [] {
    const std::string s =
        env::env_choice("MPSIM_SCHEDULER", "wheel", {"wheel", "heap"});
    return s == "heap" ? SchedulerKind::kHeap : SchedulerKind::kWheel;
  }();
  return kind;
}

EventList::EventList(SchedulerKind kind) {
  if (kind == SchedulerKind::kAuto) kind = default_scheduler();
  if (kind == SchedulerKind::kWheel) wheel_ = std::make_unique<TimingWheel>();
}

EventList::Service& EventList::attach_service(std::size_t slot,
                                              std::unique_ptr<Service> s) {
  MPSIM_CHECK(slot < kServiceSlots, "service slot out of range");
  MPSIM_CHECK(!services_[slot], "simulation service already attached");
  services_[slot] = std::move(s);
  return *services_[slot];
}

std::size_t EventList::cancel(const EventSource& src) {
  if (wheel_) return wheel_->cancel(&src);
  // The heap gives no in-place removal; drain, filter, and re-heapify.
  // Entries keep their original (time, seq) keys, so dispatch order of the
  // survivors is unchanged.
  std::vector<Entry> keep;
  keep.reserve(heap_.size());
  std::size_t removed = 0;
  while (!heap_.empty()) {
    if (heap_.top().src == &src) {
      ++removed;
    } else {
      keep.push_back(heap_.top());
    }
    heap_.pop();
  }
  heap_ = decltype(heap_)(std::greater<>(), std::move(keep));
  return removed;
}

void EventList::schedule_at(EventSource& src, SimTime t) {
  MPSIM_CHECK(t >= now_, "cannot schedule in the past (clock rollback)");
  if (t < now_) t = now_;  // degrade gracefully when checks are off
  if (wheel_) {
    wheel_->schedule(t, next_seq_++, &src);
  } else {
    heap_.push(Entry{t, next_seq_++, &src});
  }
}

bool EventList::run_one() {
  if (wheel_) {
    if (wheel_->empty()) return false;
    const TimingWheel::Entry e = wheel_->pop();
    MPSIM_CHECK(e.time >= now_, "event clock must advance monotonically");
    now_ = e.time;
    ++processed_;
    e.src->on_event();
    return true;
  }
  if (heap_.empty()) return false;
  Entry e = heap_.top();
  heap_.pop();
  MPSIM_CHECK(e.time >= now_, "event clock must advance monotonically");
  now_ = e.time;
  ++processed_;
  e.src->on_event();
  return true;
}

void EventList::run_until(SimTime t) {
  if (wheel_) {
    TimingWheel::Entry e;
    while (wheel_->pop_if_before(t, e)) {
      now_ = e.time;
      ++processed_;
      e.src->on_event();
    }
  } else {
    while (!heap_.empty() && heap_.top().time <= t) {
      run_one();
    }
  }
  if (now_ < t) now_ = t;
}

void EventList::run_all() {
  while (run_one()) {
  }
}

}  // namespace mpsim
