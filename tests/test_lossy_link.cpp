#include "net/lossy_link.hpp"

#include <gtest/gtest.h>

#include "core/event_list.hpp"
#include "net/cbr.hpp"
#include "net/packet.hpp"

namespace mpsim::net {
namespace {

TEST(LossyLink, ZeroLossForwardsEverything) {
  EventList events;
  CountingSink sink("sink");
  LossyLink link("l", 0.0, 1);
  Route route({&link, &sink});
  for (int i = 0; i < 1000; ++i) Packet::alloc(events).send_on(route);
  EXPECT_EQ(sink.packets(), 1000u);
  EXPECT_EQ(link.drops(), 0u);
}

TEST(LossyLink, FullLossDropsEverything) {
  EventList events;
  CountingSink sink("sink");
  LossyLink link("l", 1.0, 1);
  Route route({&link, &sink});
  for (int i = 0; i < 100; ++i) Packet::alloc(events).send_on(route);
  EXPECT_EQ(sink.packets(), 0u);
  EXPECT_EQ(link.drops(), 100u);
}

TEST(LossyLink, DropFractionApproximatesProbability) {
  EventList events;
  CountingSink sink("sink");
  LossyLink link("l", 0.04, 99);
  Route route({&link, &sink});
  const int n = 100000;
  for (int i = 0; i < n; ++i) Packet::alloc(events).send_on(route);
  const double observed = static_cast<double>(link.drops()) / n;
  EXPECT_NEAR(observed, 0.04, 0.004);
  EXPECT_EQ(link.arrivals(), static_cast<std::uint64_t>(n));
}

TEST(LossyLink, SetLossProbTakesEffect) {
  EventList events;
  CountingSink sink("sink");
  LossyLink link("l", 0.0, 7);
  Route route({&link, &sink});
  for (int i = 0; i < 100; ++i) Packet::alloc(events).send_on(route);
  EXPECT_EQ(link.drops(), 0u);
  link.set_loss_prob(1.0);
  for (int i = 0; i < 100; ++i) Packet::alloc(events).send_on(route);
  EXPECT_EQ(link.drops(), 100u);
}

TEST(LossyLink, DroppedPacketsReturnToPool) {
  EventList events;
  const std::size_t base = Packet::pool_outstanding(events);
  CountingSink sink("sink");
  LossyLink link("l", 0.5, 3);
  Route route({&link, &sink});
  for (int i = 0; i < 1000; ++i) Packet::alloc(events).send_on(route);
  EXPECT_EQ(Packet::pool_outstanding(events), base);
}

}  // namespace
}  // namespace mpsim::net
