// Parallel multi-experiment runner.
//
// An ExperimentRunner executes N fully independent simulations (seed sweeps,
// parameter grids, algorithm comparisons) across a work-stealing thread
// pool. Each job gets its own RunContext owning a private EventList — and
// therefore a private packet pool and clock — so runs are exactly as
// deterministic in parallel as they are sequentially: the result set is
// byte-identical whatever the thread count or steal order (tests assert
// this). Per-run wall-clock, events/second and peak-pool counters are
// captured into a structured RunResult for harness reporting.
//
// Jobs must not share mutable state with each other; anything a job returns
// goes through RunContext::record() (scalars) or captured per-job output
// slots written only by that job.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "core/event_list.hpp"
#include "core/shard.hpp"
#include "trace/sinks.hpp"
#include "trace/trace.hpp"

namespace mpsim::runner {

// Measured cost of one run, filled in by the runner.
struct RunMetrics {
  double wall_seconds = 0.0;
  std::uint64_t events_processed = 0;
  double events_per_sec = 0.0;
  std::size_t peak_pool_packets = 0;  // high-water mark of the run's pool
  // The *resolved* scheduler this run's EventList used ("heap", "wheel" or
  // "adaptive") and, for the adaptive backend, how many heap<->wheel
  // migrations it performed — so bench numbers stay attributable. Both are
  // deterministic per run (never thread- or wall-time-dependent).
  std::string scheduler;
  std::uint64_t scheduler_switches = 0;
};

// Handed to each job: the simulation instance plus a keyed scalar recorder.
// The simulation is a ShardGroup of `shard_threads` EventLists; the default
// of one shard degenerates to the classic single-EventList run (a
// one-shard group forwards run_until straight to its only list), so every
// existing caller of events()/run_until() is unchanged.
class RunContext {
 public:
  RunContext(std::string name, SchedulerKind scheduler,
             int shard_threads = 1)
      : name_(std::move(name)),
        group_(shard_threads > 1 ? shard_threads : 1, scheduler) {}

  RunContext(const RunContext&) = delete;
  RunContext& operator=(const RunContext&) = delete;

  const std::string& name() const { return name_; }
  // Shard 0: the main list. Construction, single-shard topologies and all
  // pre/post-run bookkeeping happen here.
  EventList& events() { return group_.shard(0); }
  ShardGroup& shards() { return group_; }

  // Advance the whole simulation to `t` — barrier-windowed across shards
  // when sharded, plain EventList::run_until otherwise.
  void run_until(SimTime t) { group_.run_until(t); }

  // Record a named statistic (kept in insertion order).
  void record(std::string key, double value) {
    values_.emplace_back(std::move(key), value);
  }
  const std::vector<std::pair<std::string, double>>& values() const {
    return values_;
  }

  // Attach a machine-readable string to the result (resolved parameters:
  // seed, sweep-point values, algorithm name). Kept separate from values()
  // so numeric post-processing never has to skip non-metrics.
  void annotate(std::string key, std::string value) {
    annotations_.emplace_back(std::move(key), std::move(value));
  }
  const std::vector<std::pair<std::string, std::string>>& annotations()
      const {
    return annotations_;
  }

 private:
  std::string name_;
  ShardGroup group_;
  std::vector<std::pair<std::string, double>> values_;
  std::vector<std::pair<std::string, std::string>> annotations_;
};

struct RunResult {
  std::string name;
  RunMetrics metrics;
  std::vector<std::pair<std::string, double>> values;
  // String annotations from RunContext::annotate(): the resolved-spec echo
  // (seed, sweep-point parameters) written into per-run JSON.
  std::vector<std::pair<std::string, std::string>> annotations;
  // Path of this run's trace file ("" when tracing is off or the write
  // failed). Files are named from the run name alone, so contents and names
  // are byte-identical across thread counts.
  std::string trace_path;

  double value(const std::string& key, double fallback = 0.0) const {
    for (const auto& [k, v] : values) {
      if (k == key) return v;
    }
    return fallback;
  }
};

struct RunnerConfig {
  unsigned threads = 0;  // 0 => hardware concurrency; 1 => run on the caller
  SchedulerKind scheduler = SchedulerKind::kAuto;  // for every job's EventList
  // Shards *within* each job's simulation (conservative parallel DES);
  // 1 = classic sequential runs. Composes with `threads`: `threads` jobs
  // each fan out `shard_threads` workers.
  int shard_threads = 1;
  // Flight-recorder emission. kNone = off. Otherwise every job gets a
  // recorder installed before it runs, and its trace is flushed to
  // `trace_dir`/trace_<run-name><ext> after the job returns (run names are
  // sanitised for the filesystem; the flush happens on the worker thread but
  // each file is private to its run, so output is byte-identical whatever
  // the thread count).
  trace::SinkKind trace_sink = trace::SinkKind::kNone;
  std::string trace_dir = ".";
  std::size_t trace_capacity = 0;  // 0 => TraceRecorder::Config default
};

class ExperimentRunner {
 public:
  using Job = std::function<void(RunContext&)>;

  explicit ExperimentRunner(RunnerConfig cfg = {}) : cfg_(cfg) {}

  // Enqueue a named experiment. Jobs run in any order across threads, but
  // run_all() returns results in submission order.
  void add(std::string name, Job job) {
    jobs_.emplace_back(std::move(name), std::move(job));
  }

  std::size_t job_count() const { return jobs_.size(); }

  // Execute every job and return one RunResult per job, submission-ordered.
  // With threads == 1 everything runs inline on the calling thread.
  std::vector<RunResult> run_all();

  // The thread count run_all() will actually use.
  unsigned resolved_threads() const;

  static unsigned hardware_threads();

 private:
  RunnerConfig cfg_;
  std::vector<std::pair<std::string, Job>> jobs_;
};

// Aggregates over a result set.
double total_wall_seconds(const std::vector<RunResult>& results);
std::uint64_t total_events(const std::vector<RunResult>& results);

}  // namespace mpsim::runner
