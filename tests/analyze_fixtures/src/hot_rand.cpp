// Fixture: unseeded randomness inside an event handler -> hot-rand.
#include <cstdlib>

struct JitterSource {
  int jitter = 0;

  void on_event() {
    jitter = rand() % 7;
  }
};
