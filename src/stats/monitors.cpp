#include "stats/monitors.hpp"

#include "core/check.hpp"

namespace mpsim::stats {

PeriodicSampler::PeriodicSampler(EventList& events, std::string name,
                                 SimTime interval,
                                 std::function<void(SimTime)> fn)
    : EventSource(events, std::move(name)),
      events_(events),
      interval_(interval),
      fn_(std::move(fn)) {}

PeriodicSampler::~PeriodicSampler() { stop(); }

void PeriodicSampler::start(SimTime at) {
  MPSIM_CHECK(!running_, "PeriodicSampler::start while already running");
  running_ = true;
  events_.schedule_at(*this, at);
}

void PeriodicSampler::stop() {
  running_ = false;
  // Eager, not lazy: the wake-up must not outlive this object (the event
  // list would dispatch a dangling pointer) and must not keep a
  // run-until-empty loop ticking on a sampler that does nothing.
  events_.cancel(*this);
}

void PeriodicSampler::on_event() {
  fn_(events_.now());
  // fn_ may have called stop(); rescheduling would silently restart it.
  if (running_) events_.schedule_in(*this, interval_);
}

CounterSeries::CounterSeries(EventList& events, std::string name,
                             SimTime interval,
                             std::function<std::uint64_t()> counter)
    : interval_(interval),
      counter_(std::move(counter)),
      sampler_(events, std::move(name), interval, [this](SimTime t) {
        const std::uint64_t v = counter_();
        if (primed_) points_.push_back({t, v - last_});
        primed_ = true;
        last_ = v;
      }) {}

void CounterSeries::start(SimTime at) { sampler_.start(at); }

double CounterSeries::mean_rate() const {
  if (points_.empty()) return 0.0;
  std::uint64_t total = 0;
  for (const auto& p : points_) total += p.delta;
  // Each point covers the span since the previous sample, so the series
  // spans (first.t - interval_, last.t]. Deriving elapsed from the recorded
  // timestamps — instead of interval_ * count — keeps the rate correct when
  // the sampler was stopped and restarted (the first post-restart delta
  // covers the gap) and cannot overflow SimTime on long runs.
  const SimTime elapsed = points_.back().t - points_.front().t + interval_;
  return static_cast<double>(total) / to_sec(elapsed);
}

double pkts_to_mbps(std::uint64_t pkts, SimTime elapsed) {
  if (elapsed <= 0) return 0.0;
  return static_cast<double>(pkts) * net::kDataPacketBytes * 8.0 /
         to_sec(elapsed) / 1e6;
}

}  // namespace mpsim::stats
