// Optional TCP features: RFC 3042 Limited Transmit, the paper's
// per-window-quantum increase computation, and delayed ACKs.
#include <gtest/gtest.h>

#include "cc/mptcp_lia.hpp"
#include "cc/uncoupled.hpp"
#include "mptcp/connection.hpp"
#include "sim_fixtures.hpp"
#include "stats/monitors.hpp"
#include "topo/network.hpp"

namespace mpsim {
namespace {

using mptcp::ConnectionConfig;
using mptcp::MptcpConnection;
using test::SingleLink;

// --- Limited Transmit -----------------------------------------------------

double lossy_path_rate(bool limited_transmit, double loss) {
  EventList events;
  topo::Network net(events);
  auto& lossy = net.add_lossy("loss", loss, 77);
  auto& q = net.add_queue("q", 1e9, 1u << 30);
  auto& pipe = net.add_pipe("p", from_ms(25));
  auto& ack = net.add_pipe("a", from_ms(25));
  ConnectionConfig cfg;
  cfg.subflow.limited_transmit = limited_transmit;
  auto tcp = mptcp::make_single_path_tcp(events, "t", {&lossy, &q, &pipe},
                                         {&ack}, cfg);
  tcp->start(0);
  events.run_until(from_sec(5));
  const auto before = tcp->delivered_pkts();
  events.run_until(from_sec(65));
  return static_cast<double>(tcp->delivered_pkts() - before) / 60.0;
}

TEST(LimitedTransmit, HelpsAtSmallWindows) {
  // At 10% loss the window hovers at ~4 packets, right at the dupack
  // threshold; limited transmit keeps the ACK clock alive and converts
  // many would-be RTOs into fast retransmits (measured: ~+16%).
  const double with = lossy_path_rate(true, 0.10);
  const double without = lossy_path_rate(false, 0.10);
  EXPECT_GT(with, without * 1.05)
      << "with=" << with << " without=" << without;
}

TEST(LimitedTransmit, HarmlessAtLargeWindows) {
  const double with = lossy_path_rate(true, 0.001);
  const double without = lossy_path_rate(false, 0.001);
  EXPECT_NEAR(with / without, 1.0, 0.15);
}

TEST(LimitedTransmit, TimeoutCountDrops) {
  auto timeouts = [](bool lt) {
    EventList events;
    topo::Network net(events);
    auto& lossy = net.add_lossy("loss", 0.10, 77);
    auto& q = net.add_queue("q", 1e9, 1u << 30);
    auto& pipe = net.add_pipe("p", from_ms(25));
    auto& ack = net.add_pipe("a", from_ms(25));
    ConnectionConfig cfg;
    cfg.subflow.limited_transmit = lt;
    auto tcp = mptcp::make_single_path_tcp(events, "t", {&lossy, &q, &pipe},
                                           {&ack}, cfg);
    tcp->start(0);
    events.run_until(from_sec(120));
    return tcp->subflow(0).timeouts();
  };
  EXPECT_LT(timeouts(true) * 5, timeouts(false) * 4)
      << "expect >= 20% fewer timeouts with limited transmit";
}

// --- Quantized increase ---------------------------------------------------

TEST(QuantizedIncrease, ThroughputMatchesPerAckEvaluation) {
  auto run = [](bool quantized) {
    EventList events;
    topo::Network net(events);
    SingleLink l1(net, 10e6, from_ms(10), topo::bdp_bytes(10e6, from_ms(20)),
                  "l1");
    SingleLink l2(net, 10e6, from_ms(30), topo::bdp_bytes(10e6, from_ms(60)),
                  "l2");
    ConnectionConfig cfg;
    cfg.subflow.quantized_increase = quantized;
    MptcpConnection mp(events, "mp", cc::mptcp_lia(), cfg);
    mp.add_subflow(l1.fwd(), l1.rev());
    mp.add_subflow(l2.fwd(), l2.rev());
    mp.start(0);
    events.run_until(from_sec(30));
    return mp.delivered_pkts();
  };
  const double per_ack = static_cast<double>(run(false));
  const double quantized = static_cast<double>(run(true));
  // The paper states the optimisation is behaviourally equivalent; allow
  // a few percent of drift from the different update granularity.
  EXPECT_NEAR(quantized / per_ack, 1.0, 0.05);
}

// --- Delayed ACKs -----------------------------------------------------------

TEST(DelayedAck, HalvesAckTraffic) {
  auto acks = [](bool delayed) {
    EventList events;
    topo::Network net(events);
    SingleLink link(net, 10e6, from_ms(10),
                    topo::bdp_bytes(10e6, from_ms(20)));
    auto tcp = test::single_tcp(events, "t", link);
    tcp->receiver().set_delayed_ack(delayed);
    tcp->start(0);
    events.run_until(from_sec(10));
    return std::make_pair(tcp->receiver().acks_sent(),
                          tcp->receiver().packets_received());
  };
  const auto [acked_d, rcvd_d] = acks(true);
  const auto [acked_n, rcvd_n] = acks(false);
  EXPECT_EQ(acked_n, rcvd_n) << "per-packet acking without delack";
  EXPECT_LT(acked_d, rcvd_d * 7 / 10)
      << "delayed acks should cut ACK volume substantially";
}

TEST(DelayedAck, ThroughputBarelyAffected) {
  auto rate = [](bool delayed) {
    EventList events;
    topo::Network net(events);
    SingleLink link(net, 10e6, from_ms(10),
                    topo::bdp_bytes(10e6, from_ms(20)));
    auto tcp = test::single_tcp(events, "t", link);
    tcp->receiver().set_delayed_ack(delayed);
    tcp->start(0);
    events.run_until(from_sec(20));
    return static_cast<double>(tcp->delivered_pkts());
  };
  EXPECT_GT(rate(true), rate(false) * 0.85);
}

TEST(DelayedAck, LossStillDetectedPromptly) {
  // Out-of-order arrivals must be acked immediately even with delack on,
  // so fast retransmit happens and timeouts stay rare.
  EventList events;
  topo::Network net(events);
  SingleLink link(net, 10e6, from_ms(10), topo::bdp_bytes(10e6, from_ms(20)));
  auto tcp = test::single_tcp(events, "t", link);
  tcp->receiver().set_delayed_ack(true);
  tcp->start(0);
  events.run_until(from_sec(20));
  EXPECT_GT(tcp->subflow(0).loss_events(), 3u);
  EXPECT_LE(tcp->subflow(0).timeouts(), 1u);
}

TEST(DelayedAck, IdleFlushViaTimer) {
  // A single segment with nothing following must still be acked (after
  // the delack timeout), or the sender would stall forever.
  EventList events;
  topo::Network net(events);
  SingleLink link(net, 10e6, from_ms(10), 100 * net::kDataPacketBytes);
  ConnectionConfig cfg;
  cfg.app_limit_pkts = 1;  // exactly one packet: no second segment ever
  auto tcp = test::single_tcp(events, "t", link, cfg);
  tcp->receiver().set_delayed_ack(true);
  tcp->start(0);
  events.run_until(from_sec(2));
  EXPECT_TRUE(tcp->complete());
}

}  // namespace
}  // namespace mpsim
