#include "core/event_list.hpp"

#include "core/check.hpp"
#include "core/env.hpp"

namespace mpsim {

const char* to_string(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kAuto: return "auto";
    case SchedulerKind::kHeap: return "heap";
    case SchedulerKind::kWheel: return "wheel";
    case SchedulerKind::kAdaptive: return "adaptive";
  }
  return "?";
}

SchedulerKind EventList::default_scheduler() {
  static const SchedulerKind kind = [] {
    const std::string s = env::env_choice("MPSIM_SCHEDULER", "adaptive",
                                          {"adaptive", "wheel", "heap"});
    if (s == "heap") return SchedulerKind::kHeap;
    if (s == "wheel") return SchedulerKind::kWheel;
    return SchedulerKind::kAdaptive;
  }();
  return kind;
}

EventList::EventList(SchedulerKind kind) {
  if (kind == SchedulerKind::kAuto) kind = default_scheduler();
  mode_ = kind;
  // kAdaptive starts on the heap: simulations begin sparse (topology
  // construction schedules a handful of timers) and the first high-water
  // crossing migrates to a wheel. Constructors are cold by definition, so
  // no allocation suppression is needed here under hot-range linting.
  if (kind == SchedulerKind::kWheel) wheel_ = std::make_unique<TimingWheel>();
}

void EventList::set_adaptive_policy(std::size_t high, std::size_t low,
                                    std::uint64_t cooldown) {
  MPSIM_CHECK(high > low, "adaptive hysteresis needs high > low");
  high_water_ = high;
  low_water_ = low;
  cooldown_ = cooldown;
}

void EventList::switch_to_wheel() {
  MPSIM_CHECK(!wheel_, "already on the wheel backend");
  // Anchor the fresh wheel at the current clock so near-term entries land
  // on level 0. The heap drains in (time, seq) order; per-slot seqs may
  // arrive out of order (a slot spans many times at higher levels), which
  // the wheel's lazy slot sort absorbs.
  // mpsim-lint: allow(arena-discipline) — once per migration, not per event
  wheel_ = std::make_unique<TimingWheel>(static_cast<std::uint64_t>(now_));
  while (!heap_.empty()) {
    const Entry& e = heap_.top();
    wheel_->schedule(e.time, e.seq, e.src);
    heap_.pop();
  }
  ++switches_;
  last_switch_processed_ = processed_;
}

void EventList::switch_to_heap() {
  MPSIM_CHECK(wheel_, "already on the heap backend");
  std::vector<Entry> keep;
  std::vector<TimingWheel::Entry> pending;
  wheel_->drain(pending);
  // Backend migration: runs once per wheel->heap switch (the adaptive
  // scheduler rate-limits switches), never per event.
  // mpsim-analyze: allow(hot-alloc)
  keep.reserve(pending.size());
  for (const TimingWheel::Entry& e : pending) {
    // mpsim-analyze: allow(hot-alloc)
    keep.push_back(Entry{e.time, e.seq, e.src});
  }
  // Re-heapify in one O(n) pass; (time, seq) keys are untouched, so pop
  // order is exactly what the wheel would have produced.
  heap_ = decltype(heap_)(std::greater<>(), std::move(keep));
  wheel_.reset();
  ++switches_;
  last_switch_processed_ = processed_;
}

EventList::Service& EventList::attach_service(std::size_t slot,
                                              std::unique_ptr<Service> s) {
  MPSIM_CHECK(slot < kServiceSlots, "service slot out of range");
  MPSIM_CHECK(!services_[slot], "simulation service already attached");
  services_[slot] = std::move(s);
  return *services_[slot];
}

std::size_t EventList::cancel(const EventSource& src) {
  if (wheel_) return wheel_->cancel(&src);
  // The heap gives no in-place removal; drain, filter, and re-heapify.
  // Entries keep their original (time, seq) keys, so dispatch order of the
  // survivors is unchanged.
  std::vector<Entry> keep;
  keep.reserve(heap_.size());
  std::size_t removed = 0;
  while (!heap_.empty()) {
    if (heap_.top().src == &src) {
      ++removed;
    } else {
      keep.push_back(heap_.top());
    }
    heap_.pop();
  }
  heap_ = decltype(heap_)(std::greater<>(), std::move(keep));
  return removed;
}

bool EventList::run_one() {
  if (wheel_) {
    if (wheel_->empty()) return false;
    const TimingWheel::Entry e = wheel_->pop();
    MPSIM_CHECK(e.time >= now_, "event clock must advance monotonically");
    MPSIM_CHECK(e.time <= horizon_,
                "event dispatched past the causality horizon");
    now_ = e.time;
    ++processed_;
    dispatch_key_ = e.seq;
    e.src->on_event();
    dispatch_key_ = 0;
    after_dispatch();
    return true;
  }
  if (heap_.empty()) return false;
  Entry e = heap_.top();
  heap_.pop();
  MPSIM_CHECK(e.time >= now_, "event clock must advance monotonically");
  MPSIM_CHECK(e.time <= horizon_,
              "event dispatched past the causality horizon");
  now_ = e.time;
  ++processed_;
  dispatch_key_ = e.seq;
  e.src->on_event();
  dispatch_key_ = 0;
  return true;
}

void EventList::run_until(SimTime t) {
  // Re-test the active backend every iteration: on_event() may schedule
  // (crossing the high-water mark) and after_dispatch() may drain the wheel
  // below the low-water mark, so under kAdaptive the backend can flip
  // mid-loop.
  for (;;) {
    if (wheel_) {
      TimingWheel::Entry e;
      if (!wheel_->pop_if_before(t, e)) break;
      MPSIM_CHECK(e.time <= horizon_,
                  "event dispatched past the causality horizon");
      now_ = e.time;
      ++processed_;
      dispatch_key_ = e.seq;
      e.src->on_event();
      dispatch_key_ = 0;
      after_dispatch();
    } else {
      if (heap_.empty() || heap_.top().time > t) break;
      const Entry e = heap_.top();
      heap_.pop();
      MPSIM_CHECK(e.time >= now_, "event clock must advance monotonically");
      MPSIM_CHECK(e.time <= horizon_,
                  "event dispatched past the causality horizon");
      now_ = e.time;
      ++processed_;
      dispatch_key_ = e.seq;
      e.src->on_event();
      dispatch_key_ = 0;
    }
  }
  if (now_ < t) now_ = t;
}

void EventList::run_all() {
  while (run_one()) {
  }
}

}  // namespace mpsim
