// Unit tests for the rate-based congestion-control subsystem: the OLIA and
// BALIA window rules (arXiv 1812.03210), the per-subflow delivery-rate
// estimator, and Coupled BBR's state machine (arXiv 2002.06284).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "cc/balia.hpp"
#include "cc/coupled_bbr.hpp"
#include "cc/olia.hpp"
#include "cc/uncoupled.hpp"
#include "core/arena.hpp"
#include "core/check.hpp"
#include "fake_view.hpp"
#include "tcp/delivery_rate.hpp"

namespace mpsim::cc {
namespace {

// FakeView plus per-path loss intervals (OLIA's l_r) and RateHot rows
// (Coupled BBR's state), both defaulting to the plain-view behaviour.
class RateView : public FakeView {
 public:
  using FakeView::FakeView;

  double loss_interval_pkts(std::size_t r) const override {
    return loss_intervals_.empty() ? FakeView::loss_interval_pkts(r)
                                   : loss_intervals_[r];
  }
  RateHot* rate_state(std::size_t r) const override {
    return rows_.empty() ? nullptr
                         : const_cast<RateHot*>(&rows_[r]);
  }
  double inflight_pkts(std::size_t r) const override {
    return inflight_.empty() ? FakeView::inflight_pkts(r) : inflight_[r];
  }

  void add_rows() { rows_.resize(windows_.size()); }

  std::vector<double> loss_intervals_;
  std::vector<double> inflight_;
  std::vector<RateHot> rows_;
};

// ---------- OLIA ----------

TEST(Olia, SinglePathReducesToRegularTcp) {
  FakeView v({20.0}, {0.1});
  // One path: denom = w/rtt, coupled term = 1/w; B == M so alpha = 0.
  EXPECT_DOUBLE_EQ(olia().increase_per_ack(v, 0),
                   uncoupled().increase_per_ack(v, 0));
  EXPECT_DOUBLE_EQ(olia().window_after_loss(v, 0),
                   uncoupled().window_after_loss(v, 0));
}

TEST(Olia, SymmetricPathsGetThePureCoupledTerm) {
  // Equal windows, RTTs, and loss intervals: every path is in both B and M,
  // so C is empty and alpha vanishes, leaving w_r/rtt_r^2 / denom^2.
  FakeView v({10.0, 10.0}, {0.1, 0.1});
  const double denom = 10.0 / 0.1 + 10.0 / 0.1;
  const double expect = (10.0 / (0.1 * 0.1)) / (denom * denom);
  EXPECT_DOUBLE_EQ(olia().increase_per_ack(v, 0), expect);
  EXPECT_DOUBLE_EQ(olia().increase_per_ack(v, 1), expect);
}

TEST(Olia, CollectedPathGetsBoostAndMaxPathGetsBrake) {
  // Path 0: small window, best loss interval -> in B \ M (collected).
  // Path 1: max window, poor loss interval -> in M with C nonempty.
  RateView v({4.0, 40.0}, {0.1, 0.1});
  v.loss_intervals_ = {100.0, 10.0};
  const double denom = 4.0 / 0.1 + 40.0 / 0.1;
  const double coupled0 = (4.0 / (0.1 * 0.1)) / (denom * denom);
  const double coupled1 = (40.0 / (0.1 * 0.1)) / (denom * denom);
  // n = 2, |C| = 1, |M| = 1: alpha_0 = 1/2, alpha_1 = -1/2.
  EXPECT_DOUBLE_EQ(olia().increase_per_ack(v, 0), coupled0 + 0.5 / 4.0);
  EXPECT_DOUBLE_EQ(olia().increase_per_ack(v, 1), coupled1 - 0.5 / 40.0);
}

TEST(Olia, IncreaseBoundedByPaperTheorem) {
  // The coupled term is <= 1/w_r and |alpha| <= 1/n, so the per-ACK
  // increase is within (-1/(n w_r), 2/w_r) for every configuration.
  const double ws[] = {1.0, 3.0, 17.0, 120.0};
  const double rtts[] = {0.01, 0.08, 0.3};
  for (double w0 : ws)
    for (double w1 : ws)
      for (double r0 : rtts)
        for (double r1 : rtts) {
          RateView v({w0, w1}, {r0, r1});
          v.loss_intervals_ = {w0 * 3.0, w1};
          for (std::size_t r = 0; r < 2; ++r) {
            const double inc = olia().increase_per_ack(v, r);
            const double w = v.cwnd_pkts(r);
            EXPECT_LT(inc, 2.0 / w + 1e-12);
            EXPECT_GT(inc, -0.5 / w - 1e-12);
          }
        }
}

TEST(Olia, InactivePathExcludedFromCoupling) {
  RateView active({10.0, 10.0, 1000.0}, {0.1, 0.1, 0.1});
  class Dropped : public RateView {
   public:
    using RateView::RateView;
    bool subflow_active(std::size_t r) const override { return r != 2; }
  } dropped({10.0, 10.0, 1000.0}, {0.1, 0.1, 0.1});
  FakeView two({10.0, 10.0}, {0.1, 0.1});
  EXPECT_DOUBLE_EQ(olia().increase_per_ack(dropped, 0),
                   olia().increase_per_ack(two, 0));
  EXPECT_LT(olia().increase_per_ack(active, 0),
            olia().increase_per_ack(dropped, 0));
}

// ---------- BALIA ----------

TEST(Balia, SinglePathReducesToRegularTcp) {
  FakeView v({20.0}, {0.1});
  // alpha = 1: inc = (x/(rtt x^2)) * 1 * 1 = 1/w; decrease factor 1/2.
  EXPECT_DOUBLE_EQ(balia().increase_per_ack(v, 0),
                   uncoupled().increase_per_ack(v, 0));
  EXPECT_DOUBLE_EQ(balia().window_after_loss(v, 0),
                   uncoupled().window_after_loss(v, 0));
}

TEST(Balia, SymmetricPathsSplitTheAggressiveness) {
  // Equal rates: alpha = 1, inc = 1/(4 w) per path — a quarter of Reno's,
  // twice-coupled like the paper's COUPLED at equilibrium.
  FakeView v({10.0, 10.0}, {0.1, 0.1});
  EXPECT_DOUBLE_EQ(balia().increase_per_ack(v, 0), 1.0 / 40.0);
  EXPECT_DOUBLE_EQ(balia().window_after_loss(v, 0), 5.0);
}

TEST(Balia, IncreaseBoundedByDesignTheorem) {
  // (1+a)(4+a)/(10 a^2) <= 1 for a >= 1 ==> inc <= 1/w_r everywhere.
  const double ws[] = {1.0, 2.0, 9.0, 64.0, 500.0};
  const double rtts[] = {0.005, 0.05, 0.4};
  for (double w0 : ws)
    for (double w1 : ws)
      for (double r0 : rtts)
        for (double r1 : rtts) {
          FakeView v({w0, w1}, {r0, r1});
          for (std::size_t r = 0; r < 2; ++r) {
            const double inc = balia().increase_per_ack(v, r);
            EXPECT_GT(inc, 0.0);
            EXPECT_LE(inc, 1.0 / v.cwnd_pkts(r) + 1e-12);
          }
        }
}

TEST(Balia, SlowerPathBacksOffHarder) {
  // Path 1 is 4x slower (alpha = 4, capped at 1.5): decrease factor 3/4.
  FakeView v({40.0, 10.0}, {0.1, 0.1});
  EXPECT_DOUBLE_EQ(balia().window_after_loss(v, 0), 20.0);  // alpha=1 -> 1/2
  EXPECT_DOUBLE_EQ(balia().window_after_loss(v, 1), 2.5);   // capped -> 3/4
}

// ---------- DeliveryRateEstimator ----------

TEST(DeliveryRateEstimator, ComputesRateOverTheSampleInterval) {
  tcp::DeliveryRateEstimator est;
  for (std::uint64_t i = 0; i < 10; ++i) {
    est.on_send(i, from_ms(i), /*is_retransmit=*/false);
  }
  DeliveryRateSample s;
  // Cum-ACK 5 at t=100ms. The newest retired packet was sent at 4ms; the
  // delivery clock started at 0ms (first send of an idle pipe), so the
  // rate averages 5 pkts over the full 100ms delivery interval while the
  // RTT is the packet's own 96ms round trip.
  ASSERT_TRUE(est.on_ack(5, from_ms(100), s));
  EXPECT_EQ(est.delivered_pkts(), 5u);
  EXPECT_EQ(s.delivered_pkts, 5u);
  EXPECT_EQ(s.acked_pkts, 5u);
  EXPECT_DOUBLE_EQ(s.delivery_rate, 5.0 / 0.100);
  EXPECT_DOUBLE_EQ(s.rtt_sec, 0.096);
  EXPECT_TRUE(s.round_start);
}

TEST(DeliveryRateEstimator, DeliveredCounterIsMonotone) {
  tcp::DeliveryRateEstimator est;
  DeliveryRateSample s;
  std::uint64_t prev = 0;
  for (std::uint64_t i = 0; i < 50; ++i) {
    est.on_send(i, from_ms(2 * i), false);
    if (i % 3 == 2) {
      ASSERT_TRUE(est.on_ack(i + 1, from_ms(2 * i + 40), s));
      EXPECT_GT(est.delivered_pkts(), prev);
      prev = est.delivered_pkts();
    }
  }
  EXPECT_EQ(est.delivered_pkts(), 48u);
}

TEST(DeliveryRateEstimator, RetransmitSamplesAreDiscardedKarnStyle) {
  tcp::DeliveryRateEstimator est;
  est.on_send(0, from_ms(0), false);
  est.on_send(0, from_ms(30), false);  // resend of the same sequence
  DeliveryRateSample s;
  // The ACK's timing is ambiguous (original or resend?) — no sample.
  EXPECT_FALSE(est.on_ack(1, from_ms(50), s));
  EXPECT_EQ(est.delivered_pkts(), 1u);  // delivery still counts
}

TEST(DeliveryRateEstimator, HoleFillingJumpCannotInflateTheRate) {
  tcp::DeliveryRateEstimator est;
  // Packet 0 is lost; 1..9 park behind the hole at the receiver.
  for (std::uint64_t i = 0; i < 10; ++i) est.on_send(i, from_ms(i), false);
  // More data launched while the hole stalls the cumulative ACK.
  for (std::uint64_t i = 10; i < 20; ++i) {
    est.on_send(i, from_ms(180 + i), false);
  }
  est.on_send(0, from_ms(200), true);  // the retransmit that fills the hole
  // The fill releases all 20 packets at once. The sample must average them
  // over the 240ms the delivery clock has been running — crediting them
  // against the newest packet's 41ms round trip would fabricate a rate
  // several times what the path carried.
  DeliveryRateSample s;
  ASSERT_TRUE(est.on_ack(20, from_ms(240), s));
  EXPECT_EQ(s.acked_pkts, 20u);
  EXPECT_DOUBLE_EQ(s.delivery_rate, 20.0 / 0.240);
  EXPECT_DOUBLE_EQ(s.rtt_sec, 0.041);
}

TEST(DeliveryRateEstimator, AppLimitedMarksUntilInflightDrains) {
  tcp::DeliveryRateEstimator est;
  est.on_send(0, from_ms(0), false);
  est.on_send(1, from_ms(1), false);
  est.on_app_limited(/*inflight_pkts=*/2);
  EXPECT_TRUE(est.app_limited());
  est.on_send(2, from_ms(2), false);  // launched while app-limited
  DeliveryRateSample s;
  ASSERT_TRUE(est.on_ack(2, from_ms(40), s));
  EXPECT_FALSE(s.app_limited);  // sent before the app ran dry
  ASSERT_TRUE(est.on_ack(3, from_ms(42), s));
  EXPECT_TRUE(s.app_limited);   // sent during the app-limited phase
  est.on_send(3, from_ms(50), false);
  ASSERT_TRUE(est.on_ack(4, from_ms(90), s));
  EXPECT_FALSE(s.app_limited);  // phase over once marked inflight drained
}

TEST(DeliveryRateEstimator, OutOfOrderSendTripsTheCheck) {
  if (!checks_enabled()) {
    GTEST_SKIP() << "requires MPSIM_CHECK (MPSIM_CHECKS=off lane)";
  }
  ScopedThrowingChecks throwing;
  tcp::DeliveryRateEstimator est;
  est.on_send(0, from_ms(0), false);
  // Skipping sequence 1 would desynchronise the board from the stream.
  EXPECT_THROW(est.on_send(2, from_ms(1), false), CheckFailureError);
}

TEST(DeliveryRateEstimator, RoundsAdvanceOncePerDeliveredWindow) {
  tcp::DeliveryRateEstimator est;
  DeliveryRateSample s;
  // Window of 4: packets 0-3 are round 0; packets sent after the first
  // delivery of that round start the next round.
  for (std::uint64_t i = 0; i < 4; ++i) est.on_send(i, from_ms(i), false);
  ASSERT_TRUE(est.on_ack(4, from_ms(20), s));
  EXPECT_TRUE(s.round_start);
  for (std::uint64_t i = 4; i < 8; ++i) est.on_send(i, from_ms(21 + i), false);
  ASSERT_TRUE(est.on_ack(6, from_ms(45), s));
  EXPECT_TRUE(s.round_start);  // first delivery of the new round
  ASSERT_TRUE(est.on_ack(8, from_ms(47), s));
  EXPECT_FALSE(s.round_start);  // same round as the previous ACK
}

// ---------- Coupled BBR ----------

DeliveryRateSample sample(double rate, double rtt, double now,
                          std::uint64_t delivered, bool round_start,
                          bool app_limited = false) {
  DeliveryRateSample s;
  s.delivery_rate = rate;
  s.rtt_sec = rtt;
  s.now_sec = now;
  s.delivered_pkts = delivered;
  s.acked_pkts = 1;
  s.app_limited = app_limited;
  s.round_start = round_start;
  return s;
}

TEST(CoupledBbr, AdvertisesTheRateBasedSurface) {
  EXPECT_TRUE(coupled_bbr().rate_based());
  EXPECT_FALSE(olia().rate_based());
  EXPECT_FALSE(balia().rate_based());
  RateView v({10.0}, {0.1});
  EXPECT_DOUBLE_EQ(coupled_bbr().increase_per_ack(v, 0), 0.0);
  EXPECT_DOUBLE_EQ(coupled_bbr().window_after_loss(v, 0), 10.0);
}

TEST(CoupledBbr, PacingRateIsPositiveFromTheVeryFirstSample) {
  RateView v({10.0}, {0.1});
  v.add_rows();
  // Before any sample: ACK-clock fallback.
  EXPECT_GT(coupled_bbr().pacing_rate(v, 0), 0.0);
  // Even an all-app-limited, zero-rate sample must leave pacing_rate > 0.
  coupled_bbr().on_ack_sample(v, 0, sample(0.0, 0.1, 0.1, 1, true, true));
  EXPECT_GT(v.rows_[0].pacing_rate, 0.0);
}

TEST(CoupledBbr, StartupExitsAfterThreeFlatRounds) {
  RateView v({100.0}, {0.1});
  v.add_rows();
  v.inflight_ = {100.0};
  double now = 0.0;
  std::uint64_t delivered = 0;
  // Growing bandwidth: stays in STARTUP at high gain.
  for (double bw : {100.0, 150.0, 225.0}) {
    coupled_bbr().on_ack_sample(v, 0, sample(bw, 0.1, now += 0.1,
                                             delivered += 10, true));
    EXPECT_EQ(v.rows_[0].mode, 0u);  // STARTUP
    EXPECT_DOUBLE_EQ(v.rows_[0].pacing_gain, 2.885);
  }
  // Plateau: three rounds without 1.25x growth -> DRAIN below unit gain.
  for (int i = 0; i < 3; ++i) {
    coupled_bbr().on_ack_sample(v, 0, sample(230.0, 0.1, now += 0.1,
                                             delivered += 10, true));
  }
  EXPECT_EQ(v.rows_[0].mode, 1u);  // DRAIN
  EXPECT_LT(v.rows_[0].pacing_gain, 1.0);

  // Inflight at/below the BDP -> PROBE_BW.
  v.inflight_ = {1.0};
  coupled_bbr().on_ack_sample(v, 0, sample(230.0, 0.1, now += 0.1,
                                           delivered += 10, false));
  EXPECT_EQ(v.rows_[0].mode, 2u);  // PROBE_BW
}

TEST(CoupledBbr, LossInStartupExitsToDrainAndSlowsThePacer) {
  RateView v({20.0}, {0.1});
  v.add_rows();
  v.inflight_ = {20.0};
  coupled_bbr().on_ack_sample(v, 0, sample(100.0, 0.1, 0.1, 1, true));
  ASSERT_EQ(v.rows_[0].mode, 0u);  // still STARTUP
  const double startup_rate = v.rows_[0].pacing_rate;
  // Loss during STARTUP: without SACK the overshoot repairs via Karn-
  // ambiguous resends that produce no samples, so the loss itself must be
  // the "pipe full" signal — flip to DRAIN and republish the pacer at the
  // drain gain immediately, keeping the model window.
  EXPECT_DOUBLE_EQ(coupled_bbr().window_after_loss(v, 0), 20.0);
  EXPECT_EQ(v.rows_[0].mode, 1u);  // DRAIN
  EXPECT_LT(v.rows_[0].pacing_rate, startup_rate);
  EXPECT_NEAR(v.rows_[0].pacing_rate, 100.0 / 2.885, 1e-9);
  // Further losses outside STARTUP change nothing.
  EXPECT_DOUBLE_EQ(coupled_bbr().window_after_loss(v, 0), 20.0);
  EXPECT_EQ(v.rows_[0].mode, 1u);
  EXPECT_NEAR(v.rows_[0].pacing_rate, 100.0 / 2.885, 1e-9);
}

TEST(CoupledBbr, ProbeGainIsScaledByBandwidthShare) {
  // Two subflows in PROBE_BW at the probing phase: the probe overshoot
  // 0.25 is split in proportion to each path's share of total bandwidth.
  RateView v({10.0, 10.0}, {0.1, 0.1});
  v.add_rows();
  for (std::size_t r = 0; r < 2; ++r) {
    v.rows_[r].mode = 2;
    v.rows_[r].cycle_index = 0;  // gain 1.25 phase
    v.rows_[r].min_rtt_sec = 0.1;
  }
  v.rows_[0].btl_bw = v.rows_[0].bw_filter[0] = 300.0;
  v.rows_[1].btl_bw = v.rows_[1].bw_filter[0] = 100.0;
  coupled_bbr().on_ack_sample(v, 0, sample(300.0, 0.1, 0.05, 1, false));
  coupled_bbr().on_ack_sample(v, 1, sample(100.0, 0.1, 0.05, 1, false));
  EXPECT_DOUBLE_EQ(v.rows_[0].pacing_gain, 1.0 + 0.25 * 0.75);
  EXPECT_DOUBLE_EQ(v.rows_[1].pacing_gain, 1.0 + 0.25 * 0.25);
  // Combined probing overshoot never exceeds one single-path BBR flow's
  // 0.25 * total overshoot (it equals it only when one path carries all
  // the bandwidth).
  const double overshoot = (v.rows_[0].pacing_rate - v.rows_[0].btl_bw) +
                           (v.rows_[1].pacing_rate - v.rows_[1].btl_bw);
  EXPECT_DOUBLE_EQ(overshoot, 0.25 * (0.75 * 300.0 + 0.25 * 100.0));
  EXPECT_LT(overshoot, 0.25 * 400.0);
}

TEST(CoupledBbr, TargetWindowTracksGainTimesBdp) {
  RateView v({10.0}, {0.1});
  v.add_rows();
  EXPECT_DOUBLE_EQ(coupled_bbr().target_cwnd_pkts(v, 0), 10.0);  // no estimate
  v.rows_[0].btl_bw = 200.0;
  v.rows_[0].min_rtt_sec = 0.05;
  v.rows_[0].cwnd_gain = 2.0;
  EXPECT_DOUBLE_EQ(coupled_bbr().target_cwnd_pkts(v, 0), 2.0 * 200.0 * 0.05);
  // The floor keeps the estimator fed even on tiny BDPs.
  v.rows_[0].btl_bw = 1.0;
  EXPECT_DOUBLE_EQ(coupled_bbr().target_cwnd_pkts(v, 0), 4.0);
}

TEST(CoupledBbr, NonMonotoneDeliveredCounterTripsTheCheck) {
  if (!checks_enabled()) {
    GTEST_SKIP() << "requires MPSIM_CHECK (MPSIM_CHECKS=off lane)";
  }
  ScopedThrowingChecks throwing;
  RateView v({10.0}, {0.1});
  v.add_rows();
  coupled_bbr().on_ack_sample(v, 0, sample(100.0, 0.1, 0.1, 10, true));
  EXPECT_THROW(
      coupled_bbr().on_ack_sample(v, 0, sample(100.0, 0.1, 0.2, 5, false)),
      CheckFailureError);
}

}  // namespace
}  // namespace mpsim::cc
