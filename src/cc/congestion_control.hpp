// Pluggable multipath congestion control.
//
// A CongestionControl decides, as a pure function of connection state, (a)
// the additive increase applied to subflow r's window per newly acked packet
// during congestion avoidance, and (b) subflow r's new window after a loss
// event. This is exactly the design space §2 of the paper explores: all five
// algorithm boxes (REGULAR/uncoupled, EWTCP, COUPLED, SEMICOUPLED, MPTCP)
// differ only in these two rules.
//
// The interface is dual-mode. Window-based algorithms (the paper's five,
// OLIA, BALIA) use only the two rules above. Rate-based algorithms
// (cc/rate/, e.g. Coupled BBR) additionally consume per-ACK delivery-rate
// samples and publish a pacing rate + window gain; their per-subflow state
// machine lives in the arena's RateHot rows (reached via the view), so the
// algorithm object itself stays stateless and const — a single instance can
// serve any number of connections simultaneously in either mode.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace mpsim {
struct RateHot;  // core/arena.hpp; implementations include it for the layout
}  // namespace mpsim

namespace mpsim::cc {

// One delivery-rate measurement, produced by tcp::DeliveryRateEstimator on
// a cumulative-ACK advance and fed to rate-based controllers. Everything is
// in packets and double seconds — this struct crosses the cc boundary, so
// it carries no simulator-clock types.
struct DeliveryRateSample {
  double delivery_rate = 0.0;  // pkts/sec over the sampled interval
  double rtt_sec = 0.0;        // RTT of the newest packet in the sample
  double now_sec = 0.0;        // simulation clock at sampling
  std::uint64_t delivered_pkts = 0;  // monotone cumulative-delivery counter
  std::uint64_t acked_pkts = 0;      // packets this ACK newly delivered
  bool app_limited = false;    // interval not fully utilised by the app
  bool round_start = false;    // first sample of a new delivery round trip
};

// The slice of connection state congestion control may read.
class ConnectionView {
 public:
  virtual ~ConnectionView() = default;
  virtual std::size_t num_subflows() const = 0;
  virtual double cwnd_pkts(std::size_t r) const = 0;
  // Smoothed RTT in seconds (a sane fallback before the first sample).
  virtual double srtt_sec(std::size_t r) const = 0;
  // Whether subflow r currently participates in sending. Dropped (dead,
  // awaiting re-probe) subflows are excluded from every coupling sweep:
  // eq. (1)'s sums range over the paths actually in use, and a dead path's
  // frozen window must not dilute the increase applied to live ones.
  // Defaults to true so fixed-subflow-set views need not override it.
  virtual bool subflow_active(std::size_t /*r*/) const { return true; }
  // Packets in flight on subflow r. Rate-based controllers compare this to
  // the BDP (e.g. BBR's DRAIN exit); the default means "window fully used",
  // which is what fixed-vector test views imply.
  virtual double inflight_pkts(std::size_t r) const { return cwnd_pkts(r); }
  // Subflow r's mutable rate-control row, or nullptr when the connection
  // carries no rate-based state. Only rate-based controllers dereference
  // it; coupled ones sweep siblings' rows for bandwidth shares.
  virtual RateHot* rate_state(std::size_t /*r*/) const { return nullptr; }
  // OLIA's inter-loss interval proxy l_r: max(pkts acked since the last
  // loss event on r, pkts acked between its last two losses), >= 1. The
  // default — the current window — matches the steady-state expectation
  // (one window per RTT between losses) so plain test views stay valid.
  virtual double loss_interval_pkts(std::size_t r) const {
    return cwnd_pkts(r);
  }
};

class CongestionControl {
 public:
  virtual ~CongestionControl() = default;

  // Additive window increase (packets) for subflow `r` per acked packet.
  virtual double increase_per_ack(const ConnectionView& c,
                                  std::size_t r) const = 0;

  // Subflow r's window (packets) after one loss event. Callers clamp to the
  // configured minimum (the paper keeps windows >= 1 pkt so every path is
  // continuously probed, §2.4).
  virtual double window_after_loss(const ConnectionView& c,
                                   std::size_t r) const = 0;

  virtual std::string name() const = 0;

  // --- optional rate-based surface ---------------------------------------
  // A rate-based algorithm returns true here; the connection then allocates
  // a RateHot row per subflow, runs a DeliveryRateEstimator on every ACK,
  // paces launches at the published rate, and suppresses the subflow's own
  // AIMD growth (the controller owns the window via target_cwnd_pkts).

  virtual bool rate_based() const { return false; }

  // Consume one delivery-rate sample for subflow r. Mutates r's RateHot row
  // (and may read siblings' rows for coupling); must leave pacing_rate > 0.
  virtual void on_ack_sample(const ConnectionView& /*c*/, std::size_t /*r*/,
                             const DeliveryRateSample& /*s*/) const {}

  // The pacing rate (pkts/sec) the subflow's pacer should space launches
  // at. 0 disables pacing (the window-based default).
  virtual double pacing_rate(const ConnectionView& /*c*/,
                             std::size_t /*r*/) const {
    return 0.0;
  }

  // Gain applied to the estimated BDP when deriving the congestion window.
  virtual double cwnd_gain(const ConnectionView& /*c*/,
                           std::size_t /*r*/) const {
    return 2.0;
  }

  // Window target (packets) the connection applies after on_ack_sample.
  // The default keeps the current window (window-based algorithms never
  // reach this path).
  virtual double target_cwnd_pkts(const ConnectionView& c,
                                  std::size_t r) const {
    return c.cwnd_pkts(r);
  }
};

// Total window across all *active* subflows, in packets. Checks (throwing
// build) that every active subflow has a positive window and RTT and that
// at least one subflow is active — congestion control must never be
// consulted for a connection whose whole path set is dropped.
double total_window(const ConnectionView& c);

// Number of active subflows (the n in EWTCP's default 1/n weight).
std::size_t active_subflow_count(const ConnectionView& c);

}  // namespace mpsim::cc
