// Failure injection: outages at awkward moments, lossy ACK paths, link
// flapping — the robustness margin beyond the paper's scripted scenarios.
#include <gtest/gtest.h>

#include "cc/mptcp_lia.hpp"
#include "mptcp/connection.hpp"
#include "net/variable_rate_queue.hpp"
#include "sim_fixtures.hpp"
#include "topo/network.hpp"

namespace mpsim {
namespace {

using mptcp::ConnectionConfig;
using mptcp::MptcpConnection;
using test::SingleLink;

struct VarLink {
  VarLink(topo::Network& net, const std::string& name, double rate,
          SimTime one_way, std::uint64_t buf)
      : q(net.add_variable_queue(name + "/q", rate, buf)),
        pipe(net.add_pipe(name + "/p", one_way)),
        ack(net.add_pipe(name + "/a", one_way)) {}
  topo::Path fwd() { return {&q, &pipe}; }
  topo::Path rev() { return {&ack}; }
  net::VariableRateQueue& q;
  net::Pipe& pipe;
  net::Pipe& ack;
};

TEST(FailureInjection, OutageDuringSlowStart) {
  // The link dies while the very first window is in flight: the flow must
  // neither crash nor stall forever.
  EventList events;
  topo::Network net(events);
  VarLink link(net, "v", 10e6, from_ms(10), 100 * net::kDataPacketBytes);
  auto tcp = mptcp::make_single_path_tcp(events, "t", link.fwd(), link.rev());
  tcp->start(0);
  events.run_until(from_ms(25));  // mid slow start
  link.q.set_rate(0.0);
  events.run_until(from_sec(5));
  link.q.set_rate(10e6);
  events.run_until(from_sec(15));
  EXPECT_GT(tcp->subflow(0).timeouts(), 0u);
  EXPECT_GT(tcp->delivered_pkts(), 5000u) << "must recover to full speed";
  EXPECT_EQ(tcp->receiver().window_violations(), 0u);
}

TEST(FailureInjection, LossyAckPathStillDeliversEverything) {
  // 10% of ACKs vanish. Cumulative acking absorbs that: later ACKs cover
  // earlier ones and the stream completes.
  EventList events;
  topo::Network net(events);
  auto link = net.add_link("l", 10e6, from_ms(10),
                           topo::bdp_bytes(10e6, from_ms(20)));
  auto& ack_loss = net.add_lossy("ackloss", 0.10, 4242);
  auto& ack_pipe = net.add_pipe("ackpipe", from_ms(10));
  ConnectionConfig cfg;
  cfg.app_limit_pkts = 5000;
  auto tcp = mptcp::make_single_path_tcp(
      events, "t", topo::path_of({&link}), {&ack_loss, &ack_pipe}, cfg);
  tcp->start(0);
  events.run_until(from_sec(60));
  EXPECT_TRUE(tcp->complete());
  EXPECT_EQ(tcp->receiver().data_cum_ack(), 5000u);
}

TEST(FailureInjection, BothPathsDieAndRevive) {
  EventList events;
  topo::Network net(events);
  VarLink l1(net, "l1", 10e6, from_ms(10), 50 * net::kDataPacketBytes);
  VarLink l2(net, "l2", 10e6, from_ms(10), 50 * net::kDataPacketBytes);
  MptcpConnection mp(events, "mp", cc::mptcp_lia());
  mp.add_subflow(l1.fwd(), l1.rev());
  mp.add_subflow(l2.fwd(), l2.rev());
  mp.start(0);
  events.run_until(from_sec(3));
  l1.q.set_rate(0.0);
  l2.q.set_rate(0.0);
  events.run_until(from_sec(10));
  const auto during = mp.delivered_pkts();
  l1.q.set_rate(10e6);
  l2.q.set_rate(10e6);
  events.run_until(from_sec(25));
  EXPECT_GT(mp.delivered_pkts(), during + 15000u)
      << "full two-link speed after total blackout";
  EXPECT_EQ(mp.receiver().window_violations(), 0u);
}

TEST(FailureInjection, FlappingLink) {
  // One path flaps every 2 seconds; the connection should ride the stable
  // path at full speed throughout and opportunistically use the flapper.
  EventList events;
  topo::Network net(events);
  VarLink stable(net, "stable", 10e6, from_ms(10),
                 50 * net::kDataPacketBytes);
  VarLink flappy(net, "flappy", 10e6, from_ms(10),
                 50 * net::kDataPacketBytes);
  std::vector<net::RateSchedule::Change> changes;
  for (int i = 1; i <= 20; ++i) {
    changes.push_back({from_sec(2 * i), (i % 2 == 1) ? 0.0 : 10e6});
  }
  net::RateSchedule sched(events, flappy.q, std::move(changes));
  MptcpConnection mp(events, "mp", cc::mptcp_lia());
  mp.add_subflow(stable.fwd(), stable.rev());
  mp.add_subflow(flappy.fwd(), flappy.rev());
  mp.start(0);
  events.run_until(from_sec(40));
  // Stable path alone at ~10 Mb/s for 40 s ~= 33k packets; require at
  // least 90% of that despite the flapping sibling.
  EXPECT_GT(mp.delivered_pkts(), 30000u);
  EXPECT_EQ(mp.receiver().window_violations(), 0u);
  // The flapper carried some traffic during its up periods.
  EXPECT_GT(mp.subflow(1).packets_acked(), 1000u);
}

TEST(FailureInjection, DeadFromBirthSubflowDoesNotPoisonConnection) {
  // One path never works at all (rate 0 from the start).
  EventList events;
  topo::Network net(events);
  SingleLink good(net, 10e6, from_ms(10), 50 * net::kDataPacketBytes,
                  "good");
  VarLink dead(net, "dead", 10e6, from_ms(10), 50 * net::kDataPacketBytes);
  dead.q.set_rate(0.0);
  MptcpConnection mp(events, "mp", cc::mptcp_lia());
  mp.add_subflow(good.fwd(), good.rev());
  mp.add_subflow(dead.fwd(), dead.rev());
  mp.start(0);
  events.run_until(from_sec(20));
  EXPECT_GT(mp.delivered_pkts(), 14000u)
      << "the good path must run at ~ full speed";
  EXPECT_GT(mp.subflow(1).timeouts(), 0u);
}

TEST(FailureInjection, PacketPoolBalancedAfterChaos) {
  EventList events;
  const std::size_t base = net::Packet::pool_outstanding(events);
  {
    topo::Network net(events);
    VarLink l1(net, "l1", 10e6, from_ms(10), 20 * net::kDataPacketBytes);
    auto& lossy = net.add_lossy("loss", 0.05, 5);
    auto& pipe = net.add_pipe("p2", from_ms(30));
    auto& ack2 = net.add_pipe("a2", from_ms(30));
    ConnectionConfig cfg;
    cfg.app_limit_pkts = 3000;
    MptcpConnection mp(events, "mp", cc::mptcp_lia(), cfg);
    mp.add_subflow(l1.fwd(), l1.rev());
    mp.add_subflow({&lossy, &pipe}, {&ack2});
    mp.start(0);
    events.run_until(from_sec(2));
    l1.q.set_rate(0.0);
    events.run_until(from_sec(4));
    l1.q.set_rate(10e6);
    events.run_until(from_sec(60));
    EXPECT_TRUE(mp.complete());
    events.run_all();  // drain every in-flight packet and timer
  }
  EXPECT_EQ(net::Packet::pool_outstanding(events), base)
      << "every allocated packet must return to the pool";
}

}  // namespace
}  // namespace mpsim
