#include "scenario/engine.hpp"

#include <cstdio>
#include <memory>

#include "fault/fault.hpp"
#include "scenario/faults.hpp"
#include "scenario/registry.hpp"
#include "stats/goodput.hpp"
#include "stats/monitors.hpp"
#include "stats/summary.hpp"
#include "topo/network.hpp"
#include "trace/record.hpp"
#include "trace/trace.hpp"

namespace mpsim::scenario {

namespace {

std::string file_stem(const std::string& path) {
  std::string stem = path;
  const std::size_t slash = stem.find_last_of('/');
  if (slash != std::string::npos) stem = stem.substr(slash + 1);
  const std::size_t dot = stem.find_last_of('.');
  if (dot != std::string::npos && dot > 0) stem = stem.substr(0, dot);
  return stem.empty() ? "scenario" : stem;
}

std::string render_value(const Value& v) {
  switch (v.kind) {
    case Value::Kind::kString:
      return v.str;
    case Value::Kind::kBool:
      return v.boolean ? "true" : "false";
    case Value::Kind::kNumber: {
      char buf[40];
      std::snprintf(buf, sizeof buf, "%.10g", v.num);
      return buf;
    }
    case Value::Kind::kArray:
      break;
  }
  return "<array>";
}

struct Axis {
  std::string section;
  std::string key;
  std::vector<Value> values;
  int line = 0;
};

}  // namespace

Scenario Scenario::load(const std::string& path) {
  Spec spec = Spec::parse_file(path);
  std::string name = file_stem(path);
  if (const Section* s = spec.find_section("scenario")) {
    name = s->get_string("name", name);
  }
  return Scenario(std::move(spec), std::move(name));
}

Scenario Scenario::from_string(const std::string& text,
                               const std::string& file) {
  Spec spec = Spec::parse_string(text, file);
  std::string name = file_stem(file);
  if (const Section* s = spec.find_section("scenario")) {
    name = s->get_string("name", name);
  }
  return Scenario(std::move(spec), std::move(name));
}

std::vector<ResolvedRun> Scenario::expand() const {
  std::vector<Axis> axes;
  if (const Section* sweep = spec_.find_section("sweep")) {
    for (const auto& [key, value] : sweep->entries()) {
      sweep->find(key);  // consume: expansion is this key's reader
      const std::size_t dot = key.find('.');
      if (dot == std::string::npos || dot == 0 || dot + 1 == key.size()) {
        sweep->fail_at(value.line,
                       "sweep axis '" + key +
                           "' must be 'section.key' (e.g. topology.cap_c)");
      }
      Axis axis;
      axis.section = key.substr(0, dot);
      axis.key = key.substr(dot + 1);
      axis.line = value.line;
      if (value.kind == Value::Kind::kArray) {
        axis.values = value.items;
      } else {
        axis.values = {value};
      }
      if (axis.values.empty()) {
        sweep->fail_at(value.line,
                       "sweep axis '" + key + "' has no values");
      }
      // The axis must name an existing key so a typo cannot silently
      // sweep nothing.
      const Section* target = spec_.find_section(axis.section);
      if (target == nullptr) {
        sweep->fail_at(value.line, "sweep axis '" + key +
                                       "' names unknown section [" +
                                       axis.section + "]");
      }
      if (!target->has(axis.key)) {
        sweep->fail_at(value.line, "sweep axis '" + key +
                                       "' names a key not present in [" +
                                       axis.section + "]");
      }
      axes.push_back(std::move(axis));
    }
  }

  std::vector<std::uint64_t> seeds{1};
  if (const Section* run_sec = spec_.find_section("run")) {
    if (run_sec->has("seeds")) {
      seeds.clear();
      for (double s : run_sec->get_number_array("seeds")) {
        if (s < 0 || s != static_cast<double>(
                              static_cast<std::uint64_t>(s))) {
          run_sec->fail("'seeds' must be non-negative integers");
        }
        seeds.push_back(static_cast<std::uint64_t>(s));
      }
      if (seeds.empty()) run_sec->fail("'seeds' must not be empty");
    }
  }

  // Odometer over the axes (declaration order, first axis slowest), seeds
  // innermost.
  std::size_t points = 1;
  for (const Axis& a : axes) points *= a.values.size();

  std::vector<ResolvedRun> runs;
  for (std::size_t p = 0; p < points; ++p) {
    std::vector<std::size_t> idx(axes.size(), 0);
    std::size_t rem = p;
    for (std::size_t a = axes.size(); a-- > 0;) {
      idx[a] = rem % axes[a].values.size();
      rem /= axes[a].values.size();
    }
    for (std::uint64_t seed : seeds) {
      ResolvedRun run;
      run.spec = spec_;
      run.seed = seed;
      std::string point_label;
      for (std::size_t a = 0; a < axes.size(); ++a) {
        const Axis& axis = axes[a];
        const Value& v = axis.values[idx[a]];
        Section* target = run.spec.find_section(axis.section);
        if (!target->override_value(axis.key, v)) {
          // has() was checked above; losing the key here would be a bug.
          target->fail("sweep substitution failed for '" + axis.key + "'");
        }
        if (!point_label.empty()) point_label += ',';
        point_label += axis.section + "." + axis.key + "=" +
                       render_value(v);
        run.point.emplace_back(axis.section + "." + axis.key,
                               render_value(v));
      }
      run.name = name_;
      if (!point_label.empty()) run.name += "/" + point_label;
      if (seeds.size() > 1) run.name += "/s" + std::to_string(seed);
      run.point.emplace_back("seed", std::to_string(seed));
      runs.push_back(std::move(run));
    }
  }
  return runs;
}

void Scenario::validate(double time_scale) const {
  for (const ResolvedRun& run : expand()) {
    runner::RunContext ctx(run.name, SchedulerKind::kAuto);
    execute_run(run, time_scale, ctx, /*dry_run=*/true);
  }
}

std::vector<runner::RunResult> Scenario::run(const EngineOptions& opts) const {
  runner::RunnerConfig rcfg;
  rcfg.threads = opts.threads;
  rcfg.shard_threads = opts.shard_threads;
  rcfg.trace_sink = opts.trace_sink;
  rcfg.trace_dir = opts.trace_dir;
  rcfg.trace_capacity = opts.trace_capacity;
  runner::ExperimentRunner exp(rcfg);
  for (ResolvedRun& run : expand()) {
    const double scale = opts.time_scale;
    std::string name = run.name;  // read before the capture moves `run`
    exp.add(std::move(name),
            [run = std::move(run), scale](runner::RunContext& ctx) {
              execute_run(run, scale, ctx);
            });
  }
  return exp.run_all();
}

trace::SinkKind Scenario::spec_trace_sink() const {
  const Section* out = spec_.find_section("output");
  if (out == nullptr || !out->has("trace")) return trace::SinkKind::kNone;
  const std::string kind = out->get_string("trace");
  if (kind == "csv") return trace::SinkKind::kCsv;
  if (kind == "jsonl") return trace::SinkKind::kJsonl;
  if (kind == "null") return trace::SinkKind::kNull;
  if (kind == "off") return trace::SinkKind::kNone;
  out->fail("'trace' must be one of \"csv\", \"jsonl\", \"null\", \"off\"");
}

std::size_t Scenario::spec_trace_capacity() const {
  const Section* out = spec_.find_section("output");
  if (out == nullptr) return 0;
  const std::int64_t cap = out->get_int("trace_capacity", 0);
  if (cap < 0) out->fail("'trace_capacity' must be >= 0");
  return static_cast<std::size_t>(cap);
}

namespace {

// Periodic per-connection goodput samples into the flight recorder — the
// Fig. 17 timeline as kGoodput trace records.
class GoodputSampler final : public EventSource {
 public:
  GoodputSampler(EventList& events, trace::TraceRecorder& rec,
                 std::vector<const mptcp::MptcpConnection*> conns,
                 SimTime interval)
      : EventSource(events, "scenario/sampler"),
        events_(events),
        rec_(rec),
        conns_(std::move(conns)),
        interval_(interval) {
    for (const auto* c : conns_) {
      sid_.push_back(rec_.register_object("goodput/" + c->name()));
      base_.push_back(c->delivered_pkts());
    }
    events_.schedule_in(*this, interval_);
  }

  void on_event() override {
    trace::TraceRecorder* rec = &rec_;
    for (std::size_t i = 0; i < conns_.size(); ++i) {
      const std::uint64_t now_pkts = conns_[i]->delivered_pkts();
      const double mbps =
          stats::pkts_to_mbps(now_pkts - base_[i], interval_);
      MPSIM_TRACE(rec, trace::goodput_sample(events_.now(), sid_[i],
                                             conns_[i]->flow_id(), 0,
                                             mbps));
      base_[i] = now_pkts;
    }
    events_.schedule_in(*this, interval_);
  }

 private:
  EventList& events_;
  trace::TraceRecorder& rec_;
  std::vector<const mptcp::MptcpConnection*> conns_;
  SimTime interval_;
  std::vector<std::uint16_t> sid_;
  std::vector<std::uint64_t> base_;
};

// A requested output metric, parsed from [output] metrics.
struct MetricPlan {
  enum class Kind {
    kFlowMbps,
    kTotalMbps,
    kJain,
    kQueueLoss,
    kLossRatio,
    kPerHostMbps,
    kPerFlowMeanMbps,
  };
  Kind kind;
  int a = 0;  // loss_ratio numerator queue index
  int b = 0;  // loss_ratio denominator queue index
};

std::vector<MetricPlan> parse_metrics(const std::vector<std::string>& names,
                                      const Section* out) {
  std::vector<MetricPlan> plan;
  for (const std::string& m : names) {
    MetricPlan p{};
    if (m == "flow_mbps") {
      p.kind = MetricPlan::Kind::kFlowMbps;
    } else if (m == "total_mbps") {
      p.kind = MetricPlan::Kind::kTotalMbps;
    } else if (m == "jain") {
      p.kind = MetricPlan::Kind::kJain;
    } else if (m == "queue_loss") {
      p.kind = MetricPlan::Kind::kQueueLoss;
    } else if (m == "per_host_mbps") {
      p.kind = MetricPlan::Kind::kPerHostMbps;
    } else if (m == "per_flow_mean_mbps") {
      p.kind = MetricPlan::Kind::kPerFlowMeanMbps;
    } else if (m.rfind("loss_ratio:", 0) == 0) {
      p.kind = MetricPlan::Kind::kLossRatio;
      const std::string rest = m.substr(11);
      const std::size_t colon = rest.find(':');
      bool ok = colon != std::string::npos && colon > 0 &&
                colon + 1 < rest.size();
      if (ok) {
        const std::string a = rest.substr(0, colon);
        const std::string b = rest.substr(colon + 1);
        ok = a.find_first_not_of("0123456789") == std::string::npos &&
             b.find_first_not_of("0123456789") == std::string::npos;
        if (ok) {
          p.a = std::stoi(a);
          p.b = std::stoi(b);
        }
      }
      if (!ok && out != nullptr) {
        out->fail("metric '" + m +
                  "' must be 'loss_ratio:<queue>:<queue>'");
      }
    } else if (out != nullptr) {
      out->fail("unknown metric '" + m +
                "' (known: flow_mbps, total_mbps, jain, queue_loss, "
                "loss_ratio:<a>:<b>, per_host_mbps, per_flow_mean_mbps)");
    }
    plan.push_back(p);
  }
  return plan;
}

}  // namespace

void execute_run(const ResolvedRun& run, double time_scale,
                 runner::RunContext& ctx, bool dry_run) {
  const Spec& spec = run.spec;
  spec.mark_all_unused();

  if (const Section* scn = spec.find_section("scenario")) {
    scn->get_string("name", "");
  }
  if (const Section* sweep = spec.find_section("sweep")) {
    for (const auto& [key, value] : sweep->entries()) {
      (void)value;
      sweep->find(key);  // consumed by expand()
    }
  }

  const Section& run_sec = spec.require_section("run");
  BuildEnv env;
  env.time_scale = time_scale;
  env.scale_starts = run_sec.get_bool("scale_starts", false);
  // Traffic models that support path management consume this section; on
  // models that ignore it, its keys stay unread and check_all_used() below
  // rejects the spec rather than silently skipping path management.
  env.path_manager = spec.find_section("path_manager");
  // Same consumption contract for the data-placement policy section.
  env.scheduler = spec.find_section("scheduler");
  const SimTime warmup = env.scaled(run_sec.get_time("warmup"));
  const SimTime measure = env.scaled(run_sec.get_time("measure"));
  run_sec.find("seeds");  // consumed by expand()

  std::vector<std::string> metric_names = {"flow_mbps", "total_mbps"};
  SimTime sample_interval = 0;
  const Section* out = spec.find_section("output");
  if (out != nullptr) {
    if (out->has("metrics")) metric_names = out->get_string_array("metrics");
    sample_interval = env.scaled(out->get_time("sample_interval", 0));
    out->find("trace");           // consumed by the CLI / spec_trace_sink()
    out->find("trace_capacity");  // consumed by spec_trace_capacity()
  }
  const std::vector<MetricPlan> plan = parse_metrics(metric_names, out);

  const Registry& reg = builtin_registry();

  // Construction mirrors the bench binaries exactly: recorder (installed
  // by the runner before this function), then Network, topology, meter,
  // then connections in flow order. The network sees the run's shard
  // group; with one shard every element lands on ctx.events() as before.
  topo::Network net(ctx.events(), &ctx.shards());
  const Section& topo_sec = spec.require_section("topology");
  auto topology =
      reg.topology(topo_sec.get_string("kind"), topo_sec)(net, topo_sec, env);

  stats::GoodputMeter meter(ctx.events());

  const Section& algo_sec = spec.require_section("algorithm");
  AlgorithmInstance algo =
      reg.algorithm(algo_sec.get_string("kind"), algo_sec)(algo_sec);

  const Section& traffic_sec = spec.require_section("traffic");
  auto traffic =
      reg.traffic(traffic_sec.get_string("kind"), traffic_sec)(traffic_sec);
  seed_poisson_model(*traffic, run.seed);

  Rng rng(run.seed);
  traffic->build(ctx.events(), *topology, algo, rng, env);
  const auto conns = traffic->connections();
  for (const auto* c : conns) meter.track(*c);

  // Connections join the fault-target registry under their flow names, so
  // a [faults] script can reset their subflows.
  for (auto* c : traffic->mutable_connections()) {
    net.fault_targets().add_connection(c->name(), *c);
  }
  ParsedFaults faults;
  const Section* faults_sec = spec.find_section("faults");
  if (faults_sec != nullptr) {
    faults = parse_fault_plan(*faults_sec, net.fault_targets(), env);
  }

  // Sharded execution supports static flow sets only: mid-run construction
  // (Poisson arrivals, churn) and fault injection both act from one shard
  // on state owned by others, which the conservative windows do not order.
  if (net.multi_shard()) {
    if (faults_sec != nullptr) {
      faults_sec->fail("[faults] is not supported with --shard-threads > 1");
    }
    if (traffic->builds_during_run()) {
      traffic_sec.fail("traffic kind '" + traffic_sec.get_string("kind") +
                       "' builds flows during the run; not supported with "
                       "--shard-threads > 1");
    }
  }

  // Every key must have been read by now — a typo dies here, in dry runs
  // and real ones alike.
  spec.check_all_used();
  if (dry_run) return;

  std::unique_ptr<fault::RecoveryMonitor> recovery;
  std::unique_ptr<fault::FaultInjector> injector;
  if (!faults.plan.empty()) {
    recovery = std::make_unique<fault::RecoveryMonitor>(
        ctx.events(), faults.recovery_poll);
    for (const auto* c : conns) recovery->track(*c);
    injector = std::make_unique<fault::FaultInjector>(
        ctx.events(), net.fault_targets(), faults.plan, run.seed,
        recovery.get());
  }

  ctx.run_until(warmup);
  for (auto* q : topology->queues()) q->reset_stats();
  meter.mark();

  // One sampler per connection, on the connection's home EventList — a
  // sampler reads its connection's delivered counter every interval, which
  // must happen on the shard that owns it. The per-connection split (vs
  // one sampler for all) holds at one shard too, so the object-construction
  // sequence is identical across shard counts.
  std::vector<std::unique_ptr<GoodputSampler>> samplers;
  if (sample_interval > 0) {
    for (const auto* c : conns) {
      if (trace::TraceRecorder* rec =
              trace::TraceRecorder::find(c->events())) {
        samplers.push_back(std::make_unique<GoodputSampler>(
            c->events(), *rec,
            std::vector<const mptcp::MptcpConnection*>{c},
            sample_interval));
      }
    }
  }

  ctx.run_until(warmup + measure);

  const std::vector<double> mbps = meter.mbps();
  const auto queues = topology->queues();
  double total = 0.0;
  for (double v : mbps) total += v;
  for (const MetricPlan& p : plan) {
    switch (p.kind) {
      case MetricPlan::Kind::kFlowMbps:
        for (std::size_t i = 0; i < conns.size(); ++i) {
          ctx.record("mbps_" + conns[i]->name(), mbps[i]);
        }
        break;
      case MetricPlan::Kind::kTotalMbps:
        ctx.record("total_mbps", total);
        break;
      case MetricPlan::Kind::kJain:
        ctx.record("jain", stats::jain_index(mbps));
        break;
      case MetricPlan::Kind::kQueueLoss:
        for (std::size_t i = 0; i < queues.size(); ++i) {
          ctx.record("loss_q" + std::to_string(i), queues[i]->loss_rate());
        }
        break;
      case MetricPlan::Kind::kLossRatio: {
        if (p.a < 0 || p.b < 0 ||
            static_cast<std::size_t>(p.a) >= queues.size() ||
            static_cast<std::size_t>(p.b) >= queues.size()) {
          if (out != nullptr) {
            out->fail("loss_ratio queue index out of range (topology has " +
                      std::to_string(queues.size()) + " queues)");
          }
          break;
        }
        const double pa = queues[static_cast<std::size_t>(p.a)]->loss_rate();
        const double pb = queues[static_cast<std::size_t>(p.b)]->loss_rate();
        ctx.record("loss_ratio_" + std::to_string(p.a) + "_" +
                       std::to_string(p.b),
                   pb > 0 ? pa / pb : 0.0);
        break;
      }
      case MetricPlan::Kind::kPerHostMbps: {
        const int hosts = traffic->host_count();
        if (hosts <= 0) {
          if (out != nullptr) {
            out->fail("per_host_mbps needs host-addressable traffic");
          }
          break;
        }
        ctx.record("per_host_mbps", total / static_cast<double>(hosts));
        break;
      }
      case MetricPlan::Kind::kPerFlowMeanMbps:
        ctx.record("per_flow_mean_mbps",
                   conns.empty()
                       ? 0.0
                       : total / static_cast<double>(conns.size()));
        break;
    }
  }
  traffic->record_metrics(ctx);

  if (injector != nullptr) {
    recovery->finalize();
    std::uint64_t reinjections = 0;
    for (const auto* c : conns) {
      reinjections += c->scheduler().reinjected_total();
    }
    ctx.record("fault_events_applied",
               static_cast<double>(injector->events_applied()));
    ctx.record("fault_outages", static_cast<double>(recovery->outages()));
    ctx.record("fault_recoveries",
               static_cast<double>(recovery->recoveries()));
    ctx.record("fault_ttr_mean_s", recovery->mean_ttr_sec());
    ctx.record("fault_ttr_max_s", recovery->max_ttr_sec());
    ctx.record("fault_degraded_sec", recovery->degraded_sec());
    ctx.record("fault_degraded_goodput_fraction",
               recovery->degraded_goodput_fraction());
    ctx.record("fault_reinjections", static_cast<double>(reinjections));
  }

  // The machine-readable echo of this run's resolved parameters.
  ctx.annotate("algorithm", algo.name);
  if (env.scheduler != nullptr) {
    // "scheduler" is taken by the event-queue backend annotation.
    ctx.annotate("data_scheduler",
                 env.scheduler->get_string("kind", "stripe"));
  }
  for (const auto& [k, v] : run.point) ctx.annotate(k, v);
}

}  // namespace mpsim::scenario
