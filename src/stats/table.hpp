// Aligned-text table output for the benchmark harness, so each bench prints
// the same rows the paper's tables report.
#pragma once

#include <string>
#include <vector>

namespace mpsim::stats {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  // Convenience: first cell is a label, the rest are numbers.
  void add_row(const std::string& label, const std::vector<double>& values,
               int precision = 1);

  // Render with aligned columns.
  std::string to_string() const;
  void print() const;  // to stdout

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

std::string fmt_double(double v, int precision = 1);

}  // namespace mpsim::stats
