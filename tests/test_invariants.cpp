// Mutation-style tests for the MPSIM_CHECK invariant layer: each test
// deliberately violates one invariant class and asserts the corresponding
// check fires (throws CheckFailureError under ScopedThrowingChecks). If a
// check can be violated silently, the simulator is back to "trusted" rather
// than "checked" — these tests keep that from regressing.
#include "core/check.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "cc/coupled.hpp"
#include "cc/mptcp_lia.hpp"
#include "core/event_list.hpp"
#include "core/shard.hpp"
#include "fake_view.hpp"
#include "mptcp/connection.hpp"
#include "net/boundary.hpp"
#include "net/cbr.hpp"
#include "net/packet.hpp"
#include "net/pipe.hpp"
#include "net/queue.hpp"
#include "topo/network.hpp"

namespace mpsim {
namespace {

class Ticker : public EventSource {
 public:
  explicit Ticker(EventList& e) : EventSource(e, "ticker") {}
  void on_event() override { ++fired; }
  int fired = 0;
};

// --- invariant class: event-clock monotonicity ---------------------------

TEST(InvariantClockRollback, SchedulingInThePastFires) {
  ScopedThrowingChecks guard;
  EventList events;
  Ticker t(events);
  events.schedule_at(t, from_ms(10));
  events.run_until(from_ms(20));  // now() == 20ms
  EXPECT_THROW(events.schedule_at(t, from_ms(5)), CheckFailureError);
}

TEST(InvariantClockRollback, BothSchedulerBackendsFire) {
  ScopedThrowingChecks guard;
  for (auto kind : {SchedulerKind::kWheel, SchedulerKind::kHeap}) {
    EventList events(kind);
    Ticker t(events);
    events.schedule_at(t, from_ms(1));
    events.run_until(from_ms(2));
    EXPECT_THROW(events.schedule_at(t, 0), CheckFailureError);
  }
}

// --- invariant class: parallel-DES causality -----------------------------

TEST(InvariantCausality, DispatchPastHorizonFires) {
  // The conservative window protocol sets each shard's horizon to the
  // window bound before releasing it; a shard outrunning its lookahead
  // must trip the dispatch check, not silently reorder cross-shard events.
  ScopedThrowingChecks guard;
  EventList events;
  Ticker t(events);
  events.schedule_at(t, from_ms(10));
  events.set_horizon(from_ms(5));
  EXPECT_THROW(events.run_until(from_ms(20)), CheckFailureError);
  EXPECT_EQ(t.fired, 0) << "the over-horizon event must not have run";
}

TEST(InvariantCausality, DispatchWithinHorizonIsClean) {
  // Positive control: a horizon at-or-past every pending event changes
  // nothing.
  ScopedThrowingChecks guard;
  EventList events;
  Ticker t(events);
  events.schedule_at(t, from_ms(10));
  events.set_horizon(from_ms(10));
  events.run_until(from_ms(10));
  EXPECT_EQ(t.fired, 1);
}

TEST(InvariantCausality, UnstampedMailboxHandoffFires) {
  // Every packet crossing a shard boundary carries a (time, seq) stamp;
  // a stampless mailbox entry means the producer bypassed the boundary
  // protocol and the drain must refuse it.
  ScopedThrowingChecks guard;
  ShardGroup group(2, SchedulerKind::kHeap);
  net::Pipe pipe(group.shard(1), "p", from_ms(1));
  net::BoundarySink boundary("b", group.shard(0), pipe, group,
                             /*dst_shard=*/1);
  ASSERT_TRUE(boundary.cross_shard());
  boundary.push_unstamped_for_test();
  EXPECT_THROW(boundary.drain(), CheckFailureError);
}

TEST(InvariantCausality, ZeroDelayCrossShardEdgeRejected) {
  // A zero-delay cross-shard edge would force zero-width windows: no
  // conservative progress is possible, so construction must refuse it.
  ScopedThrowingChecks guard;
  ShardGroup group(2, SchedulerKind::kHeap);
  net::Pipe pipe(group.shard(1), "p", 0);
  EXPECT_THROW(net::BoundarySink("b", group.shard(0), pipe, group, 1),
               CheckFailureError);
}

// --- invariant class: packet conservation / pool discipline --------------

TEST(InvariantPacketPool, DoubleReleaseFires) {
  ScopedThrowingChecks guard;
  EventList events;
  net::Packet& p = net::Packet::alloc(events);
  p.release();
  EXPECT_THROW(p.release(), CheckFailureError);
}

TEST(InvariantPacketPool, ForeignPoolReleaseFires) {
  ScopedThrowingChecks guard;
  EventList sim_a;
  EventList sim_b;
  net::Packet& p = net::Packet::alloc(sim_a);
  // Hand the packet to the wrong simulation's pool.
  EXPECT_THROW(net::PacketPool::of(sim_b).release(p), CheckFailureError);
  p.release();  // cleanliness: back to its real pool
}

TEST(InvariantPacketPool, LedgerBalancesThroughChurn) {
  EventList events;
  std::vector<net::Packet*> live;
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 64; ++i) live.push_back(&net::Packet::alloc(events));
    while (live.size() > 8) {
      live.back()->release();
      live.pop_back();
    }
  }
  for (net::Packet* p : live) p->release();
  const net::PacketPool& pool = net::PacketPool::of(events);
  EXPECT_EQ(pool.outstanding(), 0u);
  EXPECT_EQ(pool.total_allocated(), pool.total_released());
}

// --- invariant class: queue occupancy within capacity --------------------

// The arena row reference is protected so a production Queue cannot reach
// this state; the tamper subclass simulates an accounting bug.
class TamperQueue : public net::Queue {
 public:
  using net::Queue::Queue;
  void corrupt_occupancy() { h_.queued_bytes = max_bytes_ + 1; }
  void corrupt_underflow() { h_.queued_bytes = 0; }
};

TEST(InvariantQueueOccupancy, OverCapacityEnqueueFires) {
  ScopedThrowingChecks guard;
  EventList events;
  TamperQueue q(events, "q", 10e6, 30000);
  q.corrupt_occupancy();
  net::Packet& p = net::Packet::alloc(events);
  net::Route route({&q});
  EXPECT_THROW(p.send_on(route), CheckFailureError);
  p.release();
}

TEST(InvariantQueueOccupancy, ByteAccountingUnderflowFires) {
  ScopedThrowingChecks guard;
  EventList events;
  TamperQueue q(events, "q", 10e6, 30000);
  net::CountingSink sink("sink");
  net::Route route({&q, &sink});
  net::Packet::alloc(events).send_on(route);  // enters service
  q.corrupt_underflow();  // lose the bytes of the in-service packet
  EXPECT_THROW(events.run_all(), CheckFailureError);
}

TEST(InvariantQueueOccupancy, ZeroRateQueueRejected) {
  ScopedThrowingChecks guard;
  EventList events;
  EXPECT_THROW(net::Queue(events, "q", 0.0, 30000), CheckFailureError);
}

// --- invariant class: data-ACK never above highest data-seq sent ---------

TEST(InvariantDataAck, AckBeyondSentFires) {
  ScopedThrowingChecks guard;
  EventList events;
  topo::Network net(events);
  auto link = net.add_link("l", 10e6, from_ms(5), 64000);
  auto& ack = net.add_pipe("a", from_ms(5));
  auto tcp = mptcp::make_single_path_tcp(events, "t",
                                         topo::path_of({&link}), {&ack});
  tcp->start(0);
  events.run_until(from_ms(100));  // some data flowing, acks processed

  // Forge an ACK acknowledging far more data than was ever scheduled and
  // deliver it straight to the subflow, as a mis-implemented receiver would.
  net::Packet& forged = net::Packet::alloc(events);
  forged.type = net::PacketType::kAck;
  forged.flow_id = tcp->flow_id();
  forged.subflow_id = 0;
  forged.subflow_cum_ack = tcp->subflow(0).packets_acked();
  forged.data_cum_ack = 1u << 30;  // way beyond anything sent
  forged.rcv_window = 1000;
  EXPECT_THROW(tcp->subflow(0).receive(forged), CheckFailureError);
}

// --- invariant class: subflow <-> data sequence-space consistency --------

TEST(InvariantSequenceSpaces, WrongFlowDeliveredToReceiverFires) {
  ScopedThrowingChecks guard;
  EventList events;
  topo::Network net(events);
  auto link = net.add_link("l", 10e6, from_ms(5), 64000);
  auto& ack = net.add_pipe("a", from_ms(5));
  auto tcp = mptcp::make_single_path_tcp(events, "t",
                                         topo::path_of({&link}), {&ack});
  tcp->start(0);
  events.run_until(from_ms(50));

  net::Packet& stray = net::Packet::alloc(events);
  stray.type = net::PacketType::kData;
  stray.flow_id = tcp->flow_id() + 999;  // some other connection's id
  stray.subflow_id = 0;
  EXPECT_THROW(tcp->receiver().receive(stray), CheckFailureError);
  stray.release();
}

TEST(InvariantSequenceSpaces, UnregisteredSubflowIdFires) {
  ScopedThrowingChecks guard;
  EventList events;
  topo::Network net(events);
  auto link = net.add_link("l", 10e6, from_ms(5), 64000);
  auto& ack = net.add_pipe("a", from_ms(5));
  auto tcp = mptcp::make_single_path_tcp(events, "t",
                                         topo::path_of({&link}), {&ack});
  tcp->start(0);
  events.run_until(from_ms(50));

  net::Packet& stray = net::Packet::alloc(events);
  stray.type = net::PacketType::kData;
  stray.flow_id = tcp->flow_id();
  stray.subflow_id = 7;  // only subflow 0 exists
  EXPECT_THROW(tcp->receiver().receive(stray), CheckFailureError);
  stray.release();
}

// --- invariant class: congestion-window bounds (eq. 1) -------------------

TEST(InvariantCwndBounds, NonPositiveWindowInViewFires) {
  ScopedThrowingChecks guard;
  cc::FakeView view({0.0, 10.0}, {0.1, 0.1});  // w_0 == 0 is impossible:
  // every subflow keeps cwnd >= min_cwnd (>= 1 pkt) so each path is probed
  EXPECT_THROW(cc::coupled().increase_per_ack(view, 0), CheckFailureError);
  EXPECT_THROW(cc::mptcp_lia().increase_per_ack(view, 1), CheckFailureError);
}

TEST(InvariantCwndBounds, NonPositiveRttInViewFires) {
  ScopedThrowingChecks guard;
  cc::FakeView view({5.0, 10.0}, {0.1, 0.0});
  EXPECT_THROW(cc::coupled().increase_per_ack(view, 0), CheckFailureError);
}

TEST(InvariantCwndBounds, LiaIncreaseStaysWithinEq1Bound) {
  // Positive control: on sane state the LIA increase obeys 0 < inc <= 1/w_r
  // (checked internally on every call; this exercises a spread of states).
  for (double w0 : {1.0, 4.0, 32.0, 500.0}) {
    for (double rtt1 : {0.01, 0.1, 0.5}) {
      cc::FakeView view({w0, 2 * w0 + 1}, {0.05, rtt1});
      const double inc = cc::mptcp_lia().increase_per_ack(view, 0);
      EXPECT_GT(inc, 0.0);
      EXPECT_LE(inc, 1.0 / w0 + 1e-12);
    }
  }
}

// --- the runtime toggle --------------------------------------------------

TEST(CheckToggle, ChecksEnabledByDefault) {
  // MPSIM_CHECKS is not set to "off" in the test environment.
  EXPECT_TRUE(checks_enabled());
}

TEST(CheckToggle, HandlerScopesNest) {
  ScopedThrowingChecks outer;
  {
    ScopedThrowingChecks inner;
    EXPECT_THROW(check_failed("f", 1, "x", "m"), CheckFailureError);
  }
  EXPECT_THROW(check_failed("f", 2, "y", "m"), CheckFailureError);
}

TEST(CheckToggle, FailureMessageNamesSite) {
  ScopedThrowingChecks guard;
  try {
    check_failed("somefile.cpp", 42, "a == b", "the message");
    FAIL() << "check_failed must not return";
  } catch (const CheckFailureError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("somefile.cpp:42"), std::string::npos);
    EXPECT_NE(what.find("a == b"), std::string::npos);
    EXPECT_NE(what.find("the message"), std::string::npos);
  }
}

}  // namespace
}  // namespace mpsim
