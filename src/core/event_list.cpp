#include "core/event_list.hpp"

#include <cassert>

namespace mpsim {

void EventList::schedule_at(EventSource& src, SimTime t) {
  assert(t >= now_ && "cannot schedule in the past");
  if (t < now_) t = now_;  // degrade gracefully in release builds
  heap_.push(Entry{t, next_seq_++, &src});
}

bool EventList::run_one() {
  if (heap_.empty()) return false;
  Entry e = heap_.top();
  heap_.pop();
  now_ = e.time;
  ++processed_;
  e.src->on_event();
  return true;
}

void EventList::run_until(SimTime t) {
  while (!heap_.empty() && heap_.top().time <= t) {
    run_one();
  }
  if (now_ < t) now_ = t;
}

void EventList::run_all() {
  while (run_one()) {
  }
}

}  // namespace mpsim
