// §2.3 — the RTT-mismatch thought experiment, analytically and simulated.
//
// Paper setup: WiFi path p1 = 4%, RTT 10 ms; 3G path p2 = 1%, RTT 100 ms.
// Fluid predictions (sqrt(2/p)/RTT): TCP-WiFi 707 pkt/s, TCP-3G 141,
// EWTCP (707+141)/2 = 424, COUPLED 141. We print those, then measure the
// packet-level simulator in both the paper-exact setting (where small
// windows make NewReno timeout-bound — noted in the output) and an
// 8x-reduced-loss setting where the fluid regime applies cleanly.
#include <memory>

#include "cc/coupled.hpp"
#include "cc/ewtcp.hpp"
#include "cc/mptcp_lia.hpp"
#include "harness.hpp"
#include "model/equilibrium.hpp"
#include "model/tcp_model.hpp"

namespace mpsim {
namespace {

struct Paths {
  Paths(topo::Network& net, double p_wifi, double p_3g)
      : wifi_loss(net.add_lossy("wifi/loss", p_wifi, 11)),
        wifi_q(net.add_queue("wifi/q", 1e9, 1u << 30)),
        wifi_pipe(net.add_pipe("wifi/pipe", from_ms(5))),
        wifi_ack(net.add_pipe("wifi/ack", from_ms(5))),
        g3_loss(net.add_lossy("3g/loss", p_3g, 13)),
        g3_q(net.add_queue("3g/q", 1e9, 1u << 30)),
        g3_pipe(net.add_pipe("3g/pipe", from_ms(50))),
        g3_ack(net.add_pipe("3g/ack", from_ms(50))) {}

  topo::Path wifi_fwd() { return {&wifi_loss, &wifi_q, &wifi_pipe}; }
  topo::Path wifi_rev() { return {&wifi_ack}; }
  topo::Path g3_fwd() { return {&g3_loss, &g3_q, &g3_pipe}; }
  topo::Path g3_rev() { return {&g3_ack}; }

  net::LossyLink& wifi_loss;
  net::Queue& wifi_q;
  net::Pipe& wifi_pipe;
  net::Pipe& wifi_ack;
  net::LossyLink& g3_loss;
  net::Queue& g3_q;
  net::Pipe& g3_pipe;
  net::Pipe& g3_ack;
};

enum class Flavor { kTcpWifi, kTcp3g, kEwtcp, kCoupled, kMptcp };

double run(Flavor flavor, double p_wifi, double p_3g) {
  EventList events;
  topo::Network net(events);
  Paths paths(net, p_wifi, p_3g);
  std::unique_ptr<mptcp::MptcpConnection> conn;
  switch (flavor) {
    case Flavor::kTcpWifi:
      conn = mptcp::make_single_path_tcp(events, "wifi", paths.wifi_fwd(),
                                         paths.wifi_rev());
      break;
    case Flavor::kTcp3g:
      conn = mptcp::make_single_path_tcp(events, "3g", paths.g3_fwd(),
                                         paths.g3_rev());
      break;
    default: {
      const cc::CongestionControl* algo =
          flavor == Flavor::kEwtcp
              ? static_cast<const cc::CongestionControl*>(&cc::ewtcp())
          : flavor == Flavor::kCoupled
              ? static_cast<const cc::CongestionControl*>(&cc::coupled())
              : &cc::mptcp_lia();
      conn = std::make_unique<mptcp::MptcpConnection>(events, "mp", *algo);
      conn->add_subflow(paths.wifi_fwd(), paths.wifi_rev());
      conn->add_subflow(paths.g3_fwd(), paths.g3_rev());
      break;
    }
  }
  conn->start(0);
  events.run_until(bench::scaled(5));
  const auto before = conn->delivered_pkts();
  events.run_until(bench::scaled(5) + bench::scaled(120));
  return static_cast<double>(conn->delivered_pkts() - before) /
         to_sec(bench::scaled(120));
}

void section(const char* title, double p_wifi, double p_3g) {
  std::printf("--- %s (p_wifi=%.3f, p_3g=%.3f) ---\n", title, p_wifi, p_3g);
  stats::Table table({"flow", "fluid pkt/s", "simulated pkt/s"});
  const double f_wifi = model::tcp_rate(p_wifi, 0.010);
  const double f_3g = model::tcp_rate(p_3g, 0.100);
  auto eq = model::mptcp_equilibrium({p_wifi, p_3g}, {0.010, 0.100});
  const double f_mptcp = model::total_rate(eq.windows, {0.010, 0.100});
  table.add_row("TCP on WiFi path", {f_wifi, run(Flavor::kTcpWifi, p_wifi, p_3g)}, 0);
  table.add_row("TCP on 3G path", {f_3g, run(Flavor::kTcp3g, p_wifi, p_3g)}, 0);
  table.add_row("EWTCP", {(f_wifi + f_3g) / 2.0, run(Flavor::kEwtcp, p_wifi, p_3g)}, 0);
  table.add_row("COUPLED", {f_3g, run(Flavor::kCoupled, p_wifi, p_3g)}, 0);
  table.add_row("MPTCP", {f_mptcp, run(Flavor::kMptcp, p_wifi, p_3g)}, 0);
  table.print();
  std::printf("\n");
}

}  // namespace
}  // namespace mpsim

int main() {
  using namespace mpsim;
  bench::banner("§2.3: RTT mismatch (WiFi 10 ms vs 3G 100 ms)",
                "fluid: TCP-WiFi 707, TCP-3G 141, EWTCP 424, COUPLED 141 "
                "pkt/s; MPTCP's goal is the best single path (707)");

  section("paper-exact losses", 0.04, 0.01);
  std::printf(
      "note: at 4%% loss the window is ~7 pkts, so NewReno is timeout-"
      "dominated and all simulated rates sit below fluid; orderings and "
      "ratios still match the paper's argument.\n\n");
  section("fluid-regime losses (8x lower)", 0.005, 0.00125);
  return 0;
}
