// §5 wired simulation of Fig. 14 — the fairness goals under extreme RTT
// mismatch, with queue-induced (endogenous) loss.
//
// Topology: S1 -> link1 (C1 = 250 pkt/s, RTT 500 ms) <- M -> link2
// (C2 = 500 pkt/s, RTT 50 ms) <- S2. Flow M stripes over both links, each
// shared with one single-path TCP.
//
// Paper's outcome: S1 130, S2 315, M 305 pkt/s with p1 = 0.22%,
// p2 = 0.28% — M matches what a single-path TCP would get at path 2's
// loss rate (315), NOT the 250 it would get if it priced in its own
// effect on the loss rate; and everyone is better off than without
// multipath.
#include <memory>

#include "cc/mptcp_lia.hpp"
#include "harness.hpp"
#include "topo/two_link.hpp"

namespace mpsim {
namespace {

struct Result {
  double s1, s2, m;
  double p1, p2;
};

Result run() {
  EventList events;
  topo::Network net(events);
  topo::TwoLink links(
      net, topo::LinkSpec::pkt_rate(250.0, from_ms(250), 1.0),
      topo::LinkSpec::pkt_rate(500.0, from_ms(25), 1.0));
  auto s1 = mptcp::make_single_path_tcp(events, "s1", links.fwd(0),
                                        links.rev(0));
  auto s2 = mptcp::make_single_path_tcp(events, "s2", links.fwd(1),
                                        links.rev(1));
  mptcp::MptcpConnection m(events, "m", cc::mptcp_lia());
  m.add_subflow(links.fwd(0), links.rev(0));
  m.add_subflow(links.fwd(1), links.rev(1));
  s1->start(0);
  s2->start(from_ms(111));
  m.start(from_ms(233));

  events.run_until(bench::scaled(50));
  links.queue(0).reset_stats();
  links.queue(1).reset_stats();
  const auto b1 = s1->delivered_pkts();
  const auto b2 = s2->delivered_pkts();
  const auto bm = m.delivered_pkts();
  events.run_until(bench::scaled(50) + bench::scaled(500));
  const double secs = to_sec(bench::scaled(500));
  return {static_cast<double>(s1->delivered_pkts() - b1) / secs,
          static_cast<double>(s2->delivered_pkts() - b2) / secs,
          static_cast<double>(m.delivered_pkts() - bm) / secs,
          100.0 * links.queue(0).loss_rate(),
          100.0 * links.queue(1).loss_rate()};
}

}  // namespace
}  // namespace mpsim

int main() {
  using namespace mpsim;
  bench::banner(
      "§5 simulation: C1=250 pkt/s RTT 500 ms, C2=500 pkt/s RTT 50 ms",
      "paper: S1 130, S2 315, M 305 pkt/s; p1 0.22%, p2 0.28%");

  const Result r = run();
  stats::Table table({"flow", "pkt/s", "paper pkt/s"});
  table.add_row({"S1 (single, link1)", stats::fmt_double(r.s1, 0), "130"});
  table.add_row({"S2 (single, link2)", stats::fmt_double(r.s2, 0), "315"});
  table.add_row({"M (multipath)", stats::fmt_double(r.m, 0), "305"});
  table.print();
  std::printf("\nloss rates: p1 = %.2f%% (paper 0.22), p2 = %.2f%% "
              "(paper 0.28)\n", r.p1, r.p2);
  std::printf(
      "expected shape: M ~= S2 > C1+C2 share-split naive 250; S1 below "
      "S2 despite link1 being less loaded (RTT 10x)\n");
  return 0;
}
