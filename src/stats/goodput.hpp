// Goodput measurement over a set of connections: snapshot delivered
// counters at mark(), read per-connection Mb/s later. Shared by the bench
// harness and the scenario engine so both report identical numbers from
// identical simulations.
#pragma once

#include <cstdint>
#include <vector>

#include "core/event_list.hpp"
#include "mptcp/connection.hpp"

namespace mpsim::stats {

// Measure the delivered goodput of each connection between warmup and end.
class GoodputMeter {
 public:
  explicit GoodputMeter(EventList& events) : events_(events) {}

  void track(const mptcp::MptcpConnection& conn) { conns_.push_back(&conn); }

  void mark();

  // Per-connection Mb/s since mark(). A zero-length measurement window
  // (mark() at measurement end, or mark() never called after time advanced)
  // yields 0.0 per connection rather than a NaN/inf rate.
  std::vector<double> mbps() const;

  double total_mbps() const;

  std::size_t tracked() const { return conns_.size(); }

 private:
  EventList& events_;
  std::vector<const mptcp::MptcpConnection*> conns_;
  std::vector<std::uint64_t> base_;
  SimTime t0_ = 0;
};

}  // namespace mpsim::stats
