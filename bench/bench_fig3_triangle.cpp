// Fig. 3 / §2.2 — congestion balancing on the three-link triangle.
//
// Links of unequal capacity (we use 12/10/8 Mb/s scaled 4x), flows A, B, C
// each striping over two links in a cycle. The paper's claim: EWTCP shares
// each link evenly, so flow totals and link loss rates are unequal;
// COUPLED uses a path only if it is least-congested, which equalises loss
// rates and flow totals (total capacity / 3 each). MPTCP lands close to
// COUPLED. We print per-flow goodput, per-link loss, Jain's index, and the
// max/min loss-rate ratio.
#include <array>
#include <memory>
#include <vector>

#include "cc/coupled.hpp"
#include "cc/ewtcp.hpp"
#include "cc/mptcp_lia.hpp"
#include "cc/semicoupled.hpp"
#include "harness.hpp"
#include "topo/triangle.hpp"

namespace mpsim {
namespace {

const std::array<double, 3> kRates = {48e6, 40e6, 32e6};
const SimTime kOneWay = from_ms(10);

struct Result {
  std::vector<double> flow_mbps;
  std::vector<double> link_loss;
  double jain;
  double loss_ratio;
};

Result run(const cc::CongestionControl& algo) {
  EventList events;
  topo::Network net(events);
  std::array<std::uint64_t, 3> bufs{};
  for (int i = 0; i < 3; ++i) {
    bufs[static_cast<std::size_t>(i)] =
        topo::bdp_bytes(kRates[static_cast<std::size_t>(i)], 2 * kOneWay);
  }
  topo::Triangle tri(net, kRates, kOneWay, bufs);
  bench::GoodputMeter meter(events);
  std::vector<std::unique_ptr<mptcp::MptcpConnection>> flows;
  for (int f = 0; f < topo::Triangle::kFlows; ++f) {
    auto conn = std::make_unique<mptcp::MptcpConnection>(
        events, std::string("flow") + char('A' + f), algo);
    conn->add_subflow(tri.fwd(f, 0), tri.rev(f, 0));
    conn->add_subflow(tri.fwd(f, 1), tri.rev(f, 1));
    conn->start(from_ms(13 * f));
    meter.track(*conn);
    flows.push_back(std::move(conn));
  }
  events.run_until(bench::scaled(40));
  meter.mark();
  for (int l = 0; l < 3; ++l) tri.queue(l).reset_stats();
  // Long average: window-based COUPLED sloshes its allocation between
  // paths on ~10 s timescales.
  events.run_until(bench::scaled(40) + bench::scaled(360));

  Result r;
  r.flow_mbps = meter.mbps();
  for (int l = 0; l < 3; ++l) r.link_loss.push_back(tri.queue(l).loss_rate());
  r.jain = stats::jain_index(r.flow_mbps);
  const double lmin = stats::minimum(r.link_loss);
  r.loss_ratio = lmin > 0 ? stats::maximum(r.link_loss) / lmin : 1e9;
  return r;
}

}  // namespace
}  // namespace mpsim

int main() {
  using namespace mpsim;
  bench::banner("Fig. 3 / §2.2: triangle congestion balancing",
                "EWTCP: unequal totals (11/11/8-like) and unequal loss; "
                "COUPLED: equal loss and equal totals; MPTCP in between");

  stats::Table table({"algorithm", "flow A", "flow B", "flow C", "Jain",
                      "max/min link loss"});
  struct Row {
    const char* name;
    const cc::CongestionControl* algo;
  };
  const Row rows[] = {
      {"EWTCP", &cc::ewtcp()},
      {"SEMICOUPLED", &cc::semicoupled()},
      {"MPTCP", &cc::mptcp_lia()},
      {"COUPLED", &cc::coupled()},
  };
  for (const Row& row : rows) {
    const Result r = run(*row.algo);
    table.add_row(row.name, {r.flow_mbps[0], r.flow_mbps[1], r.flow_mbps[2],
                             r.jain, r.loss_ratio},
                  2);
  }
  table.print();
  std::printf(
      "\nexpected shape: EWTCP clearly the worst balancer (the paper's "
      "point); the coupled family clusters together. Note Fig. 3 is a "
      "fluid-model argument in the paper — its perfect COUPLED balance "
      "(every flow %.0f Mb/s) assumes rate-based dynamics that "
      "window-based COUPLED only approaches on long averages.\n",
      (48.0 + 40.0 + 32.0) / 3.0);
  return 0;
}
