// Fixture: heap allocation inside an event handler -> hot-alloc.
#include <vector>

struct BurstSampler {
  std::vector<int> samples;

  void on_event() {
    samples.push_back(42);  // grows on the dispatch path
  }
};
