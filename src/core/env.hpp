// Strict environment-variable parsing.
//
// Every process-level knob (MPSIM_THREADS, MPSIM_BENCH_SCALE, MPSIM_TRACE,
// ...) goes through these helpers instead of ad-hoc getenv + atof/atol. The
// difference is failure behaviour: a malformed value ("MPSIM_THREADS=fast",
// "MPSIM_BENCH_SCALE=0x2") terminates the process with a diagnostic naming
// the variable and the accepted form, instead of silently coercing to 0 and
// running the wrong experiment.
//
// The parse_* functions are pure (no getenv, no exit) so tests can cover
// the accept/reject behaviour; the env_* wrappers read the environment and
// die on malformed input. An *unset* variable is never an error — it yields
// the fallback.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mpsim::env {

// Full-consumption numeric parses: leading/trailing whitespace is allowed,
// any other trailing text (unit suffixes, hex, empty string) is rejected.
bool parse_double(const std::string& text, double& out);
bool parse_int(const std::string& text, std::int64_t& out);

// Fallback when unset; diagnostic + exit(2) when set but not a finite
// number strictly greater than `min_exclusive`.
double env_double(const char* name, double fallback, double min_exclusive);

// Fallback when unset; diagnostic + exit(2) when set but not an integer in
// [min, max].
std::int64_t env_int(const char* name, std::int64_t fallback,
                     std::int64_t min, std::int64_t max);

// Fallback when unset; diagnostic + exit(2) when set to anything outside
// `allowed` (exact match, case-sensitive — knob values are documented
// lowercase).
std::string env_choice(const char* name, const std::string& fallback,
                       const std::vector<std::string>& allowed);

}  // namespace mpsim::env
