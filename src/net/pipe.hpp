// Propagation-delay element: delivers every packet `delay` after arrival,
// preserving order. Pipes never drop.
#pragma once

#include <deque>
#include <string>
#include <utility>

#include "core/event_list.hpp"
#include "net/packet.hpp"

namespace mpsim::net {

class Pipe : public PacketSink, public EventSource {
 public:
  Pipe(EventList& events, std::string name, SimTime delay);

  void receive(Packet& pkt) override;
  void on_event() override;
  const std::string& sink_name() const override { return EventSource::name(); }

  SimTime delay() const { return delay_; }

 private:
  EventList& events_;
  SimTime delay_;
  std::deque<std::pair<SimTime, Packet*>> in_flight_;  // (deliver_at, pkt)
};

}  // namespace mpsim::net
