// Fixture (negative control): allocation, clock reads and I/O in a
// function no dispatch root can reach. Must produce zero findings — the
// rules police the hot set, not the whole tree.
#include <chrono>
#include <iostream>
#include <vector>

struct TopologyBuilder {
  std::vector<int> nodes;

  void construct() {
    nodes.push_back(1);
    nodes.push_back(2);
    std::cout << "built at "
              << std::chrono::system_clock::now().time_since_epoch().count()
              << "\n";
  }
};
