// ExperimentRunner: submission-order results, metric capture, and the
// headline guarantee — a parallel sweep is byte-identical to a sequential
// one, because every job owns a private EventList (and packet pool).
#include "runner/experiment_runner.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/rng.hpp"
#include "mptcp/connection.hpp"
#include "net/packet.hpp"
#include "topo/network.hpp"

namespace mpsim::runner {
namespace {

// A small but non-trivial simulation: one TCP over a seed-varied link.
// Returns delivered packets — sensitive to every event-ordering decision,
// so equality across runs means the whole schedule matched. With
// `drain_and_check_pool`, the simulation is run to completion and the
// pool balance is recorded while the network objects are still alive.
void tcp_job(RunContext& ctx, std::uint64_t seed,
             bool drain_and_check_pool = false) {
  EventList& events = ctx.events();
  topo::Network net(events);
  Rng rng(seed);
  const double rate = 8e6 + rng.next_double() * 4e6;
  const SimTime delay = from_ms(5) + from_us(rng.next_double() * 1000);
  auto link = net.add_link("l", rate, delay, topo::bdp_bytes(rate, 2 * delay));
  auto& ack = net.add_pipe("a", delay);
  mptcp::ConnectionConfig cfg;
  if (drain_and_check_pool) cfg.app_limit_pkts = 500;  // finite transfer
  auto tcp = mptcp::make_single_path_tcp(ctx.events(), "t",
                                         topo::path_of({&link}), {&ack}, cfg);
  tcp->start(0);
  events.run_until(from_ms(1500));
  ctx.record("delivered_pkts", static_cast<double>(tcp->delivered_pkts()));
  ctx.record("events", static_cast<double>(events.events_processed()));
  if (drain_and_check_pool) {
    events.run_all();  // drain in-flight packets and timers
    ctx.record("outstanding_after",
               static_cast<double>(net::Packet::pool_outstanding(events)));
  }
}

std::vector<RunResult> sweep(unsigned threads, int njobs) {
  RunnerConfig cfg;
  cfg.threads = threads;
  ExperimentRunner r(cfg);
  for (int k = 0; k < njobs; ++k) {
    r.add("seed" + std::to_string(k), [k](RunContext& ctx) {
      tcp_job(ctx, 1000 + static_cast<std::uint64_t>(k));
    });
  }
  return r.run_all();
}

TEST(ExperimentRunner, ResultsInSubmissionOrder) {
  RunnerConfig cfg;
  cfg.threads = 4;
  ExperimentRunner r(cfg);
  for (int k = 0; k < 12; ++k) {
    r.add("job" + std::to_string(k), [k](RunContext& ctx) {
      ctx.record("k", static_cast<double>(k));
    });
  }
  const auto results = r.run_all();
  ASSERT_EQ(results.size(), 12u);
  for (int k = 0; k < 12; ++k) {
    EXPECT_EQ(results[static_cast<std::size_t>(k)].name,
              "job" + std::to_string(k));
    EXPECT_EQ(results[static_cast<std::size_t>(k)].value("k"), k);
  }
}

TEST(ExperimentRunner, MetricsArePopulated) {
  RunnerConfig cfg;
  cfg.threads = 1;
  ExperimentRunner r(cfg);
  r.add("tcp", [](RunContext& ctx) { tcp_job(ctx, 42); });
  const auto results = r.run_all();
  ASSERT_EQ(results.size(), 1u);
  const RunMetrics& m = results[0].metrics;
  EXPECT_GT(m.events_processed, 1000u);
  EXPECT_GT(m.wall_seconds, 0.0);
  EXPECT_GT(m.events_per_sec, 0.0);
  EXPECT_GT(m.peak_pool_packets, 0u) << "TCP must have allocated packets";
  EXPECT_GT(results[0].value("delivered_pkts"), 0.0);
}

TEST(ExperimentRunner, ParallelMatchesSequentialBitForBit) {
  const int njobs = 8;
  const auto seq = sweep(/*threads=*/1, njobs);
  const auto par = sweep(/*threads=*/8, njobs);
  ASSERT_EQ(seq.size(), par.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    EXPECT_EQ(seq[i].name, par[i].name);
    ASSERT_EQ(seq[i].values.size(), par[i].values.size());
    for (std::size_t j = 0; j < seq[i].values.size(); ++j) {
      EXPECT_EQ(seq[i].values[j].first, par[i].values[j].first);
      // Bit-for-bit: no tolerance.
      EXPECT_EQ(seq[i].values[j].second, par[i].values[j].second)
          << seq[i].name << "." << seq[i].values[j].first;
    }
    EXPECT_EQ(seq[i].metrics.events_processed, par[i].metrics.events_processed)
        << seq[i].name;
  }
  // The runs are seed-varied, so they must not all collapse to one value.
  std::set<double> distinct;
  for (const auto& r : seq) distinct.insert(r.value("delivered_pkts"));
  EXPECT_GT(distinct.size(), 1u);
}

TEST(ExperimentRunner, JobsActuallyRunConcurrently) {
  // With 4 threads and 4 jobs that wait for each other, all four must be
  // in flight at once (a sequential runner would deadlock; the barrier
  // gives up after a timeout to fail cleanly instead).
  RunnerConfig cfg;
  cfg.threads = 4;
  ExperimentRunner r(cfg);
  std::atomic<int> arrived{0};
  for (int k = 0; k < 4; ++k) {
    r.add("spin" + std::to_string(k), [&arrived](RunContext& ctx) {
      arrived.fetch_add(1);
      for (int spins = 0; arrived.load() < 4 && spins < 4000; ++spins) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      ctx.record("saw_all", arrived.load() >= 4 ? 1.0 : 0.0);
    });
  }
  const auto results = r.run_all();
  for (const auto& res : results) {
    EXPECT_EQ(res.value("saw_all"), 1.0) << res.name;
  }
}

TEST(ExperimentRunner, PoolAccountingIsolatedAcrossParallelRuns) {
  // Satellite (d): concurrent simulations on separate threads keep their
  // pool accounting private. Every run must end with zero outstanding
  // packets and report its own (positive) peak.
  const int njobs = 8;
  RunnerConfig cfg;
  cfg.threads = 8;
  ExperimentRunner r(cfg);
  for (int k = 0; k < njobs; ++k) {
    r.add("iso" + std::to_string(k), [k](RunContext& ctx) {
      tcp_job(ctx, 7000 + static_cast<std::uint64_t>(k),
              /*drain_and_check_pool=*/true);
    });
  }
  const auto results = r.run_all();
  for (int k = 0; k < njobs; ++k) {
    const auto& res = results[static_cast<std::size_t>(k)];
    EXPECT_EQ(res.value("outstanding_after", 999.0), 0.0)
        << "run " << k << " leaked packets";
    EXPECT_GT(res.metrics.peak_pool_packets, 0u);
  }
}

TEST(ExperimentRunner, SchedulerConfigAppliesToJobs) {
  for (SchedulerKind kind : {SchedulerKind::kHeap, SchedulerKind::kWheel}) {
    RunnerConfig cfg;
    cfg.threads = 1;
    cfg.scheduler = kind;
    ExperimentRunner r(cfg);
    r.add("probe", [kind](RunContext& ctx) {
      ctx.record("kind_ok",
                 ctx.events().scheduler_kind() == kind ? 1.0 : 0.0);
    });
    EXPECT_EQ(r.run_all()[0].value("kind_ok"), 1.0);
  }
}

TEST(ExperimentRunner, ZeroJobsIsFine) {
  ExperimentRunner r;
  EXPECT_TRUE(r.run_all().empty());
}

TEST(ExperimentRunner, ResolvedThreadsNeverExceedsJobs) {
  RunnerConfig cfg;
  cfg.threads = 16;
  ExperimentRunner r(cfg);
  r.add("only", [](RunContext&) {});
  EXPECT_EQ(r.resolved_threads(), 1u);
}

}  // namespace
}  // namespace mpsim::runner
