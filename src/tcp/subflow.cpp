#include "tcp/subflow.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <utility>

#include "core/check.hpp"

namespace mpsim::tcp {

Subflow::Subflow(EventList& events, std::string name, SubflowHost& host,
                 std::uint32_t flow_id, std::uint32_t subflow_id,
                 const SubflowConfig& cfg)
    : EventSource(events, std::move(name)),
      events_(events),
      host_(host),
      flow_id_(flow_id),
      subflow_id_(subflow_id),
      cfg_(cfg),
      hot_id_(SimArena::of(events).add_subflow()),
      h_(SimArena::of(events).subflow(hot_id_)),
      rtt_(cfg.min_rto, cfg.max_rto) {
  h_.cwnd = cfg.init_cwnd;
  h_.ssthresh = cfg.init_ssthresh;
  sync_rtt_mirror();
  // The recorder must be installed before the topology is built; a subflow
  // constructed earlier records nothing (by design: one branch, no lookup,
  // on every hot path below).
  trace_ = trace::TraceRecorder::find(events);
  if (trace_ != nullptr) {
    trace_id_ = trace_->register_object(EventSource::name());
  }
}

Subflow::~Subflow() {
  // Remove any pending RTO wake-up before the object goes away, then hand
  // the hot row back for reuse by the next subflow built on this
  // simulation. h_ dangles afterwards; nothing below touches it.
  events_.cancel(*this);
  if (rate_ != nullptr) SimArena::of(events_).release_rate(rate_id_);
  SimArena::of(events_).release_subflow(hot_id_);
}

void Subflow::enable_rate_mode() {
  if (rate_ != nullptr) return;
  MPSIM_CHECK(high_water_ == 0,
              "rate mode must be enabled before the first transmission");
  rate_id_ = SimArena::of(events_).add_rate();
  rate_ = &SimArena::of(events_).rate(rate_id_);
}

void Subflow::deactivate() {
  if (h_.active == 0) return;
  cancel_rto();
  pace_armed_ = false;  // a stale pacer wake-up fires as a no-op
  dupacks_ = 0;
  h_.active = 0;
}

void Subflow::reactivate() {
  MPSIM_CHECK(h_.active == 0, "reactivating a subflow that is still active");
  h_.active = 1;
  h_.cwnd = cfg_.init_cwnd;
  h_.ssthresh = cfg_.init_ssthresh;
  h_.in_recovery = 0;
  dupacks_ = 0;
  backoff_ = 0;
  recover_ = high_water_;  // stale dupacks must not trigger a loss reaction
  // Go-back-N over anything assigned before the drop: the data seqs were
  // reinjected on siblings at drop time, but the *subflow* sequence space
  // must still be repaired for the cumulative ACK to advance.
  h_.snd_nxt = h_.snd_una;
  try_send();
}

void Subflow::set_cwnd(double w) {
  h_.cwnd = w;
  clamp_cwnd();
}

void Subflow::clamp_cwnd() {
  h_.cwnd = std::clamp(h_.cwnd, cfg_.min_cwnd, cfg_.max_cwnd);
}

void Subflow::try_send() {
  if (route_ == nullptr || h_.active == 0) return;
  // Limited Transmit allowance: up to two extra segments while dupacks
  // signal departures but fast retransmit has not yet triggered.
  const std::uint64_t lt_bonus =
      (cfg_.limited_transmit && !h_.in_recovery && dupacks_ > 0 &&
       dupacks_ < cfg_.dupack_threshold)
          ? std::min<std::uint64_t>(dupacks_, 2)
          : 0;
  const auto window = static_cast<std::uint64_t>(h_.cwnd) + lt_bonus;
  while (h_.snd_nxt - h_.snd_una < window) {
    if (pacing_active()) {
      // Pacing gate: one launch per 1/pacing_rate seconds. When the next
      // credit lies in the future, park the remainder of the burst on the
      // pacer timer instead of emitting it back-to-back.
      const SimTime now = events_.now();
      if (now < pace_next_send_) {
        arm_pacer(pace_next_send_);
        MPSIM_TRACE(trace_, trace::pacing_wait(now, trace_id_, flow_id_,
                                               subflow_id_, pace_next_send_,
                                               rate_->pacing_rate));
        break;
      }
    }
    if (h_.snd_nxt < high_water_) {
      // Go-back-N resend of a segment assigned before an RTO rewind.
      send_packet(h_.snd_nxt, /*is_retransmit=*/true);
      ++h_.snd_nxt;
    } else {
      std::uint64_t dseq = 0;
      if (!host_.next_data(subflow_id_, dseq)) {
        if (rate_ != nullptr) rate_est_.on_app_limited(h_.snd_nxt - h_.snd_una);
        break;
      }
      // Deque block allocation once per ~512 bytes of scoreboard growth,
      // amortized across hundreds of packets; the scoreboard itself must
      // grow with the window.
      // mpsim-analyze: allow(hot-alloc)
      scoreboard_.push_back(dseq);
      ++high_water_;
      send_packet(h_.snd_nxt, /*is_retransmit=*/false);
      ++h_.snd_nxt;
    }
    if (pacing_active()) {
      const SimTime gap = from_sec(1.0 / rate_->pacing_rate);
      pace_next_send_ = std::max(pace_next_send_, events_.now()) + gap;
    }
  }
  if (h_.snd_una < high_water_ && !rto_armed_) arm_rto();
}

void Subflow::send_packet(std::uint64_t subflow_seq, bool is_retransmit) {
  MPSIM_CHECK(subflow_seq >= scoreboard_base_ &&
                  subflow_seq - scoreboard_base_ < scoreboard_.size(),
              "subflow seq outside the scoreboard's data-seq map");
  net::Packet& pkt = net::Packet::alloc(events_);
  pkt.type = net::PacketType::kData;
  pkt.flow_id = flow_id_;
  pkt.subflow_id = subflow_id_;
  pkt.subflow_seq = subflow_seq;
  pkt.data_seq = scoreboard_[subflow_seq - scoreboard_base_];
  pkt.size_bytes = net::kDataPacketBytes;
  pkt.ts_echo = events_.now();
  pkt.is_retransmit = is_retransmit;
  if (wire_counter_ != nullptr) {
    ++*wire_counter_;
    pkt.wire_refs = wire_counter_;
  }
  ++packets_sent_;
  if (is_retransmit) ++retransmits_;
  if (rate_ != nullptr) {
    rate_est_.on_send(subflow_seq, events_.now(), is_retransmit);
  }
  pkt.send_on(*route_);
}

void Subflow::receive(net::Packet& pkt) {
  MPSIM_CHECK(pkt.type == net::PacketType::kAck,
              "subflow sender can only receive ACKs");
  handle_ack(pkt);
  pkt.release();
}

void Subflow::handle_ack(net::Packet& ack) {
  if (h_.active == 0) {
    // Late ACK for a packet that was on the wire when this subflow was
    // dropped. Its data-level fields are still authoritative and its
    // subflow cumulative ACK still retires scoreboard state, but the
    // congestion machinery stays frozen: no RTT sample, no window growth
    // (so the coupled controller is never consulted for an inactive row),
    // no dupack/recovery logic, no timer, no transmission.
    host_.on_data_ack(ack.data_cum_ack, ack.rcv_window);
    const std::uint64_t cum = ack.subflow_cum_ack;
    if (cum > h_.snd_una) {
      h_.snd_una = cum;
      h_.snd_nxt = std::max(h_.snd_nxt, h_.snd_una);
      while (scoreboard_base_ < h_.snd_una) {
        scoreboard_.pop_front();
        ++scoreboard_base_;
      }
    }
    check_invariants();
    host_.on_subflow_progress(subflow_id_);
    return;
  }
  // Karn's rule: only time unambiguous (non-retransmitted) segments.
  if (!ack.is_retransmit) {
    rtt_.add_sample(events_.now() - ack.ts_echo);
    sync_rtt_mirror();
  }
  host_.on_data_ack(ack.data_cum_ack, ack.rcv_window);

  const std::uint64_t cum = ack.subflow_cum_ack;
  if (cum > h_.snd_una) {
    const std::uint64_t newly = cum - h_.snd_una;
    h_.snd_una = cum;
    h_.snd_nxt = std::max(h_.snd_nxt, h_.snd_una);
    while (scoreboard_base_ < h_.snd_una) {
      scoreboard_.pop_front();
      ++scoreboard_base_;
    }
    dupacks_ = 0;
    backoff_ = 0;
    acked_since_loss_ += newly;

    if (rate_ != nullptr) {
      // Rate mode: the estimator retires the acked span and (when the
      // timing is unambiguous) hands the host a delivery-rate sample. The
      // host's controller answers by republishing pacing rate and target
      // window — the window is model-driven, so the ACK-clocked growth
      // below is skipped.
      cc::DeliveryRateSample sample;
      if (rate_est_.on_ack(cum, events_.now(), sample)) {
        host_.on_ack_sample(subflow_id_, sample);
      }
    }

    if (h_.in_recovery) {
      if (h_.snd_una >= recover_) {
        // Full ACK: recovery complete, deflate to ssthresh.
        h_.in_recovery = false;
        h_.cwnd = h_.ssthresh;
        clamp_cwnd();
        arm_rto();
        MPSIM_TRACE(trace_, trace::state_transition(
                                events_.now(), trace_id_, flow_id_,
                                subflow_id_, trace::TcpPhase::kFastRecovery,
                                phase()));
      } else {
        // NewReno partial ACK: retransmit the next hole, deflate by the
        // amount acked (keeping the one retransmission in flight).
        // RFC 6582 "Slow-but-Steady": every partial ACK restarts the
        // retransmission timer, so a many-hole recovery proceeds at one
        // hole per RTT without RTO interruption. (The connection-level
        // head-of-line reinjection keeps the *data stream* from stalling
        // behind such a recovery on one subflow.)
        h_.cwnd =
            std::max(h_.ssthresh, h_.cwnd - static_cast<double>(newly) + 1.0);
        clamp_cwnd();
        if (h_.snd_una < high_water_) send_packet(h_.snd_una, true);
        arm_rto();
      }
    } else {
      if (rate_ == nullptr) {
        for (std::uint64_t i = 0; i < newly; ++i) {
          if (h_.cwnd < h_.ssthresh) {
            h_.cwnd += 1.0;  // slow start
          } else if (!cfg_.quantized_increase) {
            h_.cwnd += host_.ca_increase(subflow_id_);
          } else {
            // Re-evaluate the (possibly expensive) coupled increase only
            // when the window has grown a whole packet since last computed.
            const double quantum = std::floor(h_.cwnd);
            if (quantum != increase_quantum_) {
              cached_increase_ = host_.ca_increase(subflow_id_);
              increase_quantum_ = quantum;
            }
            h_.cwnd += cached_increase_;
          }
        }
        clamp_cwnd();
      }
      arm_rto();  // forward progress restarts the retransmission timer
    }
  } else if (h_.snd_una < high_water_ && !ack.is_window_update) {
    // Duplicate ACK while data is outstanding (window updates are not
    // dupacks, RFC 5681).
    ++dupacks_;
    if (!h_.in_recovery && dupacks_ == cfg_.dupack_threshold &&
        h_.snd_una > recover_) {
      // RFC 6582: react to three dupacks only when the cumulative ACK has
      // passed `recover_` — dupack bursts from packets sent before the
      // previous loss reaction must not trigger another one.
      ++loss_events_;
      enter_recovery();
    } else if (h_.in_recovery) {
      h_.cwnd += 1.0;  // window inflation: each dupack signals a departure
      clamp_cwnd();
    }
  }

  if (h_.snd_una >= high_water_) {
    cancel_rto();
  } else if (!rto_armed_) {
    arm_rto();
  }
  // (Duplicate ACKs and later partial ACKs deliberately do NOT restart an
  // armed timer — otherwise a long dupack stream keeps the RTO at bay
  // forever and a stalled recovery can never escape.)
  MPSIM_TRACE(trace_, trace::cwnd_sample(events_.now(), trace_id_, flow_id_,
                                         subflow_id_, phase(), h_.cwnd,
                                         h_.ssthresh, rtt_.srtt(), rtt_.rto()));
  try_send();
  check_invariants();
  host_.on_subflow_progress(subflow_id_);
}

// The subflow<->data sequence map and window invariants (paper 6: the two
// sequence spaces are separate but must stay consistent; 2.4: windows are
// bounded below so every path keeps being probed).
void Subflow::check_invariants() const {
  MPSIM_CHECK(h_.snd_una <= h_.snd_nxt && h_.snd_nxt <= high_water_,
              "sequence order violated: need snd_una <= snd_nxt <= high_water");
  MPSIM_CHECK(scoreboard_base_ == h_.snd_una,
              "scoreboard base must track the cumulative ACK");
  MPSIM_CHECK(scoreboard_.size() == high_water_ - scoreboard_base_,
              "scoreboard must map every un-acked subflow seq to a data seq");
  MPSIM_CHECK(h_.cwnd >= cfg_.min_cwnd,
              "cwnd below the paper's >= 1 pkt probing bound");
}

void Subflow::enter_recovery() {
  prev_loss_interval_ = acked_since_loss_;  // OLIA: rotate the l_r interval
  acked_since_loss_ = 0;
  const bool in_slow_start = h_.cwnd < h_.ssthresh;
  const trace::TcpPhase from = phase();
  h_.ssthresh =
      std::max(cfg_.min_cwnd, host_.window_after_loss(subflow_id_));
  recover_ = h_.snd_nxt;  // dupacks below this must not re-trigger (RFC 6582)
  if (in_slow_start || rate_ != nullptr) {
    // Loss during slow start means the exponential overshoot dumped a
    // large burst: potentially hundreds of holes, which NewReno (no SACK)
    // would repair at one per RTT. Do a Tahoe-style go-back-N instead —
    // refilling via slow start to the halved ssthresh is far faster.
    // Rate mode always takes this path: a paced STARTUP overshoot leaves a
    // window's worth of holes too, hole-per-RTT recovery would park the
    // paced pipe for seconds, and the resend cannot re-flood because the
    // pacer spaces it. The window itself stays model-driven (loss is not a
    // primary congestion signal for a rate-based controller).
    if (rate_ == nullptr) h_.cwnd = cfg_.min_cwnd;
    h_.snd_nxt = h_.snd_una;
    h_.in_recovery = false;
    dupacks_ = 0;
    MPSIM_TRACE(trace_, trace::state_transition(events_.now(), trace_id_,
                                                flow_id_, subflow_id_, from,
                                                phase()));
    arm_rto();
    try_send();
    return;
  }
  h_.cwnd = h_.ssthresh + static_cast<double>(cfg_.dupack_threshold);
  clamp_cwnd();
  h_.in_recovery = true;
  MPSIM_TRACE(trace_, trace::state_transition(events_.now(), trace_id_,
                                              flow_id_, subflow_id_, from,
                                              trace::TcpPhase::kFastRecovery));
  if (h_.snd_una < high_water_) send_packet(h_.snd_una, true);
}

void Subflow::arm_rto() {
  // Saturate the exponential backoff before comparing against max_rto:
  // `rtt_.rto() << shift` is evaluated first, and for a large base RTO even
  // shift <= 16 overflows the signed SimTime (UB, and the wrapped negative
  // value would win the std::min and put the deadline in the past).
  const int shift = std::min(backoff_, 16);
  const SimTime base = h_.rto;  // arena mirror of rtt_.rto()
  const SimTime rto = (base > (cfg_.max_rto >> shift))
                          ? cfg_.max_rto
                          : std::min<SimTime>(cfg_.max_rto, base << shift);
  rto_deadline_ = events_.now() + rto;
  rto_armed_ = true;
  schedule_wakeup(rto_deadline_);
  // If an earlier wake-up is already pending, schedule_wakeup keeps it; it
  // will re-arm itself forward to rto_deadline_ when it fires (lazy
  // rescheduling keeps the event heap from accumulating one stale entry
  // per ACK).
}

void Subflow::on_event() {
  next_fire_ = kNever;
  if (pace_armed_) {
    if (events_.now() >= pace_deadline_) {
      // Pacer credit matured: release the parked burst. try_send re-arms
      // the pacer and/or the RTO via schedule_wakeup as needed.
      pace_armed_ = false;
      try_send();
    } else {
      schedule_wakeup(pace_deadline_);
    }
  }
  if (!rto_armed_) return;
  if (events_.now() < rto_deadline_) {
    // The deadline moved later since this wake-up was scheduled.
    schedule_wakeup(rto_deadline_);
    return;
  }
  rto_armed_ = false;
  if (h_.snd_una >= high_water_) return;  // nothing outstanding after all
  handle_timeout();
}

void Subflow::force_timeout() {
  if (h_.active == 0) return;  // a dropped subflow has no timer to fire
  rto_armed_ = false;
  handle_timeout();
}

void Subflow::handle_timeout() {
  // Retransmission timeout. If it strikes mid-recovery, ssthresh was
  // already set from the pre-loss window at recovery entry; recomputing it
  // from the inflated cwnd would wildly overshoot.
  ++timeouts_;
  ++loss_events_;
  prev_loss_interval_ = acked_since_loss_;  // OLIA: rotate the l_r interval
  acked_since_loss_ = 0;
  MPSIM_TRACE(trace_, trace::state_transition(events_.now(), trace_id_,
                                              flow_id_, subflow_id_, phase(),
                                              trace::TcpPhase::kRtoRecovery));
  if (!h_.in_recovery) {
    h_.ssthresh =
        std::max(cfg_.min_cwnd, host_.window_after_loss(subflow_id_));
  }
  // Window mode restarts from one packet and slow-starts back. Rate mode
  // keeps the model-driven window: the go-back-N resend below is spaced by
  // the pacer (so it cannot re-flood the path the way an ACK-clocked burst
  // would), and collapsing here would wedge the repair at one packet per
  // RTT — every resend ACK is Karn-ambiguous, so no delivery sample
  // arrives to republish the controller's target until the hole train is
  // fully repaired.
  if (rate_ == nullptr) h_.cwnd = cfg_.min_cwnd;
  h_.in_recovery = false;
  dupacks_ = 0;
  recover_ = high_water_;  // RFC 6582: no fast retransmit for pre-RTO acks
  h_.snd_nxt = h_.snd_una;     // go-back-N: resend everything outstanding
  ++backoff_;
  host_.on_subflow_rto(subflow_id_, outstanding_data());
  try_send();
  if (h_.snd_una < high_water_ && !rto_armed_) arm_rto();
}

std::vector<std::uint64_t> Subflow::outstanding_data() const {
  std::vector<std::uint64_t> out;
  // Called only on the RTO / HoL-rescue recovery paths (timeout
  // granularity), never on the per-ACK fast path.
  // mpsim-analyze: allow(hot-alloc)
  out.reserve(high_water_ - h_.snd_una);
  for (std::uint64_t seq = h_.snd_una; seq < high_water_; ++seq) {
    // mpsim-analyze: allow(hot-alloc)
    out.push_back(scoreboard_[seq - scoreboard_base_]);
  }
  return out;
}

}  // namespace mpsim::tcp
