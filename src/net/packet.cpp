#include "net/packet.hpp"

#include <cassert>

namespace mpsim::net {

Packet& PacketPool::alloc() {
  Packet* p;
  if (free_.empty()) {
    storage_.push_back(std::unique_ptr<Packet>(new Packet()));
    p = storage_.back().get();
    p->pool_ = this;
  } else {
    p = free_.back();
    free_.pop_back();
  }
  ++outstanding_;
  if (outstanding_ > peak_) peak_ = outstanding_;
  return *p;
}

void PacketPool::release(Packet& p) {
  assert(p.pool_ == this);
  assert(outstanding_ > 0);
  --outstanding_;
  free_.push_back(&p);
}

PacketPool& PacketPool::of(EventList& events) {
  // The pool is the only service type ever attached to an EventList, so the
  // downcast is safe by construction.
  if (EventList::Service* s = events.service()) {
    return *static_cast<PacketPool*>(s);
  }
  return static_cast<PacketPool&>(
      events.attach_service(std::make_unique<PacketPool>()));
}

PacketPool* PacketPool::find(const EventList& events) {
  return static_cast<PacketPool*>(events.service());
}

void Packet::reset() {
  type = PacketType::kData;
  flow_id = 0;
  subflow_id = 0;
  subflow_seq = 0;
  data_seq = 0;
  subflow_cum_ack = 0;
  data_cum_ack = 0;
  rcv_window = 0;
  is_window_update = false;
  size_bytes = kDataPacketBytes;
  ts_echo = 0;
  is_retransmit = false;
  route_ = nullptr;
  next_hop_ = 0;
}

Packet& Packet::alloc(EventList& events) {
  Packet& p = PacketPool::of(events).alloc();
  p.reset();
  return p;
}

void Packet::release() {
  assert(pool_ != nullptr && "packet was not pool-allocated");
  pool_->release(*this);
}

std::size_t Packet::pool_outstanding(const EventList& events) {
  const PacketPool* pool = PacketPool::find(events);
  return pool ? pool->outstanding() : 0;
}

void Packet::send_on(const Route& route) {
  assert(route.size() > 0);
  route_ = &route;
  next_hop_ = 1;
  route.at(0)->receive(*this);
}

void Packet::advance() {
  assert(route_ != nullptr && next_hop_ < route_->size());
  PacketSink* sink = route_->at(next_hop_++);
  sink->receive(*this);
}

}  // namespace mpsim::net
