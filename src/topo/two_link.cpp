#include "topo/two_link.hpp"

namespace mpsim::topo {

TwoLink::TwoLink(Network& net, const LinkSpec& link1, const LinkSpec& link2) {
  const LinkSpec* specs[2] = {&link1, &link2};
  for (int i = 0; i < 2; ++i) {
    const std::string base = "link" + std::to_string(i + 1);
    // Variable-rate queues (identical to fixed-rate ones at a constant
    // rate) so both bottlenecks accept down/up/ramp faults.
    links_[i] = net.add_variable_link(base, specs[i]->rate_bps,
                                      specs[i]->one_way_delay,
                                      specs[i]->buf_bytes);
    ack_pipes_[i] = &net.add_pipe(base + "/ack", specs[i]->one_way_delay);
  }
}

Path TwoLink::fwd(int link) const { return path_of({&links_[link]}); }

Path TwoLink::rev(int link) const { return {ack_pipes_[link]}; }

}  // namespace mpsim::topo
